// Ablation of the paper's footnote 1: "No geolocation database is
// perfect. A fraction of very long client-to-front-end distances may be
// attributable to bad client geolocation data."
//
// Sweep the database's gross-error fraction and measure Figure 4's
// distance tail twice per world: with the analysis reading true client
// positions, and with it reading the (erroneous) geolocated positions —
// the only view the real study had. The gap between the two is exactly
// the artifact the footnote warns about.
#include <cstdio>

#include "analysis/figures.h"
#include "report/shape_check.h"
#include "sim/simulation.h"
#include "sim/world.h"

namespace {

using namespace acdn;

struct Point {
  double gross_error;
  double tail_true;       // fraction of clients >4000km from FE, truth
  double tail_geolocated; // same, as the geolocation database sees it
};

Point measure(double gross_error_fraction) {
  ScenarioConfig config = ScenarioConfig::paper_default();
  config.geolocation.gross_error_fraction = gross_error_fraction;
  World world(config);
  Simulation sim(world);
  sim.run_days(1);

  const Fig4Distances truth =
      fig4_distances(sim.passive(), 0, world.clients(),
                     world.cdn().deployment(), world.metros(), nullptr);
  const Fig4Distances seen =
      fig4_distances(sim.passive(), 0, world.clients(),
                     world.cdn().deployment(), world.metros(),
                     &world.geolocation());
  return Point{gross_error_fraction,
               1.0 - truth.to_front_end.fraction_at_most(4000.0),
               1.0 - seen.to_front_end.fraction_at_most(4000.0)};
}

}  // namespace

int main() {
  using namespace acdn;
  std::printf("== Ablation: geolocation database error (paper footnote 1) "
              "==\n");
  std::printf("%-12s %14s %18s\n", "gross-error", ">4000km (true)",
              ">4000km (geolocated)");
  const double fractions[] = {0.0, 0.01, 0.05};
  Point points[3];
  for (int i = 0; i < 3; ++i) {
    points[i] = measure(fractions[i]);
    std::printf("%-12.2f %14.4f %18.4f\n", points[i].gross_error,
                points[i].tail_true, points[i].tail_geolocated);
  }

  ShapeReport report("Ablation: geolocation error");
  report.check(
      "with a perfect database, both views agree",
      std::abs(points[0].tail_geolocated - points[0].tail_true), 0.0, 0.002);
  report.check(
      "database errors inflate the apparent long-distance tail",
      points[2].tail_geolocated - points[2].tail_true, 0.005, 1.0);
  report.check(
      "true routing is unaffected by how the analysis geolocates",
      std::abs(points[2].tail_true - points[0].tail_true), 0.0, 0.02);
  return report.print() ? 0 : 1;
}
