// Ablation (DESIGN.md §4, paper §6): the prediction metric. The paper
// chose low percentiles (25th / median) because high percentiles of the
// per-group latency distribution are too noisy day-over-day to predict
// from. Sweep the metric and the minimum-measurement gate, reporting the
// day-over-day coefficient of variation of the metric and the resulting
// improved/regressed fractions.
#include <cstdio>
#include <map>
#include <vector>

#include "core/evaluator.h"
#include "core/predictor.h"
#include "report/shape_check.h"
#include "sim/simulation.h"
#include "sim/world.h"
#include "stats/quantile.h"

namespace {

using namespace acdn;

/// Day-over-day coefficient of variation of a metric across groups: for
/// each (group, target) with enough samples on every day, compute the
/// metric per day, then its CoV; report the mean CoV.
double metric_stability(const MeasurementStore& store, int days,
                        PredictionMetric metric, int min_samples) {
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<double>>
      per_gt;
  for (int d = 0; d < days; ++d) {
    const DayAggregates agg =
        DayAggregates::build(store.columns(d), Grouping::kEcsPrefix);
    for (const DayAggregates::Group& group : agg.groups()) {
      for (const DayAggregates::Target& target : agg.targets(group)) {
        if (static_cast<int>(target.count) < min_samples) continue;
        const std::uint32_t target_id =
            target.key.anycast ? 0xffffffffu : target.key.front_end.value;
        per_gt[{group.key, target_id}].push_back(
            HistoryPredictor::metric_value(agg.samples(target), metric));
      }
    }
  }
  std::vector<double> covs;
  for (const auto& [gt, values] : per_gt) {
    if (values.size() < static_cast<std::size_t>(days)) continue;
    covs.push_back(coefficient_of_variation(values));
  }
  return covs.empty() ? 0.0 : mean(covs);
}

}  // namespace

int main() {
  using namespace acdn;
  ScenarioConfig config = ScenarioConfig::paper_default();
  config.schedule.beacon_sampling = 0.06;
  World world(config);
  Simulation sim(world);
  const int kDays = 4;
  sim.run_days(kDays);

  const PredictionEvaluator evaluator(world.clients(), world.ldns());

  std::printf("== Ablation: prediction metric ==\n");
  std::printf("%-8s %8s %12s %12s %12s\n", "metric", "CoV", "improved",
              "worse", "predictions");
  std::map<PredictionMetric, EvalSummary> results;
  std::map<PredictionMetric, double> stability;
  for (PredictionMetric metric :
       {PredictionMetric::kP25, PredictionMetric::kMedian,
        PredictionMetric::kP75}) {
    stability[metric] =
        metric_stability(sim.measurements(), kDays, metric, 20);

    PredictorConfig pc;
    pc.metric = metric;
    pc.min_measurements = 20;
    pc.grouping = Grouping::kEcsPrefix;
    HistoryPredictor predictor(pc);
    predictor.train(sim.measurements().by_day(kDays - 2));
    const auto outcomes =
        evaluator.evaluate(predictor, sim.measurements().by_day(kDays - 1));
    results[metric] = evaluator.summarize(outcomes);
    std::printf("%-8s %8.4f %12.3f %12.3f %12zu\n", to_string(metric),
                stability[metric], results[metric].fraction_improved_p50,
                results[metric].fraction_worse_p50,
                predictor.predictions().size());
  }

  std::printf("\n== Ablation: minimum-measurement gate (p25 metric) ==\n");
  std::printf("%-6s %12s %12s %12s\n", "gate", "improved", "worse",
              "predictions");
  std::map<int, EvalSummary> gate_results;
  for (int gate : {1, 5, 20, 50}) {
    PredictorConfig pc;
    pc.metric = PredictionMetric::kP25;
    pc.min_measurements = gate;
    pc.grouping = Grouping::kEcsPrefix;
    HistoryPredictor predictor(pc);
    predictor.train(sim.measurements().by_day(kDays - 2));
    const auto outcomes =
        evaluator.evaluate(predictor, sim.measurements().by_day(kDays - 1));
    gate_results[gate] = evaluator.summarize(outcomes);
    std::printf("%-6d %12.3f %12.3f %12zu\n", gate,
                gate_results[gate].fraction_improved_p50,
                gate_results[gate].fraction_worse_p50,
                predictor.predictions().size());
  }

  ShapeReport report("Ablation: prediction metric");
  report.check("p25 is day-over-day more stable than p75 (CoV delta)",
               stability[PredictionMetric::kP75] -
                   stability[PredictionMetric::kP25],
               0.0, 10.0);
  report.check("p25 and median behave similarly (|improved delta|)",
               std::abs(results[PredictionMetric::kP25].fraction_improved_p50 -
                        results[PredictionMetric::kMedian]
                            .fraction_improved_p50),
               0.0, 0.15);
  report.check(
      "a loose gate (1 measurement) regresses more than the 20-gate",
      gate_results[1].fraction_worse_p50 -
          gate_results[20].fraction_worse_p50,
      -0.02, 1.0);
  return report.print() ? 0 : 1;
}
