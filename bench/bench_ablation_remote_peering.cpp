// Ablation (DESIGN.md §4): how much of the anycast penalty is caused by
// remote-peering ISP policies?
//
// Two views. (1) Within the default world, compare the structural anycast
// detour (anycast path km minus best candidate unicast km, noise-free) of
// clients behind remote-peering ISPs against everyone else — a paired
// comparison immune to topology-rebuild variance. (2) Rebuild the world
// with the remote-peering fraction swept from 0 to 2x the default and
// report the aggregate detour and the Figure-3 >=25 ms request tail.
#include <cstdio>

#include "analysis/figures.h"
#include "report/shape_check.h"
#include "sim/simulation.h"
#include "sim/world.h"

namespace {

using namespace acdn;

/// Structural detour of one client: anycast route km minus the best
/// candidate unicast route km (no latency noise).
double structural_detour(const World& world, const Client24& c) {
  const RouteResult any = world.router().route_anycast(c.access_as, c.metro);
  if (!any.valid) return 0.0;
  double best = 1e18;
  for (FrontEndId fe : world.beacon().candidates_for(c.ldns)) {
    const RouteResult u =
        world.router().route_unicast(c.access_as, c.metro, fe);
    if (u.valid) best = std::min(best, u.total_km());
  }
  return best == 1e18 ? 0.0 : any.total_km() - best;
}

}  // namespace

int main() {
  using namespace acdn;

  // --- View 1: paired comparison inside one world. The policy only hurts
  // an ISP's clients *away from* the preferred handoff (clients in the hub
  // metro get a local ingress either way), so condition both groups on the
  // client being outside its ISP's busiest PoP metro. The world is built
  // with an elevated remote-peering fraction so the treated group is large
  // enough for stable percentiles; the comparison is within-world, so this
  // does not bias the contrast.
  ScenarioConfig view1_config = ScenarioConfig::paper_default();
  view1_config.topology.remote_peering_fraction = 0.30;
  World world(view1_config);
  const MetroDatabase& metros = world.metros();
  auto hub_of = [&](const AsNode& node) {
    MetroId best = node.presence.front();
    for (MetroId m : node.presence) {
      if (metros.metro(m).population_millions >
          metros.metro(best).population_millions) {
        best = m;
      }
    }
    return best;
  };
  // "Remote" means the policy is actually in force: the ISP peers with
  // the CDN at its preferred handoff. ISPs that drew the policy but never
  // interconnected with the CDN route like everyone else.
  auto peers_with_cdn = [&](AsId as) {
    for (const Neighbor& nb : world.graph().neighbors(as)) {
      if (nb.as == world.cdn().as_id()) return true;
    }
    return false;
  };
  DistributionBuilder remote, others;
  for (const Client24& c : world.clients().clients()) {
    const AsNode& isp = world.graph().as_node(c.access_as);
    const bool active = isp.remote_peering_policy && peers_with_cdn(isp.id);
    const MetroId hub = active ? isp.preferred_handoffs.front()
                               : hub_of(isp);
    if (c.metro == hub) continue;  // hub clients are unaffected either way
    const double detour = structural_detour(world, c);
    if (active) {
      remote.add(detour, c.daily_queries);
    } else {
      others.add(detour, c.daily_queries);
    }
  }
  std::printf("== Ablation: remote peering (within-world comparison, "
              "non-hub clients) ==\n");
  std::printf("clients behind remote-peering ISPs: p50=%.0f p90=%.0f km\n",
              remote.quantile(0.5), remote.quantile(0.9));
  std::printf("clients behind other ISPs:          p50=%.0f p90=%.0f km\n",
              others.quantile(0.5), others.quantile(0.9));

  // --- View 2: sweep the fraction (whole-world rebuild; informational).
  std::printf("\n%-10s %16s %12s\n", "fraction", "p90 detour km",
              ">=25ms tail");
  const double fractions[] = {0.0, 0.16, 0.32};
  double tails[3];
  double p90s[3];
  for (int i = 0; i < 3; ++i) {
    ScenarioConfig config = ScenarioConfig::paper_default();
    config.topology.remote_peering_fraction = fractions[i];
    World swept(config);
    DistributionBuilder detour;
    for (const Client24& c : swept.clients().clients()) {
      detour.add(structural_detour(swept, c), c.daily_queries);
    }
    Simulation sim(swept);
    sim.run_days(1);
    const DistributionBuilder diff = fig3_anycast_minus_best_unicast(
        sim.measurements().by_day(0), swept.clients(), std::nullopt);
    p90s[i] = detour.quantile(0.9);
    tails[i] = 1.0 - diff.fraction_at_most(25.0);
    std::printf("%-10.2f %16.0f %12.3f\n", fractions[i], p90s[i], tails[i]);
  }

  ShapeReport report("Ablation: remote peering");
  report.check("remote-peering clients have larger p90 structural detour",
               remote.quantile(0.9) - others.quantile(0.9), 1.0, 1e9);
  report.check("remote-peering clients have larger p75 structural detour",
               remote.quantile(0.75) - others.quantile(0.75), 0.0, 1e9);
  report.note("sweep: p90 detour at fraction 0", p90s[0]);
  report.note("sweep: p90 detour at fraction 0.32", p90s[2]);
  report.note("baseline >=25ms request tail", tails[1]);
  return report.print() ? 0 : 1;
}
