// Extension (the paper's stated future work, §4): "An interesting
// direction for future work is to understand how to extend these
// performance results to CDNs with different numbers and locations of
// servers."
//
// Sweep the deployment size from CDNify-scale (~17 sites) past the
// study's ~42 up to CDNetworks-scale (~80+), rebuilding the world each
// time, and report how anycast quality scales: distance to the serving
// front-end, the at-closest fraction (Figure 4's statistic), and the
// request-level >=25 ms tail (Figure 3's statistic).
#include <cstdio>

#include "analysis/catchment.h"
#include "analysis/figures.h"
#include "common/csv.h"
#include "report/shape_check.h"
#include "sim/simulation.h"
#include "sim/world.h"

namespace {

using namespace acdn;

struct SweepPoint {
  int sites = 0;
  double median_km = 0.0;        // client -> serving front-end
  double at_closest = 0.0;       // fraction landing on their closest site
  double tail25 = 0.0;           // requests with anycast >= 25ms slower
  double volume_within_1000km = 0.0;
};

DeploymentConfig scaled(double factor) {
  DeploymentConfig d;  // defaults total ~42
  d.north_america = std::max(1, int(d.north_america * factor));
  d.europe = std::max(1, int(d.europe * factor));
  d.asia = std::max(1, int(d.asia * factor));
  d.oceania = std::max(1, int(d.oceania * factor));
  d.south_america = std::max(1, int(d.south_america * factor));
  d.africa = std::max(1, int(d.africa * factor));
  d.middle_east = std::max(1, int(d.middle_east * factor));
  return d;
}

SweepPoint measure(double factor) {
  ScenarioConfig config = ScenarioConfig::paper_default();
  config.deployment = scaled(factor);
  World world(config);
  Simulation sim(world);
  sim.run_days(1);

  SweepPoint point;
  point.sites = static_cast<int>(world.cdn().deployment().size());

  const Fig4Distances d =
      fig4_distances(sim.passive(), 0, world.clients(),
                     world.cdn().deployment(), world.metros());
  point.median_km = d.to_front_end_weighted.quantile(0.5);
  point.at_closest = d.past_closest.fraction_at_most(1.0);

  const DistributionBuilder diff = fig3_anycast_minus_best_unicast(
      sim.measurements().by_day(0), world.clients(), std::nullopt);
  point.tail25 = 1.0 - diff.fraction_at_most(25.0);

  const auto catchments = compute_catchments(world.clients(), world.router(),
                                             world.metros());
  point.volume_within_1000km = catchment_health(catchments)
                                   .volume_within_1000km;
  return point;
}

}  // namespace

int main() {
  using namespace acdn;
  std::printf("== Extension: deployment-size sweep ==\n");
  std::printf("%-7s %12s %12s %12s %16s\n", "sites", "median km",
              "at-closest", ">=25ms tail", "vol<=1000km");
  CsvWriter csv("ext_deployment_sweep.csv");
  csv.write_header({"sites", "median_km", "at_closest", "tail25",
                    "volume_within_1000km"});

  const double factors[] = {0.4, 0.7, 1.0, 2.0};
  SweepPoint points[4];
  for (int i = 0; i < 4; ++i) {
    points[i] = measure(factors[i]);
    std::printf("%-7d %12.0f %12.3f %12.3f %16.3f\n", points[i].sites,
                points[i].median_km, points[i].at_closest, points[i].tail25,
                points[i].volume_within_1000km);
    const double row[] = {double(points[i].sites), points[i].median_km,
                          points[i].at_closest, points[i].tail25,
                          points[i].volume_within_1000km};
    csv.write_row(row);
  }

  std::printf(
      "\nNote the reversal at the densest deployment: once the CDN has a\n"
      "PoP in nearly every metro, remote-peering ISPs all find their\n"
      "preferred interconnection hub covered and cold-potato their whole\n"
      "client base there — more sites do not monotonically help unless\n"
      "ISP interconnection behavior improves with them. This is the kind\n"
      "of interaction the paper's future-work question was asking about.\n");

  ShapeReport report("Extension: deployment sweep");
  report.check(
      "growing from CDNify scale to study scale shortens the median "
      "serving distance",
      points[0].median_km - points[2].median_km, 1.0, 1e9);
  report.check("sweep spans CDNify-to-CDNetworks scale",
               double(points[3].sites - points[0].sites), 30, 1e9);
  report.check("local coverage (volume within 1000km) grows monotonically",
               (points[1].volume_within_1000km >=
                    points[0].volume_within_1000km &&
                points[2].volume_within_1000km >=
                    points[1].volume_within_1000km &&
                points[3].volume_within_1000km >=
                    points[2].volume_within_1000km)
                   ? 1.0
                   : 0.0,
               1.0, 1.0);
  report.note("at-closest at study scale", points[2].at_closest);
  report.note(">=25ms tail at study scale", points[2].tail25);
  report.check("more sites keep the >=25ms tail bounded",
               points[3].tail25, 0.0, 0.35);
  return report.print() ? 0 : 1;
}
