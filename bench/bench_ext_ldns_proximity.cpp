// Extension: validate the DNS world against the Akamai end-user-mapping
// study the paper leans on (Chen et al., SIGCOMM'15 [17], quoted in §3.3):
// "excluding 8% of demand from public resolvers, only 11-12% of demand
// comes from clients who are further than 500km from their LDNS."
//
// The beacon's candidate-selection design (ten closest front-ends to the
// LDNS) is justified by exactly this statistic, so the simulated resolver
// population must reproduce it.
#include <cstdio>

#include "common/csv.h"
#include "report/ascii_chart.h"
#include "report/series.h"
#include "report/shape_check.h"
#include "sim/world.h"
#include "stats/distribution.h"

int main() {
  using namespace acdn;
  World world(ScenarioConfig::paper_default());

  DistributionBuilder isp_demand_km;     // non-public resolver clients
  DistributionBuilder public_demand_km;  // public resolver clients
  double public_volume = 0.0;
  double total_volume = 0.0;

  for (const Client24& c : world.clients().clients()) {
    const LdnsServer& server = world.ldns().server(c.ldns);
    const Kilometers d = haversine_km(c.location, server.location);
    total_volume += c.daily_queries;
    if (server.is_public) {
      public_volume += c.daily_queries;
      public_demand_km.add(d, c.daily_queries);
    } else {
      isp_demand_km.add(d, c.daily_queries);
    }
  }

  const double public_share = public_volume / total_volume;
  const double far_share = 1.0 - isp_demand_km.fraction_at_most(500.0);
  std::printf("public-resolver demand share: %.1f%% (paper's [17]: ~8%%)\n",
              100.0 * public_share);
  std::printf("ISP-resolver demand >500km from LDNS: %.1f%% "
              "(paper's [17]: 11-12%%)\n",
              100.0 * far_share);

  Figure figure("client-to-LDNS distance (demand-weighted)", "distance_km",
                "CDF of demand");
  figure.add_series(Series{"ISP resolvers", isp_demand_km.cdf()});
  figure.add_series(Series{"public resolvers", public_demand_km.cdf()});
  figure.write_csv("ext_ldns_proximity.csv");
  ChartOptions chart;
  chart.log_x = true;
  chart.x_min = 16;
  chart.x_max = 8192;
  std::printf("\n%s\n", render_chart(figure, chart).c_str());

  ShapeReport report("Extension: LDNS proximity ([17] calibration)");
  report.check("public resolver demand share (paper ~8%)", public_share,
               0.04, 0.14);
  report.check("ISP demand >500km from its LDNS (paper 11-12%)", far_share,
               0.04, 0.25);
  report.check("public-resolver clients are farther from their resolver",
               public_demand_km.quantile(0.5) - isp_demand_km.quantile(0.5),
               0.0, 1e9);
  return report.print() ? 0 : 1;
}
