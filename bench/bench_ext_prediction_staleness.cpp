// Extension of §6's design choices. The paper set the prediction interval
// to one day and noted (footnote 2) that finer timescales were impossible
// because "our sampling rate was limited due to engineering issues".
// Two questions the paper could not answer, answered here:
//
//   1. Training window: does pooling several days of measurements beat
//      training on yesterday alone? (More data per group clears the
//      20-measurement gate for more groups; but older days are staler.)
//   2. Staleness: how fast does a day's mapping rot if it is *not*
//      refreshed — i.e., how wrong was it to keep yesterday's map for a
//      week? (Bounds how much the daily retrain actually matters.)
#include <cstdio>
#include <vector>

#include "common/csv.h"
#include "core/evaluator.h"
#include "core/predictor.h"
#include "report/shape_check.h"
#include "sim/simulation.h"
#include "sim/world.h"

int main() {
  using namespace acdn;
  ScenarioConfig config = ScenarioConfig::paper_default();
  config.schedule.beacon_sampling = 0.10;
  World world(config);
  Simulation sim(world);
  const int kDays = 9;
  sim.run_days(kDays);

  const PredictionEvaluator evaluator(world.clients(), world.ldns());
  PredictorConfig pc;
  pc.metric = PredictionMetric::kP25;
  pc.min_measurements = 20;
  pc.grouping = Grouping::kEcsPrefix;

  auto pooled = [&](DayIndex first, DayIndex last) {
    std::vector<BeaconMeasurement> out;
    for (DayIndex d = first; d <= last; ++d) {
      const auto day = sim.measurements().by_day(d);
      out.insert(out.end(), day.begin(), day.end());
    }
    return out;
  };

  // --- 1. Training-window sweep: evaluate on day kDays-1.
  std::printf("== training-window sweep (evaluate on day %d) ==\n",
              kDays - 1);
  std::printf("%-8s %10s %10s %10s %10s\n", "window", "groups", "unicast",
              "improved", "worse");
  CsvWriter csv("ext_prediction_staleness.csv");
  csv.write_header({"experiment", "x", "groups", "improved", "worse"});
  double improved_by_window[3] = {0, 0, 0};
  std::size_t groups_by_window[3] = {0, 0, 0};
  const int windows[3] = {1, 3, 7};
  for (int i = 0; i < 3; ++i) {
    const int w = windows[i];
    HistoryPredictor predictor(pc);
    const auto train = pooled(kDays - 1 - w, kDays - 2);
    predictor.train(train);
    std::size_t unicast = 0;
    for (const auto& [g, p] : predictor.predictions()) {
      if (!p.anycast) ++unicast;
    }
    const auto outcomes =
        evaluator.evaluate(predictor, sim.measurements().by_day(kDays - 1));
    const EvalSummary s = evaluator.summarize(outcomes);
    improved_by_window[i] = s.fraction_improved_p50;
    groups_by_window[i] = predictor.predictions().size();
    std::printf("%-8d %10zu %10zu %9.1f%% %9.1f%%\n", w,
                predictor.predictions().size(), unicast,
                100.0 * s.fraction_improved_p50,
                100.0 * s.fraction_worse_p50);
    csv.write_row({"window", std::to_string(w),
                   std::to_string(predictor.predictions().size()),
                   std::to_string(s.fraction_improved_p50),
                   std::to_string(s.fraction_worse_p50)});
  }

  // --- 2. Staleness: train once on day 0, evaluate on days 1..kDays-1.
  std::printf("\n== mapping staleness (trained on day 0, never refreshed) "
              "==\n");
  std::printf("%-8s %10s %10s %10s\n", "age_days", "improved", "worse",
              "net");
  HistoryPredictor stale(pc);
  stale.train(sim.measurements().by_day(0));
  double net_day1 = 0.0, net_day_last = 0.0;
  for (DayIndex d = 1; d < kDays; ++d) {
    const auto outcomes =
        evaluator.evaluate(stale, sim.measurements().by_day(d));
    const EvalSummary s = evaluator.summarize(outcomes);
    const double net = s.fraction_improved_p50 - s.fraction_worse_p50;
    if (d == 1) net_day1 = net;
    if (d == kDays - 1) net_day_last = net;
    std::printf("%-8d %9.1f%% %9.1f%% %9.1f%%\n", d,
                100.0 * s.fraction_improved_p50,
                100.0 * s.fraction_worse_p50, 100.0 * net);
    csv.write_row({"staleness", std::to_string(d),
                   std::to_string(s.evaluated),
                   std::to_string(s.fraction_improved_p50),
                   std::to_string(s.fraction_worse_p50)});
  }

  ShapeReport report("Extension: prediction training window & staleness");
  report.check("longer windows qualify more groups (7d vs 1d)",
               double(groups_by_window[2]) - double(groups_by_window[0]),
               1.0, 1e9);
  report.check("longer windows do not hurt improvement (7d vs 1d, pp)",
               improved_by_window[2] - improved_by_window[0], -0.05, 1.0);
  report.check("a fresh mapping is net-positive", net_day1, 0.0, 1.0);
  report.check(
      "a week-old mapping is still usable (Fig 6: most problems are "
      "short-lived, so the stable majority dominates)",
      net_day_last, 0.0, 1.0);
  report.note("net win decay over a week (pp)",
              100.0 * (net_day1 - net_day_last));
  return report.print() ? 0 : 1;
}
