// Extension of a §5 aside: the paper observes that its one-day client
// front-end switch rate is "slightly higher [than] the 1.1-4.7% reported
// in previous work on DNS instance-switches in anycast root nameservers",
// and attributes it to the deployment being "around 10 times larger than
// the number of instances present in K root" at the time.
//
// Test the mechanism: run the same world and the same route dynamics with
// a K-root-scale deployment (a handful of sites) and with the study-scale
// deployment, and compare the fraction of clients that land on more than
// one site in a day. With few sites, alternate BGP routes usually resolve
// to the *same* site, so route churn is invisible at the application
// layer; density is what turns churn into switches.
#include <cstdio>

#include "analysis/figures.h"
#include "report/shape_check.h"
#include "sim/simulation.h"
#include "sim/world.h"

namespace {

using namespace acdn;

double one_day_switch_fraction(const DeploymentConfig& deployment) {
  ScenarioConfig config = ScenarioConfig::paper_default();
  config.deployment = deployment;
  World world(config);
  Simulation sim(world);
  sim.run_days(1);
  return fig7_cumulative_switched(sim.passive(), 1).front();
}

}  // namespace

int main() {
  using namespace acdn;

  // K-root scale circa the cited studies: a handful of instances.
  DeploymentConfig kroot;
  kroot.north_america = 2;
  kroot.europe = 2;
  kroot.asia = 1;
  kroot.oceania = 0;
  kroot.south_america = 0;
  kroot.africa = 0;
  kroot.middle_east = 0;

  const double small_scale = one_day_switch_fraction(kroot);
  const double study_scale = one_day_switch_fraction(DeploymentConfig{});

  std::printf("one-day client switch fraction:\n");
  std::printf("  K-root-scale deployment (5 sites):  %.3f\n", small_scale);
  std::printf("  study-scale deployment (42 sites):  %.3f\n", study_scale);
  std::printf("\nSame Internet, same route churn — only the site density "
              "differs.\n");

  ShapeReport report("Extension: root-server comparison");
  report.check(
      "small deployment switch rate in the cited 1.1-4.7% neighborhood",
      small_scale, 0.0, 0.06);
  report.check("study-scale deployment switches more (paper: 'slightly "
               "higher ... 10 times larger')",
               study_scale - small_scale, 0.0001, 1.0);
  report.note("study-scale one-day switch fraction (paper ~7%)",
              study_scale);
  return report.print() ? 0 : 1;
}
