// Figure 1: CDF of per-/24 minimum observed latency when measuring to the
// nearest N front-ends per LDNS, N in {1,3,5,7,9} (paper §3.3).
//
// Paper headline: latency decreases as more front-ends are measured, but
// the curves for N >= 5 bunch together — measuring beyond the ten nearest
// candidates would yield negligible benefit, validating the beacon's
// candidate-pool design.
#include <cstdio>
#include <vector>

#include "analysis/figures.h"
#include "report/ascii_chart.h"
#include "report/series.h"
#include "report/shape_check.h"
#include "sim/world.h"

int main() {
  using namespace acdn;
  const ScenarioConfig config = ScenarioConfig::paper_default();
  World world(config);

  // Calibration sweep: every client measures all ten candidates of its
  // LDNS several times; we keep the per-candidate minimum (the paper's
  // "minimum observed latency").
  Rng rng = world.fork_rng("fig1");
  constexpr int kRounds = 5;
  std::vector<std::vector<Milliseconds>> per_client;
  per_client.reserve(world.clients().size());
  for (const Client24& client : world.clients().clients()) {
    std::vector<Milliseconds> best;
    for (int round = 0; round < kRounds; ++round) {
      const SimTime when{0, 3600.0 * (2 + 4 * round)};
      const auto sample =
          world.beacon().measure_all_candidates(client, when, rng);
      if (best.empty()) {
        best = sample;
      } else {
        for (std::size_t i = 0; i < best.size(); ++i) {
          best[i] = std::min(best[i], sample[i]);
        }
      }
    }
    per_client.push_back(std::move(best));
  }

  const int ns[] = {1, 3, 5, 7, 9};
  const auto cdfs = fig1_min_latency_by_pool_size(per_client, ns);

  Figure figure("Figure 1: min latency vs number of measured front-ends",
                "min_latency_ms", "CDF of /24s");
  for (std::size_t i = 0; i < cdfs.size(); ++i) {
    figure.add_series(Series{std::to_string(ns[i]) + " front-ends",
                             cdfs[i].cdf()});
  }
  figure.print_table();
  figure.write_csv("fig01_diminishing_returns.csv");
  ChartOptions chart;
  chart.x_min = 0;
  chart.x_max = 200;
  std::printf("\n%s\n", render_chart(figure, chart).c_str());

  // Shape: adding front-ends helps a lot from 1->3, little from 5->9.
  const double med1 = cdfs[0].quantile(0.5);
  const double med3 = cdfs[1].quantile(0.5);
  const double med5 = cdfs[2].quantile(0.5);
  const double med9 = cdfs[4].quantile(0.5);
  ShapeReport report("Figure 1");
  report.note("median min-latency, 1 front-end (ms)", med1);
  report.note("median min-latency, 9 front-ends (ms)", med9);
  report.check("gain from 1 -> 3 front-ends (ms)", med1 - med3, 1.0, 1e9);
  report.check("gain from 5 -> 9 front-ends is small (ms)", med5 - med9,
               -1.0, 5.0);
  report.check("curves are ordered (3 vs 1)", med3 <= med1 ? 1.0 : 0.0, 1.0,
               1.0);
  return report.print() ? 0 : 1;
}
