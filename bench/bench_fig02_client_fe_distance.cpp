// Figure 2: CDF of the distance (km, log scale) from volume-weighted
// clients to their Nth closest front-end, N = 1..4 (paper §4).
//
// Paper headline: median distance to the nearest front-end is ~280 km, to
// the 2nd nearest ~700 km, to the 4th nearest ~1300 km.
#include <cstdio>

#include "analysis/figures.h"
#include "report/ascii_chart.h"
#include "report/series.h"
#include "report/shape_check.h"
#include "report/svg_chart.h"
#include "sim/world.h"

int main() {
  using namespace acdn;
  const ScenarioConfig config = ScenarioConfig::paper_default();
  World world(config);

  constexpr int kN = 4;
  const std::vector<DistributionBuilder> dist = fig2_nth_closest_distances(
      world.clients(), world.cdn().deployment(), world.metros(), kN);

  Figure figure("Figure 2: client distance to Nth closest front-end (km)",
                "distance_km", "CDF of clients (query-weighted)");
  const char* names[kN] = {"1st closest", "2nd closest", "3rd closest",
                           "4th closest"};
  for (int i = 0; i < kN; ++i) {
    figure.add_series(Series{names[i], dist[i].cdf()});
  }
  figure.print_table();
  figure.write_csv("fig02_client_fe_distance.csv");
  {
    SvgOptions svg;
    svg.log_x = true;
    svg.x_min = 64;
    svg.x_max = 8192;
    write_svg(figure, "fig02_client_fe_distance.svg", svg);
  }
  ChartOptions chart;
  chart.log_x = true;
  chart.x_min = 64;
  chart.x_max = 8192;
  std::printf("\n%s\n", render_chart(figure, chart).c_str());

  ShapeReport report("Figure 2");
  report.check("median km to 1st closest (paper ~280)",
               dist[0].quantile(0.5), 100.0, 600.0);
  report.check("median km to 2nd closest (paper ~700)",
               dist[1].quantile(0.5), 300.0, 1400.0);
  report.check("median km to 4th closest (paper ~1300)",
               dist[3].quantile(0.5), 600.0, 2600.0);
  report.check("ordering: 1st < 2nd median",
               dist[1].quantile(0.5) - dist[0].quantile(0.5), 0.0, 1e9);
  return report.print() ? 0 : 1;
}
