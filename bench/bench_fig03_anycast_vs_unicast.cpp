// Figure 3: CCDF of (anycast latency - best-of-three-unicast latency) per
// beacon request, for the world, Europe, and the United States (paper §5).
//
// Paper headline: anycast matches the best nearby unicast front-end for
// most requests, but is >= 25 ms slower for ~20% of requests and >= 100 ms
// slower for just under 10%.
#include <cstdio>

#include "analysis/figures.h"
#include "report/ascii_chart.h"
#include "report/series.h"
#include "report/shape_check.h"
#include "report/svg_chart.h"
#include "sim/simulation.h"
#include "sim/world.h"

int main() {
  using namespace acdn;
  World world(ScenarioConfig::paper_default());
  Simulation sim(world);
  sim.run_days(3);  // "based on millions of measurements collected over a
                    //  period of a few days"

  // Pool all days' measurements.
  std::vector<BeaconMeasurement> all;
  for (DayIndex d = 0; d < 3; ++d) {
    const auto day = sim.measurements().by_day(d);
    all.insert(all.end(), day.begin(), day.end());
  }
  std::printf("beacon measurements: %zu\n", all.size());

  Figure figure(
      "Figure 3: CCDF of anycast minus best unicast latency (ms)",
      "difference_ms", "CCDF of requests");
  const DistributionBuilder world_d =
      fig3_anycast_minus_best_unicast(all, world.clients(), std::nullopt);
  const DistributionBuilder europe = fig3_anycast_minus_best_unicast(
      all, world.clients(), Region::kEurope);
  const DistributionBuilder usa = fig3_anycast_minus_best_unicast(
      all, world.clients(), Region::kNorthAmerica);

  const double xs[] = {0,  5,  10, 15, 20, 25, 30, 40,
                       50, 60, 70, 80, 90, 100};
  figure.add_series(Series{"Europe", europe.ccdf_at(xs)});
  figure.add_series(Series{"World", world_d.ccdf_at(xs)});
  figure.add_series(Series{"North America", usa.ccdf_at(xs)});
  figure.print_table();
  figure.write_csv("fig03_anycast_vs_unicast.csv");
  {
    SvgOptions svg;
    svg.x_min = 0;
    svg.x_max = 100;
    write_svg(figure, "fig03_anycast_vs_unicast.svg", svg);
  }
  ChartOptions chart;
  chart.x_min = 0;
  chart.x_max = 100;
  std::printf("\n%s\n", render_chart(figure, chart).c_str());

  ShapeReport report("Figure 3");
  report.check("requests with anycast >=25ms slower (paper ~20%)",
               1.0 - world_d.fraction_at_most(25.0), 0.10, 0.30);
  report.check("requests with anycast >=100ms slower (paper just under 10%)",
               1.0 - world_d.fraction_at_most(100.0), 0.04, 0.14);
  report.check("most requests see little penalty: median diff (ms)",
               world_d.quantile(0.5), -10.0, 10.0);
  report.check("dense Europe beats world at 25ms",
               (1.0 - world_d.fraction_at_most(25.0)) -
                   (1.0 - europe.fraction_at_most(25.0)),
               -0.05, 0.5);
  return report.print() ? 0 : 1;
}
