// Figure 4: CDFs (log-x km) of (a) the distance between clients and the
// anycast front-end they are directed to, and (b) that distance minus the
// distance to their closest front-end ("past closest"), both unweighted
// and query-volume weighted (paper §5, one day of production traffic).
//
// Paper headlines: ~55% of clients are routed to their closest front-end;
// ~75% end up within ~400 km of the closest and 90% within ~1375 km;
// ~82% of clients (87% of query volume) are within 2000 km of their
// anycast front-end.
#include <cstdio>

#include "analysis/figures.h"
#include "report/ascii_chart.h"
#include "report/series.h"
#include "report/shape_check.h"
#include "report/svg_chart.h"
#include "sim/simulation.h"
#include "sim/world.h"

int main() {
  using namespace acdn;
  World world(ScenarioConfig::paper_default());
  Simulation sim(world);
  sim.run_days(1);

  const Fig4Distances d =
      fig4_distances(sim.passive(), 0, world.clients(),
                     world.cdn().deployment(), world.metros(),
                     &world.geolocation());

  Figure figure("Figure 4: client distance to anycast front-end (km)",
                "distance_km", "CDF");
  figure.add_series(
      Series{"Weighted Clients Past Closest", d.past_closest_weighted.cdf()});
  figure.add_series(Series{"Clients Past Closest", d.past_closest.cdf()});
  figure.add_series(
      Series{"Weighted Clients to Front-end", d.to_front_end_weighted.cdf()});
  figure.add_series(Series{"Clients to Front-end", d.to_front_end.cdf()});
  figure.write_csv("fig04_distance_past_closest.csv");
  {
    SvgOptions svg;
    svg.log_x = true;
    svg.x_min = 64;
    svg.x_max = 8192;
    write_svg(figure, "fig04_distance_past_closest.svg", svg);
  }
  ChartOptions chart;
  chart.log_x = true;
  chart.x_min = 64;
  chart.x_max = 8192;
  std::printf("%s\n", render_chart(figure, chart).c_str());

  ShapeReport report("Figure 4");
  report.check("clients at their closest front-end (paper ~55%)",
               d.past_closest.fraction_at_most(1.0), 0.35, 0.75);
  report.check("clients within 400km past closest (paper ~75%)",
               d.past_closest.fraction_at_most(400.0), 0.55, 0.90);
  report.check("clients within 1375km past closest (paper ~90%)",
               d.past_closest.fraction_at_most(1375.0), 0.75, 0.98);
  report.check("clients within 2000km of front-end (paper ~82%)",
               d.to_front_end.fraction_at_most(2000.0), 0.65, 0.95);
  report.check(
      "weighting helps: weighted minus unweighted at 2000km (paper ~+5%)",
      d.to_front_end_weighted.fraction_at_most(2000.0) -
          d.to_front_end.fraction_at_most(2000.0),
      -0.02, 0.20);
  return report.print() ? 0 : 1;
}
