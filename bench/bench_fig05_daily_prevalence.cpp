// Figure 5: for each day of April 2015, the fraction of client /24s for
// which some unicast front-end improves on anycast by more than
// {0, 10, 25, 50, 100} ms, computed from per-day median latencies (§5).
//
// Paper headlines: on average 19% of prefixes see some improvement, 12%
// see >= 10 ms, and only 4% see >= 50 ms; prevalence is roughly flat
// across the month.
#include <cstdio>

#include "analysis/figures.h"
#include "report/series.h"
#include "report/shape_check.h"
#include "sim/simulation.h"
#include "sim/world.h"
#include "stats/quantile.h"

int main() {
  using namespace acdn;
  World world(ScenarioConfig::paper_default());
  Simulation sim(world);
  const int kDays = 28;  // four weeks of April
  sim.run_days(kDays);

  const Fig5Config config;
  const auto days = fig5_daily_prevalence(sim.measurements(), config);

  std::printf("== Figure 5: daily poor-path prevalence ==\n");
  std::printf("%-12s %-5s", "date", "dow");
  for (double t : config.thresholds) std::printf("  >%4.0fms", t);
  std::printf("\n");
  std::vector<std::vector<double>> columns(config.thresholds.size());
  for (const Fig5Day& day : days) {
    const Date date = world.calendar().date(day.day);
    std::printf("%-12s %-5s", date.to_string().c_str(),
                to_string(world.calendar().weekday(day.day)));
    for (std::size_t i = 0; i < day.fraction_above.size(); ++i) {
      std::printf("  %6.3f", day.fraction_above[i]);
      columns[i].push_back(day.fraction_above[i]);
    }
    std::printf("\n");
  }

  Figure figure("Figure 5 series", "day", "fraction of /24s");
  const char* names[] = {"all", ">10ms", ">25ms", ">50ms", ">100ms"};
  for (std::size_t i = 0; i < columns.size(); ++i) {
    Series s{names[i], {}};
    for (std::size_t d = 0; d < columns[i].size(); ++d) {
      s.points.push_back({double(d), columns[i][d]});
    }
    figure.add_series(std::move(s));
  }
  figure.write_csv("fig05_daily_prevalence.csv");

  ShapeReport report("Figure 5");
  report.check("mean fraction with any improvement (paper ~19%)",
               mean(columns[0]), 0.08, 0.35);
  report.check("mean fraction with >10ms improvement (paper ~12%)",
               mean(columns[1]), 0.05, 0.22);
  report.check("mean fraction with >50ms improvement (paper ~4%)",
               mean(columns[3]), 0.005, 0.10);
  report.check("thresholds are nested: all >= 10ms line",
               mean(columns[0]) - mean(columns[1]), 0.0, 1.0);
  report.check("day-to-day stability: stddev of 'all' line",
               stddev(columns[0]), 0.0, 0.06);
  return report.print() ? 0 : 1;
}
