// Figure 6: among /24s that ever saw a poor anycast path in April, the CDF
// of (a) how many days they were poor and (b) their longest consecutive
// poor streak (paper §5).
//
// Paper headlines: ~60% of such /24s are poor on only one day of the
// month; ~10% are poor on 5+ days; only ~5% are poor 5+ days in a row —
// poor anycast performance is persistent in aggregate but mostly
// short-lived per network.
#include <cstdio>

#include "analysis/figures.h"
#include "report/ascii_chart.h"
#include "report/series.h"
#include "report/shape_check.h"
#include "sim/simulation.h"
#include "sim/world.h"

int main() {
  using namespace acdn;
  World world(ScenarioConfig::paper_default());
  Simulation sim(world);
  sim.run_days(28);

  const Fig6Duration durations =
      fig6_poor_duration(sim.measurements(), Fig5Config{});

  Figure figure("Figure 6: poor path duration (days)", "days",
                "CDF of client /24s");
  figure.add_series(
      Series{"Max # of Consecutive Days", durations.max_consecutive.cdf()});
  figure.add_series(Series{"# Days", durations.days_poor.cdf()});
  figure.print_table();
  figure.write_csv("fig06_poor_path_duration.csv");
  ChartOptions chart;
  chart.x_min = 1;
  chart.x_max = 15;
  std::printf("\n%s\n", render_chart(figure, chart).c_str());

  ShapeReport report("Figure 6");
  report.check("poor /24s poor on exactly one day (paper ~60%)",
               durations.days_poor.fraction_at_most(1.0), 0.35, 0.80);
  report.check("poor /24s poor on 5+ days (paper ~10%)",
               1.0 - durations.days_poor.fraction_at_most(4.0), 0.02, 0.30);
  report.check("poor /24s with 5+ consecutive poor days (paper ~5%)",
               1.0 - durations.max_consecutive.fraction_at_most(4.0), 0.0,
               0.18);
  report.check(
      "consecutive streaks are shorter than total poor days (CDF order)",
      durations.max_consecutive.fraction_at_most(2.0) -
          durations.days_poor.fraction_at_most(2.0),
      0.0, 1.0);
  return report.print() ? 0 : 1;
}
