// Figure 7: the cumulative fraction of clients that have landed on more
// than one front-end by each day of a week starting Wednesday (paper §5,
// passive logs).
//
// Paper headlines: ~7% of clients switch within the first day, another
// 2-4% each subsequent weekday, under 0.5% per weekend day, and ~21% of
// clients have switched by the end of the week.
#include <cstdio>

#include "analysis/figures.h"
#include "report/series.h"
#include "report/shape_check.h"
#include "sim/simulation.h"
#include "sim/world.h"

int main() {
  using namespace acdn;
  World world(ScenarioConfig::paper_default());
  Simulation sim(world);
  const int kDays = 7;  // Wed .. Tue, as in the figure
  sim.run_days(kDays);

  const auto cumulative = fig7_cumulative_switched(sim.passive(), kDays);

  std::printf("== Figure 7: cumulative fraction of clients switching "
              "front-end ==\n");
  Series series{"cumulative switched", {}};
  for (int d = 0; d < kDays; ++d) {
    std::printf("  %-4s (%s): %6.3f\n",
                to_string(world.calendar().weekday(d)),
                world.calendar().date(d).to_string().c_str(),
                cumulative[static_cast<std::size_t>(d)]);
    series.points.push_back({double(d), cumulative[std::size_t(d)]});
  }
  Figure figure("Figure 7", "day", "cumulative fraction switched");
  figure.add_series(std::move(series));
  figure.write_csv("fig07_frontend_affinity.csv");

  const double day0 = cumulative[0];
  const double week = cumulative[static_cast<std::size_t>(kDays - 1)];
  // Weekend increments: days 3 (Sat) and 4 (Sun) from a Wednesday start.
  const double sat_inc = cumulative[3] - cumulative[2];
  const double sun_inc = cumulative[4] - cumulative[3];
  const double thu_inc = cumulative[1] - cumulative[0];

  ShapeReport report("Figure 7");
  report.check("clients switching within day 1 (paper ~7%)", day0, 0.03,
               0.13);
  report.check("clients switched by end of week (paper ~21%)", week, 0.10,
               0.32);
  report.check("weekday increment Thu (paper 2-4%)", thu_inc, 0.005, 0.07);
  report.check("weekend increment Sat (paper <0.5%)", sat_inc, 0.0, 0.012);
  report.check("weekend increment Sun (paper <0.5%)", sun_inc, 0.0, 0.012);
  report.check("weekday churn exceeds weekend churn", thu_inc - sat_inc, 0.0,
               1.0);
  return report.print() ? 0 : 1;
}
