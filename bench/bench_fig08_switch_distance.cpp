// Figure 8: CDF (log-x km) of the change in client-to-front-end distance
// when a client's front-end changes (paper §5, passive logs over a day /
// week of switches).
//
// Paper headlines: the median change is ~483 km and ~83% of switches move
// the client to a front-end within 2000 km of the old distance — switches
// mostly land on nearby alternatives, given the front-end density in
// North America and Europe.
#include <cstdio>

#include "analysis/figures.h"
#include "report/ascii_chart.h"
#include "report/series.h"
#include "report/shape_check.h"
#include "sim/simulation.h"
#include "sim/world.h"

int main() {
  using namespace acdn;
  World world(ScenarioConfig::paper_default());
  Simulation sim(world);
  const int kDays = 7;
  sim.run_days(kDays);

  const DistributionBuilder dist =
      fig8_switch_distance(sim.passive(), kDays, world.clients(),
                           world.cdn().deployment(), world.metros());
  if (dist.empty()) {
    std::printf("no front-end switches observed -- increase dynamics\n");
    return 1;
  }

  Figure figure("Figure 8: change in client-to-front-end distance on switch",
                "change_km", "CDF of front-end changes");
  figure.add_series(Series{"distance change", dist.cdf()});
  figure.write_csv("fig08_switch_distance.csv");
  ChartOptions chart;
  chart.log_x = true;
  chart.x_min = 64;
  chart.x_max = 8192;
  std::printf("%s\n", render_chart(figure, chart).c_str());
  std::printf("switch events: %zu\n", dist.count());

  ShapeReport report("Figure 8");
  // Band upper edge reflects the simulation's metro granularity: the world
  // is anchored on ~120 metros, so adjacent front-ends sit farther apart
  // than in the paper's deployment and the smallest possible switch is a
  // few hundred km.
  report.check("median distance change on switch (paper ~483 km)",
               dist.quantile(0.5), 150.0, 1250.0);
  report.check("switches within 2000 km (paper ~83%)",
               dist.fraction_at_most(2000.0), 0.65, 0.95);
  report.note("p90 distance change (km)", dist.quantile(0.9));
  return report.print() ? 0 : 1;
}
