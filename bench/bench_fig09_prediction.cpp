// Figure 9: improvement over anycast from history-based DNS redirection
// (paper §6) — train the 25th-percentile predictor on one day's beacon
// measurements, then compare the predicted front-end against anycast on
// the next day at the 50th and 75th percentiles, under both ECS (/24) and
// LDNS client grouping. Distributions are over query-weighted /24s.
//
// Paper headlines: most weighted prefixes see no difference (prediction
// picked anycast); with ECS ~30% of weighted prefixes improve and ~10%
// regress; with LDNS ~27% improve but ~17% regress — the LDNS granularity
// penalty.
#include <cstdio>

#include "core/evaluator.h"
#include "core/predictor.h"
#include "report/ascii_chart.h"
#include "report/series.h"
#include "report/shape_check.h"
#include "report/svg_chart.h"
#include "sim/simulation.h"
#include "sim/world.h"

int main() {
  using namespace acdn;
  ScenarioConfig config = ScenarioConfig::paper_default();
  // The paper's sampling was limited by engineering issues; we can afford
  // a denser beacon for the two days this experiment needs, which lets
  // more /24 groups clear the 20-measurement gate.
  config.schedule.beacon_sampling = 0.15;
  World world(config);
  Simulation sim(world);
  sim.run_days(2);  // day 0 trains, day 1 evaluates

  const auto train = sim.measurements().by_day(0);
  const auto eval = sim.measurements().by_day(1);
  std::printf("train: %zu measurements, eval: %zu measurements\n",
              train.size(), eval.size());

  // The figure counts the sign of the improvement (CDF mass either side of
  // zero), so no dead zone around zero here.
  PredictionEvaluator::Config eval_config;
  eval_config.epsilon_ms = 0.0;
  const PredictionEvaluator evaluator(world.clients(), world.ldns(),
                                      eval_config);
  Figure figure("Figure 9: improvement over anycast (ms)", "improvement_ms",
                "CDF of weighted /24s");

  struct Line {
    Grouping grouping;
    const char* name50;
    const char* name75;
    EvalSummary summary;
  };
  Line lines[] = {
      {Grouping::kEcsPrefix, "EDNS-0 Median", "EDNS-0 75th", {}},
      {Grouping::kLdns, "LDNS Median", "LDNS 75th", {}},
  };

  for (Line& line : lines) {
    PredictorConfig pc;
    pc.metric = PredictionMetric::kP25;  // the paper's choice
    pc.min_measurements = 20;
    pc.grouping = line.grouping;
    HistoryPredictor predictor(pc);
    predictor.train(train);
    std::printf("%s: %zu groups with predictions\n", to_string(line.grouping),
                predictor.predictions().size());

    const auto outcomes = evaluator.evaluate(predictor, eval);
    line.summary = evaluator.summarize(outcomes);
    figure.add_series(
        Series{line.name50, line.summary.improvement_p50.cdf()});
    figure.add_series(
        Series{line.name75, line.summary.improvement_p75.cdf()});
  }

  figure.write_csv("fig09_prediction.csv");
  {
    SvgOptions svg;
    svg.x_min = -100;
    svg.x_max = 100;
    write_svg(figure, "fig09_prediction.svg", svg);
  }
  ChartOptions chart;
  chart.x_min = -100;
  chart.x_max = 100;
  std::printf("%s\n", render_chart(figure, chart).c_str());

  const EvalSummary& ecs = lines[0].summary;
  const EvalSummary& ldns = lines[1].summary;
  std::printf("ECS : improved(p50)=%.3f worse(p50)=%.3f evaluated=%zu\n",
              ecs.fraction_improved_p50, ecs.fraction_worse_p50,
              ecs.evaluated);
  std::printf("LDNS: improved(p50)=%.3f worse(p50)=%.3f evaluated=%zu\n",
              ldns.fraction_improved_p50, ldns.fraction_worse_p50,
              ldns.evaluated);

  ShapeReport report("Figure 9");
  report.check("ECS weighted fraction improved at p50 (paper ~30%)",
               ecs.fraction_improved_p50, 0.10, 0.50);
  report.check("ECS weighted fraction worse at p50 (paper ~10%)",
               ecs.fraction_worse_p50, 0.0, 0.25);
  report.check("LDNS weighted fraction improved at p50 (paper ~27%)",
               ldns.fraction_improved_p50, 0.08, 0.55);
  report.check("LDNS pays a granularity penalty vs ECS (worse-rate delta)",
               ldns.fraction_worse_p50 - ecs.fraction_worse_p50, 0.0, 0.40);
  report.check("ECS net win (improved minus worse) is positive",
               ecs.fraction_improved_p50 - ecs.fraction_worse_p50, 0.0, 1.0);
  report.check(
      "LDNS net win does not beat ECS net win by more than 5pp "
      "(paper: ECS is the better granularity)",
      (ldns.fraction_improved_p50 - ldns.fraction_worse_p50) -
          (ecs.fraction_improved_p50 - ecs.fraction_worse_p50),
      -1.0, 0.05);
  return report.print() ? 0 : 1;
}
