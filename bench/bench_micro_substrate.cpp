// Substrate microbenchmarks (google-benchmark): the per-operation costs
// that determine how large a simulated world and measurement volume the
// library can handle.
#include <benchmark/benchmark.h>

#include "cdn/router.h"
#include "common/rng.h"
#include "net/radix_trie.h"
#include "routing/bgp.h"
#include "sim/world.h"
#include "stats/p2.h"
#include "stats/quantile.h"

namespace {

using namespace acdn;

const World& shared_world() {
  static World world(ScenarioConfig::paper_default());
  return world;
}

void BM_Haversine(benchmark::State& state) {
  const GeoPoint a{51.5, -0.1}, b{40.7, -74.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(haversine_km(a, b));
  }
}
BENCHMARK(BM_Haversine);

void BM_RadixTrieLongestMatch(benchmark::State& state) {
  RadixTrie<int> trie;
  PrefixAllocator alloc = PrefixAllocator::client_pool();
  for (int i = 0; i < state.range(0); ++i) {
    trie.insert(alloc.allocate_slash24(), i);
  }
  Rng rng(1);
  std::vector<Ipv4Address> queries;
  for (int i = 0; i < 1024; ++i) {
    queries.push_back(
        Ipv4Address((10u << 24) | (rng.next_u64() & 0xffffff)));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.longest_match(queries[i++ & 1023]));
  }
}
BENCHMARK(BM_RadixTrieLongestMatch)->Arg(1024)->Arg(16384);

void BM_P2Insert(benchmark::State& state) {
  P2Quantile p2(0.25);
  Rng rng(2);
  for (auto _ : state) {
    p2.add(rng.lognormal(3.0, 0.4));
  }
  benchmark::DoNotOptimize(p2.value());
}
BENCHMARK(BM_P2Insert);

void BM_ExactQuantile(benchmark::State& state) {
  Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < state.range(0); ++i) {
    samples.push_back(rng.lognormal(3.0, 0.4));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(quantile(samples, 0.25));
  }
}
BENCHMARK(BM_ExactQuantile)->Arg(64)->Arg(1024);

void BM_BgpAnycastTableCompute(benchmark::State& state) {
  const World& world = shared_world();
  const BgpSimulator sim(world.graph(), world.cdn().as_id());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.compute_anycast());
  }
}
BENCHMARK(BM_BgpAnycastTableCompute);

void BM_RouteAnycastLookup(benchmark::State& state) {
  const World& world = shared_world();
  const auto clients = world.clients().clients();
  std::size_t i = 0;
  for (auto _ : state) {
    const Client24& c = clients[i++ % clients.size()];
    benchmark::DoNotOptimize(
        world.router().route_anycast(c.access_as, c.metro));
  }
}
BENCHMARK(BM_RouteAnycastLookup);

void BM_BeaconRun(benchmark::State& state) {
  World& world = const_cast<World&>(shared_world());
  Rng rng(7);
  std::vector<DnsLogEntry> dns_log;
  std::vector<HttpLogEntry> http_log;
  const auto clients = world.clients().clients();
  std::size_t i = 0;
  for (auto _ : state) {
    const Client24& c = clients[i++ % clients.size()];
    const RouteResult route =
        world.router().route_anycast(c.access_as, c.metro);
    world.beacon().run_beacon(c, SimTime{0, 43200.0}, route, rng, dns_log,
                              http_log);
    if (dns_log.size() > 1u << 16) {
      dns_log.clear();
      http_log.clear();
    }
  }
}
BENCHMARK(BM_BeaconRun);

void BM_WorldConstruction(benchmark::State& state) {
  for (auto _ : state) {
    World world(ScenarioConfig::small_test());
    benchmark::DoNotOptimize(world.clients().size());
  }
}
BENCHMARK(BM_WorldConstruction)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
