// Substrate microbenchmarks (google-benchmark): the per-operation costs
// that determine how large a simulated world and measurement volume the
// library can handle.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>
#include <span>
#include <thread>
#include <vector>

#include "cdn/router.h"
#include "common/arena.h"
#include "common/executor.h"
#include "common/flat_group.h"
#include "common/metrics.h"
#include "common/radix.h"
#include "common/rng.h"
#include "net/radix_trie.h"
#include "routing/bgp.h"
#include "sim/world.h"
#include "stats/p2.h"
#include "stats/quantile.h"

namespace {

using namespace acdn;

const World& shared_world() {
  static World world(ScenarioConfig::paper_default());
  return world;
}

void BM_Haversine(benchmark::State& state) {
  const GeoPoint a{51.5, -0.1}, b{40.7, -74.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(haversine_km(a, b));
  }
}
BENCHMARK(BM_Haversine);

void BM_RadixTrieLongestMatch(benchmark::State& state) {
  RadixTrie<int> trie;
  PrefixAllocator alloc = PrefixAllocator::client_pool();
  for (int i = 0; i < state.range(0); ++i) {
    trie.insert(alloc.allocate_slash24(), i);
  }
  Rng rng(1);
  std::vector<Ipv4Address> queries;
  for (int i = 0; i < 1024; ++i) {
    queries.push_back(
        Ipv4Address((10u << 24) | (rng.next_u64() & 0xffffff)));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.longest_match(queries[i++ & 1023]));
  }
}
BENCHMARK(BM_RadixTrieLongestMatch)->Arg(1024)->Arg(16384);

void BM_P2Insert(benchmark::State& state) {
  P2Quantile p2(0.25);
  Rng rng(2);
  for (auto _ : state) {
    p2.add(rng.lognormal(3.0, 0.4));
  }
  benchmark::DoNotOptimize(p2.value());
}
BENCHMARK(BM_P2Insert);

void BM_ExactQuantile(benchmark::State& state) {
  Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < state.range(0); ++i) {
    samples.push_back(rng.lognormal(3.0, 0.4));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(quantile(samples, 0.25));
  }
}
BENCHMARK(BM_ExactQuantile)->Arg(64)->Arg(1024);

void BM_BgpAnycastTableCompute(benchmark::State& state) {
  const World& world = shared_world();
  const BgpSimulator sim(world.graph(), world.cdn().as_id());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.compute_anycast());
  }
}
BENCHMARK(BM_BgpAnycastTableCompute);

void BM_RouteAnycastLookup(benchmark::State& state) {
  const World& world = shared_world();
  const auto clients = world.clients().clients();
  std::size_t i = 0;
  for (auto _ : state) {
    const Client24& c = clients[i++ % clients.size()];
    benchmark::DoNotOptimize(
        world.router().route_anycast(c.access_as, c.metro));
  }
}
BENCHMARK(BM_RouteAnycastLookup);

void BM_BeaconRun(benchmark::State& state) {
  World& world = const_cast<World&>(shared_world());
  Rng rng(7);
  std::vector<DnsLogEntry> dns_log;
  std::vector<HttpLogEntry> http_log;
  const auto clients = world.clients().clients();
  std::size_t i = 0;
  for (auto _ : state) {
    const Client24& c = clients[i++ % clients.size()];
    const RouteResult route =
        world.router().route_anycast(c.access_as, c.metro);
    world.beacon().run_beacon(c, SimTime{0, 43200.0}, route, rng, dns_log,
                              http_log);
    if (dns_log.size() > 1u << 16) {
      dns_log.clear();
      http_log.clear();
    }
  }
}
BENCHMARK(BM_BeaconRun);

// ------------------------------------------------------------- metrics
//
// The observability layer's cost contract: a disabled call site is one
// relaxed load and a branch; an enabled counter touches only the calling
// thread's shard. The *Metrics variants of the hot-path benchmarks above
// quantify the acceptance bound — instrumented beacon execution and route
// resolution within a few percent of the uninstrumented baselines.

void BM_MetricCounterDisabled(benchmark::State& state) {
  set_metrics_enabled(false);
  for (auto _ : state) {
    metric_count("bench.counter");
  }
}
BENCHMARK(BM_MetricCounterDisabled);

void BM_MetricCounterEnabled(benchmark::State& state) {
  set_metrics_enabled(true);
  for (auto _ : state) {
    metric_count("bench.counter");
  }
  set_metrics_enabled(false);
  MetricsRegistry::global().reset();
}
BENCHMARK(BM_MetricCounterEnabled);

void BM_MetricHistogramEnabled(benchmark::State& state) {
  set_metrics_enabled(true);
  Rng rng(11);
  for (auto _ : state) {
    metric_observe("bench.hist", rng.lognormal(3.0, 0.4));
  }
  set_metrics_enabled(false);
  MetricsRegistry::global().reset();
}
BENCHMARK(BM_MetricHistogramEnabled);

void BM_RouteAnycastLookupMetrics(benchmark::State& state) {
  set_metrics_enabled(true);
  const World& world = shared_world();
  const auto clients = world.clients().clients();
  std::size_t i = 0;
  for (auto _ : state) {
    const Client24& c = clients[i++ % clients.size()];
    benchmark::DoNotOptimize(
        world.router().route_anycast(c.access_as, c.metro));
  }
  set_metrics_enabled(false);
  MetricsRegistry::global().reset();
}
BENCHMARK(BM_RouteAnycastLookupMetrics);

void BM_BeaconRunMetrics(benchmark::State& state) {
  set_metrics_enabled(true);
  World& world = const_cast<World&>(shared_world());
  Rng rng(7);
  std::vector<DnsLogEntry> dns_log;
  std::vector<HttpLogEntry> http_log;
  const auto clients = world.clients().clients();
  std::size_t i = 0;
  for (auto _ : state) {
    const Client24& c = clients[i++ % clients.size()];
    const RouteResult route =
        world.router().route_anycast(c.access_as, c.metro);
    world.beacon().run_beacon(c, SimTime{0, 43200.0}, route, rng, dns_log,
                              http_log);
    if (dns_log.size() > 1u << 16) {
      dns_log.clear();
      http_log.clear();
    }
  }
  set_metrics_enabled(false);
  MetricsRegistry::global().reset();
}
BENCHMARK(BM_BeaconRunMetrics);

// ------------------------------------------------------ executor scaling
//
// Day-loop-shaped kernel: ~1k independent items, tens of microseconds of
// total work. At this size per-call thread spawning is mostly overhead —
// the shape the persistent pool exists for. Compare BM_DayLoopSpawn vs
// BM_DayLoopPool at the same thread count.

std::uint64_t mix_item(std::size_t i) {
  std::uint64_t x = 0x9e3779b97f4a7c15ull ^ (i + 1);
  for (int r = 0; r < 8; ++r) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 29;
  }
  return x;
}

constexpr std::size_t kDayLoopItems = 1024;

/// The pre-executor parallel_for: spawn + join `threads` OS threads per
/// call. Kept verbatim as the baseline the pool is measured against.
void spawn_parallel_for(std::size_t begin, std::size_t end, int threads,
                        const std::function<void(std::size_t)>& fn) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  if (threads <= 1 || n == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const auto workers =
      std::min<std::size_t>(static_cast<std::size_t>(threads), n);
  // NOLINT-ACDN(raw-thread): spawn-per-call baseline the pool is measured
  std::vector<std::thread> pool;  // against; must bypass the executor
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      for (std::size_t i = begin + w; i < end; i += workers) fn(i);
    });
  }
  // NOLINT-ACDN(raw-thread): joining the baseline's own threads
  for (std::thread& t : pool) t.join();
}

void BM_DayLoopSpawn(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  std::vector<std::uint64_t> out(kDayLoopItems);
  for (auto _ : state) {
    spawn_parallel_for(0, kDayLoopItems, threads,
                       [&](std::size_t i) { out[i] = mix_item(i); });
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_DayLoopSpawn)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_DayLoopPool(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  std::vector<std::uint64_t> out(kDayLoopItems);
  Executor& pool = Executor::global();
  for (auto _ : state) {
    pool.parallel_for(0, kDayLoopItems, threads,
                      [&](std::size_t i) { out[i] = mix_item(i); });
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_DayLoopPool)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// -------------------------------------------------- cost-model calibration
//
// The floors in common/cost_model.h came from these curves. Below
// kRadixParallelMinKeys (1<<20) the parallel radix path's extra histogram
// passes and merge levels cost more than they save, so plan_parallelism
// keeps both thread counts on the serial LSD path and the 1t/4t numbers
// coincide; above the floor they may diverge (and on a multi-core box the
// 4t curve should win). The join's kJoinMinRowsPerShard (1<<16) floor is
// the same economics one layer up: a shard pays a boundary search plus a
// staging copy, so a day below ~2 shards' worth of log rows goes through
// the single-shard presorted fast path regardless of the thread request —
// bench_pipeline_hot's thread_sweep is the end-to-end check that this
// keeps N-thread joins from ever losing to 1-thread.

void BM_RadixSortCrossover(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  Rng rng(13);
  std::vector<std::uint64_t> keys(n);
  for (std::uint64_t& k : keys) k = rng.next_u64();
  std::vector<std::uint64_t> work(n);
  ScratchArena scratch;
  for (auto _ : state) {
    work = keys;  // identical copy cost on every (size, threads) point
    radix_sort(std::span<std::uint64_t>(work), threads, &scratch);
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RadixSortCrossover)
    ->ArgsProduct({{256 << 10, 1 << 20, 2 << 20, 4 << 20}, {1, 4}});

void BM_ParallelSortCrossover(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  Rng rng(17);
  std::vector<std::uint64_t> keys(n);
  for (std::uint64_t& k : keys) k = rng.next_u64();
  std::vector<std::uint64_t> work(n);
  for (auto _ : state) {
    work = keys;
    parallel_sort(std::span<std::uint64_t>(work), threads);
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ParallelSortCrossover)
    ->ArgsProduct({{256 << 10, 1 << 20, 2 << 20, 4 << 20}, {1, 4}});

void BM_WorldConstruction(benchmark::State& state) {
  for (auto _ : state) {
    World world(ScenarioConfig::small_test());
    benchmark::DoNotOptimize(world.clients().size());
  }
}
BENCHMARK(BM_WorldConstruction)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
