// Hot-path pipeline benchmark: simulated day loop, DNS x HTTP sort-merge
// join, and the group-by aggregation stack (daily_improvement + predictor
// training) at three deployment scales. Emits machine-readable
// BENCH_pipeline.json (ns/row, rows/s, peak RSS) so the repo has a perf
// trajectory; CI runs `bench_pipeline_hot --smoke` and uploads the JSON
// as a trend artifact (no gating).
//
// The committed repo-root BENCH_pipeline.json pins the pre-refactor
// baseline (kBaseline below) next to the measured numbers of the run that
// produced it; the columnar-pipeline PR's acceptance bar is >= 2x
// join+aggregate throughput over that baseline.
//
// The day-route-plan PR moved anycast resolution out of the per-client
// loop (resolve once per routing unit, O(1) client lookup) and de-locked
// the beacon fetch path; its bar is >= 1.5x sim-phase throughput at the
// "large" scale over the previously committed sim numbers (189.65 ->
// 117.08 ns/row on the pinned run, ~1.6x). The batch-kernel PR rewired
// the join and aggregation onto radix sorts and SIMD kernels; its bar is
// >= 1.5x join and aggregate ns/row at the "large" scale. CI's
// perf-smoke leg gates the small-scale sim, join, and aggregate figures
// against the committed JSON via tools/perf_gate.sh. Each scale also
// records a 1/4/max thread sweep of the two deterministic phases and the
// process high-water RSS after the scale completed.
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/figures.h"
#include "common/error.h"
#include "common/executor.h"
#include "core/predictor.h"
#include "core/streaming.h"
#include "sim/pipeline.h"
#include "sim/simulation.h"
#include "sim/world.h"

namespace {

using namespace acdn;

/// Benchmarks measure elapsed real time by definition; nothing here feeds
/// back into simulation state.
struct WallTimer {
  // NOLINT-ACDN(wall-clock): benchmark harness measures elapsed real time
  using Clock = std::chrono::steady_clock;

  Clock::time_point start = Clock::now();

  [[nodiscard]] double elapsed_ns() const {
    return double(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      Clock::now() - start)
                      .count());
  }
};

/// Peak resident set size in kB from /proc/self/status (0 off-Linux).
long peak_rss_kb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtol(line.c_str() + 6, nullptr, 10);
    }
  }
  return 0;
}

struct PhaseResult {
  double total_ns = 0;      // wall time across all reps
  std::size_t rows = 0;     // rows processed per rep
  int reps = 0;

  [[nodiscard]] double ns_per_row() const {
    const double n = double(rows) * double(reps);
    return n > 0 ? total_ns / n : 0.0;
  }
  [[nodiscard]] double rows_per_s() const {
    return total_ns > 0 ? double(rows) * double(reps) * 1e9 / total_ns : 0.0;
  }
};

/// One thread-count point of the join/aggregate thread sweep.
struct SweepEntry {
  int threads = 0;
  PhaseResult join;
  PhaseResult aggregate;
};

struct ScaleResult {
  std::string name;
  int clients = 0;
  int sites = 0;
  int threads = 0;
  PhaseResult sim;        // rows = dns+http+passive rows per day
  PhaseResult join;       // rows = dns+http log rows
  PhaseResult aggregate;  // rows = latency samples (targets)
  /// Process high-water RSS right after this scale finished (kB):
  /// monotone across scales, so the per-scale deltas localize growth.
  long rss_kb = 0;
  std::vector<SweepEntry> sweep;  // join+aggregate at 1 / 4 / max threads
};

/// Pre-refactor (hash-join + std::map group-by) numbers, captured on this
/// machine with the same scales and rep counts. ns/row for the join and
/// aggregate phases; the >= 2x bar compares against these.
struct Baseline {
  const char* scale;
  double join_ns_per_row;
  double aggregate_ns_per_row;
  double sim_day_ms;
};
constexpr Baseline kBaseline[] = {
    {"small", 81.05, 204.84, 7.738},
    {"medium", 143.11, 268.72, 34.792},
    {"large", 151.05, 287.46, 275.168},
};

/// Rebuilds the two server-side logs a day's measurements joined from:
/// one DNS row and one HTTP row per fetched target, url_id derived from
/// the beacon id exactly as beacon.cpp assigns them.
void rebuild_logs(std::span<const BeaconMeasurement> day,
                  std::vector<DnsLogEntry>* dns,
                  std::vector<HttpLogEntry>* http) {
  std::size_t targets = 0;
  for (const BeaconMeasurement& m : day) targets += m.targets.size();
  dns->reserve(targets);
  http->reserve(targets);
  for (const BeaconMeasurement& m : day) {
    for (std::size_t k = 0; k < m.targets.size(); ++k) {
      const std::uint64_t url_id = m.beacon_id * 4 + k;
      dns->push_back(DnsLogEntry{url_id, m.ldns, m.day});
      const BeaconMeasurement::Target& t = m.targets[k];
      http->push_back(HttpLogEntry{url_id, m.client, t.anycast, t.front_end,
                                   t.rtt_ms, m.day, m.hour});
    }
  }
}

ScaleResult run_scale(const std::string& name, ScenarioConfig config,
                      int days, int reps) {
  ScaleResult result;
  result.name = name;
  result.clients = config.workload.total_client_24s;
  result.sites = config.deployment.total();
  result.threads = config.simulation_threads;

  World world(config);
  Simulation sim(world);

  // --- Phase 1: the full simulated day loop (generation + join).
  {
    const WallTimer timer;
    sim.run_days(days);
    result.sim.total_ns = timer.elapsed_ns();
    result.sim.reps = days;
  }

  // --- Phase 2: the DNS x HTTP join, isolated, on rebuilt logs.
  std::vector<DnsLogEntry> dns_log;
  std::vector<HttpLogEntry> http_log;
  rebuild_logs(sim.measurements().by_day(0), &dns_log, &http_log);
  require(!dns_log.empty(), "bench scale produced no beacon rows");
  result.sim.rows = (dns_log.size() + http_log.size()) * std::size_t(days);
  result.join.rows = dns_log.size() + http_log.size();
  result.join.reps = reps;
  {
    const WallTimer timer;
    for (int r = 0; r < reps; ++r) {
      MeasurementStore fresh;
      fresh.join(dns_log, http_log, config.simulation_threads);
    }
    result.join.total_ns = timer.elapsed_ns();
  }

  // --- Phase 3: the group-by aggregation stack on day 0's columns. One
  // DayAggregates build per rep feeds both consumers (the shared-build
  // pipeline shape), with a warm scratch arena across reps as in the
  // production day loop.
  const MeasurementColumns& day0 = sim.measurements().columns(0);
  result.aggregate.rows = day0.target_count();
  result.aggregate.reps = reps;
  PredictorConfig pc;
  pc.metric = PredictionMetric::kP25;
  pc.threads = config.simulation_threads;
  ScratchArena agg_scratch;
  std::size_t sink = 0;  // keeps the aggregate results observably used
  {
    const WallTimer timer;
    for (int r = 0; r < reps; ++r) {
      const DayAggregates agg =
          DayAggregates::build(day0, Grouping::kEcsPrefix,
                               config.simulation_threads, &agg_scratch);
      const auto improvements =
          daily_improvement(agg, Fig5Config{}, config.simulation_threads);
      HistoryPredictor predictor(pc);
      predictor.train(agg);
      sink += improvements.size() + predictor.predictions().size();
    }
    result.aggregate.total_ns = timer.elapsed_ns();
  }
  require(sink > 0, "aggregate phase produced no groups");

  // --- Thread sweep: the two deterministic phases at 1 / 4 / max
  // threads. The outputs are bit-identical across counts by contract;
  // the sweep records what that determinism costs or buys in wall time.
  int sweep_counts[] = {1, 4, default_thread_count()};
  for (const int t : sweep_counts) {
    bool seen = false;
    for (const SweepEntry& e : result.sweep) seen = seen || e.threads == t;
    if (seen) continue;
    SweepEntry entry;
    entry.threads = t;
    entry.join.rows = result.join.rows;
    entry.join.reps = reps;
    {
      const WallTimer timer;
      for (int r = 0; r < reps; ++r) {
        MeasurementStore fresh;
        fresh.join(dns_log, http_log, t);
      }
      entry.join.total_ns = timer.elapsed_ns();
    }
    entry.aggregate.rows = result.aggregate.rows;
    entry.aggregate.reps = reps;
    ScratchArena sweep_scratch;
    {
      const WallTimer timer;
      for (int r = 0; r < reps; ++r) {
        const DayAggregates agg =
            DayAggregates::build(day0, Grouping::kEcsPrefix, t,
                                 &sweep_scratch);
        sink += agg.groups().size();
      }
      entry.aggregate.total_ns = timer.elapsed_ns();
    }
    result.sweep.push_back(entry);
  }

  result.rss_kb = peak_rss_kb();
  return result;
}

// --------------------------------------------------------------- scenario
// End-to-end multi-day section: the pre-pipeline serial composition
// (run_day per day, then the batch figure-5 pass and a per-row trainer
// fold over the finished store) against the cross-day pipelined loop
// (sim/pipeline.h) at several thread counts. Digests must match across
// every run — the pipeline's determinism contract — before any timing is
// worth reporting. `hardware_threads` is recorded alongside: on a 1-core
// box the overlap cannot buy wall time, and whatever the pipelined loop
// still saves comes from work avoided (the columnar trainer fold skips
// the per-row struct materialization the serial composition pays).

std::uint64_t mix_into(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

/// Order-sensitive digest over every stored measurement field (the chaos
/// wall's scheme): equal digests mean byte-identical stores.
std::uint64_t store_digest(const MeasurementStore& store) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (DayIndex d = 0; d < store.days(); ++d) {
    for (const BeaconMeasurement& m : store.by_day(d)) {
      h = mix_into(h, m.beacon_id);
      h = mix_into(h, m.client.value);
      h = mix_into(h, m.ldns.value);
      h = mix_into(h, std::uint64_t(m.day));
      for (const BeaconMeasurement::Target& t : m.targets) {
        h = mix_into(h, t.anycast ? 1 : 0);
        h = mix_into(h, t.front_end.value);
        h = mix_into(h, std::bit_cast<std::uint64_t>(t.rtt_ms));
      }
    }
  }
  return h;
}

PredictorConfig scenario_predictor() {
  PredictorConfig pc;
  pc.min_measurements = 3;
  return pc;
}

struct ScenarioEntry {
  std::string mode;  // "serial" or "pipelined"
  int threads = 0;
  int window = 0;
  int days = 0;
  double total_ms = 0;
  std::uint64_t digest = 0;
  std::uint64_t observed = 0;
};

ScenarioEntry run_scenario_serial(ScenarioConfig config, int days) {
  config.simulation_threads = 1;
  World world(config);
  Simulation sim(world);
  StreamingTrainer trainer(scenario_predictor());

  ScenarioEntry entry;
  entry.mode = "serial";
  entry.threads = 1;
  entry.window = 0;
  entry.days = days;
  const WallTimer timer;
  sim.run_days(days);
  const auto prevalence =
      fig5_daily_prevalence(sim.measurements(), Fig5Config{});
  for (DayIndex d = 0; d < sim.measurements().days(); ++d) {
    for (const BeaconMeasurement& m : sim.measurements().by_day(d)) {
      trainer.observe(m);
    }
  }
  entry.total_ms = timer.elapsed_ns() / 1e6;
  require(prevalence.size() == std::size_t(days),
          "scenario produced the wrong number of figure-5 days");
  entry.digest = store_digest(sim.measurements());
  entry.observed = trainer.observed();
  return entry;
}

ScenarioEntry run_scenario_pipelined(ScenarioConfig config, int days,
                                     int threads, int window) {
  config.simulation_threads = threads;
  World world(config);
  Simulation sim(world);
  PipelineOptions options;
  options.window = window;
  options.threads = threads;
  options.predictor = scenario_predictor();
  ScenarioPipeline pipeline(sim, options);

  ScenarioEntry entry;
  entry.mode = "pipelined";
  entry.threads = threads;
  entry.window = window;
  entry.days = days;
  const WallTimer timer;
  const PipelineResult result = pipeline.run_days(days);
  entry.total_ms = timer.elapsed_ns() / 1e6;
  require(result.prevalence.size() == std::size_t(days),
          "pipeline produced the wrong number of figure-5 days");
  entry.digest = store_digest(sim.measurements());
  entry.observed = result.observed;
  return entry;
}

std::vector<ScenarioEntry> run_scenario(const ScenarioConfig& config,
                                        int days, bool smoke) {
  std::vector<ScenarioEntry> out;
  out.push_back(run_scenario_serial(config, days));
  if (smoke) {
    // CI's perf-smoke leg: one pipelined pass with overlap actually armed.
    out.push_back(run_scenario_pipelined(config, days, 2, 2));
  } else {
    int counts[] = {1, 2, 4, default_thread_count()};
    for (const int t : counts) {
      bool seen = false;
      for (const ScenarioEntry& e : out) {
        seen = seen || (e.mode == "pipelined" && e.threads == t);
      }
      if (!seen) out.push_back(run_scenario_pipelined(config, days, t, 2));
    }
  }
  for (const ScenarioEntry& e : out) {
    require(e.digest == out.front().digest,
            "pipelined scenario diverged from the serial composition");
    require(e.observed == out.front().observed,
            "pipelined trainer fold diverged from the serial composition");
  }
  return out;
}

void write_phase(std::FILE* f, const char* key, const PhaseResult& p,
                 bool last) {
  std::fprintf(f,
               "    \"%s\": {\"rows\": %zu, \"reps\": %d, "
               "\"total_ms\": %.3f, \"ns_per_row\": %.2f, "
               "\"rows_per_s\": %.0f}%s\n",
               key, p.rows, p.reps, p.total_ns / 1e6, p.ns_per_row(),
               p.rows_per_s(), last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int threads = default_thread_count();

  ScenarioConfig small = ScenarioConfig::small_test();
  small.simulation_threads = threads;

  ScenarioConfig medium = ScenarioConfig::small_test();
  medium.workload.total_client_24s = 1600;
  medium.deployment.north_america = 12;
  medium.deployment.europe = 10;
  medium.deployment.asia = 6;
  medium.schedule.beacon_sampling = 0.05;
  medium.simulation_threads = threads;

  ScenarioConfig large = ScenarioConfig::paper_default();
  large.schedule.beacon_sampling = 0.15;  // dense beacon, as in fig09
  large.simulation_threads = threads;

  std::vector<ScaleResult> results;
  // Smoke simulates the same two small-scale days as the full run: the
  // perf gate compares smoke sim ns/row against the committed full-run
  // reference, so both must amortize the day-0 cold build identically.
  results.push_back(run_scale("small", small, 2, smoke ? 2 : 20));
  if (!smoke) {
    results.push_back(run_scale("medium", medium, 2, 10));
    results.push_back(run_scale("large", large, 2, 5));
  }

  // --- End-to-end scenario: serial composition vs the pipelined day
  // loop. Smoke runs the small world (and exercises the pipelined loop
  // with threads=2, window=2 on every CI perf-smoke run); the full run
  // sweeps thread counts at the large scale.
  const int scenario_days = smoke ? 2 : 3;
  const std::vector<ScenarioEntry> scenario =
      run_scenario(smoke ? small : large, scenario_days, smoke);

  std::FILE* f = std::fopen("BENCH_pipeline.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_pipeline.json\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"bench_pipeline_hot\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"threads\": %d,\n", threads);
  std::fprintf(f, "  \"peak_rss_kb\": %ld,\n", peak_rss_kb());
  std::fprintf(f, "  \"scales\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScaleResult& r = results[i];
    std::fprintf(f,
                 "   {\"name\": \"%s\", \"clients\": %d, \"sites\": %d, "
                 "\"threads\": %d,\n",
                 r.name.c_str(), r.clients, r.sites, r.threads);
    write_phase(f, "sim", r.sim, false);
    write_phase(f, "join", r.join, false);
    write_phase(f, "aggregate", r.aggregate, false);
    std::fprintf(f, "    \"peak_rss_kb\": %ld,\n", r.rss_kb);
    std::fprintf(f, "    \"thread_sweep\": [\n");
    for (std::size_t s = 0; s < r.sweep.size(); ++s) {
      const SweepEntry& e = r.sweep[s];
      std::fprintf(f,
                   "     {\"threads\": %d, \"join_ns_per_row\": %.2f, "
                   "\"aggregate_ns_per_row\": %.2f}%s\n",
                   e.threads, e.join.ns_per_row(), e.aggregate.ns_per_row(),
                   s + 1 < r.sweep.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n");
    std::fprintf(f, "   }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"scenario\": {\n");
  std::fprintf(f, "   \"days\": %d,\n", scenario_days);
  std::fprintf(f, "   \"hardware_threads\": %d,\n", default_thread_count());
  std::fprintf(f, "   \"runs\": [\n");
  for (std::size_t i = 0; i < scenario.size(); ++i) {
    const ScenarioEntry& e = scenario[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"threads\": %d, \"window\": %d, "
                 "\"total_ms\": %.3f, \"ms_per_day\": %.3f, "
                 "\"digest\": \"%016llx\"}%s\n",
                 e.mode.c_str(), e.threads, e.window, e.total_ms,
                 e.total_ms / double(e.days),
                 static_cast<unsigned long long>(e.digest),
                 i + 1 < scenario.size() ? "," : "");
  }
  std::fprintf(f, "   ]\n  },\n");
  std::fprintf(f, "  \"baseline_pre_refactor\": [\n");
  for (std::size_t i = 0; i < std::size(kBaseline); ++i) {
    const Baseline& b = kBaseline[i];
    std::fprintf(f,
                 "   {\"name\": \"%s\", \"join_ns_per_row\": %.2f, "
                 "\"aggregate_ns_per_row\": %.2f, \"sim_day_ms\": %.3f}%s\n",
                 b.scale, b.join_ns_per_row, b.aggregate_ns_per_row,
                 b.sim_day_ms, i + 1 < std::size(kBaseline) ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);

  for (const ScaleResult& r : results) {
    std::printf(
        "%-6s  clients=%d sites=%d threads=%d\n"
        "  sim      : %8.3f ms/day   (%zu rows/day)\n"
        "  join     : %8.2f ns/row   (%.0f rows/s, %zu rows)\n"
        "  aggregate: %8.2f ns/row   (%.0f rows/s, %zu samples)\n",
        r.name.c_str(), r.clients, r.sites, r.threads,
        r.sim.total_ns / 1e6 / double(r.sim.reps),
        r.sim.rows / std::size_t(r.sim.reps), r.join.ns_per_row(),
        r.join.rows_per_s(), r.join.rows, r.aggregate.ns_per_row(),
        r.aggregate.rows_per_s(), r.aggregate.rows);
  }
  for (const ScenarioEntry& e : scenario) {
    std::printf("scenario %-9s threads=%d window=%d : %8.3f ms/day\n",
                e.mode.c_str(), e.threads, e.window,
                e.total_ms / double(e.days));
  }
  std::printf("peak RSS: %ld kB\nwrote BENCH_pipeline.json\n",
              peak_rss_kb());
  return 0;
}
