// Section 2's anycast load-management claims, made executable:
//
//   "If a particular front-end becomes overloaded, it is difficult to
//    gradually direct traffic away from that front-end, although there
//    has been recent progress in this area [FastRoute]. Simply
//    withdrawing the route to take that front-end offline can lead to
//    cascading overloading of nearby front-ends."
//
// Scenario: withdraw the CDN's most-loaded front-end. Compare (a) the
// naive route-withdrawal cascade against (b) FastRoute-style gradual DNS
// shedding handling the same failure.
#include <cstdio>

#include "load/fastroute.h"
#include "load/load_model.h"
#include "load/withdrawal.h"
#include "report/shape_check.h"
#include "sim/world.h"

int main() {
  using namespace acdn;
  World world(ScenarioConfig::paper_default());

  // Tight provisioning makes §2's failure mode visible: sites run hot, so
  // a neighbor's catchment landing on them pushes them over.
  LoadConfig load_config;
  load_config.headroom = 1.35;
  const LoadModel model(world.clients(), world.router(), load_config);

  const LoadMap& baseline = model.baseline();
  FrontEndId biggest;
  for (std::size_t i = 0; i < baseline.offered.size(); ++i) {
    if (!biggest.valid() ||
        baseline.offered[i] > baseline.offered[biggest.value]) {
      biggest = FrontEndId(static_cast<std::uint32_t>(i));
    }
  }
  const Deployment& deployment = world.cdn().deployment();
  std::printf("baseline: %zu front-ends, none overloaded (%zu), biggest "
              "site %s carries %.0f q/day\n",
              baseline.offered.size(), baseline.overloaded_count(),
              deployment.site(biggest).name.c_str(),
              baseline.offered[biggest.value]);

  // --- (a) Naive withdrawal of the biggest site.
  const WithdrawalSimulator withdrawal(model);
  const CascadeResult cascade = withdrawal.cascade({biggest});
  std::printf("\nwithdrawal cascade:\n");
  for (const CascadeRound& round : cascade.rounds) {
    std::printf("  round %d: withdrew %zu site(s); %zu survivors "
                "overloaded; max utilization %.2f\n",
                round.round, round.newly_withdrawn.size(),
                round.overloaded.size(), round.max_utilization);
  }
  std::printf("  total sites lost: %zu of %zu%s\n",
              cascade.total_withdrawn.size(), baseline.offered.size(),
              cascade.collapsed ? " (full collapse)" : "");

  // --- (b) FastRoute-style shedding of the same failure: the site fails,
  // but instead of letting overloads trigger more withdrawals, the
  // controller sheds DNS traffic from hot survivors to spare capacity.
  std::vector<bool> withdrawn(baseline.offered.size(), false);
  withdrawn[biggest.value] = true;
  const LoadMap after_failure = model.with_withdrawn(withdrawn);
  SheddingConfig shed_config;
  const FastRouteController controller(model, shed_config);
  const SheddingPlan plan = controller.plan(after_failure);
  std::printf("\nload-aware shedding after the same failure:\n");
  std::printf("  overloaded before shedding: %zu\n",
              after_failure.overloaded_count());
  std::printf("  shed directives: %zu moving %.1f%% of global traffic, "
              "%d round(s)\n",
              plan.directives.size(), 100.0 * plan.moved_share(),
              plan.rounds);
  std::printf("  overloaded after shedding: %zu (stabilized: %s)\n",
              plan.final_load.overloaded_count(),
              plan.stabilized ? "yes" : "no");

  ShapeReport report("Section 2: overload handling");
  report.check("baseline is healthy (no overloaded site)",
               double(baseline.overloaded_count()), 0, 0);
  report.check("naive withdrawal cascades (additional sites lost)",
               double(cascade.total_withdrawn.size()), 2, 1e9);
  report.check("shedding moves a small, gradual share of traffic",
               plan.moved_share(), 0.0, 0.35);
  report.check("shedding ends with fewer overloaded sites than it started",
               double(after_failure.overloaded_count()) -
                   double(plan.final_load.overloaded_count()),
               0.0, 1e9);
  report.check("no site is overloaded after shedding",
               double(plan.final_load.overloaded_count()), 0, 0);
  return report.print() ? 0 : 1;
}
