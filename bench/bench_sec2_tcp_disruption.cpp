// Section 2's TCP claim, made executable: anycast route changes break
// in-flight TCP sessions, but "the Web ... is dominated by short flows"
// so this "does not appear to be an issue in practice". We measure the
// per-client front-end change rate from the simulated world's route
// dynamics (the same machinery behind Figure 7), then estimate the
// disrupted-flow fraction per flow profile.
#include <cstdio>
#include <map>
#include <set>

#include "analysis/tcp_disruption.h"
#include "common/csv.h"
#include "report/shape_check.h"
#include "sim/simulation.h"
#include "sim/world.h"

int main() {
  using namespace acdn;
  World world(ScenarioConfig::paper_default());
  Simulation sim(world);
  const int kDays = 7;
  sim.run_days(kDays);

  // Front-end transitions per client over the week, from passive logs:
  // dominant-FE changes across days plus two transitions per flap day.
  std::map<ClientId, std::map<DayIndex, std::set<FrontEndId>>> seen;
  std::map<ClientId, std::map<DayIndex, FrontEndId>> dominant;
  for (DayIndex d = 0; d < kDays; ++d) {
    std::map<ClientId, std::pair<double, FrontEndId>> best;
    for (const PassiveLogEntry& e : sim.passive().by_day(d)) {
      seen[e.client][d].insert(e.front_end);
      auto& b = best[e.client];
      if (e.queries > b.first) b = {e.queries, e.front_end};
    }
    for (const auto& [client, b] : best) dominant[client][d] = b.second;
  }
  double transitions = 0.0;
  std::size_t client_days = 0;
  for (const auto& [client, days] : seen) {
    std::optional<FrontEndId> prev;
    for (const auto& [day, fes] : days) {
      client_days += 1;
      transitions += 2.0 * double(fes.size() - 1);  // flap away + back
      const FrontEndId dom = dominant[client][day];
      if (prev && *prev != dom) transitions += 1.0;
      prev = dom;
    }
  }
  DisruptionConfig config;
  config.route_changes_per_day = transitions / double(client_days);
  std::printf("measured front-end transitions per client-day: %.4f\n\n",
              config.route_changes_per_day);

  Rng rng = world.fork_rng("tcp-disruption");
  const auto sweep = disruption_sweep(config, rng);
  CsvWriter csv("sec2_tcp_disruption.csv");
  csv.write_header({"profile", "mean_duration_s", "disrupted_fraction"});
  std::printf("%-12s %18s %20s\n", "profile", "mean duration (s)",
              "disrupted fraction");
  std::map<FlowProfile, double> disrupted;
  for (const DisruptionEstimate& e : sweep) {
    std::printf("%-12s %18.1f %19.5f%%\n", to_string(e.profile),
                e.mean_duration_s, 100.0 * e.disrupted_fraction);
    csv.write_row({to_string(e.profile), std::to_string(e.mean_duration_s),
                   std::to_string(e.disrupted_fraction)});
    disrupted[e.profile] = e.disrupted_fraction;
  }

  ShapeReport report("Section 2: TCP disruption");
  report.check("short web flows are essentially never disrupted (<0.1%)",
               disrupted[FlowProfile::kWebShort], 0.0, 0.001);
  report.check("full page loads are rarely disrupted (<0.5%)",
               disrupted[FlowProfile::kWebPage], 0.0, 0.005);
  report.check("long video sessions are disrupted orders of magnitude more",
               disrupted[FlowProfile::kVideoLong] /
                   std::max(1e-9, disrupted[FlowProfile::kWebShort]),
               50.0, 1e12);
  report.note("download disruption fraction",
              disrupted[FlowProfile::kDownload]);
  return report.print() ? 0 : 1;
}
