// Section 4 table: CDN deployment sizes from public data, situating the
// study's CDN among 21 CDNs and content providers.
//
// Paper headlines: Google and Akamai (1000+ locations) and the Chinese
// CDNs are outliers; most CDNs run between 17 (CDNify) and 62 (Level3)
// locations; the study's CDN sits in the Level3/MaxCDN tier; CloudFlare,
// CacheFly and EdgeCast run anycast at that scale.
#include <cstdio>

#include "cdn/catalogs.h"
#include "common/csv.h"
#include "report/shape_check.h"
#include "sim/world.h"

int main() {
  using namespace acdn;

  std::printf("== Section 4: CDN deployment sizes (public data) ==\n");
  std::printf("%-22s %10s %8s %7s\n", "CDN", "locations", "anycast",
              "source");
  CsvWriter csv("sec4_cdn_sizes.csv");
  csv.write_header({"cdn", "locations", "anycast", "china_focused",
                    "approximate"});
  for (const CdnCatalogEntry& e : cdn_catalog()) {
    std::printf("%-22s %10d %8s %7s\n", std::string(e.name).c_str(),
                e.locations, e.anycast ? "yes" : "no",
                e.approximate ? "approx" : "paper");
    csv.write_row({std::string(e.name), std::to_string(e.locations),
                   e.anycast ? "1" : "0", e.china_focused ? "1" : "0",
                   e.approximate ? "1" : "0"});
  }

  // Cross-check the simulated deployment against the catalog claim.
  World world(ScenarioConfig::paper_default());
  const int simulated = static_cast<int>(world.cdn().deployment().size());
  std::printf("\nsimulated study-CDN deployment: %d front-end locations\n",
              simulated);

  int mid_tier = 0;
  for (const CdnCatalogEntry& e : cdn_catalog()) {
    if (e.locations >= 17 && e.locations <= 62 && !e.china_focused) {
      ++mid_tier;
    }
  }

  ShapeReport report("Section 4");
  report.check("study CDN location count (paper: 'a few dozen')",
               double(study_cdn().locations), 30, 62);
  report.check("simulated deployment matches the catalog entry",
               double(simulated), study_cdn().locations - 5,
               study_cdn().locations + 5);
  report.check("most catalog CDNs are in the 17-62 tier (paper: 17 of 21)",
               double(mid_tier), 12, 20);
  report.check("anycast CDNs in catalog (CloudFlare/CacheFly/EdgeCast/...)",
               [] {
                 int n = 0;
                 for (const CdnCatalogEntry& e : cdn_catalog()) {
                   if (e.anycast) ++n;
                 }
                 return double(n);
               }(),
               3, 8);
  return report.print() ? 0 : 1;
}
