// Section 5 case studies: reproduce the paper's troubleshooting method —
// issue traceroutes from probes in (ISP, metro) pairs with poor anycast
// performance and classify each poor route as remote peering or BGP
// topology-blindness.
//
// Paper headlines: "many instances fall into one of two cases": ISPs
// selecting remote peering points (Moscow -> Stockholm, Denver ->
// Phoenix), and BGP's lack of insight into the CDN's internal topology.
#include <cstdio>
#include <map>

#include "atlas/diagnose.h"
#include "atlas/probe.h"
#include "atlas/traceroute.h"
#include "common/csv.h"
#include "report/shape_check.h"
#include "sim/world.h"

int main() {
  using namespace acdn;
  World world(ScenarioConfig::paper_default());
  Rng rng = world.fork_rng("sec5");

  const ProbeSet probes = ProbeSet::place(world.graph(), 2, rng);
  const TracerouteEngine engine(world.router(), world.rtt());
  const AnycastDiagnoser diagnoser(world.router(), world.graph());

  std::map<AnycastPathology, int> counts;
  int poor = 0;
  int printed = 0;
  CsvWriter csv("sec5_case_studies.csv");
  csv.write_header({"probe_metro", "probe_as", "ingress_metro", "front_end",
                    "pathology", "detour_km"});

  for (const Probe& probe : probes.probes()) {
    const TracerouteResult trace = engine.trace(probe);
    if (!trace.reached) continue;

    // Poor-performance filter (what the paper keys its case studies on):
    // the anycast front-end is much farther than the closest one.
    const GeoPoint here = world.metros().metro(probe.metro).location;
    const auto& deployment = world.cdn().deployment();
    const Kilometers to_served = haversine_km(
        here,
        world.metros().metro(deployment.site(trace.destination).metro)
            .location);
    const auto closest = deployment.nearest_sites(world.metros(), here, 1);
    const Kilometers to_closest = haversine_km(
        here,
        world.metros().metro(deployment.site(closest.front()).metro)
            .location);
    if (to_served - to_closest < 800.0) continue;
    ++poor;

    const Diagnosis diagnosis = diagnoser.diagnose(probe, trace);
    ++counts[diagnosis.pathology];
    csv.write_row(
        {world.metros().metro(probe.metro).name,
         world.graph().as_node(probe.access_as).name,
         world.metros().metro(trace.ingress_metro).name,
         deployment.site(trace.destination).name,
         to_string(diagnosis.pathology),
         std::to_string(static_cast<int>(diagnosis.detour_km))});

    if (diagnosis.pathology != AnycastPathology::kNone && printed < 5) {
      ++printed;
      std::printf("case study %d: %s\n", printed,
                  diagnosis.description.c_str());
      std::printf("%s\n",
                  TracerouteEngine::format(trace, world.graph()).c_str());
    }
  }

  std::printf("poor anycast routes among probes: %d\n", poor);
  for (const auto& [pathology, n] : counts) {
    std::printf("  %-20s %d\n", to_string(pathology), n);
  }

  const int classified = counts[AnycastPathology::kRemotePeering] +
                         counts[AnycastPathology::kTopologyBlindness];
  ShapeReport report("Section 5 case studies");
  report.check("poor routes found among probes", double(poor), 5, 1e9);
  report.check("fraction of poor routes classified into the two causes",
               poor > 0 ? double(classified) / poor : 0.0, 0.5, 1.0);
  report.check("remote-peering cases observed",
               double(counts[AnycastPathology::kRemotePeering]), 1, 1e9);
  return report.print() ? 0 : 1;
}
