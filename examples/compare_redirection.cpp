// Compare client-redirection strategies over one simulated week:
//   * anycast            — what the paper's CDN runs in production,
//   * geo-DNS            — closest front-end to the LDNS / ECS prefix via
//                          the (imperfect) geolocation database,
//   * hybrid (paper §6)  — anycast by default, DNS override for client
//                          groups the history-based predictor expects to
//                          gain ≥5 ms, retrained every morning.
//
// All three run through a real AuthoritativeServer (TTL caching, ECS), so
// the comparison includes DNS-operational effects, not just path choice.
//
//   $ ./compare_redirection [seed]
#include <cstdio>
#include <cstdlib>

#include "core/hybrid.h"
#include "dns/policy.h"
#include "sim/policy_lab.h"

int main(int argc, char** argv) {
  using namespace acdn;
  ScenarioConfig config = ScenarioConfig::paper_default();
  config.schedule.beacon_sampling = 0.10;  // dense beacon to train on
  if (argc > 1) config.seed = std::strtoull(argv[1], nullptr, 10);
  World world(config);

  const AnycastPolicy anycast;
  const GeoClosestPolicy geo(world.cdn().deployment(), world.metros(),
                             world.ldns(), world.clients(),
                             world.geolocation());
  PredictorConfig pc;
  pc.metric = PredictionMetric::kP25;
  pc.min_measurements = 20;
  pc.grouping = Grouping::kEcsPrefix;
  HistoryPredictor predictor(pc);
  HybridPolicy::Config hc;
  hc.min_predicted_gain_ms = 5.0;
  const HybridPolicy hybrid(predictor, world.clients(), hc);

  PolicyLabConfig lab_config;
  lab_config.samples_per_client_day = 2;
  PolicyLab lab(world, lab_config);
  lab.add_strategy("anycast", anycast);
  lab.add_strategy("geo-dns", geo);
  lab.add_strategy("hybrid", hybrid);
  lab.retrain_each_day(predictor);

  const auto outcomes = lab.run(/*days=*/7);

  std::printf("%-12s %8s %8s %8s %8s %10s %12s\n", "policy", "p25", "p50",
              "p75", "p95", "unicast%", "auth-queries");
  for (const StrategyOutcome& o : outcomes) {
    std::printf("%-12s %8.1f %8.1f %8.1f %8.1f %9.1f%% %12zu\n",
                o.name.c_str(), o.achieved_ms.quantile(0.25),
                o.achieved_ms.quantile(0.50), o.achieved_ms.quantile(0.75),
                o.achieved_ms.quantile(0.95),
                100.0 * o.unicast_answer_share, o.authoritative_queries);
  }
  std::printf(
      "\nExpected shape: hybrid matches or beats anycast through the body\n"
      "of the distribution by moving only the clients anycast was failing\n"
      "(note the tiny unicast%%); geo-DNS answers everything with unicast\n"
      "and suffers where the geolocation database or a distant LDNS\n"
      "misplaces clients. p95 is dominated by transient delay spikes and\n"
      "varies run to run.\n");
  return 0;
}
