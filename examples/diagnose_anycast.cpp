// Hunt for poor anycast routes the way the paper's authors did (§5):
// find (ISP, metro) pairs whose clients see poor anycast performance,
// issue traceroutes from probes hosted there, and classify the root cause
// — remote peering vs BGP topology-blindness.
//
//   $ ./diagnose_anycast [max_cases]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "atlas/diagnose.h"
#include "atlas/probe.h"
#include "atlas/traceroute.h"
#include "sim/simulation.h"
#include "sim/world.h"

int main(int argc, char** argv) {
  using namespace acdn;
  const int max_cases = argc > 1 ? std::atoi(argv[1]) : 6;

  World world(ScenarioConfig::paper_default());
  Simulation sim(world);
  sim.run_days(1);

  // Step 1: find client /24s with poor anycast performance from the
  // beacon data (some unicast front-end much faster than anycast).
  struct PoorSpot {
    AsId isp;
    MetroId metro;
    Milliseconds gap;
  };
  std::map<std::pair<AsId, MetroId>, Milliseconds> worst_gap;
  for (const BeaconMeasurement& m : sim.measurements().by_day(0)) {
    const auto anycast = m.anycast_ms();
    const auto best = m.best_unicast();
    if (!anycast || !best) continue;
    const Milliseconds gap = *anycast - best->rtt_ms;
    if (gap < 25.0) continue;
    const Client24& c = world.clients().client(m.client);
    auto& entry = worst_gap[{c.access_as, c.metro}];
    entry = std::max(entry, gap);
  }
  std::printf("found %zu (ISP, metro) pairs with a >=25 ms anycast gap\n\n",
              worst_gap.size());

  // Step 2: probe those pairs and diagnose.
  Rng rng = world.fork_rng("diagnose");
  const ProbeSet probes = ProbeSet::place(world.graph(), 3, rng);
  const TracerouteEngine engine(world.router(), world.rtt());
  const AnycastDiagnoser diagnoser(world.router(), world.graph());

  std::map<AnycastPathology, int> causes;
  int shown = 0;
  for (const auto& [key, gap] : worst_gap) {
    const auto& [isp, metro] = key;
    const auto here = probes.in(isp, metro);
    if (here.empty()) continue;  // no probe hosted in this ISP-metro pair

    const TracerouteResult trace = engine.trace(here.front());
    if (!trace.reached) continue;
    const Diagnosis diagnosis = diagnoser.diagnose(here.front(), trace);
    ++causes[diagnosis.pathology];
    if (diagnosis.pathology == AnycastPathology::kNone || shown >= max_cases) {
      continue;
    }
    ++shown;
    std::printf("case %d [%s, observed gap %.0f ms]\n", shown,
                to_string(diagnosis.pathology), gap);
    std::printf("  %s\n", diagnosis.description.c_str());
    std::printf("%s\n",
                TracerouteEngine::format(trace, world.graph()).c_str());
  }

  std::printf("diagnosis summary over probed poor routes:\n");
  for (const auto& [pathology, count] : causes) {
    std::printf("  %-20s %d\n", to_string(pathology), count);
  }
  std::printf(
      "\nThe two named causes reproduce the paper's case studies: ISPs\n"
      "hauling traffic to a distant interconnection (Moscow->Stockholm)\n"
      "and BGP's blindness to the CDN's internal topology.\n");
  return 0;
}
