// Operate the paper's §6 prediction scheme day by day, the way the CDN
// operator would: each morning, train on yesterday's beacon measurements,
// publish the DNS mapping, and each evening grade yesterday's mapping
// against today's measurements.
//
//   $ ./prediction_pipeline [days]
#include <cstdio>
#include <cstdlib>

#include "core/evaluator.h"
#include "core/predictor.h"
#include "sim/simulation.h"
#include "sim/world.h"

int main(int argc, char** argv) {
  using namespace acdn;
  const int days = argc > 1 ? std::atoi(argv[1]) : 7;

  ScenarioConfig config = ScenarioConfig::paper_default();
  config.schedule.beacon_sampling = 0.10;
  World world(config);
  Simulation sim(world);

  PredictorConfig pc;
  pc.metric = PredictionMetric::kP25;  // the paper's prediction metric
  pc.min_measurements = 20;            // the paper's qualification gate
  pc.grouping = Grouping::kEcsPrefix;
  HistoryPredictor predictor(pc);
  const PredictionEvaluator evaluator(world.clients(), world.ldns());

  std::printf("%-12s %-4s %10s %10s %10s %10s\n", "date", "dow",
              "mappings", "unicast", "improved", "regressed");

  sim.run_day();  // day 0: first training data
  for (DayIndex day = 1; day < days; ++day) {
    // Morning: train on yesterday.
    predictor.train(sim.measurements().by_day(day - 1));
    std::size_t unicast_mappings = 0;
    for (const auto& [group, p] : predictor.predictions()) {
      if (!p.anycast) ++unicast_mappings;
    }

    // The day unfolds.
    sim.run_day();

    // Evening: grade the mapping against today's measurements.
    const auto outcomes =
        evaluator.evaluate(predictor, sim.measurements().by_day(day));
    const EvalSummary summary = evaluator.summarize(outcomes);

    std::printf("%-12s %-4s %10zu %10zu %9.1f%% %9.1f%%\n",
                world.calendar().date(day).to_string().c_str(),
                to_string(world.calendar().weekday(day)),
                predictor.predictions().size(), unicast_mappings,
                100.0 * summary.fraction_improved_p50,
                100.0 * summary.fraction_worse_p50);
  }

  std::printf(
      "\nReading the table: 'mappings' is the client groups with enough\n"
      "history to predict from (>=%d measurements per target); 'unicast'\n"
      "is how many of those the scheme would move off anycast; improved/\n"
      "regressed are query-weighted fractions of /24s whose median latency\n"
      "beat / trailed anycast on the evaluation day.\n",
      pc.min_measurements);
  return 0;
}
