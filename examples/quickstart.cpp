// Quickstart: build a world, run one simulated day, and summarize how
// anycast performed against the best measured unicast front-end.
//
//   $ ./quickstart [seed]
//
// This is the smallest end-to-end use of the library: ScenarioConfig ->
// World -> Simulation -> figures-style analysis.
#include <cstdio>
#include <cstdlib>

#include "analysis/figures.h"
#include "common/logging.h"
#include "sim/simulation.h"
#include "sim/world.h"

int main(int argc, char** argv) {
  using namespace acdn;
  set_log_level(LogLevel::kInfo);

  ScenarioConfig config = ScenarioConfig::paper_default();
  if (argc > 1) config.seed = std::strtoull(argv[1], nullptr, 10);

  std::printf("Building world (seed %llu)...\n",
              static_cast<unsigned long long>(config.seed));
  World world(config);
  std::printf("  %zu ASes, %zu front-ends, %zu client /24s, %zu resolvers\n",
              world.graph().as_count(), world.cdn().deployment().size(),
              world.clients().size(), world.ldns().size());

  Simulation sim(world);
  sim.run_days(1);

  const auto measurements = sim.measurements().by_day(0);
  std::printf("Day 0 (%s): %zu joined beacon measurements\n",
              world.calendar().date(0).to_string().c_str(),
              measurements.size());

  // The Figure-3 question: how often is anycast slower than the best of
  // the measured unicast front-ends, and by how much?
  DistributionBuilder diff = fig3_anycast_minus_best_unicast(
      measurements, world.clients(), std::nullopt);
  if (!diff.empty()) {
    std::printf("\nAnycast minus best-of-3-unicast latency per request:\n");
    for (double ms : {10.0, 25.0, 50.0, 100.0}) {
      std::printf("  anycast slower by >%5.0f ms : %5.1f%% of requests\n", ms,
                  100.0 * (1.0 - diff.fraction_at_most(ms)));
    }
    std::printf("  median difference          : %5.1f ms\n",
                diff.quantile(0.5));
  }

  std::printf("\nDone. See examples/compare_redirection and "
              "examples/prediction_pipeline for the full §6 workflow.\n");
  return 0;
}
