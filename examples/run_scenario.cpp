// Scenario runner: the library as a command-line tool. Builds a world from
// flags, simulates N days, and writes the standard analysis outputs
// (figure CSVs + a console summary) — the entry point for a user who wants
// data out without writing C++.
//
//   $ ./run_scenario --seed 7 --days 7 --clients 4000 --sampling 0.05
//                    --remote-peering 0.10 --csv-prefix out_ --metrics
//
// Every run records pipeline metrics and writes a JSON run manifest
// (<prefix>run_manifest.json) next to the CSVs: config digest, seed, date
// range, output list and the full metrics snapshot. --metrics additionally
// prints the snapshot as a summary table.
//
// Unknown flags exit with usage.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "analysis/catchment.h"
#include "analysis/figures.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "report/export.h"
#include "report/run_report.h"
#include "report/series.h"
#include "sim/simulation.h"
#include "sim/world.h"

namespace {

using namespace acdn;

struct Flags {
  std::uint64_t seed = 42;
  int days = 7;
  int clients = 4000;
  double sampling = 0.02;
  double remote_peering = 0.10;
  int threads = 1;
  std::string csv_prefix = "scenario_";
  bool verbose = false;
  bool metrics = false;
};

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seed N] [--days N] [--clients N] [--sampling F]\n"
      "          [--remote-peering F] [--threads N] [--csv-prefix STR]\n"
      "          [--metrics] [--verbose]\n",
      argv0);
}

bool parse(int argc, char** argv, Flags& flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      flags.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--days") {
      const char* v = next();
      if (!v) return false;
      flags.days = std::atoi(v);
    } else if (arg == "--clients") {
      const char* v = next();
      if (!v) return false;
      flags.clients = std::atoi(v);
    } else if (arg == "--sampling") {
      const char* v = next();
      if (!v) return false;
      flags.sampling = std::atof(v);
    } else if (arg == "--remote-peering") {
      const char* v = next();
      if (!v) return false;
      flags.remote_peering = std::atof(v);
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return false;
      flags.threads = std::atoi(v);
    } else if (arg == "--csv-prefix") {
      const char* v = next();
      if (!v) return false;
      flags.csv_prefix = v;
    } else if (arg == "--verbose") {
      flags.verbose = true;
    } else if (arg == "--metrics") {
      flags.metrics = true;
    } else {
      return false;
    }
  }
  return flags.days > 0 && flags.clients > 0 && flags.threads > 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!parse(argc, argv, flags)) {
    usage(argv[0]);
    return 2;
  }
  if (flags.verbose) set_log_level(LogLevel::kInfo);

  ScenarioConfig config = ScenarioConfig::paper_default();
  config.seed = flags.seed;
  config.workload.total_client_24s = flags.clients;
  config.schedule.beacon_sampling = flags.sampling;
  config.topology.remote_peering_fraction = flags.remote_peering;
  config.simulation_threads = flags.threads;

  // The manifest wants a full picture, so recording is always on for the
  // runner; --metrics only controls the console table.
  set_metrics_enabled(true);

  World world(config);
  Simulation sim(world);
  sim.run_days(flags.days);

  // --- Console summary.
  std::size_t beacons = 0;
  for (DayIndex d = 0; d < flags.days; ++d) {
    beacons += sim.measurements().by_day(d).size();
  }
  std::printf("world: %zu ASes, %zu front-ends, %zu client /24s\n",
              world.graph().as_count(), world.cdn().deployment().size(),
              world.clients().size());
  std::printf("simulated %d days (%s .. %s): %zu beacon executions\n",
              flags.days, world.calendar().date(0).to_string().c_str(),
              world.calendar().date(flags.days - 1).to_string().c_str(),
              beacons);

  std::vector<BeaconMeasurement> all;
  for (DayIndex d = 0; d < flags.days; ++d) {
    const auto day = sim.measurements().by_day(d);
    all.insert(all.end(), day.begin(), day.end());
  }
  const DistributionBuilder diff =
      fig3_anycast_minus_best_unicast(all, world.clients(), std::nullopt);
  std::printf("anycast >=25ms slower than best unicast: %.1f%% of requests\n",
              100.0 * (1.0 - diff.fraction_at_most(25.0)));

  // Operator view: the busiest anycast catchments.
  auto catchments = compute_catchments(world.clients(), world.router(),
                                       world.metros());
  std::sort(catchments.begin(), catchments.end(),
            [](const CatchmentSummary& a, const CatchmentSummary& b) {
              return a.query_share > b.query_share;
            });
  const CatchmentHealth health = catchment_health(catchments);
  std::printf("\nbusiest catchments (of %zu front-ends, %.0f%% active, "
              "%.0f%% of volume served within 1000km):\n",
              catchments.size(), 100.0 * health.active_front_ends,
              100.0 * health.volume_within_1000km);
  std::printf("  %-16s %8s %8s %10s %10s\n", "front-end", "share",
              "clients", "median km", "countries");
  for (std::size_t i = 0; i < std::min<std::size_t>(8, catchments.size());
       ++i) {
    const CatchmentSummary& c = catchments[i];
    std::printf("  %-16s %7.1f%% %8zu %10.0f %10zu\n", c.name.c_str(),
                100.0 * c.query_share, c.clients, c.median_client_km,
                c.countries.size());
  }

  // --- CSV exports.
  Figure fig3("anycast vs unicast", "difference_ms", "ccdf");
  fig3.add_series(Series{"world", diff.ccdf()});
  fig3.write_csv(flags.csv_prefix + "anycast_vs_unicast.csv");

  const Fig4Distances d4 =
      fig4_distances(sim.passive(), 0, world.clients(),
                     world.cdn().deployment(), world.metros(),
                     &world.geolocation());
  Figure fig4("client to front-end distance", "km", "cdf");
  fig4.add_series(Series{"to_front_end", d4.to_front_end.cdf()});
  fig4.add_series(Series{"past_closest", d4.past_closest.cdf()});
  fig4.write_csv(flags.csv_prefix + "distance.csv");

  const auto switched = fig7_cumulative_switched(sim.passive(), flags.days);
  Figure fig7("front-end affinity", "day", "cumulative switched");
  Series s7{"switched", {}};
  for (std::size_t i = 0; i < switched.size(); ++i) {
    s7.points.push_back({double(i), switched[i]});
  }
  fig7.add_series(std::move(s7));
  fig7.write_csv(flags.csv_prefix + "affinity.csv");

  // Raw logs, for analysis in external tooling (re-importable with
  // report/export.h).
  export_passive_log(sim.passive(), flags.csv_prefix + "passive_log.csv");
  export_measurements(sim.measurements(),
                      flags.csv_prefix + "measurements.csv");

  // --- Run manifest: the structured record of what this run was.
  RunManifest manifest;
  manifest.tool = "run_scenario";
  manifest.config_digest = config.digest();
  manifest.seed = config.seed;
  manifest.days = flags.days;
  manifest.start_date = world.calendar().date(0).to_string();
  manifest.end_date = world.calendar().date(flags.days - 1).to_string();
  manifest.outputs = {flags.csv_prefix + "anycast_vs_unicast.csv",
                      flags.csv_prefix + "distance.csv",
                      flags.csv_prefix + "affinity.csv",
                      flags.csv_prefix + "passive_log.csv",
                      flags.csv_prefix + "measurements.csv"};
  manifest.metrics = MetricsRegistry::global().snapshot();
  const std::string manifest_path =
      flags.csv_prefix + "run_manifest.json";
  write_run_manifest(manifest, manifest_path);

  if (flags.metrics) {
    std::printf("\n== pipeline metrics ==\n%s",
                format_metrics_table(manifest.metrics).c_str());
  }

  std::printf("wrote %sanycast_vs_unicast.csv, %sdistance.csv, "
              "%saffinity.csv,\n      %spassive_log.csv, "
              "%smeasurements.csv, %srun_manifest.json\n",
              flags.csv_prefix.c_str(), flags.csv_prefix.c_str(),
              flags.csv_prefix.c_str(), flags.csv_prefix.c_str(),
              flags.csv_prefix.c_str(), flags.csv_prefix.c_str());
  return 0;
}
