// Scenario runner: the library as a command-line tool. Builds a world from
// flags, simulates N days, and writes the standard analysis outputs
// (figure CSVs + a console summary) — the entry point for a user who wants
// data out without writing C++.
//
//   $ ./run_scenario --seed 7 --days 7 --clients 4000 --sampling 0.05
//                    --remote-peering 0.10 --csv-prefix out_ --metrics
//
// Every run records pipeline metrics and writes a JSON run manifest
// (<prefix>run_manifest.json) next to the CSVs: config digest, seed, date
// range, output list and the full metrics snapshot. --metrics additionally
// prints the snapshot as a summary table.
//
// --chaos arms the canned fault schedule (front-end outages, a mid-week
// BGP reset/withdrawal burst, 10% beacon sample loss, sporadic CSV write
// errors), runs the degraded train/evaluate pipeline on top of the
// simulation, and records the schedule plus per-fail-point trigger counts
// in the manifest. --fault-seed N replays a different draw of the same
// schedule; everything stays deterministic per (seed, fault-seed).
//
// Unknown flags exit with usage.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>

#include "analysis/catchment.h"
#include "analysis/figures.h"
#include "common/error.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "core/resilience.h"
#include "report/export.h"
#include "report/run_report.h"
#include "report/series.h"
#include "sim/simulation.h"
#include "sim/world.h"

namespace {

using namespace acdn;

struct Flags {
  std::uint64_t seed = 42;
  int days = 7;
  int clients = 4000;
  double sampling = 0.02;
  double remote_peering = 0.10;
  int threads = 1;
  std::string csv_prefix = "scenario_";
  bool verbose = false;
  bool metrics = false;
  bool chaos = false;
  std::uint64_t fault_seed = 0;
  bool fault_seed_set = false;
};

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seed N] [--days N] [--clients N] [--sampling F]\n"
      "          [--remote-peering F] [--threads N] [--csv-prefix STR]\n"
      "          [--metrics] [--verbose] [--chaos] [--fault-seed N]\n",
      argv0);
}

/// The canned chaos schedule: permanent low-rate front-end outages and
/// beacon sample loss, a two-day BGP reset + withdrawal burst mid-run,
/// and sporadic CSV write errors at export time.
FaultSchedule chaos_schedule(std::uint64_t fault_seed, int days) {
  const DayIndex burst = days / 2;
  FaultSchedule faults;
  faults.seed = fault_seed;
  faults.rules.push_back(
      {"cdn/front_end", FaultKind::kError, 0.02, 0, kFaultWindowOpen, 0.0});
  faults.rules.push_back(
      {"bgp/session", FaultKind::kError, 0.5, burst, burst + 1, 0.0});
  faults.rules.push_back(
      {"bgp/withdrawal", FaultKind::kDrop, 0.25, burst, burst + 1, 0.0});
  faults.rules.push_back({"beacon/http_fetch", FaultKind::kDrop, 0.10, 0,
                          kFaultWindowOpen, 0.0});
  faults.rules.push_back(
      {"csv/write", FaultKind::kError, 0.05, 0, kFaultWindowOpen, 0.0});
  return faults;
}

bool parse(int argc, char** argv, Flags& flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      flags.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--days") {
      const char* v = next();
      if (!v) return false;
      flags.days = std::atoi(v);
    } else if (arg == "--clients") {
      const char* v = next();
      if (!v) return false;
      flags.clients = std::atoi(v);
    } else if (arg == "--sampling") {
      const char* v = next();
      if (!v) return false;
      flags.sampling = std::atof(v);
    } else if (arg == "--remote-peering") {
      const char* v = next();
      if (!v) return false;
      flags.remote_peering = std::atof(v);
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return false;
      flags.threads = std::atoi(v);
    } else if (arg == "--csv-prefix") {
      const char* v = next();
      if (!v) return false;
      flags.csv_prefix = v;
    } else if (arg == "--verbose") {
      flags.verbose = true;
    } else if (arg == "--metrics") {
      flags.metrics = true;
    } else if (arg == "--chaos") {
      flags.chaos = true;
    } else if (arg == "--fault-seed") {
      const char* v = next();
      if (!v) return false;
      flags.fault_seed = std::strtoull(v, nullptr, 10);
      flags.fault_seed_set = true;
    } else {
      return false;
    }
  }
  return flags.days > 0 && flags.clients > 0 && flags.threads > 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!parse(argc, argv, flags)) {
    usage(argv[0]);
    return 2;
  }
  if (flags.verbose) set_log_level(LogLevel::kInfo);

  ScenarioConfig config = ScenarioConfig::paper_default();
  config.seed = flags.seed;
  config.workload.total_client_24s = flags.clients;
  config.schedule.beacon_sampling = flags.sampling;
  config.topology.remote_peering_fraction = flags.remote_peering;
  config.simulation_threads = flags.threads;
  if (flags.chaos) {
    // Derive the fault seed from the scenario seed unless pinned, so
    // plain `--chaos` runs are reproducible from the command line alone.
    config.faults = chaos_schedule(
        flags.fault_seed_set ? flags.fault_seed : flags.seed ^ 0xfa017ull,
        flags.days);
  }

  // The manifest wants a full picture, so recording is always on for the
  // runner; --metrics only controls the console table.
  set_metrics_enabled(true);

  World world(config);
  Simulation sim(world);
  sim.run_days(flags.days);

  // --- Console summary.
  std::size_t beacons = 0;
  for (DayIndex d = 0; d < flags.days; ++d) {
    beacons += sim.measurements().by_day(d).size();
  }
  std::printf("world: %zu ASes, %zu front-ends, %zu client /24s\n",
              world.graph().as_count(), world.cdn().deployment().size(),
              world.clients().size());
  std::printf("simulated %d days (%s .. %s): %zu beacon executions\n",
              flags.days, world.calendar().date(0).to_string().c_str(),
              world.calendar().date(flags.days - 1).to_string().c_str(),
              beacons);

  std::vector<BeaconMeasurement> all;
  for (DayIndex d = 0; d < flags.days; ++d) {
    const auto day = sim.measurements().by_day(d);
    all.insert(all.end(), day.begin(), day.end());
  }
  const DistributionBuilder diff =
      fig3_anycast_minus_best_unicast(all, world.clients(), std::nullopt);
  std::printf("anycast >=25ms slower than best unicast: %.1f%% of requests\n",
              100.0 * (1.0 - diff.fraction_at_most(25.0)));

  // Operator view: the busiest anycast catchments.
  auto catchments = compute_catchments(world.clients(), world.router(),
                                       world.metros());
  std::sort(catchments.begin(), catchments.end(),
            [](const CatchmentSummary& a, const CatchmentSummary& b) {
              return a.query_share > b.query_share;
            });
  const CatchmentHealth health = catchment_health(catchments);
  std::printf("\nbusiest catchments (of %zu front-ends, %.0f%% active, "
              "%.0f%% of volume served within 1000km):\n",
              catchments.size(), 100.0 * health.active_front_ends,
              100.0 * health.volume_within_1000km);
  std::printf("  %-16s %8s %8s %10s %10s\n", "front-end", "share",
              "clients", "median km", "countries");
  for (std::size_t i = 0; i < std::min<std::size_t>(8, catchments.size());
       ++i) {
    const CatchmentSummary& c = catchments[i];
    std::printf("  %-16s %7.1f%% %8zu %10.0f %10zu\n", c.name.c_str(),
                100.0 * c.query_share, c.clients, c.median_client_km,
                c.countries.size());
  }

  // --- Degraded train/evaluate pipeline (chaos mode): exercises the
  // fallback paths under the armed schedule and feeds the staleness
  // counters into the manifest.
  std::uint64_t stale_train_days = 0;
  std::uint64_t stale_eval_days = 0;
  if (flags.chaos && flags.days >= 2) {
    ResilienceConfig rc;
    rc.predictor.threads = flags.threads;
    rc.evaluator.threads = flags.threads;
    DegradedPipeline pipeline(world.clients(), world.ldns(), rc);
    std::printf("\nchaos: degraded prediction pipeline\n");
    for (DayIndex d = 1; d < flags.days; ++d) {
      const DegradedPipeline::DayOutcome out =
          pipeline.step(sim.measurements(), d - 1, d);
      std::printf("  day %d: trained=%s evaluated=%s staleness=%d "
                  "improved_p50=%.1f%%\n",
                  d, out.trained_fresh ? "fresh" : "stale",
                  out.evaluated_fresh ? "fresh" : "carried", out.staleness,
                  100.0 * out.summary.fraction_improved_p50);
    }
    stale_train_days = pipeline.stale_train_days();
    stale_eval_days = pipeline.stale_eval_days();
  }

  // --- CSV exports. Under an armed "csv/write" schedule an export can
  // fail; the run degrades to the outputs that survived instead of dying.
  std::vector<std::string> outputs;
  std::vector<std::string> failed_outputs;
  auto write_output = [&](const std::string& path,
                          const std::function<void(const std::string&)>& fn) {
    try {
      fn(path);
      outputs.push_back(path);
    } catch (const Error& e) {
      failed_outputs.push_back(path);
      std::fprintf(stderr, "warning: output failed, continuing: %s\n",
                   e.what());
    }
  };

  Figure fig3("anycast vs unicast", "difference_ms", "ccdf");
  fig3.add_series(Series{"world", diff.ccdf()});
  write_output(flags.csv_prefix + "anycast_vs_unicast.csv",
               [&](const std::string& p) { fig3.write_csv(p); });

  const Fig4Distances d4 =
      fig4_distances(sim.passive(), 0, world.clients(),
                     world.cdn().deployment(), world.metros(),
                     &world.geolocation());
  Figure fig4("client to front-end distance", "km", "cdf");
  fig4.add_series(Series{"to_front_end", d4.to_front_end.cdf()});
  fig4.add_series(Series{"past_closest", d4.past_closest.cdf()});
  write_output(flags.csv_prefix + "distance.csv",
               [&](const std::string& p) { fig4.write_csv(p); });

  const auto switched = fig7_cumulative_switched(sim.passive(), flags.days);
  Figure fig7("front-end affinity", "day", "cumulative switched");
  Series s7{"switched", {}};
  for (std::size_t i = 0; i < switched.size(); ++i) {
    s7.points.push_back({double(i), switched[i]});
  }
  fig7.add_series(std::move(s7));
  write_output(flags.csv_prefix + "affinity.csv",
               [&](const std::string& p) { fig7.write_csv(p); });

  // Raw logs, for analysis in external tooling (re-importable with
  // report/export.h).
  write_output(flags.csv_prefix + "passive_log.csv",
               [&](const std::string& p) {
                 export_passive_log(sim.passive(), p);
               });
  write_output(flags.csv_prefix + "measurements.csv",
               [&](const std::string& p) {
                 export_measurements(sim.measurements(), p);
               });

  // --- Run manifest: the structured record of what this run was.
  RunManifest manifest;
  manifest.tool = "run_scenario";
  manifest.config_digest = config.digest();
  manifest.seed = config.seed;
  manifest.days = flags.days;
  manifest.start_date = world.calendar().date(0).to_string();
  manifest.end_date = world.calendar().date(flags.days - 1).to_string();
  manifest.outputs = outputs;
  manifest.fault_injection = FaultInjectionRecord::from_registry();
  manifest.fault_injection.stale_train_days = stale_train_days;
  manifest.fault_injection.stale_eval_days = stale_eval_days;
  manifest.metrics = MetricsRegistry::global().snapshot();
  const std::string manifest_path =
      flags.csv_prefix + "run_manifest.json";
  try {
    write_run_manifest(manifest, manifest_path);
  } catch (const Error& e) {
    failed_outputs.push_back(manifest_path);
    std::fprintf(stderr, "warning: manifest failed, continuing: %s\n",
                 e.what());
  }
  if (!failed_outputs.empty()) {
    std::printf("%zu output(s) failed (injected or real I/O errors)\n",
                failed_outputs.size());
  }

  if (flags.metrics) {
    std::printf("\n== pipeline metrics ==\n%s",
                format_metrics_table(manifest.metrics).c_str());
  }

  std::printf("wrote %sanycast_vs_unicast.csv, %sdistance.csv, "
              "%saffinity.csv,\n      %spassive_log.csv, "
              "%smeasurements.csv, %srun_manifest.json\n",
              flags.csv_prefix.c_str(), flags.csv_prefix.c_str(),
              flags.csv_prefix.c_str(), flags.csv_prefix.c_str(),
              flags.csv_prefix.c_str(), flags.csv_prefix.c_str());
  return 0;
}
