// Umbrella header: the library's public surface in one include.
//
//   #include "acdn.h"
//
// Fine-grained headers remain available (and are preferred inside the
// library itself); this header exists for quick starts and downstream
// consumers who want everything.
#pragma once

// Foundations.
#include "common/csv.h"
#include "common/error.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/sim_clock.h"
#include "common/types.h"

// Geography and addressing.
#include "geo/geo_point.h"
#include "geo/geolocation.h"
#include "geo/metro.h"
#include "net/allocator.h"
#include "net/ipv4.h"
#include "net/radix_trie.h"

// Statistics.
#include "stats/distribution.h"
#include "stats/p2.h"
#include "stats/quantile.h"

// The synthetic Internet.
#include "routing/bgp.h"
#include "routing/dynamics.h"
#include "routing/path.h"
#include "topology/as_graph.h"
#include "topology/backbone.h"
#include "topology/builder.h"

// The CDN and its clients.
#include "cdn/catalogs.h"
#include "cdn/deployment.h"
#include "cdn/network.h"
#include "cdn/router.h"
#include "latency/rtt_model.h"
#include "latency/timing_api.h"
#include "load/fastroute.h"
#include "load/load_model.h"
#include "load/withdrawal.h"
#include "workload/clients.h"
#include "workload/schedule.h"

// DNS.
#include "dns/authoritative.h"
#include "dns/cache.h"
#include "dns/ldns.h"
#include "dns/policy.h"

// Measurement and analysis.
#include "analysis/aggregate.h"
#include "analysis/catchment.h"
#include "analysis/figures.h"
#include "analysis/tcp_disruption.h"
#include "atlas/diagnose.h"
#include "atlas/probe.h"
#include "atlas/traceroute.h"
#include "beacon/beacon.h"
#include "beacon/measurement.h"
#include "beacon/store.h"

// The paper's contribution.
#include "core/evaluator.h"
#include "core/hybrid.h"
#include "core/predictor.h"
#include "core/streaming.h"

// Orchestration and reporting.
#include "report/ascii_chart.h"
#include "report/export.h"
#include "report/series.h"
#include "report/shape_check.h"
#include "report/svg_chart.h"
#include "sim/policy_lab.h"
#include "sim/scenario.h"
#include "sim/simulation.h"
#include "sim/world.h"
