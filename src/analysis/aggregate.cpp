#include "analysis/aggregate.h"

#include <algorithm>

#include "common/check.h"
#include "common/flat_group.h"

namespace acdn {

namespace {

/// One (group, target, sample) triple of the flat aggregation table. The
/// packed target key — anycast flag above the 32 front-end bits — sorts
/// exactly like TargetKey's (anycast, front_end) lexicographic order for
/// every possible front-end id; `seq` is the flat scan position, making
/// the sort key a total order (deterministic parallel sort) and keeping
/// each target's samples in measurement scan order.
struct AggEntry {
  std::uint32_t group = 0;
  std::uint64_t target = 0;
  std::uint32_t seq = 0;
};

constexpr std::uint64_t kAnycastBit = std::uint64_t{1} << 32;

[[nodiscard]] std::uint64_t pack_target(bool anycast, FrontEndId fe) {
  return anycast ? kAnycastBit : std::uint64_t{fe.value};
}

[[nodiscard]] TargetKey unpack_target(std::uint64_t target) {
  const bool anycast = (target & kAnycastBit) != 0;
  // The hash join normalized anycast targets to a default FrontEndId;
  // reproduce that here rather than round-tripping the logged id.
  return TargetKey{anycast, anycast ? FrontEndId{}
                                    : FrontEndId{static_cast<std::uint32_t>(
                                          target)}};
}

}  // namespace

const char* to_string(Grouping g) {
  switch (g) {
    case Grouping::kEcsPrefix: return "EDNS-0";
    case Grouping::kLdns:      return "LDNS";
  }
  return "?";
}

std::uint32_t DayAggregates::group_key(const BeaconMeasurement& m,
                                       Grouping grouping) {
  return grouping == Grouping::kEcsPrefix ? m.client.value : m.ldns.value;
}

const DayAggregates::Group* DayAggregates::find(std::uint32_t key) const {
  const auto it = std::lower_bound(
      groups_.begin(), groups_.end(), key,
      [](const Group& g, std::uint32_t k) { return g.key < k; });
  if (it == groups_.end() || it->key != key) return nullptr;
  return &*it;
}

const DayAggregates::Target* DayAggregates::find_target(
    const Group& g, const TargetKey& key) const {
  const std::span<const Target> span = targets(g);
  const auto it = std::lower_bound(
      span.begin(), span.end(), key,
      [](const Target& t, const TargetKey& k) { return t.key < k; });
  if (it == span.end() || it->key != key) return nullptr;
  return &*it;
}

std::size_t DayAggregates::sample_count(const Group& g,
                                        const TargetKey& key) const {
  const Target* t = find_target(g, key);
  return t == nullptr ? 0 : t->count;
}

DayAggregates DayAggregates::build(const MeasurementColumns& columns,
                                   Grouping grouping, int threads,
                                   ScratchArena* scratch) {
  DayAggregates out;
  out.grouping_ = grouping;
  const std::size_t n = columns.target_count();
  if (n == 0) return out;

  ScratchArena local;
  ScratchArena& arena = scratch != nullptr ? *scratch : local;
  std::vector<AggEntry>& entries = arena.buffer<AggEntry>("agg.entries");
  entries.reserve(n);
  for (std::size_t i = 0; i < columns.size(); ++i) {
    const std::uint32_t group = grouping == Grouping::kEcsPrefix
                                    ? columns.client[i].value
                                    : columns.ldns[i].value;
    for (std::size_t t = columns.row_targets_begin(i);
         t < columns.row_targets_end(i); ++t) {
      entries.push_back(AggEntry{group,
                                 pack_target(columns.target_anycast[t] != 0,
                                             columns.target_front_end[t]),
                                 static_cast<std::uint32_t>(t)});
    }
  }
  ACDN_DCHECK_EQ(entries.size(), n) << "aggregation entry table mismatch";

  parallel_sort(std::span<AggEntry>(entries), threads,
                [](const AggEntry& a, const AggEntry& b) {
                  if (a.group != b.group) return a.group < b.group;
                  if (a.target != b.target) return a.target < b.target;
                  return a.seq < b.seq;
                });

  out.samples_.reserve(n);
  for (const AggEntry& e : entries) {
    if (out.groups_.empty() || out.groups_.back().key != e.group) {
      out.groups_.push_back(
          Group{e.group, static_cast<std::uint32_t>(out.targets_.size()), 0});
    }
    Group& group = out.groups_.back();
    if (group.target_count == 0 ||
        out.targets_.back().key != unpack_target(e.target)) {
      out.targets_.push_back(
          Target{unpack_target(e.target),
                 static_cast<std::uint32_t>(out.samples_.size()), 0});
      ++group.target_count;
    }
    out.samples_.push_back(columns.target_rtt[e.seq]);
    ++out.targets_.back().count;
  }
  return out;
}

DayAggregates DayAggregates::build(
    std::span<const BeaconMeasurement> measurements, Grouping grouping,
    int threads) {
  MeasurementColumns columns;
  std::size_t targets = 0;
  for (const BeaconMeasurement& m : measurements) {
    targets += m.targets.size();
  }
  columns.reserve(measurements.size(), targets);
  for (const BeaconMeasurement& m : measurements) columns.push_back(m);
  return build(columns, grouping, threads);
}

}  // namespace acdn
