#include "analysis/aggregate.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "common/flat_group.h"
#include "common/radix.h"
#include "common/simd.h"

namespace acdn {

namespace {

// The aggregation sort key is one packed uint64 built by the SIMD
// key-pack kernel: group in the high half, the target in the low half as
// anycast-bit-31 | front-end-id-30..0 (simd::pack_group_target). For any
// unicast front-end id < 2^31 the low half sorts exactly like TargetKey's
// (anycast, front_end) lexicographic order — unicast ids ascend below
// 0x80000000, the anycast lane is exactly 0x80000000 — and the radix
// sort's stability replaces the old explicit seq tie-breaker column:
// equal keys keep measurement scan order by construction.
constexpr std::uint64_t kAnycastBit = std::uint64_t{1} << 31;

[[nodiscard]] TargetKey unpack_target(std::uint64_t key) {
  const bool anycast = (key & kAnycastBit) != 0;
  // The hash join normalized anycast targets to a default FrontEndId;
  // reproduce that here rather than round-tripping the logged id.
  return TargetKey{anycast,
                   anycast ? FrontEndId{}
                           : FrontEndId{static_cast<std::uint32_t>(
                                 key & (kAnycastBit - 1))}};
}

}  // namespace

const char* to_string(Grouping g) {
  switch (g) {
    case Grouping::kEcsPrefix: return "EDNS-0";
    case Grouping::kLdns:      return "LDNS";
  }
  return "?";
}

std::uint32_t DayAggregates::group_key(const BeaconMeasurement& m,
                                       Grouping grouping) {
  return grouping == Grouping::kEcsPrefix ? m.client.value : m.ldns.value;
}

const DayAggregates::Group* DayAggregates::find(std::uint32_t key) const {
  const auto it = std::lower_bound(
      groups_.begin(), groups_.end(), key,
      [](const Group& g, std::uint32_t k) { return g.key < k; });
  if (it == groups_.end() || it->key != key) return nullptr;
  return &*it;
}

const DayAggregates::Target* DayAggregates::find_target(
    const Group& g, const TargetKey& key) const {
  const std::span<const Target> span = targets(g);
  const auto it = std::lower_bound(
      span.begin(), span.end(), key,
      [](const Target& t, const TargetKey& k) { return t.key < k; });
  if (it == span.end() || it->key != key) return nullptr;
  return &*it;
}

std::size_t DayAggregates::sample_count(const Group& g,
                                        const TargetKey& key) const {
  const Target* t = find_target(g, key);
  return t == nullptr ? 0 : t->count;
}

DayAggregates DayAggregates::build(const MeasurementColumns& columns,
                                   Grouping grouping, int threads,
                                   ScratchArena* scratch) {
  DayAggregates out;
  out.grouping_ = grouping;
  const std::size_t n = columns.target_count();
  if (n == 0) return out;

  ScratchArena local;
  ScratchArena& arena = scratch != nullptr ? *scratch : local;

  // Expand the per-row group id onto the flat target column, then pack
  // (group, anycast, front_end) into one sortable uint64 per target with
  // the SIMD kernel.
  std::vector<std::uint32_t>& group_col =
      arena.buffer<std::uint32_t>("agg.group");
  group_col.resize(n);
  for (std::size_t i = 0; i < columns.size(); ++i) {
    const std::uint32_t group = grouping == Grouping::kEcsPrefix
                                    ? columns.client[i].value
                                    : columns.ldns[i].value;
    for (std::size_t t = columns.row_targets_begin(i);
         t < columns.row_targets_end(i); ++t) {
      group_col[t] = group;
    }
  }

  std::vector<std::uint64_t>& keys = arena.buffer<std::uint64_t>("agg.keys");
  keys.resize(n);
  const std::uint32_t overflow = simd::pack_group_target(
      std::span<const std::uint32_t>(group_col),
      std::span<const std::uint8_t>(columns.target_anycast),
      std::span<const std::uint32_t>(columns.target_front_end),
      std::span<std::uint64_t>(keys));
  ACDN_CHECK_EQ(overflow, 0u)
      << "unicast front-end id overflows the 31-bit aggregation key";

  // Stable radix sort with the flat scan position as payload: after the
  // sort, equal keys are in scan order and seq[idx] gathers each sample.
  std::vector<std::uint32_t>& seq = arena.buffer<std::uint32_t>("agg.seq");
  seq.resize(n);
  std::iota(seq.begin(), seq.end(), 0u);
  radix_sort_pairs(std::span<std::uint64_t>(keys),
                   std::span<std::uint32_t>(seq), threads, &arena);

  out.samples_.resize(n);
  std::vector<std::uint32_t>& starts = arena.buffer<std::uint32_t>("agg.runs");
  for_each_run_u64(
      std::span<const std::uint64_t>(keys), starts, [&](Run run) {
        const std::uint64_t key = keys[run.begin];
        const auto group = static_cast<std::uint32_t>(key >> 32);
        if (out.groups_.empty() || out.groups_.back().key != group) {
          out.groups_.push_back(Group{
              group, static_cast<std::uint32_t>(out.targets_.size()), 0});
        }
        ++out.groups_.back().target_count;
        out.targets_.push_back(
            Target{unpack_target(key), static_cast<std::uint32_t>(run.begin),
                   static_cast<std::uint32_t>(run.size())});
        for (std::size_t idx = run.begin; idx < run.end; ++idx) {
          out.samples_[idx] = columns.target_rtt[seq[idx]];
        }
      });
  return out;
}

DayAggregates DayAggregates::build(
    std::span<const BeaconMeasurement> measurements, Grouping grouping,
    int threads) {
  MeasurementColumns columns;
  std::size_t targets = 0;
  for (const BeaconMeasurement& m : measurements) {
    targets += m.targets.size();
  }
  columns.reserve(measurements.size(), targets);
  for (const BeaconMeasurement& m : measurements) columns.push_back(m);
  return build(columns, grouping, threads);
}

}  // namespace acdn
