#include "analysis/aggregate.h"

#include <algorithm>

#include "common/executor.h"

namespace acdn {

const char* to_string(Grouping g) {
  switch (g) {
    case Grouping::kEcsPrefix: return "EDNS-0";
    case Grouping::kLdns:      return "LDNS";
  }
  return "?";
}

std::size_t GroupSamples::sample_count(const TargetKey& key) const {
  auto it = by_target.find(key);
  return it == by_target.end() ? 0 : it->second.size();
}

std::uint32_t DayAggregates::group_key(const BeaconMeasurement& m,
                                       Grouping grouping) {
  return grouping == Grouping::kEcsPrefix ? m.client.value : m.ldns.value;
}

DayAggregates DayAggregates::build(
    std::span<const BeaconMeasurement> measurements, Grouping grouping,
    int threads) {
  DayAggregates out;
  out.grouping_ = grouping;

  // Shard by group key: every group's measurements land in exactly one
  // shard, scanned in measurement order, so per-group sample order — and
  // the merged map — are independent of the shard count.
  const std::size_t shard_count =
      static_cast<std::size_t>(std::clamp(threads, 1, 16));
  std::vector<std::map<std::uint32_t, GroupSamples>> shards(shard_count);
  Executor::global().parallel_for(
      0, shard_count, threads, [&](std::size_t s) {
        auto& local = shards[s];
        for (const BeaconMeasurement& m : measurements) {
          const std::uint32_t key = group_key(m, grouping);
          if (key % shard_count != s) continue;
          GroupSamples& group = local[key];
          for (const BeaconMeasurement::Target& t : m.targets) {
            const TargetKey target{t.anycast,
                                   t.anycast ? FrontEndId{} : t.front_end};
            group.by_target[target].push_back(t.rtt_ms);
          }
        }
      });

  for (auto& shard : shards) {
    for (auto& [key, group] : shard) {
      out.groups_.emplace(key, std::move(group));
    }
  }
  return out;
}

}  // namespace acdn
