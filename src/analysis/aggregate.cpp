#include "analysis/aggregate.h"

namespace acdn {

const char* to_string(Grouping g) {
  switch (g) {
    case Grouping::kEcsPrefix: return "EDNS-0";
    case Grouping::kLdns:      return "LDNS";
  }
  return "?";
}

std::size_t GroupSamples::sample_count(const TargetKey& key) const {
  auto it = by_target.find(key);
  return it == by_target.end() ? 0 : it->second.size();
}

std::uint32_t DayAggregates::group_key(const BeaconMeasurement& m,
                                       Grouping grouping) {
  return grouping == Grouping::kEcsPrefix ? m.client.value : m.ldns.value;
}

DayAggregates DayAggregates::build(
    std::span<const BeaconMeasurement> measurements, Grouping grouping) {
  DayAggregates out;
  out.grouping_ = grouping;
  for (const BeaconMeasurement& m : measurements) {
    GroupSamples& group = out.groups_[group_key(m, grouping)];
    for (const BeaconMeasurement::Target& t : m.targets) {
      const TargetKey key{t.anycast,
                          t.anycast ? FrontEndId{} : t.front_end};
      group.by_target[key].push_back(t.rtt_ms);
    }
  }
  return out;
}

}  // namespace acdn
