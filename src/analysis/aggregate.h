// Grouped latency aggregation over beacon measurements.
//
// Both the daily poor-path analyses (§5) and the prediction scheme (§6)
// consume one day of beacon measurements bucketed by client group — the
// client /24 (what ECS redirection can key on) or the client's LDNS (what
// classic DNS redirection must key on) — and, within a group, by target:
// the anycast address or a specific unicast front-end.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "beacon/measurement.h"
#include "beacon/store.h"
#include "dns/ldns.h"
#include "workload/clients.h"

namespace acdn {

/// Client grouping granularity for DNS-side decisions.
enum class Grouping {
  kEcsPrefix,  // per client /24 (ECS-capable resolvers)
  kLdns,       // per LDNS (traditional DNS redirection)
};

[[nodiscard]] const char* to_string(Grouping g);

/// Target of a latency sample within a group.
struct TargetKey {
  bool anycast = false;
  FrontEndId front_end;  // meaningful when !anycast

  auto operator<=>(const TargetKey&) const = default;
};

/// One day of measurements for one client group.
struct GroupSamples {
  /// Latency samples per target (anycast and each measured front-end).
  std::map<TargetKey, std::vector<Milliseconds>> by_target;

  [[nodiscard]] std::size_t sample_count(const TargetKey& key) const;
};

/// All groups for one day.
class DayAggregates {
 public:
  /// Buckets `measurements` (one day's worth) by group and target. With
  /// threads > 1 the bucketing is sharded by group key across the
  /// executor pool and the shard maps merge back in ascending key order;
  /// each group's samples are appended in measurement order either way,
  /// so the result is identical for any thread count.
  static DayAggregates build(std::span<const BeaconMeasurement> measurements,
                             Grouping grouping, int threads = 1);

  [[nodiscard]] Grouping grouping() const { return grouping_; }
  [[nodiscard]] const std::map<std::uint32_t, GroupSamples>& groups() const {
    return groups_;
  }

  /// Group key for a measurement under this aggregation's grouping.
  [[nodiscard]] static std::uint32_t group_key(const BeaconMeasurement& m,
                                               Grouping grouping);

 private:
  Grouping grouping_ = Grouping::kEcsPrefix;
  std::map<std::uint32_t, GroupSamples> groups_;
};

}  // namespace acdn
