// Grouped latency aggregation over beacon measurements.
//
// Both the daily poor-path analyses (§5) and the prediction scheme (§6)
// consume one day of beacon measurements bucketed by client group — the
// client /24 (what ECS redirection can key on) or the client's LDNS (what
// classic DNS redirection must key on) — and, within a group, by target:
// the anycast address or a specific unicast front-end.
//
// The aggregation is columnar: every (group, target, sample) triple is
// appended to a flat entry table, sorted by a total-order key on the
// executor pool (common/flat_group.h), and the sorted runs become three
// parallel arrays — groups, targets, samples — instead of a std::map of
// std::maps of vectors. Iteration order (groups ascending; within a
// group, unicast front-ends ascending then anycast; within a target,
// measurement scan order) is exactly the order the old nested maps
// produced, so every downstream digest is unchanged.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "beacon/columns.h"
#include "beacon/measurement.h"
#include "beacon/store.h"
#include "common/arena.h"
#include "dns/ldns.h"
#include "workload/clients.h"

namespace acdn {

/// Client grouping granularity for DNS-side decisions.
enum class Grouping {
  kEcsPrefix,  // per client /24 (ECS-capable resolvers)
  kLdns,       // per LDNS (traditional DNS redirection)
};

[[nodiscard]] const char* to_string(Grouping g);

/// Target of a latency sample within a group.
struct TargetKey {
  bool anycast = false;
  FrontEndId front_end;  // meaningful when !anycast

  auto operator<=>(const TargetKey&) const = default;
};

/// All groups for one day.
class DayAggregates {
 public:
  /// One target's samples within one group: samples(t) spans the
  /// contiguous slice, in measurement scan order.
  struct Target {
    TargetKey key;
    std::uint32_t begin = 0;  // into the flat sample column
    std::uint32_t count = 0;
  };
  /// One client group: targets(g) spans its targets in TargetKey order
  /// (unicast front-ends ascending, anycast last).
  struct Group {
    std::uint32_t key = 0;
    std::uint32_t target_begin = 0;  // into the flat target table
    std::uint32_t target_count = 0;
  };

  /// Buckets one day's columns by group and target. The flat entry table
  /// sorts with a deterministic parallel sort whose tie-breaker is the
  /// scan position, so the result is identical for any thread count.
  /// `scratch` (optional) recycles the entry table across days.
  static DayAggregates build(const MeasurementColumns& columns,
                             Grouping grouping, int threads = 1,
                             ScratchArena* scratch = nullptr);
  /// Row-struct convenience overload: converts and delegates (one
  /// algorithm, one iteration order).
  static DayAggregates build(std::span<const BeaconMeasurement> measurements,
                             Grouping grouping, int threads = 1);

  [[nodiscard]] Grouping grouping() const { return grouping_; }

  /// Groups in ascending key order.
  [[nodiscard]] std::span<const Group> groups() const { return groups_; }
  [[nodiscard]] std::size_t group_count() const { return groups_.size(); }
  /// Binary-search lookup; nullptr when the group has no samples.
  [[nodiscard]] const Group* find(std::uint32_t key) const;

  [[nodiscard]] std::span<const Target> targets(const Group& g) const {
    return {targets_.data() + g.target_begin, g.target_count};
  }
  [[nodiscard]] std::span<const Milliseconds> samples(const Target& t) const {
    return {samples_.data() + t.begin, t.count};
  }
  /// Binary-search lookup within a group; nullptr when unmeasured.
  [[nodiscard]] const Target* find_target(const Group& g,
                                          const TargetKey& key) const;
  [[nodiscard]] std::size_t sample_count(const Group& g,
                                         const TargetKey& key) const;

  /// Group key for a measurement under this aggregation's grouping.
  [[nodiscard]] static std::uint32_t group_key(const BeaconMeasurement& m,
                                               Grouping grouping);

 private:
  Grouping grouping_ = Grouping::kEcsPrefix;
  std::vector<Group> groups_;
  std::vector<Target> targets_;
  std::vector<Milliseconds> samples_;
};

}  // namespace acdn
