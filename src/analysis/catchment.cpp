#include "analysis/catchment.h"

#include <algorithm>

#include "common/check.h"
#include "common/executor.h"
#include "common/metrics.h"
#include "stats/quantile.h"

namespace acdn {

int CatchmentSummary::foreign_clients() const {
  // The front-end's own country is the plurality country of its metro; we
  // carry it implicitly: countries not matching the site name's country
  // cannot be derived here, so count clients outside the *largest*
  // contributor as a proxy for geographic mixing.
  int total = 0;
  int largest = 0;
  for (const auto& [country, n] : countries) {
    total += n;
    largest = std::max(largest, n);
  }
  return total - largest;
}

namespace {

/// Partial catchment accumulation over one deterministic chunk of the
/// client range.
struct CatchmentShard {
  std::vector<CatchmentSummary> out;            // counts and sums only
  std::vector<std::vector<double>> distances;   // per front-end, in
                                                // client order
  double total_volume = 0.0;
  // Route-resolution tallies ride in the shard (no per-client metric
  // calls in the hot loop) and publish once after the fold.
  std::size_t routed = 0;
  std::size_t unroutable = 0;
};

}  // namespace

std::vector<CatchmentSummary> compute_catchments(
    const ClientPopulation& clients, const CdnRouter& router,
    const MetroDatabase& metros, int threads) {
  const PhaseSpan catchment_phase("analysis.catchment");
  const Deployment& deployment = router.cdn().deployment();
  const auto all = clients.clients();

  // Route resolution is the expensive part; chunks of clients accumulate
  // into private shards that fold in ascending chunk order, so every sum
  // and every distance vector matches the single-threaded pass bit for
  // bit regardless of thread count.
  CatchmentShard total = Executor::global().parallel_reduce(
      0, all.size(), threads, kReduceGrain, CatchmentShard{},
      [&](CatchmentShard& shard, std::size_t i) {
        if (shard.out.empty()) {
          shard.out.resize(deployment.size());
          shard.distances.resize(deployment.size());
        }
        const Client24& c = all[i];
        const RouteResult route = router.route_anycast(c.access_as, c.metro);
        if (!route.valid) {
          ++shard.unroutable;
          return;
        }
        ++shard.routed;
        ACDN_DCHECK_LT(route.front_end.value, deployment.size())
            << "router returned a front-end outside the deployment";
        CatchmentSummary& summary = shard.out[route.front_end.value];
        ++summary.clients;
        summary.query_share += c.daily_queries;  // normalized below
        shard.total_volume += c.daily_queries;
        ++summary.countries[metros.metro(c.metro).country];
        shard.distances[route.front_end.value].push_back(haversine_km(
            c.location,
            metros.metro(deployment.site(route.front_end).metro).location));
      },
      [](CatchmentShard& acc, CatchmentShard&& shard) {
        if (shard.out.empty()) return;
        if (acc.out.empty()) {
          acc = std::move(shard);
          return;
        }
        // Shards size lazily but always to deployment.size(); a mismatch
        // here means per-front-end sums are being folded misaligned.
        ACDN_CHECK_EQ(acc.out.size(), shard.out.size())
            << "catchment shard fold misaligned";
        for (std::size_t fe = 0; fe < acc.out.size(); ++fe) {
          acc.out[fe].clients += shard.out[fe].clients;
          acc.out[fe].query_share += shard.out[fe].query_share;
          for (const auto& [country, n] : shard.out[fe].countries) {
            acc.out[fe].countries[country] += n;
          }
          acc.distances[fe].insert(acc.distances[fe].end(),
                                   shard.distances[fe].begin(),
                                   shard.distances[fe].end());
        }
        acc.total_volume += shard.total_volume;
        acc.routed += shard.routed;
        acc.unroutable += shard.unroutable;
      });
  metric_count("catchment.clients_routed", total.routed);
  metric_count("catchment.clients_unroutable", total.unroutable);
  if (total.out.empty()) {
    total.out.resize(deployment.size());
    total.distances.resize(deployment.size());
  }

  std::vector<CatchmentSummary> out = std::move(total.out);
  for (const FrontEndSite& s : deployment.sites()) {
    out[s.id.value].front_end = s.id;
    out[s.id.value].name = s.name;
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (total.total_volume > 0.0) out[i].query_share /= total.total_volume;
    if (!total.distances[i].empty()) {
      out[i].median_client_km = quantile(total.distances[i], 0.5);
      out[i].p90_client_km = quantile(total.distances[i], 0.9);
    }
  }
  return out;
}

CatchmentHealth catchment_health(
    std::span<const CatchmentSummary> catchments) {
  CatchmentHealth health;
  if (catchments.empty()) return health;
  double active = 0.0;
  for (const CatchmentSummary& c : catchments) {
    if (c.clients > 0) active += 1.0;
    health.busiest_share = std::max(health.busiest_share, c.query_share);
    if (c.median_client_km <= 1000.0 && c.clients > 0) {
      // Approximation: credit the whole catchment when its median client
      // is within 1000 km (exact per-client accounting would need the raw
      // distances; the health indicator only steers provisioning).
      health.volume_within_1000km += c.query_share;
    }
  }
  health.active_front_ends = active / double(catchments.size());
  return health;
}

}  // namespace acdn
