#include "analysis/catchment.h"

#include <algorithm>

#include "stats/quantile.h"

namespace acdn {

int CatchmentSummary::foreign_clients() const {
  // The front-end's own country is the plurality country of its metro; we
  // carry it implicitly: countries not matching the site name's country
  // cannot be derived here, so count clients outside the *largest*
  // contributor as a proxy for geographic mixing.
  int total = 0;
  int largest = 0;
  for (const auto& [country, n] : countries) {
    total += n;
    largest = std::max(largest, n);
  }
  return total - largest;
}

std::vector<CatchmentSummary> compute_catchments(
    const ClientPopulation& clients, const CdnRouter& router,
    const MetroDatabase& metros) {
  const Deployment& deployment = router.cdn().deployment();
  std::vector<CatchmentSummary> out(deployment.size());
  std::vector<std::vector<double>> distances(deployment.size());
  double total_volume = 0.0;

  for (const FrontEndSite& s : deployment.sites()) {
    out[s.id.value].front_end = s.id;
    out[s.id.value].name = s.name;
  }

  for (const Client24& c : clients.clients()) {
    const RouteResult route = router.route_anycast(c.access_as, c.metro);
    if (!route.valid) continue;
    CatchmentSummary& summary = out[route.front_end.value];
    ++summary.clients;
    summary.query_share += c.daily_queries;  // normalized below
    total_volume += c.daily_queries;
    ++summary.countries[metros.metro(c.metro).country];
    distances[route.front_end.value].push_back(haversine_km(
        c.location,
        metros.metro(deployment.site(route.front_end).metro).location));
  }

  for (std::size_t i = 0; i < out.size(); ++i) {
    if (total_volume > 0.0) out[i].query_share /= total_volume;
    if (!distances[i].empty()) {
      out[i].median_client_km = quantile(distances[i], 0.5);
      out[i].p90_client_km = quantile(distances[i], 0.9);
    }
  }
  return out;
}

CatchmentHealth catchment_health(
    std::span<const CatchmentSummary> catchments) {
  CatchmentHealth health;
  if (catchments.empty()) return health;
  double active = 0.0;
  for (const CatchmentSummary& c : catchments) {
    if (c.clients > 0) active += 1.0;
    health.busiest_share = std::max(health.busiest_share, c.query_share);
    if (c.median_client_km <= 1000.0 && c.clients > 0) {
      // Approximation: credit the whole catchment when its median client
      // is within 1000 km (exact per-client accounting would need the raw
      // distances; the health indicator only steers provisioning).
      health.volume_within_1000km += c.query_share;
    }
  }
  health.active_front_ends = active / double(catchments.size());
  return health;
}

}  // namespace acdn
