// Anycast catchment analysis.
//
// A front-end's catchment is the set of clients BGP delivers to it. The
// paper reasons about catchments indirectly (distances, switches, load);
// this module makes them first-class: per-front-end client counts, query
// share, country mix, and distance statistics — the operator's view of
// "who lands where and how far did they come".
#pragma once

#include <string>
#include <vector>

#include "cdn/router.h"
#include "common/flat_group.h"
#include "workload/clients.h"

namespace acdn {

struct CatchmentSummary {
  FrontEndId front_end;
  std::string name;
  std::size_t clients = 0;
  double query_share = 0.0;  // of global query volume
  Kilometers median_client_km = 0.0;
  Kilometers p90_client_km = 0.0;
  /// Countries contributing clients, with client counts (ascending by
  /// country code; per-catchment counts are small, so the FlatMap's
  /// sorted-insert writes stay cheap).
  FlatMap<std::string, int> countries;

  /// Clients from outside the front-end's own country.
  [[nodiscard]] int foreign_clients() const;
};

/// Catchments under the primary anycast routes (candidate 0). The
/// per-client route resolutions run on the executor pool; partial
/// accumulators combine in deterministic chunk order, so the summaries
/// are bit-identical for any thread count.
[[nodiscard]] std::vector<CatchmentSummary> compute_catchments(
    const ClientPopulation& clients, const CdnRouter& router,
    const MetroDatabase& metros, int threads = 1);

/// Global catchment health indicators.
struct CatchmentHealth {
  /// Fraction of query volume served within 1000 km.
  double volume_within_1000km = 0.0;
  /// Fraction of front-ends serving at least one client.
  double active_front_ends = 0.0;
  /// Share of the busiest front-end (concentration indicator).
  double busiest_share = 0.0;
};

[[nodiscard]] CatchmentHealth catchment_health(
    std::span<const CatchmentSummary> catchments);

}  // namespace acdn
