#include "analysis/figures.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <utility>

#include "common/error.h"
#include "common/executor.h"
#include "common/radix.h"
#include "stats/quantile.h"

namespace acdn {

namespace {

/// One passive-log entry flattened for the radix group-by. Rows stay in
/// global (day, entry) scan order; the *stable* radix passes sort an
/// index permutation by (client, day, fe) with scan order as the implied
/// tie-breaker, so each (client, day, front-end) cell's queries still
/// accumulate in log order — the floating-point sequence matches the old
/// per-shard map exactly, without an explicit seq column.
struct PassiveRow {
  ClientId client;
  DayIndex day = 0;
  FrontEndId fe;
  double queries = 0.0;
};

/// One (client, day, front-end) cell with its summed queries. Cells are
/// sorted by (client, day, fe) — front-ends ascending within each day,
/// days ascending within each client: the iteration order the old nested
/// std::maps produced.
struct PassiveCell {
  ClientId client;
  DayIndex day = 0;
  FrontEndId fe;
  double queries = 0.0;
};

struct PassiveView {
  std::vector<PassiveCell> cells;
  /// Per-client run boundaries into `cells`, clients ascending.
  std::vector<Run> clients;
};

PassiveView passive_by_client(const PassiveLog& log, int days, int threads) {
  std::vector<PassiveRow> rows;
  {
    std::size_t total = 0;
    for (DayIndex d = 0; d < days; ++d) total += log.by_day(d).size();
    rows.reserve(total);
  }
  for (DayIndex d = 0; d < days; ++d) {
    for (const PassiveLogEntry& e : log.by_day(d)) {
      rows.push_back(PassiveRow{e.client, d, e.front_end, e.queries});
    }
  }

  // The (client, day, fe) composite is 96 bits — too wide for one packed
  // key — so LSD-chain two stable radix passes over a row-index
  // permutation: first by (day, fe), then by client. Stability makes the
  // second pass preserve the first pass's order within a client, and the
  // first pass preserve scan order within a cell.
  const std::size_t n = rows.size();
  std::vector<std::uint64_t> keys(n);
  std::vector<std::uint32_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0u);
  for (std::size_t i = 0; i < n; ++i) {
    // NOLINT-ACDN(unchecked-pack): full 32-bit operands in disjoint halves
    keys[i] = (std::uint64_t{static_cast<std::uint32_t>(rows[i].day)} << 32) |
              rows[i].fe.value;
  }
  radix_sort_pairs(std::span<std::uint64_t>(keys),
                   std::span<std::uint32_t>(idx), threads);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = rows[idx[i]].client.value;
  }
  radix_sort_pairs(std::span<std::uint64_t>(keys),
                   std::span<std::uint32_t>(idx), threads);

  PassiveView view;
  const auto same_cell = [&](const PassiveRow& a, const PassiveRow& b) {
    return a.client == b.client && a.day == b.day && a.fe == b.fe;
  };
  std::size_t begin = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    if (i < n && same_cell(rows[idx[begin]], rows[idx[i]])) continue;
    double queries = 0.0;
    for (std::size_t k = begin; k < i; ++k) {
      queries += rows[idx[k]].queries;  // ascending idx run = log order
    }
    const PassiveRow& head = rows[idx[begin]];
    view.cells.push_back(PassiveCell{head.client, head.day, head.fe, queries});
    begin = i;
  }
  for_each_run(
      std::span<const PassiveCell>(view.cells),
      [](const PassiveCell& a, const PassiveCell& b) {
        return a.client == b.client;
      },
      [&](Run run) { view.clients.push_back(run); });
  return view;
}

Kilometers client_fe_distance(const Client24& client, FrontEndId fe,
                              const Deployment& deployment,
                              const MetroDatabase& metros) {
  return haversine_km(client.location,
                      metros.metro(deployment.site(fe).metro).location);
}

}  // namespace

std::vector<DistributionBuilder> fig1_min_latency_by_pool_size(
    std::span<const std::vector<Milliseconds>> per_client,
    std::span<const int> ns, int threads) {
  return Executor::global().parallel_reduce(
      0, per_client.size(), threads, kReduceGrain,
      std::vector<DistributionBuilder>(ns.size()),
      [&](std::vector<DistributionBuilder>& shard, std::size_t c) {
        if (shard.empty()) shard.resize(ns.size());
        const std::vector<Milliseconds>& lat = per_client[c];
        if (lat.empty()) return;
        for (std::size_t i = 0; i < ns.size(); ++i) {
          const auto n = static_cast<std::size_t>(std::max(1, ns[i]));
          const auto end = std::min(n, lat.size());
          const Milliseconds best = *std::min_element(
              lat.begin(), lat.begin() + static_cast<long>(end));
          shard[i].add(best);
        }
      },
      [](std::vector<DistributionBuilder>& acc,
         std::vector<DistributionBuilder>&& shard) {
        if (shard.empty()) return;
        for (std::size_t i = 0; i < acc.size(); ++i) {
          acc[i].merge(std::move(shard[i]));
        }
      });
}

std::vector<DistributionBuilder> fig2_nth_closest_distances(
    const ClientPopulation& clients, const Deployment& deployment,
    const MetroDatabase& metros, int n, int threads) {
  require(n >= 1, "fig2 needs at least one rank");
  const auto all = clients.clients();
  return Executor::global().parallel_reduce(
      0, all.size(), threads, kReduceGrain,
      std::vector<DistributionBuilder>(static_cast<std::size_t>(n)),
      [&](std::vector<DistributionBuilder>& shard, std::size_t i) {
        if (shard.empty()) shard.resize(static_cast<std::size_t>(n));
        const Client24& c = all[i];
        const auto nearest = deployment.nearest_sites(
            metros, c.location, static_cast<std::size_t>(n));
        for (std::size_t r = 0; r < nearest.size(); ++r) {
          shard[r].add(
              haversine_km(
                  c.location,
                  metros.metro(deployment.site(nearest[r]).metro).location),
              c.daily_queries);
        }
      },
      [](std::vector<DistributionBuilder>& acc,
         std::vector<DistributionBuilder>&& shard) {
        if (shard.empty()) return;
        for (std::size_t r = 0; r < acc.size(); ++r) {
          acc[r].merge(std::move(shard[r]));
        }
      });
}

DistributionBuilder fig3_anycast_minus_best_unicast(
    std::span<const BeaconMeasurement> measurements,
    const ClientPopulation& clients, std::optional<Region> region,
    int threads) {
  return Executor::global().parallel_reduce(
      0, measurements.size(), threads, kReduceGrain, DistributionBuilder{},
      [&](DistributionBuilder& shard, std::size_t i) {
        const BeaconMeasurement& m = measurements[i];
        if (region && clients.client(m.client).region != *region) return;
        const auto anycast = m.anycast_ms();
        const auto best = m.best_unicast();
        if (!anycast || !best) return;
        shard.add(*anycast - best->rtt_ms);
      },
      [](DistributionBuilder& acc, DistributionBuilder&& shard) {
        acc.merge(std::move(shard));
      });
}

Fig4Distances fig4_distances(const PassiveLog& log, DayIndex day,
                             const ClientPopulation& clients,
                             const Deployment& deployment,
                             const MetroDatabase& metros,
                             const GeolocationModel* geolocation,
                             int threads) {
  // Dominant front-end per client that day.
  std::map<ClientId, std::map<FrontEndId, double>> per_client;
  for (const PassiveLogEntry& e : log.by_day(day)) {
    per_client[e.client][e.front_end] += e.queries;
  }
  std::vector<const std::pair<const ClientId, std::map<FrontEndId, double>>*>
      entries;
  entries.reserve(per_client.size());
  for (const auto& entry : per_client) entries.push_back(&entry);

  return Executor::global().parallel_reduce(
      0, entries.size(), threads, kReduceGrain, Fig4Distances{},
      [&](Fig4Distances& shard, std::size_t i) {
        const Client24& client = clients.client(entries[i]->first);
        const auto& fes = entries[i]->second;
        FrontEndId dominant = fes.begin()->first;
        double best_q = fes.begin()->second;
        for (const auto& [fe, q] : fes) {
          if (q > best_q) {
            dominant = fe;
            best_q = q;
          }
        }
        // The analysis only knows where the geolocation database puts the
        // client, not where it really is.
        const GeoPoint where =
            geolocation
                ? geolocation->estimate(client.location,
                                        client.prefix.address().value())
                : client.location;
        auto fe_distance = [&](FrontEndId fe) {
          return haversine_km(
              where, metros.metro(deployment.site(fe).metro).location);
        };
        const Kilometers to_fe = fe_distance(dominant);
        const auto closest = deployment.nearest_sites(metros, where, 1);
        require(!closest.empty(), "deployment has no sites");
        const Kilometers to_closest = fe_distance(closest.front());

        shard.to_front_end.add(to_fe);
        shard.to_front_end_weighted.add(to_fe, client.daily_queries);
        shard.past_closest.add(to_fe - to_closest);
        shard.past_closest_weighted.add(to_fe - to_closest,
                                        client.daily_queries);
      },
      [](Fig4Distances& acc, Fig4Distances&& shard) {
        acc.to_front_end.merge(std::move(shard.to_front_end));
        acc.to_front_end_weighted.merge(
            std::move(shard.to_front_end_weighted));
        acc.past_closest.merge(std::move(shard.past_closest));
        acc.past_closest_weighted.merge(
            std::move(shard.past_closest_weighted));
      });
}

FlatMap<std::uint32_t, Milliseconds> daily_improvement(
    const DayAggregates& agg, const Fig5Config& config, int threads) {
  require(agg.grouping() == Grouping::kEcsPrefix,
          "daily_improvement scores per-/24 (ECS) aggregates");

  // Score every group independently on the pool; collect qualifying
  // groups back in ascending key order.
  const std::span<const DayAggregates::Group> groups = agg.groups();
  std::vector<std::optional<Milliseconds>> scored(groups.size());

  Executor::global().parallel_for(
      0, groups.size(), threads, [&](std::size_t i) {
        const DayAggregates::Group& group = groups[i];
        const DayAggregates::Target* anycast =
            agg.find_target(group, TargetKey{true, FrontEndId{}});
        if (anycast == nullptr ||
            static_cast<int>(anycast->count) <
                config.min_samples_per_target) {
          return;
        }
        const Milliseconds anycast_median = median(agg.samples(*anycast));

        std::optional<Milliseconds> best_unicast;
        for (const DayAggregates::Target& target : agg.targets(group)) {
          if (target.key.anycast) continue;
          if (static_cast<int>(target.count) < config.min_samples_per_target) {
            continue;
          }
          const Milliseconds med = median(agg.samples(target));
          if (!best_unicast || med < *best_unicast) best_unicast = med;
        }
        if (!best_unicast) return;
        scored[i] = anycast_median - *best_unicast;
      });

  FlatMap<std::uint32_t, Milliseconds> out;
  out.reserve(groups.size());
  for (std::size_t i = 0; i < groups.size(); ++i) {
    if (scored[i]) out.append(groups[i].key, *scored[i]);
  }
  return out;
}

FlatMap<std::uint32_t, Milliseconds> daily_improvement(
    const MeasurementColumns& measurements, const Fig5Config& config,
    int threads, ScratchArena* scratch) {
  return daily_improvement(
      DayAggregates::build(measurements, Grouping::kEcsPrefix, threads,
                           scratch),
      config, threads);
}

FlatMap<std::uint32_t, Milliseconds> daily_improvement(
    std::span<const BeaconMeasurement> measurements,
    const Fig5Config& config, int threads) {
  MeasurementColumns columns;
  std::size_t targets = 0;
  for (const BeaconMeasurement& m : measurements) targets += m.targets.size();
  columns.reserve(measurements.size(), targets);
  for (const BeaconMeasurement& m : measurements) columns.push_back(m);
  return daily_improvement(columns, config, threads, nullptr);
}

std::vector<Fig5Day> fig5_daily_prevalence(const MeasurementStore& store,
                                           const Fig5Config& config,
                                           int threads) {
  // One arena across the day loop: the aggregation buffers warm up on day
  // 0 and are reused (no reallocation) for every later day.
  ScratchArena scratch;
  std::vector<Fig5Day> out;
  out.reserve(static_cast<std::size_t>(store.days()));
  for (DayIndex d = 0; d < store.days(); ++d) {
    const auto improvements =
        daily_improvement(store.columns(d), config, threads, &scratch);
    Fig5Day day;
    day.day = d;
    day.fraction_above.assign(config.thresholds.size(), 0.0);
    if (improvements.empty()) {
      out.push_back(std::move(day));
      continue;
    }
    for (const auto& [group, improvement] : improvements) {
      for (std::size_t i = 0; i < config.thresholds.size(); ++i) {
        const Milliseconds threshold =
            config.thresholds[i] == 0.0 ? config.epsilon_ms
                                        : config.thresholds[i];
        if (improvement > threshold) day.fraction_above[i] += 1.0;
      }
    }
    for (double& f : day.fraction_above) {
      f /= static_cast<double>(improvements.size());
    }
    out.push_back(std::move(day));
  }
  return out;
}

Fig6Duration fig6_poor_duration(const MeasurementStore& store,
                                const Fig5Config& config, int threads) {
  // Collect every (group, poor-day) pair packed group-major into one
  // radix-sortable key, then one group-by pass per /24.
  ScratchArena scratch;
  std::vector<std::uint64_t> poor;
  for (DayIndex d = 0; d < store.days(); ++d) {
    for (const auto& [group, improvement] :
         daily_improvement(store.columns(d), config, threads, &scratch)) {
      if (improvement > config.epsilon_ms) {
        // NOLINT-ACDN(unchecked-pack): 32-bit operands in disjoint halves
        poor.push_back((std::uint64_t{group} << 32) |
                       static_cast<std::uint32_t>(d));
      }
    }
  }
  radix_sort(std::span<std::uint64_t>(poor), threads);

  Fig6Duration out;
  const auto day_of = [](std::uint64_t key) {
    return static_cast<std::uint32_t>(key);
  };
  for_each_run(
      std::span<const std::uint64_t>(poor),
      [](std::uint64_t a, std::uint64_t b) { return (a >> 32) == (b >> 32); },
      [&](Run run) {
        out.days_poor.add(static_cast<double>(run.size()));
        int longest = 1;
        int current = 1;
        for (std::size_t i = run.begin + 1; i < run.end; ++i) {
          current = (day_of(poor[i]) == day_of(poor[i - 1]) + 1) ? current + 1
                                                                 : 1;
          longest = std::max(longest, current);
        }
        out.max_consecutive.add(static_cast<double>(longest));
      });
  return out;
}

std::vector<double> fig7_cumulative_switched(const PassiveLog& log,
                                             int days, int threads) {
  const PassiveView per_client = passive_by_client(log, days, threads);
  if (per_client.clients.empty()) {
    return std::vector<double>(static_cast<std::size_t>(std::max(0, days)),
                               0.0);
  }

  // Per-day increments are counts of clients (exact small integers), so
  // the elementwise shard sums are order-insensitive and bit-exact.
  std::vector<double> switched = Executor::global().parallel_reduce(
      0, per_client.clients.size(), threads, kReduceGrain,
      std::vector<double>(static_cast<std::size_t>(days), 0.0),
      [&](std::vector<double>& shard, std::size_t i) {
        if (shard.empty()) shard.assign(static_cast<std::size_t>(days), 0.0);
        const Run client = per_client.clients[i];
        // Cells are (day, fe)-sorted within the client: the first cell
        // whose front-end differs from the client's first one marks the
        // day its cumulative front-end set grew past a single entry.
        const FrontEndId first_fe = per_client.cells[client.begin].fe;
        std::optional<DayIndex> first_switch;
        for (std::size_t c = client.begin + 1; c < client.end; ++c) {
          if (per_client.cells[c].fe != first_fe) {
            first_switch = per_client.cells[c].day;
            break;
          }
        }
        if (first_switch) {
          for (DayIndex d = *first_switch; d < days; ++d) {
            shard[static_cast<std::size_t>(d)] += 1.0;
          }
        }
      },
      [](std::vector<double>& acc, std::vector<double>&& shard) {
        if (shard.empty()) return;
        for (std::size_t d = 0; d < acc.size(); ++d) acc[d] += shard[d];
      });
  for (double& s : switched) {
    s /= static_cast<double>(per_client.clients.size());
  }
  return switched;
}

DistributionBuilder fig8_switch_distance(const PassiveLog& log, int days,
                                         const ClientPopulation& clients,
                                         const Deployment& deployment,
                                         const MetroDatabase& metros,
                                         int threads) {
  const PassiveView per_client = passive_by_client(log, days, threads);

  return Executor::global().parallel_reduce(
      0, per_client.clients.size(), threads, kReduceGrain,
      DistributionBuilder{},
      [&](DistributionBuilder& shard, std::size_t i) {
        const Run run = per_client.clients[i];
        const std::span<const PassiveCell> cells(
            per_client.cells.data() + run.begin, run.size());
        const Client24& client = clients.client(cells.front().client);
        auto distance = [&](FrontEndId fe) {
          return client_fe_distance(client, fe, deployment, metros);
        };

        std::optional<FrontEndId> previous;
        for_each_run(
            cells,
            [](const PassiveCell& a, const PassiveCell& b) {
              return a.day == b.day;
            },
            [&](Run day_run) {
              // Intra-day: more than one front-end seen the same day.
              if (day_run.size() > 1) {
                // Record the change between the two most-used front-ends.
                std::vector<std::pair<double, FrontEndId>> ranked;
                ranked.reserve(day_run.size());
                for (std::size_t k = day_run.begin; k < day_run.end; ++k) {
                  ranked.emplace_back(cells[k].queries, cells[k].fe);
                }
                std::sort(ranked.rbegin(), ranked.rend());
                shard.add(std::abs(distance(ranked[0].second) -
                                   distance(ranked[1].second)));
              }
              // Dominant front-end: highest query volume, lowest id on
              // ties — the old fe-ascending map walk with a strict `>`.
              FrontEndId today = cells[day_run.begin].fe;
              double best_q = cells[day_run.begin].queries;
              for (std::size_t k = day_run.begin + 1; k < day_run.end; ++k) {
                if (cells[k].queries > best_q) {
                  today = cells[k].fe;
                  best_q = cells[k].queries;
                }
              }
              if (previous && *previous != today) {
                shard.add(std::abs(distance(today) - distance(*previous)));
              }
              previous = today;
            });
      },
      [](DistributionBuilder& acc, DistributionBuilder&& shard) {
        acc.merge(std::move(shard));
      });
}

}  // namespace acdn
