#include "analysis/figures.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.h"
#include "common/executor.h"
#include "stats/quantile.h"

namespace acdn {

namespace {

/// Per-client view of the passive log: dominant front-end per day, plus
/// the set of all front-ends seen per day.
struct ClientDays {
  // day -> (front_end -> queries)
  std::map<DayIndex, std::map<FrontEndId, double>> days;

  [[nodiscard]] FrontEndId dominant(DayIndex day) const {
    const auto& fes = days.at(day);
    FrontEndId best = fes.begin()->first;
    double best_q = fes.begin()->second;
    for (const auto& [fe, q] : fes) {
      if (q > best_q) {
        best = fe;
        best_q = q;
      }
    }
    return best;
  }
};

std::map<ClientId, ClientDays> passive_by_client(const PassiveLog& log,
                                                 int days, int threads) {
  // Sharded by client id: each shard scans the log in (day, entry) order
  // for its own clients, so per-client contents — and the merged map —
  // are independent of the shard count.
  const std::size_t shard_count =
      static_cast<std::size_t>(std::clamp(threads, 1, 16));
  std::vector<std::map<ClientId, ClientDays>> shards(shard_count);
  Executor::global().parallel_for(
      0, shard_count, threads, [&](std::size_t s) {
        auto& local = shards[s];
        for (DayIndex d = 0; d < days; ++d) {
          for (const PassiveLogEntry& e : log.by_day(d)) {
            if (e.client.value % shard_count != s) continue;
            // NOLINT-ACDN(parallel-fp-accum): shard s is private to this
            local[e.client].days[d][e.front_end] += e.queries;  // iteration
          }
        }
      });
  std::map<ClientId, ClientDays> out;
  for (auto& shard : shards) {
    for (auto& [client, view] : shard) {
      out.emplace(client, std::move(view));
    }
  }
  return out;
}

Kilometers client_fe_distance(const Client24& client, FrontEndId fe,
                              const Deployment& deployment,
                              const MetroDatabase& metros) {
  return haversine_km(client.location,
                      metros.metro(deployment.site(fe).metro).location);
}

}  // namespace

std::vector<DistributionBuilder> fig1_min_latency_by_pool_size(
    std::span<const std::vector<Milliseconds>> per_client,
    std::span<const int> ns, int threads) {
  return Executor::global().parallel_reduce(
      0, per_client.size(), threads, kReduceGrain,
      std::vector<DistributionBuilder>(ns.size()),
      [&](std::vector<DistributionBuilder>& shard, std::size_t c) {
        if (shard.empty()) shard.resize(ns.size());
        const std::vector<Milliseconds>& lat = per_client[c];
        if (lat.empty()) return;
        for (std::size_t i = 0; i < ns.size(); ++i) {
          const auto n = static_cast<std::size_t>(std::max(1, ns[i]));
          const auto end = std::min(n, lat.size());
          const Milliseconds best = *std::min_element(
              lat.begin(), lat.begin() + static_cast<long>(end));
          shard[i].add(best);
        }
      },
      [](std::vector<DistributionBuilder>& acc,
         std::vector<DistributionBuilder>&& shard) {
        if (shard.empty()) return;
        for (std::size_t i = 0; i < acc.size(); ++i) {
          acc[i].merge(std::move(shard[i]));
        }
      });
}

std::vector<DistributionBuilder> fig2_nth_closest_distances(
    const ClientPopulation& clients, const Deployment& deployment,
    const MetroDatabase& metros, int n, int threads) {
  require(n >= 1, "fig2 needs at least one rank");
  const auto all = clients.clients();
  return Executor::global().parallel_reduce(
      0, all.size(), threads, kReduceGrain,
      std::vector<DistributionBuilder>(static_cast<std::size_t>(n)),
      [&](std::vector<DistributionBuilder>& shard, std::size_t i) {
        if (shard.empty()) shard.resize(static_cast<std::size_t>(n));
        const Client24& c = all[i];
        const auto nearest = deployment.nearest_sites(
            metros, c.location, static_cast<std::size_t>(n));
        for (std::size_t r = 0; r < nearest.size(); ++r) {
          shard[r].add(
              haversine_km(
                  c.location,
                  metros.metro(deployment.site(nearest[r]).metro).location),
              c.daily_queries);
        }
      },
      [](std::vector<DistributionBuilder>& acc,
         std::vector<DistributionBuilder>&& shard) {
        if (shard.empty()) return;
        for (std::size_t r = 0; r < acc.size(); ++r) {
          acc[r].merge(std::move(shard[r]));
        }
      });
}

DistributionBuilder fig3_anycast_minus_best_unicast(
    std::span<const BeaconMeasurement> measurements,
    const ClientPopulation& clients, std::optional<Region> region,
    int threads) {
  return Executor::global().parallel_reduce(
      0, measurements.size(), threads, kReduceGrain, DistributionBuilder{},
      [&](DistributionBuilder& shard, std::size_t i) {
        const BeaconMeasurement& m = measurements[i];
        if (region && clients.client(m.client).region != *region) return;
        const auto anycast = m.anycast_ms();
        const auto best = m.best_unicast();
        if (!anycast || !best) return;
        shard.add(*anycast - best->rtt_ms);
      },
      [](DistributionBuilder& acc, DistributionBuilder&& shard) {
        acc.merge(std::move(shard));
      });
}

Fig4Distances fig4_distances(const PassiveLog& log, DayIndex day,
                             const ClientPopulation& clients,
                             const Deployment& deployment,
                             const MetroDatabase& metros,
                             const GeolocationModel* geolocation,
                             int threads) {
  // Dominant front-end per client that day.
  std::map<ClientId, std::map<FrontEndId, double>> per_client;
  for (const PassiveLogEntry& e : log.by_day(day)) {
    per_client[e.client][e.front_end] += e.queries;
  }
  std::vector<const std::pair<const ClientId, std::map<FrontEndId, double>>*>
      entries;
  entries.reserve(per_client.size());
  for (const auto& entry : per_client) entries.push_back(&entry);

  return Executor::global().parallel_reduce(
      0, entries.size(), threads, kReduceGrain, Fig4Distances{},
      [&](Fig4Distances& shard, std::size_t i) {
        const Client24& client = clients.client(entries[i]->first);
        const auto& fes = entries[i]->second;
        FrontEndId dominant = fes.begin()->first;
        double best_q = fes.begin()->second;
        for (const auto& [fe, q] : fes) {
          if (q > best_q) {
            dominant = fe;
            best_q = q;
          }
        }
        // The analysis only knows where the geolocation database puts the
        // client, not where it really is.
        const GeoPoint where =
            geolocation
                ? geolocation->estimate(client.location,
                                        client.prefix.address().value())
                : client.location;
        auto fe_distance = [&](FrontEndId fe) {
          return haversine_km(
              where, metros.metro(deployment.site(fe).metro).location);
        };
        const Kilometers to_fe = fe_distance(dominant);
        const auto closest = deployment.nearest_sites(metros, where, 1);
        require(!closest.empty(), "deployment has no sites");
        const Kilometers to_closest = fe_distance(closest.front());

        shard.to_front_end.add(to_fe);
        shard.to_front_end_weighted.add(to_fe, client.daily_queries);
        shard.past_closest.add(to_fe - to_closest);
        shard.past_closest_weighted.add(to_fe - to_closest,
                                        client.daily_queries);
      },
      [](Fig4Distances& acc, Fig4Distances&& shard) {
        acc.to_front_end.merge(std::move(shard.to_front_end));
        acc.to_front_end_weighted.merge(
            std::move(shard.to_front_end_weighted));
        acc.past_closest.merge(std::move(shard.past_closest));
        acc.past_closest_weighted.merge(
            std::move(shard.past_closest_weighted));
      });
}

std::map<std::uint32_t, Milliseconds> daily_improvement(
    std::span<const BeaconMeasurement> measurements,
    const Fig5Config& config, int threads) {
  const DayAggregates agg =
      DayAggregates::build(measurements, Grouping::kEcsPrefix, threads);

  // Score every group independently on the pool; collect qualifying
  // groups back in ascending key order.
  std::vector<const std::pair<const std::uint32_t, GroupSamples>*> groups;
  groups.reserve(agg.groups().size());
  for (const auto& entry : agg.groups()) groups.push_back(&entry);
  std::vector<std::optional<Milliseconds>> scored(groups.size());

  Executor::global().parallel_for(
      0, groups.size(), threads, [&](std::size_t i) {
        const GroupSamples& samples = groups[i]->second;
        const TargetKey anycast_key{true, FrontEndId{}};
        auto anycast_it = samples.by_target.find(anycast_key);
        if (anycast_it == samples.by_target.end() ||
            static_cast<int>(anycast_it->second.size()) <
                config.min_samples_per_target) {
          return;
        }
        const Milliseconds anycast_median = median(anycast_it->second);

        std::optional<Milliseconds> best_unicast;
        for (const auto& [key, rtts] : samples.by_target) {
          if (key.anycast) continue;
          if (static_cast<int>(rtts.size()) < config.min_samples_per_target) {
            continue;
          }
          const Milliseconds med = median(rtts);
          if (!best_unicast || med < *best_unicast) best_unicast = med;
        }
        if (!best_unicast) return;
        scored[i] = anycast_median - *best_unicast;
      });

  std::map<std::uint32_t, Milliseconds> out;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    if (scored[i]) out.emplace_hint(out.end(), groups[i]->first, *scored[i]);
  }
  return out;
}

std::vector<Fig5Day> fig5_daily_prevalence(const MeasurementStore& store,
                                           const Fig5Config& config,
                                           int threads) {
  std::vector<Fig5Day> out;
  for (DayIndex d = 0; d < store.days(); ++d) {
    const auto improvements =
        daily_improvement(store.by_day(d), config, threads);
    Fig5Day day;
    day.day = d;
    day.fraction_above.assign(config.thresholds.size(), 0.0);
    if (improvements.empty()) {
      out.push_back(std::move(day));
      continue;
    }
    for (const auto& [group, improvement] : improvements) {
      for (std::size_t i = 0; i < config.thresholds.size(); ++i) {
        const Milliseconds threshold =
            config.thresholds[i] == 0.0 ? config.epsilon_ms
                                        : config.thresholds[i];
        if (improvement > threshold) day.fraction_above[i] += 1.0;
      }
    }
    for (double& f : day.fraction_above) {
      f /= static_cast<double>(improvements.size());
    }
    out.push_back(std::move(day));
  }
  return out;
}

Fig6Duration fig6_poor_duration(const MeasurementStore& store,
                                const Fig5Config& config, int threads) {
  // Per /24: the set of days it was poor.
  std::map<std::uint32_t, std::vector<DayIndex>> poor_days;
  for (DayIndex d = 0; d < store.days(); ++d) {
    for (const auto& [group, improvement] :
         daily_improvement(store.by_day(d), config, threads)) {
      if (improvement > config.epsilon_ms) poor_days[group].push_back(d);
    }
  }

  Fig6Duration out;
  for (const auto& [group, days] : poor_days) {
    out.days_poor.add(static_cast<double>(days.size()));
    int longest = 1;
    int current = 1;
    for (std::size_t i = 1; i < days.size(); ++i) {
      current = (days[i] == days[i - 1] + 1) ? current + 1 : 1;
      longest = std::max(longest, current);
    }
    out.max_consecutive.add(static_cast<double>(longest));
  }
  return out;
}

std::vector<double> fig7_cumulative_switched(const PassiveLog& log,
                                             int days, int threads) {
  const auto per_client = passive_by_client(log, days, threads);
  if (per_client.empty()) return std::vector<double>(std::max(0, days), 0.0);

  std::vector<const std::pair<const ClientId, ClientDays>*> entries;
  entries.reserve(per_client.size());
  for (const auto& entry : per_client) entries.push_back(&entry);

  // Per-day increments are counts of clients (exact small integers), so
  // the elementwise shard sums are order-insensitive and bit-exact.
  std::vector<double> switched = Executor::global().parallel_reduce(
      0, entries.size(), threads, kReduceGrain,
      std::vector<double>(static_cast<std::size_t>(days), 0.0),
      [&](std::vector<double>& shard, std::size_t i) {
        if (shard.empty()) shard.assign(static_cast<std::size_t>(days), 0.0);
        const ClientDays& view = entries[i]->second;
        std::set<FrontEndId> seen;
        std::optional<DayIndex> first_switch;
        for (const auto& [day, fes] : view.days) {
          for (const auto& [fe, q] : fes) seen.insert(fe);
          if (seen.size() > 1) {
            first_switch = day;
            break;
          }
        }
        if (first_switch) {
          for (DayIndex d = *first_switch; d < days; ++d) {
            shard[static_cast<std::size_t>(d)] += 1.0;
          }
        }
      },
      [](std::vector<double>& acc, std::vector<double>&& shard) {
        if (shard.empty()) return;
        for (std::size_t d = 0; d < acc.size(); ++d) acc[d] += shard[d];
      });
  for (double& s : switched) s /= static_cast<double>(per_client.size());
  return switched;
}

DistributionBuilder fig8_switch_distance(const PassiveLog& log, int days,
                                         const ClientPopulation& clients,
                                         const Deployment& deployment,
                                         const MetroDatabase& metros,
                                         int threads) {
  const auto per_client = passive_by_client(log, days, threads);
  std::vector<const std::pair<const ClientId, ClientDays>*> entries;
  entries.reserve(per_client.size());
  for (const auto& entry : per_client) entries.push_back(&entry);

  return Executor::global().parallel_reduce(
      0, entries.size(), threads, kReduceGrain, DistributionBuilder{},
      [&](DistributionBuilder& shard, std::size_t i) {
        const Client24& client = clients.client(entries[i]->first);
        const ClientDays& view = entries[i]->second;
        auto distance = [&](FrontEndId fe) {
          return client_fe_distance(client, fe, deployment, metros);
        };

        std::optional<FrontEndId> previous;
        for (const auto& [day, fes] : view.days) {
          // Intra-day: more than one front-end seen the same day.
          if (fes.size() > 1) {
            // Record the change between the two most-used front-ends.
            std::vector<std::pair<double, FrontEndId>> ranked;
            for (const auto& [fe, q] : fes) ranked.emplace_back(q, fe);
            std::sort(ranked.rbegin(), ranked.rend());
            shard.add(std::abs(distance(ranked[0].second) -
                               distance(ranked[1].second)));
          }
          const FrontEndId today = view.dominant(day);
          if (previous && *previous != today) {
            shard.add(std::abs(distance(today) - distance(*previous)));
          }
          previous = today;
        }
      },
      [](DistributionBuilder& acc, DistributionBuilder&& shard) {
        acc.merge(std::move(shard));
      });
}

}  // namespace acdn
