// Figure-level analyses (paper §3.3, §5).
//
// Each function turns raw measurement data into exactly the distribution a
// figure plots. The bench harnesses wrap these with printing; keeping the
// statistics here makes them unit-testable against hand-built logs.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "analysis/aggregate.h"
#include "beacon/store.h"
#include "common/arena.h"
#include "common/flat_group.h"
#include "cdn/deployment.h"
#include "geo/geolocation.h"
#include "stats/distribution.h"
#include "workload/clients.h"

namespace acdn {

// ---------------------------------------------------------------- Figure 1
/// CDF of per-client minimum observed latency when only the nearest N
/// candidates are measured, for each N in `ns`. `per_client` holds each
/// client's latencies to its LDNS's candidates, nearest-first (from
/// BeaconSystem::measure_all_candidates).
[[nodiscard]] std::vector<DistributionBuilder> fig1_min_latency_by_pool_size(
    std::span<const std::vector<Milliseconds>> per_client,
    std::span<const int> ns, int threads = 1);

// ---------------------------------------------------------------- Figure 2
/// Query-weighted distributions of the distance from each client to its
/// Nth-closest front-end, for N = 1..n (paper §4). Output index i holds
/// the (i+1)-th closest.
[[nodiscard]] std::vector<DistributionBuilder> fig2_nth_closest_distances(
    const ClientPopulation& clients, const Deployment& deployment,
    const MetroDatabase& metros, int n, int threads = 1);

// ---------------------------------------------------------------- Figure 3
/// CCDF input: per beacon execution, anycast latency minus the best of the
/// unicast fetches (positive = anycast slower). Optionally restricted to
/// clients in `region`.
[[nodiscard]] DistributionBuilder fig3_anycast_minus_best_unicast(
    std::span<const BeaconMeasurement> measurements,
    const ClientPopulation& clients, std::optional<Region> region,
    int threads = 1);

// ---------------------------------------------------------------- Figure 4
struct Fig4Distances {
  DistributionBuilder to_front_end;           // client -> anycast FE, km
  DistributionBuilder to_front_end_weighted;  // same, query-weighted
  DistributionBuilder past_closest;           // anycast FE dist - closest FE dist
  DistributionBuilder past_closest_weighted;
};

/// Built from one day of passive logs: each client's dominant anycast
/// front-end that day. When `geolocation` is non-null, client positions
/// are taken from the geolocation database rather than ground truth —
/// what the paper's analysis had to do, and the source of part of its
/// long-distance tail (paper footnote 1).
[[nodiscard]] Fig4Distances fig4_distances(
    const PassiveLog& log, DayIndex day, const ClientPopulation& clients,
    const Deployment& deployment, const MetroDatabase& metros,
    const GeolocationModel* geolocation = nullptr, int threads = 1);

// ---------------------------------------------------------------- Figure 5
struct Fig5Config {
  /// Minimum samples a target needs that day to enter the comparison.
  int min_samples_per_target = 3;
  /// Median-noise guard on the "any improvement" line: medians of a few
  /// samples jitter by a couple of ms even when two targets are identical.
  Milliseconds epsilon_ms = 2.0;
  std::vector<Milliseconds> thresholds{0.0, 10.0, 25.0, 50.0, 100.0};
};

/// Per-/24 improvement available over anycast on one day: median anycast
/// latency minus the best per-front-end median. Only groups where anycast
/// and at least one unicast target pass the sample gate appear, in
/// ascending group order. The columnar overload is the hot path; pass a
/// ScratchArena to reuse the aggregation buffers across days. The
/// DayAggregates overload scores an already-built per-/24 aggregation, so
/// one build per day can feed this and the predictor (see
/// HistoryPredictor::train).
[[nodiscard]] FlatMap<std::uint32_t, Milliseconds> daily_improvement(
    const DayAggregates& aggregates, const Fig5Config& config,
    int threads = 1);
[[nodiscard]] FlatMap<std::uint32_t, Milliseconds> daily_improvement(
    const MeasurementColumns& measurements, const Fig5Config& config,
    int threads = 1, ScratchArena* scratch = nullptr);
[[nodiscard]] FlatMap<std::uint32_t, Milliseconds> daily_improvement(
    std::span<const BeaconMeasurement> measurements, const Fig5Config& config,
    int threads = 1);

struct Fig5Day {
  DayIndex day = 0;
  /// fraction of /24s whose improvement exceeds thresholds[i] (+epsilon for
  /// the 0 threshold), aligned with Fig5Config::thresholds.
  std::vector<double> fraction_above;
};

[[nodiscard]] std::vector<Fig5Day> fig5_daily_prevalence(
    const MeasurementStore& store, const Fig5Config& config,
    int threads = 1);

// ---------------------------------------------------------------- Figure 6
struct Fig6Duration {
  DistributionBuilder days_poor;        // # days a /24 was poor in the month
  DistributionBuilder max_consecutive;  // longest consecutive poor streak
};

/// A /24 is "poor" on a day if any unicast front-end beats anycast (the
/// paper: "any latency inflation over a unicast front-end"). Only /24s
/// poor on at least one day enter the distributions, matching the figure's
/// population ("client /24s categorized as having poor-performing paths").
[[nodiscard]] Fig6Duration fig6_poor_duration(const MeasurementStore& store,
                                              const Fig5Config& config,
                                              int threads = 1);

// ---------------------------------------------------------------- Figure 7
/// Cumulative fraction of clients that have landed on more than one
/// front-end by the end of each day (passive logs; intra-day switches
/// count on their day).
[[nodiscard]] std::vector<double> fig7_cumulative_switched(
    const PassiveLog& log, int days, int threads = 1);

// ---------------------------------------------------------------- Figure 8
/// |change in client-to-front-end distance| per front-end switch event
/// (both across consecutive days and within a day).
[[nodiscard]] DistributionBuilder fig8_switch_distance(
    const PassiveLog& log, int days, const ClientPopulation& clients,
    const Deployment& deployment, const MetroDatabase& metros,
    int threads = 1);

}  // namespace acdn
