#include "analysis/tcp_disruption.h"

#include <cmath>

#include "common/error.h"

namespace acdn {

const char* to_string(FlowProfile p) {
  switch (p) {
    case FlowProfile::kWebShort:  return "web-short";
    case FlowProfile::kWebPage:   return "web-page";
    case FlowProfile::kDownload:  return "download";
    case FlowProfile::kVideoLong: return "video-long";
  }
  return "?";
}

double sample_flow_duration(FlowProfile profile, Rng& rng) {
  // Lognormal bodies with realistic medians; heavy right tails.
  switch (profile) {
    case FlowProfile::kWebShort:
      return rng.lognormal(std::log(0.5), 0.8);    // median 0.5 s
    case FlowProfile::kWebPage:
      return rng.lognormal(std::log(4.0), 0.7);    // median 4 s
    case FlowProfile::kDownload:
      return rng.lognormal(std::log(90.0), 0.9);   // median 1.5 min
    case FlowProfile::kVideoLong:
      return rng.lognormal(std::log(1500.0), 0.6); // median 25 min
  }
  return 1.0;
}

DisruptionEstimate estimate_disruption(FlowProfile profile,
                                       const DisruptionConfig& config,
                                       Rng& rng) {
  require(config.route_changes_per_day >= 0.0,
          "route change rate must be non-negative");
  require(config.flows_per_estimate > 0, "need at least one flow");

  const double rate_per_second = config.route_changes_per_day / 86400.0;
  DisruptionEstimate estimate;
  estimate.profile = profile;

  double total_duration = 0.0;
  int disrupted = 0;
  for (int i = 0; i < config.flows_per_estimate; ++i) {
    const double duration = sample_flow_duration(profile, rng);
    total_duration += duration;
    // Poisson process: P(no change during flow) = exp(-rate * duration).
    // Sample rather than integrate so the tail of the duration
    // distribution is represented faithfully.
    if (rate_per_second > 0.0 &&
        rng.uniform() > std::exp(-rate_per_second * duration)) {
      ++disrupted;
    }
  }
  estimate.mean_duration_s =
      total_duration / double(config.flows_per_estimate);
  estimate.disrupted_fraction =
      double(disrupted) / double(config.flows_per_estimate);
  return estimate;
}

std::vector<DisruptionEstimate> disruption_sweep(
    const DisruptionConfig& config, Rng& rng) {
  std::vector<DisruptionEstimate> out;
  for (FlowProfile profile :
       {FlowProfile::kWebShort, FlowProfile::kWebPage, FlowProfile::kDownload,
        FlowProfile::kVideoLong}) {
    out.push_back(estimate_disruption(profile, config, rng));
  }
  return out;
}

}  // namespace acdn
