// TCP session disruption under anycast route changes (paper §2).
//
// "Anycast routing changes can cause ongoing TCP sessions to terminate and
// need to be restarted. In the context of the Web, which is dominated by
// short flows, this does not appear to be an issue in practice [31, 23]."
//
// This module makes the claim quantitative: given the rate at which a
// client's anycast front-end changes (from route dynamics) and a flow-
// duration distribution, estimate the fraction of flows that experience a
// front-end change mid-flight — by Monte Carlo against the same dynamics
// the rest of the simulation uses.
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace acdn {

/// Flow-duration distributions relevant to the claim.
enum class FlowProfile {
  kWebShort,   // search/page fetches: sub-second to seconds
  kWebPage,    // full page with subresources: seconds
  kDownload,   // software download: minutes
  kVideoLong,  // long-form streaming session: tens of minutes
};

[[nodiscard]] const char* to_string(FlowProfile p);

/// Draws a flow duration (seconds) for a profile.
[[nodiscard]] double sample_flow_duration(FlowProfile profile, Rng& rng);

struct DisruptionConfig {
  /// Mean front-end changes per client per day (measure from Figure 7's
  /// world: changes + flap transitions). A flap contributes two
  /// transitions (away and back).
  double route_changes_per_day = 0.1;
  int flows_per_estimate = 200000;
};

struct DisruptionEstimate {
  FlowProfile profile;
  double mean_duration_s = 0.0;
  /// Fraction of flows that see at least one front-end change mid-flow
  /// (and would need to restart: anycast TCP breaks on a catchment shift).
  double disrupted_fraction = 0.0;
};

/// Monte Carlo: flows start at uniform times; route-change epochs arrive
/// as a Poisson process with the configured daily rate; a flow whose
/// interval contains an epoch is disrupted.
[[nodiscard]] DisruptionEstimate estimate_disruption(
    FlowProfile profile, const DisruptionConfig& config, Rng& rng);

/// All profiles at once, sharing the config.
[[nodiscard]] std::vector<DisruptionEstimate> disruption_sweep(
    const DisruptionConfig& config, Rng& rng);

}  // namespace acdn
