#include "atlas/diagnose.h"

#include <algorithm>
#include <sstream>

namespace acdn {

const char* to_string(AnycastPathology p) {
  switch (p) {
    case AnycastPathology::kNone:              return "none";
    case AnycastPathology::kRemotePeering:     return "remote-peering";
    case AnycastPathology::kTopologyBlindness: return "topology-blindness";
  }
  return "?";
}

Diagnosis AnycastDiagnoser::diagnose(const Probe& probe,
                                     const TracerouteResult& trace) const {
  Diagnosis diagnosis;
  if (!trace.reached) {
    diagnosis.description = "destination unreachable";
    return diagnosis;
  }
  const MetroDatabase& metros = graph_->metros();
  const CdnNetwork& cdn = router_->cdn();

  // Is the CDN even present near this probe? Without nearby presence no
  // routing decision could have done better, so nothing to classify.
  const Kilometers ingress_distance =
      metros.distance_km(probe.metro, trace.ingress_metro);
  bool cdn_nearby = false;
  for (MetroId pop : graph_->as_node(cdn.as_id()).presence) {
    if (metros.distance_km(probe.metro, pop) <= config_.remote_handoff_km) {
      cdn_nearby = true;
      break;
    }
  }

  // --- Remote peering / remote handoff: traffic entered the CDN far from
  // the client although the CDN was present nearby. The detour happens in
  // some ISP's network before the ingress — either the access ISP's cold
  // potato toward a preferred (possibly foreign) interconnection hub, or a
  // transit provider's internal policy selecting a distant peering point
  // (the paper's Denver->Phoenix and Moscow->Stockholm cases).
  if (cdn_nearby && ingress_distance > config_.remote_handoff_km) {
    diagnosis.pathology = AnycastPathology::kRemotePeering;
    diagnosis.detour_km = ingress_distance;
    // Name the network whose segment carried traffic past the CDN.
    const AsNode* culprit = &graph_->as_node(probe.access_as);
    Kilometers longest = 0.0;
    Kilometers so_far = 0.0;
    for (const TracerouteHop& hop : trace.hops) {
      const Kilometers here = metros.distance_km(probe.metro, hop.metro);
      if (here - so_far > longest) {
        longest = here - so_far;
        culprit = &graph_->as_node(hop.as);
      }
      so_far = here;
    }
    std::ostringstream text;
    text << culprit->name << " hands traffic from "
         << metros.metro(probe.metro).name << " to the CDN at "
         << metros.metro(trace.ingress_metro).name << " ("
         << static_cast<int>(ingress_distance)
         << " km away) despite CDN presence near the client";
    diagnosis.description = text.str();
    return diagnosis;
  }

  // --- Topology blindness: ingress was fine (near the client), but the
  // nearest front-end by CDN IGP from that ingress is far away — BGP had
  // no way to prefer the ingress whose interior path is short.
  const Kilometers backbone =
      cdn.backbone_km(trace.ingress_metro, trace.destination);
  if (backbone > config_.backbone_detour_km) {
    diagnosis.pathology = AnycastPathology::kTopologyBlindness;
    diagnosis.detour_km = backbone;
    std::ostringstream text;
    text << "traffic ingressed at "
         << metros.metro(trace.ingress_metro).name
         << " and rode the CDN backbone "
         << static_cast<int>(backbone) << " km to "
         << cdn.deployment().site(trace.destination).name
         << "; BGP cannot see the CDN's internal topology";
    diagnosis.description = text.str();
    return diagnosis;
  }

  diagnosis.description = "path is geographically reasonable";
  return diagnosis;
}

}  // namespace acdn
