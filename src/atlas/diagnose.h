// Root-cause diagnosis of poor anycast routes (paper §5 case studies).
//
// The paper's troubleshooting found most poor anycast routes fall into two
// classes:
//   1. Remote peering: the client's ISP carries traffic to a distant
//      handoff even though interconnection exists near the client
//      (Moscow -> Stockholm; Denver -> Phoenix).
//   2. Topology blindness: BGP cannot see the CDN's internal topology, so
//      traffic ingresses at a peering router whose nearest front-end (by
//      CDN IGP) is far away, when another ingress would have been served
//      locally.
// The diagnoser replays a probe's traceroute and classifies it.
#pragma once

#include <optional>
#include <string>

#include "atlas/traceroute.h"

namespace acdn {

enum class AnycastPathology {
  kNone,              // path looks reasonable
  kRemotePeering,     // ISP hauled traffic to a distant handoff
  kTopologyBlindness, // ingress far from any front-end; backbone detour
};

[[nodiscard]] const char* to_string(AnycastPathology p);

struct Diagnosis {
  AnycastPathology pathology = AnycastPathology::kNone;
  /// Extra kilometers attributable to the pathology.
  Kilometers detour_km = 0.0;
  std::string description;
};

class AnycastDiagnoser {
 public:
  struct Config {
    /// Handoff farther than this from the client metro counts as remote
    /// when local interconnection existed.
    Kilometers remote_handoff_km = 500.0;
    /// Backbone ride longer than this flags topology blindness.
    Kilometers backbone_detour_km = 800.0;
  };

  AnycastDiagnoser(const CdnRouter& router, const AsGraph& graph,
                   const Config& config)
      : router_(&router), graph_(&graph), config_(config) {}
  AnycastDiagnoser(const CdnRouter& router, const AsGraph& graph)
      : AnycastDiagnoser(router, graph, Config{}) {}

  /// Classifies a completed traceroute from `probe`.
  [[nodiscard]] Diagnosis diagnose(const Probe& probe,
                                   const TracerouteResult& trace) const;

 private:
  const CdnRouter* router_;
  const AsGraph* graph_;
  Config config_;
};

}  // namespace acdn
