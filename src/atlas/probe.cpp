#include "atlas/probe.h"

namespace acdn {

ProbeSet ProbeSet::place(const AsGraph& graph, int per_metro, Rng& rng) {
  ProbeSet set;
  Rng gen = rng.fork("atlas-probes");
  for (const Metro& m : graph.metros().all()) {
    const std::vector<AsId> isps = graph.access_ases_in(m.id);
    if (isps.empty()) continue;
    for (int i = 0; i < per_metro; ++i) {
      Probe p;
      p.id = ProbeId(static_cast<std::uint32_t>(set.probes_.size()));
      p.metro = m.id;
      p.access_as = isps[gen.uniform_index(isps.size())];
      set.probes_.push_back(p);
    }
  }
  return set;
}

std::vector<Probe> ProbeSet::in(AsId access_as, MetroId metro) const {
  std::vector<Probe> out;
  for (const Probe& p : probes_) {
    if (p.access_as == access_as && p.metro == metro) out.push_back(p);
  }
  return out;
}

}  // namespace acdn
