// Measurement probes in home networks (RIPE-Atlas-style, paper §5).
//
// To explain poor anycast routes the paper issued traceroutes "from Atlas
// probes hosted within the same ISP-metro area pairs where we have
// observed clients with poor performance". Probes here are placed in
// access ISPs across metros; diagnosis runs a simulated traceroute from
// the probe's vantage point over the very routing state clients use.
#pragma once

#include <span>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "topology/as_graph.h"

namespace acdn {

struct Probe {
  ProbeId id;
  MetroId metro;
  AsId access_as;
};

class ProbeSet {
 public:
  /// Places up to `per_metro` probes in each metro, each hosted in a
  /// random access ISP present there.
  static ProbeSet place(const AsGraph& graph, int per_metro, Rng& rng);

  [[nodiscard]] std::span<const Probe> probes() const { return probes_; }
  [[nodiscard]] std::size_t size() const { return probes_.size(); }

  /// Probes in a specific (ISP, metro) pair — how the paper targeted its
  /// case studies.
  [[nodiscard]] std::vector<Probe> in(AsId access_as, MetroId metro) const;

 private:
  std::vector<Probe> probes_;
};

}  // namespace acdn
