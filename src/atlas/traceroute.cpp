#include "atlas/traceroute.h"

#include <sstream>

namespace acdn {

TracerouteResult TracerouteEngine::trace(const Probe& probe,
                                         std::size_t candidate_index) const {
  TracerouteResult result;
  result.probe = probe.id;

  const CdnRouter::Trace route =
      router_->trace_anycast(probe.access_as, probe.metro, candidate_index);
  if (!route.result.valid) return result;

  Kilometers cumulative_km = 0.0;
  int hops_crossed = 0;
  // Hop at each AS's exit PoP (where it hands to the next network).
  for (const PathSegment& seg : route.path.segments) {
    cumulative_km += seg.km;
    ++hops_crossed;
    result.hops.push_back(TracerouteHop{
        seg.as, seg.to,
        rtt_->base_rtt(cumulative_km, hops_crossed, /*last_mile_ms=*/5.0)});
  }
  // Interior hops: the CDN backbone's shortest path from the ingress to
  // the serving front-end, one responding router per PoP.
  const FrontEndId fe = route.result.front_end;
  const CdnNetwork& cdn = router_->cdn();
  const std::vector<MetroId> interior = cdn.backbone().path(
      route.result.ingress_metro, cdn.deployment().site(fe).metro);
  MetroId previous = route.result.ingress_metro;
  for (const MetroId hop : interior) {
    if (hop == route.result.ingress_metro) continue;
    cumulative_km += cdn.backbone().distance_km(previous, hop);
    ++hops_crossed;
    result.hops.push_back(TracerouteHop{
        cdn.as_id(), hop,
        rtt_->base_rtt(cumulative_km, hops_crossed, /*last_mile_ms=*/5.0)});
    previous = hop;
  }
  if (interior.size() <= 1) {
    // Ingress is the front-end's own PoP: one CDN hop responds.
    ++hops_crossed;
    result.hops.push_back(TracerouteHop{
        cdn.as_id(), cdn.deployment().site(fe).metro,
        rtt_->base_rtt(cumulative_km, hops_crossed, /*last_mile_ms=*/5.0)});
  }

  result.reached = true;
  result.destination = fe;
  result.ingress_metro = route.result.ingress_metro;
  return result;
}

std::string TracerouteEngine::format(const TracerouteResult& result,
                                     const AsGraph& graph) {
  std::ostringstream out;
  if (!result.reached) return "traceroute: destination unreachable\n";
  int n = 1;
  for (const TracerouteHop& hop : result.hops) {
    out << "  " << n++ << "  AS" << graph.as_node(hop.as).asn << " ("
        << graph.as_node(hop.as).name << ") "
        << graph.metros().metro(hop.metro).name << "  "
        << hop.rtt_ms << " ms\n";
  }
  return out.str();
}

}  // namespace acdn
