// Traceroute emulation over the simulated Internet.
//
// A traceroute from a probe toward the anycast address reveals the same
// hop sequence the forwarding path takes: the probe's access network, each
// transit network with its entry and exit PoPs, and finally the CDN
// ingress and front-end. Hop RTTs accumulate the geographic distance
// travelled so far, which is what makes remote-peering detours visible.
#pragma once

#include <string>
#include <vector>

#include "atlas/probe.h"
#include "cdn/router.h"
#include "latency/rtt_model.h"

namespace acdn {

struct TracerouteHop {
  AsId as;
  MetroId metro;          // PoP the hop responds from
  Milliseconds rtt_ms = 0;  // RTT from the probe to this hop
};

struct TracerouteResult {
  ProbeId probe;
  bool reached = false;
  std::vector<TracerouteHop> hops;
  FrontEndId destination;   // front-end the anycast address resolved to
  MetroId ingress_metro;    // where the path entered the CDN
};

class TracerouteEngine {
 public:
  TracerouteEngine(const CdnRouter& router, const RttModel& rtt)
      : router_(&router), rtt_(&rtt) {}

  /// Traceroute from `probe` to the anycast prefix using the access AS's
  /// `candidate_index`-th route.
  [[nodiscard]] TracerouteResult trace(const Probe& probe,
                                       std::size_t candidate_index = 0) const;

  /// Human-readable rendering, one hop per line.
  [[nodiscard]] static std::string format(const TracerouteResult& result,
                                          const AsGraph& graph);

 private:
  const CdnRouter* router_;
  const RttModel* rtt_;
};

}  // namespace acdn
