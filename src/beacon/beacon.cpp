#include "beacon/beacon.h"

#include <algorithm>
#include <mutex>

#include "common/error.h"
#include "common/failpoint.h"
#include "common/metrics.h"

namespace acdn {

BeaconSystem::BeaconSystem(const CdnRouter& router,
                           const MetroDatabase& metros,
                           const ClientPopulation& clients,
                           const LdnsPopulation& ldns,
                           const GeolocationModel& geolocation,
                           const RttModel& rtt, const TimingModel& timing,
                           const BeaconConfig& config)
    : router_(&router),
      metros_(&metros),
      clients_(&clients),
      ldns_(&ldns),
      rtt_(&rtt),
      timing_(&timing),
      config_(config) {
  require(config_.candidate_pool >= 1, "candidate pool must be positive");
  require(config_.targets_per_beacon >= 2,
          "beacon needs at least anycast + one unicast target");

  // Candidate selection per LDNS (paper §3.3): the N front-ends closest to
  // the LDNS *according to the geolocation database*.
  candidates_.resize(ldns.size());
  const Deployment& deployment = router.cdn().deployment();
  for (const LdnsServer& server : ldns.servers()) {
    const GeoPoint estimated = geolocation.estimate(
        server.location, 0x1000000000ull + server.id.value);
    candidates_[server.id.value] = deployment.nearest_sites(
        metros, estimated,
        static_cast<std::size_t>(config_.candidate_pool));
  }
}

std::span<const FrontEndId> BeaconSystem::candidates_for(LdnsId ldns) const {
  require(ldns.valid() && ldns.value < candidates_.size(), "unknown LDNS");
  return candidates_[ldns.value];
}

RouteResult BeaconSystem::cached_unicast(AsId as, MetroId metro,
                                         FrontEndId fe) const {
  const std::uint64_t key = (std::uint64_t(as.value) << 40) |
                            (std::uint64_t(metro.value) << 20) |
                            std::uint64_t(fe.value);
  {
    std::shared_lock lock(unicast_cache_mutex_);
    auto it = unicast_cache_.find(key);
    if (it != unicast_cache_.end()) return it->second;
  }
  // Re-check and compute under the exclusive lock: two threads racing on
  // the same key must not both reach route_unicast, or the
  // router.unicast_lookups counter varies with scheduling.
  std::unique_lock lock(unicast_cache_mutex_);
  auto it = unicast_cache_.find(key);
  if (it != unicast_cache_.end()) return it->second;
  const RouteResult result = router_->route_unicast(as, metro, fe);
  return unicast_cache_.emplace(key, result).first->second;
}

Milliseconds BeaconSystem::route_rtt(const Client24& client,
                                     const RouteResult& route,
                                     const SimTime& when, Rng& rng) const {
  require(route.valid, "route_rtt over an invalid route");
  const Kilometers local = haversine_km(
      client.location, metros_->metro(client.metro).location);
  const Milliseconds base = rtt_->base_rtt(local + route.total_km(),
                                           route.as_hops,
                                           client.last_mile_ms);
  return rtt_->sample(base, when, rng);
}

Milliseconds BeaconSystem::unicast_rtt(const Client24& client, FrontEndId fe,
                                       const SimTime& when, Rng& rng) const {
  const RouteResult route =
      cached_unicast(client.access_as, client.metro, fe);
  require(route.valid, "unicast prefix unreachable from client");
  return route_rtt(client, route, when, rng);
}

void BeaconSystem::run_beacon(std::uint64_t beacon_id, const Client24& client,
                              const SimTime& when,
                              const RouteResult& anycast_route, Rng& rng,
                              std::vector<DnsLogEntry>& dns_log,
                              std::vector<HttpLogEntry>& http_log) {
  const std::span<const FrontEndId> pool = candidates_for(client.ldns);

  // Target list: anycast, closest-to-LDNS, then weighted randoms from the
  // rest of the pool (closer candidates more likely, §3.3).
  std::vector<BeaconMeasurement::Target> plan;
  plan.push_back({true, anycast_route.front_end, 0.0});
  if (!pool.empty()) plan.push_back({false, pool.front(), 0.0});

  std::vector<FrontEndId> rest(pool.begin() + (pool.empty() ? 0 : 1),
                               pool.end());
  std::vector<double> weights;
  weights.reserve(rest.size());
  for (std::size_t i = 0; i < rest.size(); ++i) {
    weights.push_back(1.0 / double(i + 2));  // rank-weighted: 3rd > 4th > ...
  }
  while (static_cast<int>(plan.size()) < config_.targets_per_beacon &&
         !rest.empty()) {
    const std::size_t pick = rng.weighted_index(weights);
    plan.push_back({false, rest[pick], 0.0});
    rest.erase(rest.begin() + static_cast<long>(pick));
    weights.erase(weights.begin() + static_cast<long>(pick));
  }

  // One browser per page load: Resource Timing support is per-beacon.
  const bool resource_timing = timing_->supports_resource_timing(rng);

  metric_count("beacon.executions");
  metric_count("beacon.fetches", plan.size());

  // Injected faults. Decisions hash (day, url_id) — never `rng` — so a
  // disarmed run draws the exact same stream as a build without the
  // fail-point layer, and an armed schedule hits the same url_ids no
  // matter how clients are sharded across threads.
  static const FailPoint fetch_fault("beacon/http_fetch");

  for (std::size_t k = 0; k < plan.size(); ++k) {
    const std::uint64_t url_id = beacon_id * 4 + k;

    const LdnsFault dns_fault = ldns_resolution_fault(when.day, url_id);
    if (dns_fault == LdnsFault::kServfail) {
      // SERVFAIL / timeout: the lookup fails, so the fetch never
      // happens — neither log side sees this target.
      continue;
    }
    // The warm-up fetch (not timed) populates the resolver cache, so the
    // timed fetch below excludes DNS latency by construction. Under
    // kLogLoss the resolver answered but its log row is lost; the fetch
    // proceeds and its HTTP row arrives as an orphan.
    if (dns_fault == LdnsFault::kNone) {
      dns_log.push_back(DnsLogEntry{url_id, client.ldns, when.day});
    }

    // A fetch can fail outright (timeout, user navigated away, report
    // lost); the DNS row stays, the HTTP row never arrives. This is
    // modeled world behavior (BeaconConfig), not an injected fault.
    // NOLINT-ACDN(failpoint): fetch_loss_prob models organic browser loss
    if (rng.bernoulli(config_.fetch_loss_prob)) continue;

    std::optional<Fault> fetch_fired = fetch_fault.fire(when.day, url_id);
    if (fetch_fired && (fetch_fired->kind == FaultKind::kDrop ||
                        fetch_fired->kind == FaultKind::kError)) {
      continue;  // beacon report lost in flight; DNS row stays
    }

    const Milliseconds true_rtt =
        plan[k].anycast ? route_rtt(client, anycast_route, when, rng)
                        : unicast_rtt(client, plan[k].front_end, when, rng);
    Milliseconds observed = timing_->observe(true_rtt, resource_timing, rng);
    if (fetch_fired) {
      if (fetch_fired->kind == FaultKind::kDelay) {
        observed += fetch_fired->magnitude;
      } else {  // kCorrupt: a skewed timer reading reaches the log
        observed *= 1.0 + fetch_fired->magnitude;
      }
    }
    http_log.push_back(HttpLogEntry{url_id, client.id, plan[k].anycast,
                                    plan[k].front_end, observed, when.day,
                                    when.hour_of_day()});
  }
}

std::vector<Milliseconds> BeaconSystem::measure_all_candidates(
    const Client24& client, const SimTime& when, Rng& rng) const {
  std::vector<Milliseconds> out;
  for (FrontEndId fe : candidates_for(client.ldns)) {
    out.push_back(unicast_rtt(client, fe, when, rng));
  }
  return out;
}

}  // namespace acdn
