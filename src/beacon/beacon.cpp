#include "beacon/beacon.h"

#include <algorithm>
#include <array>

#include "common/check.h"
#include "common/error.h"
#include "common/failpoint.h"
#include "common/metrics.h"

namespace acdn {

namespace {

/// Field widths: 24 bits of AS above 20 of metro above 20 of front-end.
std::uint64_t unicast_key(AsId as, MetroId metro, FrontEndId fe) {
  ACDN_DCHECK_LT(std::uint64_t(as.value), std::uint64_t(1) << 24);
  ACDN_DCHECK_LT(std::uint64_t(metro.value), std::uint64_t(1) << 20);
  ACDN_DCHECK_LT(std::uint64_t(fe.value), std::uint64_t(1) << 20);
  return (std::uint64_t(as.value) << 40) |
         (std::uint64_t(metro.value) << 20) | std::uint64_t(fe.value);
}

}  // namespace

BeaconSystem::BeaconSystem(const CdnRouter& router,
                           const MetroDatabase& metros,
                           const ClientPopulation& clients,
                           const LdnsPopulation& ldns,
                           const GeolocationModel& geolocation,
                           const RttModel& rtt, const TimingModel& timing,
                           const BeaconConfig& config)
    : router_(&router),
      metros_(&metros),
      clients_(&clients),
      ldns_(&ldns),
      rtt_(&rtt),
      timing_(&timing),
      config_(config) {
  require(config_.candidate_pool >= 1, "candidate pool must be positive");
  require(config_.candidate_pool <= kMaxCandidatePool,
          "candidate pool exceeds kMaxCandidatePool");
  require(config_.targets_per_beacon >= 2,
          "beacon needs at least anycast + one unicast target");
  require(config_.targets_per_beacon <= kMaxTargetsPerBeacon,
          "targets_per_beacon exceeds the url_id fetch-ordinal stride");

  // Candidate selection per LDNS (paper §3.3): the N front-ends closest to
  // the LDNS *according to the geolocation database*.
  candidates_.resize(ldns.size());
  const Deployment& deployment = router.cdn().deployment();
  for (const LdnsServer& server : ldns.servers()) {
    const GeoPoint estimated = geolocation.estimate(
        server.location, 0x1000000000ull + server.id.value);
    candidates_[server.id.value] = deployment.nearest_sites(
        metros, estimated,
        static_cast<std::size_t>(config_.candidate_pool));
  }

  // Per-client distance to the metro center, in one batch haversine over
  // coordinate columns (bit-identical per client to the scalar call).
  {
    std::vector<double> client_lat;
    std::vector<double> client_lon;
    std::vector<double> metro_lat;
    std::vector<double> metro_lon;
    client_lat.reserve(clients.size());
    client_lon.reserve(clients.size());
    metro_lat.reserve(clients.size());
    metro_lon.reserve(clients.size());
    for (const Client24& c : clients.clients()) {
      client_lat.push_back(c.location.lat_deg);
      client_lon.push_back(c.location.lon_deg);
      const GeoPoint& center = metros.metro(c.metro).location;
      metro_lat.push_back(center.lat_deg);
      metro_lon.push_back(center.lon_deg);
    }
    client_local_km_.resize(clients.size());
    haversine_km_pairs(client_lat, client_lon, metro_lat, metro_lon,
                       client_local_km_);
  }

  // Pre-resolve the unicast route for every (client unit, pool candidate)
  // pair a beacon can fetch: the hot path then reads an immutable table
  // with no locking. Serial and client-ordered, so the
  // router.unicast_lookups count is deterministic. Clients sharing an
  // (access AS, metro) unit share resolutions through the keyed map; the
  // flat per-(client, pool slot) copy is what run_beacon indexes.
  const std::size_t stride = static_cast<std::size_t>(config_.candidate_pool);
  pool_routes_.resize(clients.size() * stride);
  for (const Client24& c : clients.clients()) {
    const std::span<const FrontEndId> pool = candidates_for(c.ldns);
    for (std::size_t j = 0; j < pool.size(); ++j) {
      const std::uint64_t key = unicast_key(c.access_as, c.metro, pool[j]);
      auto it = unicast_warm_.find(key);
      if (it == unicast_warm_.end()) {
        it = unicast_warm_
                 .emplace(key,
                          router_->route_unicast(c.access_as, c.metro, pool[j]))
                 .first;
      }
      pool_routes_[c.id.value * stride + j] = it->second;
    }
  }

  // Hoist the deterministic base RTT of every (client, pool slot) out of
  // the per-fetch path: one batch kernel over the whole table. Path
  // columns mirror route_rtt_at's scalar arithmetic exactly — local
  // client-to-metro km plus the route's total km — so the per-slot base
  // is bit-identical to what the fetch loop used to compute.
  {
    const std::size_t slots = pool_routes_.size();
    std::vector<double> path_km(slots, 0.0);
    std::vector<std::int32_t> hops(slots, 0);
    std::vector<double> last_mile(slots, 0.0);
    for (const Client24& c : clients.clients()) {
      for (std::size_t j = 0; j < stride; ++j) {
        const std::size_t slot = c.id.value * stride + j;
        const RouteResult& route = pool_routes_[slot];
        if (!route.valid) continue;  // slot never read by the hot path
        path_km[slot] = client_local_km_[c.id.value] + route.total_km();
        hops[slot] = route.as_hops;
        last_mile[slot] = c.last_mile_ms;
      }
    }
    pool_base_ms_.resize(slots);
    rtt_->base_rtt_batch(path_km, hops, last_mile, pool_base_ms_);
  }
}

std::span<const FrontEndId> BeaconSystem::candidates_for(LdnsId ldns) const {
  require(ldns.valid() && ldns.value < candidates_.size(), "unknown LDNS");
  return candidates_[ldns.value];
}

RouteResult BeaconSystem::cached_unicast(AsId as, MetroId metro,
                                         FrontEndId fe) const {
  const std::uint64_t key = unicast_key(as, metro, fe);
  // Lock-free fast path: the warm map is immutable after construction.
  if (auto it = unicast_warm_.find(key); it != unicast_warm_.end()) {
    return it->second;
  }
  {
    ReaderMutexLock lock(unicast_cache_mutex_);
    auto it = unicast_cache_.find(key);
    if (it != unicast_cache_.end()) return it->second;
  }
  // Re-check and compute under the exclusive lock: two threads racing on
  // the same key must not both reach route_unicast, or the
  // router.unicast_lookups counter varies with scheduling.
  WriterMutexLock lock(unicast_cache_mutex_);
  auto it = unicast_cache_.find(key);
  if (it != unicast_cache_.end()) return it->second;
  const RouteResult result = router_->route_unicast(as, metro, fe);
  return unicast_cache_.emplace(key, result).first->second;
}

Milliseconds BeaconSystem::route_rtt(const Client24& client,
                                     const RouteResult& route,
                                     const SimTime& when, Rng& rng) const {
  return route_rtt_at(client, route, rtt_->diurnal_factor(when), rng);
}

Milliseconds BeaconSystem::route_rtt_at(const Client24& client,
                                        const RouteResult& route,
                                        double diurnal, Rng& rng) const {
  require(route.valid, "route_rtt over an invalid route");
  // Memoized for population clients (identified by id + unchanged
  // coordinates); synthetic clients fall back to the direct computation.
  const auto clients = clients_->clients();
  const bool memoized =
      client.id.value < client_local_km_.size() &&
      clients[client.id.value].metro == client.metro &&
      clients[client.id.value].location == client.location;
  const Kilometers local =
      memoized ? client_local_km_[client.id.value]
               : haversine_km(client.location,
                              metros_->metro(client.metro).location);
  const Milliseconds base = rtt_->base_rtt(local + route.total_km(),
                                           route.as_hops,
                                           client.last_mile_ms);
  return rtt_->sample_at(base, diurnal, rng);
}

Milliseconds BeaconSystem::unicast_rtt(const Client24& client, FrontEndId fe,
                                       const SimTime& when, Rng& rng) const {
  const RouteResult route =
      cached_unicast(client.access_as, client.metro, fe);
  require(route.valid, "unicast prefix unreachable from client");
  return route_rtt(client, route, when, rng);
}

Milliseconds BeaconSystem::pooled_unicast_rtt(const Client24& client,
                                              std::size_t pool_index,
                                              double diurnal,
                                              Rng& rng) const {
  const std::size_t stride =
      static_cast<std::size_t>(config_.candidate_pool);
  const std::size_t slot = client.id.value * stride + pool_index;
  ACDN_DCHECK_LT(pool_index, candidates_for(client.ldns).size());
  ACDN_DCHECK_LT(slot, pool_routes_.size());
  const RouteResult& route = pool_routes_[slot];
  require(route.valid, "unicast prefix unreachable from client");
  // The caller guarantees population identity (location and last mile
  // included), so the precomputed base applies verbatim.
  return rtt_->sample_at(pool_base_ms_[slot], diurnal, rng);
}

void BeaconSystem::run_beacon(std::uint64_t beacon_id, const Client24& client,
                              const SimTime& when,
                              const RouteResult& anycast_route, Rng& rng,
                              std::vector<DnsLogEntry>& dns_log,
                              std::vector<HttpLogEntry>& http_log) {
  const std::span<const FrontEndId> pool = candidates_for(client.ldns);

  // Target list: anycast, closest-to-LDNS, then weighted randoms from the
  // rest of the pool (closer candidates more likely, §3.3). Planning runs
  // on fixed-capacity stack arrays (bounds enforced at construction) so
  // the per-beacon hot path performs no heap allocation; the draw
  // sequence — one weighted_index over the surviving weights per pick —
  // is exactly the old vector-based one.
  // Pool position of each unicast target (kNoPool for the anycast slot):
  // population clients resolve unicast routes by direct pool_routes_
  // index instead of the keyed cache.
  constexpr std::uint8_t kNoPool = 0xff;
  std::array<BeaconMeasurement::Target, kMaxTargetsPerBeacon> plan;
  std::array<std::uint8_t, kMaxTargetsPerBeacon> plan_pool;
  std::size_t plan_n = 0;
  plan_pool[plan_n] = kNoPool;
  plan[plan_n++] = {true, anycast_route.front_end, 0.0};
  if (!pool.empty()) {
    plan_pool[plan_n] = 0;
    plan[plan_n++] = {false, pool.front(), 0.0};
  }

  std::array<FrontEndId, kMaxCandidatePool> rest;
  std::array<std::uint8_t, kMaxCandidatePool> rest_pool;
  std::array<double, kMaxCandidatePool> weights;
  std::size_t rest_n = pool.empty() ? 0 : pool.size() - 1;
  for (std::size_t i = 0; i < rest_n; ++i) {
    rest[i] = pool[i + 1];
    rest_pool[i] = static_cast<std::uint8_t>(i + 1);
    weights[i] = 1.0 / double(i + 2);  // rank-weighted: 3rd > 4th > ...
  }
  while (plan_n < static_cast<std::size_t>(config_.targets_per_beacon) &&
         rest_n > 0) {
    const std::size_t pick =
        rng.weighted_index(std::span<const double>(weights.data(), rest_n));
    plan_pool[plan_n] = rest_pool[pick];
    plan[plan_n++] = {false, rest[pick], 0.0};
    // Erase-by-index, order preserved — same survivor order (and thus the
    // same subsequent weighted draws) as the old vector::erase.
    for (std::size_t j = pick; j + 1 < rest_n; ++j) {
      rest[j] = rest[j + 1];
      rest_pool[j] = rest_pool[j + 1];
      weights[j] = weights[j + 1];
    }
    --rest_n;
  }

  // The flat route table is keyed by population identity; a synthetic
  // client (different coordinates under a reused id) falls back to the
  // keyed cache.
  const auto population = clients_->clients();
  // Location and last-mile must match too: the pooled path reads a base
  // RTT precomputed from the population row, so any field feeding it has
  // to be the population's value.
  const bool pooled = client.id.value < population.size() &&
                      population[client.id.value].ldns == client.ldns &&
                      population[client.id.value].access_as ==
                          client.access_as &&
                      population[client.id.value].metro == client.metro &&
                      population[client.id.value].location ==
                          client.location &&
                      population[client.id.value].last_mile_ms ==
                          client.last_mile_ms;

  // One browser per page load: Resource Timing support is per-beacon.
  const bool resource_timing = timing_->supports_resource_timing(rng);
  // All of a beacon's fetches happen at `when`: one diurnal cosine.
  const double diurnal = rtt_->diurnal_factor(when);

  metric_count("beacon.executions");
  metric_count("beacon.fetches", plan_n);

  // Injected faults. Decisions hash (day, url_id) — never `rng` — so a
  // disarmed run draws the exact same stream as a build without the
  // fail-point layer, and an armed schedule hits the same url_ids no
  // matter how clients are sharded across threads.
  static const FailPoint fetch_fault("beacon/http_fetch");

  for (std::size_t k = 0; k < plan_n; ++k) {
    const std::uint64_t url_id = beacon_id * 4 + k;

    const LdnsFault dns_fault = ldns_resolution_fault(when.day, url_id);
    if (dns_fault == LdnsFault::kServfail) {
      // SERVFAIL / timeout: the lookup fails, so the fetch never
      // happens — neither log side sees this target.
      continue;
    }
    // The warm-up fetch (not timed) populates the resolver cache, so the
    // timed fetch below excludes DNS latency by construction. Under
    // kLogLoss the resolver answered but its log row is lost; the fetch
    // proceeds and its HTTP row arrives as an orphan.
    if (dns_fault == LdnsFault::kNone) {
      dns_log.push_back(DnsLogEntry{url_id, client.ldns, when.day});
    }

    // A fetch can fail outright (timeout, user navigated away, report
    // lost); the DNS row stays, the HTTP row never arrives. This is
    // modeled world behavior (BeaconConfig), not an injected fault.
    // NOLINT-ACDN(failpoint): fetch_loss_prob models organic browser loss
    if (rng.bernoulli(config_.fetch_loss_prob)) continue;

    std::optional<Fault> fetch_fired = fetch_fault.fire(when.day, url_id);
    if (fetch_fired && (fetch_fired->kind == FaultKind::kDrop ||
                        fetch_fired->kind == FaultKind::kError)) {
      continue;  // beacon report lost in flight; DNS row stays
    }

    const Milliseconds true_rtt =
        plan[k].anycast
            ? route_rtt_at(client, anycast_route, diurnal, rng)
            : (pooled
                   ? pooled_unicast_rtt(client, plan_pool[k], diurnal, rng)
                   : unicast_rtt(client, plan[k].front_end, when, rng));
    Milliseconds observed = timing_->observe(true_rtt, resource_timing, rng);
    if (fetch_fired) {
      if (fetch_fired->kind == FaultKind::kDelay) {
        observed += fetch_fired->magnitude;
      } else {  // kCorrupt: a skewed timer reading reaches the log
        observed *= 1.0 + fetch_fired->magnitude;
      }
    }
    http_log.push_back(HttpLogEntry{url_id, client.id, plan[k].anycast,
                                    plan[k].front_end, observed, when.day,
                                    when.hour_of_day()});
  }
}

std::vector<Milliseconds> BeaconSystem::measure_all_candidates(
    const Client24& client, const SimTime& when, Rng& rng) const {
  std::vector<Milliseconds> out;
  for (FrontEndId fe : candidates_for(client.ldns)) {
    out.push_back(unicast_rtt(client, fe, when, rng));
  }
  return out;
}

}  // namespace acdn
