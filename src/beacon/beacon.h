// The JavaScript measurement beacon (paper §3.2.2, §3.3).
//
// After a sampled search-results page loads, the beacon times fetches to
// four front-ends:
//   (a) the one anycast routing selects,
//   (b) the front-end geographically closest to the client's LDNS,
//   (c,d) two front-ends drawn from the ten closest to the LDNS, with
//         selection probability weighted toward nearer candidates.
// A warm-up request removes DNS lookup time from the measurement, and the
// W3C Resource Timing API replaces the primitive timings when the browser
// supports it. Candidates are chosen per-LDNS using the (imperfect)
// geolocation database, exactly as the real system must.
#pragma once

#include <cstdint>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "beacon/measurement.h"
#include "cdn/router.h"
#include "common/rng.h"
#include "common/sim_clock.h"
#include "dns/ldns.h"
#include "geo/geolocation.h"
#include "latency/rtt_model.h"
#include "latency/timing_api.h"
#include "workload/clients.h"

namespace acdn {

struct BeaconConfig {
  /// Candidate pool: front-ends nearest the LDNS considered for this
  /// LDNS's clients (§3.3 uses the ten closest).
  int candidate_pool = 10;
  /// Fetches per beacon execution (anycast + closest + weighted randoms).
  int targets_per_beacon = 4;
  /// Probability a fetch fails (timeout, aborted page, lost report): its
  /// DNS row exists but no HTTP row arrives, so the join drops it and the
  /// measurement has fewer than four targets — as in any real pipeline.
  double fetch_loss_prob = 0.015;
};

class BeaconSystem {
 public:
  BeaconSystem(const CdnRouter& router, const MetroDatabase& metros,
               const ClientPopulation& clients, const LdnsPopulation& ldns,
               const GeolocationModel& geolocation, const RttModel& rtt,
               const TimingModel& timing, const BeaconConfig& config = {});

  /// The ten-ish closest front-ends to `ldns` (geolocated), nearest first.
  [[nodiscard]] std::span<const FrontEndId> candidates_for(LdnsId ldns) const;

  /// Executes one beacon for `client` at `when`, given the front-end and
  /// geographic route anycast currently assigns it. Appends four rows to
  /// each log; the joined measurement is recovered later via
  /// MeasurementStore::join.
  ///
  /// `beacon_id` must be globally unique per execution; the caller derives
  /// it from stable coordinates (e.g. day/client/sequence) so executions
  /// are identifiable and the system needs no shared counter — which is
  /// what makes concurrent simulation days deterministic. Thread-safe for
  /// distinct clients.
  void run_beacon(std::uint64_t beacon_id, const Client24& client,
                  const SimTime& when, const RouteResult& anycast_route,
                  Rng& rng, std::vector<DnsLogEntry>& dns_log,
                  std::vector<HttpLogEntry>& http_log);

  /// Convenience overload using an internal sequence counter (single-
  /// threaded callers only).
  void run_beacon(const Client24& client, const SimTime& when,
                  const RouteResult& anycast_route, Rng& rng,
                  std::vector<DnsLogEntry>& dns_log,
                  std::vector<HttpLogEntry>& http_log) {
    run_beacon(next_beacon_id_++, client, when, anycast_route, rng, dns_log,
               http_log);
  }

  /// Calibration sweep (Figure 1): measure `client` to *every* candidate
  /// of its LDNS, nearest first. Returns one latency per candidate.
  [[nodiscard]] std::vector<Milliseconds> measure_all_candidates(
      const Client24& client, const SimTime& when, Rng& rng) const;

  /// True one-sample RTT from `client` to front-end `fe` over the unicast
  /// route (shared by beacon fetches and the Figure-1 sweep).
  [[nodiscard]] Milliseconds unicast_rtt(const Client24& client, FrontEndId fe,
                                         const SimTime& when, Rng& rng) const;

  /// One-sample RTT over a resolved route (used for the anycast fetch).
  [[nodiscard]] Milliseconds route_rtt(const Client24& client,
                                       const RouteResult& route,
                                       const SimTime& when, Rng& rng) const;

  [[nodiscard]] const BeaconConfig& config() const { return config_; }

 private:
  [[nodiscard]] RouteResult cached_unicast(AsId as, MetroId metro,
                                           FrontEndId fe) const;

  const CdnRouter* router_;
  const MetroDatabase* metros_;
  const ClientPopulation* clients_;
  const LdnsPopulation* ldns_;
  const RttModel* rtt_;
  const TimingModel* timing_;
  BeaconConfig config_;

  std::vector<std::vector<FrontEndId>> candidates_;  // per LdnsId
  std::uint64_t next_beacon_id_ = 0;  // convenience-overload counter only
  /// (access AS, metro, front-end) -> unicast route; resolution is
  /// deterministic, so memoization is safe. Guarded for concurrent
  /// simulation days.
  mutable std::shared_mutex unicast_cache_mutex_;
  // NOLINT-ACDN(unordered-decl): keyed memo lookups only, never iterated
  mutable std::unordered_map<std::uint64_t, RouteResult> unicast_cache_;
};

}  // namespace acdn
