// The JavaScript measurement beacon (paper §3.2.2, §3.3).
//
// After a sampled search-results page loads, the beacon times fetches to
// four front-ends:
//   (a) the one anycast routing selects,
//   (b) the front-end geographically closest to the client's LDNS,
//   (c,d) two front-ends drawn from the ten closest to the LDNS, with
//         selection probability weighted toward nearer candidates.
// A warm-up request removes DNS lookup time from the measurement, and the
// W3C Resource Timing API replaces the primitive timings when the browser
// supports it. Candidates are chosen per-LDNS using the (imperfect)
// geolocation database, exactly as the real system must.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "beacon/measurement.h"
#include "cdn/router.h"
#include "common/rng.h"
#include "common/sim_clock.h"
#include "common/thread_annotations.h"
#include "dns/ldns.h"
#include "geo/geolocation.h"
#include "latency/rtt_model.h"
#include "latency/timing_api.h"
#include "workload/clients.h"

namespace acdn {

/// Upper bound on BeaconConfig::candidate_pool: target planning runs on
/// fixed-capacity stack arrays so the per-beacon hot path allocates
/// nothing.
inline constexpr int kMaxCandidatePool = 32;
/// Upper bound on BeaconConfig::targets_per_beacon: the url_id layout
/// packs the fetch ordinal into beacon_id * 4 + k.
inline constexpr int kMaxTargetsPerBeacon = 4;

struct BeaconConfig {
  /// Candidate pool: front-ends nearest the LDNS considered for this
  /// LDNS's clients (§3.3 uses the ten closest; at most
  /// kMaxCandidatePool).
  int candidate_pool = 10;
  /// Fetches per beacon execution (anycast + closest + weighted randoms;
  /// at most kMaxTargetsPerBeacon).
  int targets_per_beacon = 4;
  /// Probability a fetch fails (timeout, aborted page, lost report): its
  /// DNS row exists but no HTTP row arrives, so the join drops it and the
  /// measurement has fewer than four targets — as in any real pipeline.
  double fetch_loss_prob = 0.015;
};

class BeaconSystem {
 public:
  BeaconSystem(const CdnRouter& router, const MetroDatabase& metros,
               const ClientPopulation& clients, const LdnsPopulation& ldns,
               const GeolocationModel& geolocation, const RttModel& rtt,
               const TimingModel& timing, const BeaconConfig& config = {});

  /// The ten-ish closest front-ends to `ldns` (geolocated), nearest first.
  [[nodiscard]] std::span<const FrontEndId> candidates_for(LdnsId ldns) const;

  /// Executes one beacon for `client` at `when`, given the front-end and
  /// geographic route anycast currently assigns it. Appends four rows to
  /// each log; the joined measurement is recovered later via
  /// MeasurementStore::join.
  ///
  /// `beacon_id` must be globally unique per execution; the caller derives
  /// it from stable coordinates (e.g. day/client/sequence) so executions
  /// are identifiable and the system needs no shared counter — which is
  /// what makes concurrent simulation days deterministic. Thread-safe for
  /// distinct clients.
  void run_beacon(std::uint64_t beacon_id, const Client24& client,
                  const SimTime& when, const RouteResult& anycast_route,
                  Rng& rng, std::vector<DnsLogEntry>& dns_log,
                  std::vector<HttpLogEntry>& http_log);

  /// Convenience overload using an internal sequence counter (single-
  /// threaded callers only).
  void run_beacon(const Client24& client, const SimTime& when,
                  const RouteResult& anycast_route, Rng& rng,
                  std::vector<DnsLogEntry>& dns_log,
                  std::vector<HttpLogEntry>& http_log) {
    run_beacon(next_beacon_id_++, client, when, anycast_route, rng, dns_log,
               http_log);
  }

  /// Calibration sweep (Figure 1): measure `client` to *every* candidate
  /// of its LDNS, nearest first. Returns one latency per candidate.
  [[nodiscard]] std::vector<Milliseconds> measure_all_candidates(
      const Client24& client, const SimTime& when, Rng& rng) const;

  /// True one-sample RTT from `client` to front-end `fe` over the unicast
  /// route (shared by beacon fetches and the Figure-1 sweep).
  [[nodiscard]] Milliseconds unicast_rtt(const Client24& client, FrontEndId fe,
                                         const SimTime& when, Rng& rng) const;

  /// One-sample RTT over a resolved route (used for the anycast fetch).
  [[nodiscard]] Milliseconds route_rtt(const Client24& client,
                                       const RouteResult& route,
                                       const SimTime& when, Rng& rng) const;

  [[nodiscard]] const BeaconConfig& config() const { return config_; }

 private:
  [[nodiscard]] RouteResult cached_unicast(AsId as, MetroId metro,
                                           FrontEndId fe) const;

  /// Hot-path unicast RTT for a population client's pool candidate: the
  /// route comes straight out of pool_routes_. `pool_index` must address
  /// a real candidate of the client's LDNS (DCHECKed).
  [[nodiscard]] Milliseconds pooled_unicast_rtt(const Client24& client,
                                                std::size_t pool_index,
                                                double diurnal,
                                                Rng& rng) const;

  /// route_rtt with the diurnal factor precomputed: a beacon's fetches
  /// share one instant, so run_beacon computes it once per beacon.
  [[nodiscard]] Milliseconds route_rtt_at(const Client24& client,
                                          const RouteResult& route,
                                          double diurnal, Rng& rng) const;

  const CdnRouter* router_;
  const MetroDatabase* metros_;
  const ClientPopulation* clients_;
  const LdnsPopulation* ldns_;
  const RttModel* rtt_;
  const TimingModel* timing_;
  BeaconConfig config_;

  std::vector<std::vector<FrontEndId>> candidates_;  // per LdnsId
  /// Per-client great-circle distance to its metro center, precomputed:
  /// route_rtt would otherwise re-run haversine for every fetch of every
  /// beacon of the same /24. Indexed by ClientId.
  std::vector<Kilometers> client_local_km_;
  std::uint64_t next_beacon_id_ = 0;  // convenience-overload counter only
  /// (access AS, metro, front-end) -> unicast route, pre-resolved at
  /// construction for every population client x its LDNS candidate pool.
  /// Immutable afterwards, so the per-fetch hot path reads it with no
  /// lock at all. Resolution is deterministic, so memoization is safe.
  // NOLINT-ACDN(unordered-decl): keyed memo lookups only, never iterated
  std::unordered_map<std::uint64_t, RouteResult> unicast_warm_;
  /// The same pre-resolved routes as a flat table indexed
  /// `client.id * candidate_pool + pool_index`: run_beacon knows each
  /// unicast target's pool position, so its fetch loop trades the hash
  /// probe for one array load. Slots past a pool's real candidate count
  /// stay invalid and are never indexed.
  std::vector<RouteResult> pool_routes_;
  /// Deterministic base RTT per pool_routes_ slot, precomputed with the
  /// batch kernel (RttModel::base_rtt_batch): the base is a pure function
  /// of (client, route), so hoisting it out of the per-fetch path draws
  /// the exact same rng stream and bit-identical samples. Slots whose
  /// route is invalid hold 0 and are never read.
  std::vector<Milliseconds> pool_base_ms_;
  /// Overflow cache for keys outside the pre-warmed set (synthetic
  /// clients, ad-hoc probes). Guarded for concurrent simulation days —
  /// the PR 7 double-compute race lived here, and the annotation keeps
  /// any future unlocked access from compiling on Clang.
  mutable SharedMutex unicast_cache_mutex_;
  // NOLINT-ACDN(unordered-decl): keyed memo lookups only, never iterated
  mutable std::unordered_map<std::uint64_t, RouteResult> unicast_cache_
      ACDN_GUARDED_BY(unicast_cache_mutex_);
};

}  // namespace acdn
