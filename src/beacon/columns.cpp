#include "beacon/columns.h"

#include "common/check.h"

namespace acdn {

void MeasurementColumns::clear() {
  beacon_id.clear();
  client.clear();
  ldns.clear();
  day.clear();
  hour.clear();
  target_begin.clear();
  target_anycast.clear();
  target_front_end.clear();
  target_rtt.clear();
}

void MeasurementColumns::reserve(std::size_t rows, std::size_t targets) {
  beacon_id.reserve(rows);
  client.reserve(rows);
  ldns.reserve(rows);
  day.reserve(rows);
  hour.reserve(rows);
  target_begin.reserve(rows + 1);
  target_anycast.reserve(targets);
  target_front_end.reserve(targets);
  target_rtt.reserve(targets);
}

void MeasurementColumns::append_row(std::uint64_t beacon, ClientId c,
                                    LdnsId l, DayIndex d, double h) {
  if (target_begin.empty()) target_begin.push_back(0);
  beacon_id.push_back(beacon);
  client.push_back(c);
  ldns.push_back(l);
  day.push_back(d);
  hour.push_back(h);
  target_begin.push_back(static_cast<std::uint32_t>(target_rtt.size()));
}

void MeasurementColumns::append_target(bool anycast, FrontEndId front_end,
                                       Milliseconds rtt) {
  ACDN_DCHECK(!beacon_id.empty()) << "append_target without an open row";
  target_anycast.push_back(anycast ? 1 : 0);
  target_front_end.push_back(front_end.value);
  target_rtt.push_back(rtt);
  target_begin.back() = static_cast<std::uint32_t>(target_rtt.size());
}

void MeasurementColumns::push_back(const BeaconMeasurement& m) {
  append_row(m.beacon_id, m.client, m.ldns, m.day, m.hour);
  for (const BeaconMeasurement::Target& t : m.targets) {
    append_target(t.anycast, t.front_end, t.rtt_ms);
  }
}

void MeasurementColumns::append_from(const MeasurementColumns& other,
                                     std::size_t i) {
  append_row(other.beacon_id[i], other.client[i], other.ldns[i],
             other.day[i], other.hour[i]);
  for (std::size_t t = other.row_targets_begin(i);
       t < other.row_targets_end(i); ++t) {
    append_target(other.target_anycast[t] != 0,
                  FrontEndId{other.target_front_end[t]}, other.target_rtt[t]);
  }
}

void MeasurementColumns::append_all(const MeasurementColumns& other) {
  if (other.empty()) return;
  beacon_id.insert(beacon_id.end(), other.beacon_id.begin(),
                   other.beacon_id.end());
  client.insert(client.end(), other.client.begin(), other.client.end());
  ldns.insert(ldns.end(), other.ldns.begin(), other.ldns.end());
  day.insert(day.end(), other.day.begin(), other.day.end());
  hour.insert(hour.end(), other.hour.begin(), other.hour.end());
  // CSR offsets rebase onto this table's current target count.
  const auto base = static_cast<std::uint32_t>(target_rtt.size());
  if (target_begin.empty()) target_begin.push_back(0);
  target_begin.reserve(target_begin.size() + other.size());
  for (std::size_t i = 1; i < other.target_begin.size(); ++i) {
    target_begin.push_back(base + other.target_begin[i]);
  }
  target_anycast.insert(target_anycast.end(), other.target_anycast.begin(),
                        other.target_anycast.end());
  target_front_end.insert(target_front_end.end(),
                          other.target_front_end.begin(),
                          other.target_front_end.end());
  target_rtt.insert(target_rtt.end(), other.target_rtt.begin(),
                    other.target_rtt.end());
}

BeaconMeasurement MeasurementColumns::row(std::size_t i) const {
  BeaconMeasurement m;
  m.beacon_id = beacon_id[i];
  m.client = client[i];
  m.ldns = ldns[i];
  m.day = day[i];
  m.hour = hour[i];
  const std::size_t end = row_targets_end(i);
  m.targets.reserve(end - row_targets_begin(i));
  for (std::size_t t = row_targets_begin(i); t < end; ++t) {
    m.targets.push_back(BeaconMeasurement::Target{
        target_anycast[t] != 0, FrontEndId{target_front_end[t]},
        target_rtt[t]});
  }
  return m;
}

std::vector<BeaconMeasurement> MeasurementColumns::rows() const {
  std::vector<BeaconMeasurement> out;
  out.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) out.push_back(row(i));
  return out;
}

}  // namespace acdn
