// Structure-of-arrays layout for joined beacon measurements.
//
// One MeasurementColumns holds one day of joined beacon executions as
// parallel columns plus a CSR offset table into flat per-target columns:
// row i's fetches live at target indices [target_begin[i],
// target_begin[i+1]). Hot passes (the sort-merge join, group-by
// aggregation, predictor training) stream these contiguous columns
// instead of chasing per-measurement std::vector<Target> nodes; the
// row-struct view (rows()/row()) remains for export and tests.
#pragma once

#include <cstdint>
#include <vector>

#include "beacon/measurement.h"

namespace acdn {

struct MeasurementColumns {
  // Per measurement (one joined beacon execution).
  std::vector<std::uint64_t> beacon_id;
  std::vector<ClientId> client;
  std::vector<LdnsId> ldns;
  std::vector<DayIndex> day;
  std::vector<double> hour;
  /// CSR offsets into the target columns; size() + 1 entries once any row
  /// exists (target_begin[0] == 0), empty otherwise.
  std::vector<std::uint32_t> target_begin;

  // Per target (one timed fetch), flat across all rows. Front-end ids are
  // stored as raw uint32 values (FrontEndId::value) so the column feeds
  // the SIMD key-pack kernel directly; row() re-wraps them.
  std::vector<std::uint8_t> target_anycast;
  std::vector<std::uint32_t> target_front_end;
  std::vector<Milliseconds> target_rtt;

  [[nodiscard]] std::size_t size() const { return beacon_id.size(); }
  [[nodiscard]] bool empty() const { return beacon_id.empty(); }
  [[nodiscard]] std::size_t target_count() const { return target_rtt.size(); }

  /// Target index range of row i.
  [[nodiscard]] std::size_t row_targets_begin(std::size_t i) const {
    return target_begin[i];
  }
  [[nodiscard]] std::size_t row_targets_end(std::size_t i) const {
    return target_begin[i + 1];
  }

  /// Clears all columns; capacities are retained for reuse.
  void clear();
  void reserve(std::size_t rows, std::size_t targets);

  /// Opens a new row with no targets yet; append_target fills it.
  void append_row(std::uint64_t beacon, ClientId c, LdnsId l, DayIndex d,
                  double h);
  /// Appends one fetch to the open (last) row.
  void append_target(bool anycast, FrontEndId front_end, Milliseconds rtt);

  /// Appends a fully-formed row struct.
  void push_back(const BeaconMeasurement& m);
  /// Appends row i of `other`.
  void append_from(const MeasurementColumns& other, std::size_t i);
  /// Appends every row of `other` in order — one bulk column concat,
  /// equivalent to append_from(other, 0..other.size()).
  void append_all(const MeasurementColumns& other);

  /// Materializes row i as the row struct.
  [[nodiscard]] BeaconMeasurement row(std::size_t i) const;
  /// Materializes every row, in order.
  [[nodiscard]] std::vector<BeaconMeasurement> rows() const;
};

}  // namespace acdn
