// Measurement record types.
//
// The beacon pipeline mirrors the paper's §3.2.2 plumbing: each beacon
// execution fetches four test URLs with globally unique identifiers; the
// authoritative DNS servers log which LDNS asked for each URL, the HTTP
// side logs which client fetched it from which front-end and how long it
// took, and the backend joins the two logs on the unique id. Passive
// records correspond to the production server logs of §3.2.1.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"

namespace acdn {

/// One row of the authoritative DNS query log.
struct DnsLogEntry {
  std::uint64_t url_id = 0;
  LdnsId ldns;
  DayIndex day = 0;
};

/// One row of the front-end HTTP log for a beacon fetch.
struct HttpLogEntry {
  std::uint64_t url_id = 0;
  ClientId client;
  bool anycast = false;     // fetched via the anycast VIP
  FrontEndId front_end;     // front-end that served the fetch
  Milliseconds rtt_ms = 0;  // latency the beacon reported
  DayIndex day = 0;
  double hour = 0.0;
};

/// A joined beacon execution: one client, one LDNS, four timed fetches.
struct BeaconMeasurement {
  std::uint64_t beacon_id = 0;
  ClientId client;
  LdnsId ldns;
  DayIndex day = 0;
  double hour = 0.0;

  struct Target {
    bool anycast = false;
    FrontEndId front_end;
    Milliseconds rtt_ms = 0;
  };
  std::vector<Target> targets;

  /// Latency of the anycast fetch, if the beacon included one.
  [[nodiscard]] std::optional<Milliseconds> anycast_ms() const;
  /// Front-end the anycast fetch landed on.
  [[nodiscard]] std::optional<FrontEndId> anycast_front_end() const;
  /// Best (lowest-latency) unicast fetch of this beacon.
  [[nodiscard]] std::optional<Target> best_unicast() const;
};

/// Aggregated production (passive) log row: queries a client /24 sent to a
/// front-end on a day.
struct PassiveLogEntry {
  ClientId client;
  FrontEndId front_end;
  DayIndex day = 0;
  double queries = 0.0;
};

}  // namespace acdn
