#include "beacon/store.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/error.h"
#include "common/executor.h"
#include "common/metrics.h"

namespace acdn {

std::optional<Milliseconds> BeaconMeasurement::anycast_ms() const {
  for (const Target& t : targets) {
    if (t.anycast) return t.rtt_ms;
  }
  return std::nullopt;
}

std::optional<FrontEndId> BeaconMeasurement::anycast_front_end() const {
  for (const Target& t : targets) {
    if (t.anycast) return t.front_end;
  }
  return std::nullopt;
}

std::optional<BeaconMeasurement::Target> BeaconMeasurement::best_unicast()
    const {
  std::optional<Target> best;
  for (const Target& t : targets) {
    if (t.anycast) continue;
    if (!best || t.rtt_ms < best->rtt_ms) best = t;
  }
  return best;
}

void MeasurementStore::join(std::span<const DnsLogEntry> dns_log,
                            std::span<const HttpLogEntry> http_log,
                            int threads) {
  // Shard the hash join by beacon id (url_id / 4): a beacon's DNS and
  // HTTP rows always share a shard, so shards join independently. Every
  // shard's output is sorted by beacon id (std::map), and the final merge
  // re-sorts the concatenation, so the stored order — and therefore every
  // downstream analysis — is identical for any shard or thread count, and
  // matches the old single-threaded join exactly.
  const PhaseSpan join_phase("join");
  metric_count("join.dns_rows", dns_log.size());
  metric_count("join.http_rows", http_log.size());
  const int shard_count = std::clamp(threads, 1, 16);
  std::vector<std::vector<BeaconMeasurement>> shards(
      static_cast<std::size_t>(shard_count));

  Executor::global().parallel_for(
      0, shards.size(), shard_count, [&](std::size_t s) {
        // NOLINT-ACDN(unordered-decl): lookup-only join index; results
        std::unordered_map<std::uint64_t, const DnsLogEntry*> dns_by_url;
        // flow through the url_id-ordered `grouped` map below.
        for (const DnsLogEntry& e : dns_log) {
          if ((e.url_id / 4) % shards.size() != s) continue;
          dns_by_url[e.url_id] = &e;  // last row wins, as before
        }
        std::map<std::uint64_t, BeaconMeasurement> grouped;
        // Orphans are tallied locally and published once per shard; the
        // registry sums integers, so totals are exact and order-free.
        std::size_t joined = 0;
        std::size_t orphan_http = 0;
        for (const HttpLogEntry& h : http_log) {
          const std::uint64_t beacon_id = h.url_id / 4;
          if (beacon_id % shards.size() != s) continue;
          auto it = dns_by_url.find(h.url_id);
          if (it == dns_by_url.end()) {
            ++orphan_http;  // unjoined fetch: drop
            continue;
          }
          ++joined;
          BeaconMeasurement& m = grouped[beacon_id];
          if (m.targets.empty()) {
            m.beacon_id = beacon_id;
            m.client = h.client;
            m.ldns = it->second->ldns;
            m.day = h.day;
            m.hour = h.hour;
          }
          m.targets.push_back(
              BeaconMeasurement::Target{h.anycast, h.front_end, h.rtt_ms});
        }
        auto& out = shards[s];
        out.reserve(grouped.size());
        for (auto& [id, m] : grouped) out.push_back(std::move(m));
        metric_count("join.orphan_http", orphan_http);
        // URL ids are unique per fetch, so every joined HTTP row consumes
        // a distinct DNS row; the remainder never matched.
        metric_count("join.orphan_dns", dns_by_url.size() - joined);
        metric_count("join.measurements", out.size());
      });

  std::vector<BeaconMeasurement> merged;
  for (auto& shard : shards) {
    merged.insert(merged.end(), std::make_move_iterator(shard.begin()),
                  std::make_move_iterator(shard.end()));
  }
  std::sort(merged.begin(), merged.end(),
            [](const BeaconMeasurement& a, const BeaconMeasurement& b) {
              return a.beacon_id < b.beacon_id;
            });
  for (BeaconMeasurement& m : merged) add(std::move(m));
}

void MeasurementStore::add(BeaconMeasurement measurement) {
  require(measurement.day >= 0, "measurement day must be non-negative");
  if (static_cast<std::size_t>(measurement.day) >= by_day_.size()) {
    by_day_.resize(static_cast<std::size_t>(measurement.day) + 1);
  }
  by_day_[static_cast<std::size_t>(measurement.day)].push_back(
      std::move(measurement));
}

std::span<const BeaconMeasurement> MeasurementStore::by_day(
    DayIndex day) const {
  if (day < 0 || static_cast<std::size_t>(day) >= by_day_.size()) return {};
  return by_day_[static_cast<std::size_t>(day)];
}

std::size_t MeasurementStore::total() const {
  std::size_t n = 0;
  for (const auto& v : by_day_) n += v.size();
  return n;
}

void PassiveLog::add(PassiveLogEntry entry) {
  require(entry.day >= 0, "log day must be non-negative");
  if (static_cast<std::size_t>(entry.day) >= by_day_.size()) {
    by_day_.resize(static_cast<std::size_t>(entry.day) + 1);
  }
  by_day_[static_cast<std::size_t>(entry.day)].push_back(entry);
}

std::span<const PassiveLogEntry> PassiveLog::by_day(DayIndex day) const {
  if (day < 0 || static_cast<std::size_t>(day) >= by_day_.size()) return {};
  return by_day_[static_cast<std::size_t>(day)];
}

std::size_t PassiveLog::total() const {
  std::size_t n = 0;
  for (const auto& v : by_day_) n += v.size();
  return n;
}

}  // namespace acdn
