#include "beacon/store.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"
#include "common/executor.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/radix.h"
#include "common/simd.h"

namespace acdn {

namespace {

/// Per-shard join-key columns, SoA: the uint64 sort key (DNS side:
/// url_id; HTTP side: beacon id = url_id / 4) and the source log
/// position. Positions are appended in ascending scan order, so a
/// non-decreasing key column is already sorted by (key, pos) — and when
/// it is not, the *stable* radix pair sort restores exactly that order
/// without an explicit tie-breaker: the last entry of a url_id run stays
/// the "last log row wins" winner the hash index produced, and a
/// beacon's HTTP rows keep log order, which fixes the measurement's
/// target order and metadata row.
struct ShardKeys {
  std::vector<std::uint64_t> key;
  std::vector<std::uint32_t> pos;
};

}  // namespace

std::optional<Milliseconds> BeaconMeasurement::anycast_ms() const {
  for (const Target& t : targets) {
    if (t.anycast) return t.rtt_ms;
  }
  return std::nullopt;
}

std::optional<FrontEndId> BeaconMeasurement::anycast_front_end() const {
  for (const Target& t : targets) {
    if (t.anycast) return t.front_end;
  }
  return std::nullopt;
}

std::optional<BeaconMeasurement::Target> BeaconMeasurement::best_unicast()
    const {
  std::optional<Target> best;
  for (const Target& t : targets) {
    if (t.anycast) continue;
    if (!best || t.rtt_ms < best->rtt_ms) best = t;
  }
  return best;
}

bool MeasurementStore::join_presorted_day(
    std::span<const DnsLogEntry> dns_log,
    std::span<const HttpLogEntry> http_log) {
  const DayIndex day0 = http_log.empty() ? DayIndex{0} : http_log[0].day;
  if (day0 < 0) return false;
  for (const HttpLogEntry& row : http_log) {
    if (row.day != day0) return false;
  }

  auto& dns_keys = scratch_.buffer<std::uint64_t>("join.fast_dns");
  auto& http_keys = scratch_.buffer<std::uint64_t>("join.fast_http");
  dns_keys.resize(dns_log.size());
  for (std::size_t i = 0; i < dns_log.size(); ++i) {
    dns_keys[i] = dns_log[i].url_id;
  }
  http_keys.resize(http_log.size());
  for (std::size_t i = 0; i < http_log.size(); ++i) {
    http_keys[i] = http_log[i].url_id / 4;
  }
  if (!simd::is_sorted_u64(std::span<const std::uint64_t>(dns_keys)) ||
      !simd::is_sorted_u64(std::span<const std::uint64_t>(http_keys))) {
    return false;
  }

  // Both key columns are sorted in place, so log position == key index:
  // no pos payload, no sort, no staging columns. Beacon runs come from
  // the neighbor-compare kernel; the run count bounds the row reserve.
  auto& runs = scratch_.buffer<std::uint32_t>("join.fast_runs");
  simd::run_starts_u64(std::span<const std::uint64_t>(http_keys), runs);

  std::size_t joined = 0;
  std::size_t orphan_http = 0;
  std::size_t stored_rows = 0;
  MeasurementColumns* dest = nullptr;
  std::size_t d = 0;
  for (std::size_t r = 0; r < runs.size(); ++r) {
    const std::size_t h_begin = runs[r];
    const std::size_t h_end =
        r + 1 < runs.size() ? runs[r + 1] : http_keys.size();
    const std::uint64_t beacon = http_keys[h_begin];
    while (d < dns_keys.size() && dns_keys[d] < beacon * 4) ++d;
    std::size_t d_end = d;
    while (d_end < dns_keys.size() && dns_keys[d_end] < beacon * 4 + 4) {
      ++d_end;
    }
    bool opened = false;
    for (std::size_t h = h_begin; h < h_end; ++h) {
      const HttpLogEntry& row = http_log[h];
      // Last matching DNS row wins, as in the hash index the sort-merge
      // join replaced.
      const DnsLogEntry* match = nullptr;
      for (std::size_t k = d; k < d_end; ++k) {
        if (dns_keys[k] == row.url_id) match = &dns_log[k];
      }
      if (match == nullptr) {
        ++orphan_http;  // unjoined fetch: drop
        continue;
      }
      ++joined;
      if (dest == nullptr) {
        // First stored row materializes the day (all-orphan batches must
        // not grow days()) and reserves for the batch's upper bound.
        if (static_cast<std::size_t>(day0) >= by_day_.size()) {
          by_day_.resize(static_cast<std::size_t>(day0) + 1);
        }
        dest = &by_day_[static_cast<std::size_t>(day0)];
        dest->reserve(dest->size() + runs.size(),
                      dest->target_count() + http_log.size());
      }
      if (!opened) {
        dest->append_row(beacon, row.client, match->ldns, row.day, row.hour);
        opened = true;
        ++stored_rows;
      }
      dest->append_target(row.anycast, row.front_end, row.rtt_ms);
    }
    d = d_end;
  }

  std::size_t distinct_urls = 0;
  for (std::size_t k = 0; k < dns_keys.size(); ++k) {
    if (k == 0 || dns_keys[k] != dns_keys[k - 1]) ++distinct_urls;
  }
  metric_count("join.orphan_http", orphan_http);
  metric_count("join.orphan_dns", distinct_urls - joined);
  metric_count("join.measurements", stored_rows);
  metric_count("join.joined_targets", joined);
  metric_count("join.distinct_dns", distinct_urls);
  metric_count("join.stored_rows", stored_rows);
  metric_count("join.stored_targets", joined);
  metric_count("join.dropped_rows", 0);
  metric_count("join.dropped_targets", 0);
  return true;
}

void MeasurementStore::join(std::span<const DnsLogEntry> dns_log,
                            std::span<const HttpLogEntry> http_log,
                            int threads) {
  // Sort-merge join, sharded by beacon id (url_id / 4): a beacon's DNS
  // and HTTP rows always share a shard, so shards join independently.
  // Within a shard both sides sort by deterministic total orders, the
  // merge walks beacons in ascending id, and the shard outputs k-way
  // merge back in ascending beacon id — so the stored order, and every
  // downstream analysis, is identical for any shard or thread count and
  // matches the hash join this replaced exactly.
  const PhaseSpan join_phase("join");
  metric_count("join.dns_rows", dns_log.size());
  metric_count("join.http_rows", http_log.size());
  const auto shard_count =
      static_cast<std::size_t>(std::clamp(threads, 1, 16));

  static const FailPoint store_fault("beacon/store");
  const bool faults_armed = fail_points_armed();

  // Fast path — one shard, no armed faults, every HTTP row on one valid
  // day, both logs already sorted (the steady-state day loop): join
  // straight into the day's columns. This skips the whole staging copy
  // the sharded path pays (join into a shard output, then re-append every
  // column into by_day_), which at paper scale dominates the join.
  if (shard_count == 1 && !faults_armed &&
      join_presorted_day(dns_log, http_log)) {
    return;
  }

  // Shard scratch persists across joins; steady-state day loops reuse the
  // capacity grown on day one.
  auto& dns_shards = scratch_.raw_buffer<ShardKeys>("join.dns");
  auto& http_shards = scratch_.raw_buffer<ShardKeys>("join.http");
  auto& out_shards = scratch_.raw_buffer<MeasurementColumns>("join.out");
  if (dns_shards.size() < shard_count) dns_shards.resize(shard_count);
  if (http_shards.size() < shard_count) http_shards.resize(shard_count);
  if (out_shards.size() < shard_count) out_shards.resize(shard_count);

  Executor::global().parallel_for(
      0, shard_count, threads, [&](std::size_t s) {
        ShardKeys& dns = dns_shards[s];
        ShardKeys& http = http_shards[s];
        MeasurementColumns& out = out_shards[s];
        dns.key.clear();
        dns.pos.clear();
        http.key.clear();
        http.pos.clear();
        out.clear();

        if (shard_count == 1) {
          // One shard takes everything: no per-row modulo (an integer
          // division per log row otherwise).
          dns.key.resize(dns_log.size());
          dns.pos.resize(dns_log.size());
          for (std::size_t i = 0; i < dns_log.size(); ++i) {
            dns.key[i] = dns_log[i].url_id;
          }
          std::iota(dns.pos.begin(), dns.pos.end(), 0u);
          http.key.resize(http_log.size());
          http.pos.resize(http_log.size());
          for (std::size_t i = 0; i < http_log.size(); ++i) {
            http.key[i] = http_log[i].url_id / 4;
          }
          std::iota(http.pos.begin(), http.pos.end(), 0u);
        } else {
          for (std::size_t i = 0; i < dns_log.size(); ++i) {
            if ((dns_log[i].url_id / 4) % shard_count != s) continue;
            dns.key.push_back(dns_log[i].url_id);
            dns.pos.push_back(static_cast<std::uint32_t>(i));
          }
          for (std::size_t i = 0; i < http_log.size(); ++i) {
            const std::uint64_t beacon = http_log[i].url_id / 4;
            if (beacon % shard_count != s) continue;
            http.key.push_back(beacon);
            http.pos.push_back(static_cast<std::uint32_t>(i));
          }
        }
        // Day-loop logs arrive presorted (client-major, monotone beacon
        // ids), so check — with the SIMD neighbor-compare kernel — before
        // paying the sort. A non-decreasing key column is already sorted
        // by (key, pos) because positions are appended ascending; when it
        // is not, the stable radix pair sort restores exactly that order.
        if (!simd::is_sorted_u64(
                std::span<const std::uint64_t>(dns.key))) {
          radix_sort_pairs(std::span<std::uint64_t>(dns.key),
                           std::span<std::uint32_t>(dns.pos));
        }
        if (!simd::is_sorted_u64(
                std::span<const std::uint64_t>(http.key))) {
          radix_sort_pairs(std::span<std::uint64_t>(http.key),
                           std::span<std::uint32_t>(http.pos));
        }

        // Single merge pass: both sequences ascend in beacon id, so the
        // DNS cursor only ever moves forward. A beacon's DNS rows are the
        // run with url_id in [4*beacon, 4*beacon + 4).
        std::size_t joined = 0;
        std::size_t orphan_http = 0;
        std::size_t d = 0;
        for (std::size_t h = 0; h < http.key.size();) {
          const std::uint64_t beacon = http.key[h];
          std::size_t h_end = h;
          while (h_end < http.key.size() && http.key[h_end] == beacon) {
            ++h_end;
          }
          while (d < dns.key.size() && dns.key[d] < beacon * 4) {
            ++d;
          }
          std::size_t d_end = d;
          while (d_end < dns.key.size() && dns.key[d_end] < beacon * 4 + 4) {
            ++d_end;
          }
          bool opened = false;
          for (; h < h_end; ++h) {
            const HttpLogEntry& row = http_log[http.pos[h]];
            // Last matching DNS row wins, as in the hash index. The run
            // holds at most a handful of rows (four fetches per beacon),
            // so the scan is cheaper than any per-row search structure.
            const DnsLogEntry* match = nullptr;
            for (std::size_t k = d; k < d_end; ++k) {
              if (dns.key[k] == row.url_id) {
                match = &dns_log[dns.pos[k]];
              }
            }
            if (match == nullptr) {
              ++orphan_http;  // unjoined fetch: drop
              continue;
            }
            ++joined;
            if (!opened) {
              // First joined HTTP row fixes the measurement metadata.
              out.append_row(beacon, row.client, match->ldns, row.day,
                             row.hour);
              opened = true;
            }
            out.append_target(row.anycast, row.front_end, row.rtt_ms);
          }
          d = d_end;
        }

        std::size_t distinct_urls = 0;
        for (std::size_t k = 0; k < dns.key.size(); ++k) {
          if (k == 0 || dns.key[k] != dns.key[k - 1]) {
            ++distinct_urls;
          }
        }
        metric_count("join.orphan_http", orphan_http);
        // URL ids are unique per fetch, so every joined HTTP row consumes
        // a distinct DNS url; the remainder never matched.
        metric_count("join.orphan_dns", distinct_urls - joined);
        metric_count("join.measurements", out.size());
        // Conservation ledger (chaos invariants): per join call,
        //   http_rows    == joined_targets + orphan_http
        //   distinct_dns == joined_targets + orphan_dns
        //   joined_targets == stored_targets + dropped_targets
        metric_count("join.joined_targets", joined);
        metric_count("join.distinct_dns", distinct_urls);
      });

  // Reserve the target day's columns when the whole batch lands on one
  // day (the simulation's case — join is called once per day).
  std::size_t total_rows = 0;
  std::size_t total_targets = 0;
  bool uniform_day = true;
  DayIndex batch_day = -1;
  for (std::size_t s = 0; s < shard_count; ++s) {
    total_rows += out_shards[s].size();
    total_targets += out_shards[s].target_count();
    for (const DayIndex day : out_shards[s].day) {
      if (batch_day == -1) batch_day = day;
      uniform_day = uniform_day && day == batch_day;
    }
  }
  if (uniform_day && batch_day >= 0 && total_rows > 0) {
    if (static_cast<std::size_t>(batch_day) >= by_day_.size()) {
      by_day_.resize(static_cast<std::size_t>(batch_day) + 1);
    }
    MeasurementColumns& dest = by_day_[static_cast<std::size_t>(batch_day)];
    dest.reserve(dest.size() + total_rows,
                 dest.target_count() + total_targets);
  }

  // k-way merge: shard outputs are each sorted by beacon id and beacon
  // ids are globally unique, so repeatedly taking the smallest head
  // appends rows in ascending beacon id — the order the old concat+sort
  // produced.
  // The "beacon/store" fail point models measurement ingestion failures:
  // whole joined rows lost (drop/error) or RTTs mangled on the way to
  // storage (delay/corrupt). It is evaluated here in the serial merge —
  // keyed by (day, beacon id) — so drops hit the same beacons for any
  // shard count, and the dropped/stored ledger stays exact.

  // One shard, one day, no armed faults but out-of-order logs (the fast
  // path declined): the merge is shard 0's order verbatim and no row can
  // drop, so store the batch as one bulk column concat.
  if (shard_count == 1 && !faults_armed && uniform_day) {
    if (batch_day >= 0 && total_rows > 0) {
      by_day_[static_cast<std::size_t>(batch_day)].append_all(out_shards[0]);
    }
    metric_count("join.stored_rows", total_rows);
    metric_count("join.stored_targets", total_targets);
    metric_count("join.dropped_rows", 0);
    metric_count("join.dropped_targets", 0);
    return;
  }
  std::size_t stored_rows = 0;
  std::size_t stored_targets = 0;
  std::size_t dropped_rows = 0;
  std::size_t dropped_targets = 0;

  auto& cursors = scratch_.buffer<std::size_t>("join.cursors");
  cursors.assign(shard_count, 0);
  for (;;) {
    std::size_t best = shard_count;
    std::uint64_t best_id = 0;
    for (std::size_t s = 0; s < shard_count; ++s) {
      if (cursors[s] >= out_shards[s].size()) continue;
      const std::uint64_t id = out_shards[s].beacon_id[cursors[s]];
      if (best == shard_count || id < best_id) {
        best = s;
        best_id = id;
      }
    }
    if (best == shard_count) break;
    const MeasurementColumns& src = out_shards[best];
    const std::size_t i = cursors[best]++;
    const DayIndex day = src.day[i];
    require(day >= 0, "measurement day must be non-negative");
    const std::size_t row_targets =
        src.row_targets_end(i) - src.row_targets_begin(i);

    std::optional<Fault> fault;
    if (faults_armed) fault = store_fault.fire(day, best_id);
    if (fault && (fault->kind == FaultKind::kDrop ||
                  fault->kind == FaultKind::kError)) {
      ++dropped_rows;
      dropped_targets += row_targets;
      continue;
    }

    if (static_cast<std::size_t>(day) >= by_day_.size()) {
      by_day_.resize(static_cast<std::size_t>(day) + 1);
    }
    MeasurementColumns& dest = by_day_[static_cast<std::size_t>(day)];
    dest.append_from(src, i);
    ++stored_rows;
    stored_targets += row_targets;
    if (fault) {  // kDelay / kCorrupt: ingestion skews the stored RTTs
      for (std::size_t t = dest.target_count() - row_targets;
           t < dest.target_count(); ++t) {
        if (fault->kind == FaultKind::kDelay) {
          dest.target_rtt[t] += fault->magnitude;
        } else {
          dest.target_rtt[t] *= 1.0 + fault->magnitude;
        }
      }
    }
  }
  metric_count("join.stored_rows", stored_rows);
  metric_count("join.stored_targets", stored_targets);
  metric_count("join.dropped_rows", dropped_rows);
  metric_count("join.dropped_targets", dropped_targets);
}

void MeasurementStore::add(BeaconMeasurement measurement) {
  require(measurement.day >= 0, "measurement day must be non-negative");
  if (static_cast<std::size_t>(measurement.day) >= by_day_.size()) {
    by_day_.resize(static_cast<std::size_t>(measurement.day) + 1);
  }
  by_day_[static_cast<std::size_t>(measurement.day)].push_back(measurement);
}

const MeasurementColumns& MeasurementStore::columns(DayIndex day) const {
  static const MeasurementColumns kEmpty;
  if (day < 0 || static_cast<std::size_t>(day) >= by_day_.size()) {
    return kEmpty;
  }
  return by_day_[static_cast<std::size_t>(day)];
}

std::vector<BeaconMeasurement> MeasurementStore::by_day(DayIndex day) const {
  return columns(day).rows();
}

std::size_t MeasurementStore::total() const {
  std::size_t n = 0;
  for (const auto& v : by_day_) n += v.size();
  return n;
}

void PassiveLog::add(PassiveLogEntry entry) {
  require(entry.day >= 0, "log day must be non-negative");
  if (static_cast<std::size_t>(entry.day) >= by_day_.size()) {
    by_day_.resize(static_cast<std::size_t>(entry.day) + 1);
  }
  by_day_[static_cast<std::size_t>(entry.day)].push_back(entry);
}

std::span<const PassiveLogEntry> PassiveLog::by_day(DayIndex day) const {
  if (day < 0 || static_cast<std::size_t>(day) >= by_day_.size()) return {};
  return by_day_[static_cast<std::size_t>(day)];
}

std::size_t PassiveLog::total() const {
  std::size_t n = 0;
  for (const auto& v : by_day_) n += v.size();
  return n;
}

}  // namespace acdn
