#include "beacon/store.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/cost_model.h"
#include "common/error.h"
#include "common/executor.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/radix.h"
#include "common/simd.h"

namespace acdn {

namespace {

/// Per-shard merge tallies, folded into the join.* counters after the
/// parallel region (one metric call per name instead of one per shard).
struct ShardCounts {
  std::size_t joined = 0;
  std::size_t orphan_http = 0;
  std::size_t distinct_urls = 0;
};

}  // namespace

std::optional<Milliseconds> BeaconMeasurement::anycast_ms() const {
  for (const Target& t : targets) {
    if (t.anycast) return t.rtt_ms;
  }
  return std::nullopt;
}

std::optional<FrontEndId> BeaconMeasurement::anycast_front_end() const {
  for (const Target& t : targets) {
    if (t.anycast) return t.front_end;
  }
  return std::nullopt;
}

std::optional<BeaconMeasurement::Target> BeaconMeasurement::best_unicast()
    const {
  std::optional<Target> best;
  for (const Target& t : targets) {
    if (t.anycast) continue;
    if (!best || t.rtt_ms < best->rtt_ms) best = t;
  }
  return best;
}

bool MeasurementStore::join_presorted_day(
    std::span<const DnsLogEntry> dns_log,
    std::span<const HttpLogEntry> http_log) {
  const DayIndex day0 = http_log.empty() ? DayIndex{0} : http_log[0].day;
  if (day0 < 0) return false;
  for (const HttpLogEntry& row : http_log) {
    if (row.day != day0) return false;
  }

  auto& dns_keys = scratch_.buffer<std::uint64_t>("join.fast_dns");
  auto& http_keys = scratch_.buffer<std::uint64_t>("join.fast_http");
  dns_keys.resize(dns_log.size());
  for (std::size_t i = 0; i < dns_log.size(); ++i) {
    dns_keys[i] = dns_log[i].url_id;
  }
  http_keys.resize(http_log.size());
  for (std::size_t i = 0; i < http_log.size(); ++i) {
    http_keys[i] = http_log[i].url_id / 4;
  }
  if (!simd::is_sorted_u64(std::span<const std::uint64_t>(dns_keys)) ||
      !simd::is_sorted_u64(std::span<const std::uint64_t>(http_keys))) {
    return false;
  }

  // Both key columns are sorted in place, so log position == key index:
  // no pos payload, no sort, no staging columns. Beacon runs come from
  // the neighbor-compare kernel; the run count bounds the row reserve.
  auto& runs = scratch_.buffer<std::uint32_t>("join.fast_runs");
  simd::run_starts_u64(std::span<const std::uint64_t>(http_keys), runs);

  std::size_t joined = 0;
  std::size_t orphan_http = 0;
  std::size_t stored_rows = 0;
  MeasurementColumns* dest = nullptr;
  std::size_t d = 0;
  for (std::size_t r = 0; r < runs.size(); ++r) {
    const std::size_t h_begin = runs[r];
    const std::size_t h_end =
        r + 1 < runs.size() ? runs[r + 1] : http_keys.size();
    const std::uint64_t beacon = http_keys[h_begin];
    while (d < dns_keys.size() && dns_keys[d] < beacon * 4) ++d;
    std::size_t d_end = d;
    while (d_end < dns_keys.size() && dns_keys[d_end] < beacon * 4 + 4) {
      ++d_end;
    }
    bool opened = false;
    for (std::size_t h = h_begin; h < h_end; ++h) {
      const HttpLogEntry& row = http_log[h];
      // Last matching DNS row wins, as in the hash index the sort-merge
      // join replaced.
      const DnsLogEntry* match = nullptr;
      for (std::size_t k = d; k < d_end; ++k) {
        if (dns_keys[k] == row.url_id) match = &dns_log[k];
      }
      if (match == nullptr) {
        ++orphan_http;  // unjoined fetch: drop
        continue;
      }
      ++joined;
      if (dest == nullptr) {
        // First stored row materializes the day (all-orphan batches must
        // not grow days()) and reserves for the batch's upper bound.
        if (static_cast<std::size_t>(day0) >= by_day_.size()) {
          by_day_.resize(static_cast<std::size_t>(day0) + 1);
        }
        dest = &by_day_[static_cast<std::size_t>(day0)];
        dest->reserve(dest->size() + runs.size(),
                      dest->target_count() + http_log.size());
      }
      if (!opened) {
        dest->append_row(beacon, row.client, match->ldns, row.day, row.hour);
        opened = true;
        ++stored_rows;
      }
      dest->append_target(row.anycast, row.front_end, row.rtt_ms);
    }
    d = d_end;
  }

  std::size_t distinct_urls = 0;
  for (std::size_t k = 0; k < dns_keys.size(); ++k) {
    if (k == 0 || dns_keys[k] != dns_keys[k - 1]) ++distinct_urls;
  }
  metric_count("join.orphan_http", orphan_http);
  metric_count("join.orphan_dns", distinct_urls - joined);
  metric_count("join.measurements", stored_rows);
  metric_count("join.joined_targets", joined);
  metric_count("join.distinct_dns", distinct_urls);
  metric_count("join.stored_rows", stored_rows);
  metric_count("join.stored_targets", joined);
  metric_count("join.dropped_rows", 0);
  metric_count("join.dropped_targets", 0);
  return true;
}

void MeasurementStore::join(std::span<const DnsLogEntry> dns_log,
                            std::span<const HttpLogEntry> http_log,
                            int threads) {
  // Sort-merge join over contiguous beacon-id ranges: both logs sort once
  // globally (DNS by url_id, HTTP by beacon id = url_id / 4; positions
  // break ties by log order), then split at beacon boundaries into shards
  // that merge independently. A beacon's DNS and HTTP rows always fall in
  // the same range, so shards join without communication, and because the
  // ranges partition one global ascending order, concatenating shard
  // outputs in shard order *is* the ascending-beacon-id sequence — the
  // stored order, and every downstream analysis, is identical for any
  // shard or thread count and matches the hash join this replaced.
  const PhaseSpan join_phase("join");
  metric_count("join.dns_rows", dns_log.size());
  metric_count("join.http_rows", http_log.size());

  static const FailPoint store_fault("beacon/store");
  const bool faults_armed = fail_points_armed();

  // Cost model: the shard count derives from the input size (one shard
  // per kJoinMinRowsPerShard log rows), capped by the requested threads,
  // the physical cores, and the historical 16-shard ceiling. Small
  // batches — and any batch on a 1-core host — take the single-shard
  // path below at every thread count, which is what keeps 4-thread joins
  // from ever regressing past 1-thread (tools/perf_gate.sh pins this).
  const std::size_t log_rows = dns_log.size() + http_log.size();
  const auto shard_count = static_cast<std::size_t>(plan_parallelism(
      log_rows, kJoinMinRowsPerShard, std::clamp(threads, 1, 16)));

  // Fast path — one shard, no armed faults, every HTTP row on one valid
  // day, both logs already sorted (the steady-state day loop): join
  // straight into the day's columns. This skips the whole staging copy
  // the sharded path pays (join into a shard output, then re-append every
  // column into by_day_), which at paper scale dominates the join.
  if (shard_count == 1 && !faults_armed &&
      join_presorted_day(dns_log, http_log)) {
    return;
  }

  // Full-log key/pos columns, SoA. Positions append in scan order, so a
  // non-decreasing key column is already sorted by (key, pos) — and when
  // it is not, the *stable* radix pair sort restores exactly that order
  // without an explicit tie-breaker: the last entry of a url_id run stays
  // the "last log row wins" winner the hash index produced, and a
  // beacon's HTTP rows keep log order, which fixes the measurement's
  // target order and metadata row. Leased (not plain buffers): these
  // slots stay live across the nested radix/merge passes below.
  auto dns_key = scratch_.lease<std::uint64_t>("join.dns_key");
  auto dns_pos = scratch_.lease<std::uint32_t>("join.dns_pos");
  auto http_key = scratch_.lease<std::uint64_t>("join.http_key");
  auto http_pos = scratch_.lease<std::uint32_t>("join.http_pos");
  dns_key->resize(dns_log.size());
  dns_pos->resize(dns_log.size());
  for (std::size_t i = 0; i < dns_log.size(); ++i) {
    (*dns_key)[i] = dns_log[i].url_id;
  }
  std::iota(dns_pos->begin(), dns_pos->end(), 0u);
  http_key->resize(http_log.size());
  http_pos->resize(http_log.size());
  for (std::size_t i = 0; i < http_log.size(); ++i) {
    (*http_key)[i] = http_log[i].url_id / 4;
  }
  std::iota(http_pos->begin(), http_pos->end(), 0u);

  // Day-loop logs arrive presorted (client-major, monotone beacon ids),
  // so check — with the SIMD neighbor-compare kernel — before paying the
  // sort.
  if (!simd::is_sorted_u64(std::span<const std::uint64_t>(*dns_key))) {
    radix_sort_pairs(std::span<std::uint64_t>(*dns_key),
                     std::span<std::uint32_t>(*dns_pos), threads, &scratch_);
  }
  if (!simd::is_sorted_u64(std::span<const std::uint64_t>(*http_key))) {
    radix_sort_pairs(std::span<std::uint64_t>(*http_key),
                     std::span<std::uint32_t>(*http_pos), threads, &scratch_);
  }

  // Shard boundaries: equal slices of the HTTP side, advanced to beacon-
  // run starts, with the DNS boundary at the first url of the boundary
  // beacon. lower_bound splits only between distinct keys, so neither a
  // beacon's HTTP run nor a url_id's DNS run ever straddles a shard —
  // per-shard distinct-url counts sum to the global count. DNS-only
  // batches (no HTTP rows) slice the DNS side instead so orphan counting
  // still fans out.
  auto http_bound = scratch_.lease<std::size_t>("join.http_bounds");
  auto dns_bound = scratch_.lease<std::size_t>("join.dns_bounds");
  http_bound->assign(shard_count + 1, 0);
  dns_bound->assign(shard_count + 1, 0);
  (*http_bound)[shard_count] = http_key->size();
  (*dns_bound)[shard_count] = dns_key->size();
  for (std::size_t s = 1; s < shard_count; ++s) {
    if (!http_key->empty()) {
      std::size_t cut = s * http_key->size() / shard_count;
      while (cut > 0 && cut < http_key->size() &&
             (*http_key)[cut] == (*http_key)[cut - 1]) {
        ++cut;
      }
      cut = std::max(cut, (*http_bound)[s - 1]);
      (*http_bound)[s] = cut;
      (*dns_bound)[s] =
          cut < http_key->size()
              ? static_cast<std::size_t>(
                    std::lower_bound(dns_key->begin(), dns_key->end(),
                                     (*http_key)[cut] * 4) -
                    dns_key->begin())
              : dns_key->size();
    } else {
      std::size_t cut = s * dns_key->size() / shard_count;
      while (cut > 0 && cut < dns_key->size() &&
             (*dns_key)[cut] == (*dns_key)[cut - 1]) {
        ++cut;
      }
      (*dns_bound)[s] = std::max(cut, (*dns_bound)[s - 1]);
    }
    (*dns_bound)[s] = std::max((*dns_bound)[s], (*dns_bound)[s - 1]);
  }

  // Shard outputs and tallies persist across joins; steady-state day
  // loops reuse the capacity grown on day one.
  auto out_lease = scratch_.lease_raw<MeasurementColumns>("join.out");
  std::vector<MeasurementColumns>& out_shards = out_lease.get();
  if (out_shards.size() < shard_count) out_shards.resize(shard_count);
  auto counts_lease = scratch_.lease<ShardCounts>("join.counts");
  std::vector<ShardCounts>& counts = counts_lease.get();
  counts.assign(shard_count, ShardCounts{});

  Executor::global().parallel_for(
      0, shard_count, threads, [&](std::size_t s) {
        MeasurementColumns& out = out_shards[s];
        out.clear();
        ShardCounts& tally = counts[s];
        const std::size_t h_lo = (*http_bound)[s];
        const std::size_t h_hi = (*http_bound)[s + 1];
        const std::size_t d_lo = (*dns_bound)[s];
        const std::size_t d_hi = (*dns_bound)[s + 1];

        // Single merge pass: both sequences ascend in beacon id, so the
        // DNS cursor only ever moves forward. A beacon's DNS rows are the
        // run with url_id in [4*beacon, 4*beacon + 4).
        std::size_t d = d_lo;
        for (std::size_t h = h_lo; h < h_hi;) {
          const std::uint64_t beacon = (*http_key)[h];
          std::size_t h_end = h;
          while (h_end < h_hi && (*http_key)[h_end] == beacon) ++h_end;
          while (d < d_hi && (*dns_key)[d] < beacon * 4) ++d;
          std::size_t d_end = d;
          while (d_end < d_hi && (*dns_key)[d_end] < beacon * 4 + 4) {
            ++d_end;
          }
          bool opened = false;
          for (; h < h_end; ++h) {
            const HttpLogEntry& row = http_log[(*http_pos)[h]];
            // Last matching DNS row wins, as in the hash index. The run
            // holds at most a handful of rows (four fetches per beacon),
            // so the scan is cheaper than any per-row search structure.
            const DnsLogEntry* match = nullptr;
            for (std::size_t k = d; k < d_end; ++k) {
              if ((*dns_key)[k] == row.url_id) {
                match = &dns_log[(*dns_pos)[k]];
              }
            }
            if (match == nullptr) {
              ++tally.orphan_http;  // unjoined fetch: drop
              continue;
            }
            ++tally.joined;
            if (!opened) {
              // First joined HTTP row fixes the measurement metadata.
              out.append_row(beacon, row.client, match->ldns, row.day,
                             row.hour);
              opened = true;
            }
            out.append_target(row.anycast, row.front_end, row.rtt_ms);
          }
          d = d_end;
        }

        for (std::size_t k = d_lo; k < d_hi; ++k) {
          if (k == d_lo || (*dns_key)[k] != (*dns_key)[k - 1]) {
            ++tally.distinct_urls;
          }
        }
      });

  std::size_t joined = 0;
  std::size_t orphan_http = 0;
  std::size_t distinct_urls = 0;
  std::size_t total_rows = 0;
  for (std::size_t s = 0; s < shard_count; ++s) {
    joined += counts[s].joined;
    orphan_http += counts[s].orphan_http;
    distinct_urls += counts[s].distinct_urls;
    total_rows += out_shards[s].size();
  }
  metric_count("join.orphan_http", orphan_http);
  // URL ids are unique per fetch, so every joined HTTP row consumes a
  // distinct DNS url; the remainder never matched.
  metric_count("join.orphan_dns", distinct_urls - joined);
  metric_count("join.measurements", total_rows);
  // Conservation ledger (chaos invariants): per join call,
  //   http_rows    == joined_targets + orphan_http
  //   distinct_dns == joined_targets + orphan_dns
  //   joined_targets == stored_targets + dropped_targets
  metric_count("join.joined_targets", joined);
  metric_count("join.distinct_dns", distinct_urls);

  // Reserve the target day's columns when the whole batch lands on one
  // day (the simulation's case — join is called once per day).
  std::size_t total_targets = 0;
  bool uniform_day = true;
  DayIndex batch_day = -1;
  for (std::size_t s = 0; s < shard_count; ++s) {
    total_targets += out_shards[s].target_count();
    for (const DayIndex day : out_shards[s].day) {
      if (batch_day == -1) batch_day = day;
      uniform_day = uniform_day && day == batch_day;
    }
  }
  if (uniform_day && batch_day >= 0 && total_rows > 0) {
    if (static_cast<std::size_t>(batch_day) >= by_day_.size()) {
      by_day_.resize(static_cast<std::size_t>(batch_day) + 1);
    }
    MeasurementColumns& dest = by_day_[static_cast<std::size_t>(batch_day)];
    dest.reserve(dest.size() + total_rows,
                 dest.target_count() + total_targets);
  }

  // One day, no armed faults: no row can drop and shard order is already
  // ascending beacon id (contiguous ranges of one global order), so the
  // fold is a bulk column concat per shard — the per-row append_from walk
  // the thread-derived modulo sharding used to force is gone.
  if (!faults_armed && uniform_day) {
    if (batch_day >= 0 && total_rows > 0) {
      MeasurementColumns& dest =
          by_day_[static_cast<std::size_t>(batch_day)];
      for (std::size_t s = 0; s < shard_count; ++s) {
        dest.append_all(out_shards[s]);
      }
    }
    metric_count("join.stored_rows", total_rows);
    metric_count("join.stored_targets", total_targets);
    metric_count("join.dropped_rows", 0);
    metric_count("join.dropped_targets", 0);
    return;
  }

  // Serial fold, rows in ascending beacon id (shard-major over contiguous
  // ranges — exactly the order the old k-way merge produced).
  // The "beacon/store" fail point models measurement ingestion failures:
  // whole joined rows lost (drop/error) or RTTs mangled on the way to
  // storage (delay/corrupt). It is evaluated here in the serial fold —
  // keyed by (day, beacon id) — so drops hit the same beacons for any
  // shard count, and the dropped/stored ledger stays exact.
  std::size_t stored_rows = 0;
  std::size_t stored_targets = 0;
  std::size_t dropped_rows = 0;
  std::size_t dropped_targets = 0;
  for (std::size_t s = 0; s < shard_count; ++s) {
    const MeasurementColumns& src = out_shards[s];
    for (std::size_t i = 0; i < src.size(); ++i) {
      const std::uint64_t beacon = src.beacon_id[i];
      const DayIndex day = src.day[i];
      require(day >= 0, "measurement day must be non-negative");
      const std::size_t row_targets =
          src.row_targets_end(i) - src.row_targets_begin(i);

      std::optional<Fault> fault;
      if (faults_armed) fault = store_fault.fire(day, beacon);
      if (fault && (fault->kind == FaultKind::kDrop ||
                    fault->kind == FaultKind::kError)) {
        ++dropped_rows;
        dropped_targets += row_targets;
        continue;
      }

      if (static_cast<std::size_t>(day) >= by_day_.size()) {
        by_day_.resize(static_cast<std::size_t>(day) + 1);
      }
      MeasurementColumns& dest = by_day_[static_cast<std::size_t>(day)];
      dest.append_from(src, i);
      ++stored_rows;
      stored_targets += row_targets;
      if (fault) {  // kDelay / kCorrupt: ingestion skews the stored RTTs
        for (std::size_t t = dest.target_count() - row_targets;
             t < dest.target_count(); ++t) {
          if (fault->kind == FaultKind::kDelay) {
            dest.target_rtt[t] += fault->magnitude;
          } else {
            dest.target_rtt[t] *= 1.0 + fault->magnitude;
          }
        }
      }
    }
  }
  metric_count("join.stored_rows", stored_rows);
  metric_count("join.stored_targets", stored_targets);
  metric_count("join.dropped_rows", dropped_rows);
  metric_count("join.dropped_targets", dropped_targets);
}

void MeasurementStore::add(BeaconMeasurement measurement) {
  require(measurement.day >= 0, "measurement day must be non-negative");
  if (static_cast<std::size_t>(measurement.day) >= by_day_.size()) {
    by_day_.resize(static_cast<std::size_t>(measurement.day) + 1);
  }
  by_day_[static_cast<std::size_t>(measurement.day)].push_back(measurement);
}

const MeasurementColumns& MeasurementStore::columns(DayIndex day) const {
  static const MeasurementColumns kEmpty;
  if (day < 0 || static_cast<std::size_t>(day) >= by_day_.size()) {
    return kEmpty;
  }
  return by_day_[static_cast<std::size_t>(day)];
}

std::vector<BeaconMeasurement> MeasurementStore::by_day(DayIndex day) const {
  return columns(day).rows();
}

MeasurementColumns MeasurementStore::take_day(DayIndex day) {
  if (day < 0 || static_cast<std::size_t>(day) >= by_day_.size()) return {};
  return std::exchange(by_day_[static_cast<std::size_t>(day)],
                       MeasurementColumns{});
}

void MeasurementStore::put_day(DayIndex day, MeasurementColumns&& columns) {
  require(day >= 0, "measurement day must be non-negative");
  if (static_cast<std::size_t>(day) >= by_day_.size()) {
    by_day_.resize(static_cast<std::size_t>(day) + 1);
  }
  MeasurementColumns& dest = by_day_[static_cast<std::size_t>(day)];
  if (dest.empty()) {
    dest = std::move(columns);
  } else {
    dest.append_all(columns);
  }
}

std::size_t MeasurementStore::total() const {
  std::size_t n = 0;
  for (const auto& v : by_day_) n += v.size();
  return n;
}

void PassiveLog::add(PassiveLogEntry entry) {
  require(entry.day >= 0, "log day must be non-negative");
  if (static_cast<std::size_t>(entry.day) >= by_day_.size()) {
    by_day_.resize(static_cast<std::size_t>(entry.day) + 1);
  }
  by_day_[static_cast<std::size_t>(entry.day)].push_back(entry);
}

std::span<const PassiveLogEntry> PassiveLog::by_day(DayIndex day) const {
  if (day < 0 || static_cast<std::size_t>(day) >= by_day_.size()) return {};
  return by_day_[static_cast<std::size_t>(day)];
}

std::size_t PassiveLog::total() const {
  std::size_t n = 0;
  for (const auto& v : by_day_) n += v.size();
  return n;
}

}  // namespace acdn
