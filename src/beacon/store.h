// Measurement backend: joins DNS and HTTP logs into beacon measurements
// (keyed by the globally unique URL id, §3.2.2) and stores them by day,
// alongside the passive production logs.
#pragma once

#include <span>
#include <vector>

#include "beacon/measurement.h"

namespace acdn {

class MeasurementStore {
 public:
  /// Joins the two server-side logs on url_id. Fetches lacking a DNS-side
  /// row (or vice versa) are dropped, as in any log join. Appends the
  /// joined measurements to the store. With threads > 1 the hash join is
  /// sharded by beacon id (url_id / 4, so a beacon's four fetches land in
  /// one shard) across the executor pool; the shard outputs merge back in
  /// ascending beacon id, so the stored sequence is identical for any
  /// thread and shard count.
  void join(std::span<const DnsLogEntry> dns_log,
            std::span<const HttpLogEntry> http_log, int threads = 1);

  void add(BeaconMeasurement measurement);

  [[nodiscard]] std::span<const BeaconMeasurement> by_day(DayIndex day) const;
  [[nodiscard]] int days() const { return static_cast<int>(by_day_.size()); }
  [[nodiscard]] std::size_t total() const;

 private:
  std::vector<std::vector<BeaconMeasurement>> by_day_;
};

/// Passive production logs, aggregated per (client, front-end, day).
class PassiveLog {
 public:
  void add(PassiveLogEntry entry);

  [[nodiscard]] std::span<const PassiveLogEntry> by_day(DayIndex day) const;
  [[nodiscard]] int days() const { return static_cast<int>(by_day_.size()); }
  [[nodiscard]] std::size_t total() const;

 private:
  std::vector<std::vector<PassiveLogEntry>> by_day_;
};

}  // namespace acdn
