// Measurement backend: joins DNS and HTTP logs into beacon measurements
// (keyed by the globally unique URL id, §3.2.2) and stores them by day —
// columnar (beacon/columns.h), one MeasurementColumns per day — alongside
// the passive production logs.
#pragma once

#include <span>
#include <vector>

#include "beacon/columns.h"
#include "beacon/measurement.h"
#include "common/arena.h"

namespace acdn {

class MeasurementStore {
 public:
  /// Joins the two server-side logs on url_id with a sort-merge join:
  /// each shard (beacon id % shard count, so a beacon's four fetches land
  /// in one shard) sorts its DNS rows by (url_id, log position) and its
  /// HTTP rows by (beacon id, log position), then merges the two sorted
  /// sequences in one pass — duplicate DNS url_ids resolve to the last
  /// log row, targets keep HTTP log order within a beacon, and rows
  /// lacking a counterpart drop, exactly like the hash join this
  /// replaces. Shard outputs merge back in ascending beacon id, so the
  /// stored sequence is identical for any thread and shard count. Scratch
  /// buffers (shard indexes and outputs) persist in an arena across
  /// calls, so steady-state joins allocate almost nothing.
  void join(std::span<const DnsLogEntry> dns_log,
            std::span<const HttpLogEntry> http_log, int threads = 1);

  void add(BeaconMeasurement measurement);

  /// The day's measurements in columnar form — the zero-copy view every
  /// hot pass should consume. An empty day (or out-of-range index)
  /// returns a static empty column set.
  [[nodiscard]] const MeasurementColumns& columns(DayIndex day) const;

  /// Materializes the day's measurements as row structs (export, tests).
  [[nodiscard]] std::vector<BeaconMeasurement> by_day(DayIndex day) const;

  [[nodiscard]] int days() const { return static_cast<int>(by_day_.size()); }
  [[nodiscard]] std::size_t total() const;

  /// Bytes reserved by the join's scratch arena (perf regression probe:
  /// stable after the first join of a steady-state day loop).
  [[nodiscard]] std::size_t scratch_capacity_bytes() const {
    return scratch_.capacity_bytes();
  }

 private:
  /// Single-shard fast path: when every HTTP row lands on one valid day
  /// and both logs are already sorted (checked with the SIMD neighbor-
  /// compare kernel), the merge writes joined rows straight into that
  /// day's columns — no shard staging copy. Returns false (having stored
  /// nothing) when the preconditions do not hold, and the caller falls
  /// back to the sharded sort-merge path. Callers must ensure no fail
  /// points are armed; this path never evaluates the store fail point.
  bool join_presorted_day(std::span<const DnsLogEntry> dns_log,
                          std::span<const HttpLogEntry> http_log);

  std::vector<MeasurementColumns> by_day_;
  ScratchArena scratch_;
};

/// Passive production logs, aggregated per (client, front-end, day).
class PassiveLog {
 public:
  void add(PassiveLogEntry entry);

  [[nodiscard]] std::span<const PassiveLogEntry> by_day(DayIndex day) const;
  [[nodiscard]] int days() const { return static_cast<int>(by_day_.size()); }
  [[nodiscard]] std::size_t total() const;

 private:
  std::vector<std::vector<PassiveLogEntry>> by_day_;
};

}  // namespace acdn
