// Measurement backend: joins DNS and HTTP logs into beacon measurements
// (keyed by the globally unique URL id, §3.2.2) and stores them by day —
// columnar (beacon/columns.h), one MeasurementColumns per day — alongside
// the passive production logs.
#pragma once

#include <span>
#include <vector>

#include "beacon/columns.h"
#include "beacon/measurement.h"
#include "common/arena.h"

namespace acdn {

class MeasurementStore {
 public:
  /// Joins the two server-side logs on url_id with a sort-merge join.
  /// Both logs sort once globally — DNS by (url_id, log position), HTTP
  /// by (beacon id, log position); day-loop logs arrive presorted and
  /// skip the sort — then split into *contiguous* beacon-id ranges, one
  /// per shard, that merge independently: duplicate DNS url_ids resolve
  /// to the last log row, targets keep HTTP log order within a beacon,
  /// and rows lacking a counterpart drop, exactly like the hash join
  /// this replaced. Because shards are contiguous ranges of one global
  /// order, concatenating their outputs in shard order *is* the
  /// ascending-beacon-id sequence — no k-way merge — so the stored
  /// sequence is identical for any thread and shard count. The shard
  /// count derives from the input size (common/cost_model.h), never from
  /// `threads` alone: small batches take the single-shard presorted fast
  /// path at any thread count, which is what keeps N-thread joins from
  /// ever running slower than 1-thread. Scratch buffers persist in an
  /// arena across calls, so steady-state joins allocate almost nothing.
  void join(std::span<const DnsLogEntry> dns_log,
            std::span<const HttpLogEntry> http_log, int threads = 1);

  void add(BeaconMeasurement measurement);

  /// The day's measurements in columnar form — the zero-copy view every
  /// hot pass should consume. An empty day (or out-of-range index)
  /// returns a static empty column set.
  [[nodiscard]] const MeasurementColumns& columns(DayIndex day) const;

  /// Materializes the day's measurements as row structs (export, tests).
  [[nodiscard]] std::vector<BeaconMeasurement> by_day(DayIndex day) const;

  /// Moves one day's columns out of the store, leaving that day empty.
  /// Out-of-range days return empty columns. The cross-day pipeline joins
  /// each day into a slot-local store off the critical path, then
  /// take_day/put_day the finished columns into the scenario store during
  /// the in-order fold.
  [[nodiscard]] MeasurementColumns take_day(DayIndex day);

  /// Installs `columns` as day `day` (appending if the day already holds
  /// rows — it never does in the pipeline, which folds each day once).
  void put_day(DayIndex day, MeasurementColumns&& columns);

  [[nodiscard]] int days() const { return static_cast<int>(by_day_.size()); }
  [[nodiscard]] std::size_t total() const;

  /// Bytes reserved by the join's scratch arena (perf regression probe:
  /// stable after the first join of a steady-state day loop).
  [[nodiscard]] std::size_t scratch_capacity_bytes() const {
    return scratch_.capacity_bytes();
  }

 private:
  /// Single-shard fast path: when every HTTP row lands on one valid day
  /// and both logs are already sorted (checked with the SIMD neighbor-
  /// compare kernel), the merge writes joined rows straight into that
  /// day's columns — no shard staging copy. Returns false (having stored
  /// nothing) when the preconditions do not hold, and the caller falls
  /// back to the sharded sort-merge path. Callers must ensure no fail
  /// points are armed; this path never evaluates the store fail point.
  bool join_presorted_day(std::span<const DnsLogEntry> dns_log,
                          std::span<const HttpLogEntry> http_log);

  std::vector<MeasurementColumns> by_day_;
  ScratchArena scratch_;
};

/// Passive production logs, aggregated per (client, front-end, day).
class PassiveLog {
 public:
  void add(PassiveLogEntry entry);

  [[nodiscard]] std::span<const PassiveLogEntry> by_day(DayIndex day) const;
  [[nodiscard]] int days() const { return static_cast<int>(by_day_.size()); }
  [[nodiscard]] std::size_t total() const;

 private:
  std::vector<std::vector<PassiveLogEntry>> by_day_;
};

}  // namespace acdn
