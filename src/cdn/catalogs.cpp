#include "cdn/catalogs.h"

#include <array>

namespace acdn {

namespace {

// Location counts quoted in §4 where the paper gives them; otherwise
// approximate public data circa 2015 (flagged approximate).
constexpr std::array<CdnCatalogEntry, 22> kCatalog = {{
    {"Google", 1000, false, false, false},
    {"Akamai", 1000, false, false, false},
    {"ChinaNetCenter", 120, false, true, true},
    {"ChinaCache", 110, false, true, true},
    {"CDNetworks", 161, false, false, false},
    {"SkyparkCDN", 119, false, false, false},
    {"Level3", 62, false, false, false},
    {"MaxCDN", 57, false, false, true},
    {"Bing (this study)", 44, true, false, false},
    {"CloudFlare", 43, true, false, false},
    {"CacheFly", 41, true, false, false},
    {"Limelight", 40, false, false, true},
    {"Internap", 39, false, false, true},
    {"Amazon CloudFront", 37, false, false, false},
    {"EdgeCast", 31, true, false, false},
    {"Incapsula", 27, true, false, true},
    {"KeyCDN", 25, false, false, true},
    {"Highwinds", 25, false, false, true},
    {"Fastly", 23, false, false, true},
    {"CDN77", 21, false, false, true},
    {"OnApp", 19, false, false, true},
    {"CDNify", 17, false, false, false},
}};

}  // namespace

std::span<const CdnCatalogEntry> cdn_catalog() { return kCatalog; }

const CdnCatalogEntry& study_cdn() {
  for (const CdnCatalogEntry& e : kCatalog) {
    if (e.name == "Bing (this study)") return e;
  }
  return kCatalog.front();  // unreachable
}

}  // namespace acdn
