// Public CDN deployment-size catalog (paper §4).
//
// The paper situates the Bing CDN among 21 CDNs and content providers with
// publicly available location data (the USC CDN coverage project), noting
// that a few dozen locations — not thousands — is the typical scale, and
// that CloudFlare, CacheFly and EdgeCast run anycast at that scale. The
// counts below reproduce the figures the paper quotes; entries the paper
// does not name individually carry approximate public counts from the same
// era and are marked `approximate`.
#pragma once

#include <span>
#include <string_view>

namespace acdn {

struct CdnCatalogEntry {
  std::string_view name;
  int locations = 0;
  bool anycast = false;
  bool china_focused = false;  // the paper treats the Chinese CDNs as outliers
  bool approximate = false;    // not individually quoted in the paper
};

/// All 21 catalog entries plus the study's own CDN ("Bing"), sorted by
/// descending location count.
[[nodiscard]] std::span<const CdnCatalogEntry> cdn_catalog();

/// Entry for the CDN under study.
[[nodiscard]] const CdnCatalogEntry& study_cdn();

}  // namespace acdn
