#include "cdn/day_plan.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/error.h"
#include "common/executor.h"
#include "common/failpoint.h"
#include "common/metrics.h"

namespace acdn {

namespace {

/// Units are few (hundreds to low thousands); a modest grain keeps the
/// chunk plan short while still amortising dispatch.
constexpr std::size_t kUnitGrain = 64;

}  // namespace

DayRoutePlan::DayRoutePlan(const CdnRouter& router,
                           std::span<const Client24> clients,
                           int max_route_alternatives,
                           double flap_traffic_share)
    : router_(&router),
      cdn_(&router.cdn()),
      flap_traffic_share_(flap_traffic_share),
      walk_cache_(router.anycast_table()) {
  require(max_route_alternatives >= 1, "max_route_alternatives must be >= 1");

  // Sorted, deduplicated (AS, metro) pairs: identical to iterating the
  // std::set World historically built, so dynamics registration order —
  // and with it the flappy-draw RNG sequence — is unchanged.
  std::vector<std::pair<AsId, MetroId>> pairs;
  pairs.reserve(clients.size());
  for (const Client24& c : clients) pairs.emplace_back(c.access_as, c.metro);
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

  units_.reserve(pairs.size());
  reg_candidates_.reserve(pairs.size());
  cand_offset_.reserve(pairs.size() + 1);
  cand_offset_.push_back(0);
  for (const auto& [as, metro] : pairs) {
    units_.push_back(RoutingUnit{as, metro});
    const std::size_t full = router_->anycast_candidate_count(as);
    reg_candidates_.push_back(std::min<std::size_t>(
        full, static_cast<std::size_t>(max_route_alternatives)));
    // At least one slot even for unreachable ASes: candidate 0 resolves
    // to the (invalid) empty-chain route once instead of every day.
    const std::size_t slots = std::max<std::size_t>(1, full);
    cand_offset_.push_back(cand_offset_.back() +
                           static_cast<std::uint32_t>(slots));
  }
  route_cache_.resize(cand_offset_.back());
  route_gen_.assign(cand_offset_.back(), 0);  // generation starts at 1

  client_unit_.assign(clients.size(), 0);
  for (const Client24& c : clients) {
    ACDN_CHECK_LT(std::size_t(c.id.value), clients.size());
    const auto it = std::lower_bound(
        pairs.begin(), pairs.end(), std::make_pair(c.access_as, c.metro));
    client_unit_[c.id.value] =
        static_cast<std::uint32_t>(it - pairs.begin());
  }
}

void DayRoutePlan::register_units(RouteDynamics& dynamics) const {
  for (std::size_t u = 0; u < units_.size(); ++u) {
    dynamics.register_unit(units_[u], reg_candidates_[u]);
  }
}

std::size_t DayRoutePlan::unit_of(const Client24& client) const {
  ACDN_CHECK_LT(std::size_t(client.id.value), client_unit_.size());
  return client_unit_[client.id.value];
}

bool DayRoutePlan::current_for(const RouteDynamics& dynamics) const {
  return built_ && built_epoch_ == dynamics.epoch() &&
         built_day_ == dynamics.current_day();
}

const DayRoute& DayRoutePlan::route_for(const Client24& client) const {
  ACDN_CHECK(day_routes_ != nullptr);
  return (*day_routes_)[unit_of(client)];
}

void DayRoutePlan::invalidate_routes() {
  walk_cache_.invalidate();
  built_ = false;
  metric_count("route_plan.invalidations");
}

const RouteResult& DayRoutePlan::cached_route(std::size_t unit_index,
                                              const RoutingUnit& unit,
                                              std::size_t candidate,
                                              std::uint64_t gen,
                                              BuildShard& shard) {
  const std::uint32_t base = cand_offset_[unit_index];
  const std::size_t slots = cand_offset_[unit_index + 1] - base;
  // Clamp exactly like BgpRouteTable::walk so cached answers match the
  // uncached reference for any requested index.
  const std::size_t k = candidate < slots ? candidate : slots - 1;
  RouteResult& entry = route_cache_[base + k];
  std::uint64_t& tag = route_gen_[base + k];
  if (tag == gen) {
    ++shard.cache_hits;
    return entry;
  }
  entry = router_->route_anycast_prewalked(walk_cache_.chain(unit.as, k),
                                           unit.metro);
  tag = gen;
  ++shard.resolves;
  return entry;
}

DayRoute DayRoutePlan::plan_unit(std::size_t unit_index,
                                 const RouteDynamics& dynamics, DayIndex day,
                                 std::uint64_t gen, BuildShard& shard) {
  const RoutingUnit& unit = units_[unit_index];
  const std::size_t selected = dynamics.selected_candidate(unit);
  DayRoute route;
  route.primary = cached_route(unit_index, unit, selected, gen, shard);

  // Front-end outage ("cdn/front_end"): when the primary's site is down
  // today, its anycast announcement is gone and BGP converges on the next
  // candidate whose site is up — evaluated once per unit, since every
  // client behind the unit sees the same convergence.
  if (fail_points_armed() && route.primary.valid &&
      !cdn_->deployment().site_up(route.primary.front_end, day)) {
    const std::size_t n = cand_offset_[unit_index + 1] -
                          cand_offset_[unit_index];
    bool rerouted = false;
    for (std::size_t k = 1; k < n && !rerouted; ++k) {
      const RouteResult& fallback =
          cached_route(unit_index, unit, (selected + k) % n, gen, shard);
      if (fallback.valid &&
          cdn_->deployment().site_up(fallback.front_end, day)) {
        route.primary = fallback;
        rerouted = true;
      }
    }
    if (rerouted) {
      ++shard.reroutes;
    } else {
      // Every candidate is down: anycast still answers somewhere, so the
      // primary serves (degraded) rather than blackholing the unit.
      ++shard.no_failover;
    }
  }

  if (const auto alt = dynamics.flap_alternate(unit)) {
    const RouteResult& alternate =
        cached_route(unit_index, unit, *alt, gen, shard);
    if (alternate.valid && alternate.front_end != route.primary.front_end &&
        (!fail_points_armed() ||
         cdn_->deployment().site_up(alternate.front_end, day))) {
      route.alternate = alternate;
      route.alternate_share = flap_traffic_share_;
    }
  }
  return route;
}

void DayRoutePlan::build(const RouteDynamics& dynamics, int threads) {
  const DayIndex day = dynamics.current_day();

  // Prime every access AS's walks serially: chain() below is then a pure
  // read from any worker. A no-op after the first build of a generation.
  for (const RoutingUnit& unit : units_) {
    if (!walk_cache_.primed(unit.as)) walk_cache_.prime(unit.as);
  }

  std::vector<DayRoute>& routes =
      arena_.raw_buffer<DayRoute>("day_plan.routes");
  routes.resize(units_.size());
  day_routes_ = &routes;

  const std::uint64_t gen = walk_cache_.generation();
  const BuildShard totals = Executor::global().parallel_reduce(
      0, units_.size(), threads, kUnitGrain, BuildShard{},
      [&](BuildShard& shard, std::size_t u) {
        routes[u] = plan_unit(u, dynamics, day, gen, shard);
      },
      [](BuildShard& acc, BuildShard&& shard) {
        acc.resolves += shard.resolves;
        acc.cache_hits += shard.cache_hits;
        acc.reroutes += shard.reroutes;
        acc.no_failover += shard.no_failover;
      });

  built_ = true;
  built_day_ = day;
  built_epoch_ = dynamics.epoch();

  metric_count("route_plan.builds");
  metric_count("route_plan.resolves", totals.resolves);
  metric_count("route_plan.cache_hits", totals.cache_hits);
  if (totals.reroutes) {
    metric_count("fault.frontend_reroutes", totals.reroutes);
  }
  if (totals.no_failover) {
    metric_count("fault.frontend_no_failover", totals.no_failover);
  }
  metric_gauge("route_plan.units", static_cast<double>(units_.size()));
  metric_gauge("route_plan.cache_entries",
               static_cast<double>(route_cache_.size()));
  metric_gauge("route_plan.walks", static_cast<double>(walk_cache_.walks()));
}

DayRoute DayRoutePlan::resolve_reference(const Client24& client,
                                         const RouteDynamics& dynamics)
    const {
  const RoutingUnit unit{client.access_as, client.metro};
  const std::size_t selected = dynamics.selected_candidate(unit);
  const DayIndex day = dynamics.current_day();
  DayRoute route;
  route.primary =
      router_->route_anycast(client.access_as, client.metro, selected);

  if (fail_points_armed() && route.primary.valid &&
      !cdn_->deployment().site_up(route.primary.front_end, day)) {
    const std::size_t n = router_->anycast_candidate_count(client.access_as);
    bool rerouted = false;
    for (std::size_t k = 1; k < n && !rerouted; ++k) {
      const RouteResult fallback = router_->route_anycast(
          client.access_as, client.metro, (selected + k) % n);
      if (fallback.valid &&
          cdn_->deployment().site_up(fallback.front_end, day)) {
        route.primary = fallback;
        rerouted = true;
      }
    }
    if (rerouted) {
      metric_count("fault.frontend_reroutes");
    } else {
      metric_count("fault.frontend_no_failover");
    }
  }

  if (const auto alt = dynamics.flap_alternate(unit)) {
    const RouteResult alternate =
        router_->route_anycast(client.access_as, client.metro, *alt);
    if (alternate.valid && alternate.front_end != route.primary.front_end &&
        (!fail_points_armed() ||
         cdn_->deployment().site_up(alternate.front_end, day))) {
      route.alternate = alternate;
      route.alternate_share = flap_traffic_share_;
    }
  }
  return route;
}

}  // namespace acdn
