// Per-day route plan: resolve each routing unit once, not each client.
//
// Anycast routing in the model is a function of the routing unit — the
// (access AS, PoP metro) pair — never of the individual client /24:
// thousands of clients behind the same unit see the same selected route,
// the same withdrawal fallback, the same outage failover and the same
// intra-day flap alternate. The per-client hot path used to re-derive all
// of that for every client every day. DayRoutePlan instead resolves every
// registered unit exactly once per simulated day into a flat, unit-indexed
// table; World::anycast_today becomes an O(1) lookup through a precomputed
// client -> unit index.
//
// Underneath sits a per-(unit, candidate) RouteResult cache fed by a
// memoized BGP walk cache (routing/walk_cache.h): base routes are
// day-invariant, so after the first build a day's plan costs one
// selected-candidate lookup per unit plus the armed-fault overlay. Cache
// entries are generation-tagged; invalidate_routes() bumps the generation
// for callers that rebuild the underlying route table.
//
// Determinism: units are enumerated in sorted (AS, metro) order — the
// exact order World used to register them — and the build shards units
// over the Executor's thread-count-independent chunk plan. Each cache
// entry belongs to exactly one unit, so the parallel build writes without
// locks and produces bit-identical plans for any thread count.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "cdn/router.h"
#include "common/arena.h"
#include "routing/dynamics.h"
#include "routing/walk_cache.h"
#include "workload/clients.h"

namespace acdn {

/// A client's anycast routing for one day: the primary route, plus the
/// alternate route and its traffic share when the client's routing unit
/// flaps today.
struct DayRoute {
  RouteResult primary;
  std::optional<RouteResult> alternate;
  double alternate_share = 0.0;
};

class DayRoutePlan {
 public:
  /// Enumerates the routing units of `clients` (sorted by (AS, metro))
  /// and sizes the route cache: one slot per (unit, anycast candidate).
  /// `clients` must have dense ids (id.value == index), as produced by
  /// ClientPopulation.
  DayRoutePlan(const CdnRouter& router, std::span<const Client24> clients,
               int max_route_alternatives, double flap_traffic_share);

  /// Registers every unit with `dynamics`, in sorted order with the same
  /// clamped candidate counts World used — the dynamics RNG draw sequence
  /// is exactly what it was when World registered units itself.
  void register_units(RouteDynamics& dynamics) const;

  /// Resolves every unit's DayRoute for the dynamics' current day.
  /// Call after RouteDynamics::advance_to; not thread-safe (one builder).
  void build(const RouteDynamics& dynamics, int threads);

  /// True when the last build() matches the dynamics' current state, i.e.
  /// route_for answers for the day the caller is about to simulate.
  [[nodiscard]] bool current_for(const RouteDynamics& dynamics) const;

  /// The plan entry for `client`'s unit. Requires a prior build(); callers
  /// guard staleness with current_for(). O(1), safe from any thread.
  [[nodiscard]] const DayRoute& route_for(const Client24& client) const;

  /// Uncached per-client resolution — the pre-plan hot path, preserved as
  /// the stale-plan fallback and as the property-test oracle. Reads only
  /// `dynamics` and the router; safe from any thread.
  [[nodiscard]] DayRoute resolve_reference(const Client24& client,
                                           const RouteDynamics& dynamics)
      const;

  /// Drops every cached base route (generation bump); the next build
  /// re-resolves. For callers that recompute the underlying route table.
  void invalidate_routes();

  [[nodiscard]] std::size_t unit_count() const { return units_.size(); }
  [[nodiscard]] std::size_t unit_of(const Client24& client) const;
  [[nodiscard]] const WalkCache& walks() const { return walk_cache_; }
  [[nodiscard]] DayIndex built_day() const { return built_day_; }

 private:
  struct BuildShard {
    std::uint64_t resolves = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t reroutes = 0;
    std::uint64_t no_failover = 0;
  };

  /// The cached base route for (`unit_index`, `candidate`), resolving on
  /// generation mismatch. Only the build chunk that owns `unit_index`
  /// may call this — entries are unit-private, so no synchronisation.
  const RouteResult& cached_route(std::size_t unit_index,
                                  const RoutingUnit& unit,
                                  std::size_t candidate, std::uint64_t gen,
                                  BuildShard& shard);

  /// One unit's DayRoute for `day`: selected candidate, armed front-end
  /// outage failover, flap alternate. The plan-build mirror of
  /// resolve_reference.
  DayRoute plan_unit(std::size_t unit_index, const RouteDynamics& dynamics,
                     DayIndex day, std::uint64_t gen, BuildShard& shard);

  const CdnRouter* router_;
  const CdnNetwork* cdn_;
  double flap_traffic_share_;

  /// Units in ascending (AS, metro) order — registration order.
  std::vector<RoutingUnit> units_;
  /// Candidate count each unit registers with dynamics (clamped by the
  /// scenario's max_route_alternatives).
  std::vector<std::size_t> reg_candidates_;
  /// Prefix offsets into route_cache_: unit u's candidate slots span
  /// [cand_offset_[u], cand_offset_[u + 1]) — one per *full* anycast
  /// candidate (failover may probe past the clamped count), min one.
  std::vector<std::uint32_t> cand_offset_;
  /// client id -> unit index.
  std::vector<std::uint32_t> client_unit_;

  WalkCache walk_cache_;
  /// Flat per-(unit, candidate) base routes with per-entry generation
  /// tags; an entry is live iff its tag equals the walk-cache generation.
  std::vector<RouteResult> route_cache_;
  std::vector<std::uint64_t> route_gen_;

  /// Per-day outputs live in the arena: same capacity every day, elements
  /// overwritten in place by each build.
  ScratchArena arena_;
  std::vector<DayRoute>* day_routes_ = nullptr;

  bool built_ = false;
  DayIndex built_day_ = 0;
  std::uint64_t built_epoch_ = 0;
};

}  // namespace acdn
