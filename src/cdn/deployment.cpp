#include "cdn/deployment.h"

#include <algorithm>
#include <set>

#include "common/error.h"
#include "common/failpoint.h"

namespace acdn {

int DeploymentConfig::count_for(Region r) const {
  switch (r) {
    case Region::kNorthAmerica: return north_america;
    case Region::kEurope:       return europe;
    case Region::kAsia:         return asia;
    case Region::kOceania:      return oceania;
    case Region::kSouthAmerica: return south_america;
    case Region::kAfrica:       return africa;
    case Region::kMiddleEast:   return middle_east;
  }
  return 0;
}

int DeploymentConfig::total() const {
  int total = 0;
  for (int r = 0; r < kNumRegions; ++r) {
    total += count_for(static_cast<Region>(r));
  }
  return total;
}

Deployment::Deployment(std::vector<FrontEndSite> sites, Prefix anycast_prefix)
    : sites_(std::move(sites)), anycast_prefix_(anycast_prefix) {
  require(!sites_.empty(), "deployment needs at least one site");
  std::set<MetroId> seen;
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    sites_[i].id = FrontEndId(static_cast<std::uint32_t>(i));
    require(seen.insert(sites_[i].metro).second,
            "two front-end sites in one metro");
    site_metros_.push_back(sites_[i].metro);
  }
}

Deployment Deployment::make_default(const MetroDatabase& metros,
                                    const DeploymentConfig& config,
                                    PrefixAllocator& addresses) {
  const Prefix anycast = addresses.allocate_slash24();
  std::vector<FrontEndSite> sites;
  for (int r = 0; r < kNumRegions; ++r) {
    const auto region = static_cast<Region>(r);
    std::vector<MetroId> in_region = metros.in_region(region);
    std::sort(in_region.begin(), in_region.end(), [&](MetroId a, MetroId b) {
      return metros.metro(a).population_millions >
             metros.metro(b).population_millions;
    });
    const int want = std::min<int>(config.count_for(region),
                                   static_cast<int>(in_region.size()));
    for (int i = 0; i < want; ++i) {
      const Metro& m = metros.metro(in_region[static_cast<std::size_t>(i)]);
      sites.push_back(FrontEndSite{FrontEndId{}, m.id, m.name,
                                   addresses.allocate_slash24()});
    }
  }
  return Deployment(std::move(sites), anycast);
}

const FrontEndSite& Deployment::site(FrontEndId id) const {
  if (!id.valid() || id.value >= sites_.size()) {
    throw NotFoundError("front-end id " + std::to_string(id.value));
  }
  return sites_[id.value];
}

std::optional<FrontEndId> Deployment::site_at(MetroId metro) const {
  for (const FrontEndSite& s : sites_) {
    if (s.metro == metro) return s.id;
  }
  return std::nullopt;
}

std::vector<FrontEndId> Deployment::nearest_sites(const MetroDatabase& metros,
                                                  const GeoPoint& p,
                                                  std::size_t k) const {
  // Site coordinates as columns, then one batch haversine from p: the
  // SIMD kernel is bit-identical per site to the scalar haversine_km(p,
  // site) this replaces, so the partial_sort order cannot change.
  std::vector<double> lat;
  std::vector<double> lon;
  lat.reserve(sites_.size());
  lon.reserve(sites_.size());
  for (const FrontEndSite& s : sites_) {
    const GeoPoint& where = metros.metro(s.metro).location;
    lat.push_back(where.lat_deg);
    lon.push_back(where.lon_deg);
  }
  std::vector<Kilometers> km(sites_.size());
  haversine_km_batch(p, lat, lon, km);

  std::vector<std::pair<Kilometers, FrontEndId>> dist;
  dist.reserve(sites_.size());
  for (const FrontEndSite& s : sites_) {
    dist.emplace_back(km[s.id.value], s.id);
  }
  const std::size_t n = std::min(k, dist.size());
  std::partial_sort(dist.begin(), dist.begin() + static_cast<long>(n),
                    dist.end());
  std::vector<FrontEndId> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(dist[i].second);
  return out;
}

std::optional<FrontEndId> Deployment::site_for_prefix(
    const Prefix& prefix) const {
  for (const FrontEndSite& s : sites_) {
    if (s.unicast_prefix == prefix) return s.id;
  }
  return std::nullopt;
}

bool Deployment::site_up(FrontEndId id, DayIndex day) const {
  static const FailPoint outage("cdn/front_end");
  return !outage.fire(day, std::uint64_t(id.value)).has_value();
}

}  // namespace acdn
