// Front-end deployment: which metros host front-ends, and their addressing.
//
// The default deployment mirrors the paper's description of the Bing CDN:
// "dozens of front end locations around the world" (§3), dense in North
// America and Europe — the scale tier of Level3 / MaxCDN in the §4
// comparison — with density chosen so that the median client-to-nearest-
// front-end distance lands near the paper's 280 km (Figure 2).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "cdn/front_end.h"
#include "common/rng.h"
#include "common/types.h"
#include "geo/metro.h"
#include "net/allocator.h"

namespace acdn {

struct DeploymentConfig {
  /// Number of front-end sites per region, assigned to the most populous
  /// metros of the region. Defaults produce ~42 sites.
  int north_america = 16;
  int europe = 13;
  int asia = 7;
  int oceania = 2;
  int south_america = 2;
  int africa = 1;
  int middle_east = 1;

  [[nodiscard]] int count_for(Region r) const;
  [[nodiscard]] int total() const;
};

class Deployment {
 public:
  Deployment(std::vector<FrontEndSite> sites, Prefix anycast_prefix);

  /// Builds the default Bing-scale deployment over `metros`, allocating the
  /// anycast /24 and one unicast /24 per site from `addresses`.
  static Deployment make_default(const MetroDatabase& metros,
                                 const DeploymentConfig& config,
                                 PrefixAllocator& addresses);

  [[nodiscard]] std::size_t size() const { return sites_.size(); }
  [[nodiscard]] std::span<const FrontEndSite> sites() const { return sites_; }
  [[nodiscard]] const FrontEndSite& site(FrontEndId id) const;
  [[nodiscard]] std::optional<FrontEndId> site_at(MetroId metro) const;
  [[nodiscard]] Prefix anycast_prefix() const { return anycast_prefix_; }

  /// All site metros (one entry per site; metros are unique per site).
  [[nodiscard]] const std::vector<MetroId>& site_metros() const {
    return site_metros_;
  }

  /// The k sites geographically closest to `p`, nearest first.
  [[nodiscard]] std::vector<FrontEndId> nearest_sites(
      const MetroDatabase& metros, const GeoPoint& p, std::size_t k) const;

  /// The site whose /24 is `prefix`, if any.
  [[nodiscard]] std::optional<FrontEndId> site_for_prefix(
      const Prefix& prefix) const;

  /// False while a "cdn/front_end" fault has this site down on `day`.
  /// The fire decision hashes (day, front-end id), so an outage covers
  /// the whole day and is seen identically by every client and every
  /// worker thread. Always true when fail points are disarmed.
  [[nodiscard]] bool site_up(FrontEndId id, DayIndex day) const;

 private:
  std::vector<FrontEndSite> sites_;
  std::vector<MetroId> site_metros_;
  Prefix anycast_prefix_;
};

}  // namespace acdn
