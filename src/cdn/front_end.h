// Front-end site: a CDN proxy location that terminates client TCP
// connections and relays to backend data centers (paper §1).
#pragma once

#include <string>

#include "common/types.h"
#include "net/ipv4.h"

namespace acdn {

struct FrontEndSite {
  FrontEndId id;
  MetroId metro;
  std::string name;  // metro name, for reports
  /// The front-end's unicast /24, announced only at the nearest peering
  /// point (paper §3.1). All front-ends also serve the shared anycast /24.
  Prefix unicast_prefix;
};

}  // namespace acdn
