#include "cdn/network.h"

#include <algorithm>

#include "common/error.h"

namespace acdn {

CdnNetwork::CdnNetwork(AsGraph& graph, Deployment deployment,
                       const CdnNetworkConfig& config, Rng& rng)
    : graph_(&graph), deployment_(std::move(deployment)) {
  const MetroDatabase& metros = graph.metros();

  // PoPs: all site metros plus the most populous non-site metros.
  presence_ = deployment_.site_metros();
  std::vector<MetroId> extras;
  for (const Metro& m : metros.all()) {
    if (!deployment_.site_at(m.id)) extras.push_back(m.id);
  }
  std::sort(extras.begin(), extras.end(), [&](MetroId a, MetroId b) {
    return metros.metro(a).population_millions >
           metros.metro(b).population_millions;
  });
  if (static_cast<int>(extras.size()) > config.extra_peering_metros) {
    extras.resize(static_cast<std::size_t>(config.extra_peering_metros));
  }
  presence_.insert(presence_.end(), extras.begin(), extras.end());
  std::sort(presence_.begin(), presence_.end());

  as_id_ = add_cdn_as(graph, presence_, config.links, rng);
  // add_cdn_as sorts/uniquifies; read back the authoritative list.
  presence_ = graph.as_node(as_id_).presence;

  // The interior WAN: a sparse fiber graph over the PoPs with Dijkstra
  // IGP costs — two nearby PoPs can be many fiber-km apart, which is what
  // makes BGP's topology-blindness (§5) a structural effect.
  backbone_ = BackboneGraph::build(metros, presence_, config.backbone, rng);

  // Each front-end's unicast /24 is announced at its own metro (always a
  // peering point, since every site metro is a PoP).
  unicast_announce_.resize(deployment_.size());
  for (const FrontEndSite& s : deployment_.sites()) {
    unicast_announce_[s.id.value] = {s.metro};
  }

  // Hot-potato interior routing: nearest front-end by IGP cost per PoP.
  for (MetroId pop : presence_) {
    FrontEndId best = deployment_.sites().front().id;
    Kilometers best_cost =
        backbone_.distance_km(pop, deployment_.site(best).metro);
    for (const FrontEndSite& s : deployment_.sites()) {
      const Kilometers cost = backbone_.distance_km(pop, s.metro);
      if (cost < best_cost) {
        best = s.id;
        best_cost = cost;
      }
    }
    nearest_fe_[pop] = best;
  }
}

const std::vector<MetroId>& CdnNetwork::unicast_announce_metros(
    FrontEndId fe) const {
  require(fe.valid() && fe.value < unicast_announce_.size(),
          "unknown front-end");
  return unicast_announce_[fe.value];
}

FrontEndId CdnNetwork::nearest_front_end(MetroId ingress) const {
  auto it = nearest_fe_.find(ingress);
  require(it != nearest_fe_.end(),
          "ingress metro is not a CDN PoP: " +
              graph_->metros().metro(ingress).name);
  return it->second;
}

Kilometers CdnNetwork::backbone_km(MetroId ingress, FrontEndId fe) const {
  return backbone_.distance_km(ingress, deployment_.site(fe).metro);
}

}  // namespace acdn
