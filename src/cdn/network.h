// The CDN's own network: one AS containing every front-end, a backbone
// connecting its PoPs, and peering with the rest of the Internet.
//
// Mirrors the paper's description (§3): all front-ends live "within the
// same Microsoft-operated autonomous system"; the anycast /24 is announced
// at every peering point, while each front-end's unicast /24 is announced
// only at the peering point closest to that front-end, "forcing traffic to
// the prefix to ingress near the front-end". Some PoPs are peering-only
// (no front-end): traffic that ingresses there rides the backbone to the
// front-end nearest the *ingress* (intradomain hot potato) — not nearest
// the client, which is one of the two §5 failure modes.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "cdn/deployment.h"
#include "common/rng.h"
#include "topology/backbone.h"
#include "topology/builder.h"

namespace acdn {

struct CdnNetworkConfig {
  CdnLinkConfig links;
  /// Peering-only PoPs (most populous metros without a front-end site).
  int extra_peering_metros = 12;
  /// The CDN's interior WAN: a sparse fiber graph, not a geodesic clique.
  BackboneConfig backbone;
};

class CdnNetwork {
 public:
  /// Adds the CDN AS to `graph` (PoPs at every site metro plus the extra
  /// peering metros) and wires its interconnection.
  CdnNetwork(AsGraph& graph, Deployment deployment,
             const CdnNetworkConfig& config, Rng& rng);

  [[nodiscard]] AsId as_id() const { return as_id_; }
  [[nodiscard]] const Deployment& deployment() const { return deployment_; }

  /// Metros at which the anycast prefix is originated: every CDN PoP.
  [[nodiscard]] const std::vector<MetroId>& anycast_announce_metros() const {
    return presence_;
  }

  /// Metros at which `fe`'s unicast /24 is originated: the site metro only.
  [[nodiscard]] const std::vector<MetroId>& unicast_announce_metros(
      FrontEndId fe) const;

  /// The front-end that intradomain (hot potato) routing reaches from an
  /// ingress PoP: lowest CDN-IGP cost, which tracks — but is not identical
  /// to — geographic proximity.
  [[nodiscard]] FrontEndId nearest_front_end(MetroId ingress) const;

  /// Backbone fiber distance (shortest path over the interior WAN) from an
  /// ingress PoP to a front-end's metro.
  [[nodiscard]] Kilometers backbone_km(MetroId ingress, FrontEndId fe) const;

  /// The interior WAN itself (for traceroute detail and diagnostics).
  [[nodiscard]] const BackboneGraph& backbone() const { return backbone_; }

  [[nodiscard]] const AsGraph& graph() const { return *graph_; }

 private:
  const AsGraph* graph_;
  AsId as_id_;
  Deployment deployment_;
  std::vector<MetroId> presence_;
  BackboneGraph backbone_;
  std::vector<std::vector<MetroId>> unicast_announce_;  // per front-end
  // NOLINT-ACDN(unordered-decl): per-metro lookups only, never iterated
  std::unordered_map<MetroId, FrontEndId> nearest_fe_;  // per PoP metro
};

}  // namespace acdn
