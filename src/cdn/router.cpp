#include "cdn/router.h"

#include "common/error.h"
#include "common/metrics.h"

namespace acdn {

CdnRouter::CdnRouter(const AsGraph& graph, const CdnNetwork& cdn)
    : cdn_(&cdn), unfolder_(graph, cdn.as_id()) {
  const BgpSimulator sim(graph, cdn.as_id());
  anycast_table_ = sim.compute(cdn.anycast_announce_metros());
  unicast_tables_.reserve(cdn.deployment().size());
  for (const FrontEndSite& s : cdn.deployment().sites()) {
    unicast_tables_.push_back(sim.compute(cdn.unicast_announce_metros(s.id)));
  }
}

RouteResult CdnRouter::route_anycast(AsId access, MetroId metro,
                                     std::size_t candidate_index) const {
  metric_count("router.anycast_lookups");
  return trace_anycast(access, metro, candidate_index).result;
}

CdnRouter::Trace CdnRouter::trace_anycast(AsId access, MetroId metro,
                                          std::size_t candidate_index) const {
  Trace trace;
  trace.path = unfolder_.unfold(access, metro, anycast_table_,
                                cdn_->anycast_announce_metros(),
                                candidate_index);
  if (!trace.path.valid) return trace;
  RouteResult& result = trace.result;
  result.valid = true;
  result.ingress_metro = trace.path.ingress_metro;
  result.front_end = cdn_->nearest_front_end(trace.path.ingress_metro);
  result.path_km = trace.path.total_km;
  result.backbone_km =
      cdn_->backbone_km(trace.path.ingress_metro, result.front_end);
  result.as_hops = trace.path.as_hops;
  return trace;
}

std::size_t CdnRouter::anycast_candidate_count(AsId access) const {
  return anycast_table_.candidates(access).size();
}

RouteResult CdnRouter::route_unicast(AsId access, MetroId metro,
                                     FrontEndId fe) const {
  metric_count("router.unicast_lookups");
  require(fe.valid() && fe.value < unicast_tables_.size(),
          "unknown front-end");
  RouteResult result;
  const auto& announce = cdn_->unicast_announce_metros(fe);
  const ForwardingPath path =
      unfolder_.unfold(access, metro, unicast_tables_[fe.value], announce);
  if (!path.valid) return result;
  result.valid = true;
  result.ingress_metro = path.ingress_metro;
  result.front_end = fe;
  result.path_km = path.total_km;
  result.backbone_km = cdn_->backbone_km(path.ingress_metro, fe);
  result.as_hops = path.as_hops;
  return result;
}

}  // namespace acdn
