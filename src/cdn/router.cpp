#include "cdn/router.h"

#include <algorithm>

#include "common/error.h"
#include "common/metrics.h"

namespace acdn {

namespace {

std::vector<MetroId> sorted_copy(std::span<const MetroId> metros) {
  std::vector<MetroId> out(metros.begin(), metros.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

CdnRouter::CdnRouter(const AsGraph& graph, const CdnNetwork& cdn)
    : cdn_(&cdn), unfolder_(graph, cdn.as_id()) {
  const BgpSimulator sim(graph, cdn.as_id());
  anycast_table_ = sim.compute(cdn.anycast_announce_metros());
  anycast_announce_sorted_ = sorted_copy(cdn.anycast_announce_metros());
  unicast_tables_.reserve(cdn.deployment().size());
  unicast_announce_sorted_.reserve(cdn.deployment().size());
  for (const FrontEndSite& s : cdn.deployment().sites()) {
    unicast_tables_.push_back(sim.compute(cdn.unicast_announce_metros(s.id)));
    unicast_announce_sorted_.push_back(
        sorted_copy(cdn.unicast_announce_metros(s.id)));
  }
}

RouteResult CdnRouter::route_anycast(AsId access, MetroId metro,
                                     std::size_t candidate_index) const {
  metric_count("router.anycast_lookups");
  return trace_anycast(access, metro, candidate_index).result;
}

CdnRouter::Trace CdnRouter::trace_anycast(AsId access, MetroId metro,
                                          std::size_t candidate_index) const {
  Trace trace;
  const std::vector<AsId> chain =
      anycast_table_.walk(access, candidate_index);
  trace.path = unfolder_.unfold_chain(chain, metro,
                                      cdn_->anycast_announce_metros(),
                                      anycast_announce_sorted_);
  if (!trace.path.valid) return trace;
  RouteResult& result = trace.result;
  result.valid = true;
  result.ingress_metro = trace.path.ingress_metro;
  result.front_end = cdn_->nearest_front_end(trace.path.ingress_metro);
  result.path_km = trace.path.total_km;
  result.backbone_km =
      cdn_->backbone_km(trace.path.ingress_metro, result.front_end);
  result.as_hops = trace.path.as_hops;
  return trace;
}

RouteResult CdnRouter::route_anycast_prewalked(std::span<const AsId> chain,
                                               MetroId metro) const {
  metric_count("router.anycast_lookups");
  RouteResult result;
  const ForwardingPath path = unfolder_.unfold_chain(
      chain, metro, cdn_->anycast_announce_metros(),
      anycast_announce_sorted_);
  if (!path.valid) return result;
  result.valid = true;
  result.ingress_metro = path.ingress_metro;
  result.front_end = cdn_->nearest_front_end(path.ingress_metro);
  result.path_km = path.total_km;
  result.backbone_km = cdn_->backbone_km(path.ingress_metro,
                                         result.front_end);
  result.as_hops = path.as_hops;
  return result;
}

std::size_t CdnRouter::anycast_candidate_count(AsId access) const {
  return anycast_table_.candidates(access).size();
}

RouteResult CdnRouter::route_unicast(AsId access, MetroId metro,
                                     FrontEndId fe) const {
  metric_count("router.unicast_lookups");
  require(fe.valid() && fe.value < unicast_tables_.size(),
          "unknown front-end");
  RouteResult result;
  const auto& announce = cdn_->unicast_announce_metros(fe);
  const std::vector<AsId> chain = unicast_tables_[fe.value].walk(access);
  const ForwardingPath path = unfolder_.unfold_chain(
      chain, metro, announce, unicast_announce_sorted_[fe.value]);
  if (!path.valid) return result;
  result.valid = true;
  result.ingress_metro = path.ingress_metro;
  result.front_end = fe;
  result.path_km = path.total_km;
  result.backbone_km = cdn_->backbone_km(path.ingress_metro, fe);
  result.as_hops = path.as_hops;
  return result;
}

}  // namespace acdn
