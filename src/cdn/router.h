// End-to-end route resolution: (access AS, client metro) -> front-end.
//
// Combines BGP-lite tables (one for the anycast prefix, one per front-end
// unicast /24) with geographic path unfolding and the CDN's intradomain hot
// potato. This is the oracle the rest of the system queries: passive logs,
// beacon measurements and the Atlas-style traceroutes all derive from the
// same routing state, exactly as they all observe the same Internet in the
// real study.
#pragma once

#include <vector>

#include "cdn/network.h"
#include "routing/bgp.h"
#include "routing/path.h"

namespace acdn {

struct RouteResult {
  bool valid = false;
  FrontEndId front_end;
  MetroId ingress_metro;    // where traffic entered the CDN
  Kilometers path_km = 0;   // client metro -> ingress, one way
  Kilometers backbone_km = 0;  // ingress -> front-end on the CDN backbone
  int as_hops = 0;

  [[nodiscard]] Kilometers total_km() const { return path_km + backbone_km; }
};

class CdnRouter {
 public:
  /// Computes the anycast table and one unicast table per front-end.
  CdnRouter(const AsGraph& graph, const CdnNetwork& cdn);

  /// Anycast route for a client behind `access` in `metro`, using the
  /// access AS's `candidate_index`-th ranked BGP route (0 = best; route
  /// dynamics select alternates over time).
  [[nodiscard]] RouteResult route_anycast(AsId access, MetroId metro,
                                          std::size_t candidate_index = 0)
      const;

  /// Number of distinct anycast route candidates at `access` — the degrees
  /// of freedom route dynamics can exercise.
  [[nodiscard]] std::size_t anycast_candidate_count(AsId access) const;

  /// Like route_anycast, but also returns the geographic path — hop-by-hop
  /// detail for traceroute emulation and diagnosis.
  struct Trace {
    RouteResult result;
    ForwardingPath path;
  };
  [[nodiscard]] Trace trace_anycast(AsId access, MetroId metro,
                                    std::size_t candidate_index = 0) const;

  /// Unicast route to front-end `fe`'s /24 (always index-0: the unicast
  /// test prefixes are stable measurement targets).
  [[nodiscard]] RouteResult route_unicast(AsId access, MetroId metro,
                                          FrontEndId fe) const;

  [[nodiscard]] const CdnNetwork& cdn() const { return *cdn_; }

 private:
  const CdnNetwork* cdn_;
  PathUnfolder unfolder_;
  BgpRouteTable anycast_table_;
  std::vector<BgpRouteTable> unicast_tables_;  // indexed by FrontEndId
};

}  // namespace acdn
