// End-to-end route resolution: (access AS, client metro) -> front-end.
//
// Combines BGP-lite tables (one for the anycast prefix, one per front-end
// unicast /24) with geographic path unfolding and the CDN's intradomain hot
// potato. This is the oracle the rest of the system queries: passive logs,
// beacon measurements and the Atlas-style traceroutes all derive from the
// same routing state, exactly as they all observe the same Internet in the
// real study.
#pragma once

#include <vector>

#include "cdn/network.h"
#include "routing/bgp.h"
#include "routing/path.h"

namespace acdn {

struct RouteResult {
  bool valid = false;
  FrontEndId front_end;
  MetroId ingress_metro;    // where traffic entered the CDN
  Kilometers path_km = 0;   // client metro -> ingress, one way
  Kilometers backbone_km = 0;  // ingress -> front-end on the CDN backbone
  int as_hops = 0;

  [[nodiscard]] Kilometers total_km() const { return path_km + backbone_km; }
};

class CdnRouter {
 public:
  /// Computes the anycast table and one unicast table per front-end.
  CdnRouter(const AsGraph& graph, const CdnNetwork& cdn);

  /// Anycast route for a client behind `access` in `metro`, using the
  /// access AS's `candidate_index`-th ranked BGP route (0 = best; route
  /// dynamics select alternates over time).
  [[nodiscard]] RouteResult route_anycast(AsId access, MetroId metro,
                                          std::size_t candidate_index = 0)
      const;

  /// Number of distinct anycast route candidates at `access` — the degrees
  /// of freedom route dynamics can exercise.
  [[nodiscard]] std::size_t anycast_candidate_count(AsId access) const;

  /// The anycast-prefix route table, for callers that memoize walks over
  /// it (routing/walk_cache.h feeding the day-route plan).
  [[nodiscard]] const BgpRouteTable& anycast_table() const {
    return anycast_table_;
  }

  /// route_anycast with the AS-level walk already done: `chain` is the
  /// anycast-table walk for the desired (access, candidate). Skips the
  /// per-call table walk and announce-set build; the result is identical
  /// to route_anycast for the same inputs. This is the day-route plan's
  /// resolution path.
  [[nodiscard]] RouteResult route_anycast_prewalked(
      std::span<const AsId> chain, MetroId metro) const;

  /// Like route_anycast, but also returns the geographic path — hop-by-hop
  /// detail for traceroute emulation and diagnosis.
  struct Trace {
    RouteResult result;
    ForwardingPath path;
  };
  [[nodiscard]] Trace trace_anycast(AsId access, MetroId metro,
                                    std::size_t candidate_index = 0) const;

  /// Unicast route to front-end `fe`'s /24 (always index-0: the unicast
  /// test prefixes are stable measurement targets).
  [[nodiscard]] RouteResult route_unicast(AsId access, MetroId metro,
                                          FrontEndId fe) const;

  [[nodiscard]] const CdnNetwork& cdn() const { return *cdn_; }

 private:
  const CdnNetwork* cdn_;
  PathUnfolder unfolder_;
  BgpRouteTable anycast_table_;
  std::vector<BgpRouteTable> unicast_tables_;  // indexed by FrontEndId
  /// Announce metros in ascending order, precomputed once per table so
  /// the unfolder's membership tests need no per-call set build.
  std::vector<MetroId> anycast_announce_sorted_;
  std::vector<std::vector<MetroId>> unicast_announce_sorted_;
};

}  // namespace acdn
