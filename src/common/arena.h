// Reusable scratch-buffer pool for per-day pipeline passes.
//
// The day loop allocates the same working vectors every day — per-client
// outputs, join shards, group-by entry tables — then frees them at day's
// end, so the allocator does the same work over and over. A ScratchArena
// keeps those vectors alive between passes: buffer<T>(id) hands back the
// same vector each day, cleared but with its capacity intact, so after a
// warm-up day the hot path allocates (almost) nothing.
//
// The arena is a pure cache: it never owns results, only scratch. Copying
// an object that holds one therefore copies no cached capacity — the copy
// starts cold and re-warms on first use.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <typeindex>
#include <utility>
#include <vector>

namespace acdn {

class ScratchArena {
 public:
  ScratchArena() = default;
  ScratchArena(const ScratchArena&) {}
  ScratchArena& operator=(const ScratchArena&) {
    slots_.clear();
    return *this;
  }
  ScratchArena(ScratchArena&&) noexcept = default;
  ScratchArena& operator=(ScratchArena&&) noexcept = default;

  /// The persistent vector<T> keyed by (T, id), cleared (size 0) with its
  /// capacity retained from prior uses.
  template <typename T>
  [[nodiscard]] std::vector<T>& buffer(std::string_view id) {
    std::vector<T>& v = raw_buffer<T>(id);
    v.clear();
    return v;
  }

  /// Same vector, but *not* cleared. For element-wise in-place reuse where
  /// clear() would destroy nested state — e.g. a vector of row structs
  /// whose member vectors must keep their own capacity; the caller resizes
  /// and resets elements in place instead.
  template <typename T>
  [[nodiscard]] std::vector<T>& raw_buffer(std::string_view id) {
    const SlotKey key{std::type_index(typeid(T)), std::string(id)};
    auto it = slots_.find(key);
    if (it == slots_.end()) {
      it = slots_.emplace(key, std::make_unique<Slot<T>>()).first;
    }
    return static_cast<Slot<T>*>(it->second.get())->v;
  }

  [[nodiscard]] std::size_t buffer_count() const { return slots_.size(); }

  /// Total reserved bytes across all buffers, shallow: nested containers
  /// inside elements are not counted. Stable capacity here after warm-up
  /// is the arena-reuse regression signal.
  [[nodiscard]] std::size_t capacity_bytes() const {
    std::size_t total = 0;
    for (const auto& [key, slot] : slots_) total += slot->capacity_bytes();
    return total;
  }

  /// Drops every buffer (memory pressure valve; next pass re-warms).
  void release() { slots_.clear(); }

 private:
  struct SlotBase {
    virtual ~SlotBase() = default;
    [[nodiscard]] virtual std::size_t capacity_bytes() const = 0;
  };
  template <typename T>
  struct Slot final : SlotBase {
    std::vector<T> v;
    [[nodiscard]] std::size_t capacity_bytes() const override {
      return v.capacity() * sizeof(T);
    }
  };

  using SlotKey = std::pair<std::type_index, std::string>;
  std::map<SlotKey, std::unique_ptr<SlotBase>> slots_;
};

}  // namespace acdn
