// Reusable scratch-buffer pool for per-day pipeline passes.
//
// The day loop allocates the same working vectors every day — per-client
// outputs, join shards, group-by entry tables — then frees them at day's
// end, so the allocator does the same work over and over. A ScratchArena
// keeps those vectors alive between passes: buffer<T>(id) hands back the
// same vector each day, cleared but with its capacity intact, so after a
// warm-up day the hot path allocates (almost) nothing.
//
// The arena is a pure cache: it never owns results, only scratch. Copying
// an object that holds one therefore copies no cached capacity — the copy
// starts cold and re-warms on first use.
//
// Aliasing guard. A slot handed out twice is two passes scribbling over
// one vector — exactly the failure mode the cross-day pipeline would hit
// if two overlapping days shared an arena. Passes that hold a slot across
// a scope therefore take it as a lease<T>(id): the slot is flagged
// in-use until the ArenaLease drops, and every acquisition (leased or
// plain) of an in-use slot fails an ACDN_DCHECK instead of silently
// aliasing. The arena stays single-threaded; the lease flag is a
// programming-contract check, not a synchronization primitive — the
// pipeline gives every in-flight day its own arena.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <typeindex>
#include <utility>
#include <vector>

#include "common/check.h"

namespace acdn {

/// RAII slot lease: holds the keyed vector exclusively until destruction
/// (ScratchArena::lease / lease_raw). Movable, not copyable.
template <typename T>
class ArenaLease {
 public:
  ArenaLease(ArenaLease&& other) noexcept
      : v_(other.v_), in_use_(other.in_use_) {
    other.v_ = nullptr;
    other.in_use_ = nullptr;
  }
  ArenaLease& operator=(ArenaLease&& other) noexcept {
    if (this != &other) {
      release();
      v_ = other.v_;
      in_use_ = other.in_use_;
      other.v_ = nullptr;
      other.in_use_ = nullptr;
    }
    return *this;
  }
  ArenaLease(const ArenaLease&) = delete;
  ArenaLease& operator=(const ArenaLease&) = delete;
  ~ArenaLease() { release(); }

  [[nodiscard]] std::vector<T>& operator*() const { return *v_; }
  [[nodiscard]] std::vector<T>* operator->() const { return v_; }
  [[nodiscard]] std::vector<T>& get() const { return *v_; }

 private:
  friend class ScratchArena;
  ArenaLease(std::vector<T>* v, bool* in_use) : v_(v), in_use_(in_use) {}
  void release() {
    if (in_use_ != nullptr) *in_use_ = false;
    in_use_ = nullptr;
    v_ = nullptr;
  }

  std::vector<T>* v_ = nullptr;
  bool* in_use_ = nullptr;
};

class ScratchArena {
 public:
  ScratchArena() = default;
  ScratchArena(const ScratchArena&) {}
  ScratchArena& operator=(const ScratchArena&) {
    slots_.clear();
    return *this;
  }
  ScratchArena(ScratchArena&&) noexcept = default;
  ScratchArena& operator=(ScratchArena&&) noexcept = default;

  /// The persistent vector<T> keyed by (T, id), cleared (size 0) with its
  /// capacity retained from prior uses. Fails an ACDN_DCHECK when the
  /// slot is currently leased.
  template <typename T>
  [[nodiscard]] std::vector<T>& buffer(std::string_view id) {
    std::vector<T>& v = raw_buffer<T>(id);
    v.clear();
    return v;
  }

  /// Same vector, but *not* cleared. For element-wise in-place reuse where
  /// clear() would destroy nested state — e.g. a vector of row structs
  /// whose member vectors must keep their own capacity; the caller resizes
  /// and resets elements in place instead.
  template <typename T>
  [[nodiscard]] std::vector<T>& raw_buffer(std::string_view id) {
    Slot<T>& slot = slot_for<T>(id);
    ACDN_DCHECK(!slot.in_use)
        << "arena slot \"" << std::string(id) << "\" acquired while leased";
    return slot.v;
  }

  /// Exclusive cleared slot: like buffer(), but the slot stays flagged
  /// in-use until the returned lease drops, and any re-acquisition in
  /// between fails an ACDN_DCHECK. Passes that hold arena scratch across
  /// a scope (the join, the day driver) take this form so a concurrently
  /// scheduled pass can never silently alias the same vector.
  template <typename T>
  [[nodiscard]] ArenaLease<T> lease(std::string_view id) {
    ArenaLease<T> out = lease_raw<T>(id);
    out->clear();
    return out;
  }

  /// Exclusive slot without the clear (raw_buffer's in-place-reuse
  /// semantics, lease-guarded).
  template <typename T>
  [[nodiscard]] ArenaLease<T> lease_raw(std::string_view id) {
    Slot<T>& slot = slot_for<T>(id);
    ACDN_DCHECK(!slot.in_use)
        << "arena slot \"" << std::string(id) << "\" leased twice";
    slot.in_use = true;
    return ArenaLease<T>(&slot.v, &slot.in_use);
  }

  [[nodiscard]] std::size_t buffer_count() const { return slots_.size(); }

  /// Total reserved bytes across all buffers, shallow: nested containers
  /// inside elements are not counted. Stable capacity here after warm-up
  /// is the arena-reuse regression signal.
  [[nodiscard]] std::size_t capacity_bytes() const {
    std::size_t total = 0;
    for (const auto& [key, slot] : slots_) total += slot->capacity_bytes();
    return total;
  }

  /// Drops every buffer (memory pressure valve; next pass re-warms).
  /// Must not be called while any slot is leased.
  void release() {
#if ACDN_DCHECK_ENABLED
    for (const auto& [key, slot] : slots_) {
      ACDN_DCHECK(!slot->in_use) << "arena released while a slot is leased";
    }
#endif
    slots_.clear();
  }

 private:
  struct SlotBase {
    virtual ~SlotBase() = default;
    [[nodiscard]] virtual std::size_t capacity_bytes() const = 0;
    /// Lease flag lives in the base so release() can audit without
    /// knowing element types. Slot addresses are stable (unique_ptr in
    /// the map), which is what lets ArenaLease hold plain pointers.
    bool in_use = false;
  };
  template <typename T>
  struct Slot final : SlotBase {
    std::vector<T> v;
    [[nodiscard]] std::size_t capacity_bytes() const override {
      return v.capacity() * sizeof(T);
    }
  };

  template <typename T>
  [[nodiscard]] Slot<T>& slot_for(std::string_view id) {
    const SlotKey key{std::type_index(typeid(T)), std::string(id)};
    auto it = slots_.find(key);
    if (it == slots_.end()) {
      it = slots_.emplace(key, std::make_unique<Slot<T>>()).first;
    }
    return *static_cast<Slot<T>*>(it->second.get());
  }

  using SlotKey = std::pair<std::type_index, std::string>;
  std::map<SlotKey, std::unique_ptr<SlotBase>> slots_;
};

}  // namespace acdn
