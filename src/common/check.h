// Contract-check macros for internal invariants.
//
// Policy (see docs/ARCHITECTURE.md, "Correctness tooling"): `require()`
// from common/error.h guards *API misuse and configuration* and throws a
// catchable exception; ACDN_CHECK guards *internal invariants* whose
// violation means the library itself is wrong, so it prints the failed
// condition with context and aborts — an invalid state must never leak
// into exported CSVs/SVGs. ACDN_DCHECK is for invariants too hot to test
// in release: it compiles out under NDEBUG (the condition is not
// evaluated) but is fatal in debug and in every sanitizer build
// (ACDN_SANITIZE=thread/address/undefined defines ACDN_SANITIZERS_ENABLED),
// so the tsan/asan/ubsan CI legs run the full contract wall.
//
// Both macros accept a streamed message with formatted operands:
//
//   ACDN_CHECK(route.valid) << "client " << c.id.value;
//   ACDN_CHECK_LT(fe.value, deployment.size()) << "while folding shard";
//
// The _EQ/_NE/_LT/_LE/_GT/_GE forms print both operand values on failure.
// Failure output goes to stderr as
//   "file:line: ACDN_CHECK failed: cond (a vs b) — message"
// and the process aborts (std::abort), which death tests match on.
#pragma once

#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>

#if !defined(NDEBUG) || defined(ACDN_SANITIZERS_ENABLED)
#define ACDN_DCHECK_ENABLED 1
#else
#define ACDN_DCHECK_ENABLED 0
#endif

namespace acdn::detail {

/// Collects the streamed failure message; aborting happens in the
/// destructor so the macro expression can keep accepting `<<` operands.
class CheckFailure {
 public:
  CheckFailure(const char* macro, const char* condition, const char* file,
               int line) {
    stream_ << file << ":" << line << ": " << macro
            << " failed: " << condition;
  }

  /// Variant carrying pre-formatted operand values from the _OP macros.
  CheckFailure(const char* macro, const std::string& condition,
               const char* file, int line) {
    stream_ << file << ":" << line << ": " << macro
            << " failed: " << condition;
  }

  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  template <typename T>
  CheckFailure& operator<<(const T& v) {
    if (!message_started_) {
      stream_ << " — ";
      message_started_ = true;
    }
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
  bool message_started_ = false;
};

/// Lower-precedence-than-<< sink so ACDN_CHECK can be a void expression.
struct CheckVoidify {
  void operator&(const CheckFailure&) const {}
};

/// Swallows streamed operands of a compiled-out ACDN_DCHECK.
struct NullStream {
  template <typename T>
  const NullStream& operator<<(const T&) const {
    return *this;
  }
};

/// One comparison-check implementation per operator: returns nullptr on
/// success, otherwise the formatted "a op b (x vs y)" text. Operands are
/// evaluated exactly once.
#define ACDN_DETAIL_DEFINE_CHECK_OP(name, op)                              \
  template <typename A, typename B>                                       \
  std::unique_ptr<std::string> Check##name##Impl(                          \
      const A& a, const B& b, const char* expr) {                          \
    if (a op b) return nullptr;                                            \
    std::ostringstream os;                                                 \
    os << expr << " (" << a << " vs " << b << ")";                         \
    return std::make_unique<std::string>(os.str());                        \
  }

ACDN_DETAIL_DEFINE_CHECK_OP(EQ, ==)
ACDN_DETAIL_DEFINE_CHECK_OP(NE, !=)
ACDN_DETAIL_DEFINE_CHECK_OP(LT, <)
ACDN_DETAIL_DEFINE_CHECK_OP(LE, <=)
ACDN_DETAIL_DEFINE_CHECK_OP(GT, >)
ACDN_DETAIL_DEFINE_CHECK_OP(GE, >=)
#undef ACDN_DETAIL_DEFINE_CHECK_OP

}  // namespace acdn::detail

// Always-on invariant check. Cheap on the success path: one predicted
// branch; the failure machinery is only constructed when the condition is
// false.
#define ACDN_CHECK(condition)                                              \
  (__builtin_expect(static_cast<bool>(condition), 1))                      \
      ? (void)0                                                            \
      : ::acdn::detail::CheckVoidify() &                                   \
            ::acdn::detail::CheckFailure("ACDN_CHECK", #condition,         \
                                         __FILE__, __LINE__)

// Comparison checks that report both operand values. The `while` runs at
// most once: CheckFailure aborts in its destructor.
#define ACDN_CHECK_OP_(name, op, a, b)                                     \
  while (std::unique_ptr<std::string> acdn_check_msg_ =                    \
             ::acdn::detail::Check##name##Impl((a), (b),                   \
                                               #a " " #op " " #b))         \
  ::acdn::detail::CheckFailure("ACDN_CHECK_" #name, *acdn_check_msg_,      \
                               __FILE__, __LINE__)

#define ACDN_CHECK_EQ(a, b) ACDN_CHECK_OP_(EQ, ==, a, b)
#define ACDN_CHECK_NE(a, b) ACDN_CHECK_OP_(NE, !=, a, b)
#define ACDN_CHECK_LT(a, b) ACDN_CHECK_OP_(LT, <, a, b)
#define ACDN_CHECK_LE(a, b) ACDN_CHECK_OP_(LE, <=, a, b)
#define ACDN_CHECK_GT(a, b) ACDN_CHECK_OP_(GT, >, a, b)
#define ACDN_CHECK_GE(a, b) ACDN_CHECK_OP_(GE, >=, a, b)

// Debug/sanitizer-only checks. When disabled the condition is parsed and
// name-checked but never evaluated (`false && ...` short-circuits), so a
// DCHECK can never slow down or perturb a release run.
#if ACDN_DCHECK_ENABLED
#define ACDN_DCHECK(condition) ACDN_CHECK(condition)
#define ACDN_DCHECK_EQ(a, b) ACDN_CHECK_EQ(a, b)
#define ACDN_DCHECK_NE(a, b) ACDN_CHECK_NE(a, b)
#define ACDN_DCHECK_LT(a, b) ACDN_CHECK_LT(a, b)
#define ACDN_DCHECK_LE(a, b) ACDN_CHECK_LE(a, b)
#define ACDN_DCHECK_GT(a, b) ACDN_CHECK_GT(a, b)
#define ACDN_DCHECK_GE(a, b) ACDN_CHECK_GE(a, b)
#else
#define ACDN_DCHECK(condition)                                             \
  while (false && static_cast<bool>(condition)) ::acdn::detail::NullStream()
#define ACDN_DCHECK_OP_(op, a, b)                                          \
  while (false && ((a)op(b))) ::acdn::detail::NullStream()
#define ACDN_DCHECK_EQ(a, b) ACDN_DCHECK_OP_(==, a, b)
#define ACDN_DCHECK_NE(a, b) ACDN_DCHECK_OP_(!=, a, b)
#define ACDN_DCHECK_LT(a, b) ACDN_DCHECK_OP_(<, a, b)
#define ACDN_DCHECK_LE(a, b) ACDN_DCHECK_OP_(<=, a, b)
#define ACDN_DCHECK_GT(a, b) ACDN_DCHECK_OP_(>, a, b)
#define ACDN_DCHECK_GE(a, b) ACDN_DCHECK_OP_(>=, a, b)
#endif
