// Parallelism cost model: when fanning out costs more than it saves.
//
// Every parallel primitive in the library is deterministic — results are
// bit-identical for any thread count — so the *only* question a call site
// has to answer is economic: does splitting this input across lanes beat
// running it serially? The committed BENCH_pipeline.json answered "no"
// for every stage at every scale we ship: the sharded join regressed
// 16.83 → 60.81 ns/row from 1 to 4 threads because shard count was
// derived from the thread count (each shard re-scanned the full log and
// the fold paid a per-row k-way merge), and the chunk+merge-tree sorts
// pay a full extra pass per merge level, which only amortizes on inputs
// far larger than the per-day columns.
//
// The rules here fix that at the root:
//   * lane counts derive from the input size (rows per lane floors,
//     calibrated by bench_micro_substrate), never from the thread count;
//   * the thread count and the physical core count only *cap* the lanes —
//     asking for 4 threads on a small input, or on a 1-core host, takes
//     the exact serial fast path 1 thread takes.
// Consequently an N-thread run executes the same code path as a 1-thread
// run everywhere parallelism cannot pay, which is what makes the
// perf_gate scaling invariant ("4-thread ns/row never worse than
// 1-thread") hold by construction.
#pragma once

#include <algorithm>
#include <cstddef>

#include "common/executor.h"

namespace acdn {

/// Minimum log rows (DNS + HTTP) per join shard. Below one full shard the
/// sort-merge join runs single-sharded and hits the presorted
/// straight-into-columns fast path; the staging copy only amortizes once
/// a shard carries tens of thousands of rows (bench_micro_substrate's
/// join-stage calibration: the per-shard fixed cost — staging columns,
/// boundary search, fold — is ~1 ms paid back at ≈4 ns/row).
inline constexpr std::size_t kJoinMinRowsPerShard = std::size_t{1} << 16;

/// Minimum keys before the radix sort fans out. The parallel variant
/// (chunk LSD sorts + pairwise stable merge tree) does up to one extra
/// full pass per merge level, so it needs both real concurrency and a
/// large input to win; the committed aggregate sweep (28.62 → 35.54
/// ns/row at 287k rows) sat squarely below this crossover.
inline constexpr std::size_t kRadixParallelMinKeys = std::size_t{1} << 20;

/// Minimum elements before parallel_sort's chunk+merge tree fans out.
/// std::inplace_merge re-touches every element per level, the same
/// economics as the radix merge tree.
inline constexpr std::size_t kSortParallelMinRows = std::size_t{1} << 20;

/// Lane count for an `rows`-element input: the input size sets the lanes
/// (one per `min_rows_per_lane` floor), the requested thread count and
/// the physical core count cap them. Returns at least 1; a return of 1
/// means "take the serial fast path".
[[nodiscard]] inline int plan_parallelism(std::size_t rows,
                                          std::size_t min_rows_per_lane,
                                          int threads) {
  if (threads <= 1 || rows < 2 * std::max<std::size_t>(1, min_rows_per_lane)) {
    return 1;
  }
  const std::size_t by_size = rows / std::max<std::size_t>(1, min_rows_per_lane);
  const std::size_t by_caller = static_cast<std::size_t>(threads);
  const std::size_t by_hardware =
      static_cast<std::size_t>(default_thread_count());
  return static_cast<int>(std::min({by_size, by_caller, by_hardware}));
}

}  // namespace acdn
