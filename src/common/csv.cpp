#include "common/csv.h"

#include <charconv>

#include "common/error.h"
#include "common/failpoint.h"

namespace acdn {

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path) {
  if (!out_) throw Error("csv: cannot open " + path);
  // Injected I/O error ("csv/write", kind error): simulates EIO/ENOSPC at
  // open. Export code runs outside the day loop, so the fire decision is
  // keyed by the output path at day 0 — a schedule window must cover day
  // 0 to arm it.
  static const FailPoint write_fault("csv/write");
  if (const auto fault = write_fault.fire(0, fault_coordinate(path))) {
    if (fault->kind == FaultKind::kError) {
      throw Error("csv: injected write failure: " + path);
    }
  }
}

void CsvWriter::write_field(std::string_view field, bool first) {
  if (!first) out_ << ',';
  const bool needs_quote =
      field.find_first_of(",\"\n") != std::string_view::npos;
  if (!needs_quote) {
    out_ << field;
    return;
  }
  out_ << '"';
  for (char c : field) {
    if (c == '"') out_ << '"';
    out_ << c;
  }
  out_ << '"';
}

void CsvWriter::check_stream() const {
  if (!out_) throw Error("csv: write failed (disk full?): " + path_);
}

void CsvWriter::flush() {
  out_.flush();
  check_stream();
}

void CsvWriter::write_row(std::span<const std::string> fields) {
  bool first = true;
  for (const auto& f : fields) {
    write_field(f, first);
    first = false;
  }
  out_ << '\n';
  check_stream();
}

void CsvWriter::write_row(std::initializer_list<std::string_view> fields) {
  bool first = true;
  for (auto f : fields) {
    write_field(f, first);
    first = false;
  }
  out_ << '\n';
  check_stream();
}

std::string CsvWriter::format_double(double v) {
  // Shortest representation that round-trips exactly, so exported data
  // re-imports bit-identical.
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  if (ec != std::errc{}) return "nan";
  return std::string(buf, ptr);
}

void CsvWriter::write_row(std::span<const double> values) {
  bool first = true;
  for (double v : values) {
    write_field(format_double(v), first);
    first = false;
  }
  out_ << '\n';
  check_stream();
}

}  // namespace acdn
