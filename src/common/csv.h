// Minimal CSV writer used by the bench harnesses to export figure data.
#pragma once

#include <fstream>
#include <initializer_list>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace acdn {

/// Writes RFC-4180-ish CSV. Fields containing separators or quotes are
/// quoted; numeric overloads format with full round-trip precision.
///
/// Write failures are not silent: every write_row checks the stream and
/// throws acdn::Error naming the path, and flush() forces buffered data
/// to the OS so a full disk surfaces as an exception instead of a
/// truncated figure CSV under a success exit. Callers that finish a file
/// should call flush() (the destructor cannot throw, so it can only
/// best-effort close).
class CsvWriter {
 public:
  /// Opens `path` for writing, truncating any existing file. Throws
  /// acdn::Error if the file cannot be opened.
  explicit CsvWriter(const std::string& path);

  void write_row(std::span<const std::string> fields);
  void write_row(std::initializer_list<std::string_view> fields);

  /// Header then rows of doubles — the common shape for figure series.
  void write_header(std::initializer_list<std::string_view> names) {
    write_row(names);
  }
  void write_row(std::span<const double> values);

  /// Flushes buffered rows and throws acdn::Error if any write failed.
  void flush();

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  void write_field(std::string_view field, bool first);
  void check_stream() const;
  static std::string format_double(double v);

  std::string path_;
  std::ofstream out_;
};

}  // namespace acdn
