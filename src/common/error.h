// Library error types. Errors that indicate programmer misuse of the API
// throw; expected runtime conditions are reported through return values
// (std::optional or status enums) per the Core Guidelines (E.2, E.14).
#pragma once

#include <stdexcept>
#include <string>

namespace acdn {

/// Base class for all library exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a configuration value is out of its documented domain.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error("config: " + what) {}
};

/// Thrown on lookup of an identifier that does not exist in a registry.
class NotFoundError : public Error {
 public:
  explicit NotFoundError(const std::string& what)
      : Error("not found: " + what) {}
};

/// Throws ConfigError if `ok` is false. Use for validating scenario knobs.
inline void require(bool ok, const std::string& message) {
  if (!ok) throw ConfigError(message);
}

}  // namespace acdn
