#include "common/executor.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <limits>

#include "common/check.h"
#include "common/metrics.h"
#include "common/thread_annotations.h"

namespace acdn {

namespace {

/// Upper bound on chunks per batch: enough for stealing to balance a
/// heavy-tailed range across every core, few enough that per-chunk queue
/// traffic stays negligible.
constexpr std::size_t kMaxChunksPerBatch = 64;

}  // namespace

/// One submitted range. Lives on the submitting thread's stack for the
/// duration of run_chunked. The completion count is guarded by `m` (not
/// an atomic): the finishing executor decrements and notifies while
/// holding `m`, so the submitter cannot observe zero, return, and destroy
/// the batch while a worker still touches it.
struct Executor::Batch {
  const ChunkFn* fn = nullptr;
  /// Set on first failure; later chunks of the batch are skipped.
  std::atomic<bool> failed{false};
  /// Worker indices [stripe_base, stripe_base + stripe_size) mod pool
  /// size may execute this batch; the submitter always may. Tasks are
  /// only ever pushed to stripe members' deques.
  std::size_t stripe_base = 0;
  std::size_t stripe_size = 0;

  Mutex m;
  /// condition_variable_any: it waits on the relockable MutexLock, so
  /// the acquire/release cycle stays visible to -Wthread-safety.
  std::condition_variable_any done;
  std::size_t pending ACDN_GUARDED_BY(m) = 0;
  std::exception_ptr error ACDN_GUARDED_BY(m);
  std::size_t error_chunk ACDN_GUARDED_BY(m) =
      std::numeric_limits<std::size_t>::max();

  [[nodiscard]] bool allows(std::size_t worker_index,
                            std::size_t pool_size) const {
    return (worker_index + pool_size - stripe_base) % pool_size <
           stripe_size;
  }
};

struct Executor::Task {
  Batch* batch = nullptr;
  std::size_t chunk = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Heap twin of the stack Batch for asynchronous submission: the handle
/// and the pool share ownership through the TaskHandle's shared_ptr (the
/// pool side only ever holds the raw Batch* inside a queued Task, and the
/// handle cannot release the State before pending hits zero — its
/// destructor waits — so the Task's pointer never dangles).
struct TaskHandle::State {
  Executor::Batch batch;
  Executor::ChunkFn fn;
};

TaskHandle::~TaskHandle() { wait_no_throw(); }

TaskHandle& TaskHandle::operator=(TaskHandle&& other) noexcept {
  if (this != &other) {
    wait_no_throw();
    state_ = std::move(other.state_);
  }
  return *this;
}

void TaskHandle::wait_no_throw() noexcept {
  if (!state_) return;
  Executor::Batch& batch = state_->batch;
  MutexLock lk(batch.m);
  while (batch.pending != 0) batch.done.wait(lk);
}

void TaskHandle::join() {
  if (!state_) return;
  const std::shared_ptr<State> state = std::move(state_);
  Executor::Batch& batch = state->batch;
  std::exception_ptr error;
  {
    MutexLock lk(batch.m);
    while (batch.pending != 0) batch.done.wait(lk);
    error = batch.error;
  }
  if (error) std::rethrow_exception(error);
}

struct Executor::Worker {
  Mutex m;
  /// Holds only tasks this worker is allowed to run (stripe invariant).
  std::deque<Task> tasks ACDN_GUARDED_BY(m);
  std::condition_variable_any wake;
  bool stop ACDN_GUARDED_BY(m) = false;
};

Executor::Executor(int threads) {
  const std::size_t n = static_cast<std::size_t>(std::max(1, threads));
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

Executor::~Executor() {
  // All run_chunked calls are blocking, so no batch is outstanding here;
  // the deques are empty and workers are either asleep or between tasks.
  for (auto& w : workers_) {
    MutexLock lk(w->m);
    w->stop = true;
    w->wake.notify_all();
  }
  for (std::thread& t : threads_) t.join();
}

Executor& Executor::global() {
  static Executor pool(default_thread_count());
  return pool;
}

Executor::ChunkPlan Executor::plan_chunks(std::size_t n,
                                          std::size_t grain) {
  ChunkPlan plan;
  if (n == 0) return plan;
  const std::size_t floor = std::max<std::size_t>(1, grain);
  plan.chunk_size =
      std::max(floor, (n + kMaxChunksPerBatch - 1) / kMaxChunksPerBatch);
  plan.chunks = (n + plan.chunk_size - 1) / plan.chunk_size;
  // The plan is the unit of determinism: every reduction folds exactly
  // `chunks` shards, and the chunks must tile [0, n) with no gap.
  ACDN_DCHECK_GT(plan.chunk_size, 0u);
  ACDN_DCHECK_GE(plan.chunks * plan.chunk_size, n)
      << "chunk plan does not cover the range";
  ACDN_DCHECK_LT((plan.chunks - 1) * plan.chunk_size, n)
      << "chunk plan has an empty trailing chunk";
  return plan;
}

bool Executor::try_pop_own(std::size_t index, Task& out) {
  Worker& w = *workers_[index];
  MutexLock lk(w.m);
  if (w.tasks.empty()) return false;
  // Newest first: LIFO on the own deque keeps the working set warm.
  out = w.tasks.back();
  w.tasks.pop_back();
  return true;
}

bool Executor::try_steal(std::size_t index, Task& out) {
  const std::size_t n = workers_.size();
  for (std::size_t hop = 1; hop < n; ++hop) {
    Worker& victim = *workers_[(index + hop) % n];
    MutexLock lk(victim.m);
    // Oldest first: FIFO steals take the largest untouched stretch of the
    // victim's range. Only tasks whose stripe admits this worker.
    for (auto it = victim.tasks.begin(); it != victim.tasks.end(); ++it) {
      if (!it->batch->allows(index, n)) continue;
      out = *it;
      victim.tasks.erase(it);
      metric_count("executor.steals");
      return true;
    }
  }
  return false;
}

bool Executor::try_take_for_batch(Batch* batch, Task& out) {
  for (auto& wp : workers_) {
    Worker& w = *wp;
    MutexLock lk(w.m);
    for (auto it = w.tasks.begin(); it != w.tasks.end(); ++it) {
      if (it->batch != batch) continue;
      out = *it;
      w.tasks.erase(it);
      return true;
    }
  }
  return false;
}

void Executor::execute(const Task& task) {
  metric_count("executor.tasks");
  Batch& batch = *task.batch;
  if (!batch.failed.load(std::memory_order_acquire)) {
    try {
      (*batch.fn)(task.chunk, task.begin, task.end);
    } catch (...) {
      batch.failed.store(true, std::memory_order_release);
      MutexLock lk(batch.m);
      // Keep the exception of the lowest-indexed throwing chunk so the
      // surfaced error does not depend on scheduling more than it must.
      if (task.chunk < batch.error_chunk) {
        batch.error_chunk = task.chunk;
        batch.error = std::current_exception();
      }
    }
  }
  MutexLock lk(batch.m);
  if (--batch.pending == 0) batch.done.notify_all();
}

void Executor::worker_main(std::size_t index) {
  Worker& self = *workers_[index];
  for (;;) {
    Task task;
    if (try_pop_own(index, task) || try_steal(index, task)) {
      execute(task);
      continue;
    }
    MutexLock lk(self.m);
    // Sleep until a task lands in the own deque. Stealable work elsewhere
    // always comes with a notify to at least one stripe member, and a
    // member with an empty deque re-scans for steals before sleeping.
    // Explicit loop (not the predicate overload): the predicate lambda
    // would read guarded members from an unannotated context.
    while (!self.stop && self.tasks.empty()) self.wake.wait(lk);
    if (self.stop) return;
  }
}

TaskHandle Executor::submit(std::function<void()> fn) {
  auto state = std::make_shared<TaskHandle::State>();
  state->fn = [body = std::move(fn)](std::size_t, std::size_t, std::size_t) {
    body();
  };
  Batch& batch = state->batch;
  batch.fn = &state->fn;
  {
    // Not yet published; see run_chunked for why the lock stays anyway.
    MutexLock lk(batch.m);
    batch.pending = 1;
  }
  // Every worker may run (or steal) an async task — the stripe covers the
  // whole pool. The submitting thread does not participate: the point of
  // submit() is that the caller keeps doing other (serial) work.
  batch.stripe_base = 0;
  batch.stripe_size = workers_.size();
  static std::atomic<std::size_t> rotor{0};
  const std::size_t pool = workers_.size();
  Worker& w = *workers_[rotor.fetch_add(1, std::memory_order_relaxed) % pool];
  {
    MutexLock lk(w.m);
    w.tasks.push_back(Task{&batch, 0, 0, 1});
    w.wake.notify_one();
  }
  metric_count("executor.async_tasks");
  return TaskHandle(std::move(state));
}

void Executor::run_chunked(std::size_t begin, std::size_t end,
                           int parallelism, std::size_t grain,
                           const ChunkFn& fn) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  const ChunkPlan plan = plan_chunks(n, grain);

  const std::size_t pool = workers_.size();
  const std::size_t helpers = std::min<std::size_t>(
      pool, static_cast<std::size_t>(std::max(1, parallelism)) - 1);
  metric_count("executor.batches");
  metric_observe("executor.batch_chunks", double(plan.chunks));
  if (helpers == 0 || plan.chunks == 1) {
    // Serial fast path: the identical chunk plan, executed inline in
    // chunk order — bit-identical to the pooled path by construction.
    metric_count("executor.tasks", plan.chunks);
    for (std::size_t c = 0; c < plan.chunks; ++c) {
      const std::size_t b = begin + c * plan.chunk_size;
      ACDN_DCHECK_LT(b, end) << "serial chunk starts past the range";
      fn(c, b, std::min(end, b + plan.chunk_size));
    }
    return;
  }

  Batch batch;
  batch.fn = &fn;
  {
    // Not yet published to any worker, but the analysis (rightly) cannot
    // prove that — and an uncontended lock here is one atomic op.
    MutexLock lk(batch.m);
    batch.pending = plan.chunks;
  }
  // Stripe the batch across `helpers` consecutive deques; rotate the base
  // per submission so repeated small batches spread over the pool. The
  // stripe caps which workers may run the batch, honoring `parallelism`
  // (helpers workers + the submitting thread).
  static std::atomic<std::size_t> rotor{0};
  batch.stripe_base = rotor.fetch_add(1, std::memory_order_relaxed) % pool;
  batch.stripe_size = helpers;

  // One lock + one wake per stripe member: push all of a worker's chunks
  // in a single critical section rather than locking per chunk. The tasks
  // already queued on the stripe (from concurrent or nested batches) are
  // summed in passing — a free queue-depth sample at submit time.
  std::size_t queued_before = 0;
  for (std::size_t h = 0; h < helpers; ++h) {
    Worker& w = *workers_[(batch.stripe_base + h) % pool];
    MutexLock lk(w.m);
    queued_before += w.tasks.size();
    for (std::size_t c = h; c < plan.chunks; c += helpers) {
      const std::size_t b = begin + c * plan.chunk_size;
      ACDN_DCHECK_LT(b, end) << "queued chunk starts past the range";
      w.tasks.push_back(
          Task{&batch, c, b, std::min(end, b + plan.chunk_size)});
    }
    w.wake.notify_one();
  }
  metric_observe("executor.queue_depth", double(queued_before));

  // The submitter works too: drain this batch's chunks (stealing them
  // back from worker deques), then sleep until the in-flight remainder
  // lands. Draining our own batch is what makes nested submission safe —
  // progress never depends on another worker being free.
  for (;;) {
    Task task;
    if (try_take_for_batch(&batch, task)) {
      execute(task);
      continue;
    }
    MutexLock lk(batch.m);
    while (batch.pending != 0) batch.done.wait(lk);
    break;
  }
  std::exception_ptr error;
  {
    MutexLock lk(batch.m);
    error = batch.error;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace acdn
