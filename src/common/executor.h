// Persistent work-stealing execution engine.
//
// Every parallel pass in the library — the simulation day loop, the
// DNS×HTTP log join, predictor training, evaluation, and the catchment /
// figure analyses — runs on one process-wide pool of OS threads instead
// of spawning and joining a fresh std::thread set per call. Workers are
// created once (Executor::global(), sized to the hardware) and sleep when
// idle, so a parallel region costs a submit/notify, not N thread spawns.
//
// Determinism contract. A range [begin, end) is split into chunks whose
// boundaries depend only on the range size and the call's grain — never
// on the thread count or on scheduling. parallel_for writes through
// per-index slots, so chunking is invisible; parallel_reduce gives every
// chunk its own shard and folds the shards in ascending chunk order.
// Consequently every result is bit-identical for any `parallelism`,
// including 1 (which runs the same chunk plan inline). This is the
// contract the determinism sweep in tests/executor_test.cpp enforces.
//
// Exceptions thrown by a chunk are captured (the surviving exception is
// the one from the lowest-indexed throwing chunk), remaining chunks of
// the batch are skipped, and the exception is rethrown on the submitting
// thread when the batch joins — a failing lambda can no longer
// std::terminate the process.
//
// Nested submission is allowed: a chunk may itself call parallel_for /
// parallel_reduce. The submitting thread always participates in executing
// its own batch (stealing its chunks back from worker deques if needed),
// so nested batches make progress even when every pool worker is busy.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

namespace acdn {

/// Hardware-concurrency default, never below 1.
[[nodiscard]] inline int default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

class Executor;

/// Handle to one asynchronously submitted task (Executor::submit). join()
/// blocks until the task ran and rethrows its captured exception; the
/// destructor blocks too (swallowing any error), so a handle can never
/// outlive-race its task. Movable, not copyable; a default-constructed
/// handle is empty and join() on it is a no-op.
class TaskHandle {
 public:
  TaskHandle() = default;
  ~TaskHandle();

  TaskHandle(TaskHandle&& other) noexcept = default;
  TaskHandle& operator=(TaskHandle&& other) noexcept;
  TaskHandle(const TaskHandle&) = delete;
  TaskHandle& operator=(const TaskHandle&) = delete;

  [[nodiscard]] bool valid() const { return state_ != nullptr; }

  /// Blocks until the task finished, rethrows its exception (if any), and
  /// leaves the handle empty.
  void join();

 private:
  friend class Executor;
  struct State;
  explicit TaskHandle(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  /// Blocks until the task finished; never throws (errors stay captured).
  void wait_no_throw() noexcept;

  std::shared_ptr<State> state_;
};

class Executor {
 public:
  /// Spawns `threads` (at least 1) workers. The workers live until the
  /// Executor is destroyed; destruction joins them.
  explicit Executor(int threads);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// The process-wide pool, sized to default_thread_count(). Constructed
  /// on first use, joined at exit.
  [[nodiscard]] static Executor& global();

  [[nodiscard]] int thread_count() const {
    return static_cast<int>(workers_.size());
  }

  /// fn(chunk_index, chunk_begin, chunk_end) for every chunk of the plan.
  using ChunkFn =
      std::function<void(std::size_t, std::size_t, std::size_t)>;

  /// Deterministic chunk decomposition of an n-element range: a function
  /// of (n, grain) only, never of thread count or pool size.
  struct ChunkPlan {
    std::size_t chunk_size = 0;
    std::size_t chunks = 0;
  };
  [[nodiscard]] static ChunkPlan plan_chunks(std::size_t n,
                                             std::size_t grain);

  /// Runs the chunk plan for [begin, end) with up to `parallelism`
  /// concurrent executors (the caller plus parallelism-1 workers). Blocks
  /// until every chunk finished; rethrows the first captured exception.
  void run_chunked(std::size_t begin, std::size_t end, int parallelism,
                   std::size_t grain, const ChunkFn& fn);

  /// Enqueues `fn` as one task on the pool and returns immediately — the
  /// asynchronous sibling of the blocking calls above, used by the
  /// cross-day pipeline to overlap day N's analysis with day N+1's
  /// simulation. Any worker may run the task; the submitting thread never
  /// does. The task body may itself submit nested blocking batches
  /// (parallel_for from inside a task is safe — the executing worker
  /// drains its own batch). Exceptions are captured and rethrown by
  /// TaskHandle::join().
  [[nodiscard]] TaskHandle submit(std::function<void()> fn);

  /// Invokes fn(i) for every i in [begin, end). fn must be safe to call
  /// concurrently for distinct i. Exceptions are captured and the first
  /// (lowest-chunk) one is rethrown here after the batch drains.
  void parallel_for(std::size_t begin, std::size_t end, int parallelism,
                    const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 0) {
    if (end <= begin) return;
    run_chunked(begin, end, parallelism, grain,
                [&fn](std::size_t, std::size_t b, std::size_t e) {
                  for (std::size_t i = b; i < e; ++i) fn(i);
                });
  }

  /// Deterministic sharded reduction. Each chunk of the (n, grain) plan
  /// accumulates into its own default-constructed Shard via
  /// fn(shard, i); shards are folded into `init` in ascending chunk order
  /// via combine(accumulator, std::move(shard)). Because the chunk plan
  /// ignores thread count, the result is bit-identical for any
  /// `parallelism` — floating-point association and sample order
  /// included.
  template <typename Shard, typename Fn, typename Combine>
  [[nodiscard]] Shard parallel_reduce(std::size_t begin, std::size_t end,
                                      int parallelism, std::size_t grain,
                                      Shard init, Fn&& fn,
                                      Combine&& combine) {
    if (end <= begin) return init;
    const ChunkPlan plan = plan_chunks(end - begin, grain);
    std::vector<Shard> shards(plan.chunks);
    run_chunked(begin, end, parallelism, grain,
                [&](std::size_t chunk, std::size_t b, std::size_t e) {
                  Shard& shard = shards[chunk];
                  for (std::size_t i = b; i < e; ++i) fn(shard, i);
                });
    Shard out = std::move(init);
    for (Shard& shard : shards) combine(out, std::move(shard));
    return out;
  }

 private:
  friend class TaskHandle;  // TaskHandle::State embeds a Batch

  struct Batch;
  struct Task;
  struct Worker;

  void worker_main(std::size_t index);
  void execute(const Task& task);
  [[nodiscard]] bool try_pop_own(std::size_t index, Task& out);
  [[nodiscard]] bool try_steal(std::size_t index, Task& out);
  [[nodiscard]] bool try_take_for_batch(Batch* batch, Task& out);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
};

/// Default grain (per-chunk index count floor) used by the deterministic
/// reductions in analysis/core. Ranges at or below this size collapse to
/// a single chunk, which keeps small-world tests on the exact serial
/// accumulation order while paper-scale ranges fan out.
inline constexpr std::size_t kReduceGrain = 512;

}  // namespace acdn
