#include "common/failpoint.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/check.h"
#include "common/error.h"
#include "common/metrics.h"
#include "common/thread_annotations.h"

namespace acdn {

namespace {

// Sorted so known_fail_points() doubles as the registry's index order.
constexpr std::array<std::string_view, 7> kKnownPoints = {
    "beacon/http_fetch",  // per-target HTTP fetch of a beacon plan
    "beacon/store",       // joined measurement ingestion (k-way merge)
    "bgp/session",        // CDN-facing BGP session reset (intra-day flap)
    "bgp/withdrawal",     // day-long withdrawal of a unit's best route
    "cdn/front_end",      // whole-front-end outage for a day
    "csv/write",          // figure CSV / manifest writer I/O error
    "dns/resolve",        // LDNS resolution (timeout / SERVFAIL / log loss)
};

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// SplitMix64 finalizer — the same mixer Rng uses for seed whitening.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::optional<std::size_t> point_index(std::string_view path) {
  const auto it =
      std::lower_bound(kKnownPoints.begin(), kKnownPoints.end(), path);
  if (it == kKnownPoints.end() || *it != path) return std::nullopt;
  return static_cast<std::size_t>(it - kKnownPoints.begin());
}

/// Uniform [0, 1) from the top 53 bits of a mixed hash of the decision
/// coordinates. Pure function: no stream state, so thread count and call
/// order cannot change any decision.
double decision_unit(std::uint64_t seed, std::size_t point, DayIndex day,
                     std::uint64_t coordinate) {
  std::uint64_t x = seed ^ mix(static_cast<std::uint64_t>(point) + 1);
  x ^= mix(static_cast<std::uint64_t>(day) + 0x5851f42d4c957f2dull);
  x ^= mix(coordinate + 0x14057b7ef767814full);
  return static_cast<double>(mix(x) >> 11) * 0x1.0p-53;
}

bool windows_overlap(const FaultRule& a, const FaultRule& b) {
  const auto closes_before = [](const FaultRule& x, const FaultRule& y) {
    return x.last_day != kFaultWindowOpen && x.last_day < y.first_day;
  };
  return !closes_before(a, b) && !closes_before(b, a);
}

}  // namespace

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kError:
      return "error";
  }
  return "?";  // unreachable
}

FaultKind parse_fault_kind(std::string_view text) {
  if (text == "drop") return FaultKind::kDrop;
  if (text == "delay") return FaultKind::kDelay;
  if (text == "corrupt") return FaultKind::kCorrupt;
  if (text == "error") return FaultKind::kError;
  throw ConfigError("unknown fault kind: " + std::string(text));
}

std::span<const std::string_view> known_fail_points() {
  return kKnownPoints;
}

void FaultSchedule::validate() const {
  for (const FaultRule& rule : rules) {
    require(point_index(rule.point).has_value(),
            "fault rule names unknown fail point: " + rule.point);
    require(std::isfinite(rule.probability) && rule.probability >= 0.0 &&
                rule.probability <= 1.0,
            "fault probability must be in [0, 1]: " + rule.point);
    require(rule.first_day >= 0,
            "fault window first_day must be >= 0: " + rule.point);
    require(rule.last_day == kFaultWindowOpen ||
                rule.last_day >= rule.first_day,
            "fault window is empty (last_day < first_day): " + rule.point);
    require(std::isfinite(rule.magnitude) && rule.magnitude >= 0.0,
            "fault magnitude must be finite and >= 0: " + rule.point);
    if (rule.kind == FaultKind::kDelay || rule.kind == FaultKind::kCorrupt) {
      require(rule.magnitude > 0.0,
              "delay/corrupt fault needs a positive magnitude: " + rule.point);
    }
  }
  // At most one rule may govern a (point, day) pair; otherwise which rule
  // wins would depend on rule order, which is too easy to get wrong in a
  // hand-written schedule.
  for (std::size_t i = 0; i < rules.size(); ++i) {
    for (std::size_t j = i + 1; j < rules.size(); ++j) {
      if (rules[i].point != rules[j].point) continue;
      require(!windows_overlap(rules[i], rules[j]),
              "overlapping fault windows for point: " + rules[i].point);
    }
  }
}

namespace detail {
std::atomic<bool> g_fail_points_armed{false};
}  // namespace detail

FailPointRegistry& FailPointRegistry::global() {
  static FailPointRegistry* instance = new FailPointRegistry();  // leaked
  return *instance;
}

FailPointRegistry::FailPointRegistry()
    : rules_by_point_(kKnownPoints.size()),
      fired_(kKnownPoints.size()) {
  metric_names_.reserve(kKnownPoints.size());
  for (const std::string_view point : kKnownPoints) {
    metric_names_.push_back("fault.fired." + std::string(point));
  }
  for (auto& count : fired_) count.store(0, std::memory_order_relaxed);
}

void FailPointRegistry::arm(const FaultSchedule& schedule) {
  schedule.validate();
  bool armed = false;
  {
    WriterMutexLock lock(state_mutex_);
    for (auto& per_point : rules_by_point_) per_point.clear();
    for (auto& count : fired_) count.store(0, std::memory_order_relaxed);
    schedule_ = schedule;
    for (const FaultRule& rule : schedule.rules) {
      const auto idx = point_index(rule.point);
      ACDN_CHECK(idx.has_value()) << "validated rule has unknown point";
      rules_by_point_[*idx].push_back(rule);
    }
    for (auto& per_point : rules_by_point_) {
      std::sort(per_point.begin(), per_point.end(),
                [](const FaultRule& a, const FaultRule& b) {
                  return a.first_day < b.first_day;
                });
    }
    armed = !schedule_.rules.empty();
  }
  detail::g_fail_points_armed.store(armed, std::memory_order_relaxed);
}

void FailPointRegistry::disarm() {
  detail::g_fail_points_armed.store(false, std::memory_order_relaxed);
  WriterMutexLock lock(state_mutex_);
  schedule_ = FaultSchedule{};
  for (auto& per_point : rules_by_point_) per_point.clear();
  for (auto& count : fired_) count.store(0, std::memory_order_relaxed);
}

FaultSchedule FailPointRegistry::schedule() const {
  ReaderMutexLock lock(state_mutex_);
  return schedule_;
}

std::map<std::string, std::uint64_t> FailPointRegistry::trigger_counts()
    const {
  std::map<std::string, std::uint64_t> counts;
  for (std::size_t i = 0; i < kKnownPoints.size(); ++i) {
    counts.emplace(std::string(kKnownPoints[i]),
                   fired_[i].load(std::memory_order_relaxed));
  }
  return counts;
}

std::uint64_t FailPointRegistry::total_triggered() const {
  std::uint64_t total = 0;
  for (const auto& count : fired_) {
    total += count.load(std::memory_order_relaxed);
  }
  return total;
}

std::optional<Fault> FailPointRegistry::evaluate(std::size_t point_index,
                                                 DayIndex day,
                                                 std::uint64_t coordinate) {
  ReaderMutexLock lock(state_mutex_);
  ACDN_DCHECK(point_index < rules_by_point_.size()) << "point index range";
  for (const FaultRule& rule : rules_by_point_[point_index]) {
    if (day < rule.first_day) break;  // sorted by first_day; disjoint
    if (rule.last_day != kFaultWindowOpen && day > rule.last_day) continue;
    if (decision_unit(schedule_.seed, point_index, day, coordinate) >=
        rule.probability) {
      return std::nullopt;
    }
    fired_[point_index].fetch_add(1, std::memory_order_relaxed);
    metric_count(metric_names_[point_index]);
    return Fault{rule.kind, rule.magnitude};
  }
  return std::nullopt;
}

FailPoint::FailPoint(std::string_view path) {
  const auto idx = point_index(path);
  ACDN_CHECK(idx.has_value()) << "unknown fail point path: " << path;
  index_ = *idx;
  // Touch the registry so the singleton exists before any fire() from
  // executor workers.
  (void)FailPointRegistry::global();
}

std::uint64_t fault_coordinate(std::string_view text) { return fnv1a(text); }

}  // namespace acdn
