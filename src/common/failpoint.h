// Deterministic, seeded fault injection.
//
// A process-wide registry of named fail points (slash-paths like
// "dns/resolve" or "beacon/http_fetch") that scenario config arms with a
// FaultSchedule: per-point probability, a sim-day window, and a failure
// kind (drop, delay, corrupt, error-return). Call sites construct a
// FailPoint handle once and ask it whether to fail for a given
// (day, coordinate) pair.
//
// Determinism contract (docs/ARCHITECTURE.md, "Fault injection"): a fire
// decision is a pure hash of (schedule seed, point path, day, caller
// coordinate) — no shared RNG stream is consumed. Two consequences the
// tests pin:
//   1. Thread-count independence. The same call sites evaluate the same
//      coordinates regardless of how clients are sharded, so a fault
//      schedule is byte-reproducible for 1, 2, or 64 worker threads.
//   2. Zero cost when off. A disarmed registry (or an armed schedule at
//      probability 0) perturbs no Rng draws anywhere, so golden figure
//      digests are identical to a build without the layer.
//
// Arming and disarming are phase operations: call them only while no
// simulation is running (World's constructor syncs the registry to its
// scenario's schedule). FailPoint::fire() itself is safe to call from
// executor workers; the only mutation on the fire path is a relaxed
// atomic trigger counter per point.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.h"
#include "common/types.h"

namespace acdn {

/// What an armed fail point does to its call site when it fires.
enum class FaultKind : std::uint8_t {
  kDrop,     ///< the operation's output is silently lost
  kDelay,    ///< the operation completes late by `magnitude_ms`
  kCorrupt,  ///< the operation's value is skewed by factor (1 + magnitude)
  kError,    ///< the operation fails loudly (error return / throw)
};

[[nodiscard]] std::string_view to_string(FaultKind kind);
/// Parses "drop" / "delay" / "corrupt" / "error"; throws ConfigError
/// otherwise.
[[nodiscard]] FaultKind parse_fault_kind(std::string_view text);

/// Sentinel for FaultRule::last_day: the window never closes.
inline constexpr DayIndex kFaultWindowOpen = -1;

/// One armed fail point: which point, what happens, how often, and when.
struct FaultRule {
  /// Slash-path of the fail point; must be one of known_fail_points().
  std::string point;
  FaultKind kind = FaultKind::kDrop;
  /// Per-evaluation fire probability in [0, 1]. 1.0 means always.
  double probability = 0.0;
  /// Inclusive sim-day window. last_day == kFaultWindowOpen leaves the
  /// window open-ended. Points evaluated outside the simulated day loop
  /// (csv/write) are evaluated at day 0.
  DayIndex first_day = 0;
  DayIndex last_day = kFaultWindowOpen;
  /// kDelay: added milliseconds. kCorrupt: relative skew (0.5 = +50%).
  /// Ignored for kDrop / kError.
  double magnitude = 0.0;
};

/// A full fault schedule: the dedicated seed for the decision stream plus
/// every armed rule. Value type; lives in ScenarioConfig.
struct FaultSchedule {
  /// Seed of the fault-decision hash stream. Independent from the
  /// scenario seed so the same world can be replayed under different
  /// fault schedules (and vice versa).
  std::uint64_t seed = 0;
  std::vector<FaultRule> rules;

  [[nodiscard]] bool empty() const { return rules.empty(); }

  /// Throws ConfigError on: unknown point, probability outside [0, 1] or
  /// non-finite, negative first_day, last_day before first_day (empty
  /// range), non-finite or negative magnitude, a delay/corrupt rule with
  /// zero magnitude, or two rules for the same point with overlapping day
  /// windows (at most one rule may govern a (point, day) pair).
  void validate() const;
};

/// A fired fault, as seen by the call site.
struct Fault {
  FaultKind kind = FaultKind::kDrop;
  double magnitude = 0.0;
};

/// The slash-paths wired through the pipeline, sorted. Rules naming any
/// other path are rejected by validate() so a typo cannot silently arm
/// nothing.
[[nodiscard]] std::span<const std::string_view> known_fail_points();

namespace detail {
extern std::atomic<bool> g_fail_points_armed;
}  // namespace detail

/// True iff a non-empty schedule is armed. The one-load fast path every
/// call site checks before doing any fault work.
[[nodiscard]] inline bool fail_points_armed() {
  return detail::g_fail_points_armed.load(std::memory_order_relaxed);
}

/// Process-wide fail-point registry. Leaky singleton, same lifetime
/// policy as MetricsRegistry (worker threads may still be draining at
/// exit).
class FailPointRegistry {
 public:
  static FailPointRegistry& global();

  /// Validates and installs `schedule`, resetting trigger counts. An
  /// empty schedule disarms. Phase operation: no concurrent fire().
  void arm(const FaultSchedule& schedule) ACDN_EXCLUDES(state_mutex_);
  void disarm() ACDN_EXCLUDES(state_mutex_);

  /// The schedule as armed (empty when disarmed). By value: a reference
  /// into the registry could dangle across a concurrent re-arm.
  [[nodiscard]] FaultSchedule schedule() const ACDN_EXCLUDES(state_mutex_);

  /// Fires recorded per point since the last arm(), for every known
  /// point (zero when never fired). Deterministic for a deterministic
  /// call-site sequence: counts are order-independent sums.
  [[nodiscard]] std::map<std::string, std::uint64_t> trigger_counts() const;

  /// Sum of trigger_counts() values.
  [[nodiscard]] std::uint64_t total_triggered() const;

  FailPointRegistry(const FailPointRegistry&) = delete;
  FailPointRegistry& operator=(const FailPointRegistry&) = delete;

 private:
  friend class FailPoint;
  FailPointRegistry();

  [[nodiscard]] std::optional<Fault> evaluate(std::size_t point_index,
                                              DayIndex day,
                                              std::uint64_t coordinate)
      ACDN_EXCLUDES(state_mutex_);

  /// Guards the armed schedule. Arming is a phase operation, so the
  /// reader lock on the fire path is uncontended in practice — the mutex
  /// exists to make a misuse (arm during a run) a stale read instead of
  /// a torn one, and to give -Wthread-safety something to verify.
  mutable SharedMutex state_mutex_;
  FaultSchedule schedule_ ACDN_GUARDED_BY(state_mutex_);
  /// rules_by_point_[i]: rules of known_fail_points()[i], sorted by
  /// first_day. Windows are disjoint (validate()), so the first window
  /// containing `day` is the only one.
  std::vector<std::vector<FaultRule>> rules_by_point_
      ACDN_GUARDED_BY(state_mutex_);
  /// "fault.fired.<point>" names, precomputed so the fire path does not
  /// allocate.
  std::vector<std::string> metric_names_;
  std::vector<std::atomic<std::uint64_t>> fired_;
};

/// Call-site handle. Construct once (a function-local static is the
/// common idiom) and call fire() per operation.
class FailPoint {
 public:
  /// `path` must be one of known_fail_points(); anything else is a
  /// programming error (ACDN_CHECK).
  explicit FailPoint(std::string_view path);

  /// Decides whether this point fails for (day, coordinate). The
  /// coordinate identifies the operation within the day — a url_id, a
  /// front-end id, a routing-unit hash — and must be derived from
  /// simulation state, never from thread identity or iteration order.
  [[nodiscard]] std::optional<Fault> fire(DayIndex day,
                                          std::uint64_t coordinate) const {
    if (!fail_points_armed()) return std::nullopt;
    return FailPointRegistry::global().evaluate(index_, day, coordinate);
  }

 private:
  std::size_t index_ = 0;
};

/// FNV-1a of `text`, for deriving fire coordinates from string keys
/// (e.g. an output path for csv/write).
[[nodiscard]] std::uint64_t fault_coordinate(std::string_view text);

}  // namespace acdn
