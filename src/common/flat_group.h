// Sorted-vector group-by primitives for the columnar hot path.
//
// The measurement pipeline used to funnel every row through node-based
// std::map / std::unordered_map buckets; at paper scale the allocator —
// not the hardware — set the throughput ceiling. These primitives replace
// that pattern with the classic sort-based plan: append rows to a flat
// vector, parallel_sort by a total-order key, then walk maximal runs of
// equal keys. Every step is deterministic by construction (the sort's
// chunk decomposition and merge tree depend only on the input size, and
// the comparator is a strict total order), so results are bit-identical
// for any thread count — the same contract common/executor.h pins.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/cost_model.h"
#include "common/error.h"
#include "common/executor.h"
#include "common/simd.h"

namespace acdn {

/// Per-chunk element floor for parallel_sort: ranges at or below this
/// size sort serially; larger ranges fan out on the executor pool.
inline constexpr std::size_t kSortGrain = 1 << 15;

/// Deterministic parallel sort. The range splits into the executor's
/// (n, grain) chunk plan — a function of the input size only — each chunk
/// sorts independently, and adjacent sorted spans merge pairwise in a
/// fixed binary tree. With a strict *total* order (break all ties in the
/// comparator, e.g. with a sequence number) the result is identical for
/// any `threads`, including 1.
template <typename T, typename Less = std::less<T>>
void parallel_sort(std::span<T> v, int threads, Less less = {}) {
  const Executor::ChunkPlan plan = Executor::plan_chunks(v.size(), kSortGrain);
  // Serial below the cost-model crossover: the merge tree re-touches
  // every element per level, so a sub-crossover fan-out does strictly
  // more work than one std::sort (common/cost_model.h).
  if (plan.chunks <= 1 ||
      plan_parallelism(v.size(), kSortParallelMinRows, threads) <= 1) {
    std::sort(v.begin(), v.end(), less);
    return;
  }
  const auto bound = [&](std::size_t chunk) {
    return std::min(v.size(), chunk * plan.chunk_size);
  };
  Executor::global().parallel_for(0, plan.chunks, threads, [&](std::size_t c) {
    std::sort(v.begin() + static_cast<std::ptrdiff_t>(bound(c)),
              v.begin() + static_cast<std::ptrdiff_t>(bound(c + 1)), less);
  });
  for (std::size_t width = 1; width < plan.chunks; width *= 2) {
    const std::size_t stride = 2 * width;
    const std::size_t pairs = (plan.chunks + stride - 1) / stride;
    Executor::global().parallel_for(0, pairs, threads, [&](std::size_t p) {
      const std::size_t lo = bound(p * stride);
      const std::size_t mid = bound(std::min(plan.chunks, p * stride + width));
      const std::size_t hi = bound(std::min(plan.chunks, p * stride + stride));
      if (mid >= hi) return;  // odd tail: already sorted
      std::inplace_merge(v.begin() + static_cast<std::ptrdiff_t>(lo),
                         v.begin() + static_cast<std::ptrdiff_t>(mid),
                         v.begin() + static_cast<std::ptrdiff_t>(hi), less);
    });
  }
}

/// Half-open index range [begin, end) of one key's run in a sorted span.
struct Run {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t size() const { return end - begin; }
};

/// Visits every maximal run of consecutive eq-equal elements, in order:
/// fn(Run{begin, end}). The span must already be grouped (sorted).
template <typename T, typename Eq, typename Fn>
void for_each_run(std::span<const T> v, Eq eq, Fn&& fn) {
  std::size_t begin = 0;
  for (std::size_t i = 1; i <= v.size(); ++i) {
    if (i == v.size() || !eq(v[begin], v[i])) {
      fn(Run{begin, i});
      begin = i;
    }
  }
}

/// for_each_run for sorted packed-uint64 key columns: the run boundaries
/// come from the SIMD neighbor-compare kernel (bit-exact on every
/// dispatch target), then fn(Run{begin, end}) fires per maximal run in
/// ascending key order. `starts` is caller scratch (arena-backed at the
/// call sites) so the hot path allocates nothing after warm-up.
template <typename Fn>
void for_each_run_u64(std::span<const std::uint64_t> keys,
                      std::vector<std::uint32_t>& starts, Fn&& fn) {
  ACDN_DCHECK_LE(keys.size(), std::size_t{UINT32_MAX});
  simd::run_starts_u64(keys, starts);
  for (std::size_t r = 0; r < starts.size(); ++r) {
    const std::size_t begin = starts[r];
    const std::size_t end =
        r + 1 < starts.size() ? starts[r + 1] : keys.size();
    fn(Run{begin, end});
  }
}

/// The full sort-based group-by: parallel_sort by `less`, then visit each
/// maximal `eq`-run in ascending key order. `less` must be a total order
/// for the deterministic-sort contract to hold.
template <typename T, typename Less, typename Eq, typename Fn>
void sort_group_by(std::span<T> v, int threads, Less less, Eq eq, Fn&& fn) {
  parallel_sort(v, threads, less);
  for_each_run(std::span<const T>(v.data(), v.size()), eq,
               std::forward<Fn>(fn));
}

/// Sorted-vector replacement for read-mostly std::map uses: contiguous
/// storage, binary-search lookups, ascending iteration. Build either with
/// append() (keys already ascending — the group-by output order) or
/// operator[] (sorted insert; fine for small maps like per-catchment
/// country counts, not for hot per-row updates).
template <typename Key, typename Value>
class FlatMap {
 public:
  using value_type = std::pair<Key, Value>;
  using const_iterator = typename std::vector<value_type>::const_iterator;
  using iterator = typename std::vector<value_type>::iterator;

  [[nodiscard]] const_iterator begin() const { return entries_.begin(); }
  [[nodiscard]] const_iterator end() const { return entries_.end(); }
  [[nodiscard]] iterator begin() { return entries_.begin(); }
  [[nodiscard]] iterator end() { return entries_.end(); }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }
  void reserve(std::size_t n) { entries_.reserve(n); }

  /// O(1) sorted build: `key` must exceed the current last key.
  void append(Key key, Value value) {
    ACDN_DCHECK(entries_.empty() || entries_.back().first < key)
        << "FlatMap::append keys must be strictly ascending";
    entries_.emplace_back(std::move(key), std::move(value));
  }

  [[nodiscard]] const_iterator find(const Key& key) const {
    const auto it = lower_bound(key);
    return (it != entries_.end() && it->first == key) ? it : entries_.end();
  }
  [[nodiscard]] iterator find(const Key& key) {
    const auto it = lower_bound(key);
    return (it != entries_.end() && it->first == key) ? it : entries_.end();
  }
  [[nodiscard]] std::size_t count(const Key& key) const {
    return find(key) == entries_.end() ? 0 : 1;
  }
  [[nodiscard]] bool contains(const Key& key) const { return count(key) > 0; }

  [[nodiscard]] const Value& at(const Key& key) const {
    const auto it = find(key);
    require(it != entries_.end(), "FlatMap::at: key not found");
    return it->second;
  }

  /// Sorted insert-or-find, std::map semantics (O(n) on insert).
  Value& operator[](const Key& key) {
    auto it = lower_bound(key);
    if (it == entries_.end() || it->first != key) {
      it = entries_.insert(it, value_type(key, Value{}));
    }
    return it->second;
  }

 private:
  [[nodiscard]] const_iterator lower_bound(const Key& key) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const Key& k) { return e.first < k; });
  }
  [[nodiscard]] iterator lower_bound(const Key& key) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const Key& k) { return e.first < k; });
  }

  std::vector<value_type> entries_;
};

}  // namespace acdn
