#include "common/logging.h"

#include <atomic>
#include <cstdio>

#include "common/thread_annotations.h"

namespace acdn {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

/// Serializes sink writes: one fprintf is atomic per POSIX, but keeping
/// the mutex makes the contract independent of the sink and gives
/// executor-worker log lines a defined order relative to each other.
Mutex& sink_mutex() {
  static Mutex* m = new Mutex;  // leaked: loggable static teardown
  return *m;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kOff:   return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {
void log_line(LogLevel level, const std::string& message) {
  if (level > log_level() || message.empty()) return;
  MutexLock lock(sink_mutex());
  std::fprintf(stderr, "[acdn %s] %s\n", level_name(level), message.c_str());
}
}  // namespace detail

}  // namespace acdn
