// Leveled logging to stderr. The simulation is library-first: nothing logs
// by default; examples and benches opt in by raising the level.
#pragma once

#include <sstream>
#include <string>

namespace acdn {

enum class LogLevel { kOff = 0, kError, kWarn, kInfo, kDebug };

/// Process-wide log threshold. Messages above the threshold are dropped.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& message);
}

/// Stream-style log entry: Log(LogLevel::kInfo) << "built " << n << " ASes";
class Log {
 public:
  explicit Log(LogLevel level) : level_(level) {}
  ~Log() { detail::log_line(level_, stream_.str()); }

  Log(const Log&) = delete;
  Log& operator=(const Log&) = delete;

  template <typename T>
  Log& operator<<(const T& v) {
    if (level_ <= log_level()) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace acdn
