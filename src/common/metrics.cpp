#include "common/metrics.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "stats/p2.h"

namespace acdn {

namespace detail_metrics {
std::atomic<bool> g_enabled{false};
}  // namespace detail_metrics

void set_metrics_enabled(bool enabled) {
  detail_metrics::g_enabled.store(enabled, std::memory_order_relaxed);
}

namespace {

/// Heterogeneous string hashing: shard maps are keyed by std::string but
/// looked up by string_view without allocating.
struct StringHash {
  using is_transparent = void;
  [[nodiscard]] std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
  [[nodiscard]] std::size_t operator()(const std::string& s) const noexcept {
    return std::hash<std::string_view>{}(std::string_view(s));
  }
};

/// One histogram's per-shard state: moment sums plus the four P²
/// estimators the snapshot reports.
struct ShardHistogram {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  P2Quantile p50{0.50};
  P2Quantile p75{0.75};
  P2Quantile p95{0.95};
  P2Quantile p99{0.99};

  void add(double v) {
    ++count;
    sum += v;
    min = std::min(min, v);
    max = std::max(max, v);
    p50.add(v);
    p75.add(v);
    p95.add(v);
    p99.add(v);
  }
};

template <typename V>
// NOLINT-ACDN(unordered-decl): hot-path accumulation map; every iteration
using NameMap = std::unordered_map<std::string, V, StringHash,
                                   std::equal_to<>>;
// over a NameMap folds into the name-sorted MetricsSnapshot maps, so hash
// order never reaches output (see snapshot()).

/// Merge one shard's histogram into the snapshot entry. Quantiles merge
/// by count-weighted average of the per-shard estimates.
void fold_histogram(HistogramStats& out, const ShardHistogram& shard) {
  if (shard.count == 0) return;
  const double w_old = double(out.count);
  const double w_new = double(shard.count);
  const double w_total = w_old + w_new;
  auto weighted = [&](double acc, double estimate) {
    return (acc * w_old + estimate * w_new) / w_total;
  };
  if (out.count == 0) {
    out.min = shard.min;
    out.max = shard.max;
    out.p50 = shard.p50.value();
    out.p75 = shard.p75.value();
    out.p95 = shard.p95.value();
    out.p99 = shard.p99.value();
  } else {
    out.min = std::min(out.min, shard.min);
    out.max = std::max(out.max, shard.max);
    out.p50 = weighted(out.p50, shard.p50.value());
    out.p75 = weighted(out.p75, shard.p75.value());
    out.p95 = weighted(out.p95, shard.p95.value());
    out.p99 = weighted(out.p99, shard.p99.value());
  }
  out.count += shard.count;
  out.sum += shard.sum;
}

}  // namespace

/// Per-thread metric storage. The owning thread updates under its own
/// (virtually always uncontended) mutex; snapshot() and reset() take the
/// same mutex from outside, which is what makes concurrent snapshots
/// race-free. Shards are never deallocated, so the thread_local pointer
/// cache below stays valid for the life of the process.
struct MetricsRegistry::Shard {
  Mutex m;
  NameMap<std::uint64_t> counters ACDN_GUARDED_BY(m);
  NameMap<ShardHistogram> histograms ACDN_GUARDED_BY(m);
};

/// Registry internals: rarely-touched state under one mutex (gauge and
/// phase updates are per-pass, not per-item) plus the shard list. Lock
/// order where both are held: Central::m before Shard::m (snapshot,
/// reset); update paths hold exactly one.
struct MetricsRegistry::Central {
  Mutex m;
  std::vector<std::unique_ptr<Shard>> shards ACDN_GUARDED_BY(m);
  NameMap<double> gauges ACDN_GUARDED_BY(m);
  NameMap<PhaseStats> phases ACDN_GUARDED_BY(m);
};

MetricsRegistry::MetricsRegistry() : central_(new Central) {}

MetricsRegistry& MetricsRegistry::global() {
  // Leaky: never destroyed, so executor workers finishing during static
  // teardown can still record safely.
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
  thread_local Shard* cached = nullptr;
  if (cached == nullptr) {
    auto shard = std::make_unique<Shard>();
    cached = shard.get();
    MutexLock lock(central_->m);
    central_->shards.push_back(std::move(shard));
  }
  return *cached;
}

void MetricsRegistry::counter_add(std::string_view name,
                                  std::uint64_t delta) {
  Shard& shard = local_shard();
  MutexLock lock(shard.m);
  auto it = shard.counters.find(name);
  if (it == shard.counters.end()) {
    shard.counters.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::gauge_set(std::string_view name, double value) {
  MutexLock lock(central_->m);
  auto it = central_->gauges.find(name);
  if (it == central_->gauges.end()) {
    central_->gauges.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void MetricsRegistry::observe(std::string_view name, double value) {
  Shard& shard = local_shard();
  MutexLock lock(shard.m);
  auto it = shard.histograms.find(name);
  if (it == shard.histograms.end()) {
    it = shard.histograms.emplace(std::string(name), ShardHistogram{})
             .first;
  }
  it->second.add(value);
}

void MetricsRegistry::record_phase(std::string_view path,
                                   double elapsed_ms) {
  MutexLock lock(central_->m);
  auto it = central_->phases.find(path);
  if (it == central_->phases.end()) {
    it = central_->phases.emplace(std::string(path), PhaseStats{}).first;
  }
  PhaseStats& stats = it->second;
  ++stats.count;
  stats.total_ms += elapsed_ms;
  stats.max_ms = std::max(stats.max_ms, elapsed_ms);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  // Every loop below folds into the name-keyed std::maps of the snapshot:
  // insertion order cannot affect the result, so hash-order visits are
  // safe here and nowhere past this point.
  MetricsSnapshot out;
  MutexLock lock(central_->m);
  // NOLINT-ACDN(unordered-iter): folded into name-sorted snapshot map
  for (const auto& [name, value] : central_->gauges) {
    out.gauges.emplace(name, value);
  }
  // NOLINT-ACDN(unordered-iter): folded into name-sorted snapshot map
  for (const auto& [path, stats] : central_->phases) {
    out.phases.emplace(path, stats);
  }
  for (const auto& shard : central_->shards) {
    MutexLock shard_lock(shard->m);
    // NOLINT-ACDN(unordered-iter): += into name-sorted map, commutative
    for (const auto& [name, value] : shard->counters) {
      out.counters[name] += value;
    }
    // NOLINT-ACDN(unordered-iter): count-weighted fold is shard-symmetric
    for (const auto& [name, hist] : shard->histograms) {
      fold_histogram(out.histograms[name], hist);
    }
  }
  return out;
}

void MetricsRegistry::reset() {
  MutexLock lock(central_->m);
  central_->gauges.clear();
  central_->phases.clear();
  for (const auto& shard : central_->shards) {
    MutexLock shard_lock(shard->m);
    shard->counters.clear();
    shard->histograms.clear();
  }
}

// --------------------------------------------------------------- PhaseSpan

namespace {

/// The calling thread's phase path; spans append "/name" on entry and
/// truncate back on exit.
thread_local std::string t_phase_path;

}  // namespace

PhaseSpan::PhaseSpan(std::string_view name) : active_(metrics_enabled()) {
  if (!active_) return;
  parent_length_ = t_phase_path.size();
  if (!t_phase_path.empty()) t_phase_path += '/';
  t_phase_path += name;
  start_ = std::chrono::steady_clock::now();
}

PhaseSpan::PhaseSpan(std::string_view name, RootTag)
    : active_(metrics_enabled()), root_(true) {
  if (!active_) return;
  saved_path_ = std::move(t_phase_path);
  t_phase_path.assign(name);
  start_ = std::chrono::steady_clock::now();
}

PhaseSpan::~PhaseSpan() {
  if (!active_) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  MetricsRegistry::global().record_phase(
      t_phase_path,
      std::chrono::duration<double, std::milli>(elapsed).count());
  if (root_) {
    t_phase_path = std::move(saved_path_);
  } else {
    t_phase_path.resize(parent_length_);
  }
}

std::string PhaseSpan::current_path() { return t_phase_path; }

}  // namespace acdn
