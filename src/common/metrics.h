// Process-wide metrics registry: the observability substrate every layer
// reports through.
//
// Three metric kinds, all name-addressed:
//   * counters    — monotonically increasing integer totals (exact across
//                   threads: per-thread shards sum on snapshot);
//   * gauges      — last-written double values (sizes, thread counts);
//   * histograms  — streaming latency/size distributions: count, sum,
//                   min, max plus P² p50/p75/p95/p99 (stats/p2.h), one
//                   estimator set per thread shard, merged on snapshot.
//
// Phase tracing: a PhaseSpan names a pipeline phase for its scope; nested
// spans extend the path ("sim.day/join"), and each span records wall-clock
// into per-path {count, total_ms, max_ms} stats. ScopedTimer is the
// histogram flavor: its scope's duration becomes one histogram sample.
//
// Cost model. Metrics are disabled by default: every entry point first
// checks one relaxed atomic (inlined below), so a disabled call site costs
// a load and a predictable branch — cheap enough for the hottest paths.
// Enabled updates touch only the calling thread's shard (one uncontended
// mutex plus a small-string hash lookup), mirroring the executor's
// shard-and-fold idiom: hot paths never share a cache line, snapshot()
// folds shards into deterministically (name-)ordered maps.
//
// Wall-clock timings are observability, not simulation state: they are
// excluded from the determinism contract (everything else in a snapshot —
// counters, gauges, histogram counts — is reproducible for a fixed
// scenario; see tests/metrics_test.cpp).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace acdn {

namespace detail_metrics {
extern std::atomic<bool> g_enabled;
}  // namespace detail_metrics

/// Whether metric updates are recorded. Inline: this is the only cost a
/// disabled call site pays.
[[nodiscard]] inline bool metrics_enabled() {
  return detail_metrics::g_enabled.load(std::memory_order_relaxed);
}

/// Flips recording on or off process-wide. Off by default (library-first:
/// nothing measures unless a harness opts in).
void set_metrics_enabled(bool enabled);

/// Snapshot of one histogram.
struct HistogramStats {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// P² estimates (exact below 5 samples per shard). When several thread
  /// shards contributed, the per-shard estimates merge by count-weighted
  /// average — an approximation fit for observability, not for analysis.
  double p50 = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : sum / double(count);
  }
};

/// Snapshot of one phase path ("sim.day/join").
struct PhaseStats {
  std::uint64_t count = 0;
  double total_ms = 0.0;
  double max_ms = 0.0;
};

/// Everything the registry knows, folded into name-sorted maps — the
/// deterministic iteration order the run manifest and summary table rely
/// on.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramStats> histograms;
  std::map<std::string, PhaseStats> phases;

  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty() &&
           phases.empty();
  }
};

class MetricsRegistry {
 public:
  /// The process-wide registry. Never destroyed (leaky singleton), so
  /// worker threads and static teardown can never race its lifetime.
  [[nodiscard]] static MetricsRegistry& global();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Adds `delta` to the named counter (this thread's shard).
  void counter_add(std::string_view name, std::uint64_t delta = 1);

  /// Sets the named gauge. Last write wins across threads.
  void gauge_set(std::string_view name, double value);

  /// Folds one sample into the named histogram (this thread's shard).
  void observe(std::string_view name, double value);

  /// Adds one completed span to the named phase path.
  void record_phase(std::string_view path, double elapsed_ms);

  /// Folds every thread shard into name-sorted maps. Counters are exact
  /// sums; histogram quantiles merge by count-weighted average.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Clears all recorded values (shards stay allocated: pointers cached in
  /// thread-locals remain valid).
  void reset();

 private:
  struct Shard;
  struct Central;

  MetricsRegistry();
  ~MetricsRegistry() = delete;  // leaky by design

  [[nodiscard]] Shard& local_shard();

  Central* central_;
};

// ------------------------------------------------------------ free helpers
//
// The instrumentation entry points: inline the enabled check so a disabled
// call site never crosses a translation-unit boundary.

inline void metric_count(std::string_view name, std::uint64_t delta = 1) {
  if (metrics_enabled()) MetricsRegistry::global().counter_add(name, delta);
}

inline void metric_gauge(std::string_view name, double value) {
  if (metrics_enabled()) MetricsRegistry::global().gauge_set(name, value);
}

inline void metric_observe(std::string_view name, double value) {
  if (metrics_enabled()) MetricsRegistry::global().observe(name, value);
}

/// RAII histogram sample: the scope's wall-clock duration in ms is folded
/// into the named histogram. `name` must outlive the timer (pass a
/// literal).
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view name)
      : active_(metrics_enabled()), name_(name) {
    if (active_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (!active_) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    MetricsRegistry::global().observe(
        name_, std::chrono::duration<double, std::milli>(elapsed).count());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  bool active_;
  std::string_view name_;
  std::chrono::steady_clock::time_point start_{};
};

/// RAII phase span. Spans nest per thread: a span opened while another is
/// live records under "outer/inner". The enabled decision is latched at
/// construction so a span closes consistently even if the flag flips
/// mid-scope.
///
/// The kRoot form starts a fresh path instead of nesting: whatever path
/// the thread carried is saved and restored when the span closes, and the
/// span's children record under "name/child" regardless of where the
/// scope runs. The cross-day pipeline opens its per-day analysis scope
/// this way — the same analysis may run inline on the driver thread (mid
/// day loop) or asynchronously on a pool worker, and without the root tag
/// those two placements would record under different (and, with
/// overlapping days, interleaved) nested paths.
class PhaseSpan {
 public:
  struct RootTag {};
  static constexpr RootTag kRoot{};

  explicit PhaseSpan(std::string_view name);
  PhaseSpan(std::string_view name, RootTag);
  ~PhaseSpan();

  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

  /// The calling thread's current phase path ("" outside any span).
  [[nodiscard]] static std::string current_path();

 private:
  bool active_;
  bool root_ = false;
  std::size_t parent_length_ = 0;
  /// Saved thread path, root spans only (restored on close).
  std::string saved_path_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace acdn
