// Minimal data-parallel loop — compatibility shim over the persistent
// executor (common/executor.h).
//
// Historically parallel_for spawned and joined fresh std::threads on every
// call; it now submits to the process-wide work-stealing pool, so the
// per-call cost is a wakeup instead of N thread spawns. The simulation's
// per-client day loop is embarrassingly parallel once every client draws
// from its own keyed RNG substream (see Simulation::run_day): workers
// never share mutable state except through pre-allocated per-index output
// slots. parallel_for partitions [begin, end) across up to `threads`
// executors; results are identical for any thread count by construction.
#pragma once

#include <cstddef>
#include <functional>

#include "common/executor.h"

namespace acdn {

/// Invokes fn(i) for every i in [begin, end), using up to `threads`
/// concurrent executors from the global pool. fn must be safe to call
/// concurrently for distinct i. An exception thrown by fn no longer
/// terminates the process: the first (lowest-chunk) exception is captured
/// and rethrown here once the loop drains.
inline void parallel_for(std::size_t begin, std::size_t end, int threads,
                         const std::function<void(std::size_t)>& fn) {
  Executor::global().parallel_for(begin, end, threads, fn);
}

}  // namespace acdn
