// Minimal data-parallel loop.
//
// The simulation's per-client day loop is embarrassingly parallel once
// every client draws from its own keyed RNG substream (see
// Simulation::run_day): workers never share mutable state except through
// pre-allocated per-index output slots. parallel_for partitions [begin,
// end) across N threads; with threads <= 1 it degenerates to a plain loop,
// and results are identical either way by construction.
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace acdn {

/// Invokes fn(i) for every i in [begin, end), using up to `threads` OS
/// threads. fn must be safe to call concurrently for distinct i.
/// Exceptions thrown by fn terminate the process (workers run detached
/// logic); validate inputs before entering the loop.
inline void parallel_for(std::size_t begin, std::size_t end, int threads,
                         const std::function<void(std::size_t)>& fn) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  if (threads <= 1 || n == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const auto workers =
      std::min<std::size_t>(static_cast<std::size_t>(threads), n);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      // Strided partition: balances heavy-tailed per-index work better
      // than contiguous blocks.
      for (std::size_t i = begin + w; i < end; i += workers) fn(i);
    });
  }
  for (std::thread& t : pool) t.join();
}

/// Hardware-concurrency default, never below 1.
[[nodiscard]] inline int default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace acdn
