// Deterministic stable LSD radix sort for packed uint64 keys.
//
// The measurement pipeline's sorts are all of one shape: a flat array of
// rows keyed by a bit-packed uint64 (join keys, group-by keys, snapshot
// keys). Comparison sorting those costs O(n log n) branchy compares; the
// byte-wise least-significant-digit radix below costs eight counting
// passes — and skips every byte column the whole input agrees on, which
// for our packed keys (few distinct groups, small front-end ids) usually
// leaves two or three real passes.
//
// Determinism is stronger than parallel_sort's: a *stable* sort's output
// permutation is a pure function of the input array, so the serial path
// and the chunk+merge parallel path produce byte-identical results by
// construction — no seq tie-breaker columns needed. The parallel variant
// keeps the executor's fixed (n, grain) chunk plan and the same pairwise
// merge-tree shape as parallel_sort (common/flat_group.h), with a stable
// left-priority merge.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "common/arena.h"
#include "common/check.h"
#include "common/cost_model.h"
#include "common/executor.h"
#include "common/flat_group.h"

namespace acdn {

namespace radix_detail {

/// Tag for the keys-only variant; never instantiated.
struct NoPayload {};

/// Serial stable LSD radix over keys[0, n) (and vals[0, n) when V is a
/// real payload). tmp_* must be n elements of caller-owned scratch.
/// Counters are 32-bit: callers check n <= UINT32_MAX.
template <typename V>
void lsd_sort(std::uint64_t* keys, V* vals, std::size_t n,
              std::uint64_t* tmp_keys, V* tmp_vals) {
  constexpr bool kHasVals = !std::is_same_v<V, NoPayload>;
  if (n < 2) return;

  // All eight 256-bucket byte histograms in one read pass. Byte
  // distributions are permutation-invariant, so they stay valid across
  // the scatter passes below.
  std::array<std::array<std::uint32_t, 256>, 8> hist{};
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t k = keys[i];
    for (std::size_t b = 0; b < 8; ++b) {
      ++hist[b][(k >> (8 * b)) & 0xff];
    }
  }

  std::uint64_t* src_k = keys;
  std::uint64_t* dst_k = tmp_keys;
  V* src_v = vals;
  V* dst_v = tmp_vals;
  for (std::size_t b = 0; b < 8; ++b) {
    const std::array<std::uint32_t, 256>& h = hist[b];
    // A byte column where every key agrees scatters as the identity
    // permutation: skip it.
    if (h[(src_k[0] >> (8 * b)) & 0xff] == n) continue;

    std::array<std::uint32_t, 256> offset;
    std::uint32_t sum = 0;
    for (std::size_t d = 0; d < 256; ++d) {
      offset[d] = sum;
      sum += h[d];
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t k = src_k[i];
      const std::uint32_t o = offset[(k >> (8 * b)) & 0xff]++;
      dst_k[o] = k;
      if constexpr (kHasVals) dst_v[o] = src_v[i];
    }
    std::swap(src_k, dst_k);
    if constexpr (kHasVals) std::swap(src_v, dst_v);
  }
  if (src_k != keys) {
    std::memcpy(keys, src_k, n * sizeof(std::uint64_t));
    if constexpr (kHasVals) std::memcpy(vals, src_v, n * sizeof(V));
  }
}

/// Stable merge of the adjacent sorted runs [lo, mid) and [mid, hi):
/// left elements win ties, so the merge of two stable-sorted chunks is
/// the stable sort of their concatenation. Merges into tmp_*[lo, hi)
/// and copies back.
template <typename V>
void merge_adjacent(std::uint64_t* keys, V* vals, std::size_t lo,
                    std::size_t mid, std::size_t hi, std::uint64_t* tmp_keys,
                    V* tmp_vals) {
  constexpr bool kHasVals = !std::is_same_v<V, NoPayload>;
  // Already in order (a pure function of the key data, so this shortcut
  // cannot perturb determinism).
  if (keys[mid - 1] <= keys[mid]) return;
  std::size_t i = lo;
  std::size_t j = mid;
  std::size_t o = lo;
  while (i < mid && j < hi) {
    if (keys[j] < keys[i]) {
      tmp_keys[o] = keys[j];
      if constexpr (kHasVals) tmp_vals[o] = vals[j];
      ++j;
    } else {
      tmp_keys[o] = keys[i];
      if constexpr (kHasVals) tmp_vals[o] = vals[i];
      ++i;
    }
    ++o;
  }
  if (i < mid) {
    std::memcpy(tmp_keys + o, keys + i, (mid - i) * sizeof(std::uint64_t));
    if constexpr (kHasVals) {
      std::memcpy(tmp_vals + o, vals + i, (mid - i) * sizeof(V));
    }
    o += mid - i;
  }
  if (j < hi) {
    std::memcpy(tmp_keys + o, keys + j, (hi - j) * sizeof(std::uint64_t));
    if constexpr (kHasVals) {
      std::memcpy(tmp_vals + o, vals + j, (hi - j) * sizeof(V));
    }
    o += hi - j;
  }
  ACDN_DCHECK_EQ(o, hi);
  std::memcpy(keys + lo, tmp_keys + lo, (hi - lo) * sizeof(std::uint64_t));
  if constexpr (kHasVals) {
    std::memcpy(vals + lo, tmp_vals + lo, (hi - lo) * sizeof(V));
  }
}

/// Shared driver: serial below the cost-model crossover (the merge tree
/// re-touches every element per level, so fanning out a sub-crossover
/// input does strictly more work), otherwise the fixed chunk plan +
/// pairwise merge tree. Stability makes both paths produce the unique
/// stable permutation, so the choice is invisible.
template <typename V>
void sort_impl(std::span<std::uint64_t> keys, V* vals, int threads,
               std::uint64_t* tmp_keys, V* tmp_vals) {
  const std::size_t n = keys.size();
  const Executor::ChunkPlan plan = Executor::plan_chunks(n, kSortGrain);
  if (plan.chunks <= 1 ||
      plan_parallelism(n, kRadixParallelMinKeys, threads) <= 1) {
    lsd_sort(keys.data(), vals, n, tmp_keys, tmp_vals);
    return;
  }
  const auto bound = [&](std::size_t chunk) {
    return std::min(n, chunk * plan.chunk_size);
  };
  Executor::global().parallel_for(0, plan.chunks, threads, [&](std::size_t c) {
    const std::size_t lo = bound(c);
    const std::size_t hi = bound(c + 1);
    constexpr bool kHasVals = !std::is_same_v<V, NoPayload>;
    lsd_sort(keys.data() + lo, kHasVals ? vals + lo : vals, hi - lo,
             tmp_keys + lo, kHasVals ? tmp_vals + lo : tmp_vals);
  });
  for (std::size_t width = 1; width < plan.chunks; width *= 2) {
    const std::size_t stride = 2 * width;
    const std::size_t pairs = (plan.chunks + stride - 1) / stride;
    Executor::global().parallel_for(0, pairs, threads, [&](std::size_t p) {
      const std::size_t lo = bound(p * stride);
      const std::size_t mid = bound(std::min(plan.chunks, p * stride + width));
      const std::size_t hi = bound(std::min(plan.chunks, p * stride + stride));
      if (mid >= hi) return;  // odd tail: already sorted
      merge_adjacent(keys.data(), vals, lo, mid, hi, tmp_keys, tmp_vals);
    });
  }
}

}  // namespace radix_detail

/// Stable LSD radix sort of packed uint64 keys, ascending. `threads`
/// follows the parallel_sort contract (results identical for any value,
/// including 1); `scratch` retains the ping-pong buffer between calls.
inline void radix_sort(std::span<std::uint64_t> keys, int threads = 1,
                       ScratchArena* scratch = nullptr) {
  ACDN_CHECK_LE(keys.size(), std::size_t{UINT32_MAX})
      << "radix_sort counters are 32-bit";
  std::vector<std::uint64_t> local;
  std::vector<std::uint64_t>& tmp =
      scratch ? scratch->buffer<std::uint64_t>("radix.tmp_keys") : local;
  tmp.resize(keys.size());
  radix_detail::sort_impl<radix_detail::NoPayload>(keys, nullptr, threads,
                                                   tmp.data(), nullptr);
}

/// Payload-permutation variant: sorts `keys` ascending and applies the
/// same stable permutation to `vals`. V must be trivially copyable (the
/// scatter and merge passes move payloads with memcpy).
template <typename V>
void radix_sort_pairs(std::span<std::uint64_t> keys, std::span<V> vals,
                      int threads = 1, ScratchArena* scratch = nullptr) {
  static_assert(std::is_trivially_copyable_v<V>,
                "radix_sort_pairs payloads move via memcpy");
  ACDN_CHECK_EQ(keys.size(), vals.size());
  ACDN_CHECK_LE(keys.size(), std::size_t{UINT32_MAX})
      << "radix_sort counters are 32-bit";
  std::vector<std::uint64_t> local_k;
  std::vector<V> local_v;
  std::vector<std::uint64_t>& tmp_k =
      scratch ? scratch->buffer<std::uint64_t>("radix.tmp_keys") : local_k;
  std::vector<V>& tmp_v =
      scratch ? scratch->buffer<V>("radix.tmp_vals") : local_v;
  tmp_k.resize(keys.size());
  tmp_v.resize(vals.size());
  radix_detail::sort_impl(keys, vals.data(), threads, tmp_k.data(),
                          tmp_v.data());
}

}  // namespace acdn
