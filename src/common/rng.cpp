#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace acdn {

namespace {

// FNV-1a 64-bit over a label, used to derive fork seeds.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::uint64_t Rng::mix(std::uint64_t x) {
  // SplitMix64 finalizer: spreads low-entropy seeds across the state space.
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

Rng Rng::fork(std::string_view label) const {
  return Rng(mix(seed_ ^ fnv1a(label)));
}

double Rng::pareto(double x_m, double alpha) {
  require(x_m > 0.0 && alpha > 0.0, "pareto parameters must be positive");
  const double u = 1.0 - uniform();  // in (0, 1]
  return x_m / std::pow(u, 1.0 / alpha);
}

int Rng::poisson(double mean) {
  require(mean >= 0.0, "poisson mean must be non-negative");
  int total = 0;
  // A Poisson(a + b) draw is the sum of independent Poisson(a) and
  // Poisson(b) draws; splitting keeps exp(-mean) well above underflow so
  // Knuth's inversion stays exact for any mean.
  constexpr double kSlice = 32.0;
  while (mean > kSlice) {
    total += poisson(kSlice);
    mean -= kSlice;
  }
  if (mean <= 0.0) return total;
  const double limit = std::exp(-mean);
  double product = uniform();
  while (product > limit) {
    ++total;
    product *= uniform();
  }
  return total;
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  require(total > 0.0, "weighted_index needs a positive total weight");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;  // guards against floating-point residue
}

std::size_t Rng::zipf(std::size_t n, double s) {
  require(n > 0, "zipf needs n > 0");
  // Inverse-CDF on the harmonic weights. n is small (ranks per metro), so a
  // linear scan is fine; callers that need bulk draws should precompute.
  double norm = 0.0;
  for (std::size_t k = 1; k <= n; ++k) norm += 1.0 / std::pow(double(k), s);
  double r = uniform() * norm;
  for (std::size_t k = 1; k <= n; ++k) {
    r -= 1.0 / std::pow(double(k), s);
    if (r <= 0.0) return k - 1;
  }
  return n - 1;
}

}  // namespace acdn
