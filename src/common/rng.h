// Deterministic random number generation.
//
// Every stochastic component in the library draws from an explicitly seeded
// Rng. Substreams are created with fork(label) so that adding a consumer of
// randomness in one module never perturbs the draws seen by another module —
// a requirement for reproducible experiments (DESIGN.md §4).
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <span>
#include <string_view>
#include <vector>

namespace acdn {

/// Deterministic PRNG wrapper around std::mt19937_64 with the distribution
/// helpers the simulation needs. Cheap to fork; fork streams are independent.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : seed_(seed), engine_(mix(seed)) {}

  /// Derive an independent substream. Deterministic in (parent seed, label).
  [[nodiscard]] Rng fork(std::string_view label) const;

  std::uint64_t next_u64() { return engine_(); }

  /// Uniform double in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  std::size_t uniform_index(std::size_t n) {
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Lognormal with parameters of the underlying normal.
  double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Pareto with scale x_m > 0 and shape alpha > 0 (heavy-tailed).
  double pareto(double x_m, double alpha);

  /// Poisson with the given mean (>= 0). Hand-rolled (Knuth inversion over
  /// split means) rather than std::poisson_distribution: the std algorithm
  /// is implementation-defined (draws differ across standard libraries)
  /// and its setup calls lgamma, which writes libm's global `signgam` — a
  /// data race when sampling on executor workers.
  int poisson(double mean);

  /// Index drawn proportionally to non-negative weights. Requires at least
  /// one strictly positive weight.
  std::size_t weighted_index(std::span<const double> weights);

  /// Zipf-distributed rank in [0, n) with exponent s (rank 0 most popular).
  std::size_t zipf(std::size_t n, double s);

  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  /// Access the underlying engine for std distributions not wrapped here.
  std::mt19937_64& engine() { return engine_; }

 private:
  static std::uint64_t mix(std::uint64_t x);

  std::uint64_t seed_ = 0;  // retained for fork()
  std::mt19937_64 engine_;
};

}  // namespace acdn
