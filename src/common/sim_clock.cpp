#include "common/sim_clock.h"

#include <array>
#include <cstdio>

namespace acdn {

const char* to_string(Weekday d) {
  static constexpr std::array<const char*, 7> names = {
      "Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"};
  return names[static_cast<int>(d)];
}

long days_from_civil(const Date& d) {
  // Howard Hinnant's days_from_civil; epoch 1970-01-01.
  int y = d.year;
  const unsigned m = static_cast<unsigned>(d.month);
  const unsigned dd = static_cast<unsigned>(d.day);
  y -= m <= 2;
  const long era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);           // [0,399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + dd - 1;// [0,365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;          // [0,146096]
  return era * 146097 + static_cast<long>(doe) - 719468;
}

Date civil_from_days(long z) {
  z += 719468;
  const long era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const long y = static_cast<long>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned dd = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  return Date{static_cast<int>(y + (m <= 2)), static_cast<int>(m),
              static_cast<int>(dd)};
}

Weekday Date::weekday() const {
  // days_from_civil(1970-01-01) == 0, and that day was a Thursday (index 3
  // with Monday == 0), hence the +10 ≡ +3 (mod 7) offset.
  const long z = days_from_civil(*this);
  const long dow = ((z % 7) + 10) % 7;  // 0 == Monday
  return static_cast<Weekday>(dow);
}

Date Date::plus_days(int n) const {
  return civil_from_days(days_from_civil(*this) + n);
}

std::string Date::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02d", year, month, day);
  return buf;
}

}  // namespace acdn
