// Simulated calendar time.
//
// The paper's analyses are keyed to calendar structure: Figure 5 spans April
// 2015 day by day, Figure 7 follows a week starting Wednesday, and routing
// churn is weekday-biased ("network operators not pushing out changes during
// the weekend"). SimCalendar provides that structure without touching the
// wall clock, keeping runs reproducible.
#pragma once

#include <string>

#include "common/types.h"

namespace acdn {

enum class Weekday { kMonday, kTuesday, kWednesday, kThursday, kFriday,
                     kSaturday, kSunday };

[[nodiscard]] const char* to_string(Weekday d);

[[nodiscard]] inline bool is_weekend(Weekday d) {
  return d == Weekday::kSaturday || d == Weekday::kSunday;
}

/// A proleptic-Gregorian calendar date.
struct Date {
  int year = 2015;
  int month = 4;  // 1-12
  int day = 1;    // 1-31

  [[nodiscard]] Weekday weekday() const;
  [[nodiscard]] Date plus_days(int n) const;
  [[nodiscard]] std::string to_string() const;  // "2015-04-01"

  auto operator<=>(const Date&) const = default;
};

/// Days-since-epoch for date arithmetic (Howard Hinnant's algorithm).
[[nodiscard]] long days_from_civil(const Date& d);
[[nodiscard]] Date civil_from_days(long z);

/// Maps a simulation's zero-based DayIndex onto calendar dates.
class SimCalendar {
 public:
  /// Default start matches the paper's passive data set: April 1, 2015,
  /// which was a Wednesday.
  explicit SimCalendar(Date start = Date{2015, 4, 1}) : start_(start) {}

  [[nodiscard]] Date date(DayIndex day) const { return start_.plus_days(day); }
  [[nodiscard]] Weekday weekday(DayIndex day) const {
    return date(day).weekday();
  }
  [[nodiscard]] bool is_weekend(DayIndex day) const {
    return acdn::is_weekend(weekday(day));
  }
  [[nodiscard]] Date start() const { return start_; }

 private:
  Date start_;
};

/// A point in simulated time: day index plus seconds within the day.
struct SimTime {
  DayIndex day = 0;
  double seconds = 0.0;  // [0, 86400)

  [[nodiscard]] double hour_of_day() const { return seconds / 3600.0; }
  auto operator<=>(const SimTime&) const = default;
};

}  // namespace acdn
