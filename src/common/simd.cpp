// Kernel implementations and runtime dispatch for common/simd.h.
//
// This translation unit is the one sanctioned home for raw SIMD
// intrinsics (enforced by acdn_lint's raw-intrinsics rule). Every vector
// body mirrors its scalar reference operation for operation — same IEEE
// ops, same association order, no FMA — so each lane rounds identically
// and the dispatch choice is invisible in the output. Tail elements
// (lengths not a multiple of the vector width) always run the scalar
// reference.
//
// Per-kernel target matrix (everything else falls back to scalar, which
// is always bit-identical by definition):
//   is_sorted_u64        avx2, neon        (sse2 lacks unsigned 64-bit >)
//   run_starts_u64       sse2, avx2, neon
//   pack_group_target    sse2, avx2, neon
//   base_rtt_batch       sse2, avx2        (fp on neon: see header)
//   diurnal_batch        avx2
//   haversine_batch      avx2
//   haversine_pairs      avx2

#include "common/simd.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <numbers>
#include <string_view>

#include "common/check.h"

#if defined(__x86_64__) || defined(_M_X64)
#define ACDN_SIMD_X86 1
#include <immintrin.h>
#if defined(__GNUC__)
#include <cpuid.h>
#endif
#elif defined(__aarch64__)
#define ACDN_SIMD_NEON_TARGET 1
#include <arm_neon.h>
#endif

namespace acdn::simd {

namespace {

constexpr double kPi = std::numbers::pi;
constexpr double kTwoPi = 2.0 * std::numbers::pi;

// ---------------------------------------------------------------------
// Capability detection and dispatch resolution.
// ---------------------------------------------------------------------

#if defined(ACDN_SIMD_X86)
bool detect_avx2() {
  unsigned eax = 0;
  unsigned ebx = 0;
  unsigned ecx = 0;
  unsigned edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return false;
  const bool osxsave = (ecx & (1u << 27)) != 0;
  const bool avx = (ecx & (1u << 28)) != 0;
  if (!osxsave || !avx) return false;
  // xgetbv: the OS must save/restore the ymm state (xmm|ymm bits).
  unsigned lo = 0;
  unsigned hi = 0;
  __asm__ volatile("xgetbv" : "=a"(lo), "=d"(hi) : "c"(0));
  if ((lo & 0x6u) != 0x6u) return false;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return false;
  return (ebx & (1u << 5)) != 0;
}
#endif

bool hardware_supports(Dispatch d) {
  switch (d) {
    case Dispatch::kScalar:
      return true;
#if defined(ACDN_SIMD_X86)
    case Dispatch::kSse2:
      return true;  // baseline x86-64
    case Dispatch::kAvx2:
      return detect_avx2();
#endif
#if defined(ACDN_SIMD_NEON_TARGET)
    case Dispatch::kNeon:
      return true;  // baseline aarch64
#endif
    default:
      return false;
  }
}

const std::vector<Dispatch>& available_list() {
  static const std::vector<Dispatch>* list = [] {
    auto* v = new std::vector<Dispatch>{Dispatch::kScalar};
    for (Dispatch d : {Dispatch::kSse2, Dispatch::kAvx2, Dispatch::kNeon}) {
      if (hardware_supports(d)) v->push_back(d);
    }
    return v;
  }();
  return *list;
}

Dispatch resolve_active() {
  Dispatch best = Dispatch::kScalar;
  for (Dispatch d : available_list()) best = std::max(best, d);
  // NEON never outranks scalar incorrectly here: on aarch64 the x86
  // targets are absent and kNeon is the only vector entry.
  const char* env = std::getenv("ACDN_SIMD");
  if (env == nullptr) return best;
  const std::string_view v(env);
  if (v.empty() || v == "auto") return best;
  if (v == "off" || v == "scalar") return Dispatch::kScalar;
  Dispatch want = Dispatch::kScalar;
  if (v == "sse2") {
    want = Dispatch::kSse2;
  } else if (v == "avx2") {
    want = Dispatch::kAvx2;
  } else if (v == "neon") {
    want = Dispatch::kNeon;
  } else {
    return Dispatch::kScalar;  // unknown value: conservative
  }
  if (hardware_supports(want)) return want;
  // Requested target unavailable: the strongest supported target that
  // still ranks below the request (always at least scalar).
  Dispatch fallback = Dispatch::kScalar;
  for (Dispatch a : available_list()) {
    if (a < want) fallback = std::max(fallback, a);
  }
  return fallback;
}

void check_dispatch(Dispatch d) {
  for (Dispatch a : available_list()) {
    if (a == d) return;
  }
  ACDN_CHECK(false) << "SIMD dispatch target '" << name(d)
                    << "' is not available on this machine";
}

// ---------------------------------------------------------------------
// Scalar references. Each *_span form takes a start index so the vector
// paths reuse it verbatim for their tails.
// ---------------------------------------------------------------------

bool is_sorted_u64_scalar(std::span<const std::uint64_t> keys,
                          std::size_t begin) {
  for (std::size_t i = std::max<std::size_t>(begin, 1); i < keys.size(); ++i) {
    if (keys[i - 1] > keys[i]) return false;
  }
  return true;
}

void run_starts_u64_scalar(std::span<const std::uint64_t> keys,
                           std::size_t begin,
                           std::vector<std::uint32_t>& starts) {
  for (std::size_t i = begin; i < keys.size(); ++i) {
    if (keys[i] != keys[i - 1]) {
      starts.push_back(static_cast<std::uint32_t>(i));
    }
  }
}

std::uint32_t pack_group_target_scalar(std::span<const std::uint32_t> group,
                                       std::span<const std::uint8_t> anycast,
                                       std::span<const std::uint32_t> fe,
                                       std::span<std::uint64_t> out,
                                       std::size_t begin) {
  std::uint32_t overflow = 0;
  for (std::size_t i = begin; i < group.size(); ++i) {
    const std::uint32_t m = anycast[i] != 0 ? 0xffffffffu : 0u;
    overflow |= ~m & fe[i] & 0x80000000u;
    const std::uint32_t lo = (m & 0x80000000u) | (~m & fe[i] & 0x7fffffffu);
    // NOLINT-ACDN(unchecked-pack): lo masked to 32 bits; fe overflow goes to the returned mask
    out[i] = (std::uint64_t{group[i]} << 32) | std::uint64_t{lo};
  }
  return overflow;
}

void base_rtt_scalar(std::span<const double> km,
                     std::span<const std::int32_t> as_hops,
                     std::span<const double> last_mile_ms, double km_per_rtt_ms,
                     double per_as_hop_ms, std::span<double> out,
                     std::size_t begin) {
  for (std::size_t i = begin; i < km.size(); ++i) {
    out[i] = km[i] / km_per_rtt_ms +
             per_as_hop_ms * static_cast<double>(as_hops[i]) +
             last_mile_ms[i];
  }
}

void diurnal_scalar(std::span<const double> hour, double peak_hour,
                    double amplitude, std::span<double> out,
                    std::size_t begin) {
  for (std::size_t i = begin; i < hour.size(); ++i) {
    const double phase = kTwoPi * (hour[i] - peak_hour) / 24.0;
    out[i] = 1.0 + amplitude * std::cos(phase);
  }
}

void haversine_scalar(double lat0_deg, double lon0_deg,
                      std::span<const double> lat_deg,
                      std::span<const double> lon_deg, double two_radius_km,
                      std::span<double> out_km, std::size_t begin) {
  // cos(phi1) is the same bits every iteration (same input), so hoisting
  // it matches haversine_km's per-call computation exactly.
  const double phi1 = lat0_deg * kPi / 180.0;
  const double cphi1 = std::cos(phi1);
  for (std::size_t i = begin; i < lat_deg.size(); ++i) {
    const double phi2 = lat_deg[i] * kPi / 180.0;
    const double dphi = (lat_deg[i] - lat0_deg) * kPi / 180.0;
    const double dlam = (lon_deg[i] - lon0_deg) * kPi / 180.0;
    const double s = std::sin(dphi / 2.0);
    const double t = std::sin(dlam / 2.0);
    const double h = s * s + cphi1 * std::cos(phi2) * t * t;
    out_km[i] = two_radius_km * std::asin(std::min(1.0, std::sqrt(h)));
  }
}

void haversine_pairs_scalar(std::span<const double> lat_a,
                            std::span<const double> lon_a,
                            std::span<const double> lat_b,
                            std::span<const double> lon_b,
                            double two_radius_km, std::span<double> out_km,
                            std::size_t begin) {
  for (std::size_t i = begin; i < lat_a.size(); ++i) {
    const double phi1 = lat_a[i] * kPi / 180.0;
    const double phi2 = lat_b[i] * kPi / 180.0;
    const double dphi = (lat_b[i] - lat_a[i]) * kPi / 180.0;
    const double dlam = (lon_b[i] - lon_a[i]) * kPi / 180.0;
    const double s = std::sin(dphi / 2.0);
    const double t = std::sin(dlam / 2.0);
    const double h = s * s + std::cos(phi1) * std::cos(phi2) * t * t;
    out_km[i] = two_radius_km * std::asin(std::min(1.0, std::sqrt(h)));
  }
}

// ---------------------------------------------------------------------
// x86 kernels.
// ---------------------------------------------------------------------

#if defined(ACDN_SIMD_X86)

// ---- SSE2 (baseline x86-64: no target attribute needed).

void run_starts_u64_sse2(std::span<const std::uint64_t> keys,
                         std::vector<std::uint32_t>& starts) {
  const std::size_t n = keys.size();
  std::size_t i = 1;
  for (; i + 2 <= n; i += 2) {
    const __m128i prev = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(keys.data() + i - 1));
    const __m128i cur =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys.data() + i));
    // 64-bit equality out of 32-bit compares: both halves must match.
    const __m128i eq32 = _mm_cmpeq_epi32(prev, cur);
    const __m128i eq64 =
        _mm_and_si128(eq32, _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1)));
    const int mask = _mm_movemask_pd(_mm_castsi128_pd(eq64));
    if (mask == 0x3) continue;
    if ((mask & 1) == 0) starts.push_back(static_cast<std::uint32_t>(i));
    if ((mask & 2) == 0) starts.push_back(static_cast<std::uint32_t>(i + 1));
  }
  run_starts_u64_scalar(keys, i, starts);
}

std::uint32_t pack_group_target_sse2(std::span<const std::uint32_t> group,
                                     std::span<const std::uint8_t> anycast,
                                     std::span<const std::uint32_t> fe,
                                     std::span<std::uint64_t> out) {
  const std::size_t n = group.size();
  const __m128i zero = _mm_setzero_si128();
  const __m128i high = _mm_set1_epi32(static_cast<int>(0x80000000u));
  const __m128i low31 = _mm_set1_epi32(0x7fffffff);
  __m128i overflow = zero;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i vg =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(group.data() + i));
    const __m128i vfe =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(fe.data() + i));
    std::uint32_t abits = 0;
    std::memcpy(&abits, anycast.data() + i, 4);
    __m128i va = _mm_cvtsi32_si128(static_cast<int>(abits));
    va = _mm_unpacklo_epi8(va, zero);
    va = _mm_unpacklo_epi16(va, zero);
    const __m128i vmask = _mm_cmpgt_epi32(va, zero);  // nonzero byte => -1
    overflow = _mm_or_si128(
        overflow, _mm_andnot_si128(vmask, _mm_and_si128(vfe, high)));
    const __m128i vlo =
        _mm_or_si128(_mm_and_si128(vmask, high),
                     _mm_andnot_si128(vmask, _mm_and_si128(vfe, low31)));
    // u64 = group<<32 | lo: little-endian word pairs (lo, group).
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out.data() + i),
                     _mm_unpacklo_epi32(vlo, vg));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out.data() + i + 2),
                     _mm_unpackhi_epi32(vlo, vg));
  }
  alignas(16) std::uint32_t acc[4];
  _mm_store_si128(reinterpret_cast<__m128i*>(acc), overflow);
  return (acc[0] | acc[1] | acc[2] | acc[3]) |
         pack_group_target_scalar(group, anycast, fe, out, i);
}

void base_rtt_sse2(std::span<const double> km,
                   std::span<const std::int32_t> as_hops,
                   std::span<const double> last_mile_ms, double km_per_rtt_ms,
                   double per_as_hop_ms, std::span<double> out) {
  const std::size_t n = km.size();
  const __m128d vkmper = _mm_set1_pd(km_per_rtt_ms);
  const __m128d vperhop = _mm_set1_pd(per_as_hop_ms);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d vkm = _mm_loadu_pd(km.data() + i);
    const __m128i vhops32 = _mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(as_hops.data() + i));
    const __m128d vhops = _mm_cvtepi32_pd(vhops32);
    const __m128d vlm = _mm_loadu_pd(last_mile_ms.data() + i);
    const __m128d r =
        _mm_add_pd(_mm_add_pd(_mm_div_pd(vkm, vkmper),
                              _mm_mul_pd(vperhop, vhops)),
                   vlm);
    _mm_storeu_pd(out.data() + i, r);
  }
  base_rtt_scalar(km, as_hops, last_mile_ms, km_per_rtt_ms, per_as_hop_ms, out,
                  i);
}

// ---- AVX2 (runtime-gated; compiled with a per-function target).

__attribute__((target("avx2"))) bool is_sorted_u64_avx2(
    std::span<const std::uint64_t> keys) {
  const std::size_t n = keys.size();
  if (n < 2) return true;
  const __m256i bias =
      _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ull));
  std::size_t i = 1;
  for (; i + 4 <= n; i += 4) {
    const __m256i prev = _mm256_xor_si256(
        _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(keys.data() + i - 1)),
        bias);
    const __m256i cur = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys.data() + i)),
        bias);
    // Unsigned prev > cur via the sign-bias trick.
    if (_mm256_movemask_epi8(_mm256_cmpgt_epi64(prev, cur)) != 0) return false;
  }
  return is_sorted_u64_scalar(keys, i);
}

__attribute__((target("avx2"))) void run_starts_u64_avx2(
    std::span<const std::uint64_t> keys, std::vector<std::uint32_t>& starts) {
  const std::size_t n = keys.size();
  std::size_t i = 1;
  for (; i + 4 <= n; i += 4) {
    const __m256i prev = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(keys.data() + i - 1));
    const __m256i cur =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys.data() + i));
    const int mask = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(prev, cur)));
    if (mask == 0xf) continue;
    for (int lane = 0; lane < 4; ++lane) {
      if ((mask & (1 << lane)) == 0) {
        starts.push_back(
            static_cast<std::uint32_t>(i + static_cast<std::size_t>(lane)));
      }
    }
  }
  run_starts_u64_scalar(keys, i, starts);
}

__attribute__((target("avx2"))) std::uint32_t pack_group_target_avx2(
    std::span<const std::uint32_t> group, std::span<const std::uint8_t> anycast,
    std::span<const std::uint32_t> fe, std::span<std::uint64_t> out) {
  const std::size_t n = group.size();
  const __m128i zero = _mm_setzero_si128();
  const __m128i high = _mm_set1_epi32(static_cast<int>(0x80000000u));
  const __m128i low31 = _mm_set1_epi32(0x7fffffff);
  __m128i overflow = zero;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i vg =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(group.data() + i));
    const __m128i vfe =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(fe.data() + i));
    std::uint32_t abits = 0;
    std::memcpy(&abits, anycast.data() + i, 4);
    __m128i va = _mm_cvtsi32_si128(static_cast<int>(abits));
    va = _mm_unpacklo_epi8(va, zero);
    va = _mm_unpacklo_epi16(va, zero);
    const __m128i vmask = _mm_cmpgt_epi32(va, zero);
    overflow = _mm_or_si128(
        overflow, _mm_andnot_si128(vmask, _mm_and_si128(vfe, high)));
    const __m128i vlo =
        _mm_or_si128(_mm_and_si128(vmask, high),
                     _mm_andnot_si128(vmask, _mm_and_si128(vfe, low31)));
    const __m256i g64 = _mm256_cvtepu32_epi64(vg);
    const __m256i lo64 = _mm256_cvtepu32_epi64(vlo);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out.data() + i),
                        _mm256_or_si256(_mm256_slli_epi64(g64, 32), lo64));
  }
  alignas(16) std::uint32_t acc[4];
  _mm_store_si128(reinterpret_cast<__m128i*>(acc), overflow);
  return (acc[0] | acc[1] | acc[2] | acc[3]) |
         pack_group_target_scalar(group, anycast, fe, out, i);
}

__attribute__((target("avx2"))) void base_rtt_avx2(
    std::span<const double> km, std::span<const std::int32_t> as_hops,
    std::span<const double> last_mile_ms, double km_per_rtt_ms,
    double per_as_hop_ms, std::span<double> out) {
  const std::size_t n = km.size();
  const __m256d vkmper = _mm256_set1_pd(km_per_rtt_ms);
  const __m256d vperhop = _mm256_set1_pd(per_as_hop_ms);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vkm = _mm256_loadu_pd(km.data() + i);
    const __m128i vhops32 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(as_hops.data() + i));
    const __m256d vhops = _mm256_cvtepi32_pd(vhops32);
    const __m256d vlm = _mm256_loadu_pd(last_mile_ms.data() + i);
    const __m256d r =
        _mm256_add_pd(_mm256_add_pd(_mm256_div_pd(vkm, vkmper),
                                    _mm256_mul_pd(vperhop, vhops)),
                      vlm);
    _mm256_storeu_pd(out.data() + i, r);
  }
  base_rtt_scalar(km, as_hops, last_mile_ms, km_per_rtt_ms, per_as_hop_ms, out,
                  i);
}

__attribute__((target("avx2"))) void diurnal_avx2(std::span<const double> hour,
                                                  double peak_hour,
                                                  double amplitude,
                                                  std::span<double> out) {
  const std::size_t n = hour.size();
  const __m256d v2pi = _mm256_set1_pd(kTwoPi);
  const __m256d v24 = _mm256_set1_pd(24.0);
  const __m256d v1 = _mm256_set1_pd(1.0);
  const __m256d vpeak = _mm256_set1_pd(peak_hour);
  const __m256d vamp = _mm256_set1_pd(amplitude);
  alignas(32) double lanes[4];
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vh = _mm256_loadu_pd(hour.data() + i);
    const __m256d vphase =
        _mm256_div_pd(_mm256_mul_pd(v2pi, _mm256_sub_pd(vh, vpeak)), v24);
    _mm256_store_pd(lanes, vphase);
    for (double& lane : lanes) lane = std::cos(lane);
    const __m256d vcos = _mm256_load_pd(lanes);
    _mm256_storeu_pd(out.data() + i,
                     _mm256_add_pd(v1, _mm256_mul_pd(vamp, vcos)));
  }
  diurnal_scalar(hour, peak_hour, amplitude, out, i);
}

/// Shared AVX2 haversine body: origin lanes either broadcast (fixed
/// origin) or loaded per lane (pairs). The libm calls run scalar on
/// stored lanes; everything around them is packed mul/add/div/sqrt/min,
/// all correctly rounded per lane.
__attribute__((target("avx2"))) void haversine_core_avx2(
    const double* lat_a, const double* lon_a, bool a_fixed,
    const double* lat_b, const double* lon_b, double two_radius_km,
    double* out_km, std::size_t n, std::size_t* done) {
  const __m256d vpi = _mm256_set1_pd(kPi);
  const __m256d v180 = _mm256_set1_pd(180.0);
  const __m256d v2 = _mm256_set1_pd(2.0);
  const __m256d v1 = _mm256_set1_pd(1.0);
  const __m256d vscale = _mm256_set1_pd(two_radius_km);
  alignas(32) double ls[4];
  alignas(32) double lt[4];
  alignas(32) double lc1[4];
  alignas(32) double lc2[4];
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vlat_a =
        a_fixed ? _mm256_set1_pd(lat_a[0]) : _mm256_loadu_pd(lat_a + i);
    const __m256d vlon_a =
        a_fixed ? _mm256_set1_pd(lon_a[0]) : _mm256_loadu_pd(lon_a + i);
    const __m256d vlat_b = _mm256_loadu_pd(lat_b + i);
    const __m256d vlon_b = _mm256_loadu_pd(lon_b + i);
    const __m256d vphi1 = _mm256_div_pd(_mm256_mul_pd(vlat_a, vpi), v180);
    const __m256d vphi2 = _mm256_div_pd(_mm256_mul_pd(vlat_b, vpi), v180);
    const __m256d vdphi = _mm256_div_pd(
        _mm256_mul_pd(_mm256_sub_pd(vlat_b, vlat_a), vpi), v180);
    const __m256d vdlam = _mm256_div_pd(
        _mm256_mul_pd(_mm256_sub_pd(vlon_b, vlon_a), vpi), v180);
    _mm256_store_pd(ls, _mm256_div_pd(vdphi, v2));
    _mm256_store_pd(lt, _mm256_div_pd(vdlam, v2));
    _mm256_store_pd(lc1, vphi1);
    _mm256_store_pd(lc2, vphi2);
    for (int lane = 0; lane < 4; ++lane) {
      ls[lane] = std::sin(ls[lane]);
      lt[lane] = std::sin(lt[lane]);
      lc1[lane] = std::cos(lc1[lane]);
      lc2[lane] = std::cos(lc2[lane]);
    }
    const __m256d vs = _mm256_load_pd(ls);
    const __m256d vt = _mm256_load_pd(lt);
    const __m256d vc1 = _mm256_load_pd(lc1);
    const __m256d vc2 = _mm256_load_pd(lc2);
    // h = s*s + ((c1*c2)*t)*t — haversine_km's association order.
    const __m256d vh = _mm256_add_pd(
        _mm256_mul_pd(vs, vs),
        _mm256_mul_pd(_mm256_mul_pd(_mm256_mul_pd(vc1, vc2), vt), vt));
    // min(1.0, sqrt(h)): minpd(a, 1) returns a when a < 1, else 1 —
    // exactly std::min's (b < a ? b : a) with a = 1.
    const __m256d vclamped = _mm256_min_pd(_mm256_sqrt_pd(vh), v1);
    _mm256_store_pd(ls, vclamped);
    for (double& lane : ls) lane = std::asin(lane);
    _mm256_storeu_pd(out_km + i, _mm256_mul_pd(vscale, _mm256_load_pd(ls)));
  }
  *done = i;
}

#endif  // ACDN_SIMD_X86

// ---------------------------------------------------------------------
// NEON kernels (aarch64 baseline; integer kernels only — see header).
// ---------------------------------------------------------------------

#if defined(ACDN_SIMD_NEON_TARGET)

bool is_sorted_u64_neon(std::span<const std::uint64_t> keys) {
  const std::size_t n = keys.size();
  if (n < 2) return true;
  std::size_t i = 1;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t prev = vld1q_u64(keys.data() + i - 1);
    const uint64x2_t cur = vld1q_u64(keys.data() + i);
    const uint64x2_t gt = vcgtq_u64(prev, cur);
    if (vmaxvq_u32(vreinterpretq_u32_u64(gt)) != 0) return false;
  }
  return is_sorted_u64_scalar(keys, i);
}

void run_starts_u64_neon(std::span<const std::uint64_t> keys,
                         std::vector<std::uint32_t>& starts) {
  const std::size_t n = keys.size();
  std::size_t i = 1;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t prev = vld1q_u64(keys.data() + i - 1);
    const uint64x2_t cur = vld1q_u64(keys.data() + i);
    const uint64x2_t eq = vceqq_u64(prev, cur);
    if (vminvq_u32(vreinterpretq_u32_u64(eq)) == 0xffffffffu) continue;
    if (vgetq_lane_u64(eq, 0) == 0) {
      starts.push_back(static_cast<std::uint32_t>(i));
    }
    if (vgetq_lane_u64(eq, 1) == 0) {
      starts.push_back(static_cast<std::uint32_t>(i + 1));
    }
  }
  run_starts_u64_scalar(keys, i, starts);
}

std::uint32_t pack_group_target_neon(std::span<const std::uint32_t> group,
                                     std::span<const std::uint8_t> anycast,
                                     std::span<const std::uint32_t> fe,
                                     std::span<std::uint64_t> out) {
  const std::size_t n = group.size();
  const uint32x4_t high = vdupq_n_u32(0x80000000u);
  const uint32x4_t low31 = vdupq_n_u32(0x7fffffffu);
  uint32x4_t overflow = vdupq_n_u32(0);
  std::size_t i = 0;
  std::uint32_t mbuf[4];
  for (; i + 4 <= n; i += 4) {
    const uint32x4_t vg = vld1q_u32(group.data() + i);
    const uint32x4_t vfe = vld1q_u32(fe.data() + i);
    for (std::size_t lane = 0; lane < 4; ++lane) {
      mbuf[lane] = anycast[i + lane] != 0 ? 0xffffffffu : 0u;
    }
    const uint32x4_t vmask = vld1q_u32(mbuf);
    overflow = vorrq_u32(overflow, vbicq_u32(vandq_u32(vfe, high), vmask));
    const uint32x4_t vlo = vorrq_u32(vandq_u32(vmask, high),
                                     vbicq_u32(vandq_u32(vfe, low31), vmask));
    const uint64x2_t lo01 = vmovl_u32(vget_low_u32(vlo));
    const uint64x2_t lo23 = vmovl_u32(vget_high_u32(vlo));
    const uint64x2_t g01 = vmovl_u32(vget_low_u32(vg));
    const uint64x2_t g23 = vmovl_u32(vget_high_u32(vg));
    vst1q_u64(out.data() + i, vorrq_u64(vshlq_n_u64(g01, 32), lo01));
    vst1q_u64(out.data() + i + 2, vorrq_u64(vshlq_n_u64(g23, 32), lo23));
  }
  const std::uint32_t acc = vgetq_lane_u32(overflow, 0) |
                            vgetq_lane_u32(overflow, 1) |
                            vgetq_lane_u32(overflow, 2) |
                            vgetq_lane_u32(overflow, 3);
  return acc | pack_group_target_scalar(group, anycast, fe, out, i);
}

#endif  // ACDN_SIMD_NEON_TARGET

}  // namespace

// ---------------------------------------------------------------------
// Public dispatch surface.
// ---------------------------------------------------------------------

const char* name(Dispatch d) {
  switch (d) {
    case Dispatch::kScalar: return "scalar";
    case Dispatch::kSse2: return "sse2";
    case Dispatch::kAvx2: return "avx2";
    case Dispatch::kNeon: return "neon";
  }
  return "?";
}

Dispatch active() {
  // Magic static: resolved exactly once, race-free under C++11 thread-
  // safe initialization; no mutable state thereafter.
  static const Dispatch d = resolve_active();
  return d;
}

std::span<const Dispatch> available() {
  const std::vector<Dispatch>& list = available_list();
  return {list.data(), list.size()};
}

bool is_sorted_u64_at(Dispatch d, std::span<const std::uint64_t> keys) {
  check_dispatch(d);
  switch (d) {
#if defined(ACDN_SIMD_X86)
    case Dispatch::kAvx2:
      return is_sorted_u64_avx2(keys);
#endif
#if defined(ACDN_SIMD_NEON_TARGET)
    case Dispatch::kNeon:
      return is_sorted_u64_neon(keys);
#endif
    default:
      return is_sorted_u64_scalar(keys, 1);
  }
}

bool is_sorted_u64(std::span<const std::uint64_t> keys) {
  return is_sorted_u64_at(active(), keys);
}

void run_starts_u64_at(Dispatch d, std::span<const std::uint64_t> keys,
                       std::vector<std::uint32_t>& starts) {
  check_dispatch(d);
  starts.clear();
  if (keys.empty()) return;
  starts.push_back(0);
  switch (d) {
#if defined(ACDN_SIMD_X86)
    case Dispatch::kSse2:
      run_starts_u64_sse2(keys, starts);
      return;
    case Dispatch::kAvx2:
      run_starts_u64_avx2(keys, starts);
      return;
#endif
#if defined(ACDN_SIMD_NEON_TARGET)
    case Dispatch::kNeon:
      run_starts_u64_neon(keys, starts);
      return;
#endif
    default:
      run_starts_u64_scalar(keys, 1, starts);
      return;
  }
}

void run_starts_u64(std::span<const std::uint64_t> keys,
                    std::vector<std::uint32_t>& starts) {
  run_starts_u64_at(active(), keys, starts);
}

std::uint32_t pack_group_target_at(Dispatch d,
                                   std::span<const std::uint32_t> group,
                                   std::span<const std::uint8_t> anycast,
                                   std::span<const std::uint32_t> fe,
                                   std::span<std::uint64_t> out) {
  check_dispatch(d);
  ACDN_CHECK_EQ(group.size(), anycast.size());
  ACDN_CHECK_EQ(group.size(), fe.size());
  ACDN_CHECK_EQ(group.size(), out.size());
  switch (d) {
#if defined(ACDN_SIMD_X86)
    case Dispatch::kSse2:
      return pack_group_target_sse2(group, anycast, fe, out);
    case Dispatch::kAvx2:
      return pack_group_target_avx2(group, anycast, fe, out);
#endif
#if defined(ACDN_SIMD_NEON_TARGET)
    case Dispatch::kNeon:
      return pack_group_target_neon(group, anycast, fe, out);
#endif
    default:
      return pack_group_target_scalar(group, anycast, fe, out, 0);
  }
}

std::uint32_t pack_group_target(std::span<const std::uint32_t> group,
                                std::span<const std::uint8_t> anycast,
                                std::span<const std::uint32_t> fe,
                                std::span<std::uint64_t> out) {
  return pack_group_target_at(active(), group, anycast, fe, out);
}

void base_rtt_batch_at(Dispatch d, std::span<const double> km,
                       std::span<const std::int32_t> as_hops,
                       std::span<const double> last_mile_ms,
                       double km_per_rtt_ms, double per_as_hop_ms,
                       std::span<double> out) {
  check_dispatch(d);
  ACDN_CHECK_EQ(km.size(), as_hops.size());
  ACDN_CHECK_EQ(km.size(), last_mile_ms.size());
  ACDN_CHECK_EQ(km.size(), out.size());
  switch (d) {
#if defined(ACDN_SIMD_X86)
    case Dispatch::kSse2:
      base_rtt_sse2(km, as_hops, last_mile_ms, km_per_rtt_ms, per_as_hop_ms,
                    out);
      return;
    case Dispatch::kAvx2:
      base_rtt_avx2(km, as_hops, last_mile_ms, km_per_rtt_ms, per_as_hop_ms,
                    out);
      return;
#endif
    default:
      base_rtt_scalar(km, as_hops, last_mile_ms, km_per_rtt_ms, per_as_hop_ms,
                      out, 0);
      return;
  }
}

void base_rtt_batch(std::span<const double> km,
                    std::span<const std::int32_t> as_hops,
                    std::span<const double> last_mile_ms, double km_per_rtt_ms,
                    double per_as_hop_ms, std::span<double> out) {
  base_rtt_batch_at(active(), km, as_hops, last_mile_ms, km_per_rtt_ms,
                    per_as_hop_ms, out);
}

void diurnal_batch_at(Dispatch d, std::span<const double> hour,
                      double peak_hour, double amplitude,
                      std::span<double> out) {
  check_dispatch(d);
  ACDN_CHECK_EQ(hour.size(), out.size());
  switch (d) {
#if defined(ACDN_SIMD_X86)
    case Dispatch::kAvx2:
      diurnal_avx2(hour, peak_hour, amplitude, out);
      return;
#endif
    default:
      diurnal_scalar(hour, peak_hour, amplitude, out, 0);
      return;
  }
}

void diurnal_batch(std::span<const double> hour, double peak_hour,
                   double amplitude, std::span<double> out) {
  diurnal_batch_at(active(), hour, peak_hour, amplitude, out);
}

void haversine_batch_at(Dispatch d, double lat0_deg, double lon0_deg,
                        std::span<const double> lat_deg,
                        std::span<const double> lon_deg, double two_radius_km,
                        std::span<double> out_km) {
  check_dispatch(d);
  ACDN_CHECK_EQ(lat_deg.size(), lon_deg.size());
  ACDN_CHECK_EQ(lat_deg.size(), out_km.size());
  switch (d) {
#if defined(ACDN_SIMD_X86)
    case Dispatch::kAvx2: {
      std::size_t done = 0;
      haversine_core_avx2(&lat0_deg, &lon0_deg, /*a_fixed=*/true,
                          lat_deg.data(), lon_deg.data(), two_radius_km,
                          out_km.data(), lat_deg.size(), &done);
      haversine_scalar(lat0_deg, lon0_deg, lat_deg, lon_deg, two_radius_km,
                       out_km, done);
      return;
    }
#endif
    default:
      haversine_scalar(lat0_deg, lon0_deg, lat_deg, lon_deg, two_radius_km,
                       out_km, 0);
      return;
  }
}

void haversine_batch(double lat0_deg, double lon0_deg,
                     std::span<const double> lat_deg,
                     std::span<const double> lon_deg, double two_radius_km,
                     std::span<double> out_km) {
  haversine_batch_at(active(), lat0_deg, lon0_deg, lat_deg, lon_deg,
                     two_radius_km, out_km);
}

void haversine_pairs_batch_at(Dispatch d, std::span<const double> lat_a,
                              std::span<const double> lon_a,
                              std::span<const double> lat_b,
                              std::span<const double> lon_b,
                              double two_radius_km, std::span<double> out_km) {
  check_dispatch(d);
  ACDN_CHECK_EQ(lat_a.size(), lon_a.size());
  ACDN_CHECK_EQ(lat_a.size(), lat_b.size());
  ACDN_CHECK_EQ(lat_a.size(), lon_b.size());
  ACDN_CHECK_EQ(lat_a.size(), out_km.size());
  switch (d) {
#if defined(ACDN_SIMD_X86)
    case Dispatch::kAvx2: {
      std::size_t done = 0;
      haversine_core_avx2(lat_a.data(), lon_a.data(), /*a_fixed=*/false,
                          lat_b.data(), lon_b.data(), two_radius_km,
                          out_km.data(), lat_a.size(), &done);
      haversine_pairs_scalar(lat_a, lon_a, lat_b, lon_b, two_radius_km, out_km,
                             done);
      return;
    }
#endif
    default:
      haversine_pairs_scalar(lat_a, lon_a, lat_b, lon_b, two_radius_km, out_km,
                             0);
      return;
  }
}

void haversine_pairs_batch(std::span<const double> lat_a,
                           std::span<const double> lon_a,
                           std::span<const double> lat_b,
                           std::span<const double> lon_b, double two_radius_km,
                           std::span<double> out_km) {
  haversine_pairs_batch_at(active(), lat_a, lon_a, lat_b, lon_b, two_radius_km,
                           out_km);
}

}  // namespace acdn::simd
