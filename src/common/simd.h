// Runtime-dispatched SIMD kernels for the measurement pipeline.
//
// Policy: *elementwise kernels only*. Every kernel here computes
// out[i] = f(in[i]) lane by lane in the same IEEE operation order as its
// scalar reference, so the vector and scalar paths are bit-identical and
// golden digests cannot depend on which dispatch ran. Order-sensitive
// floating-point reductions (sums, folds) are explicitly out of scope —
// they stay on the executor's deterministic chunk-ordered fold trees.
// Bitwise reductions (the OR-accumulated validation masks below) are
// exactly associative and therefore allowed.
//
// Bit-identity argument: this repo builds without -march flags, so x86
// code is baseline x86-64 — no FMA instruction exists and a*b+c cannot
// contract; SSE2/AVX2 packed mul/add/div/sqrt round identically to their
// scalar counterparts. Kernels never use FMA intrinsics, and libm calls
// (sin/cos/asin) run scalar per lane on every path. On aarch64, where
// baseline FMA makes scalar contraction compiler-dependent, the
// floating-point kernels route to scalar; NEON covers the integer
// kernels only.
//
// Dispatch is selected once, race-free (C++11 magic static), from CPUID
// capped by the ACDN_SIMD environment variable:
//   ACDN_SIMD=off|scalar  force the scalar reference path
//   ACDN_SIMD=sse2|avx2|neon  cap at that target (clamped to hardware)
//   ACDN_SIMD=auto (or unset)  best supported target
// Each kernel also has a *_at(Dispatch, ...) entry point so tests can
// sweep every compiled-in target against the scalar reference.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace acdn::simd {

enum class Dispatch : std::uint8_t {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
  kNeon = 3,
};

/// Stable lowercase name ("scalar", "sse2", ...), for logs and bench JSON.
const char* name(Dispatch d);

/// The dispatch every auto-entry point uses: best hardware-supported
/// target capped by ACDN_SIMD. Resolved once; thread-safe.
Dispatch active();

/// Every target this binary compiled in *and* this machine can run,
/// scalar first. Bit-identity sweeps iterate this list.
std::span<const Dispatch> available();

// ---- Kernels (auto dispatch). Contracts: spans of equal length; float
// ---- inputs finite (NaN/inf excluded by the callers' data model);
// ---- lengths bounded by UINT32_MAX where u32 indices are produced.

/// True when keys[i] <= keys[i+1] for all i (ascending, duplicates ok).
bool is_sorted_u64(std::span<const std::uint64_t> keys);

/// Appends to `starts` the index of every maximal-run start: 0 (when
/// non-empty) and every i with keys[i] != keys[i-1]. `starts` is cleared
/// first.
void run_starts_u64(std::span<const std::uint64_t> keys,
                    std::vector<std::uint32_t>& starts);

/// Packed aggregation key: out[i] = group[i]<<32 | (anycast[i] ? 1<<31
/// : fe[i]). Returns the OR of all unicast fe[i] high bits — nonzero
/// means some unicast front-end id overflowed the 31-bit field and the
/// caller must fail. Anycast lanes ignore fe[i] entirely (the invalid
/// sentinel 0xFFFFFFFF never reaches the key).
std::uint32_t pack_group_target(std::span<const std::uint32_t> group,
                                std::span<const std::uint8_t> anycast,
                                std::span<const std::uint32_t> fe,
                                std::span<std::uint64_t> out);

/// Batch of RttModel::base_rtt: out[i] = km[i] / km_per_rtt_ms
/// + per_as_hop_ms * as_hops[i] + last_mile_ms[i], in exactly that
/// association order.
void base_rtt_batch(std::span<const double> km,
                    std::span<const std::int32_t> as_hops,
                    std::span<const double> last_mile_ms, double km_per_rtt_ms,
                    double per_as_hop_ms, std::span<double> out);

/// Batch of RttModel::diurnal_factor: out[i] = 1 + amplitude *
/// cos(2*pi*(hour[i] - peak_hour)/24). The cosine runs scalar per lane.
void diurnal_batch(std::span<const double> hour, double peak_hour,
                   double amplitude, std::span<double> out);

/// Batch haversine, one fixed origin: out_km[i] = the exact operation
/// sequence of geo/geo_point.h's haversine_km({lat0,lon0},
/// {lat[i],lon[i]}). `two_radius_km` is 2*R (exact: doubling never
/// rounds), kept a parameter so common stays below geo in the layer
/// DAG. Trig runs scalar per lane; the surrounding mul/add/sqrt/min
/// algebra vectorizes bit-identically.
void haversine_batch(double lat0_deg, double lon0_deg,
                     std::span<const double> lat_deg,
                     std::span<const double> lon_deg, double two_radius_km,
                     std::span<double> out_km);

/// Pairwise haversine: out_km[i] = haversine_km({lat_a[i],lon_a[i]},
/// {lat_b[i],lon_b[i]}), both endpoints varying per lane.
void haversine_pairs_batch(std::span<const double> lat_a,
                           std::span<const double> lon_a,
                           std::span<const double> lat_b,
                           std::span<const double> lon_b,
                           double two_radius_km, std::span<double> out_km);

// ---- Explicit-dispatch variants for the bit-identity test sweep. `d`
// ---- must come from available(); anything else fails a check.

bool is_sorted_u64_at(Dispatch d, std::span<const std::uint64_t> keys);
void run_starts_u64_at(Dispatch d, std::span<const std::uint64_t> keys,
                       std::vector<std::uint32_t>& starts);
std::uint32_t pack_group_target_at(Dispatch d,
                                   std::span<const std::uint32_t> group,
                                   std::span<const std::uint8_t> anycast,
                                   std::span<const std::uint32_t> fe,
                                   std::span<std::uint64_t> out);
void base_rtt_batch_at(Dispatch d, std::span<const double> km,
                       std::span<const std::int32_t> as_hops,
                       std::span<const double> last_mile_ms,
                       double km_per_rtt_ms, double per_as_hop_ms,
                       std::span<double> out);
void diurnal_batch_at(Dispatch d, std::span<const double> hour,
                      double peak_hour, double amplitude,
                      std::span<double> out);
void haversine_batch_at(Dispatch d, double lat0_deg, double lon0_deg,
                        std::span<const double> lat_deg,
                        std::span<const double> lon_deg, double two_radius_km,
                        std::span<double> out_km);
void haversine_pairs_batch_at(Dispatch d, std::span<const double> lat_a,
                              std::span<const double> lon_a,
                              std::span<const double> lat_b,
                              std::span<const double> lon_b,
                              double two_radius_km, std::span<double> out_km);

}  // namespace acdn::simd
