// Lock-discipline annotations and annotated mutex types.
//
// Wraps Clang's thread-safety attributes behind ACDN_* macros (no-ops on
// other compilers) and provides the capability-annotated mutex wrappers
// the rest of the tree must use instead of raw std::mutex /
// std::shared_mutex. With the wrappers, `-Wthread-safety -Werror` (on in
// every Clang CI leg) proves at compile time that every ACDN_GUARDED_BY
// member is only touched under its mutex — the class of bug that shipped
// as the beacon unicast-route-cache double-compute race (PR 7) becomes a
// build failure instead of a scheduling-dependent counter.
//
// Policy (docs/ARCHITECTURE.md, "Correctness tooling"):
//   * every mutex member is an acdn::Mutex or acdn::SharedMutex — the
//     acdn_lint `unguarded-mutex` rule fails CI on a raw std mutex type
//     in src/ outside this header;
//   * every member whose access is serialized by that mutex carries
//     ACDN_GUARDED_BY(mutex_name);
//   * functions that take or require a lock are annotated with
//     ACDN_ACQUIRE / ACDN_REQUIRES / ACDN_EXCLUDES as appropriate;
//   * condition-variable waits pair std::condition_variable_any with the
//     relockable MutexLock below (std::condition_variable would need the
//     raw std::mutex back).
#pragma once

#include <mutex>
#include <shared_mutex>

// ----------------------------------------------------------- attributes

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define ACDN_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef ACDN_THREAD_ANNOTATION
#define ACDN_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Marks a type as a lockable capability ("mutex", "shared_mutex").
#define ACDN_CAPABILITY(x) ACDN_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose lifetime acquires/releases a capability.
#define ACDN_SCOPED_CAPABILITY ACDN_THREAD_ANNOTATION(scoped_lockable)

/// Member may only be read or written while holding `x`.
#define ACDN_GUARDED_BY(x) ACDN_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member: the pointee (not the pointer) is guarded by `x`.
#define ACDN_PT_GUARDED_BY(x) ACDN_THREAD_ANNOTATION(pt_guarded_by(x))

/// Caller must hold `...` exclusively before calling.
#define ACDN_REQUIRES(...) \
  ACDN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must hold `...` at least shared before calling.
#define ACDN_REQUIRES_SHARED(...) \
  ACDN_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires `...` exclusively and does not release it.
#define ACDN_ACQUIRE(...) \
  ACDN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function acquires `...` shared and does not release it.
#define ACDN_ACQUIRE_SHARED(...) \
  ACDN_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases `...` (exclusive or shared).
#define ACDN_RELEASE(...) \
  ACDN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define ACDN_RELEASE_SHARED(...) \
  ACDN_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function acquires `...` on a true return (try_lock shape).
#define ACDN_TRY_ACQUIRE(...) \
  ACDN_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold `...` (deadlock prevention on self-locking fns).
#define ACDN_EXCLUDES(...) ACDN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Returns a reference to the capability `x` (accessor idiom).
#define ACDN_RETURN_CAPABILITY(x) ACDN_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: body is exempt from analysis. Pair with a comment
/// explaining why, the same standard NOLINT-ACDN holds itself to.
#define ACDN_NO_THREAD_SAFETY_ANALYSIS \
  ACDN_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace acdn {

// ------------------------------------------------------- annotated types
//
// Thin wrappers: same fast paths as the std primitives they hold (the
// std object is the sole member), but carrying the capability attribute
// Clang's analysis keys on. libstdc++ ships std::mutex unannotated, so
// annotating call sites alone would verify nothing.

/// Exclusive mutex. BasicLockable, so std::condition_variable_any and
/// std::lock_guard-style generic code still work where needed.
class ACDN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACDN_ACQUIRE() { m_.lock(); }
  void unlock() ACDN_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() ACDN_TRY_ACQUIRE(true) {
    return m_.try_lock();
  }

 private:
  std::mutex m_;  // NOLINT-ACDN(unguarded-mutex): the annotated wrapper
                  // itself; every other std::mutex in src/ must be a Mutex
};

/// Reader-writer mutex (exclusive + shared modes).
class ACDN_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACDN_ACQUIRE() { m_.lock(); }
  void unlock() ACDN_RELEASE() { m_.unlock(); }
  void lock_shared() ACDN_ACQUIRE_SHARED() { m_.lock_shared(); }
  void unlock_shared() ACDN_RELEASE_SHARED() { m_.unlock_shared(); }

 private:
  std::shared_mutex m_;  // NOLINT-ACDN(unguarded-mutex): the annotated
                         // wrapper for std::shared_mutex (see Mutex above)
};

/// Scoped exclusive lock over Mutex. Relockable — lock()/unlock() exist
/// so a std::condition_variable_any can wait on it — and BasicLockable.
class ACDN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ACDN_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
    held_ = true;
  }
  ~MutexLock() ACDN_RELEASE() {
    if (held_) mutex_.unlock();
  }

  /// Manual relock cycle (condition-variable waits).
  void lock() ACDN_ACQUIRE() {
    mutex_.lock();
    held_ = true;
  }
  void unlock() ACDN_RELEASE() {
    held_ = false;
    mutex_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
  bool held_ = false;
};

/// Scoped exclusive (writer) lock over SharedMutex.
class ACDN_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mutex) ACDN_ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.lock();
  }
  ~WriterMutexLock() ACDN_RELEASE() { mutex_.unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// Scoped shared (reader) lock over SharedMutex.
class ACDN_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mutex) ACDN_ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex_.lock_shared();
  }
  ~ReaderMutexLock() ACDN_RELEASE() { mutex_.unlock_shared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mutex_;
};

}  // namespace acdn
