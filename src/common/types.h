// Fundamental value types shared across the library.
#pragma once

#include <cstdint>
#include <limits>

namespace acdn {

/// Latency in milliseconds. All latency values in the library use this unit.
using Milliseconds = double;

/// Distance in kilometers.
using Kilometers = double;

/// Zero-based day index within a simulation run.
using DayIndex = int;

/// Sentinel for "no value" in index-typed fields.
inline constexpr std::uint32_t kInvalidIndex =
    std::numeric_limits<std::uint32_t>::max();

/// Strongly-typed identifier. Tag types make FrontEndId, MetroId, etc.
/// distinct at compile time while staying trivially copyable.
template <typename Tag>
struct Id {
  std::uint32_t value = kInvalidIndex;

  constexpr Id() = default;
  constexpr explicit Id(std::uint32_t v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const { return value != kInvalidIndex; }
  constexpr auto operator<=>(const Id&) const = default;
};

struct MetroTag {};
struct FrontEndTag {};
struct AsTag {};
struct LdnsTag {};
struct ClientTag {};
struct ProbeTag {};

using MetroId = Id<MetroTag>;
using FrontEndId = Id<FrontEndTag>;
using AsId = Id<AsTag>;
using LdnsId = Id<LdnsTag>;
using ClientId = Id<ClientTag>;
using ProbeId = Id<ProbeTag>;

}  // namespace acdn

namespace std {
template <typename Tag>
struct hash<acdn::Id<Tag>> {
  size_t operator()(const acdn::Id<Tag>& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
}  // namespace std
