#include "core/evaluator.h"

#include <optional>
#include <utility>

#include "common/executor.h"
#include "common/metrics.h"
#include "stats/quantile.h"

namespace acdn {

std::vector<EvalOutcome> PredictionEvaluator::evaluate(
    const HistoryPredictor& predictor,
    const MeasurementColumns& eval_day) const {
  const PhaseSpan eval_phase("evaluator.evaluate");
  const ScopedTimer eval_timer("evaluator.evaluate_ms");
  // The evaluation is always per-/24, regardless of how predictions were
  // grouped: clients inherit their LDNS group's prediction under LDNS
  // grouping.
  return evaluate_groups(
      predictor, DayAggregates::build(eval_day, Grouping::kEcsPrefix,
                                      config_.threads));
}

std::vector<EvalOutcome> PredictionEvaluator::evaluate(
    const HistoryPredictor& predictor,
    std::span<const BeaconMeasurement> eval_day_measurements) const {
  const PhaseSpan eval_phase("evaluator.evaluate");
  const ScopedTimer eval_timer("evaluator.evaluate_ms");
  return evaluate_groups(
      predictor, DayAggregates::build(eval_day_measurements,
                                      Grouping::kEcsPrefix,
                                      config_.threads));
}

std::vector<EvalOutcome> PredictionEvaluator::evaluate_groups(
    const HistoryPredictor& predictor,
    const DayAggregates& per_client) const {
  const Grouping grouping = predictor.config().grouping;

  // Score every /24 independently on the pool, then collect the
  // qualifying outcomes in ascending /24 order — the same sequence the
  // serial loop produced.
  const std::span<const DayAggregates::Group> groups = per_client.groups();
  std::vector<std::optional<EvalOutcome>> scored(groups.size());

  Executor::global().parallel_for(
      0, groups.size(), config_.threads, [&](std::size_t i) {
        const DayAggregates::Group& group = groups[i];
        const ClientId client_id(group.key);
        const Client24& client = clients_->client(client_id);

        const std::uint32_t prediction_key =
            grouping == Grouping::kEcsPrefix ? group.key
                                             : client.ldns.value;
        const std::optional<Prediction> prediction =
            predictor.predict(prediction_key);

        EvalOutcome outcome;
        outcome.client = client_id;
        outcome.weight = client.daily_queries;

        if (!prediction || prediction->anycast) {
          // The system would return the anycast address: performance is
          // anycast's by definition; improvement is exactly zero.
          outcome.predicted_anycast = true;
          scored[i] = outcome;
          return;
        }

        const DayAggregates::Target* anycast_target =
            per_client.find_target(group, TargetKey{true, FrontEndId{}});
        if (anycast_target == nullptr ||
            static_cast<int>(anycast_target->count) <
                config_.min_eval_samples) {
          // Cannot judge without anycast baselines.
          metric_count("eval.skipped_no_baseline");
          return;
        }
        const DayAggregates::Target* fe_target = per_client.find_target(
            group, TargetKey{false, prediction->front_end});
        if (fe_target == nullptr ||
            static_cast<int>(fe_target->count) < config_.min_eval_samples) {
          // Predicted front-end unmeasured on the evaluation day.
          metric_count("eval.skipped_unmeasured_fe");
          return;
        }

        const double qs[] = {0.50, 0.75};
        const auto anycast_q =
            quantiles(per_client.samples(*anycast_target), qs);
        const auto fe_q = quantiles(per_client.samples(*fe_target), qs);
        outcome.predicted_anycast = false;
        outcome.improvement_p50 = anycast_q[0] - fe_q[0];
        outcome.improvement_p75 = anycast_q[1] - fe_q[1];
        scored[i] = outcome;
      });

  std::vector<EvalOutcome> outcomes;
  std::size_t predicted_anycast = 0;
  for (const auto& maybe : scored) {
    if (!maybe) continue;
    if (maybe->predicted_anycast) {
      ++predicted_anycast;
    } else {
      metric_observe("eval.improvement_p50_ms", maybe->improvement_p50);
    }
    outcomes.push_back(*maybe);
  }
  metric_count("eval.outcomes", outcomes.size());
  metric_count("eval.predicted_anycast", predicted_anycast);
  return outcomes;
}

EvalSummary PredictionEvaluator::summarize(
    std::span<const EvalOutcome> outcomes) const {
  EvalSummary summary;
  double total_weight = 0.0;
  for (const EvalOutcome& o : outcomes) {
    summary.improvement_p50.add(o.improvement_p50, o.weight);
    summary.improvement_p75.add(o.improvement_p75, o.weight);
    total_weight += o.weight;
    if (o.improvement_p50 > config_.epsilon_ms) {
      summary.fraction_improved_p50 += o.weight;
    } else if (o.improvement_p50 < -config_.epsilon_ms) {
      summary.fraction_worse_p50 += o.weight;
    }
    if (o.improvement_p75 > config_.epsilon_ms) {
      summary.fraction_improved_p75 += o.weight;
    } else if (o.improvement_p75 < -config_.epsilon_ms) {
      summary.fraction_worse_p75 += o.weight;
    }
  }
  summary.evaluated = outcomes.size();
  if (total_weight > 0.0) {
    summary.fraction_improved_p50 /= total_weight;
    summary.fraction_worse_p50 /= total_weight;
    summary.fraction_improved_p75 /= total_weight;
    summary.fraction_worse_p75 /= total_weight;
  }
  return summary;
}

}  // namespace acdn
