#include "core/evaluator.h"

#include <optional>
#include <utility>

#include "common/executor.h"
#include "common/metrics.h"
#include "stats/quantile.h"

namespace acdn {

std::vector<EvalOutcome> PredictionEvaluator::evaluate(
    const HistoryPredictor& predictor,
    std::span<const BeaconMeasurement> eval_day_measurements) const {
  const PhaseSpan eval_phase("evaluator.evaluate");
  const ScopedTimer eval_timer("evaluator.evaluate_ms");
  // The evaluation is always per-/24, regardless of how predictions were
  // grouped: clients inherit their LDNS group's prediction under LDNS
  // grouping.
  const DayAggregates per_client = DayAggregates::build(
      eval_day_measurements, Grouping::kEcsPrefix, config_.threads);
  const Grouping grouping = predictor.config().grouping;

  // Score every /24 independently on the pool, then collect the
  // qualifying outcomes in ascending /24 order — the same sequence the
  // serial loop produced.
  std::vector<const std::pair<const std::uint32_t, GroupSamples>*> groups;
  groups.reserve(per_client.groups().size());
  for (const auto& entry : per_client.groups()) groups.push_back(&entry);
  std::vector<std::optional<EvalOutcome>> scored(groups.size());

  Executor::global().parallel_for(
      0, groups.size(), config_.threads, [&](std::size_t i) {
        const std::uint32_t client_key = groups[i]->first;
        const GroupSamples& samples = groups[i]->second;
        const ClientId client_id(client_key);
        const Client24& client = clients_->client(client_id);

        const std::uint32_t prediction_key =
            grouping == Grouping::kEcsPrefix ? client_key
                                             : client.ldns.value;
        const std::optional<Prediction> prediction =
            predictor.predict(prediction_key);

        EvalOutcome outcome;
        outcome.client = client_id;
        outcome.weight = client.daily_queries;

        if (!prediction || prediction->anycast) {
          // The system would return the anycast address: performance is
          // anycast's by definition; improvement is exactly zero.
          outcome.predicted_anycast = true;
          scored[i] = outcome;
          return;
        }

        auto anycast_it =
            samples.by_target.find(TargetKey{true, FrontEndId{}});
        if (anycast_it == samples.by_target.end() ||
            static_cast<int>(anycast_it->second.size()) <
                config_.min_eval_samples) {
          // Cannot judge without anycast baselines.
          metric_count("eval.skipped_no_baseline");
          return;
        }
        auto fe_it = samples.by_target.find(
            TargetKey{false, prediction->front_end});
        if (fe_it == samples.by_target.end() ||
            static_cast<int>(fe_it->second.size()) <
                config_.min_eval_samples) {
          // Predicted front-end unmeasured on the evaluation day.
          metric_count("eval.skipped_unmeasured_fe");
          return;
        }

        const double qs[] = {0.50, 0.75};
        const auto anycast_q = quantiles(anycast_it->second, qs);
        const auto fe_q = quantiles(fe_it->second, qs);
        outcome.predicted_anycast = false;
        outcome.improvement_p50 = anycast_q[0] - fe_q[0];
        outcome.improvement_p75 = anycast_q[1] - fe_q[1];
        scored[i] = outcome;
      });

  std::vector<EvalOutcome> outcomes;
  std::size_t predicted_anycast = 0;
  for (const auto& maybe : scored) {
    if (!maybe) continue;
    if (maybe->predicted_anycast) {
      ++predicted_anycast;
    } else {
      metric_observe("eval.improvement_p50_ms", maybe->improvement_p50);
    }
    outcomes.push_back(*maybe);
  }
  metric_count("eval.outcomes", outcomes.size());
  metric_count("eval.predicted_anycast", predicted_anycast);
  return outcomes;
}

EvalSummary PredictionEvaluator::summarize(
    std::span<const EvalOutcome> outcomes) const {
  EvalSummary summary;
  double total_weight = 0.0;
  for (const EvalOutcome& o : outcomes) {
    summary.improvement_p50.add(o.improvement_p50, o.weight);
    summary.improvement_p75.add(o.improvement_p75, o.weight);
    total_weight += o.weight;
    if (o.improvement_p50 > config_.epsilon_ms) {
      summary.fraction_improved_p50 += o.weight;
    } else if (o.improvement_p50 < -config_.epsilon_ms) {
      summary.fraction_worse_p50 += o.weight;
    }
    if (o.improvement_p75 > config_.epsilon_ms) {
      summary.fraction_improved_p75 += o.weight;
    } else if (o.improvement_p75 < -config_.epsilon_ms) {
      summary.fraction_worse_p75 += o.weight;
    }
  }
  summary.evaluated = outcomes.size();
  if (total_weight > 0.0) {
    summary.fraction_improved_p50 /= total_weight;
    summary.fraction_worse_p50 /= total_weight;
    summary.fraction_improved_p75 /= total_weight;
    summary.fraction_worse_p75 /= total_weight;
  }
  return summary;
}

}  // namespace acdn
