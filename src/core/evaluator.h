// Prediction evaluation (paper §6, Figure 9).
//
// A mapping trained on day D is judged against day D+1's measurements:
// for each client /24, compare the 50th and 75th percentile latency of the
// *predicted* target against anycast's, both observed on day D+1. Under
// LDNS grouping the prediction comes from the /24's resolver group but is
// evaluated on the /24's own measurements — exactly the granularity
// mismatch that makes LDNS-based redirection pay a penalty for clients
// poorly represented by their LDNS.
#pragma once

#include <span>
#include <vector>

#include "core/predictor.h"
#include "dns/ldns.h"
#include "stats/distribution.h"
#include "workload/clients.h"

namespace acdn {

/// Evaluation of one client /24 on the evaluation day.
struct EvalOutcome {
  ClientId client;
  double weight = 1.0;  // query volume
  bool predicted_anycast = true;
  /// anycast percentile minus predicted-target percentile on the
  /// evaluation day; positive = prediction beat anycast. Zero when the
  /// prediction was anycast itself.
  Milliseconds improvement_p50 = 0.0;
  Milliseconds improvement_p75 = 0.0;
};

struct EvalSummary {
  /// Query-volume-weighted improvement distributions over /24s.
  DistributionBuilder improvement_p50;
  DistributionBuilder improvement_p75;
  /// Weighted fractions (by query volume) improving / regressing by more
  /// than epsilon at each percentile.
  double fraction_improved_p50 = 0.0;
  double fraction_worse_p50 = 0.0;
  double fraction_improved_p75 = 0.0;
  double fraction_worse_p75 = 0.0;
  std::size_t evaluated = 0;
};

class PredictionEvaluator {
 public:
  struct Config {
    /// Minimum next-day samples per target for a /24 to be evaluated.
    int min_eval_samples = 3;
    /// Dead zone around zero when counting improved/worse fractions.
    Milliseconds epsilon_ms = 1.0;
    /// Executor parallelism for the per-/24 percentile scoring. Outcomes
    /// are collected in ascending /24 order, so the result is identical
    /// for any thread count.
    int threads = 1;
  };

  PredictionEvaluator(const ClientPopulation& clients,
                      const LdnsPopulation& ldns, const Config& config)
      : clients_(&clients), ldns_(&ldns), config_(config) {}
  PredictionEvaluator(const ClientPopulation& clients,
                      const LdnsPopulation& ldns)
      : PredictionEvaluator(clients, ldns, Config{}) {}

  /// Evaluates `predictor`'s current mapping on the evaluation day's
  /// measurements — columnar (the hot path) or as row structs. Every /24
  /// with qualifying anycast samples appears; /24s whose predicted
  /// front-end lacks next-day samples are skipped.
  [[nodiscard]] std::vector<EvalOutcome> evaluate(
      const HistoryPredictor& predictor,
      const MeasurementColumns& eval_day) const;
  [[nodiscard]] std::vector<EvalOutcome> evaluate(
      const HistoryPredictor& predictor,
      std::span<const BeaconMeasurement> eval_day_measurements) const;

  [[nodiscard]] EvalSummary summarize(
      std::span<const EvalOutcome> outcomes) const;

 private:
  /// Scores one per-/24 aggregate against the predictor's mapping.
  [[nodiscard]] std::vector<EvalOutcome> evaluate_groups(
      const HistoryPredictor& predictor, const DayAggregates& per_client)
      const;

  const ClientPopulation* clients_;
  const LdnsPopulation* ldns_;
  Config config_;
};

}  // namespace acdn
