#include "core/hybrid.h"

namespace acdn {

namespace {

bool qualifies(const Prediction& p, Milliseconds min_gain) {
  if (p.anycast || !p.anycast_ms) return false;
  return *p.anycast_ms - p.predicted_ms >= min_gain;
}

}  // namespace

DnsAnswer HybridPolicy::resolve(const DnsQueryContext& query) const {
  // Key resolution mirrors what the authoritative server can see: the ECS
  // /24 when the resolver forwards one and the predictor is ECS-grouped,
  // otherwise the LDNS.
  std::optional<std::uint32_t> key;
  if (predictor_->config().grouping == Grouping::kEcsPrefix) {
    if (query.ecs_prefix) {
      if (const auto client = clients_->find_by_prefix(*query.ecs_prefix)) {
        key = client->value;
      }
    }
  } else {
    key = query.ldns.value;
  }
  if (!key) return DnsAnswer{true, FrontEndId{}};

  const std::optional<Prediction> prediction = predictor_->predict(*key);
  if (!prediction || !qualifies(*prediction, config_.min_predicted_gain_ms)) {
    return DnsAnswer{true, FrontEndId{}};
  }
  return DnsAnswer{false, prediction->front_end};
}

std::size_t HybridPolicy::override_count() const {
  std::size_t n = 0;
  for (const auto& [group, p] : predictor_->predictions()) {
    if (qualifies(p, config_.min_predicted_gain_ms)) ++n;
  }
  return n;
}

}  // namespace acdn
