// Hybrid anycast + DNS redirection (paper §6's closing proposal).
//
// "Use DNS-based redirection for a small subset of poor performing
// clients, while leaving others to anycast." The policy consults the
// trained predictor; only groups whose predicted gain over anycast clears
// a threshold get a unicast answer, everyone else stays on anycast. This
// keeps the operational surface small and avoids flapping marginal
// clients onto unicast for noise-level gains.
#pragma once

#include "core/predictor.h"
#include "dns/policy.h"

namespace acdn {

class HybridPolicy final : public RedirectionPolicy {
 public:
  struct Config {
    /// Minimum predicted gain (anycast metric minus target metric) for a
    /// DNS override; below it, anycast is returned.
    Milliseconds min_predicted_gain_ms = 10.0;
  };

  /// `clients` resolves ECS prefixes to client groups. The predictor must
  /// outlive the policy and may be retrained between days.
  HybridPolicy(const HistoryPredictor& predictor,
               const ClientPopulation& clients, const Config& config)
      : predictor_(&predictor), clients_(&clients), config_(config) {}
  HybridPolicy(const HistoryPredictor& predictor,
               const ClientPopulation& clients)
      : HybridPolicy(predictor, clients, Config{}) {}

  [[nodiscard]] DnsAnswer resolve(const DnsQueryContext& query) const override;
  [[nodiscard]] std::string name() const override { return "hybrid"; }

  /// Number of groups the current mapping would override to unicast.
  [[nodiscard]] std::size_t override_count() const;

 private:
  const HistoryPredictor* predictor_;
  const ClientPopulation* clients_;
  Config config_;
};

}  // namespace acdn
