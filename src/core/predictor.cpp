#include "core/predictor.h"

#include <vector>

#include "common/check.h"
#include "common/error.h"
#include "common/executor.h"
#include "common/metrics.h"
#include "stats/quantile.h"

namespace acdn {

const char* to_string(PredictionMetric m) {
  switch (m) {
    case PredictionMetric::kP25:    return "p25";
    case PredictionMetric::kMedian: return "median";
    case PredictionMetric::kP75:    return "p75";
  }
  return "?";
}

double metric_quantile(PredictionMetric m) {
  switch (m) {
    case PredictionMetric::kP25:    return 0.25;
    case PredictionMetric::kMedian: return 0.50;
    case PredictionMetric::kP75:    return 0.75;
  }
  return 0.5;
}

void PredictorConfig::validate() const {
  require(min_measurements >= 1, "min_measurements must be at least 1");
  require(threads >= 1, "predictor threads must be at least 1");
}

HistoryPredictor::HistoryPredictor(const PredictorConfig& config)
    : config_(config) {
  config_.validate();
}

Milliseconds HistoryPredictor::metric_value(
    std::span<const Milliseconds> samples, PredictionMetric metric) {
  return quantile(samples, metric_quantile(metric));
}

void HistoryPredictor::train(const MeasurementColumns& columns) {
  const PhaseSpan train_phase("predictor.train");
  const ScopedTimer train_timer("predictor.train_ms");
  score(DayAggregates::build(columns, config_.grouping, config_.threads));
}

void HistoryPredictor::train(const DayAggregates& aggregates) {
  const PhaseSpan train_phase("predictor.train");
  const ScopedTimer train_timer("predictor.train_ms");
  require(aggregates.grouping() == config_.grouping,
          "trained aggregates must use the configured grouping");
  score(aggregates);
}

void HistoryPredictor::train(
    std::span<const BeaconMeasurement> measurements) {
  const PhaseSpan train_phase("predictor.train");
  const ScopedTimer train_timer("predictor.train_ms");
  score(DayAggregates::build(measurements, config_.grouping,
                             config_.threads));
}

void HistoryPredictor::score(const DayAggregates& agg) {
  predictions_.clear();
  // Every group scores independently on the pool; results are collected
  // back in ascending group order — the aggregate's native order — making
  // the mapping identical for any thread count.
  const std::span<const DayAggregates::Group> groups = agg.groups();
  std::vector<std::optional<Prediction>> scored(groups.size());
  std::vector<std::uint8_t> gate_empty(groups.size(), 0);

  Executor::global().parallel_for(
      0, groups.size(), config_.threads, [&](std::size_t i) {
        std::optional<Prediction> best;
        std::optional<Milliseconds> anycast_metric;
        std::size_t gated = 0;
        for (const DayAggregates::Target& target : agg.targets(groups[i])) {
          if (static_cast<int>(target.count) < config_.min_measurements) {
            ++gated;  // below the >= min_measurements qualification rule
            continue;
          }
          // §4 qualification rule: no target may be scored on fewer than
          // min_measurements (default 20) samples.
          ACDN_DCHECK_GE(static_cast<int>(target.count),
                         config_.min_measurements)
              << "qualification gate leaked an under-measured target";
          const Milliseconds value =
              metric_value(agg.samples(target), config_.metric);
          if (target.key.anycast) anycast_metric = value;
          if (!best || value < best->predicted_ms) {
            best = Prediction{target.key.anycast, target.key.front_end,
                              value, std::nullopt};
          }
        }
        if (gated > 0) metric_count("predictor.targets_gated", gated);
        if (!best) {
          // Nothing qualified: the group gets no mapping entry and its
          // clients stay on anycast — the graceful fallback when sample
          // loss empties the gate.
          gate_empty[i] = gated > 0;
          return;
        }
        best->anycast_ms = anycast_metric;
        scored[i] = *best;
      });

  std::size_t predicted_anycast = 0;
  gate_empty_groups_ = 0;
  predictions_.reserve(groups.size());
  for (std::size_t i = 0; i < groups.size(); ++i) {
    gate_empty_groups_ += gate_empty[i];
    if (!scored[i]) continue;
    if (scored[i]->anycast) ++predicted_anycast;
    predictions_.append(groups[i].key, *scored[i]);
  }
  metric_count("predictor.groups_gated_empty", gate_empty_groups_);
  metric_count("predictor.groups_seen", groups.size());
  metric_count("predictor.groups_trained", predictions_.size());
  metric_count("predictor.predicted_anycast", predicted_anycast);
  metric_count("predictor.predicted_unicast",
               predictions_.size() - predicted_anycast);
}

std::optional<Prediction> HistoryPredictor::predict(
    std::uint32_t group) const {
  auto it = predictions_.find(group);
  if (it == predictions_.end()) return std::nullopt;
  return it->second;
}

}  // namespace acdn
