// History-based front-end prediction (paper §6) — the primary contribution.
//
// Every prediction interval (one day), the scheme maps each client group —
// the clients of an LDNS, or of an ECS /24 — to the front-end (or the
// anycast address) with the lowest *prediction metric* over that group's
// beacon measurements from the previous interval. The paper uses low
// percentiles (25th; median behaves the same) because higher percentiles
// of the latency distribution are too noisy day-over-day to predict from,
// and only considers targets with at least 20 measurements from the group.
// The resulting map drives DNS redirection for the next day.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "analysis/aggregate.h"
#include "beacon/measurement.h"
#include "common/flat_group.h"
#include "common/types.h"

namespace acdn {

enum class PredictionMetric { kP25, kMedian, kP75 };

[[nodiscard]] const char* to_string(PredictionMetric m);
[[nodiscard]] double metric_quantile(PredictionMetric m);

struct PredictorConfig {
  PredictionMetric metric = PredictionMetric::kP25;
  /// Targets with fewer measurements than this are not considered (§6
  /// selects "among the front-ends with 20+ measurements").
  int min_measurements = 20;
  Grouping grouping = Grouping::kEcsPrefix;
  /// Executor parallelism for aggregation and per-group scoring. Each
  /// group scores independently and results merge in ascending group
  /// order, so the trained mapping is identical for any thread count.
  int threads = 1;

  void validate() const;
};

/// A trained mapping for one group.
struct Prediction {
  /// True if anycast scored best (or nothing else qualified).
  bool anycast = true;
  FrontEndId front_end;  // meaningful when !anycast
  /// Metric value of the chosen target in the training data.
  Milliseconds predicted_ms = 0.0;
  /// Metric value of anycast in the training data (when measurable);
  /// predicted gain = anycast_ms - predicted_ms.
  std::optional<Milliseconds> anycast_ms;
};

class HistoryPredictor {
 public:
  explicit HistoryPredictor(const PredictorConfig& config);

  /// Replaces the mapping with one trained on one prediction interval's
  /// worth of joined beacon data — columnar (the hot path) or as row
  /// structs (converted, same algorithm). The DayAggregates overload
  /// scores an already-built aggregation (grouping must match the
  /// config), so one build per day can feed both the predictor and the
  /// figure passes.
  void train(const MeasurementColumns& columns);
  void train(const DayAggregates& aggregates);
  void train(std::span<const BeaconMeasurement> measurements);

  /// The trained mapping for a group (client id under ECS grouping, LDNS
  /// id under LDNS grouping); nullopt if the group had no qualifying data.
  [[nodiscard]] std::optional<Prediction> predict(std::uint32_t group) const;

  [[nodiscard]] const FlatMap<std::uint32_t, Prediction>& predictions()
      const {
    return predictions_;
  }
  [[nodiscard]] const PredictorConfig& config() const { return config_; }

  /// Groups in the last training interval that had beacon data but whose
  /// every target fell below the min_measurements gate (e.g. under
  /// injected sample loss). These groups get no mapping entry — predict()
  /// returns nullopt and the consumer stays on anycast, the documented
  /// degraded mode. Also counted as "predictor.groups_gated_empty".
  [[nodiscard]] std::size_t gate_empty_groups() const {
    return gate_empty_groups_;
  }

  /// The configured metric over a sample set.
  [[nodiscard]] static Milliseconds metric_value(
      std::span<const Milliseconds> samples, PredictionMetric metric);

 private:
  /// Scores every group of `agg` and fills predictions_.
  void score(const DayAggregates& agg);

  PredictorConfig config_;
  FlatMap<std::uint32_t, Prediction> predictions_;
  std::size_t gate_empty_groups_ = 0;
};

}  // namespace acdn
