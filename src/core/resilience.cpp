#include "core/resilience.h"

#include "common/metrics.h"

namespace acdn {

DegradedPipeline::DegradedPipeline(const ClientPopulation& clients,
                                   const LdnsPopulation& ldns,
                                   const ResilienceConfig& config)
    : config_(config),
      predictor_(config.predictor),
      evaluator_(clients, ldns, config.evaluator) {}

DegradedPipeline::DayOutcome DegradedPipeline::step(
    const MeasurementStore& store, DayIndex train_day, DayIndex eval_day) {
  DayOutcome outcome;
  outcome.eval_day = eval_day;

  const MeasurementColumns& train = store.columns(train_day);
  if (train.size() >= config_.min_healthy_rows) {
    predictor_.train(train);
    has_mapping_ = true;
    outcome.trained_fresh = true;
  } else {
    // Unhealthy training day: keep yesterday's mapping (possibly none —
    // then every group implicitly stays on anycast).
    ++stale_train_days_;
    metric_count("resilience.stale_train_days");
  }

  const MeasurementColumns& eval = store.columns(eval_day);
  if (has_mapping_ && eval.size() >= config_.min_healthy_rows) {
    const std::vector<EvalOutcome> outcomes =
        evaluator_.evaluate(predictor_, eval);
    last_summary_ = evaluator_.summarize(outcomes);
    staleness_ = 0;
    outcome.evaluated_fresh = true;
  } else {
    // Carry the last healthy day's aggregates forward, explicitly stale.
    ++staleness_;
    ++stale_eval_days_;
    metric_count("resilience.stale_eval_days");
  }
  metric_gauge("resilience.staleness", double(staleness_));

  outcome.staleness = staleness_;
  outcome.summary = last_summary_;
  return outcome;
}

}  // namespace acdn
