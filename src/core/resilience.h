// Degraded-mode train/evaluate pipeline (fault-injection tentpole).
//
// The happy-path pipeline trains a HistoryPredictor on day D and
// evaluates it on day D+1. Under injected faults a day's measurements
// can thin out or vanish entirely (beacon sample loss, store drops,
// SERVFAIL bursts); rather than crashing or silently reporting numbers
// built on near-empty data, DegradedPipeline:
//
//   * keeps the previous day's trained mapping when the training day is
//     unhealthy (fewer rows than `min_healthy_rows`), counting the skip,
//   * carries the last healthy day's evaluation summary forward when the
//     evaluation day is unhealthy or no mapping exists yet, with an
//     explicit staleness counter (consecutive stale evaluation days),
//   * reports every degradation through the metrics registry
//     ("resilience.*") so it lands in the run manifest.
//
// Gate-empty groups inside a healthy training day are already handled by
// the predictor itself: they get no mapping entry and fall back to
// anycast (HistoryPredictor::gate_empty_groups()).
#pragma once

#include <cstdint>

#include "beacon/store.h"
#include "core/evaluator.h"
#include "core/predictor.h"

namespace acdn {

struct ResilienceConfig {
  PredictorConfig predictor;
  PredictionEvaluator::Config evaluator;
  /// A day with fewer joined measurement rows than this is "unhealthy":
  /// training skips it and evaluation carries the last summary forward.
  std::size_t min_healthy_rows = 1;
};

class DegradedPipeline {
 public:
  /// What one step produced, and how fresh it is.
  struct DayOutcome {
    DayIndex eval_day = 0;
    /// False when the training day was unhealthy and the previous
    /// mapping was kept.
    bool trained_fresh = false;
    /// False when `summary` is carried forward from an earlier day.
    bool evaluated_fresh = false;
    /// Consecutive stale evaluation days ending at eval_day (0 = fresh).
    int staleness = 0;
    EvalSummary summary;
  };

  DegradedPipeline(const ClientPopulation& clients,
                   const LdnsPopulation& ldns,
                   const ResilienceConfig& config);

  /// Trains on `train_day` and evaluates on `eval_day` (both from
  /// `store`), degrading as documented above. Never throws on thin or
  /// missing data.
  DayOutcome step(const MeasurementStore& store, DayIndex train_day,
                  DayIndex eval_day);

  [[nodiscard]] const HistoryPredictor& predictor() const {
    return predictor_;
  }
  /// Consecutive stale evaluation days as of the last step().
  [[nodiscard]] int staleness() const { return staleness_; }
  /// Lifetime totals, mirrored as "resilience.stale_train_days" and
  /// "resilience.stale_eval_days" in the metrics registry.
  [[nodiscard]] std::uint64_t stale_train_days() const {
    return stale_train_days_;
  }
  [[nodiscard]] std::uint64_t stale_eval_days() const {
    return stale_eval_days_;
  }

 private:
  ResilienceConfig config_;
  HistoryPredictor predictor_;
  PredictionEvaluator evaluator_;
  bool has_mapping_ = false;
  EvalSummary last_summary_;
  int staleness_ = 0;
  std::uint64_t stale_train_days_ = 0;
  std::uint64_t stale_eval_days_ = 0;
};

}  // namespace acdn
