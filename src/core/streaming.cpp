#include "core/streaming.h"

#include "analysis/aggregate.h"

namespace acdn {

StreamingTrainer::StreamingTrainer(const PredictorConfig& config)
    : config_(config) {
  config_.validate();
}

void StreamingTrainer::observe(const BeaconMeasurement& measurement) {
  const std::uint32_t group =
      DayAggregates::group_key(measurement, config_.grouping);
  for (const BeaconMeasurement::Target& t : measurement.targets) {
    const std::uint64_t key = pack(group, t.anycast, t.front_end);
    auto it = states_.find(key);
    if (it == states_.end()) {
      it = states_
               .emplace(key, P2Quantile(metric_quantile(config_.metric)))
               .first;
    }
    it->second.add(t.rtt_ms);
  }
  ++observed_;
}

std::map<std::uint32_t, Prediction> StreamingTrainer::snapshot() const {
  // Regroup the flat state map by group, then apply the batch trainer's
  // selection rule.
  std::map<std::uint32_t, Prediction> predictions;
  std::map<std::uint32_t, std::optional<Milliseconds>> anycast_metric;

  for (const auto& [key, estimator] : states_) {
    if (static_cast<int>(estimator.count()) < config_.min_measurements) {
      continue;
    }
    const auto group = static_cast<std::uint32_t>(key >> 33);
    const bool anycast = ((key >> 32) & 1) != 0;
    const FrontEndId fe(static_cast<std::uint32_t>(key & 0xffffffffu));
    const Milliseconds value = estimator.value();

    if (anycast) anycast_metric[group] = value;
    auto it = predictions.find(group);
    if (it == predictions.end() || value < it->second.predicted_ms) {
      predictions[group] =
          Prediction{anycast, anycast ? FrontEndId{} : fe, value,
                     std::nullopt};
    }
  }
  for (auto& [group, prediction] : predictions) {
    auto it = anycast_metric.find(group);
    if (it != anycast_metric.end()) prediction.anycast_ms = it->second;
  }
  return predictions;
}

std::size_t StreamingTrainer::group_count() const {
  return snapshot().size();
}

void StreamingTrainer::reset() {
  states_.clear();
  observed_ = 0;
}

}  // namespace acdn
