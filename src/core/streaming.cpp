#include "core/streaming.h"

#include <span>
#include <vector>

#include "analysis/aggregate.h"
#include "common/radix.h"

namespace acdn {

StreamingTrainer::StreamingTrainer(const PredictorConfig& config)
    : config_(config) {
  config_.validate();
}

void StreamingTrainer::observe(const BeaconMeasurement& measurement) {
  const std::uint32_t group =
      DayAggregates::group_key(measurement, config_.grouping);
  for (const BeaconMeasurement::Target& t : measurement.targets) {
    const std::uint64_t key = pack(group, t.anycast, t.front_end);
    auto it = states_.find(key);
    if (it == states_.end()) {
      it = states_
               .emplace(key, P2Quantile(metric_quantile(config_.metric)))
               .first;
    }
    it->second.add(t.rtt_ms);
  }
  ++observed_;
}

void StreamingTrainer::observe_all(const MeasurementColumns& columns) {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    const std::uint32_t group = config_.grouping == Grouping::kEcsPrefix
                                    ? columns.client[i].value
                                    : columns.ldns[i].value;
    for (std::size_t t = columns.row_targets_begin(i);
         t < columns.row_targets_end(i); ++t) {
      const bool anycast = columns.target_anycast[t] != 0;
      const std::uint64_t key =
          pack(group, anycast, FrontEndId(columns.target_front_end[t]));
      auto it = states_.find(key);
      if (it == states_.end()) {
        it = states_
                 .emplace(key, P2Quantile(metric_quantile(config_.metric)))
                 .first;
      }
      it->second.add(columns.target_rtt[t]);
    }
    ++observed_;
  }
}

FlatMap<std::uint32_t, Prediction> StreamingTrainer::snapshot() const {
  // Regroup the flat state map by group, then apply the batch trainer's
  // selection rule. Keys are visited in sorted order — by the pack()
  // layout that is exactly the batch trainer's TargetKey sequence (group
  // ascending, unicast front-ends ascending, anycast last) — so
  // equal-metric ties break identically to the batch path instead of
  // following unordered_map hash order. Because one group's keys are
  // consecutive in that walk, the prediction map builds with pure
  // ascending appends.
  std::vector<std::uint64_t> keys;
  keys.reserve(states_.size());
  // NOLINT-ACDN(unordered-iter): keys are sorted on the next line
  for (const auto& [key, estimator] : states_) keys.push_back(key);
  radix_sort(std::span<std::uint64_t>(keys));

  FlatMap<std::uint32_t, Prediction> predictions;
  std::optional<std::uint32_t> open_group;
  std::optional<Prediction> best;
  std::optional<Milliseconds> anycast_metric;
  const auto flush = [&] {
    if (open_group && best) {
      best->anycast_ms = anycast_metric;
      predictions.append(*open_group, *best);
    }
    best.reset();
    anycast_metric.reset();
  };

  for (const std::uint64_t key : keys) {
    const auto group = static_cast<std::uint32_t>(key >> 32);
    if (open_group && *open_group != group) flush();
    open_group = group;
    const P2Quantile& estimator = states_.find(key)->second;
    if (static_cast<int>(estimator.count()) < config_.min_measurements) {
      continue;
    }
    const bool anycast = ((key >> 31) & 1) != 0;
    const FrontEndId fe(static_cast<std::uint32_t>(key & 0x7fffffffu));
    const Milliseconds value = estimator.value();

    if (anycast) anycast_metric = value;
    if (!best || value < best->predicted_ms) {
      best = Prediction{anycast, anycast ? FrontEndId{} : fe, value,
                        std::nullopt};
    }
  }
  flush();
  return predictions;
}

std::size_t StreamingTrainer::group_count() const {
  return snapshot().size();
}

void StreamingTrainer::reset() {
  states_.clear();
  observed_ = 0;
}

}  // namespace acdn
