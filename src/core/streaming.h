// Memory-bounded streaming trainer.
//
// HistoryPredictor::train buffers a full day of joined measurements; at
// the study's real scale ("many millions of queries", §3.2) the backend
// would instead fold each measurement into constant-space per-(group,
// target) state. StreamingTrainer does exactly that with P² quantile
// estimators (stats/p2.h): observe() measurements as they arrive, then
// snapshot() a prediction map equivalent to the batch trainer's up to P²
// estimation error.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "beacon/columns.h"
#include "beacon/measurement.h"
#include "common/check.h"
#include "common/error.h"
#include "common/flat_group.h"
#include "core/predictor.h"
#include "stats/p2.h"

namespace acdn {

class StreamingTrainer {
 public:
  explicit StreamingTrainer(const PredictorConfig& config);

  /// Folds one joined beacon measurement into the running estimates.
  void observe(const BeaconMeasurement& measurement);

  /// Columnar fold: observes every row of `columns` in row order — the
  /// same adds in the same order (and the same observed() count) as
  /// calling observe() on each materialized row, without the per-row
  /// struct and vector<Target> allocation. The cross-day pipeline's
  /// in-order fold streams day columns through this form.
  void observe_all(const MeasurementColumns& columns);

  /// Prediction map from the current estimates — same shape and selection
  /// rule as HistoryPredictor (metric minimum among targets that meet the
  /// measurement gate).
  [[nodiscard]] FlatMap<std::uint32_t, Prediction> snapshot() const;

  /// Trains a HistoryPredictor-compatible object in place: predictions()
  /// of the returned predictor equal snapshot().
  [[nodiscard]] std::size_t group_count() const;
  [[nodiscard]] std::size_t target_state_count() const {
    return states_.size();
  }
  [[nodiscard]] std::uint64_t observed() const { return observed_; }
  [[nodiscard]] const PredictorConfig& config() const { return config_; }

  /// Discards all state (start of a new prediction interval).
  void reset();

 private:
  /// (group, target) -> packed key: the full 32-bit group id in the high
  /// word, the anycast flag at bit 31, the front-end id in the low 31
  /// bits. Two invariants ride on this layout:
  ///   * no group bit is dropped (a `group << 33` here once silently lost
  ///     bit 31, aliasing groups 2^31 apart onto one P² state);
  ///   * sorting packed keys reproduces the batch trainer's iteration
  ///     order — group ascending, then unicast front-ends ascending, then
  ///     anycast — which snapshot() relies on for tie-break parity.
  [[nodiscard]] static std::uint64_t pack(std::uint32_t group, bool anycast,
                                          FrontEndId fe) {
    if (!anycast) {
      require((fe.value >> 31) == 0,
              "front-end id exceeds 31 bits in streaming key");
    }
    const std::uint64_t key = (std::uint64_t(group) << 32) |
                              (std::uint64_t(anycast ? 1 : 0) << 31) |
                              std::uint64_t(anycast ? 0 : fe.value);
    // Layout round-trip: regressions here alias distinct targets onto one
    // estimator (see the `group << 33` incident above).
    ACDN_DCHECK_EQ(std::uint32_t(key >> 32), group)
        << "pack dropped group bits";
    ACDN_DCHECK_EQ((key >> 31) & 1, anycast ? 1u : 0u)
        << "pack lost the anycast flag";
    return key;
  }

  PredictorConfig config_;
  // NOLINT-ACDN(unordered-decl): keyed updates; snapshot() sorts keys
  std::unordered_map<std::uint64_t, P2Quantile> states_;
  std::uint64_t observed_ = 0;
};

}  // namespace acdn
