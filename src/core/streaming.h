// Memory-bounded streaming trainer.
//
// HistoryPredictor::train buffers a full day of joined measurements; at
// the study's real scale ("many millions of queries", §3.2) the backend
// would instead fold each measurement into constant-space per-(group,
// target) state. StreamingTrainer does exactly that with P² quantile
// estimators (stats/p2.h): observe() measurements as they arrive, then
// snapshot() a prediction map equivalent to the batch trainer's up to P²
// estimation error.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>

#include "beacon/measurement.h"
#include "core/predictor.h"
#include "stats/p2.h"

namespace acdn {

class StreamingTrainer {
 public:
  explicit StreamingTrainer(const PredictorConfig& config);

  /// Folds one joined beacon measurement into the running estimates.
  void observe(const BeaconMeasurement& measurement);

  /// Prediction map from the current estimates — same shape and selection
  /// rule as HistoryPredictor (metric minimum among targets that meet the
  /// measurement gate).
  [[nodiscard]] std::map<std::uint32_t, Prediction> snapshot() const;

  /// Trains a HistoryPredictor-compatible object in place: predictions()
  /// of the returned predictor equal snapshot().
  [[nodiscard]] std::size_t group_count() const;
  [[nodiscard]] std::size_t target_state_count() const {
    return states_.size();
  }
  [[nodiscard]] std::uint64_t observed() const { return observed_; }
  [[nodiscard]] const PredictorConfig& config() const { return config_; }

  /// Discards all state (start of a new prediction interval).
  void reset();

 private:
  /// (group, target) -> packed key. Bit 32 marks the anycast target.
  [[nodiscard]] static std::uint64_t pack(std::uint32_t group, bool anycast,
                                          FrontEndId fe) {
    return (std::uint64_t(group) << 33) |
           (std::uint64_t(anycast ? 1 : 0) << 32) |
           std::uint64_t(anycast ? 0 : fe.value);
  }

  PredictorConfig config_;
  std::unordered_map<std::uint64_t, P2Quantile> states_;
  std::uint64_t observed_ = 0;
};

}  // namespace acdn
