#include "dns/authoritative.h"

#include "common/error.h"

namespace acdn {

AuthoritativeServer::AuthoritativeServer(const RedirectionPolicy& policy,
                                         const Deployment& deployment,
                                         const AuthoritativeConfig& config)
    : policy_(&policy),
      deployment_(&deployment),
      config_(config),
      cache_(config.answer_ttl_seconds, "dns.auth_cache") {
  require(config.answer_ttl_seconds > 0.0, "answer TTL must be positive");
}

Ipv4Address AuthoritativeServer::resolve(LdnsId ldns,
                                         std::optional<Prefix> ecs_prefix,
                                         const SimTime& now) {
  if (!config_.honor_ecs) ecs_prefix.reset();
  const CacheKey key{ldns.value,
                     ecs_prefix ? ecs_prefix->address().value() : 0u};
  if (const auto cached = cache_.get(key, now)) {
    ++cache_hits_;
    return *cached;
  }

  const DnsAnswer answer =
      policy_->resolve(DnsQueryContext{ldns, ecs_prefix, now.day});
  const Ipv4Address address =
      answer.anycast
          ? deployment_->anycast_prefix().address()
          : deployment_->site(answer.front_end).unicast_prefix.address();

  log_.push_back(AuthQueryLogEntry{next_query_id_++, ldns,
                                   ecs_prefix.has_value(), answer.anycast,
                                   answer.front_end, now.day, now.seconds});
  cache_.put(key, address, now);
  return address;
}

DnsAnswer AuthoritativeServer::decode(Ipv4Address address) const {
  if (deployment_->anycast_prefix().contains(address)) {
    return DnsAnswer{true, FrontEndId{}};
  }
  const auto site =
      deployment_->site_for_prefix(Prefix::slash24_of(address));
  require(site.has_value(), "address does not belong to the CDN");
  return DnsAnswer{false, *site};
}

void AuthoritativeServer::flush_caches() { cache_.clear(); }

}  // namespace acdn
