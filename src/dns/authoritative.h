// The CDN's authoritative nameserver.
//
// Serves resolution requests from LDNS resolvers: applies the configured
// RedirectionPolicy, answers with the anycast VIP or a front-end's unicast
// address plus a TTL, and logs every query — the paper's beacon pipeline
// joins these logs with the HTTP side (§3.2.2), and small TTLs are what
// let DNS-based redirection react "on small timescales" (§2).
//
// Resolver-side caching is modelled here too: an LDNS only re-queries the
// authoritative server when its cached answer expired, so the effective
// redirection reaction time is bounded by the TTL — the operational knob
// the paper discusses.
#pragma once

#include <cstdint>
#include <vector>

#include "dns/cache.h"
#include "dns/ldns.h"
#include "dns/policy.h"
#include "net/ipv4.h"

namespace acdn {

struct AuthoritativeConfig {
  /// TTL on redirection answers. The paper's production choice is small so
  /// mapping updates take effect quickly.
  double answer_ttl_seconds = 120.0;
  /// Whether the authoritative server honors ECS from resolvers that send
  /// it (per-prefix answers); otherwise decisions are per-LDNS.
  bool honor_ecs = true;
};

/// One row of the authoritative server's query log.
struct AuthQueryLogEntry {
  std::uint64_t query_id = 0;
  LdnsId ldns;
  bool had_ecs = false;
  bool answered_anycast = true;
  FrontEndId front_end;  // valid when !answered_anycast
  DayIndex day = 0;
  double seconds = 0.0;
};

class AuthoritativeServer {
 public:
  /// `policy`, `deployment` must outlive the server.
  AuthoritativeServer(const RedirectionPolicy& policy,
                      const Deployment& deployment,
                      const AuthoritativeConfig& config);
  AuthoritativeServer(const RedirectionPolicy& policy,
                      const Deployment& deployment)
      : AuthoritativeServer(policy, deployment, AuthoritativeConfig{}) {}

  /// Resolution as seen by a client behind `ldns`: returns the cached
  /// answer when the resolver's cache is fresh, otherwise forwards to the
  /// authoritative side (running the policy and logging the query).
  /// The returned address is the anycast VIP or a front-end unicast IP.
  [[nodiscard]] Ipv4Address resolve(LdnsId ldns,
                                    std::optional<Prefix> ecs_prefix,
                                    const SimTime& now);

  /// The redirection decision an address encodes (for analysis).
  [[nodiscard]] DnsAnswer decode(Ipv4Address address) const;

  [[nodiscard]] const std::vector<AuthQueryLogEntry>& query_log() const {
    return log_;
  }
  [[nodiscard]] std::size_t authoritative_queries() const {
    return log_.size();
  }
  [[nodiscard]] std::size_t cache_hits() const { return cache_hits_; }

  /// Drops all resolver caches — what happens operationally when mappings
  /// must take effect immediately.
  void flush_caches();

 private:
  struct CacheKey {
    std::uint32_t ldns;
    std::uint32_t ecs;  // /24 network bits or 0

    bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& k) const noexcept {
      return (std::size_t(k.ldns) << 32) ^ k.ecs;
    }
  };

  const RedirectionPolicy* policy_;
  const Deployment* deployment_;
  AuthoritativeConfig config_;
  TtlCache<CacheKey, Ipv4Address, CacheKeyHash> cache_;
  std::vector<AuthQueryLogEntry> log_;
  std::uint64_t next_query_id_ = 0;
  std::size_t cache_hits_ = 0;
};

}  // namespace acdn
