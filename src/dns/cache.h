// TTL-expiring cache, as run by an LDNS.
//
// The beacon issues a warm-up request so the timed fetch is served from the
// resolver cache and measures only the client-to-front-end path (§3.2.2);
// TTLs are "longer than the duration of the beacon". For DNS redirection
// itself, small TTLs bound how stale a redirection decision can get (§2).
// The cache is simulated against SimTime, not the wall clock.
#pragma once

#include <cstddef>
#include <optional>
#include <unordered_map>

#include "common/sim_clock.h"

namespace acdn {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class TtlCache {
 public:
  /// `ttl_seconds` applies to every entry inserted.
  explicit TtlCache(double ttl_seconds) : ttl_seconds_(ttl_seconds) {}

  void put(const Key& key, Value value, const SimTime& now) {
    entries_[key] = Entry{std::move(value), expiry(now)};
  }

  /// Value if present and unexpired at `now`; expired entries are erased.
  [[nodiscard]] std::optional<Value> get(const Key& key, const SimTime& now) {
    auto it = entries_.find(key);
    if (it == entries_.end()) return std::nullopt;
    if (absolute(now) >= it->second.expires_at) {
      entries_.erase(it);
      ++expirations_;
      return std::nullopt;
    }
    ++hits_;
    return it->second.value;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t hits() const { return hits_; }
  [[nodiscard]] std::size_t expirations() const { return expirations_; }
  [[nodiscard]] double ttl_seconds() const { return ttl_seconds_; }

  void clear() { entries_.clear(); }

 private:
  struct Entry {
    Value value;
    double expires_at;  // absolute seconds since day 0
  };

  static double absolute(const SimTime& t) {
    return t.day * 86400.0 + t.seconds;
  }
  [[nodiscard]] double expiry(const SimTime& now) const {
    return absolute(now) + ttl_seconds_;
  }

  double ttl_seconds_;
  std::unordered_map<Key, Entry, Hash> entries_;
  std::size_t hits_ = 0;
  std::size_t expirations_ = 0;
};

}  // namespace acdn
