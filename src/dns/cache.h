// TTL-expiring cache, as run by an LDNS.
//
// The beacon issues a warm-up request so the timed fetch is served from the
// resolver cache and measures only the client-to-front-end path (§3.2.2);
// TTLs are "longer than the duration of the beacon". For DNS redirection
// itself, small TTLs bound how stale a redirection decision can get (§2).
// The cache is simulated against SimTime, not the wall clock.
//
// Expired entries are reclaimed two ways: lazily when get() touches the
// exact key, and by an amortized sweep triggered every ~size() puts — so a
// month-long run with churning keys stays bounded by the live working set
// instead of accumulating every key ever inserted. Hits, expirations,
// evictions, and the post-sweep size are reported through the metrics
// registry (common/metrics.h) under the prefix passed at construction.
#pragma once

#include <algorithm>
#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/check.h"
#include "common/metrics.h"
#include "common/sim_clock.h"

namespace acdn {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class TtlCache {
 public:
  /// `ttl_seconds` applies to every entry inserted. `metric_prefix` names
  /// this cache in the metrics registry ("<prefix>.hits" etc.).
  explicit TtlCache(double ttl_seconds,
                    std::string metric_prefix = "dns.cache")
      : ttl_seconds_(ttl_seconds),
        hits_metric_(metric_prefix + ".hits"),
        expirations_metric_(metric_prefix + ".expirations"),
        evictions_metric_(metric_prefix + ".evictions"),
        size_metric_(metric_prefix + ".size") {
    ACDN_CHECK_GE(ttl_seconds, 0.0) << "negative TTL for " << metric_prefix;
  }

  void put(const Key& key, Value value, const SimTime& now) {
    ACDN_DCHECK_GE(expiry(now), absolute(now))
        << "entry born expired; SimTime went backwards?";
    entries_[key] = Entry{std::move(value), expiry(now)};
    // Amortized expiry: sweep after as many puts as the map held at the
    // last sweep — O(1) amortized per put, map bounded by roughly twice
    // the live entry count. The threshold must be latched at sweep time:
    // comparing against the live size() would chase its own tail (both
    // advance one per put) and never fire again.
    if (++puts_since_sweep_ >= next_sweep_) sweep(now);
  }

  /// Value if present and unexpired at `now`; expired entries are erased.
  [[nodiscard]] std::optional<Value> get(const Key& key, const SimTime& now) {
    auto it = entries_.find(key);
    if (it == entries_.end()) return std::nullopt;
    if (absolute(now) >= it->second.expires_at) {
      entries_.erase(it);
      ++expirations_;
      metric_count(expirations_metric_);
      return std::nullopt;
    }
    ++hits_;
    metric_count(hits_metric_);
    return it->second.value;
  }

  /// Erases every entry expired at `now` (also runs automatically from
  /// put()). Evicted entries count separately from lazy get()-side
  /// expirations.
  void sweep(const SimTime& now) {
    puts_since_sweep_ = 0;
    const double t = absolute(now);
    std::size_t evicted = 0;
    // NOLINT-ACDN(unordered-iter): erase-only, visit-order independent
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (t >= it->second.expires_at) {
        it = entries_.erase(it);
        ++evicted;
      } else {
        ++it;
      }
    }
    // Latch the next threshold from the *live* size: basing it on the
    // pre-eviction size would let each interval inherit the previous
    // interval's garbage and ratchet upward.
    next_sweep_ = std::max(kMinSweepInterval, entries_.size());
    ACDN_DCHECK_GE(next_sweep_, kMinSweepInterval)
        << "sweep threshold below the amortization floor";
    evictions_ += evicted;
    if (evicted > 0) metric_count(evictions_metric_, evicted);
    metric_gauge(size_metric_, double(entries_.size()));
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t hits() const { return hits_; }
  [[nodiscard]] std::size_t expirations() const { return expirations_; }
  [[nodiscard]] std::size_t evictions() const { return evictions_; }
  [[nodiscard]] double ttl_seconds() const { return ttl_seconds_; }

  void clear() {
    entries_.clear();
    puts_since_sweep_ = 0;
    next_sweep_ = kMinSweepInterval;
  }

 private:
  struct Entry {
    Value value;
    double expires_at;  // absolute seconds since day 0
  };

  /// Floor on the sweep interval so tiny caches don't sweep every put.
  static constexpr std::size_t kMinSweepInterval = 64;

  static double absolute(const SimTime& t) {
    return t.day * 86400.0 + t.seconds;
  }
  [[nodiscard]] double expiry(const SimTime& now) const {
    return absolute(now) + ttl_seconds_;
  }

  double ttl_seconds_;
  std::string hits_metric_;
  std::string expirations_metric_;
  std::string evictions_metric_;
  std::string size_metric_;
  // NOLINT-ACDN(unordered-decl): keyed get/put; only sweep() iterates,
  std::unordered_map<Key, Entry, Hash> entries_;  // and it only erases
  std::size_t puts_since_sweep_ = 0;
  std::size_t next_sweep_ = kMinSweepInterval;
  std::size_t hits_ = 0;
  std::size_t expirations_ = 0;
  std::size_t evictions_ = 0;
};

}  // namespace acdn
