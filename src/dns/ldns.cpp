#include "dns/ldns.h"

#include <algorithm>
#include <map>

#include "common/error.h"
#include "common/failpoint.h"

namespace acdn {

LdnsFault ldns_resolution_fault(DayIndex day, std::uint64_t query_coord) {
  static const FailPoint resolve_fault("dns/resolve");
  const auto fault = resolve_fault.fire(day, query_coord);
  if (!fault) return LdnsFault::kNone;
  if (fault->kind == FaultKind::kError || fault->kind == FaultKind::kDelay) {
    return LdnsFault::kServfail;
  }
  return LdnsFault::kLogLoss;
}

void DnsConfig::validate() const {
  require(metros_per_resolver_site >= 1,
          "metros_per_resolver_site must be at least 1");
  require(max_resolver_sites_per_isp >= 1,
          "max_resolver_sites_per_isp must be at least 1");
  require(public_resolver_fraction >= 0.0 && public_resolver_fraction <= 1.0,
          "public_resolver_fraction must be in [0,1]");
  require(public_resolver_sites >= 1, "need at least one public site");
}

LdnsPopulation LdnsPopulation::build_and_assign(ClientPopulation& clients,
                                                const MetroDatabase& metros,
                                                const DnsConfig& config,
                                                Rng& rng) {
  config.validate();
  LdnsPopulation pop;
  Rng gen = rng.fork("ldns");

  // Public resolver sites at the most populous metros worldwide.
  std::vector<MetroId> by_pop;
  for (const Metro& m : metros.all()) by_pop.push_back(m.id);
  std::sort(by_pop.begin(), by_pop.end(), [&](MetroId a, MetroId b) {
    return metros.metro(a).population_millions >
           metros.metro(b).population_millions;
  });
  std::vector<LdnsId> public_sites;
  const int n_public = std::min<int>(config.public_resolver_sites,
                                     static_cast<int>(by_pop.size()));
  for (int i = 0; i < n_public; ++i) {
    const MetroId m = by_pop[static_cast<std::size_t>(i)];
    const LdnsId id(static_cast<std::uint32_t>(pop.servers_.size()));
    pop.servers_.push_back(
        LdnsServer{id, m, metros.metro(m).location, true, AsId{}});
    public_sites.push_back(id);
  }

  // ISP resolver sites: each ISP runs one site per `metros_per_resolver_
  // site` client metros (capped), at its most populous client metros.
  // Clients use their ISP's nearest site — possibly a metro (or more)
  // away, which is the LDNS/client mismatch the paper discusses.
  std::map<AsId, std::map<MetroId, int>> as_metro_counts;
  for (const Client24& c : clients.clients()) {
    ++as_metro_counts[c.access_as][c.metro];
  }

  std::map<AsId, std::vector<LdnsId>> isp_sites;
  for (const auto& [as, counts] : as_metro_counts) {
    std::vector<MetroId> isp_metros;
    for (const auto& [m, n] : counts) isp_metros.push_back(m);
    const int sites = std::clamp<int>(
        static_cast<int>(isp_metros.size()) / config.metros_per_resolver_site
            + 1,
        1, config.max_resolver_sites_per_isp);

    // k-center site selection: the busiest metro first, then repeatedly
    // the client metro farthest from any existing site — ISPs place
    // resolvers for coverage, not just in their biggest cities. The
    // residual far-demand tail is what [17] measured.
    std::vector<MetroId> chosen;
    MetroId first = isp_metros.front();
    for (MetroId m : isp_metros) {
      if (metros.metro(m).population_millions >
          metros.metro(first).population_millions) {
        first = m;
      }
    }
    chosen.push_back(first);
    while (static_cast<int>(chosen.size()) < sites &&
           chosen.size() < isp_metros.size()) {
      MetroId farthest = isp_metros.front();
      Kilometers best = -1.0;
      for (MetroId m : isp_metros) {
        Kilometers nearest = 1e18;
        for (MetroId c : chosen) {
          nearest = std::min(nearest, metros.distance_km(m, c));
        }
        if (nearest > best) {
          best = nearest;
          farthest = m;
        }
      }
      if (best <= 0.0) break;  // every metro already hosts a site
      chosen.push_back(farthest);
    }

    std::vector<LdnsId>& ids = isp_sites[as];
    for (MetroId m : chosen) {
      const LdnsId id(static_cast<std::uint32_t>(pop.servers_.size()));
      pop.servers_.push_back(
          LdnsServer{id, m, metros.metro(m).location, false, as});
      ids.push_back(id);
    }
  }

  auto nearest_site = [&](const GeoPoint& where,
                          const std::vector<LdnsId>& sites) {
    LdnsId best = sites.front();
    Kilometers best_d =
        haversine_km(where, pop.servers_[best.value].location);
    for (LdnsId s : sites) {
      const Kilometers d =
          haversine_km(where, pop.servers_[s.value].location);
      if (d < best_d) {
        best = s;
        best_d = d;
      }
    }
    return best;
  };

  for (const Client24& c : clients.clients()) {
    const LdnsId assigned =
        gen.uniform() < config.public_resolver_fraction
            ? nearest_site(c.location, public_sites)
            : nearest_site(c.location, isp_sites[c.access_as]);
    clients.client(c.id).ldns = assigned;
  }

  pop.clients_.resize(pop.servers_.size());
  for (const Client24& c : clients.clients()) {
    pop.clients_[c.ldns.value].push_back(c.id);
  }
  return pop;
}

const LdnsServer& LdnsPopulation::server(LdnsId id) const {
  if (!id.valid() || id.value >= servers_.size()) {
    throw NotFoundError("ldns id " + std::to_string(id.value));
  }
  return servers_[id.value];
}

std::span<const ClientId> LdnsPopulation::clients_of(LdnsId id) const {
  [[maybe_unused]] const LdnsServer& checked = server(id);  // bounds check
  return clients_[id.value];
}

}  // namespace acdn
