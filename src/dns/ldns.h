// Local DNS resolver (LDNS) population and client assignment.
//
// DNS-based redirection decides per LDNS, not per client (§2), so LDNS
// placement shapes how well it can work. Per the Akamai study the paper
// cites [17]: most clients are near their LDNS, but 11-12% of demand comes
// from clients >500 km away, and public resolvers (~8% of demand) serve
// geographically disparate clients. We model three assignment classes:
//   * co-located ISP resolver in the client's metro (the common case),
//   * centralized ISP resolver at the ISP's hub metro (the distant case),
//   * public anycast resolver: the client is served by the public
//     resolver's site nearest the client.
#pragma once

#include <span>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "geo/metro.h"
#include "workload/clients.h"

namespace acdn {

struct LdnsServer {
  LdnsId id;
  MetroId metro;
  GeoPoint location;
  bool is_public = false;
  /// Owning access AS for ISP resolvers (invalid for public resolvers).
  AsId owner;
};

/// Outcome of the "dns/resolve" fail point for one lookup.
enum class LdnsFault {
  kNone,      ///< resolution succeeded and was logged
  kLogLoss,   ///< resolution succeeded but its DNS log row is lost
  kServfail,  ///< SERVFAIL / timeout: the lookup (and its fetch) fails
};

/// Consults the "dns/resolve" fail point for the lookup identified by
/// `query_coord` (the beacon target's url_id) on `day`. Fault kinds
/// error/delay map to kServfail; drop/corrupt to kLogLoss. Always kNone
/// when fail points are disarmed.
[[nodiscard]] LdnsFault ldns_resolution_fault(DayIndex day,
                                              std::uint64_t query_coord);

struct DnsConfig {
  /// ISPs centralize resolution: one resolver site per this many PoP
  /// metros (at the most populous ones), so clients of a national ISP are
  /// often served by a resolver one or more metros away — the geographic
  /// mismatch that makes LDNS-granularity redirection pay a penalty
  /// (paper §6 and the Akamai study it cites [17]).
  int metros_per_resolver_site = 4;
  /// Upper bound on resolver sites per ISP.
  int max_resolver_sites_per_isp = 10;
  /// Fraction of client /24s using a public resolver.
  double public_resolver_fraction = 0.08;
  /// Number of public-resolver anycast sites (placed at top metros).
  int public_resolver_sites = 12;

  void validate() const;
};

class LdnsPopulation {
 public:
  /// Builds the resolver fleet and assigns every client's `ldns` field.
  static LdnsPopulation build_and_assign(ClientPopulation& clients,
                                         const MetroDatabase& metros,
                                         const DnsConfig& config, Rng& rng);

  [[nodiscard]] std::size_t size() const { return servers_.size(); }
  [[nodiscard]] std::span<const LdnsServer> servers() const {
    return servers_;
  }
  [[nodiscard]] const LdnsServer& server(LdnsId id) const;

  /// Clients assigned to each LDNS (indexed by LdnsId).
  [[nodiscard]] std::span<const ClientId> clients_of(LdnsId id) const;

 private:
  std::vector<LdnsServer> servers_;
  std::vector<std::vector<ClientId>> clients_;
};

}  // namespace acdn
