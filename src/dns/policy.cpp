#include "dns/policy.h"

#include "common/error.h"

namespace acdn {

DnsAnswer GeoClosestPolicy::resolve(const DnsQueryContext& query) const {
  // Geolocate the decision subject: the ECS prefix when present (per-prefix
  // decisions), otherwise the LDNS itself. The geolocation database may
  // mislocate either; the error model is keyed on the subject so the same
  // /24 always geolocates identically.
  GeoPoint where;
  const std::optional<ClientId> ecs_client =
      query.ecs_prefix ? clients_->find_by_prefix(*query.ecs_prefix)
                       : std::nullopt;
  if (ecs_client) {
    where = geo_->estimate(clients_->client(*ecs_client).location,
                           query.ecs_prefix->address().value());
  } else {
    where = geo_->estimate(ldns_->server(query.ldns).location,
                           0x1000000000ull + query.ldns.value);
  }
  const auto nearest = deployment_->nearest_sites(*metros_, where, 1);
  require(!nearest.empty(), "deployment has no sites");
  return DnsAnswer{false, nearest.front()};
}

}  // namespace acdn
