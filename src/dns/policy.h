// Authoritative-side redirection policies.
//
// The CDN's authoritative nameserver decides, per query, whether to return
// the anycast address or a specific front-end's unicast address. Decisions
// are made at the granularity DNS allows: the querying LDNS, or the
// client's /24 when the resolver forwards an ECS prefix (§2, §6). The
// prediction-driven policies built on the paper's §6 scheme live in
// src/core; this header defines the interface and the two baselines.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "cdn/deployment.h"
#include "common/types.h"
#include "dns/ldns.h"
#include "geo/geolocation.h"
#include "net/ipv4.h"

namespace acdn {

/// What the authoritative server knows when answering.
struct DnsQueryContext {
  LdnsId ldns;
  /// Present when the resolver forwards EDNS client-subnet (ECS).
  std::optional<Prefix> ecs_prefix;
  DayIndex day = 0;
};

/// The redirection decision.
struct DnsAnswer {
  bool anycast = true;
  /// Meaningful only when !anycast: the unicast front-end returned.
  FrontEndId front_end;
};

class RedirectionPolicy {
 public:
  virtual ~RedirectionPolicy() = default;
  [[nodiscard]] virtual DnsAnswer resolve(const DnsQueryContext& query) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Pure anycast: what the production CDN in the paper does.
class AnycastPolicy final : public RedirectionPolicy {
 public:
  [[nodiscard]] DnsAnswer resolve(const DnsQueryContext&) const override {
    return DnsAnswer{true, FrontEndId{}};
  }
  [[nodiscard]] std::string name() const override { return "anycast"; }
};

/// Geo-DNS baseline: return the front-end geographically closest to the
/// LDNS (or to the ECS prefix's geolocated position when present), using
/// the — imperfect — geolocation database.
class GeoClosestPolicy final : public RedirectionPolicy {
 public:
  GeoClosestPolicy(const Deployment& deployment, const MetroDatabase& metros,
                   const LdnsPopulation& ldns,
                   const ClientPopulation& clients,
                   const GeolocationModel& geo)
      : deployment_(&deployment),
        metros_(&metros),
        ldns_(&ldns),
        clients_(&clients),
        geo_(&geo) {}

  [[nodiscard]] DnsAnswer resolve(const DnsQueryContext& query) const override;
  [[nodiscard]] std::string name() const override { return "geo-closest"; }

 private:
  const Deployment* deployment_;
  const MetroDatabase* metros_;
  const LdnsPopulation* ldns_;
  const ClientPopulation* clients_;
  const GeolocationModel* geo_;
};

}  // namespace acdn
