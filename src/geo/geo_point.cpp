#include "geo/geo_point.h"

#include <cmath>
#include <numbers>

#include "common/simd.h"

namespace acdn {

namespace {
constexpr double kEarthRadiusKm = 6371.0088;  // mean Earth radius

double rad(double deg) { return deg * std::numbers::pi / 180.0; }
double deg(double r) { return r * 180.0 / std::numbers::pi; }
}  // namespace

const char* to_string(Region r) {
  switch (r) {
    case Region::kNorthAmerica: return "North America";
    case Region::kSouthAmerica: return "South America";
    case Region::kEurope:       return "Europe";
    case Region::kAsia:         return "Asia";
    case Region::kOceania:      return "Oceania";
    case Region::kAfrica:       return "Africa";
    case Region::kMiddleEast:   return "Middle East";
  }
  return "?";
}

Kilometers haversine_km(const GeoPoint& a, const GeoPoint& b) {
  const double phi1 = rad(a.lat_deg);
  const double phi2 = rad(b.lat_deg);
  const double dphi = rad(b.lat_deg - a.lat_deg);
  const double dlam = rad(b.lon_deg - a.lon_deg);
  const double s = std::sin(dphi / 2.0);
  const double t = std::sin(dlam / 2.0);
  const double h = s * s + std::cos(phi1) * std::cos(phi2) * t * t;
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

void haversine_km_batch(const GeoPoint& origin, std::span<const double> lat_deg,
                        std::span<const double> lon_deg,
                        std::span<Kilometers> out_km) {
  // 2R is exact (doubling a double never rounds), so the kernel's
  // (2R) * asin(...) product is the same operation the scalar path runs.
  simd::haversine_batch(origin.lat_deg, origin.lon_deg, lat_deg, lon_deg,
                        2.0 * kEarthRadiusKm, out_km);
}

void haversine_km_pairs(std::span<const double> lat_a,
                        std::span<const double> lon_a,
                        std::span<const double> lat_b,
                        std::span<const double> lon_b,
                        std::span<Kilometers> out_km) {
  simd::haversine_pairs_batch(lat_a, lon_a, lat_b, lon_b,
                              2.0 * kEarthRadiusKm, out_km);
}

double initial_bearing_deg(const GeoPoint& a, const GeoPoint& b) {
  const double phi1 = rad(a.lat_deg);
  const double phi2 = rad(b.lat_deg);
  const double dlam = rad(b.lon_deg - a.lon_deg);
  const double y = std::sin(dlam) * std::cos(phi2);
  const double x = std::cos(phi1) * std::sin(phi2) -
                   std::sin(phi1) * std::cos(phi2) * std::cos(dlam);
  const double theta = std::atan2(y, x);
  return std::fmod(deg(theta) + 360.0, 360.0);
}

GeoPoint destination_point(const GeoPoint& origin, double bearing_deg,
                           Kilometers distance_km) {
  const double delta = distance_km / kEarthRadiusKm;
  const double theta = rad(bearing_deg);
  const double phi1 = rad(origin.lat_deg);
  const double lam1 = rad(origin.lon_deg);
  const double phi2 = std::asin(std::sin(phi1) * std::cos(delta) +
                                std::cos(phi1) * std::sin(delta) *
                                    std::cos(theta));
  const double lam2 =
      lam1 + std::atan2(std::sin(theta) * std::sin(delta) * std::cos(phi1),
                        std::cos(delta) - std::sin(phi1) * std::sin(phi2));
  double lon = deg(lam2);
  // Normalize longitude to [-180, 180].
  lon = std::fmod(lon + 540.0, 360.0) - 180.0;
  return GeoPoint{deg(phi2), lon};
}

}  // namespace acdn
