// Geographic primitives: points on the WGS84 sphere and great-circle math.
#pragma once

#include <span>
#include <string>

#include "common/types.h"

namespace acdn {

/// Continental region, used by the paper for Figure 3's per-region CCDFs and
/// by the topology builder for deployment density.
enum class Region {
  kNorthAmerica,
  kSouthAmerica,
  kEurope,
  kAsia,
  kOceania,
  kAfrica,
  kMiddleEast,
};

[[nodiscard]] const char* to_string(Region r);
inline constexpr int kNumRegions = 7;

/// A point on the Earth's surface. Degrees; latitude in [-90, 90],
/// longitude in [-180, 180].
struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  auto operator<=>(const GeoPoint&) const = default;
};

/// Great-circle distance in kilometers (haversine, mean Earth radius).
[[nodiscard]] Kilometers haversine_km(const GeoPoint& a, const GeoPoint& b);

/// Batch haversine from one fixed origin to coordinate columns, through
/// the common/simd.h dispatch kernels. Bit-identical per element to
/// haversine_km on every dispatch target. Spans must match in size.
void haversine_km_batch(const GeoPoint& origin, std::span<const double> lat_deg,
                        std::span<const double> lon_deg,
                        std::span<Kilometers> out_km);

/// Batch haversine over paired coordinate columns (a[i] to b[i]).
void haversine_km_pairs(std::span<const double> lat_a,
                        std::span<const double> lon_a,
                        std::span<const double> lat_b,
                        std::span<const double> lon_b,
                        std::span<Kilometers> out_km);

/// Initial bearing from `a` to `b` in degrees clockwise from north, [0, 360).
[[nodiscard]] double initial_bearing_deg(const GeoPoint& a, const GeoPoint& b);

/// The point reached by travelling `distance_km` from `origin` along
/// `bearing_deg`. Used to jitter client locations around their metro center.
[[nodiscard]] GeoPoint destination_point(const GeoPoint& origin,
                                         double bearing_deg,
                                         Kilometers distance_km);

}  // namespace acdn
