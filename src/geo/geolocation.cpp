#include "geo/geolocation.h"

namespace acdn {

GeoPoint GeolocationModel::estimate(const GeoPoint& truth,
                                    std::uint64_t entity_key) const {
  // Independent stream per entity: re-seeding by key keeps estimates stable
  // regardless of call order.
  Rng rng(seed_ ^ (entity_key * 0x9e3779b97f4a7c15ull));
  const double roll = rng.uniform();
  if (roll < config_.exact_fraction) return truth;

  const double bearing = rng.uniform(0.0, 360.0);
  Kilometers error_km = 0.0;
  if (roll < config_.exact_fraction + config_.gross_error_fraction) {
    error_km = rng.uniform(config_.gross_error_min_km,
                           config_.gross_error_max_km);
  } else {
    error_km = rng.lognormal(config_.nearby_error_mu,
                             config_.nearby_error_sigma);
  }
  return destination_point(truth, bearing, error_km);
}

}  // namespace acdn
