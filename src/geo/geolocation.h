// Geolocation database error model.
//
// The paper relies on a commercial geolocation database to pick candidate
// front-ends per LDNS (§3.3) and notes (footnote 1) that a fraction of very
// long client-to-front-end distances may be geolocation error. This model
// maps a true location to the location a geolocation database would report,
// deterministically per entity, so the same /24 always geolocates the same
// way within a run.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "geo/geo_point.h"

namespace acdn {

struct GeolocationConfig {
  /// Fraction of entities whose database entry is essentially exact.
  double exact_fraction = 0.90;
  /// Lognormal parameters (of km error) for inexact-but-plausible entries.
  double nearby_error_mu = 3.2;     // median ~25 km
  double nearby_error_sigma = 0.9;
  /// Fraction of entities that are badly mislocated (wrong city/country).
  double gross_error_fraction = 0.01;
  /// Gross errors are uniform in [min, max] km from the truth.
  Kilometers gross_error_min_km = 1000.0;
  Kilometers gross_error_max_km = 8000.0;
};

class GeolocationModel {
 public:
  GeolocationModel(const GeolocationConfig& config, std::uint64_t seed)
      : config_(config), seed_(seed) {}

  /// The location the database reports for an entity whose true location is
  /// `truth`. Deterministic in (seed, entity_key).
  [[nodiscard]] GeoPoint estimate(const GeoPoint& truth,
                                  std::uint64_t entity_key) const;

  [[nodiscard]] const GeolocationConfig& config() const { return config_; }

 private:
  GeolocationConfig config_;
  std::uint64_t seed_;
};

}  // namespace acdn
