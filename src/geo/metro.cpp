#include "geo/metro.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"

namespace acdn {

namespace {

struct RawMetro {
  const char* name;
  const char* country;
  Region region;
  double lat;
  double lon;
  double pop_m;
};

// Approximate coordinates and metro-area populations (millions), circa 2015.
constexpr RawMetro kWorldMetros[] = {
    // --- North America ---
    {"New York", "US", Region::kNorthAmerica, 40.71, -74.01, 19.5},
    {"Los Angeles", "US", Region::kNorthAmerica, 34.05, -118.24, 13.0},
    {"Chicago", "US", Region::kNorthAmerica, 41.88, -87.63, 9.5},
    {"Dallas", "US", Region::kNorthAmerica, 32.78, -96.80, 7.5},
    {"Houston", "US", Region::kNorthAmerica, 29.76, -95.37, 7.0},
    {"Washington", "US", Region::kNorthAmerica, 38.91, -77.04, 6.2},
    {"Miami", "US", Region::kNorthAmerica, 25.76, -80.19, 6.1},
    {"Philadelphia", "US", Region::kNorthAmerica, 39.95, -75.17, 6.0},
    {"Atlanta", "US", Region::kNorthAmerica, 33.75, -84.39, 6.0},
    {"Boston", "US", Region::kNorthAmerica, 42.36, -71.06, 4.9},
    {"Phoenix", "US", Region::kNorthAmerica, 33.45, -112.07, 4.8},
    {"San Francisco", "US", Region::kNorthAmerica, 37.77, -122.42, 4.7},
    {"Seattle", "US", Region::kNorthAmerica, 47.61, -122.33, 4.0},
    {"San Jose", "US", Region::kNorthAmerica, 37.34, -121.89, 2.0},
    {"Denver", "US", Region::kNorthAmerica, 39.74, -104.99, 2.9},
    {"Minneapolis", "US", Region::kNorthAmerica, 44.98, -93.27, 3.6},
    {"San Diego", "US", Region::kNorthAmerica, 32.72, -117.16, 3.3},
    {"Detroit", "US", Region::kNorthAmerica, 42.33, -83.05, 4.3},
    {"Salt Lake City", "US", Region::kNorthAmerica, 40.76, -111.89, 1.2},
    {"Portland", "US", Region::kNorthAmerica, 45.52, -122.68, 2.5},
    {"St. Louis", "US", Region::kNorthAmerica, 38.63, -90.20, 2.8},
    {"Charlotte", "US", Region::kNorthAmerica, 35.23, -80.84, 2.6},
    {"Kansas City", "US", Region::kNorthAmerica, 39.10, -94.58, 2.2},
    {"Las Vegas", "US", Region::kNorthAmerica, 36.17, -115.14, 2.2},
    {"Columbus", "US", Region::kNorthAmerica, 39.96, -83.00, 2.1},
    {"Nashville", "US", Region::kNorthAmerica, 36.16, -86.78, 2.0},
    {"Austin", "US", Region::kNorthAmerica, 30.27, -97.74, 2.3},
    {"Sacramento", "US", Region::kNorthAmerica, 38.58, -121.49, 2.4},
    {"Tampa", "US", Region::kNorthAmerica, 27.95, -82.46, 3.2},
    {"Cleveland", "US", Region::kNorthAmerica, 41.50, -81.69, 2.1},
    {"Pittsburgh", "US", Region::kNorthAmerica, 40.44, -80.00, 2.3},
    {"Orlando", "US", Region::kNorthAmerica, 28.54, -81.38, 2.6},
    {"Toronto", "CA", Region::kNorthAmerica, 43.65, -79.38, 6.2},
    {"Montreal", "CA", Region::kNorthAmerica, 45.50, -73.57, 4.2},
    {"Vancouver", "CA", Region::kNorthAmerica, 49.28, -123.12, 2.6},
    {"Calgary", "CA", Region::kNorthAmerica, 51.05, -114.07, 1.5},
    {"Mexico City", "MX", Region::kNorthAmerica, 19.43, -99.13, 21.8},
    {"Guadalajara", "MX", Region::kNorthAmerica, 20.66, -103.35, 5.2},
    {"Monterrey", "MX", Region::kNorthAmerica, 25.69, -100.32, 4.7},
    // --- Europe ---
    {"London", "GB", Region::kEurope, 51.51, -0.13, 14.0},
    {"Manchester", "GB", Region::kEurope, 53.48, -2.24, 3.4},
    {"Edinburgh", "GB", Region::kEurope, 55.95, -3.19, 0.9},
    {"Paris", "FR", Region::kEurope, 48.86, 2.35, 12.5},
    {"Lyon", "FR", Region::kEurope, 45.76, 4.84, 2.3},
    {"Marseille", "FR", Region::kEurope, 43.30, 5.37, 1.9},
    {"Madrid", "ES", Region::kEurope, 40.42, -3.70, 6.7},
    {"Barcelona", "ES", Region::kEurope, 41.39, 2.17, 5.6},
    {"Berlin", "DE", Region::kEurope, 52.52, 13.40, 6.1},
    {"Frankfurt", "DE", Region::kEurope, 50.11, 8.68, 2.7},
    {"Munich", "DE", Region::kEurope, 48.14, 11.58, 2.9},
    {"Hamburg", "DE", Region::kEurope, 53.55, 9.99, 3.1},
    {"Amsterdam", "NL", Region::kEurope, 52.37, 4.90, 2.9},
    {"Rotterdam", "NL", Region::kEurope, 51.92, 4.48, 1.0},
    {"Brussels", "BE", Region::kEurope, 50.85, 4.35, 2.5},
    {"Milan", "IT", Region::kEurope, 45.46, 9.19, 4.3},
    {"Rome", "IT", Region::kEurope, 41.90, 12.50, 4.3},
    {"Turin", "IT", Region::kEurope, 45.07, 7.69, 1.7},
    {"Vienna", "AT", Region::kEurope, 48.21, 16.37, 2.9},
    {"Zurich", "CH", Region::kEurope, 47.38, 8.54, 1.4},
    {"Stockholm", "SE", Region::kEurope, 59.33, 18.07, 2.4},
    {"Gothenburg", "SE", Region::kEurope, 57.71, 11.97, 1.0},
    {"Oslo", "NO", Region::kEurope, 59.91, 10.75, 1.5},
    {"Copenhagen", "DK", Region::kEurope, 55.68, 12.57, 2.1},
    {"Helsinki", "FI", Region::kEurope, 60.17, 24.94, 1.5},
    {"Warsaw", "PL", Region::kEurope, 52.23, 21.01, 3.1},
    {"Prague", "CZ", Region::kEurope, 50.08, 14.44, 2.7},
    {"Budapest", "HU", Region::kEurope, 47.50, 19.04, 3.0},
    {"Bucharest", "RO", Region::kEurope, 44.43, 26.10, 2.3},
    {"Athens", "GR", Region::kEurope, 37.98, 23.73, 3.2},
    {"Lisbon", "PT", Region::kEurope, 38.72, -9.14, 2.9},
    {"Dublin", "IE", Region::kEurope, 53.35, -6.26, 2.0},
    {"Moscow", "RU", Region::kEurope, 55.76, 37.62, 17.1},
    {"St. Petersburg", "RU", Region::kEurope, 59.93, 30.34, 5.5},
    {"Kyiv", "UA", Region::kEurope, 50.45, 30.52, 3.0},
    {"Istanbul", "TR", Region::kEurope, 41.01, 28.98, 15.5},
    // --- Asia ---
    {"Tokyo", "JP", Region::kAsia, 35.68, 139.69, 37.4},
    {"Osaka", "JP", Region::kAsia, 34.69, 135.50, 19.2},
    {"Nagoya", "JP", Region::kAsia, 35.18, 136.91, 9.5},
    {"Seoul", "KR", Region::kAsia, 37.57, 126.98, 25.5},
    {"Beijing", "CN", Region::kAsia, 39.90, 116.41, 20.4},
    {"Shanghai", "CN", Region::kAsia, 31.23, 121.47, 27.1},
    {"Guangzhou", "CN", Region::kAsia, 23.13, 113.26, 13.3},
    {"Shenzhen", "CN", Region::kAsia, 22.54, 114.06, 12.4},
    {"Hong Kong", "HK", Region::kAsia, 22.32, 114.17, 7.5},
    {"Taipei", "TW", Region::kAsia, 25.03, 121.57, 7.0},
    {"Singapore", "SG", Region::kAsia, 1.35, 103.82, 5.9},
    {"Kuala Lumpur", "MY", Region::kAsia, 3.14, 101.69, 7.6},
    {"Bangkok", "TH", Region::kAsia, 13.76, 100.50, 10.5},
    {"Jakarta", "ID", Region::kAsia, -6.21, 106.85, 10.6},
    {"Manila", "PH", Region::kAsia, 14.60, 120.98, 13.5},
    {"Ho Chi Minh City", "VN", Region::kAsia, 10.82, 106.63, 9.0},
    {"Mumbai", "IN", Region::kAsia, 19.08, 72.88, 20.4},
    {"Delhi", "IN", Region::kAsia, 28.70, 77.10, 30.3},
    {"Bangalore", "IN", Region::kAsia, 12.97, 77.59, 12.3},
    {"Chennai", "IN", Region::kAsia, 13.08, 80.27, 10.9},
    {"Hyderabad", "IN", Region::kAsia, 17.38, 78.49, 10.0},
    {"Kolkata", "IN", Region::kAsia, 22.57, 88.36, 14.8},
    {"Karachi", "PK", Region::kAsia, 24.86, 67.00, 16.0},
    {"Dhaka", "BD", Region::kAsia, 23.81, 90.41, 21.0},
    // --- Oceania ---
    {"Sydney", "AU", Region::kOceania, -33.87, 151.21, 5.3},
    {"Melbourne", "AU", Region::kOceania, -37.81, 144.96, 5.1},
    {"Brisbane", "AU", Region::kOceania, -27.47, 153.03, 2.5},
    {"Perth", "AU", Region::kOceania, -31.95, 115.86, 2.1},
    {"Auckland", "NZ", Region::kOceania, -36.85, 174.76, 1.7},
    // --- South America ---
    {"Sao Paulo", "BR", Region::kSouthAmerica, -23.55, -46.63, 22.0},
    {"Rio de Janeiro", "BR", Region::kSouthAmerica, -22.91, -43.17, 13.5},
    {"Brasilia", "BR", Region::kSouthAmerica, -15.79, -47.88, 4.6},
    {"Porto Alegre", "BR", Region::kSouthAmerica, -30.03, -51.23, 4.1},
    {"Buenos Aires", "AR", Region::kSouthAmerica, -34.60, -58.38, 15.2},
    {"Santiago", "CL", Region::kSouthAmerica, -33.45, -70.67, 6.8},
    {"Lima", "PE", Region::kSouthAmerica, -12.05, -77.04, 10.7},
    {"Bogota", "CO", Region::kSouthAmerica, 4.71, -74.07, 10.8},
    {"Caracas", "VE", Region::kSouthAmerica, 10.48, -66.90, 2.9},
    // --- Africa ---
    {"Johannesburg", "ZA", Region::kAfrica, -26.20, 28.05, 9.6},
    {"Cape Town", "ZA", Region::kAfrica, -33.92, 18.42, 4.6},
    {"Lagos", "NG", Region::kAfrica, 6.52, 3.38, 14.4},
    {"Nairobi", "KE", Region::kAfrica, -1.29, 36.82, 4.7},
    {"Cairo", "EG", Region::kAfrica, 30.04, 31.24, 20.9},
    {"Casablanca", "MA", Region::kAfrica, 33.57, -7.59, 3.7},
    {"Accra", "GH", Region::kAfrica, 5.60, -0.19, 2.5},
    // --- Middle East ---
    {"Dubai", "AE", Region::kMiddleEast, 25.20, 55.27, 3.3},
    {"Tel Aviv", "IL", Region::kMiddleEast, 32.09, 34.78, 4.2},
    {"Riyadh", "SA", Region::kMiddleEast, 24.71, 46.68, 7.7},
    {"Doha", "QA", Region::kMiddleEast, 25.29, 51.53, 2.4},
    {"Amman", "JO", Region::kMiddleEast, 31.95, 35.93, 2.1},
    {"Tehran", "IR", Region::kMiddleEast, 35.69, 51.39, 9.0},
    {"Jeddah", "SA", Region::kMiddleEast, 21.49, 39.19, 4.7},
    {"Kuwait City", "KW", Region::kMiddleEast, 29.38, 47.99, 3.1},
    {"Abu Dhabi", "AE", Region::kMiddleEast, 24.45, 54.38, 1.5},
    {"Muscat", "OM", Region::kMiddleEast, 23.59, 58.41, 1.6},
    {"Baghdad", "IQ", Region::kMiddleEast, 33.31, 44.37, 7.5},
    {"Beirut", "LB", Region::kMiddleEast, 33.89, 35.50, 2.4},
    // --- North America: secondary metros ---
    {"Indianapolis", "US", Region::kNorthAmerica, 39.77, -86.16, 2.1},
    {"Cincinnati", "US", Region::kNorthAmerica, 39.10, -84.51, 2.2},
    {"Milwaukee", "US", Region::kNorthAmerica, 43.04, -87.91, 1.6},
    {"Raleigh", "US", Region::kNorthAmerica, 35.78, -78.64, 1.4},
    {"Richmond", "US", Region::kNorthAmerica, 37.54, -77.44, 1.3},
    {"Memphis", "US", Region::kNorthAmerica, 35.15, -90.05, 1.3},
    {"Oklahoma City", "US", Region::kNorthAmerica, 35.47, -97.52, 1.4},
    {"New Orleans", "US", Region::kNorthAmerica, 29.95, -90.07, 1.3},
    {"Louisville", "US", Region::kNorthAmerica, 38.25, -85.76, 1.3},
    {"Buffalo", "US", Region::kNorthAmerica, 42.89, -78.88, 1.1},
    {"Albuquerque", "US", Region::kNorthAmerica, 35.08, -106.65, 0.9},
    {"Tucson", "US", Region::kNorthAmerica, 32.22, -110.97, 1.0},
    {"El Paso", "US", Region::kNorthAmerica, 31.76, -106.49, 0.9},
    {"Boise", "US", Region::kNorthAmerica, 43.62, -116.21, 0.7},
    {"Spokane", "US", Region::kNorthAmerica, 47.66, -117.43, 0.6},
    {"Omaha", "US", Region::kNorthAmerica, 41.26, -95.93, 0.9},
    {"Des Moines", "US", Region::kNorthAmerica, 41.59, -93.62, 0.7},
    {"Jacksonville", "US", Region::kNorthAmerica, 30.33, -81.66, 1.5},
    {"Hartford", "US", Region::kNorthAmerica, 41.76, -72.67, 1.2},
    {"Ottawa", "CA", Region::kNorthAmerica, 45.42, -75.70, 1.4},
    {"Edmonton", "CA", Region::kNorthAmerica, 53.55, -113.49, 1.4},
    {"Winnipeg", "CA", Region::kNorthAmerica, 49.90, -97.14, 0.8},
    {"Quebec City", "CA", Region::kNorthAmerica, 46.81, -71.21, 0.8},
    {"Halifax", "CA", Region::kNorthAmerica, 44.65, -63.58, 0.4},
    {"Puebla", "MX", Region::kNorthAmerica, 19.04, -98.20, 3.2},
    {"Tijuana", "MX", Region::kNorthAmerica, 32.51, -117.04, 2.1},
    {"Leon", "MX", Region::kNorthAmerica, 21.12, -101.68, 1.8},
    // --- Europe: secondary metros ---
    {"Birmingham", "GB", Region::kEurope, 52.49, -1.89, 2.9},
    {"Leeds", "GB", Region::kEurope, 53.80, -1.55, 1.9},
    {"Glasgow", "GB", Region::kEurope, 55.86, -4.25, 1.7},
    {"Bordeaux", "FR", Region::kEurope, 44.84, -0.58, 1.2},
    {"Toulouse", "FR", Region::kEurope, 43.60, 1.44, 1.3},
    {"Lille", "FR", Region::kEurope, 50.63, 3.06, 1.2},
    {"Valencia", "ES", Region::kEurope, 39.47, -0.38, 1.6},
    {"Seville", "ES", Region::kEurope, 37.39, -5.99, 1.5},
    {"Bilbao", "ES", Region::kEurope, 43.26, -2.93, 1.0},
    {"Porto", "PT", Region::kEurope, 41.15, -8.61, 1.7},
    {"Stuttgart", "DE", Region::kEurope, 48.78, 9.18, 2.8},
    {"Cologne", "DE", Region::kEurope, 50.94, 6.96, 2.0},
    {"Dusseldorf", "DE", Region::kEurope, 51.23, 6.78, 1.6},
    {"Leipzig", "DE", Region::kEurope, 51.34, 12.37, 1.1},
    {"Nuremberg", "DE", Region::kEurope, 49.45, 11.08, 1.3},
    {"Naples", "IT", Region::kEurope, 40.85, 14.27, 3.1},
    {"Bologna", "IT", Region::kEurope, 44.49, 11.34, 1.0},
    {"Geneva", "CH", Region::kEurope, 46.20, 6.14, 0.6},
    {"Antwerp", "BE", Region::kEurope, 51.22, 4.40, 1.2},
    {"Eindhoven", "NL", Region::kEurope, 51.44, 5.47, 0.8},
    {"Malmo", "SE", Region::kEurope, 55.60, 13.00, 0.7},
    {"Bergen", "NO", Region::kEurope, 60.39, 5.32, 0.4},
    {"Aarhus", "DK", Region::kEurope, 56.16, 10.20, 0.3},
    {"Tampere", "FI", Region::kEurope, 61.50, 23.76, 0.4},
    {"Krakow", "PL", Region::kEurope, 50.06, 19.94, 1.4},
    {"Wroclaw", "PL", Region::kEurope, 51.11, 17.04, 1.1},
    {"Gdansk", "PL", Region::kEurope, 54.35, 18.65, 1.0},
    {"Brno", "CZ", Region::kEurope, 49.20, 16.61, 0.7},
    {"Bratislava", "SK", Region::kEurope, 48.15, 17.11, 0.7},
    {"Ljubljana", "SI", Region::kEurope, 46.06, 14.51, 0.5},
    {"Zagreb", "HR", Region::kEurope, 45.82, 15.98, 1.1},
    {"Belgrade", "RS", Region::kEurope, 44.79, 20.45, 1.7},
    {"Sofia", "BG", Region::kEurope, 42.70, 23.32, 1.5},
    {"Thessaloniki", "GR", Region::kEurope, 40.64, 22.94, 1.1},
    {"Cluj-Napoca", "RO", Region::kEurope, 46.77, 23.60, 0.7},
    {"Vilnius", "LT", Region::kEurope, 54.69, 25.28, 0.8},
    {"Riga", "LV", Region::kEurope, 56.95, 24.11, 1.0},
    {"Tallinn", "EE", Region::kEurope, 59.44, 24.75, 0.6},
    {"Minsk", "BY", Region::kEurope, 53.90, 27.57, 2.0},
    {"Kharkiv", "UA", Region::kEurope, 49.99, 36.23, 1.4},
    {"Odesa", "UA", Region::kEurope, 46.48, 30.73, 1.0},
    {"Kazan", "RU", Region::kEurope, 55.80, 49.11, 1.2},
    {"Yekaterinburg", "RU", Region::kEurope, 56.84, 60.60, 1.5},
    {"Novosibirsk", "RU", Region::kEurope, 55.01, 82.93, 1.6},
    {"Rostov-on-Don", "RU", Region::kEurope, 47.24, 39.71, 1.1},
    {"Ankara", "TR", Region::kEurope, 39.93, 32.86, 5.6},
    {"Izmir", "TR", Region::kEurope, 38.42, 27.14, 4.4},
    // --- Asia: secondary metros ---
    {"Fukuoka", "JP", Region::kAsia, 33.59, 130.40, 5.5},
    {"Sapporo", "JP", Region::kAsia, 43.06, 141.35, 2.6},
    {"Busan", "KR", Region::kAsia, 35.18, 129.08, 3.4},
    {"Daegu", "KR", Region::kAsia, 35.87, 128.60, 2.5},
    {"Kaohsiung", "TW", Region::kAsia, 22.63, 120.30, 2.8},
    {"Hanoi", "VN", Region::kAsia, 21.03, 105.85, 8.1},
    {"Surabaya", "ID", Region::kAsia, -7.26, 112.75, 2.9},
    {"Bandung", "ID", Region::kAsia, -6.92, 107.61, 2.5},
    {"Cebu", "PH", Region::kAsia, 10.32, 123.89, 2.9},
    {"Chengdu", "CN", Region::kAsia, 30.57, 104.07, 16.0},
    {"Chongqing", "CN", Region::kAsia, 29.43, 106.91, 15.0},
    {"Wuhan", "CN", Region::kAsia, 30.59, 114.31, 11.0},
    {"Xian", "CN", Region::kAsia, 34.34, 108.94, 12.0},
    {"Tianjin", "CN", Region::kAsia, 39.34, 117.36, 13.6},
    {"Nanjing", "CN", Region::kAsia, 32.06, 118.80, 9.3},
    {"Hangzhou", "CN", Region::kAsia, 30.27, 120.15, 10.4},
    {"Shenyang", "CN", Region::kAsia, 41.81, 123.43, 8.1},
    {"Qingdao", "CN", Region::kAsia, 36.07, 120.38, 9.0},
    {"Ahmedabad", "IN", Region::kAsia, 23.02, 72.57, 7.7},
    {"Pune", "IN", Region::kAsia, 18.52, 73.86, 6.6},
    {"Surat", "IN", Region::kAsia, 21.17, 72.83, 6.1},
    {"Jaipur", "IN", Region::kAsia, 26.91, 75.79, 3.9},
    {"Lucknow", "IN", Region::kAsia, 26.85, 80.95, 3.5},
    {"Colombo", "LK", Region::kAsia, 6.93, 79.85, 2.3},
    {"Lahore", "PK", Region::kAsia, 31.55, 74.34, 11.1},
    {"Islamabad", "PK", Region::kAsia, 33.68, 73.05, 2.0},
    {"Chittagong", "BD", Region::kAsia, 22.36, 91.78, 4.0},
    {"Yangon", "MM", Region::kAsia, 16.87, 96.20, 5.2},
    {"Phnom Penh", "KH", Region::kAsia, 11.56, 104.92, 2.1},
    // --- Oceania: secondary metros ---
    {"Adelaide", "AU", Region::kOceania, -34.93, 138.60, 1.4},
    {"Gold Coast", "AU", Region::kOceania, -28.02, 153.40, 0.7},
    {"Wellington", "NZ", Region::kOceania, -41.29, 174.78, 0.4},
    {"Christchurch", "NZ", Region::kOceania, -43.53, 172.64, 0.4},
    // --- South America: secondary metros ---
    {"Medellin", "CO", Region::kSouthAmerica, 6.24, -75.58, 4.0},
    {"Cali", "CO", Region::kSouthAmerica, 3.45, -76.53, 2.8},
    {"Guayaquil", "EC", Region::kSouthAmerica, -2.19, -79.89, 3.0},
    {"Quito", "EC", Region::kSouthAmerica, -0.18, -78.47, 2.0},
    {"Cordoba", "AR", Region::kSouthAmerica, -31.42, -64.18, 1.6},
    {"Rosario", "AR", Region::kSouthAmerica, -32.95, -60.64, 1.3},
    {"Montevideo", "UY", Region::kSouthAmerica, -34.90, -56.19, 1.8},
    {"Asuncion", "PY", Region::kSouthAmerica, -25.26, -57.58, 2.3},
    {"La Paz", "BO", Region::kSouthAmerica, -16.50, -68.15, 1.8},
    {"Curitiba", "BR", Region::kSouthAmerica, -25.43, -49.27, 3.6},
    {"Salvador", "BR", Region::kSouthAmerica, -12.97, -38.50, 3.9},
    {"Fortaleza", "BR", Region::kSouthAmerica, -3.73, -38.52, 4.1},
    {"Recife", "BR", Region::kSouthAmerica, -8.05, -34.88, 4.1},
    {"Belo Horizonte", "BR", Region::kSouthAmerica, -19.92, -43.94, 6.0},
    // --- Africa: secondary metros ---
    {"Durban", "ZA", Region::kAfrica, -29.86, 31.02, 3.9},
    {"Pretoria", "ZA", Region::kAfrica, -25.75, 28.19, 2.8},
    {"Abuja", "NG", Region::kAfrica, 9.06, 7.50, 3.6},
    {"Addis Ababa", "ET", Region::kAfrica, 9.03, 38.74, 5.0},
    {"Dar es Salaam", "TZ", Region::kAfrica, -6.79, 39.21, 6.7},
    {"Kampala", "UG", Region::kAfrica, 0.35, 32.58, 3.4},
    {"Algiers", "DZ", Region::kAfrica, 36.75, 3.06, 2.8},
    {"Tunis", "TN", Region::kAfrica, 36.81, 10.18, 2.4},
    {"Dakar", "SN", Region::kAfrica, 14.72, -17.47, 3.1},
    {"Abidjan", "CI", Region::kAfrica, 5.36, -4.01, 5.2},
    {"Kinshasa", "CD", Region::kAfrica, -4.44, 15.27, 14.3},
    {"Luanda", "AO", Region::kAfrica, -8.84, 13.23, 8.3},
    {"Alexandria", "EG", Region::kAfrica, 31.20, 29.92, 5.2},
};

}  // namespace

MetroDatabase::MetroDatabase(std::vector<Metro> metros)
    : metros_(std::move(metros)) {
  for (std::size_t i = 0; i < metros_.size(); ++i) {
    metros_[i].id = MetroId(static_cast<std::uint32_t>(i));
  }
}

const MetroDatabase& MetroDatabase::world() {
  static const MetroDatabase db = [] {
    std::vector<Metro> metros;
    metros.reserve(std::size(kWorldMetros));
    for (const RawMetro& raw : kWorldMetros) {
      metros.push_back(Metro{MetroId{}, raw.name, raw.country, raw.region,
                             GeoPoint{raw.lat, raw.lon}, raw.pop_m});
    }
    return MetroDatabase(std::move(metros));
  }();
  return db;
}

const Metro& MetroDatabase::metro(MetroId id) const {
  if (!id.valid() || id.value >= metros_.size()) {
    throw NotFoundError("metro id " + std::to_string(id.value));
  }
  return metros_[id.value];
}

MetroId MetroDatabase::nearest(const GeoPoint& p) const {
  require(!metros_.empty(), "metro database is empty");
  MetroId best = metros_.front().id;
  Kilometers best_d = haversine_km(p, metros_.front().location);
  for (const Metro& m : metros_) {
    const Kilometers d = haversine_km(p, m.location);
    if (d < best_d) {
      best = m.id;
      best_d = d;
    }
  }
  return best;
}

std::vector<MetroId> MetroDatabase::k_nearest(const GeoPoint& p,
                                              std::size_t k) const {
  std::vector<std::pair<Kilometers, MetroId>> dist;
  dist.reserve(metros_.size());
  for (const Metro& m : metros_) {
    dist.emplace_back(haversine_km(p, m.location), m.id);
  }
  const std::size_t n = std::min(k, dist.size());
  std::partial_sort(dist.begin(), dist.begin() + static_cast<long>(n),
                    dist.end());
  std::vector<MetroId> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(dist[i].second);
  return out;
}

std::vector<MetroId> MetroDatabase::within_radius(const GeoPoint& p,
                                                  Kilometers radius_km) const {
  std::vector<std::pair<Kilometers, MetroId>> dist;
  for (const Metro& m : metros_) {
    const Kilometers d = haversine_km(p, m.location);
    if (d <= radius_km) dist.emplace_back(d, m.id);
  }
  std::sort(dist.begin(), dist.end());
  std::vector<MetroId> out;
  out.reserve(dist.size());
  for (const auto& [d, id] : dist) out.push_back(id);
  return out;
}

std::vector<MetroId> MetroDatabase::in_region(Region r) const {
  std::vector<MetroId> out;
  for (const Metro& m : metros_) {
    if (m.region == r) out.push_back(m.id);
  }
  return out;
}

double MetroDatabase::total_population(Region r) const {
  double total = 0.0;
  for (const Metro& m : metros_) {
    if (m.region == r) total += m.population_millions;
  }
  return total;
}

double MetroDatabase::total_population() const {
  return std::accumulate(metros_.begin(), metros_.end(), 0.0,
                         [](double acc, const Metro& m) {
                           return acc + m.population_millions;
                         });
}

std::optional<MetroId> MetroDatabase::find_by_name(
    std::string_view name) const {
  for (const Metro& m : metros_) {
    if (m.name == name) return m.id;
  }
  return std::nullopt;
}

Kilometers MetroDatabase::distance_km(MetroId a, MetroId b) const {
  return haversine_km(metro(a).location, metro(b).location);
}

}  // namespace acdn
