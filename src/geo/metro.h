// World metro-area database.
//
// The synthetic Internet is anchored on real metropolitan areas: clients are
// placed around metros proportionally to population, ISPs and IXPs exist per
// metro, and CDN front-ends are deployed in metros. The embedded database
// covers ~270 of the largest and mid-size metros worldwide with approximate coordinates
// and metro-area populations.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "geo/geo_point.h"

namespace acdn {

struct Metro {
  MetroId id;
  std::string name;
  std::string country;  // ISO 3166-1 alpha-2
  Region region = Region::kNorthAmerica;
  GeoPoint location;
  double population_millions = 0.0;
};

/// Immutable registry of metros. Obtain the built-in data set with world();
/// tests may construct smaller databases directly.
class MetroDatabase {
 public:
  explicit MetroDatabase(std::vector<Metro> metros);

  /// The embedded ~270-metro world data set (singleton, built on first use).
  static const MetroDatabase& world();

  [[nodiscard]] std::size_t size() const { return metros_.size(); }
  [[nodiscard]] const Metro& metro(MetroId id) const;
  [[nodiscard]] std::span<const Metro> all() const { return metros_; }

  /// Metro whose center is closest to `p`.
  [[nodiscard]] MetroId nearest(const GeoPoint& p) const;

  /// The k metros closest to `p`, nearest first.
  [[nodiscard]] std::vector<MetroId> k_nearest(const GeoPoint& p,
                                               std::size_t k) const;

  /// All metros with centers within `radius_km` of `p`, nearest first.
  [[nodiscard]] std::vector<MetroId> within_radius(const GeoPoint& p,
                                                   Kilometers radius_km) const;

  [[nodiscard]] std::vector<MetroId> in_region(Region r) const;
  [[nodiscard]] double total_population(Region r) const;
  [[nodiscard]] double total_population() const;

  /// Case-sensitive exact-name lookup; nullopt if absent.
  [[nodiscard]] std::optional<MetroId> find_by_name(std::string_view name) const;

  [[nodiscard]] Kilometers distance_km(MetroId a, MetroId b) const;

 private:
  std::vector<Metro> metros_;
};

}  // namespace acdn
