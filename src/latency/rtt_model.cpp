#include "latency/rtt_model.h"

#include <cmath>
#include <numbers>

#include "common/error.h"
#include "common/simd.h"

namespace acdn {

void RttConfig::validate() const {
  require(km_per_rtt_ms > 0.0, "km_per_rtt_ms must be positive");
  require(jitter_sigma >= 0.0, "jitter_sigma must be non-negative");
  require(congestion_prob >= 0.0 && congestion_prob <= 1.0,
          "congestion_prob must be in [0,1]");
  require(diurnal_amplitude >= 0.0 && diurnal_amplitude < 1.0,
          "diurnal_amplitude must be in [0,1)");
}

RttModel::RttModel(const RttConfig& config) : config_(config) {
  config_.validate();
}

Milliseconds RttModel::base_rtt(Kilometers one_way_path_km, int as_hops,
                                Milliseconds last_mile_ms) const {
  require(one_way_path_km >= 0.0, "negative path length");
  return one_way_path_km / config_.km_per_rtt_ms +
         config_.per_as_hop_ms * as_hops + last_mile_ms;
}

void RttModel::base_rtt_batch(std::span<const Kilometers> one_way_path_km,
                              std::span<const std::int32_t> as_hops,
                              std::span<const Milliseconds> last_mile_ms,
                              std::span<Milliseconds> out) const {
  for (const Kilometers km : one_way_path_km) {
    require(km >= 0.0, "negative path length");
  }
  simd::base_rtt_batch(one_way_path_km, as_hops, last_mile_ms,
                       config_.km_per_rtt_ms, config_.per_as_hop_ms, out);
}

void RttModel::diurnal_factor_batch(std::span<const double> hour_of_day,
                                    std::span<double> out) const {
  simd::diurnal_batch(hour_of_day, config_.peak_hour,
                      config_.diurnal_amplitude, out);
}

Milliseconds RttModel::sample(Milliseconds base, const SimTime& t,
                              Rng& rng) const {
  return sample_at(base, diurnal_factor(t), rng);
}

double RttModel::diurnal_factor(const SimTime& t) const {
  // Diurnal multiplier: cosine with peak at peak_hour.
  const double phase =
      2.0 * std::numbers::pi * (t.hour_of_day() - config_.peak_hour) / 24.0;
  return 1.0 + config_.diurnal_amplitude * std::cos(phase);
}

Milliseconds RttModel::sample_at(Milliseconds base, double diurnal,
                                 Rng& rng) const {
  // Multiplicative jitter centred on 1 (mean-corrected lognormal).
  const double jitter =
      rng.lognormal(-0.5 * config_.jitter_sigma * config_.jitter_sigma,
                    config_.jitter_sigma);

  Milliseconds rtt = base * diurnal * jitter;
  if (rng.bernoulli(config_.congestion_prob)) {
    rtt += rng.exponential(1.0 / config_.congestion_mean_ms);
  }
  return rtt;
}

Milliseconds RttModel::draw_last_mile(const LastMileMix& mix, Rng& rng) {
  const double weights[] = {mix.fiber_share, mix.cable_share, mix.dsl_share,
                            mix.wireless_share};
  // Median last-mile RTT per technology (ms); lognormal spread around it.
  constexpr double kMedianMs[] = {4.0, 10.0, 18.0, 35.0};
  constexpr double kSigma[] = {0.3, 0.4, 0.45, 0.5};
  const std::size_t tech = rng.weighted_index(weights);
  return rng.lognormal(std::log(kMedianMs[tech]), kSigma[tech]);
}

}  // namespace acdn
