// Round-trip latency model.
//
// RTT between a client and a front-end decomposes into:
//   * propagation along the routed geographic path (the dominant term for
//     the paper's analysis — anycast pathologies show up as extra km),
//   * per-AS-handoff processing,
//   * the client's last-mile access delay (drawn once per client /24 from a
//     technology mixture: fiber / cable / DSL / wireless),
//   * multiplicative lognormal jitter, a diurnal load factor, and rare
//     additive congestion spikes per sample.
#pragma once

#include <cstdint>
#include <span>

#include "common/rng.h"
#include "common/sim_clock.h"
#include "common/types.h"

namespace acdn {

struct RttConfig {
  /// Kilometers of one-way path per millisecond of RTT. Light in fiber
  /// travels ~200 km/ms one-way => 100 km of path per RTT ms.
  double km_per_rtt_ms = 100.0;
  /// Router/exchange processing per inter-AS handoff (RTT contribution).
  Milliseconds per_as_hop_ms = 0.5;
  /// Lognormal sigma of multiplicative per-sample jitter.
  double jitter_sigma = 0.18;
  /// Probability a sample hits a transient delay spike — last-mile
  /// congestion, bufferbloat, or in-browser scheduling (Li et al., IMC'13
  /// document heavy-tailed error in browser-based measurement) — and the
  /// mean of the exponential extra delay when it does. These spikes give
  /// single-sample comparisons like Figure 3 their heavy tail while daily
  /// medians/percentiles (Figures 5, 6, 9) stay robust.
  double congestion_prob = 0.20;
  Milliseconds congestion_mean_ms = 140.0;
  /// Diurnal load: RTT multiplier peaks at `peak_hour` local-ish time.
  double diurnal_amplitude = 0.06;
  double peak_hour = 20.0;

  void validate() const;
};

/// Last-mile access technology mixture (shares must sum to ~1).
struct LastMileMix {
  double fiber_share = 0.20;
  double cable_share = 0.45;
  double dsl_share = 0.30;
  double wireless_share = 0.05;
};

class RttModel {
 public:
  explicit RttModel(const RttConfig& config = {});

  /// Deterministic base RTT for a path: propagation + hop processing +
  /// the client's fixed last-mile contribution.
  [[nodiscard]] Milliseconds base_rtt(Kilometers one_way_path_km, int as_hops,
                                      Milliseconds last_mile_ms) const;

  /// Elementwise base_rtt over parallel path columns, through the
  /// common/simd.h dispatch kernels — bit-identical per lane to the
  /// scalar base_rtt on every dispatch target. Spans must match in size.
  void base_rtt_batch(std::span<const Kilometers> one_way_path_km,
                      std::span<const std::int32_t> as_hops,
                      std::span<const Milliseconds> last_mile_ms,
                      std::span<Milliseconds> out) const;

  /// One measured sample around `base` at simulated time `t`.
  [[nodiscard]] Milliseconds sample(Milliseconds base, const SimTime& t,
                                    Rng& rng) const;

  /// The diurnal load multiplier at `t` — the deterministic part of
  /// sample(). Callers timing several fetches at the same instant (a
  /// beacon's target plan) hoist it and use sample_at.
  [[nodiscard]] double diurnal_factor(const SimTime& t) const;

  /// sample() with the diurnal multiplier precomputed. Draw-for-draw
  /// identical to sample(base, t, rng) when `diurnal == diurnal_factor(t)`.
  [[nodiscard]] Milliseconds sample_at(Milliseconds base, double diurnal,
                                       Rng& rng) const;

  /// Elementwise diurnal_factor over an hour-of-day column (SimTime::
  /// hour_of_day values), bit-identical per lane to the scalar path. The
  /// simulation's day loop cannot use this — beacon times are drawn
  /// interleaved with the beacon run's other draws, so batching would
  /// reorder the rng stream — but offline consumers replaying recorded
  /// timestamps can.
  void diurnal_factor_batch(std::span<const double> hour_of_day,
                            std::span<double> out) const;

  /// Draws a client /24's fixed last-mile RTT contribution from `mix`.
  [[nodiscard]] static Milliseconds draw_last_mile(const LastMileMix& mix,
                                                   Rng& rng);

  [[nodiscard]] const RttConfig& config() const { return config_; }

 private:
  RttConfig config_;
};

}  // namespace acdn
