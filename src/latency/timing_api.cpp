#include "latency/timing_api.h"

#include <cmath>

namespace acdn {

Milliseconds TimingModel::observe(Milliseconds true_ms, bool resource_timing,
                                  Rng& rng) const {
  if (resource_timing) return true_ms;
  const double overhead = rng.uniform(config_.primitive_overhead_min,
                                      config_.primitive_overhead_max);
  const Milliseconds extra =
      config_.primitive_extra_mean_ms > 0.0
          ? rng.exponential(1.0 / config_.primitive_extra_mean_ms)
          : 0.0;
  const Milliseconds raw = true_ms * overhead + extra;
  const double res = config_.primitive_resolution_ms;
  return res > 0.0 ? std::round(raw / res) * res : raw;
}

}  // namespace acdn
