// Browser timing accuracy model.
//
// The paper's beacon (§3.2.2) first records latency with primitive
// JavaScript timings — known to be imprecise (Li et al., IMC '13) — and
// substitutes W3C Resource Timing API values when the browser supports
// them. We model both observation channels: Resource Timing reports the
// true fetch RTT; primitive timing adds scheduling overhead and coarse
// clock noise.
#pragma once

#include "common/rng.h"
#include "common/types.h"

namespace acdn {

struct TimingConfig {
  /// Fraction of page loads whose browser supports Resource Timing (2015-era
  /// support was widespread but not universal).
  double resource_timing_support = 0.80;
  /// Primitive timing inflation: multiplicative overhead range and an
  /// additive scheduling-delay mean (exponential).
  double primitive_overhead_min = 1.00;
  double primitive_overhead_max = 1.12;
  Milliseconds primitive_extra_mean_ms = 4.0;
  /// Primitive clocks are quantized to this granularity.
  Milliseconds primitive_resolution_ms = 1.0;
};

class TimingModel {
 public:
  explicit TimingModel(const TimingConfig& config = {}) : config_(config) {}

  /// Whether this page load's browser exposes Resource Timing.
  [[nodiscard]] bool supports_resource_timing(Rng& rng) const {
    return rng.bernoulli(config_.resource_timing_support);
  }

  /// The latency value the beacon reports for a fetch whose true RTT is
  /// `true_ms`: exact under Resource Timing, inflated + quantized otherwise.
  [[nodiscard]] Milliseconds observe(Milliseconds true_ms,
                                     bool resource_timing, Rng& rng) const;

  [[nodiscard]] const TimingConfig& config() const { return config_; }

 private:
  TimingConfig config_;
};

}  // namespace acdn
