#include "load/fastroute.h"

#include <algorithm>

#include "common/error.h"

namespace acdn {

double SheddingPlan::moved_share() const {
  double moved = 0.0;
  for (const ShedDirective& d : directives) moved += d.queries_per_day;
  const double total = final_load.total_offered();
  return total > 0.0 ? moved / total : 0.0;
}

SheddingPlan FastRouteController::plan(const LoadMap& start) const {
  require(config_.target_utilization > 0.0 &&
              config_.target_utilization <= 1.0,
          "target_utilization must be in (0,1]");
  const Deployment& deployment = model_->router().cdn().deployment();
  const MetroDatabase& metros = model_->router().cdn().graph().metros();
  const std::size_t n = start.offered.size();

  SheddingPlan plan;
  plan.final_load = start;
  LoadMap& load = plan.final_load;

  for (int round = 0; round < config_.max_rounds; ++round) {
    bool any_overloaded = false;
    bool any_moved = false;

    for (std::size_t i = 0; i < n; ++i) {
      const FrontEndId from(static_cast<std::uint32_t>(i));
      const double target =
          load.capacity[i] * config_.target_utilization;
      if (load.offered[i] <= target) continue;
      any_overloaded = true;

      // How much to move this round: the excess, bounded by the gradual-
      // shedding cap.
      double excess = load.offered[i] - target;
      excess = std::min(excess, load.offered[i] * config_.max_shed_per_round);

      // Spill to the nearest sites with spare capacity, nearest first.
      const GeoPoint here =
          metros.metro(deployment.site(from).metro).location;
      const auto neighbors = deployment.nearest_sites(
          metros, here,
          static_cast<std::size_t>(config_.spill_candidates) + 1);
      for (FrontEndId to : neighbors) {
        if (to == from || excess <= 0.0) continue;
        const double spare =
            load.capacity[to.value] * config_.target_utilization -
            load.offered[to.value];
        if (spare <= 0.0) continue;
        const double amount = std::min(excess, spare);
        load.offered[i] -= amount;
        load.offered[to.value] += amount;
        excess -= amount;
        any_moved = true;
        plan.directives.push_back(ShedDirective{from, to, amount});
      }
    }

    plan.rounds = round + 1;
    if (!any_overloaded) {
      plan.stabilized = true;
      break;
    }
    if (!any_moved) break;  // out of spare capacity nearby
  }

  // Final stabilization flag: nothing above target.
  plan.stabilized = true;
  for (std::size_t i = 0; i < n; ++i) {
    if (load.offered[i] >
        load.capacity[i] * config_.target_utilization + 1e-9) {
      plan.stabilized = false;
      break;
    }
  }
  return plan;
}

}  // namespace acdn
