// FastRoute-style load-aware shedding (Flavel et al., NSDI'15 — the
// "recent progress" the paper cites in §2 for gradually directing traffic
// away from an overloaded anycast front-end).
//
// Instead of withdrawing an overloaded site's route (load/withdrawal.h),
// the controller sheds a *fraction* of each overloaded front-end's DNS-
// resolvable traffic to nearby sites with spare capacity: the CDN flips a
// fraction of DNS answers from the anycast VIP to unicast addresses of
// less-loaded neighbors. Shedding is gradual, proportional to the
// overload, and iterates until no site is above its target utilization or
// the network is out of spare capacity.
#pragma once

#include <vector>

#include "load/load_model.h"

namespace acdn {

struct SheddingConfig {
  /// Target maximum utilization after shedding (keep a margin below 1.0).
  double target_utilization = 0.90;
  /// Fraction of a front-end's load that DNS can move per iteration (DNS
  /// TTLs bound how fast answers change; shedding is gradual by design).
  double max_shed_per_round = 0.25;
  /// Overflow recipients per overloaded site, nearest-first.
  int spill_candidates = 4;
  int max_rounds = 32;
};

/// One shedding directive: move `queries_per_day` of `from`'s offered
/// load to `to` (via unicast DNS answers for that share of resolutions).
struct ShedDirective {
  FrontEndId from;
  FrontEndId to;
  double queries_per_day = 0.0;
};

struct SheddingPlan {
  std::vector<ShedDirective> directives;
  LoadMap final_load;
  int rounds = 0;
  bool stabilized = false;  // all sites at or below target utilization

  /// Total fraction of global traffic moved off its anycast front-end.
  [[nodiscard]] double moved_share() const;
};

class FastRouteController {
 public:
  FastRouteController(const LoadModel& model, const SheddingConfig& config)
      : model_(&model), config_(config) {}
  explicit FastRouteController(const LoadModel& model)
      : FastRouteController(model, SheddingConfig{}) {}

  /// Plans shedding from the given starting load (e.g. the baseline, or a
  /// post-failure load from LoadModel::with_withdrawn).
  [[nodiscard]] SheddingPlan plan(const LoadMap& start) const;

 private:
  const LoadModel* model_;
  SheddingConfig config_;
};

}  // namespace acdn
