#include "load/load_model.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"

namespace acdn {

std::size_t LoadMap::overloaded_count() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < offered.size(); ++i) {
    if (offered[i] > capacity[i]) ++n;
  }
  return n;
}

double LoadMap::total_offered() const {
  return std::accumulate(offered.begin(), offered.end(), 0.0);
}

LoadModel::LoadModel(const ClientPopulation& clients, const CdnRouter& router,
                     const LoadConfig& config)
    : clients_(&clients), router_(&router), config_(config) {
  require(config.headroom >= 1.0, "headroom must be at least 1");
  const std::size_t n = router.cdn().deployment().size();
  baseline_.offered.assign(n, 0.0);
  baseline_.capacity.assign(n, 0.0);
  client_ingress_.resize(clients.size());
  client_routable_.assign(clients.size(), false);

  for (const Client24& c : clients.clients()) {
    const RouteResult route = router.route_anycast(c.access_as, c.metro);
    if (!route.valid) continue;
    client_routable_[c.id.value] = true;
    client_ingress_[c.id.value] = route.ingress_metro;
    baseline_.offered[route.front_end.value] += c.daily_queries;
  }

  const double mean_load = baseline_.total_offered() / double(n);
  for (std::size_t i = 0; i < n; ++i) {
    baseline_.capacity[i] =
        std::max(baseline_.offered[i] * config.headroom,
                 mean_load * config.min_capacity_share * config.headroom);
  }
}

FrontEndId LoadModel::nearest_surviving(
    MetroId ingress, const std::vector<bool>& withdrawn) const {
  const CdnNetwork& cdn = router_->cdn();
  const Deployment& deployment = cdn.deployment();
  FrontEndId best;
  Kilometers best_cost = 0.0;
  for (const FrontEndSite& s : deployment.sites()) {
    if (withdrawn[s.id.value]) continue;
    const Kilometers cost = cdn.backbone_km(ingress, s.id);
    if (!best.valid() || cost < best_cost) {
      best = s.id;
      best_cost = cost;
    }
  }
  return best;  // invalid if every front-end is withdrawn
}

LoadMap LoadModel::with_withdrawn(const std::vector<bool>& withdrawn) const {
  require(withdrawn.size() == baseline_.offered.size(),
          "withdrawn mask size mismatch");
  LoadMap map;
  map.offered.assign(baseline_.offered.size(), 0.0);
  map.capacity = baseline_.capacity;

  for (const Client24& c : clients_->clients()) {
    if (!client_routable_[c.id.value]) continue;
    const FrontEndId fe =
        nearest_surviving(client_ingress_[c.id.value], withdrawn);
    if (!fe.valid()) continue;  // total outage: traffic is dropped
    map.offered[fe.value] += c.daily_queries;
  }
  return map;
}

}  // namespace acdn
