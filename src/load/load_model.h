// Front-end load accounting.
//
// Anycast "is unaware of server load" (paper §2): whatever BGP delivers to
// a front-end is that front-end's offered load. This module computes
// per-front-end offered load from the client population and the routing
// oracle, assigns capacities, and reports utilization — the inputs for
// the route-withdrawal cascade (load/withdrawal.h) and the FastRoute-like
// shedding controller (load/fastroute.h).
#pragma once

#include <vector>

#include "cdn/router.h"
#include "workload/clients.h"

namespace acdn {

/// Offered load and capacity per front-end (indexed by FrontEndId).
struct LoadMap {
  std::vector<double> offered;   // queries/day routed to each front-end
  std::vector<double> capacity;  // queries/day each front-end can serve

  [[nodiscard]] double utilization(FrontEndId fe) const {
    return capacity[fe.value] > 0.0 ? offered[fe.value] / capacity[fe.value]
                                    : 0.0;
  }
  [[nodiscard]] bool overloaded(FrontEndId fe) const {
    return offered[fe.value] > capacity[fe.value];
  }
  [[nodiscard]] std::size_t overloaded_count() const;
  [[nodiscard]] double total_offered() const;
};

struct LoadConfig {
  /// Capacity provisioning: each front-end gets headroom times its
  /// baseline (pre-failure) offered load, floored at a minimum share of
  /// the global average so tiny sites are not provisioned at zero.
  double headroom = 1.5;
  double min_capacity_share = 0.25;
};

class LoadModel {
 public:
  LoadModel(const ClientPopulation& clients, const CdnRouter& router,
            const LoadConfig& config);
  LoadModel(const ClientPopulation& clients, const CdnRouter& router)
      : LoadModel(clients, router, LoadConfig{}) {}

  /// Baseline: every client on its primary anycast route, capacities
  /// provisioned per the config.
  [[nodiscard]] const LoadMap& baseline() const { return baseline_; }

  /// Offered load when the given front-ends are withdrawn: each affected
  /// client's traffic re-lands on the nearest surviving front-end from its
  /// ingress (intradomain hot potato does not care why a site vanished).
  /// `withdrawn` is indexed by FrontEndId. Capacities are unchanged.
  [[nodiscard]] LoadMap with_withdrawn(
      const std::vector<bool>& withdrawn) const;

  [[nodiscard]] const CdnRouter& router() const { return *router_; }
  [[nodiscard]] std::size_t front_end_count() const {
    return baseline_.offered.size();
  }

 private:
  /// Nearest surviving front-end (by CDN IGP) from an ingress PoP.
  [[nodiscard]] FrontEndId nearest_surviving(
      MetroId ingress, const std::vector<bool>& withdrawn) const;

  const ClientPopulation* clients_;
  const CdnRouter* router_;
  LoadConfig config_;
  LoadMap baseline_;
  /// Per client: the ingress PoP its primary anycast route uses, so
  /// withdrawal scenarios re-map without re-running BGP.
  std::vector<MetroId> client_ingress_;
  std::vector<bool> client_routable_;
};

}  // namespace acdn
