#include "load/withdrawal.h"

#include <algorithm>

#include "common/error.h"

namespace acdn {

CascadeResult WithdrawalSimulator::cascade(
    const std::vector<FrontEndId>& initial) const {
  const std::size_t n = model_->front_end_count();
  std::vector<bool> withdrawn(n, false);
  CascadeResult result;

  std::vector<FrontEndId> pending = initial;
  int round = 0;
  while (!pending.empty()) {
    CascadeRound entry;
    entry.round = round++;
    for (FrontEndId fe : pending) {
      require(fe.valid() && fe.value < n, "invalid front-end in cascade");
      if (!withdrawn[fe.value]) {
        withdrawn[fe.value] = true;
        entry.newly_withdrawn.push_back(fe);
        result.total_withdrawn.push_back(fe);
      }
    }
    pending.clear();

    const LoadMap load = model_->with_withdrawn(withdrawn);
    for (std::size_t i = 0; i < n; ++i) {
      if (withdrawn[i]) continue;
      const FrontEndId fe(static_cast<std::uint32_t>(i));
      entry.max_utilization =
          std::max(entry.max_utilization, load.utilization(fe));
      if (load.overloaded(fe)) {
        entry.overloaded.push_back(fe);
        pending.push_back(fe);
      }
    }
    result.final_load = load;
    result.rounds.push_back(std::move(entry));

    if (std::all_of(withdrawn.begin(), withdrawn.end(),
                    [](bool w) { return w; })) {
      result.collapsed = true;
      break;
    }
  }
  return result;
}

}  // namespace acdn
