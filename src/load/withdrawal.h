// Route-withdrawal cascade simulation (paper §2).
//
// "If a particular front-end becomes overloaded ... simply withdrawing the
// route to take that front-end offline can lead to cascading overloading
// of nearby front-ends." This module makes that sentence executable: start
// from an initial withdrawal, re-land the catchment on surviving sites,
// withdraw any site pushed past capacity, and repeat until the system is
// stable (or empty).
#pragma once

#include <vector>

#include "load/load_model.h"

namespace acdn {

struct CascadeRound {
  int round = 0;
  /// Sites withdrawn at the start of this round (cumulative mask applied).
  std::vector<FrontEndId> newly_withdrawn;
  /// Overloaded survivors after re-landing the traffic.
  std::vector<FrontEndId> overloaded;
  double max_utilization = 0.0;
};

struct CascadeResult {
  std::vector<CascadeRound> rounds;
  /// Sites down when the cascade stopped (withdrawn at any point).
  std::vector<FrontEndId> total_withdrawn;
  bool collapsed = false;  // every front-end ended up withdrawn
  LoadMap final_load;

  [[nodiscard]] int rounds_to_stability() const {
    return static_cast<int>(rounds.size());
  }
};

class WithdrawalSimulator {
 public:
  explicit WithdrawalSimulator(const LoadModel& model) : model_(&model) {}

  /// Withdraws `initial` and lets overload-triggered withdrawals cascade.
  /// A site whose offered load exceeds capacity after a round is withdrawn
  /// in the next round (the §2 failure mode: operators yank overloaded
  /// sites' routes because anycast gives no gradual control).
  [[nodiscard]] CascadeResult cascade(
      const std::vector<FrontEndId>& initial) const;

 private:
  const LoadModel* model_;
};

}  // namespace acdn
