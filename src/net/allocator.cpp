#include "net/allocator.h"

#include "common/error.h"

namespace acdn {

PrefixAllocator::PrefixAllocator(Prefix pool) : pool_(pool) {
  require(pool.length() <= 24, "allocator pool must be /24 or larger");
  capacity_ = std::size_t{1} << (24 - pool.length());
}

PrefixAllocator PrefixAllocator::client_pool() {
  return PrefixAllocator(Prefix(Ipv4Address(10, 0, 0, 0), 8));
}

PrefixAllocator PrefixAllocator::cdn_pool() {
  return PrefixAllocator(Prefix(Ipv4Address(172, 16, 0, 0), 12));
}

Prefix PrefixAllocator::allocate_slash24() {
  if (next_ >= capacity_) {
    throw Error("prefix pool " + pool_.to_string() + " exhausted");
  }
  const std::uint32_t base = pool_.address().value();
  const std::uint32_t addr =
      base + (static_cast<std::uint32_t>(next_) << 8);
  ++next_;
  return Prefix(Ipv4Address(addr), 24);
}

}  // namespace acdn
