// Sequential /24 allocator.
//
// The workload generator asks for blocks of client /24s per (metro, ISP);
// the CDN asks for one unicast /24 per front-end plus one global anycast
// /24 (§3.1 of the paper). The allocator hands out non-overlapping /24s from
// a configurable pool and never reuses space.
#pragma once

#include <cstdint>

#include "net/ipv4.h"

namespace acdn {

class PrefixAllocator {
 public:
  /// Allocates /24s from within `pool`. Pool length must be <= 24.
  explicit PrefixAllocator(Prefix pool);

  /// Default pools used by the simulation.
  static PrefixAllocator client_pool();   // 10.0.0.0/8
  static PrefixAllocator cdn_pool();      // 172.16.0.0/12

  /// Next unallocated /24. Throws acdn::Error when the pool is exhausted.
  Prefix allocate_slash24();

  [[nodiscard]] std::size_t allocated() const { return next_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] Prefix pool() const { return pool_; }

 private:
  Prefix pool_;
  std::size_t next_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace acdn
