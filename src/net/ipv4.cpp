#include "net/ipv4.h"

#include <charconv>
#include <cstdio>

namespace acdn {

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (value_ >> 24) & 0xff,
                (value_ >> 16) & 0xff, (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  std::uint32_t value = 0;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  for (int octet = 0; octet < 4; ++octet) {
    unsigned v = 0;
    auto [next, ec] = std::from_chars(p, end, v);
    if (ec != std::errc{} || v > 255 || next == p) return std::nullopt;
    // NOLINT-ACDN(unchecked-pack): v > 255 already rejected via nullopt
    value = (value << 8) | v;
    p = next;
    if (octet < 3) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (p != end) return std::nullopt;
  return Ipv4Address(value);
}

std::string Prefix::to_string() const {
  return addr_.to_string() + "/" + std::to_string(length_);
}

std::optional<Prefix> Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv4Address::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  int length = -1;
  const std::string_view len_text = text.substr(slash + 1);
  auto [next, ec] = std::from_chars(
      len_text.data(), len_text.data() + len_text.size(), length);
  if (ec != std::errc{} || next != len_text.data() + len_text.size() ||
      length < 0 || length > 32) {
    return std::nullopt;
  }
  return Prefix(*addr, length);
}

}  // namespace acdn
