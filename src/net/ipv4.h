// IPv4 address and prefix value types.
//
// The paper aggregates clients into /24 prefixes "because they tend to be
// localized" (§3.2, citing Freedman et al.). Client identity throughout the
// library is therefore a /24; ECS redirection decisions are keyed on it.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace acdn {

/// An IPv4 address as a host-order 32-bit integer value type.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d)
      // Each operand is uint8_t and its field is exactly 8 bits.
      // NOLINT-ACDN(unchecked-pack): no operand can outgrow its field
      : value_((std::uint32_t(a) << 24) | (std::uint32_t(b) << 16) |
               (std::uint32_t(c) << 8) | std::uint32_t(d)) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] std::string to_string() const;

  /// Parses dotted-quad notation; nullopt on malformed input.
  static std::optional<Ipv4Address> parse(std::string_view text);

  constexpr auto operator<=>(const Ipv4Address&) const = default;

 private:
  std::uint32_t value_ = 0;
};

/// A CIDR prefix: address plus length. The address is stored normalized
/// (host bits zeroed).
class Prefix {
 public:
  constexpr Prefix() = default;
  constexpr Prefix(Ipv4Address addr, int length)
      : addr_(Ipv4Address(normalize(addr.value(), length))), length_(length) {}

  [[nodiscard]] constexpr Ipv4Address address() const { return addr_; }
  [[nodiscard]] constexpr int length() const { return length_; }
  [[nodiscard]] constexpr std::uint32_t mask() const {
    return mask_for(length_);
  }

  [[nodiscard]] constexpr bool contains(Ipv4Address a) const {
    return (a.value() & mask()) == addr_.value();
  }
  [[nodiscard]] constexpr bool contains(const Prefix& other) const {
    return other.length_ >= length_ && contains(other.addr_);
  }

  /// The /24 covering an address.
  [[nodiscard]] static constexpr Prefix slash24_of(Ipv4Address a) {
    return Prefix(a, 24);
  }

  [[nodiscard]] std::string to_string() const;
  static std::optional<Prefix> parse(std::string_view text);

  constexpr auto operator<=>(const Prefix&) const = default;

 private:
  static constexpr std::uint32_t mask_for(int length) {
    return length == 0 ? 0u : (~0u << (32 - length));
  }
  static constexpr std::uint32_t normalize(std::uint32_t v, int length) {
    return v & mask_for(length);
  }

  Ipv4Address addr_;
  int length_ = 0;
};

}  // namespace acdn

namespace std {
template <>
struct hash<acdn::Ipv4Address> {
  size_t operator()(const acdn::Ipv4Address& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};
template <>
struct hash<acdn::Prefix> {
  size_t operator()(const acdn::Prefix& p) const noexcept {
    return std::hash<std::uint64_t>{}(
        // NOLINT-ACDN(unchecked-pack): 32-bit address + length <= 32
        (std::uint64_t(p.address().value()) << 8) |
        std::uint64_t(p.length()));
  }
};
}  // namespace std
