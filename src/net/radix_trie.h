// Binary radix trie keyed by IPv4 prefixes, supporting exact-match insert,
// lookup, longest-prefix match, and erase.
//
// Used by the routing layer (unicast /24 forwarding, anycast catchment
// lookups) and by the DNS layer for ECS scope resolution. This is a plain
// bit trie — depth is bounded by 32, so operations are O(32) with no
// balancing; the Patricia path-compression optimization is unnecessary at
// these key lengths and would complicate erase.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "net/ipv4.h"

namespace acdn {

template <typename Value>
class RadixTrie {
 public:
  RadixTrie() : root_(std::make_unique<Node>()) {}

  /// Inserts or replaces the value at `prefix`. Returns true if inserted,
  /// false if an existing value was replaced.
  bool insert(const Prefix& prefix, Value value) {
    Node* node = descend_create(prefix);
    const bool inserted = !node->value.has_value();
    node->value = std::move(value);
    if (inserted) ++size_;
    return inserted;
  }

  /// Exact-match lookup: value stored at exactly this prefix, or nullptr.
  [[nodiscard]] const Value* find(const Prefix& prefix) const {
    const Node* node = descend(prefix);
    return node && node->value ? &*node->value : nullptr;
  }

  [[nodiscard]] Value* find(const Prefix& prefix) {
    return const_cast<Value*>(std::as_const(*this).find(prefix));
  }

  /// Longest-prefix match for an address. Returns the matched prefix and a
  /// pointer to its value, or nullopt if no prefix covers the address.
  [[nodiscard]] std::optional<std::pair<Prefix, const Value*>> longest_match(
      Ipv4Address addr) const {
    const Node* node = root_.get();
    const Node* best_node = node->value ? node : nullptr;
    int best_len = 0;
    int len = 0;
    const std::uint32_t bits = addr.value();
    while (node && len < 32) {
      const int bit = (bits >> (31 - len)) & 1;
      node = node->child[bit].get();
      ++len;
      if (node && node->value) {
        best_node = node;
        best_len = len;
      }
    }
    if (!best_node) return std::nullopt;
    return std::make_pair(Prefix(addr, best_len), &*best_node->value);
  }

  /// Removes the value at exactly `prefix`. Returns true if a value was
  /// removed. Prunes now-empty branches.
  bool erase(const Prefix& prefix) {
    if (!erase_impl(root_.get(), prefix, 0)) return false;
    --size_;
    return true;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Visits every (prefix, value) pair in address order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    visit(root_.get(), 0u, 0, fn);
  }

 private:
  struct Node {
    std::unique_ptr<Node> child[2];
    std::optional<Value> value;

    [[nodiscard]] bool leaf_and_empty() const {
      return !child[0] && !child[1] && !value;
    }
  };

  Node* descend_create(const Prefix& prefix) {
    Node* node = root_.get();
    const std::uint32_t bits = prefix.address().value();
    for (int i = 0; i < prefix.length(); ++i) {
      const int bit = (bits >> (31 - i)) & 1;
      if (!node->child[bit]) node->child[bit] = std::make_unique<Node>();
      node = node->child[bit].get();
    }
    return node;
  }

  [[nodiscard]] const Node* descend(const Prefix& prefix) const {
    const Node* node = root_.get();
    const std::uint32_t bits = prefix.address().value();
    for (int i = 0; i < prefix.length() && node; ++i) {
      const int bit = (bits >> (31 - i)) & 1;
      node = node->child[bit].get();
    }
    return node;
  }

  // Returns true if the value existed; prunes empty nodes on unwind.
  bool erase_impl(Node* node, const Prefix& prefix, int depth) {
    if (depth == prefix.length()) {
      if (!node->value) return false;
      node->value.reset();
      return true;
    }
    const int bit = (prefix.address().value() >> (31 - depth)) & 1;
    Node* child = node->child[bit].get();
    if (!child) return false;
    if (!erase_impl(child, prefix, depth + 1)) return false;
    if (child->leaf_and_empty()) node->child[bit].reset();
    return true;
  }

  template <typename Fn>
  void visit(const Node* node, std::uint32_t bits, int depth, Fn& fn) const {
    if (!node) return;
    if (node->value) fn(Prefix(Ipv4Address(bits), depth), *node->value);
    if (depth == 32) return;
    visit(node->child[0].get(), bits, depth + 1, fn);
    visit(node->child[1].get(), bits | (1u << (31 - depth)), depth + 1, fn);
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace acdn
