#include "report/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "common/error.h"

namespace acdn {

std::string render_chart(const Figure& figure, const ChartOptions& options) {
  require(options.width >= 16 && options.height >= 4,
          "chart too small to render");
  const auto& series = figure.series();
  if (series.empty()) return "(no series)\n";

  // Determine x range.
  double x_min = options.x_min;
  double x_max = options.x_max;
  if (x_max <= x_min) {
    bool first = true;
    for (const Series& s : series) {
      for (const DistPoint& p : s.points) {
        if (first) {
          x_min = x_max = p.x;
          first = false;
        } else {
          x_min = std::min(x_min, p.x);
          x_max = std::max(x_max, p.x);
        }
      }
    }
    if (x_max <= x_min) x_max = x_min + 1.0;
  }
  if (options.log_x) x_min = std::max(x_min, 1e-9);

  auto x_at = [&](int col) {
    const double t = double(col) / double(options.width - 1);
    if (options.log_x) {
      return x_min * std::pow(x_max / x_min, t);
    }
    return x_min + t * (x_max - x_min);
  };

  std::vector<std::string> grid(
      static_cast<std::size_t>(options.height),
      std::string(static_cast<std::size_t>(options.width), ' '));

  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = static_cast<char>('a' + (si % 26));
    for (int col = 0; col < options.width; ++col) {
      const double y = sample_series(series[si], x_at(col));
      if (y < options.y_min || y > options.y_max) continue;
      const double t =
          (y - options.y_min) / (options.y_max - options.y_min);
      const int row = options.height - 1 -
                      static_cast<int>(std::round(t * (options.height - 1)));
      grid[static_cast<std::size_t>(std::clamp(row, 0, options.height - 1))]
          [static_cast<std::size_t>(col)] = glyph;
    }
  }

  std::ostringstream out;
  out << figure.title() << "\n";
  for (int row = 0; row < options.height; ++row) {
    const double y =
        options.y_max -
        (options.y_max - options.y_min) * double(row) / (options.height - 1);
    char label[16];
    std::snprintf(label, sizeof label, "%5.2f |", y);
    out << label << grid[static_cast<std::size_t>(row)] << "\n";
  }
  out << "      +" << std::string(static_cast<std::size_t>(options.width), '-')
      << "\n";
  char xlab[128];
  std::snprintf(xlab, sizeof xlab, "       %-10.4g%*s%10.4g  (%s%s)\n", x_min,
                options.width - 20, "", x_max, figure.x_label().c_str(),
                options.log_x ? ", log scale" : "");
  out << xlab;
  for (std::size_t si = 0; si < series.size(); ++si) {
    out << "       [" << static_cast<char>('a' + (si % 26)) << "] "
        << series[si].name << "\n";
  }
  return out.str();
}

}  // namespace acdn
