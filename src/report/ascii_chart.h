// Terminal line chart for figure series: a quick visual check that a CDF
// has the right shape without leaving the console.
#pragma once

#include <string>

#include "report/series.h"

namespace acdn {

struct ChartOptions {
  int width = 72;    // plot columns
  int height = 18;   // plot rows
  bool log_x = false;
  double x_min = 0.0;
  double x_max = 0.0;  // <= x_min means auto
  double y_min = 0.0;
  double y_max = 1.0;
};

/// Renders all series of `figure` into one character grid. Each series is
/// drawn with its own glyph ('a', 'b', ...; legend included).
[[nodiscard]] std::string render_chart(const Figure& figure,
                                       const ChartOptions& options);

}  // namespace acdn
