#include "report/export.h"

#include <charconv>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "common/csv.h"
#include "common/error.h"

namespace acdn {

namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  // The exporters only emit unquoted numeric fields, so a plain split is
  // sufficient (and rejects quoted content as malformed numbers later).
  std::vector<std::string> out;
  std::stringstream stream(line);
  std::string field;
  while (std::getline(stream, field, ',')) out.push_back(field);
  return out;
}

double parse_double(const std::string& s) {
  try {
    std::size_t consumed = 0;
    const double v = std::stod(s, &consumed);
    require(consumed == s.size(), "trailing characters in number: " + s);
    return v;
  } catch (const std::exception&) {
    throw Error("export: malformed numeric field '" + s + "'");
  }
}

std::uint64_t parse_u64(const std::string& s) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  require(ec == std::errc{} && ptr == s.data() + s.size(),
          "export: malformed integer field '" + s + "'");
  return v;
}

std::ifstream open_or_throw(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("export: cannot open " + path);
  return in;
}

}  // namespace

void export_passive_log(const PassiveLog& log, const std::string& path) {
  CsvWriter csv(path);
  csv.write_header({"day", "client", "front_end", "queries"});
  for (DayIndex d = 0; d < log.days(); ++d) {
    for (const PassiveLogEntry& e : log.by_day(d)) {
      const double row[] = {double(e.day), double(e.client.value),
                            double(e.front_end.value), e.queries};
      csv.write_row(row);
    }
  }
  csv.flush();
}

PassiveLog import_passive_log(const std::string& path) {
  std::ifstream in = open_or_throw(path);
  std::string line;
  require(static_cast<bool>(std::getline(in, line)), "export: empty file");
  require(line == "day,client,front_end,queries",
          "export: unexpected passive log header: " + line);
  PassiveLog log;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto fields = split_csv_line(line);
    require(fields.size() == 4, "export: bad passive row: " + line);
    PassiveLogEntry entry;
    entry.day = static_cast<DayIndex>(parse_u64(fields[0]));
    entry.client = ClientId(static_cast<std::uint32_t>(parse_u64(fields[1])));
    entry.front_end =
        FrontEndId(static_cast<std::uint32_t>(parse_u64(fields[2])));
    entry.queries = parse_double(fields[3]);
    log.add(entry);
  }
  return log;
}

void export_measurements(const MeasurementStore& store,
                         const std::string& path) {
  CsvWriter csv(path);
  csv.write_header({"beacon_id", "day", "hour", "client", "ldns", "anycast",
                    "front_end", "rtt_ms"});
  for (DayIndex d = 0; d < store.days(); ++d) {
    const MeasurementColumns& cols = store.columns(d);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      for (std::size_t t = cols.row_targets_begin(i);
           t < cols.row_targets_end(i); ++t) {
        const bool anycast = cols.target_anycast[t] != 0;
        const double row[] = {
            double(cols.beacon_id[i]),
            double(cols.day[i]),
            cols.hour[i],
            double(cols.client[i].value),
            double(cols.ldns[i].value),
            anycast ? 1.0 : 0.0,
            anycast ? 0.0 : double(cols.target_front_end[t]),
            cols.target_rtt[t]};
        csv.write_row(row);
      }
    }
  }
  csv.flush();
}

MeasurementStore import_measurements(const std::string& path) {
  std::ifstream in = open_or_throw(path);
  std::string line;
  require(static_cast<bool>(std::getline(in, line)), "export: empty file");
  require(line ==
              "beacon_id,day,hour,client,ldns,anycast,front_end,rtt_ms",
          "export: unexpected measurement header: " + line);

  // Rebuild beacons by id, preserving day grouping.
  std::map<std::uint64_t, BeaconMeasurement> beacons;
  std::vector<std::uint64_t> order;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto fields = split_csv_line(line);
    require(fields.size() == 8, "export: bad measurement row: " + line);
    const std::uint64_t beacon_id = parse_u64(fields[0]);
    auto it = beacons.find(beacon_id);
    if (it == beacons.end()) {
      BeaconMeasurement m;
      m.beacon_id = beacon_id;
      m.day = static_cast<DayIndex>(parse_u64(fields[1]));
      m.hour = parse_double(fields[2]);
      m.client = ClientId(static_cast<std::uint32_t>(parse_u64(fields[3])));
      m.ldns = LdnsId(static_cast<std::uint32_t>(parse_u64(fields[4])));
      it = beacons.emplace(beacon_id, std::move(m)).first;
      order.push_back(beacon_id);
    }
    BeaconMeasurement::Target target;
    target.anycast = parse_u64(fields[5]) != 0;
    target.front_end = target.anycast
                           ? FrontEndId{}
                           : FrontEndId(static_cast<std::uint32_t>(
                                 parse_u64(fields[6])));
    target.rtt_ms = parse_double(fields[7]);
    it->second.targets.push_back(target);
  }

  MeasurementStore store;
  for (std::uint64_t id : order) store.add(std::move(beacons.at(id)));
  return store;
}

}  // namespace acdn
