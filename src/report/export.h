// Raw-log export/import.
//
// The simulation's products — passive production logs and joined beacon
// measurements — exported as CSV so downstream users can analyze them in
// other tooling, and imported back so recorded runs can be re-analyzed
// without re-simulating. Round-trips are exact for the integer fields and
// round-trip-precise for doubles.
#pragma once

#include <string>

#include "beacon/store.h"

namespace acdn {

/// Writes one row per (client, front-end, day) aggregate.
void export_passive_log(const PassiveLog& log, const std::string& path);

/// Reads a file written by export_passive_log. Throws acdn::Error on
/// malformed input.
[[nodiscard]] PassiveLog import_passive_log(const std::string& path);

/// Writes one row per beacon *target* (wide rows would lose the variable
/// target count); rows of one beacon share its beacon_id.
void export_measurements(const MeasurementStore& store,
                         const std::string& path);

[[nodiscard]] MeasurementStore import_measurements(const std::string& path);

}  // namespace acdn
