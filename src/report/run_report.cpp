#include "report/run_report.h"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <string_view>

#include "common/error.h"

namespace acdn {

namespace {

/// JSON string escaping for the characters our names and paths can
/// actually contain (plus full control-character coverage for safety).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Shortest round-trip double formatting; JSON has no Infinity/NaN, so
/// non-finite values (possible in min/max of empty histograms) become null.
std::string json_number(double v) {
  if (v != v || v > 1.7e308 || v < -1.7e308) return "null";
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  require(ec == std::errc{}, "manifest: double format failed");
  return std::string(buf, ptr);
}

class JsonWriter {
 public:
  explicit JsonWriter(const std::string& path)
      : path_(path), out_(path, std::ios::trunc) {
    if (!out_) throw Error("manifest: cannot open " + path);
    // Shares the "csv/write" fail point with CsvWriter: the manifest is
    // an output artifact like any figure CSV. Fires after the trigger
    // counts were snapshotted into the manifest body, which is fine —
    // a failed manifest write produces no manifest to disagree with.
    static const FailPoint write_fault("csv/write");
    if (const auto fault = write_fault.fire(0, fault_coordinate(path))) {
      if (fault->kind == FaultKind::kError) {
        throw Error("manifest: injected write failure: " + path);
      }
    }
  }

  void line(int indent, std::string_view text) {
    out_ << std::string(std::size_t(indent) * 2, ' ') << text << '\n';
    check();
  }

  void close() {
    out_.flush();
    check();
  }

 private:
  void check() const {
    if (!out_) throw Error("manifest: write failed (disk full?): " + path_);
  }

  std::string path_;
  std::ofstream out_;
};

std::string quoted(std::string_view s) {
  return '"' + json_escape(s) + '"';
}

/// Emits `"name": {...}` object entries for a name-sorted map, handling
/// the trailing-comma bookkeeping JSON demands.
template <typename Map, typename BodyFn>
void write_object_map(JsonWriter& w, int indent, std::string_view key,
                      const Map& map, bool trailing_comma, BodyFn&& body) {
  w.line(indent, quoted(key) + ": {");
  std::size_t i = 0;
  for (const auto& [name, value] : map) {
    const bool last = ++i == map.size();
    body(indent + 1, name, value, !last);
  }
  w.line(indent, trailing_comma ? "}," : "}");
}

}  // namespace

FaultInjectionRecord FaultInjectionRecord::from_registry() {
  const FailPointRegistry& registry = FailPointRegistry::global();
  FaultInjectionRecord record;
  record.armed = fail_points_armed();
  const FaultSchedule schedule = registry.schedule();
  record.seed = schedule.seed;
  record.rules = schedule.rules;
  record.trigger_counts = registry.trigger_counts();
  return record;
}

std::string format_fault_injection(const FaultInjectionRecord& record,
                                   int indent) {
  const std::string pad(std::size_t(indent) * 2, ' ');
  std::string out;
  auto line = [&](int extra, const std::string& text) {
    out += pad + std::string(std::size_t(extra) * 2, ' ') + text + '\n';
  };
  line(0, "\"fault_injection\": {");
  line(1, std::string("\"armed\": ") + (record.armed ? "true" : "false") +
              ",");
  line(1, "\"seed\": " + std::to_string(record.seed) + ",");
  if (record.rules.empty()) {
    line(1, "\"rules\": [],");
  } else {
    line(1, "\"rules\": [");
    for (std::size_t i = 0; i < record.rules.size(); ++i) {
      const FaultRule& rule = record.rules[i];
      line(2, "{\"point\": " + quoted(rule.point) + ", \"kind\": " +
                  quoted(to_string(rule.kind)) + ", \"probability\": " +
                  json_number(rule.probability) + ", \"first_day\": " +
                  std::to_string(rule.first_day) + ", \"last_day\": " +
                  std::to_string(rule.last_day) + ", \"magnitude\": " +
                  json_number(rule.magnitude) + "}" +
                  (i + 1 == record.rules.size() ? "" : ","));
    }
    line(1, "],");
  }
  line(1, "\"trigger_counts\": {");
  std::size_t i = 0;
  for (const auto& [point, count] : record.trigger_counts) {
    const bool last = ++i == record.trigger_counts.size();
    line(2, quoted(point) + ": " + std::to_string(count) +
                (last ? "" : ","));
  }
  line(1, "},");
  line(1, "\"stale_train_days\": " + std::to_string(record.stale_train_days) +
              ",");
  line(1, "\"stale_eval_days\": " + std::to_string(record.stale_eval_days));
  line(0, "}");
  return out;
}

void write_run_manifest(const RunManifest& manifest,
                        const std::string& path) {
  JsonWriter w(path);
  w.line(0, "{");
  w.line(1, "\"tool\": " + quoted(manifest.tool) + ",");
  w.line(1, "\"config_digest\": " + quoted(manifest.config_digest) + ",");
  w.line(1, "\"seed\": " + std::to_string(manifest.seed) + ",");
  w.line(1, "\"days\": " + std::to_string(manifest.days) + ",");
  w.line(1, "\"start_date\": " + quoted(manifest.start_date) + ",");
  w.line(1, "\"end_date\": " + quoted(manifest.end_date) + ",");

  w.line(1, "\"outputs\": [");
  for (std::size_t i = 0; i < manifest.outputs.size(); ++i) {
    const bool last = i + 1 == manifest.outputs.size();
    w.line(2, quoted(manifest.outputs[i]) + (last ? "" : ","));
  }
  w.line(1, "],");

  // The fault_injection section is rendered by format_fault_injection so
  // the golden-fragment test pins exactly the bytes the manifest holds.
  {
    std::string section =
        format_fault_injection(manifest.fault_injection, 1);
    if (!section.empty() && section.back() == '\n') section.pop_back();
    section += ",";  // not the manifest's final key
    std::size_t begin = 0;
    while (begin <= section.size()) {
      std::size_t end = section.find('\n', begin);
      if (end == std::string::npos) end = section.size();
      w.line(0, section.substr(begin, end - begin));
      begin = end + 1;
    }
  }

  const MetricsSnapshot& m = manifest.metrics;
  write_object_map(w, 1, "counters", m.counters, true,
                   [&](int ind, const std::string& name, std::uint64_t v,
                       bool comma) {
                     w.line(ind, quoted(name) + ": " + std::to_string(v) +
                                     (comma ? "," : ""));
                   });
  write_object_map(w, 1, "gauges", m.gauges, true,
                   [&](int ind, const std::string& name, double v,
                       bool comma) {
                     w.line(ind, quoted(name) + ": " + json_number(v) +
                                     (comma ? "," : ""));
                   });
  write_object_map(
      w, 1, "histograms", m.histograms, true,
      [&](int ind, const std::string& name, const HistogramStats& h,
          bool comma) {
        w.line(ind,
               quoted(name) + ": {\"count\": " + std::to_string(h.count) +
                   ", \"sum\": " + json_number(h.sum) +
                   ", \"min\": " + json_number(h.count ? h.min : 0.0) +
                   ", \"max\": " + json_number(h.count ? h.max : 0.0) +
                   ", \"mean\": " + json_number(h.mean()) +
                   ", \"p50\": " + json_number(h.p50) +
                   ", \"p75\": " + json_number(h.p75) +
                   ", \"p95\": " + json_number(h.p95) +
                   ", \"p99\": " + json_number(h.p99) + "}" +
                   (comma ? "," : ""));
      });
  write_object_map(
      w, 1, "phases", m.phases, false,
      [&](int ind, const std::string& name, const PhaseStats& p,
          bool comma) {
        w.line(ind,
               quoted(name) + ": {\"count\": " + std::to_string(p.count) +
                   ", \"total_ms\": " + json_number(p.total_ms) +
                   ", \"max_ms\": " + json_number(p.max_ms) + "}" +
                   (comma ? "," : ""));
      });
  w.line(0, "}");
  w.close();
}

std::string format_metrics_table(const MetricsSnapshot& snapshot) {
  std::string out;
  char buf[256];
  auto row = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof(buf), fmt, args...);
    out += buf;
  };

  if (!snapshot.counters.empty()) {
    out += "-- counters --\n";
    for (const auto& [name, v] : snapshot.counters) {
      row("  %-36s %14llu\n", name.c_str(),
          static_cast<unsigned long long>(v));
    }
  }
  if (!snapshot.gauges.empty()) {
    out += "-- gauges --\n";
    for (const auto& [name, v] : snapshot.gauges) {
      row("  %-36s %14.3f\n", name.c_str(), v);
    }
  }
  if (!snapshot.histograms.empty()) {
    out += "-- histograms --\n";
    row("  %-36s %10s %12s %10s %10s %10s %10s\n", "name", "count", "mean",
        "p50", "p75", "p95", "p99");
    for (const auto& [name, h] : snapshot.histograms) {
      row("  %-36s %10llu %12.3f %10.3f %10.3f %10.3f %10.3f\n",
          name.c_str(), static_cast<unsigned long long>(h.count), h.mean(),
          h.p50, h.p75, h.p95, h.p99);
    }
  }
  if (!snapshot.phases.empty()) {
    out += "-- phases --\n";
    row("  %-36s %10s %14s %12s\n", "path", "count", "total_ms", "max_ms");
    for (const auto& [name, p] : snapshot.phases) {
      row("  %-36s %10llu %14.3f %12.3f\n", name.c_str(),
          static_cast<unsigned long long>(p.count), p.total_ms, p.max_ms);
    }
  }
  if (out.empty()) out = "(no metrics recorded)\n";
  return out;
}

}  // namespace acdn
