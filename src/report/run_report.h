// Structured run manifest: one JSON file per pipeline run, written next to
// the CSV outputs, recording what ran (tool, config digest, seed, date
// range), what it produced (output paths), and what the metrics registry
// observed (counters, gauges, histograms, phase timings).
//
// The manifest is the machine-readable face of the observability layer: a
// rerun with the same config digest and seed must reproduce every counter
// in it exactly (wall-clock histograms and phase timings excepted — those
// are environment, not simulation).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"

namespace acdn {

struct RunManifest {
  /// Which harness produced the run ("run_scenario", ...).
  std::string tool;
  /// ScenarioConfig::digest() — identifies the simulated world modulo seed.
  std::string config_digest;
  std::uint64_t seed = 0;
  int days = 0;
  std::string start_date;  // "2015-04-01"
  std::string end_date;    // inclusive last simulated day
  /// Paths of every artifact the run wrote (CSV figures, exports).
  std::vector<std::string> outputs;
  /// Registry snapshot taken after the last pipeline phase.
  MetricsSnapshot metrics;
};

/// Writes the manifest as pretty-printed JSON. Throws acdn::Error if the
/// file cannot be opened or any write fails (same contract as CsvWriter:
/// a full disk is an error, not a truncated manifest).
void write_run_manifest(const RunManifest& manifest,
                        const std::string& path);

/// Renders a snapshot as a human-readable summary table (the --metrics
/// output of run_scenario): counters, gauges, histogram quantiles and
/// phase timings, each section name-sorted.
[[nodiscard]] std::string format_metrics_table(
    const MetricsSnapshot& snapshot);

}  // namespace acdn
