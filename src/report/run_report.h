// Structured run manifest: one JSON file per pipeline run, written next to
// the CSV outputs, recording what ran (tool, config digest, seed, date
// range), what it produced (output paths), and what the metrics registry
// observed (counters, gauges, histograms, phase timings).
//
// The manifest is the machine-readable face of the observability layer: a
// rerun with the same config digest and seed must reproduce every counter
// in it exactly (wall-clock histograms and phase timings excepted — those
// are environment, not simulation).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/metrics.h"

namespace acdn {

/// Fault-injection record for the manifest: the exact schedule that was
/// armed plus per-fail-point trigger counts. A chaos run is reproducible
/// from this section alone, and the trigger counts must equal the
/// "fault.fired.*" counters in the metrics snapshot — the chaos tests
/// pin that.
struct FaultInjectionRecord {
  bool armed = false;
  std::uint64_t seed = 0;
  std::vector<FaultRule> rules;
  std::map<std::string, std::uint64_t> trigger_counts;
  /// Degraded-pipeline staleness totals (see core/resilience.h).
  std::uint64_t stale_train_days = 0;
  std::uint64_t stale_eval_days = 0;

  /// Snapshot of the global FailPointRegistry (schedule + counts).
  /// Staleness fields are the caller's to fill in.
  static FaultInjectionRecord from_registry();
};

struct RunManifest {
  /// Which harness produced the run ("run_scenario", ...).
  std::string tool;
  /// ScenarioConfig::digest() — identifies the simulated world modulo seed.
  std::string config_digest;
  std::uint64_t seed = 0;
  int days = 0;
  std::string start_date;  // "2015-04-01"
  std::string end_date;    // inclusive last simulated day
  /// Paths of every artifact the run wrote (CSV figures, exports).
  std::vector<std::string> outputs;
  /// Registry snapshot taken after the last pipeline phase.
  MetricsSnapshot metrics;
  /// Fault schedule and trigger accounting ("armed": false when no fail
  /// point was armed).
  FaultInjectionRecord fault_injection;
};

/// The "fault_injection" manifest section rendered as standalone JSON
/// (2-space indent at `indent` levels). Exposed for golden-fragment
/// tests; write_run_manifest embeds exactly this text.
[[nodiscard]] std::string format_fault_injection(
    const FaultInjectionRecord& record, int indent);

/// Writes the manifest as pretty-printed JSON. Throws acdn::Error if the
/// file cannot be opened or any write fails (same contract as CsvWriter:
/// a full disk is an error, not a truncated manifest).
void write_run_manifest(const RunManifest& manifest,
                        const std::string& path);

/// Renders a snapshot as a human-readable summary table (the --metrics
/// output of run_scenario): counters, gauges, histogram quantiles and
/// phase timings, each section name-sorted.
[[nodiscard]] std::string format_metrics_table(
    const MetricsSnapshot& snapshot);

}  // namespace acdn
