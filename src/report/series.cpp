#include "report/series.h"

#include <algorithm>
#include <cstdio>
#include <set>

#include "common/csv.h"

namespace acdn {

double sample_series(const Series& series, double x) {
  double y = 0.0;
  for (const DistPoint& p : series.points) {
    if (p.x > x) break;
    y = p.y;
  }
  return y;
}

namespace {

std::vector<double> union_xs(const std::vector<Series>& series) {
  std::set<double> xs;
  for (const Series& s : series) {
    for (const DistPoint& p : s.points) xs.insert(p.x);
  }
  return {xs.begin(), xs.end()};
}

}  // namespace

void Figure::print_table() const {
  std::printf("== %s ==\n", title_.c_str());
  std::printf("%-12s", x_label_.c_str());
  for (const Series& s : series_) std::printf("  %16s", s.name.c_str());
  std::printf("\n");
  for (double x : union_xs(series_)) {
    std::printf("%-12.4g", x);
    for (const Series& s : series_) {
      std::printf("  %16.4f", sample_series(s, x));
    }
    std::printf("\n");
  }
}

void Figure::write_csv(const std::string& path) const {
  CsvWriter csv(path);
  std::vector<std::string> header{x_label_};
  for (const Series& s : series_) header.push_back(s.name);
  csv.write_row(header);
  for (double x : union_xs(series_)) {
    std::vector<double> row{x};
    for (const Series& s : series_) row.push_back(sample_series(s, x));
    csv.write_row(row);
  }
  csv.flush();
}

}  // namespace acdn
