// Figure series: named (x, y) sequences plus CSV/console rendering, used by
// every bench harness to print the rows the paper's figures plot.
#pragma once

#include <string>
#include <vector>

#include "stats/distribution.h"

namespace acdn {

struct Series {
  std::string name;
  std::vector<DistPoint> points;
};

/// A figure: a set of series sharing an x axis.
class Figure {
 public:
  Figure(std::string title, std::string x_label, std::string y_label)
      : title_(std::move(title)),
        x_label_(std::move(x_label)),
        y_label_(std::move(y_label)) {}

  void add_series(Series series) { series_.push_back(std::move(series)); }

  [[nodiscard]] const std::string& title() const { return title_; }
  [[nodiscard]] const std::vector<Series>& series() const { return series_; }
  [[nodiscard]] const std::string& x_label() const { return x_label_; }
  [[nodiscard]] const std::string& y_label() const { return y_label_; }

  /// Prints "x  y(series1)  y(series2) ..." rows to stdout.
  void print_table() const;

  /// Writes the same rows as CSV. Series are interpolated onto the union
  /// of x positions (step interpolation, like a CDF).
  void write_csv(const std::string& path) const;

 private:
  std::string title_;
  std::string x_label_;
  std::string y_label_;
  std::vector<Series> series_;
};

/// Step-interpolates a series at `x` (value of the last point with
/// point.x <= x; 0 before the first point). Matches CDF semantics.
[[nodiscard]] double sample_series(const Series& series, double x);

}  // namespace acdn
