#include "report/shape_check.h"

#include <cstdio>

namespace acdn {

void ShapeReport::check(const std::string& description, double measured,
                        double lo, double hi) {
  checks_.push_back(ShapeCheck{description, measured, lo, hi,
                               measured >= lo && measured <= hi});
}

void ShapeReport::note(const std::string& description, double measured) {
  checks_.push_back(ShapeCheck{description, measured, measured, measured,
                               true});
}

bool ShapeReport::all_pass() const {
  for (const ShapeCheck& c : checks_) {
    if (!c.pass) return false;
  }
  return true;
}

bool ShapeReport::print() const {
  std::printf("-- shape checks: %s --\n", figure_.c_str());
  for (const ShapeCheck& c : checks_) {
    if (c.lo == c.hi && c.pass) {
      std::printf("  [note] %-58s measured=%.4g\n", c.description.c_str(),
                  c.measured);
    } else {
      std::printf("  [%s] %-58s measured=%.4g  band=[%.4g, %.4g]\n",
                  c.pass ? "PASS" : "FAIL", c.description.c_str(), c.measured,
                  c.lo, c.hi);
    }
  }
  const bool ok = all_pass();
  std::printf("  => %s\n", ok ? "ALL PASS" : "SOME CHECKS FAILED");
  return ok;
}

}  // namespace acdn
