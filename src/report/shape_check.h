// Shape checks: assert that a reproduced figure matches the paper's
// headline numbers to within a band, and report PASS/FAIL per check.
//
// The reproduction cannot (and should not) match absolute values from the
// authors' testbed; EXPERIMENTS.md records which direction each comparison
// goes. Bands here are intentionally generous: they encode "who wins and
// by roughly what factor", not point estimates.
#pragma once

#include <string>
#include <vector>

namespace acdn {

struct ShapeCheck {
  std::string description;
  double measured = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  bool pass = false;
};

class ShapeReport {
 public:
  explicit ShapeReport(std::string figure_name)
      : figure_(std::move(figure_name)) {}

  /// Records a check that `measured` falls within [lo, hi].
  void check(const std::string& description, double measured, double lo,
             double hi);

  /// Records an informational value (always passes, printed for context).
  void note(const std::string& description, double measured);

  [[nodiscard]] bool all_pass() const;
  [[nodiscard]] const std::vector<ShapeCheck>& checks() const {
    return checks_;
  }

  /// Prints one line per check and a final verdict; returns all_pass().
  bool print() const;

 private:
  std::string figure_;
  std::vector<ShapeCheck> checks_;
};

}  // namespace acdn
