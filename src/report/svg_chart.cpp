#include "report/svg_chart.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/error.h"

namespace acdn {

namespace {

constexpr const char* kPalette[] = {"#1f77b4", "#d62728", "#2ca02c",
                                    "#ff7f0e", "#9467bd", "#8c564b",
                                    "#e377c2", "#7f7f7f"};
constexpr int kMarginLeft = 62;
constexpr int kMarginRight = 16;
constexpr int kMarginTop = 34;
constexpr int kMarginBottom = 48;

std::string escape_xml(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string fmt(double v) {
  std::ostringstream s;
  s.precision(6);
  s << v;
  return s.str();
}

/// "Nice" tick positions covering [lo, hi].
std::vector<double> linear_ticks(double lo, double hi, int target = 6) {
  std::vector<double> ticks;
  const double span = hi - lo;
  if (span <= 0.0) return {lo};
  const double raw_step = span / target;
  const double magnitude = std::pow(10.0, std::floor(std::log10(raw_step)));
  double step = magnitude;
  for (double mult : {1.0, 2.0, 5.0, 10.0}) {
    if (magnitude * mult >= raw_step) {
      step = magnitude * mult;
      break;
    }
  }
  const double first = std::ceil(lo / step) * step;
  for (double t = first; t <= hi + step * 1e-9; t += step) {
    ticks.push_back(std::abs(t) < step * 1e-9 ? 0.0 : t);
  }
  return ticks;
}

std::vector<double> log_ticks(double lo, double hi) {
  std::vector<double> ticks;
  double t = std::pow(10.0, std::floor(std::log10(std::max(lo, 1e-12))));
  while (t <= hi * 1.0001) {
    if (t >= lo * 0.9999) ticks.push_back(t);
    t *= 2.0;  // 1-2-4-8 progression reads well for km/ms axes
  }
  return ticks;
}

}  // namespace

std::string render_svg(const Figure& figure, const SvgOptions& options) {
  require(options.width_px >= 160 && options.height_px >= 120,
          "svg canvas too small");
  const auto& series = figure.series();

  // Axis ranges.
  double x_min = options.x_min;
  double x_max = options.x_max;
  if (x_max <= x_min) {
    bool first = true;
    for (const Series& s : series) {
      for (const DistPoint& p : s.points) {
        if (first) {
          x_min = x_max = p.x;
          first = false;
        } else {
          x_min = std::min(x_min, p.x);
          x_max = std::max(x_max, p.x);
        }
      }
    }
    if (x_max <= x_min) x_max = x_min + 1.0;
  }
  if (options.log_x) x_min = std::max(x_min, 1e-9);

  const double plot_w =
      double(options.width_px - kMarginLeft - kMarginRight);
  const double plot_h =
      double(options.height_px - kMarginTop - kMarginBottom);

  auto x_pos = [&](double x) {
    double t = 0.0;
    if (options.log_x) {
      t = (std::log(std::max(x, x_min)) - std::log(x_min)) /
          (std::log(x_max) - std::log(x_min));
    } else {
      t = (x - x_min) / (x_max - x_min);
    }
    return kMarginLeft + std::clamp(t, 0.0, 1.0) * plot_w;
  };
  auto y_pos = [&](double y) {
    const double t =
        (y - options.y_min) / (options.y_max - options.y_min);
    return kMarginTop + (1.0 - std::clamp(t, 0.0, 1.0)) * plot_h;
  };

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
      << options.width_px << "\" height=\"" << options.height_px
      << "\" viewBox=\"0 0 " << options.width_px << " "
      << options.height_px << "\" font-family=\"sans-serif\">\n";
  svg << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  svg << "<text x=\"" << options.width_px / 2 << "\" y=\"20\" "
      << "text-anchor=\"middle\" font-size=\"14\">"
      << escape_xml(figure.title()) << "</text>\n";

  // Gridlines + ticks.
  const std::vector<double> xt = options.log_x
                                     ? log_ticks(x_min, x_max)
                                     : linear_ticks(x_min, x_max);
  const std::vector<double> yt =
      linear_ticks(options.y_min, options.y_max, 5);
  svg << "<g stroke=\"#dddddd\" stroke-width=\"1\">\n";
  for (double t : xt) {
    svg << "<line x1=\"" << fmt(x_pos(t)) << "\" y1=\"" << kMarginTop
        << "\" x2=\"" << fmt(x_pos(t)) << "\" y2=\""
        << fmt(kMarginTop + plot_h) << "\"/>\n";
  }
  for (double t : yt) {
    svg << "<line x1=\"" << kMarginLeft << "\" y1=\"" << fmt(y_pos(t))
        << "\" x2=\"" << fmt(kMarginLeft + plot_w) << "\" y2=\""
        << fmt(y_pos(t)) << "\"/>\n";
  }
  svg << "</g>\n";
  svg << "<g font-size=\"11\" fill=\"#333333\">\n";
  for (double t : xt) {
    svg << "<text x=\"" << fmt(x_pos(t)) << "\" y=\""
        << fmt(kMarginTop + plot_h + 16) << "\" text-anchor=\"middle\">"
        << fmt(t) << "</text>\n";
  }
  for (double t : yt) {
    svg << "<text x=\"" << kMarginLeft - 6 << "\" y=\""
        << fmt(y_pos(t) + 4) << "\" text-anchor=\"end\">" << fmt(t)
        << "</text>\n";
  }
  svg << "<text x=\"" << fmt(kMarginLeft + plot_w / 2) << "\" y=\""
      << options.height_px - 10 << "\" text-anchor=\"middle\">"
      << escape_xml(figure.x_label())
      << (options.log_x ? " (log scale)" : "") << "</text>\n";
  svg << "<text transform=\"translate(14," << fmt(kMarginTop + plot_h / 2)
      << ") rotate(-90)\" text-anchor=\"middle\">"
      << escape_xml(figure.y_label()) << "</text>\n";
  svg << "</g>\n";

  // Axes frame.
  svg << "<rect x=\"" << kMarginLeft << "\" y=\"" << kMarginTop
      << "\" width=\"" << fmt(plot_w) << "\" height=\"" << fmt(plot_h)
      << "\" fill=\"none\" stroke=\"#333333\"/>\n";

  // Series.
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char* color = kPalette[si % std::size(kPalette)];
    std::ostringstream d;
    bool started = false;
    double prev_y = 0.0;
    for (const DistPoint& p : series[si].points) {
      if (p.x < x_min || p.x > x_max) {
        // Keep the running value so steps enter the frame correctly.
        prev_y = p.y;
        continue;
      }
      if (!started) {
        d << "M" << fmt(x_pos(p.x)) << " " << fmt(y_pos(p.y));
        started = true;
      } else if (options.step) {
        d << " L" << fmt(x_pos(p.x)) << " " << fmt(y_pos(prev_y));
        d << " L" << fmt(x_pos(p.x)) << " " << fmt(y_pos(p.y));
      } else {
        d << " L" << fmt(x_pos(p.x)) << " " << fmt(y_pos(p.y));
      }
      prev_y = p.y;
    }
    if (started) {
      svg << "<path d=\"" << d.str() << "\" fill=\"none\" stroke=\""
          << color << "\" stroke-width=\"1.8\"/>\n";
    }
    // Legend entry.
    const double ly = kMarginTop + 8 + 16.0 * double(si);
    svg << "<line x1=\"" << kMarginLeft + 8 << "\" y1=\"" << fmt(ly)
        << "\" x2=\"" << kMarginLeft + 30 << "\" y2=\"" << fmt(ly)
        << "\" stroke=\"" << color << "\" stroke-width=\"2\"/>\n";
    svg << "<text x=\"" << kMarginLeft + 36 << "\" y=\"" << fmt(ly + 4)
        << "\" font-size=\"11\">" << escape_xml(series[si].name)
        << "</text>\n";
  }

  svg << "</svg>\n";
  return svg.str();
}

void write_svg(const Figure& figure, const std::string& path,
               const SvgOptions& options) {
  std::ofstream out(path);
  if (!out) throw Error("svg: cannot open " + path);
  out << render_svg(figure, options);
}

}  // namespace acdn
