// Self-contained SVG line charts for figure series.
//
// Each bench prints tables and ASCII sketches for the terminal; this
// renderer writes the publication-style picture — axes, ticks, gridlines,
// step-interpolated series lines, legend — as a standalone .svg with no
// external dependencies, so EXPERIMENTS.md can link real figures.
#pragma once

#include <string>

#include "report/series.h"

namespace acdn {

struct SvgOptions {
  int width_px = 640;
  int height_px = 420;
  bool log_x = false;
  double x_min = 0.0;
  double x_max = 0.0;  // <= x_min means derive from the data
  double y_min = 0.0;
  double y_max = 1.0;
  /// Draw the series as CDF-style steps (true) or straight segments.
  bool step = true;
};

/// Renders the figure to an SVG document string.
[[nodiscard]] std::string render_svg(const Figure& figure,
                                     const SvgOptions& options);

/// Renders and writes to `path`. Throws acdn::Error if the file cannot be
/// written.
void write_svg(const Figure& figure, const std::string& path,
               const SvgOptions& options);

}  // namespace acdn
