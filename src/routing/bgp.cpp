#include "routing/bgp.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <set>

#include "common/check.h"
#include "common/error.h"
#include "common/metrics.h"

namespace acdn {

namespace {
constexpr int kInf = std::numeric_limits<int>::max() / 2;
}

const char* to_string(RouteType t) {
  switch (t) {
    case RouteType::kCustomer: return "customer";
    case RouteType::kPeer:     return "peer";
    case RouteType::kProvider: return "provider";
  }
  return "?";
}

std::span<const RouteCandidate> BgpRouteTable::candidates(AsId as_id) const {
  require(as_id.valid() && as_id.value < candidates_.size(),
          "BgpRouteTable: AS id out of range");
  return candidates_[as_id.value];
}

std::optional<RouteCandidate> BgpRouteTable::best(AsId as_id) const {
  auto c = candidates(as_id);
  if (c.empty()) return std::nullopt;
  return c.front();
}

std::optional<RouteCandidate> BgpRouteTable::best_customer(AsId as_id) const {
  for (const RouteCandidate& c : candidates(as_id)) {
    if (c.type == RouteType::kCustomer) return c;
  }
  return std::nullopt;
}

std::vector<AsId> BgpRouteTable::walk(AsId as_id,
                                      std::size_t candidate_index) const {
  std::vector<AsId> path;
  auto cands = candidates(as_id);
  if (cands.empty()) return path;
  // Selection below indexes the preference ranking; a table that lost its
  // sort order would silently pick the wrong route.
  ACDN_DCHECK(std::is_sorted(cands.begin(), cands.end()))
      << "candidate table for AS " << as_id.value << " is unsorted";
  candidate_index = std::min(candidate_index, cands.size() - 1);
  path.push_back(as_id);

  RouteCandidate current = cands[candidate_index];
  // Valley-free invariant: once we traverse a customer or peer edge, every
  // subsequent hop must follow the next AS's best *customer* route.
  bool customer_chain_only = current.type != RouteType::kProvider;
  while (true) {
    const AsId next = current.next_hop;
    path.push_back(next);
    if (next == cdn_) break;
    std::optional<RouteCandidate> next_route =
        customer_chain_only ? best_customer(next) : best(next);
    // A provider hop may be followed by anything; after that we are in the
    // "descending" or "across" phase depending on the chosen route type.
    if (!next_route) {
      // Table inconsistency would be a bug in compute(); fail loudly.
      throw Error("BgpRouteTable::walk: dead end at AS " +
                  std::to_string(next.value));
    }
    if (next_route->type != RouteType::kProvider) customer_chain_only = true;
    current = *next_route;
    require(path.size() <= 16, "BGP walk exceeded maximum path length");
  }
  ACDN_CHECK_EQ(path.back().value, cdn_.value)
      << "BGP walk must terminate at the CDN";
  return path;
}

BgpSimulator::BgpSimulator(const AsGraph& graph, AsId cdn)
    : graph_(&graph), cdn_(cdn) {
  require(graph.as_node(cdn).type == AsType::kCdn,
          "BgpSimulator target must be a CDN-type AS");
}

BgpRouteTable BgpSimulator::compute(
    std::span<const MetroId> announce_metros) const {
  const ScopedTimer compute_timer("bgp.compute_ms");
  metric_count("bgp.tables_computed");
  const AsGraph& g = *graph_;
  require(!announce_metros.empty(), "prefix must be announced somewhere");
  const std::set<MetroId> announce(announce_metros.begin(),
                                   announce_metros.end());
  for (MetroId m : announce_metros) {
    require(g.as_node(cdn_).present_in(m),
            "announce metro is not a CDN PoP");
  }

  const std::size_t n = g.as_count();

  // Usable first-hop adjacency: the neighbor can pick the prefix up either
  // over a configured peering metro that originates it, or — because the
  // prefix is announced to everyone interconnected at the announce point
  // (§3.1) — at any announce metro where the neighbor has a PoP at all.
  auto adjacency_usable = [&](std::size_t link_index, AsId neighbor) {
    const AsLink& link = g.link(link_index);
    if (std::any_of(link.metros.begin(), link.metros.end(),
                    [&](MetroId m) { return announce.count(m) > 0; })) {
      return true;
    }
    const AsNode& node = g.as_node(neighbor);
    return std::any_of(announce.begin(), announce.end(),
                       [&](MetroId m) { return node.present_in(m); });
  };

  // --- Stage 1: customer routes (paths that only descend provider->customer
  // edges when viewed from the route holder; equivalently, the CDN is in the
  // holder's customer cone). BFS upward from the CDN.
  std::vector<int> cust_len(n, kInf);
  cust_len[cdn_.value] = 0;
  std::deque<AsId> queue;
  // Seed: ASes for which the CDN is a customer, via usable adjacencies.
  for (const Neighbor& nb : g.neighbors(cdn_)) {
    if (nb.kind == Neighbor::Kind::kProvider &&
        adjacency_usable(nb.link_index, nb.as)) {
      if (cust_len[nb.as.value] > 1) {
        cust_len[nb.as.value] = 1;
        queue.push_back(nb.as);
      }
    }
  }
  while (!queue.empty()) {
    const AsId x = queue.front();
    queue.pop_front();
    for (const Neighbor& nb : g.neighbors(x)) {
      if (nb.kind != Neighbor::Kind::kProvider) continue;  // export upward
      if (cust_len[nb.as.value] > cust_len[x.value] + 1) {
        cust_len[nb.as.value] = cust_len[x.value] + 1;
        queue.push_back(nb.as);
      }
    }
  }

  // --- Stage 2: peer routes. Peers only export customer routes, so a peer
  // route's length is fixed once customer lengths are known.
  std::vector<int> peer_len(n, kInf);
  for (std::size_t i = 0; i < n; ++i) {
    const AsId x(static_cast<std::uint32_t>(i));
    if (x == cdn_) continue;
    for (const Neighbor& nb : g.neighbors(x)) {
      if (nb.as == cdn_ && !adjacency_usable(nb.link_index, x)) continue;
      if (nb.kind == Neighbor::Kind::kPeer && cust_len[nb.as.value] < kInf) {
        peer_len[i] = std::min(peer_len[i], cust_len[nb.as.value] + 1);
      }
    }
  }

  // --- Stage 3: provider routes. A provider exports its *selected* route —
  // and BGP selects by relationship before length, so the exported length is
  // the length of the preference-ranked best, not the shortest. Provider
  // routes chain down the customer hierarchy; relax to fixpoint (selected
  // lengths are non-increasing, so this terminates).
  std::vector<int> prov_len(n, kInf);
  auto selected_len = [&](std::size_t i) {
    if (i == cdn_.value) return 0;
    if (cust_len[i] < kInf) return cust_len[i];
    if (peer_len[i] < kInf) return peer_len[i];
    return prov_len[i];
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (const AsNode& node : g.all_as()) {
      const std::size_t i = node.id.value;
      if (node.id == cdn_) continue;
      for (const Neighbor& nb : g.neighbors(node.id)) {
        if (nb.kind != Neighbor::Kind::kProvider) continue;
        if (nb.as == cdn_ && !adjacency_usable(nb.link_index, node.id)) {
          continue;
        }
        const int via = selected_len(nb.as.value);
        if (via < kInf && prov_len[i] > via + 1) {
          prov_len[i] = via + 1;
          changed = true;
        }
      }
    }
  }

  // --- Candidate assembly: what each neighbor would actually export.
  BgpRouteTable table;
  table.cdn_ = cdn_;
  table.candidates_.resize(n);
  for (const AsNode& node : g.all_as()) {
    if (node.id == cdn_) continue;
    std::vector<RouteCandidate>& cands = table.candidates_[node.id.value];
    for (const Neighbor& nb : g.neighbors(node.id)) {
      const bool via_cdn = nb.as == cdn_;
      if (via_cdn && !adjacency_usable(nb.link_index, node.id)) continue;
      switch (nb.kind) {
        case Neighbor::Kind::kCustomer:
          if (cust_len[nb.as.value] < kInf) {
            cands.push_back(RouteCandidate{RouteType::kCustomer,
                                           cust_len[nb.as.value] + 1, nb.as});
          }
          break;
        case Neighbor::Kind::kPeer:
          // Peers export only customer routes (and their own origin).
          if (cust_len[nb.as.value] < kInf) {
            cands.push_back(RouteCandidate{RouteType::kPeer,
                                           cust_len[nb.as.value] + 1, nb.as});
          }
          break;
        case Neighbor::Kind::kProvider: {
          // Providers export their selected route, whatever its type.
          const int via = selected_len(nb.as.value);
          if (via < kInf) {
            cands.push_back(
                RouteCandidate{RouteType::kProvider, via + 1, nb.as});
          }
          break;
        }
      }
    }
    std::sort(cands.begin(), cands.end());
    for (const RouteCandidate& c : cands) {
      ACDN_DCHECK_GE(c.as_path_len, 1)
          << "zero-length route at AS " << node.id.value;
      ACDN_DCHECK(c.next_hop.valid() && c.next_hop != node.id)
          << "candidate at AS " << node.id.value << " loops or is invalid";
    }
  }
  return table;
}

}  // namespace acdn
