// BGP-lite: AS-level route computation toward the CDN under Gao-Rexford
// (valley-free) policy.
//
// Like real BGP, the decision process here is performance-agnostic: routes
// are ranked by business relationship (customer > peer > provider), then
// AS-path length, then a deterministic tie-break — never by latency. That
// is precisely why anycast misdirects ~20% of clients in the paper, and the
// simulator reproduces the mechanism rather than the symptom.
//
// A prefix is characterized by the set of metros at which the CDN
// originates it: the anycast prefix is announced at every CDN peering
// metro, while each front-end's unicast /24 is announced only at the
// peering point(s) closest to that front-end (paper §3.1).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "topology/as_graph.h"

namespace acdn {

enum class RouteType { kCustomer = 0, kPeer = 1, kProvider = 2 };

[[nodiscard]] const char* to_string(RouteType t);

/// One route a neighbor offers an AS. Candidates are ranked by BGP
/// preference: relationship first, then path length, then neighbor ASN.
struct RouteCandidate {
  RouteType type = RouteType::kProvider;
  int as_path_len = 0;  // inter-AS hops to the CDN, including the last hop
  AsId next_hop;

  friend bool operator<(const RouteCandidate& a, const RouteCandidate& b) {
    if (a.type != b.type) return a.type < b.type;
    if (a.as_path_len != b.as_path_len) return a.as_path_len < b.as_path_len;
    return a.next_hop.value < b.next_hop.value;
  }
};

/// Per-AS routing state for one prefix.
class BgpRouteTable {
 public:
  /// Candidate routes for `as_id`, best first. Empty if unreachable.
  [[nodiscard]] std::span<const RouteCandidate> candidates(AsId as_id) const;

  /// Best route (candidates().front()), or nullopt if unreachable.
  [[nodiscard]] std::optional<RouteCandidate> best(AsId as_id) const;

  /// Best customer-type route for `as_id` (what it exports to peers and
  /// providers), or nullopt. Used when walking a path: after a customer or
  /// peer hop, the remainder of the path must be a customer chain.
  [[nodiscard]] std::optional<RouteCandidate> best_customer(AsId as_id) const;

  /// Full AS path (starting at `as_id`, ending at the CDN) that traffic
  /// follows when `as_id` selects `candidate_index` (clamped to the
  /// available candidates). Empty if unreachable.
  [[nodiscard]] std::vector<AsId> walk(AsId as_id,
                                       std::size_t candidate_index = 0) const;

  [[nodiscard]] AsId cdn() const { return cdn_; }

 private:
  friend class BgpSimulator;
  AsId cdn_;
  std::vector<std::vector<RouteCandidate>> candidates_;  // indexed by AsId
};

class BgpSimulator {
 public:
  /// `cdn` must be an AS of type kCdn in `graph`.
  BgpSimulator(const AsGraph& graph, AsId cdn);

  /// Computes every AS's routes for a prefix originated at
  /// `announce_metros` (each must be a CDN PoP). A CDN adjacency is usable
  /// for the prefix only if it has a peering metro in the announce set.
  [[nodiscard]] BgpRouteTable compute(
      std::span<const MetroId> announce_metros) const;

  /// Convenience: the anycast prefix is announced at every CDN PoP metro.
  [[nodiscard]] BgpRouteTable compute_anycast() const {
    return compute(graph_->as_node(cdn_).presence);
  }

  [[nodiscard]] AsId cdn() const { return cdn_; }

 private:
  const AsGraph* graph_;
  AsId cdn_;
};

}  // namespace acdn
