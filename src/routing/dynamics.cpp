#include "routing/dynamics.h"

#include <algorithm>

#include "common/error.h"
#include "common/failpoint.h"

namespace acdn {

void RouteDynamics::register_unit(RoutingUnit unit,
                                  std::size_t candidate_count) {
  require(!started_, "register_unit after advance_to");
  auto it = units_.find(unit);
  if (it != units_.end()) {
    // Draw-neutral update: consuming a bernoulli here would shift the
    // flappy draw of every unit registered after this one, silently
    // changing which units flap for the same seed.
    it->second.candidates = candidate_count;
    it->second.flappy = it->second.flappy && candidate_count >= 2;
    it->second.selected =
        std::min(it->second.selected,
                 candidate_count == 0 ? 0 : candidate_count - 1);
    return;
  }
  UnitState state;
  state.candidates = candidate_count;
  state.flappy =
      candidate_count >= 2 && rng_.bernoulli(config_.flappy_unit_fraction);
  order_.push_back(unit);
  units_.emplace(unit, state);
}

void RouteDynamics::advance_to(DayIndex day) {
  require(day >= day_, "RouteDynamics cannot rewind");
  if (!started_) {
    started_ = true;
    // Day 0 keeps the initial table; only the flap set is drawn.
    step_one_day(0);
    if (day == 0) return;
  }
  while (day_ < day) {
    ++day_;
    step_one_day(day_);
  }
}

void RouteDynamics::step_one_day(DayIndex day) {
  ++epoch_;
  const bool weekend = calendar_.is_weekend(day);
  const double change_prob =
      weekend ? config_.weekend_change_prob : config_.weekday_change_prob;

  static const FailPoint session_fault("bgp/session");
  static const FailPoint withdrawal_fault("bgp/withdrawal");

  flaps_today_.clear();
  withdrawn_today_.clear();
  for (const RoutingUnit& unit : order_) {
    UnitState& state = units_[unit];
    if (state.candidates < 2) continue;

    // Inter-day route change (skipped on day 0: the initial table holds).
    // Changes move to an adjacent candidate in BGP preference order: a
    // withdrawn or de-preferred best route falls back to the next-best,
    // not to an arbitrary alternative.
    if (day > 0 && rng_.bernoulli(change_prob)) {
      if (state.selected != 0 && rng_.bernoulli(config_.revert_prob)) {
        --state.selected;
      } else if (state.selected + 1 < state.candidates) {
        ++state.selected;
      } else if (state.selected != 0) {
        --state.selected;
      }
    }

    // Intra-day flap: part of the day's traffic briefly uses the adjacent
    // candidate (route ties / per-peer load sharing).
    const double flap_prob =
        state.flappy
            ? (weekend ? config_.flappy_weekend_flap_prob
                       : config_.flappy_weekday_flap_prob)
            : config_.stable_flap_prob;
    if (rng_.bernoulli(flap_prob)) {
      const std::size_t alt = state.selected + 1 < state.candidates
                                  ? state.selected + 1
                                  : state.selected - 1;
      flaps_today_[unit] = alt;
    }

    // Injected faults. Decisions hash (day, unit), never rng_, so a
    // disarmed run's draw sequence is untouched and an armed schedule is
    // identical for any thread count (this loop is serial regardless).
    if (fail_points_armed()) {
      const std::uint64_t coord = RoutingUnitHash{}(unit);
      const std::size_t next_best = state.selected + 1 < state.candidates
                                        ? state.selected + 1
                                        : state.selected - 1;
      // Session reset: the session carrying the selected route bounces;
      // part of the day's traffic rides the adjacent candidate while BGP
      // re-converges — an intra-day flap.
      if (session_fault.fire(day, coord)) {
        flaps_today_[unit] = next_best;
      }
      // Withdrawal: the selected route is gone for the whole day; the
      // unit falls back to its next-best candidate until re-announcement.
      if (withdrawal_fault.fire(day, coord)) {
        withdrawn_today_[unit] = next_best;
      }
    }
  }
}

std::size_t RouteDynamics::selected_candidate(const RoutingUnit& unit) const {
  if (!withdrawn_today_.empty()) {
    auto withdrawn = withdrawn_today_.find(unit);
    if (withdrawn != withdrawn_today_.end()) return withdrawn->second;
  }
  auto it = units_.find(unit);
  if (it == units_.end()) return 0;
  return it->second.selected;
}

std::optional<std::size_t> RouteDynamics::flap_alternate(
    const RoutingUnit& unit) const {
  auto it = flaps_today_.find(unit);
  if (it == flaps_today_.end()) return std::nullopt;
  return it->second;
}

}  // namespace acdn
