// Day-to-day interdomain route dynamics.
//
// The paper observes (Figure 7) that ~7% of clients land on more than one
// front-end within their first day, another 2-4% switch on each subsequent
// weekday, and almost none switch on weekends ("network operators not
// pushing out changes during the weekend unless they have to"), for ~21%
// over a week. The underlying causes — BGP path changes and policy pushes —
// happen per routing unit: an (access AS, PoP metro) pair. This module
// evolves a per-unit selected-route index over simulated days with
// weekday-biased change probabilities, plus an intra-day flap set for units
// whose route changes mid-day.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/sim_clock.h"
#include "common/types.h"

namespace acdn {

struct RoutingUnit {
  AsId as;
  MetroId metro;

  bool operator==(const RoutingUnit&) const = default;
};

struct RoutingUnitHash {
  std::size_t operator()(const RoutingUnit& u) const noexcept {
    return (std::size_t(u.as.value) << 20) ^ std::size_t(u.metro.value);
  }
};

struct DynamicsConfig {
  /// Per-unit probability of a route change on a weekday / weekend day.
  double weekday_change_prob = 0.08;
  double weekend_change_prob = 0.0005;
  /// A changed unit reverts to its primary route with this probability on
  /// each subsequent change event (problems are mostly short-lived, Fig 6).
  double revert_prob = 0.65;
  /// Intra-day flapping concentrates in persistently unstable units
  /// (BGP ties, load balancing across peers): a fixed fraction of units is
  /// "flappy" and flaps most weekdays; stable units almost never flap.
  /// This produces Figure 7's large day-one jump without inflating the
  /// per-weekday increments later in the week.
  double flappy_unit_fraction = 0.25;
  double flappy_weekday_flap_prob = 0.75;
  double flappy_weekend_flap_prob = 0.01;
  double stable_flap_prob = 0.002;
};

class RouteDynamics {
 public:
  RouteDynamics(const DynamicsConfig& config, const SimCalendar& calendar,
                std::uint64_t seed)
      : config_(config), calendar_(calendar), rng_(Rng(seed).fork("route-dynamics")) {}

  /// Declares a routing unit and how many route candidates its AS has.
  /// Units with fewer than two candidates never change.
  ///
  /// Re-registering an already-known unit updates its candidate count but
  /// is draw-neutral: it consumes nothing from the RNG stream, so the
  /// flappy draw of every unit registered afterwards is unaffected. (The
  /// original flappy draw is kept; a unit that shrinks below two
  /// candidates stops flapping.)
  void register_unit(RoutingUnit unit, std::size_t candidate_count);

  /// Advances the state to `day` (must be called with non-decreasing days;
  /// gaps are simulated). Day 0 is the initial state: no changes yet.
  void advance_to(DayIndex day);

  /// The candidate index the unit's selected route has today. A
  /// "bgp/withdrawal" fault overrides the selection with the next-best
  /// candidate for just that day (the route returns on re-announcement).
  [[nodiscard]] std::size_t selected_candidate(const RoutingUnit& unit) const;

  /// If the unit flaps today, the alternate candidate index seen by a
  /// fraction of its queries; nullopt otherwise.
  [[nodiscard]] std::optional<std::size_t> flap_alternate(
      const RoutingUnit& unit) const;

  [[nodiscard]] DayIndex current_day() const { return day_; }

  /// Monotone state-change counter: incremented on every simulated day
  /// step (including day 0's initial flap draw). Consumers that snapshot
  /// per-day state — the day-route plan — compare epochs to detect
  /// staleness; current_day() alone cannot distinguish "day 0 not yet
  /// started" from "day 0 stepped".
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

 private:
  struct UnitState {
    std::size_t candidates = 1;
    std::size_t selected = 0;
    bool flappy = false;
  };

  void step_one_day(DayIndex day);

  DynamicsConfig config_;
  SimCalendar calendar_;
  Rng rng_;
  DayIndex day_ = 0;
  bool started_ = false;
  std::uint64_t epoch_ = 0;
  /// Registration order; iterated instead of the hash map so that results
  /// do not depend on hash-table iteration order.
  std::vector<RoutingUnit> order_;
  // NOLINT-ACDN(unordered-decl): keyed lookups; walks go through order_
  std::unordered_map<RoutingUnit, UnitState, RoutingUnitHash> units_;
  // NOLINT-ACDN(unordered-decl): keyed lookups; walks go through order_
  std::unordered_map<RoutingUnit, std::size_t, RoutingUnitHash> flaps_today_;
  /// Units whose selected route was withdrawn by a "bgp/withdrawal" fault
  /// today, mapped to the fallback candidate they ride instead.
  // NOLINT-ACDN(unordered-decl): keyed lookups; walks go through order_
  std::unordered_map<RoutingUnit, std::size_t, RoutingUnitHash>
      withdrawn_today_;
};

}  // namespace acdn
