#include "routing/path.h"

#include <algorithm>

#include "common/error.h"

namespace acdn {

std::vector<AsId> ForwardingPath::as_path() const {
  std::vector<AsId> out;
  out.reserve(segments.size());
  for (const PathSegment& s : segments) out.push_back(s.as);
  return out;
}

MetroId PathUnfolder::choose_handoff(const AsNode& node, MetroId current,
                                     std::span<const MetroId> options,
                                     bool cdn_handoff) const {
  require(!options.empty(), "choose_handoff with no options");
  if (node.remote_peering_policy && cdn_handoff) {
    // Cold potato toward a preferred interconnection site when available.
    for (MetroId pref : node.preferred_handoffs) {
      if (std::find(options.begin(), options.end(), pref) != options.end()) {
        return pref;
      }
    }
  }
  return graph_->nearest_by_igp(node.id, current, options);
}

ForwardingPath PathUnfolder::unfold(AsId access_as, MetroId client_metro,
                                    const BgpRouteTable& table,
                                    std::span<const MetroId> announce_metros,
                                    std::size_t candidate_index) const {
  const std::vector<AsId> chain = table.walk(access_as, candidate_index);
  if (chain.empty()) return {};  // unreachable

  std::vector<MetroId> announce_sorted(announce_metros.begin(),
                                       announce_metros.end());
  std::sort(announce_sorted.begin(), announce_sorted.end());
  return unfold_chain(chain, client_metro, announce_metros, announce_sorted);
}

ForwardingPath PathUnfolder::unfold_chain(
    std::span<const AsId> chain, MetroId client_metro,
    std::span<const MetroId> announce_metros,
    std::span<const MetroId> announce_sorted) const {
  ForwardingPath path;
  if (chain.empty()) return path;  // unreachable

  const auto announced = [&](MetroId m) {
    return std::binary_search(announce_sorted.begin(), announce_sorted.end(),
                              m);
  };

  MetroId current = client_metro;
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    const AsNode& node = graph_->as_node(chain[i]);
    const AsId next = chain[i + 1];
    require(node.present_in(current),
            "path unfolding entered AS " + node.name +
                " at a metro without a PoP");

    std::vector<MetroId> options = graph_->peering_metros(chain[i], next);
    if (next == cdn_) {
      // Handoff into the CDN can happen at any metro where the prefix is
      // originated and this network is interconnected with the CDN: a
      // configured session metro that originates it, or any announce metro
      // where the network has a PoP (the prefix is announced to everyone
      // interconnected at that peering point, §3.1). The same sessions
      // serve the anycast and unicast prefixes; only the announce scope
      // differs.
      std::erase_if(options, [&](MetroId m) { return !announced(m); });
      for (MetroId m : announce_metros) {
        if (node.present_in(m) &&
            std::find(options.begin(), options.end(), m) == options.end()) {
          options.push_back(m);
        }
      }
    }
    if (options.empty()) return path;  // inconsistent table; treat unreachable

    const MetroId handoff =
        choose_handoff(node, current, options, next == cdn_);
    const Kilometers km =
        graph_->intra_as_distance_km(chain[i], current, handoff);
    path.segments.push_back(PathSegment{chain[i], current, handoff, km});
    path.total_km += km;
    current = handoff;
  }

  path.ingress_metro = current;
  path.as_hops = static_cast<int>(chain.size()) - 1;
  path.valid = true;
  return path;
}

}  // namespace acdn
