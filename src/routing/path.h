// Geographic unfolding of AS-level routes.
//
// BGP-lite yields the chain of ASes a client's traffic traverses; this
// module pins that chain to the map. Within each AS the traffic travels
// from its entry PoP to a handoff PoP chosen by that AS's own policy:
// hot-potato (nearest exit by IGP cost) for most networks, or a preferred
// remote handoff for ISPs with the §5 "remote peering" pathology. The
// result is the sequence of geographic segments whose lengths drive the
// latency model, plus the metro where traffic finally enters the CDN —
// which determines the front-end under anycast.
#pragma once

#include <span>
#include <vector>

#include "routing/bgp.h"
#include "topology/as_graph.h"

namespace acdn {

struct PathSegment {
  AsId as;             // network carrying this segment
  MetroId from;        // entry PoP
  MetroId to;          // exit PoP (handoff to the next AS)
  Kilometers km = 0.0; // intra-AS distance travelled
};

struct ForwardingPath {
  bool valid = false;
  std::vector<PathSegment> segments;
  MetroId ingress_metro;    // metro where traffic enters the CDN
  Kilometers total_km = 0;  // sum of segment lengths
  int as_hops = 0;          // inter-AS handoffs traversed

  /// ASes on the path in order, starting with the client's access network.
  [[nodiscard]] std::vector<AsId> as_path() const;
};

class PathUnfolder {
 public:
  PathUnfolder(const AsGraph& graph, AsId cdn) : graph_(&graph), cdn_(cdn) {}

  /// Unfolds the route selected by (`access_as` at `client_metro`) toward a
  /// prefix announced at `announce_metros`, using the access AS's
  /// `candidate_index`-th ranked route (clamped; index 0 is BGP-best).
  /// Returns an invalid path if the table offers no route.
  [[nodiscard]] ForwardingPath unfold(
      AsId access_as, MetroId client_metro, const BgpRouteTable& table,
      std::span<const MetroId> announce_metros,
      std::size_t candidate_index = 0) const;

  /// Same unfolding with the AS-level walk already done (routing/
  /// walk_cache.h memoizes them): `chain` is the path BgpRouteTable::walk
  /// would return for the selected candidate. `announce_sorted` holds the
  /// same metros as `announce_metros` in ascending order — callers on the
  /// hot path precompute it once per table instead of per unfold.
  [[nodiscard]] ForwardingPath unfold_chain(
      std::span<const AsId> chain, MetroId client_metro,
      std::span<const MetroId> announce_metros,
      std::span<const MetroId> announce_sorted) const;

 private:
  /// `cdn_handoff` is true when the next hop is the CDN itself: the
  /// remote-peering policy concerns where an ISP interconnects with the
  /// CDN; handoffs to transit providers follow ordinary hot potato.
  [[nodiscard]] MetroId choose_handoff(const AsNode& node, MetroId current,
                                       std::span<const MetroId> options,
                                       bool cdn_handoff) const;

  const AsGraph* graph_;
  AsId cdn_;
};

}  // namespace acdn
