#include "routing/walk_cache.h"

#include "common/check.h"

namespace acdn {

void WalkCache::prime(AsId as) {
  if (primed(as)) return;
  Slot slot;
  const std::size_t candidates = table_->candidates(as).size();
  slot.offsets.reserve(candidates + 1);
  slot.offsets.push_back(0);
  // An unreachable AS has zero candidates; its slot holds one empty chain
  // so chain() can answer without re-walking.
  const std::size_t chains = candidates == 0 ? 1 : candidates;
  for (std::size_t k = 0; k < chains; ++k) {
    const std::vector<AsId> chain = table_->walk(as, k);
    ++walks_;
    slot.flat.insert(slot.flat.end(), chain.begin(), chain.end());
    slot.offsets.push_back(static_cast<std::uint32_t>(slot.flat.size()));
  }
  slots_.emplace(as.value, std::move(slot));
}

bool WalkCache::primed(AsId as) const {
  return slots_.find(as.value) != slots_.end();
}

std::span<const AsId> WalkCache::chain(AsId as, std::size_t candidate) const {
  const auto it = slots_.find(as.value);
  ACDN_CHECK(it != slots_.end()) << "WalkCache::chain before prime, AS "
                                 << as.value;
  const Slot& slot = it->second;
  const std::size_t chains = slot.offsets.size() - 1;
  // Clamp exactly like BgpRouteTable::walk: past-the-end candidate indices
  // resolve to the last (worst) candidate.
  const std::size_t k = candidate < chains ? candidate : chains - 1;
  return std::span<const AsId>(slot.flat)
      .subspan(slot.offsets[k], slot.offsets[k + 1] - slot.offsets[k]);
}

void WalkCache::invalidate() {
  slots_.clear();
  ++generation_;
}

}  // namespace acdn
