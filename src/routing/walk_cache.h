// Memoized BGP path walks, keyed by (AsId, candidate_index).
//
// BgpRouteTable::walk re-follows the customer/peer chain and allocates a
// fresh vector on every call, yet the chain for a given (AS, candidate)
// pair never changes while the table lives: the route tables are computed
// once per World. The day-route plan (cdn/day_plan.h) resolves every
// routing unit once per day, and units sharing an access AS share walks —
// this cache makes each distinct (AS, candidate) chain a one-time cost.
//
// Concurrency contract: prime() mutates and must run single-threaded
// (plan construction); chain() after priming is a read-only lookup that
// is safe from any executor worker. Entries are generation-tagged:
// invalidate() bumps the generation and drops every chain, for callers
// that rebuild the underlying route table (a withdrawal-day or siting
// change that re-runs BgpSimulator invalidates every memoized walk).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "routing/bgp.h"

namespace acdn {

class WalkCache {
 public:
  explicit WalkCache(const BgpRouteTable& table) : table_(&table) {}

  /// Computes and stores the chain of every candidate of `as`. Idempotent;
  /// re-priming an AS after invalidate() re-walks under the new
  /// generation. Not thread-safe — prime before concurrent reads.
  void prime(AsId as);

  /// True when `as` has been primed under the current generation.
  [[nodiscard]] bool primed(AsId as) const;

  /// The AS path for (`as`, `candidate`), clamped to the available
  /// candidates exactly like BgpRouteTable::walk. Empty if the AS is
  /// unreachable. Requires `primed(as)`.
  [[nodiscard]] std::span<const AsId> chain(AsId as,
                                            std::size_t candidate) const;

  /// Drops every memoized chain and bumps the generation. Call when the
  /// underlying route table is recomputed.
  void invalidate();

  [[nodiscard]] std::uint64_t generation() const { return generation_; }
  /// Table walks performed since construction (cache fills, not hits).
  [[nodiscard]] std::size_t walks() const { return walks_; }
  [[nodiscard]] std::size_t primed_count() const { return slots_.size(); }

 private:
  /// All of one AS's candidate chains, flattened: chain k spans
  /// [offsets[k], offsets[k + 1]) of `flat`.
  struct Slot {
    std::vector<AsId> flat;
    std::vector<std::uint32_t> offsets;  // candidates + 1 entries
  };

  const BgpRouteTable* table_;
  std::uint64_t generation_ = 1;
  std::size_t walks_ = 0;
  // NOLINT-ACDN(unordered-decl): keyed memo lookups only, never iterated
  std::unordered_map<std::uint32_t, Slot> slots_;
};

}  // namespace acdn
