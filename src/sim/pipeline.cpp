#include "sim/pipeline.h"

#include <algorithm>
#include <cstddef>
#include <memory>
#include <utility>

#include "common/error.h"
#include "common/executor.h"
#include "common/metrics.h"

namespace acdn {

/// One in-flight day. Every member is slot-local: the analysis task may
/// run on any pool worker while the driver thread executes later kernels,
/// so nothing here is shared until fold() — which runs after task.join()
/// and therefore after every write below has been published through the
/// batch mutex.
struct ScenarioPipeline::DaySlot {
  DayIndex day = 0;
  DayStats stats;
  /// Kernel output, merged in client order; capacity persists across the
  /// days this slot serves.
  std::vector<DnsLogEntry> dns_log;
  std::vector<HttpLogEntry> http_log;
  /// Slot-local join destination; fold() moves the finished day into the
  /// scenario store (take_day/put_day).
  MeasurementStore store;
  /// Slot-local aggregation scratch — the per-slot half of the arena
  /// double buffering. Two in-flight days never touch the same arena, and
  /// the lease guard (common/arena.h) enforces it.
  ScratchArena arena;
  FlatMap<std::uint32_t, Milliseconds> improvements;
  TaskHandle task;
  bool in_flight = false;
};

ScenarioPipeline::ScenarioPipeline(Simulation& sim, PipelineOptions options)
    : sim_(&sim), options_(std::move(options)) {
  require(options_.window >= 0, "pipeline window must be non-negative");
  if (options_.predictor) trainer_.emplace(*options_.predictor);
  const std::size_t ring =
      static_cast<std::size_t>(std::max(1, options_.window));
  slots_.reserve(ring);
  for (std::size_t i = 0; i < ring; ++i) {
    slots_.push_back(std::make_unique<DaySlot>());
  }
}

// Out of line: DaySlot is incomplete in the header. The member TaskHandle
// destructors wait for any still-running analysis, so tearing down a
// pipeline mid-flight (e.g. a kernel threw) cannot leave a worker writing
// into freed slots.
ScenarioPipeline::~ScenarioPipeline() = default;

PipelineResult ScenarioPipeline::run_days(int n) {
  require(n >= 0, "cannot run a negative number of days");
  PipelineResult out;
  out.days.reserve(static_cast<std::size_t>(n));
  out.prevalence.reserve(static_cast<std::size_t>(n));
  const std::size_t ring = slots_.size();

  for (int i = 0; i < n; ++i) {
    DaySlot& slot = *slots_[ticks_ % ring];
    // The slot's previous day leaves before the new one moves in — this
    // join is the only place the pipeline ever blocks, and it preserves
    // day order because slots are reused round-robin.
    if (slot.in_flight) fold(slot, out);

    slot.day = sim_->next_day();
    slot.stats = sim_->run_day_kernel(slot.dns_log, slot.http_log);
    metric_count("pipeline.days");

    if (options_.window == 0) {
      // Serial reference: same analyze/fold code, inline and immediate.
      analyze(slot);
      fold(slot, out);
    } else {
      DaySlot* launched = &slot;
      slot.task =
          Executor::global().submit([this, launched] { analyze(*launched); });
      slot.in_flight = true;
    }
    ++ticks_;
  }

  // Drain oldest-first: (ticks_ + k) % ring walks the ring in day order.
  for (std::size_t k = 0; k < ring; ++k) {
    DaySlot& slot = *slots_[(ticks_ + k) % ring];
    if (slot.in_flight) fold(slot, out);
  }
  return out;
}

void ScenarioPipeline::analyze(DaySlot& slot) {
  // Root span: this scope runs inline (window 0) or on a pool worker whose
  // phase path is whatever the last batch left there — pin it either way.
  const PhaseSpan span("pipeline.analysis", PhaseSpan::kRoot);
  slot.store.join(slot.dns_log, slot.http_log, options_.threads);
  // Columnar figure-5 scoring, byte-identical to fig5_daily_prevalence's
  // per-day body (same overload, slot arena in place of its loop arena).
  slot.improvements = daily_improvement(slot.store.columns(slot.day),
                                        options_.fig5, options_.threads,
                                        &slot.arena);
}

void ScenarioPipeline::fold(DaySlot& slot, PipelineResult& out) {
  slot.task.join();  // no-op when analyze ran inline; rethrows task errors
  slot.in_flight = false;
  metric_count("pipeline.folds");

  sim_->measurements_mut().put_day(slot.day, slot.store.take_day(slot.day));

  // Threshold fold — the exact arithmetic of fig5_daily_prevalence, one
  // day at a time (0-threshold swaps in epsilon, divide last).
  Fig5Day day;
  day.day = slot.day;
  day.fraction_above.assign(options_.fig5.thresholds.size(), 0.0);
  if (!slot.improvements.empty()) {
    for (const auto& [group, improvement] : slot.improvements) {
      (void)group;
      for (std::size_t i = 0; i < options_.fig5.thresholds.size(); ++i) {
        const Milliseconds threshold = options_.fig5.thresholds[i] == 0.0
                                           ? options_.fig5.epsilon_ms
                                           : options_.fig5.thresholds[i];
        if (improvement > threshold) day.fraction_above[i] += 1.0;
      }
    }
    for (double& f : day.fraction_above) {
      f /= static_cast<double>(slot.improvements.size());
    }
  }
  out.prevalence.push_back(std::move(day));

  if (trainer_) {
    // Row order within the day equals the serial loop's (the join output
    // is thread-count-invariant), and fold order equals day order — so
    // the trainer sees the exact serial observation sequence.
    trainer_->observe_all(sim_->measurements().columns(slot.day));
    out.observed = trainer_->observed();
  }
  out.days.push_back(slot.stats);
}

}  // namespace acdn
