// Cross-day pipeline: overlap day N's analysis with day N+1's kernel,
// deterministically.
//
// Simulation::run_day has two halves with very different constraints. The
// *kernel* (World::prepare_day + the client fan-out and beacon
// executions) must stay serial across days: RouteDynamics and the RNG
// substreams advance day-by-day, so day N+1 cannot start until day N's
// kernel finished. The *analysis tail* (DNS×HTTP join, DayAggregates
// build, per-day figure folds, streaming-predictor updates) only reads
// day N's logs — it is independent of every later day. ScenarioPipeline
// exploits exactly that: while the driver thread runs day N+1's kernel,
// day N's analysis runs as an async executor task, with up to `window`
// days in flight and results folded back **in day order**.
//
// Determinism. Every figure digest, manifest counter, and chaos trigger
// count is byte-identical to the serial loop for any window size and
// thread count, because each ingredient is order-pinned:
//   * the kernel runs serially in day order on the driver thread — the
//     RNG and route streams see the exact serial schedule;
//   * each day joins into a slot-local MeasurementStore (the join itself
//     is thread-count-invariant), and the finished columns move into the
//     scenario store during the in-order fold (take_day/put_day), so the
//     store's day layout never depends on completion order;
//   * order-sensitive folds (figure-5 prevalence, StreamingTrainer
//     updates) happen only in fold(), on the driver thread, in day
//     order, replaying the exact serial arithmetic;
//   * fault decisions are pure hashes of (schedule seed, point, day,
//     sim-state coordinate) — where a fault fires does not depend on
//     which thread evaluates it;
//   * every in-flight day owns its own ScratchArena and store slot (the
//     double-buffering overlap requires); the arena lease guard
//     (common/arena.h) turns any accidental sharing into an ACDN_DCHECK
//     failure instead of silent aliasing.
// tests/pipeline_test.cpp pins all of this across {serial, window=1, 2,
// 4} × {1, 2, 8 threads} with armed fault schedules.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "analysis/figures.h"
#include "core/predictor.h"
#include "core/streaming.h"
#include "sim/simulation.h"

namespace acdn {

struct PipelineOptions {
  /// Days of analysis allowed in flight behind the kernel. 0 runs the
  /// analysis inline on the driver thread — the serial reference, through
  /// the same code path; W >= 1 overlaps up to W days.
  int window = 2;
  /// Parallelism for the per-day analysis passes (join, aggregate build,
  /// figure scoring). The kernel keeps World's simulation_threads.
  int threads = 1;
  /// Per-day figure-5 prevalence fold (same math as
  /// fig5_daily_prevalence, one day at a time).
  Fig5Config fig5;
  /// When set, every stored row also folds into a StreamingTrainer — in
  /// day and row order, matching the serial observe() loop byte for byte.
  std::optional<PredictorConfig> predictor;
};

struct PipelineResult {
  /// Per-day kernel stats, in day order.
  std::vector<DayStats> days;
  /// Per-day figure-5 prevalence, in day order.
  std::vector<Fig5Day> prevalence;
  /// Total rows folded into the streaming trainer so far (0 without a
  /// predictor; cumulative across run_days calls).
  std::uint64_t observed = 0;
};

class ScenarioPipeline {
 public:
  ScenarioPipeline(Simulation& sim, PipelineOptions options);
  ~ScenarioPipeline();

  ScenarioPipeline(const ScenarioPipeline&) = delete;
  ScenarioPipeline& operator=(const ScenarioPipeline&) = delete;

  /// Runs the next `n` days through the pipeline. Every day is fully
  /// folded before this returns (no analysis stays in flight between
  /// calls), so the result covers exactly these `n` days and the
  /// simulation's measurement store holds them all.
  PipelineResult run_days(int n);

  /// The streaming trainer fed by the in-order fold; nullptr when
  /// PipelineOptions::predictor was not set.
  [[nodiscard]] const StreamingTrainer* trainer() const {
    return trainer_ ? &*trainer_ : nullptr;
  }

  [[nodiscard]] const PipelineOptions& options() const { return options_; }

 private:
  struct DaySlot;

  /// The analysis tail for one day: join, aggregate, figure scoring.
  /// Runs inline (window 0) or on a pool worker; everything it touches is
  /// slot-local.
  void analyze(DaySlot& slot);
  /// In-order fold on the driver thread: joins the slot's task, moves the
  /// day's columns into the scenario store, and replays the serial
  /// figure/trainer folds.
  void fold(DaySlot& slot, PipelineResult& out);

  Simulation* sim_;
  PipelineOptions options_;
  std::optional<StreamingTrainer> trainer_;
  /// Ring of max(1, window) slots; day k runs in slot k mod ring size.
  std::vector<std::unique_ptr<DaySlot>> slots_;
  /// Days started since construction (ring cursor across run_days calls).
  std::uint64_t ticks_ = 0;
};

}  // namespace acdn
