#include "sim/policy_lab.h"

#include "common/error.h"

namespace acdn {

void PolicyLab::add_strategy(std::string name,
                             const RedirectionPolicy& policy) {
  Strategy strategy;
  strategy.name = std::move(name);
  strategy.policy = &policy;
  AuthoritativeConfig auth;
  auth.answer_ttl_seconds = config_.answer_ttl_seconds;
  auth.honor_ecs = config_.resolvers_send_ecs;
  strategy.server = std::make_unique<AuthoritativeServer>(
      policy, world_->cdn().deployment(), auth);
  strategies_.push_back(std::move(strategy));
}

std::vector<StrategyOutcome> PolicyLab::run(int days) {
  require(!strategies_.empty(), "PolicyLab has no strategies");
  require(days > 0, "PolicyLab needs at least one day");
  World& world = *world_;
  Simulation sim(world);
  Rng rng = world.fork_rng("policy-lab");

  for (DayIndex day = 0; day < days; ++day) {
    sim.run_day();
    if (retrain_ && day > 0) {
      retrain_->train(sim.measurements().columns(day - 1));
    }

    for (const Client24& client : world.clients().clients()) {
      const World::DayRoute route = world.anycast_today(client);
      if (!route.primary.valid) continue;
      for (int s = 0; s < config_.samples_per_client_day; ++s) {
        const SimTime when = world.schedule().sample_query_time(day, rng);
        for (Strategy& strategy : strategies_) {
          const Ipv4Address address = strategy.server->resolve(
              client.ldns,
              config_.resolvers_send_ecs
                  ? std::optional<Prefix>(client.prefix)
                  : std::nullopt,
              when);
          const DnsAnswer answer = strategy.server->decode(address);
          ++strategy.resolutions;
          Milliseconds rtt = 0.0;
          if (answer.anycast) {
            const RouteResult& r =
                (route.alternate && rng.bernoulli(route.alternate_share))
                    ? *route.alternate
                    : route.primary;
            rtt = world.beacon().route_rtt(client, r, when, rng);
          } else {
            ++strategy.unicast_answers;
            rtt = world.beacon().unicast_rtt(client, answer.front_end, when,
                                             rng);
          }
          strategy.achieved.add(rtt, client.daily_queries);
        }
      }
    }
  }

  std::vector<StrategyOutcome> outcomes;
  for (Strategy& strategy : strategies_) {
    StrategyOutcome outcome;
    outcome.name = strategy.name;
    outcome.achieved_ms = std::move(strategy.achieved);
    outcome.authoritative_queries = strategy.server->authoritative_queries();
    outcome.cache_hits = strategy.server->cache_hits();
    outcome.unicast_answer_share =
        strategy.resolutions > 0
            ? double(strategy.unicast_answers) / double(strategy.resolutions)
            : 0.0;
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

}  // namespace acdn
