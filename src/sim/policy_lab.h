// Policy laboratory: compare redirection strategies on one world.
//
// Drives a multi-day simulation and, each day, measures the latency every
// client actually achieves under each strategy — resolving through a real
// AuthoritativeServer (so TTL caching and per-LDNS/ECS granularity apply),
// then sampling the RTT of whatever the answer pointed at: the day's
// anycast route, or a unicast front-end. Optionally retrains a
// HistoryPredictor each morning on yesterday's beacons, which is how the
// §6 hybrid policy is meant to be operated.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/predictor.h"
#include "dns/authoritative.h"
#include "sim/simulation.h"
#include "sim/world.h"
#include "stats/distribution.h"

namespace acdn {

struct PolicyLabConfig {
  /// Achieved-latency samples per client per day.
  int samples_per_client_day = 1;
  /// TTL on authoritative answers.
  double answer_ttl_seconds = 120.0;
  /// Whether resolvers forward ECS for their clients.
  bool resolvers_send_ecs = true;
};

struct StrategyOutcome {
  std::string name;
  /// Query-volume-weighted achieved latencies across clients and days.
  DistributionBuilder achieved_ms;
  /// Authoritative-side query count (cache misses) and resolver cache hits.
  std::size_t authoritative_queries = 0;
  std::size_t cache_hits = 0;
  /// Fraction of resolutions answered with a unicast front-end.
  double unicast_answer_share = 0.0;
};

class PolicyLab {
 public:
  PolicyLab(World& world, const PolicyLabConfig& config)
      : world_(&world), config_(config) {}
  explicit PolicyLab(World& world) : PolicyLab(world, PolicyLabConfig{}) {}

  /// Registers a strategy. The policy must outlive the lab.
  void add_strategy(std::string name, const RedirectionPolicy& policy);

  /// If set, retrained each morning on the previous day's beacon
  /// measurements (for HybridPolicy-style strategies).
  void retrain_each_day(HistoryPredictor& predictor) {
    retrain_ = &predictor;
  }

  /// Runs `days` simulated days and returns one outcome per strategy.
  [[nodiscard]] std::vector<StrategyOutcome> run(int days);

 private:
  struct Strategy {
    std::string name;
    const RedirectionPolicy* policy;
    std::unique_ptr<AuthoritativeServer> server;
    std::size_t unicast_answers = 0;
    std::size_t resolutions = 0;
    DistributionBuilder achieved;
  };

  World* world_;
  PolicyLabConfig config_;
  std::vector<Strategy> strategies_;
  HistoryPredictor* retrain_ = nullptr;
};

}  // namespace acdn
