#include "sim/scenario.h"

#include <charconv>
#include <string>

#include "common/error.h"
#include "common/executor.h"

namespace acdn {

namespace {

/// Appends "key=value\n" lines into a canonical serialization. Doubles use
/// shortest round-trip formatting (std::to_chars), so the text — and the
/// digest over it — is identical across platforms and locale settings.
class KnobSerializer {
 public:
  void add(std::string_view key, double v) {
    char buf[64];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    require(ec == std::errc{}, "digest: double format failed");
    add_raw(key, std::string_view(buf, std::size_t(ptr - buf)));
  }
  void add(std::string_view key, int v) { add(key, std::int64_t(v)); }
  void add(std::string_view key, bool v) {
    add_raw(key, v ? "true" : "false");
  }
  void add(std::string_view key, std::int64_t v) {
    char buf[32];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    require(ec == std::errc{}, "digest: int format failed");
    add_raw(key, std::string_view(buf, std::size_t(ptr - buf)));
  }
  void add(std::string_view key, const Date& d) {
    add_raw(key, d.to_string());
  }
  void add(std::string_view key, std::string_view v) { add_raw(key, v); }

  [[nodiscard]] const std::string& text() const { return text_; }

 private:
  void add_raw(std::string_view key, std::string_view value) {
    text_.append(key);
    text_.push_back('=');
    text_.append(value);
    text_.push_back('\n');
  }
  std::string text_;
};

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

ScenarioConfig ScenarioConfig::paper_default() {
  ScenarioConfig config;
  config.workload.total_client_24s = 4000;
  config.workload.base_daily_queries = 40.0;
  config.schedule.beacon_sampling = 0.02;
  // Paper-scale runs fan out on the executor pool; results are identical
  // to simulation_threads = 1 by the deterministic chunking contract.
  config.simulation_threads = default_thread_count();
  return config;
}

ScenarioConfig ScenarioConfig::small_test() {
  ScenarioConfig config;
  config.seed = 7;
  config.topology.tier1_count = 4;
  config.topology.transits_per_region = 2;
  config.topology.national_access_per_country = 1;
  config.deployment.north_america = 6;
  config.deployment.europe = 5;
  config.deployment.asia = 3;
  config.deployment.oceania = 1;
  config.deployment.south_america = 1;
  config.deployment.africa = 1;
  config.deployment.middle_east = 1;
  config.cdn.extra_peering_metros = 3;
  config.workload.total_client_24s = 400;
  config.workload.base_daily_queries = 30.0;
  config.schedule.beacon_sampling = 0.05;
  config.dns.public_resolver_sites = 4;
  return config;
}

std::string ScenarioConfig::digest() const {
  KnobSerializer s;
  s.add("start_date", start_date);

  s.add("topology.tier1_count", topology.tier1_count);
  s.add("topology.transits_per_region", topology.transits_per_region);
  s.add("topology.national_access_per_country",
        topology.national_access_per_country);
  s.add("topology.local_access_per_metro", topology.local_access_per_metro);
  s.add("topology.tier1_presence_prob", topology.tier1_presence_prob);
  s.add("topology.transit_presence_prob", topology.transit_presence_prob);
  s.add("topology.remote_peering_fraction",
        topology.remote_peering_fraction);
  s.add("topology.transit_peer_prob", topology.transit_peer_prob);
  s.add("topology.max_providers_per_access",
        topology.max_providers_per_access);

  s.add("deployment.north_america", deployment.north_america);
  s.add("deployment.europe", deployment.europe);
  s.add("deployment.asia", deployment.asia);
  s.add("deployment.oceania", deployment.oceania);
  s.add("deployment.south_america", deployment.south_america);
  s.add("deployment.africa", deployment.africa);
  s.add("deployment.middle_east", deployment.middle_east);

  s.add("cdn.links.transit_providers", cdn.links.transit_providers);
  s.add("cdn.links.tier1_peer_prob", cdn.links.tier1_peer_prob);
  s.add("cdn.links.transit_peer_prob", cdn.links.transit_peer_prob);
  s.add("cdn.links.access_peer_prob", cdn.links.access_peer_prob);
  s.add("cdn.links.max_transit_peering_metros",
        cdn.links.max_transit_peering_metros);
  s.add("cdn.links.max_access_peering_metros",
        cdn.links.max_access_peering_metros);
  s.add("cdn.extra_peering_metros", cdn.extra_peering_metros);
  s.add("cdn.backbone.nearest_links", cdn.backbone.nearest_links);
  s.add("cdn.backbone.interconnect_region_hubs",
        cdn.backbone.interconnect_region_hubs);
  s.add("cdn.backbone.fiber_factor_min", cdn.backbone.fiber_factor_min);
  s.add("cdn.backbone.fiber_factor_max", cdn.backbone.fiber_factor_max);

  s.add("workload.total_client_24s", workload.total_client_24s);
  s.add("workload.volume_pareto_alpha", workload.volume_pareto_alpha);
  s.add("workload.base_daily_queries", workload.base_daily_queries);
  s.add("workload.placement_median_km", workload.placement_median_km);
  s.add("workload.placement_sigma", workload.placement_sigma);
  s.add("workload.placement_max_km", workload.placement_max_km);
  s.add("workload.last_mile.fiber_share", workload.last_mile.fiber_share);
  s.add("workload.last_mile.cable_share", workload.last_mile.cable_share);
  s.add("workload.last_mile.dsl_share", workload.last_mile.dsl_share);
  s.add("workload.last_mile.wireless_share",
        workload.last_mile.wireless_share);

  s.add("schedule.weekend_factor", schedule.weekend_factor);
  s.add("schedule.beacon_sampling", schedule.beacon_sampling);
  s.add("schedule.activity_scale", schedule.activity_scale);

  s.add("dns.metros_per_resolver_site", dns.metros_per_resolver_site);
  s.add("dns.max_resolver_sites_per_isp", dns.max_resolver_sites_per_isp);
  s.add("dns.public_resolver_fraction", dns.public_resolver_fraction);
  s.add("dns.public_resolver_sites", dns.public_resolver_sites);

  s.add("geolocation.exact_fraction", geolocation.exact_fraction);
  s.add("geolocation.nearby_error_mu", geolocation.nearby_error_mu);
  s.add("geolocation.nearby_error_sigma", geolocation.nearby_error_sigma);
  s.add("geolocation.gross_error_fraction",
        geolocation.gross_error_fraction);
  s.add("geolocation.gross_error_min_km", geolocation.gross_error_min_km);
  s.add("geolocation.gross_error_max_km", geolocation.gross_error_max_km);

  s.add("rtt.km_per_rtt_ms", rtt.km_per_rtt_ms);
  s.add("rtt.per_as_hop_ms", rtt.per_as_hop_ms);
  s.add("rtt.jitter_sigma", rtt.jitter_sigma);
  s.add("rtt.congestion_prob", rtt.congestion_prob);
  s.add("rtt.congestion_mean_ms", rtt.congestion_mean_ms);
  s.add("rtt.diurnal_amplitude", rtt.diurnal_amplitude);
  s.add("rtt.peak_hour", rtt.peak_hour);

  s.add("timing.resource_timing_support", timing.resource_timing_support);
  s.add("timing.primitive_overhead_min", timing.primitive_overhead_min);
  s.add("timing.primitive_overhead_max", timing.primitive_overhead_max);
  s.add("timing.primitive_extra_mean_ms", timing.primitive_extra_mean_ms);
  s.add("timing.primitive_resolution_ms", timing.primitive_resolution_ms);

  s.add("beacon.candidate_pool", beacon.candidate_pool);
  s.add("beacon.targets_per_beacon", beacon.targets_per_beacon);
  s.add("beacon.fetch_loss_prob", beacon.fetch_loss_prob);

  s.add("dynamics.weekday_change_prob", dynamics.weekday_change_prob);
  s.add("dynamics.weekend_change_prob", dynamics.weekend_change_prob);
  s.add("dynamics.revert_prob", dynamics.revert_prob);
  s.add("dynamics.flappy_unit_fraction", dynamics.flappy_unit_fraction);
  s.add("dynamics.flappy_weekday_flap_prob",
        dynamics.flappy_weekday_flap_prob);
  s.add("dynamics.flappy_weekend_flap_prob",
        dynamics.flappy_weekend_flap_prob);
  s.add("dynamics.stable_flap_prob", dynamics.stable_flap_prob);

  s.add("flap_traffic_share", flap_traffic_share);
  s.add("max_route_alternatives", max_route_alternatives);

  // The fault schedule shapes results, so its rules are part of the world
  // digest. Like `seed`, `faults.seed` is excluded: it picks one draw of
  // the schedule, not the schedule's shape, and is recorded separately in
  // the run manifest.
  for (std::size_t i = 0; i < faults.rules.size(); ++i) {
    const FaultRule& rule = faults.rules[i];
    const std::string prefix = "faults." + std::to_string(i) + ".";
    s.add(prefix + "point", rule.point);
    s.add(prefix + "kind", to_string(rule.kind));
    s.add(prefix + "probability", rule.probability);
    s.add(prefix + "first_day", rule.first_day);
    s.add(prefix + "last_day", rule.last_day);
    s.add(prefix + "magnitude", rule.magnitude);
  }

  const std::uint64_t h = fnv1a64(s.text());
  char buf[17];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), h, 16);
  std::string hex(buf, ptr);
  return std::string(16 - hex.size(), '0') + hex;
}

void ScenarioConfig::validate() const {
  topology.validate();
  workload.validate();
  dns.validate();
  rtt.validate();
  require(deployment.total() >= 1, "deployment needs at least one site");
  require(flap_traffic_share > 0.0 && flap_traffic_share < 1.0,
          "flap_traffic_share must be in (0,1)");
  require(max_route_alternatives >= 1,
          "max_route_alternatives must be at least 1");
  require(simulation_threads >= 1,
          "simulation_threads must be at least 1");
  faults.validate();
}

}  // namespace acdn
