#include "sim/scenario.h"

#include "common/error.h"
#include "common/executor.h"

namespace acdn {

ScenarioConfig ScenarioConfig::paper_default() {
  ScenarioConfig config;
  config.workload.total_client_24s = 4000;
  config.workload.base_daily_queries = 40.0;
  config.schedule.beacon_sampling = 0.02;
  // Paper-scale runs fan out on the executor pool; results are identical
  // to simulation_threads = 1 by the deterministic chunking contract.
  config.simulation_threads = default_thread_count();
  return config;
}

ScenarioConfig ScenarioConfig::small_test() {
  ScenarioConfig config;
  config.seed = 7;
  config.topology.tier1_count = 4;
  config.topology.transits_per_region = 2;
  config.topology.national_access_per_country = 1;
  config.deployment.north_america = 6;
  config.deployment.europe = 5;
  config.deployment.asia = 3;
  config.deployment.oceania = 1;
  config.deployment.south_america = 1;
  config.deployment.africa = 1;
  config.deployment.middle_east = 1;
  config.cdn.extra_peering_metros = 3;
  config.workload.total_client_24s = 400;
  config.workload.base_daily_queries = 30.0;
  config.schedule.beacon_sampling = 0.05;
  config.dns.public_resolver_sites = 4;
  return config;
}

void ScenarioConfig::validate() const {
  topology.validate();
  workload.validate();
  dns.validate();
  rtt.validate();
  require(deployment.total() >= 1, "deployment needs at least one site");
  require(flap_traffic_share > 0.0 && flap_traffic_share < 1.0,
          "flap_traffic_share must be in (0,1)");
  require(max_route_alternatives >= 1,
          "max_route_alternatives must be at least 1");
  require(simulation_threads >= 1,
          "simulation_threads must be at least 1");
}

}  // namespace acdn
