// Scenario configuration: every knob of the synthetic world in one place.
//
// paper_default() is tuned so the figure shapes land near the paper's
// (DESIGN.md §3 lists the targets); small_test() builds a tiny world for
// fast unit and integration tests. Both are deterministic given `seed`.
#pragma once

#include <cstdint>
#include <string>

#include "beacon/beacon.h"
#include "cdn/network.h"
#include "common/failpoint.h"
#include "common/sim_clock.h"
#include "dns/ldns.h"
#include "geo/geolocation.h"
#include "latency/rtt_model.h"
#include "latency/timing_api.h"
#include "routing/dynamics.h"
#include "topology/builder.h"
#include "workload/clients.h"
#include "workload/schedule.h"

namespace acdn {

struct ScenarioConfig {
  std::uint64_t seed = 42;
  /// First simulated day. April 1, 2015 (a Wednesday) matches the paper.
  Date start_date{2015, 4, 1};

  TopologyConfig topology;
  DeploymentConfig deployment;
  CdnNetworkConfig cdn;
  WorkloadConfig workload;
  ScheduleConfig schedule;
  DnsConfig dns;
  GeolocationConfig geolocation;
  RttConfig rtt;
  TimingConfig timing;
  BeaconConfig beacon;
  DynamicsConfig dynamics;

  /// Fault-injection schedule. Empty by default (no fail point armed);
  /// World's constructor syncs the global FailPointRegistry to this, so
  /// constructing a World fully determines the process's fault state.
  FaultSchedule faults;

  /// Share of a flapping routing unit's daily traffic on the alternate
  /// route.
  double flap_traffic_share = 0.35;
  /// Route-candidate alternatives dynamics may select per unit (beyond
  /// this, BGP candidates are too poor to be realistic next-best picks).
  int max_route_alternatives = 3;

  /// Worker threads for the per-client day loop. Every client draws from
  /// a (seed, day, client)-keyed RNG substream and outputs merge in client
  /// order, so results are byte-identical for any thread count.
  int simulation_threads = 1;

  /// Full-scale scenario matching the paper's world.
  static ScenarioConfig paper_default();
  /// Small world for fast tests (hundreds of clients, fewer sites).
  static ScenarioConfig small_test();

  /// Stable 64-bit FNV-1a digest (hex) over every world-shaping knob, for
  /// the run manifest: two runs with the same digest simulated the same
  /// world modulo seed. `seed` and `simulation_threads` are deliberately
  /// excluded — the seed is recorded separately, and the thread count
  /// cannot change results by the executor's determinism contract.
  [[nodiscard]] std::string digest() const;

  void validate() const;
};

}  // namespace acdn
