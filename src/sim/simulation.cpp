#include "sim/simulation.h"

#include <string>

#include "common/check.h"
#include "common/executor.h"
#include "common/logging.h"
#include "common/metrics.h"

namespace acdn {

namespace {

/// Keyed seed for a (scenario, day, client) substream: every client draws
/// from its own generator, so results do not depend on iteration order or
/// on which thread simulates which client.
std::uint64_t client_day_seed(std::uint64_t scenario_seed, DayIndex day,
                              ClientId client) {
  std::uint64_t x = scenario_seed;
  x ^= (std::uint64_t(day) + 1) * 0x9e3779b97f4a7c15ull;
  x ^= (std::uint64_t(client.value) + 1) * 0xc2b2ae3d27d4eb4full;
  return x;
}

/// Everything one client contributes to one day; filled concurrently,
/// merged in client order.
struct ClientDayOutput {
  bool active = false;
  bool flapping = false;
  /// Beacons executed, counted directly: the dns-log row count is NOT a
  /// proxy — dns/resolve faults suppress rows while the beacon still ran.
  std::uint64_t beacons = 0;
  std::vector<PassiveLogEntry> passive;
  std::vector<DnsLogEntry> dns_log;
  std::vector<HttpLogEntry> http_log;
};

/// Beacon-id bit layout: day-major, client-major, ordinal-minor. The
/// packing is order-preserving in (day, client, ordinal), which the
/// sort-merge join relies on. 20 ordinal bits comfortably hold the
/// heaviest /24's beacon draw; the old 12-bit field silently aliased ids
/// past 4095 beacons per client-day.
constexpr int kBeaconOrdinalBits = 20;
constexpr int kBeaconClientBits = 26;

std::uint64_t pack_beacon_id(DayIndex day, ClientId client, int ordinal) {
  ACDN_CHECK_LT(std::uint64_t(day), std::uint64_t(1) << 16);
  ACDN_CHECK_LT(std::uint64_t(client.value),
                std::uint64_t(1) << kBeaconClientBits);
  ACDN_CHECK_LT(std::uint64_t(ordinal),
                std::uint64_t(1) << kBeaconOrdinalBits);
  return (std::uint64_t(day) << (kBeaconClientBits + kBeaconOrdinalBits)) |
         (std::uint64_t(client.value) << kBeaconOrdinalBits) |
         std::uint64_t(ordinal);
}

}  // namespace

void Simulation::run_days(int n) {
  for (int i = 0; i < n; ++i) run_day();
}

DayStats Simulation::run_day() {
  const PhaseSpan day_phase("sim.day");
  const ScopedTimer day_timer("sim.day_ms");
  std::vector<DnsLogEntry>& dns_log =
      scratch_.buffer<DnsLogEntry>("sim.dns_log");
  std::vector<HttpLogEntry>& http_log =
      scratch_.buffer<HttpLogEntry>("sim.http_log");
  const DayStats stats = kernel_into(dns_log, http_log);
  measurements_.join(dns_log, http_log, world_->config().simulation_threads);
  return stats;
}

DayStats Simulation::run_day_kernel(std::vector<DnsLogEntry>& dns_log,
                                    std::vector<HttpLogEntry>& http_log) {
  const PhaseSpan day_phase("sim.day");
  const ScopedTimer day_timer("sim.day_ms");
  dns_log.clear();
  http_log.clear();
  return kernel_into(dns_log, http_log);
}

DayStats Simulation::kernel_into(std::vector<DnsLogEntry>& dns_log,
                                 std::vector<HttpLogEntry>& http_log) {
  const DayIndex day = next_day_++;
  World& w = *world_;
  // Advance dynamics and resolve every routing unit's route once: the
  // client fan-out below answers anycast_today from the day plan's flat
  // table instead of re-deriving routes per client.
  w.prepare_day(day, w.config().simulation_threads);

  const QuerySchedule& schedule = w.schedule();
  const auto clients = w.clients().clients();
  // Per-client outputs come from the arena: the raw lease keeps each
  // slot's nested vector capacity across days, so only day 0 pays
  // allocation — and the lease guard catches any overlapping acquisition
  // (two kernels can never share this arena). Reset the slots we are
  // about to use in place instead of clear()ing.
  auto outputs_lease =
      scratch_.lease_raw<ClientDayOutput>("sim.outputs");
  std::vector<ClientDayOutput>& outputs = outputs_lease.get();
  if (outputs.size() < clients.size()) outputs.resize(clients.size());
  for (std::size_t i = 0; i < clients.size(); ++i) {
    outputs[i].active = false;
    outputs[i].flapping = false;
    outputs[i].beacons = 0;
    outputs[i].passive.clear();
    outputs[i].dns_log.clear();
    outputs[i].http_log.clear();
  }

  {
  const PhaseSpan clients_phase("clients");
  Executor::global().parallel_for(
      0, clients.size(), w.config().simulation_threads,
      [&](std::size_t i) {
    const Client24& client = clients[i];
    ClientDayOutput& out = outputs[i];
    if (!schedule.is_active(client, day, w.config().seed)) return;
    const double expected =
        schedule.expected_queries_when_active(client, day);
    if (expected <= 0.0) return;

    const World::DayRoute route = w.anycast_today(client);
    if (!route.primary.valid) return;  // unreachable (never in practice)
    out.active = true;
    // Per-(active client, day) expected query volume: the histogram's sum
    // is the day's total production query load.
    metric_observe("sim.client_queries", expected);

    // --- Passive production logs: aggregate counts per front-end.
    if (route.alternate) {
      out.flapping = true;
      const double alt_queries = expected * route.alternate_share;
      out.passive.push_back(PassiveLogEntry{
          client.id, route.primary.front_end, day, expected - alt_queries});
      out.passive.push_back(PassiveLogEntry{
          client.id, route.alternate->front_end, day, alt_queries});
    } else {
      out.passive.push_back(
          PassiveLogEntry{client.id, route.primary.front_end, day, expected});
    }

    // --- Beacon executions on a sampled fraction of page loads.
    Rng rng(client_day_seed(w.config().seed, day, client.id));
    const double beacon_mean = expected * schedule.config().beacon_sampling;
    const int beacons = rng.poisson(beacon_mean);
    out.beacons = std::uint64_t(beacons);
    for (int b = 0; b < beacons; ++b) {
      // Globally unique, coordinate-derived beacon id: no shared counter.
      const std::uint64_t beacon_id = pack_beacon_id(day, client.id, b);
      const SimTime when = schedule.sample_query_time(day, rng);
      const RouteResult& anycast_route =
          (route.alternate && rng.bernoulli(route.alternate_share))
              ? *route.alternate
              : route.primary;
      w.beacon().run_beacon(beacon_id, client, when, anycast_route, rng,
                            out.dns_log, out.http_log);
    }
  });
  }  // close the "clients" phase before merging and joining

  // Merge in client order: byte-identical output for any thread count.
  // The merged vectors (arena-backed in run_day, slot-owned under the
  // pipeline) are sized in one pass up front.
  {
    std::size_t dns_total = 0;
    std::size_t http_total = 0;
    for (std::size_t i = 0; i < clients.size(); ++i) {
      dns_total += outputs[i].dns_log.size();
      http_total += outputs[i].http_log.size();
    }
    dns_log.reserve(dns_total);
    http_log.reserve(http_total);
  }
  DayStats stats;
  stats.day = day;
  std::size_t clients_active = 0;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const ClientDayOutput& out = outputs[i];
    if (!out.active) continue;
    ++clients_active;
    for (const PassiveLogEntry& e : out.passive) passive_.add(e);
    stats.passive_entries += out.passive.size();
    if (out.flapping) ++stats.clients_flapping;
    stats.beacons += out.beacons;
    dns_log.insert(dns_log.end(), out.dns_log.begin(), out.dns_log.end());
    http_log.insert(http_log.end(), out.http_log.begin(),
                    out.http_log.end());
  }
  metric_count("sim.days");
  metric_count("sim.beacons", stats.beacons);
  metric_count("sim.passive_rows", stats.passive_entries);
  metric_count("sim.clients_active", clients_active);
  metric_count("sim.clients_flapping", stats.clients_flapping);

  Log(LogLevel::kInfo) << "day " << day << " ("
                       << to_string(w.calendar().weekday(day)) << "): "
                       << stats.beacons << " beacons, "
                       << stats.passive_entries << " passive rows";
  return stats;
}

}  // namespace acdn
