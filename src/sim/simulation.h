// Multi-day simulation driver.
//
// Each simulated day: interdomain routing evolves (RouteDynamics), every
// client's production queries land on its current anycast front-end
// (passive logs, §3.2.1), a sampled fraction of page loads runs the
// JavaScript beacon (§3.2.2), and at day's end the DNS and HTTP logs are
// joined into the measurement store — the same pipeline the paper's
// backend ran.
#pragma once

#include <vector>

#include "beacon/store.h"
#include "common/arena.h"
#include "sim/world.h"

namespace acdn {

struct DayStats {
  DayIndex day = 0;
  std::size_t beacons = 0;
  std::size_t passive_entries = 0;
  std::size_t clients_flapping = 0;
};

class Simulation {
 public:
  explicit Simulation(World& world) : world_(&world) {}

  /// Runs days [next_day, next_day + n). Days must be run in order.
  void run_days(int n);

  /// Runs exactly one day — kernel plus join — and returns its stats.
  DayStats run_day();

  /// The day's *sequential kernel* only: advances RouteDynamics, runs the
  /// client fan-out and beacon executions, merges per-client outputs (in
  /// client order) into `dns_log`/`http_log` (cleared first), and feeds
  /// the passive log — everything that must stay serial across days
  /// because the route dynamics and RNG streams advance day-by-day. It
  /// does NOT join the logs into the measurement store; the cross-day
  /// pipeline (sim/pipeline.h) runs that analysis tail off this thread
  /// while the next day's kernel executes. run_day() == run_day_kernel()
  /// + measurements().join(...), byte for byte.
  DayStats run_day_kernel(std::vector<DnsLogEntry>& dns_log,
                          std::vector<HttpLogEntry>& http_log);

  [[nodiscard]] DayIndex next_day() const { return next_day_; }
  [[nodiscard]] const MeasurementStore& measurements() const {
    return measurements_;
  }
  /// Mutable store access for the pipeline driver, which joins each day
  /// into a slot-local store and folds the columns back here in day
  /// order (MeasurementStore::put_day).
  [[nodiscard]] MeasurementStore& measurements_mut() { return measurements_; }
  [[nodiscard]] const PassiveLog& passive() const { return passive_; }
  [[nodiscard]] World& world() { return *world_; }

  /// Bytes of reusable day-loop scratch currently retained (this driver's
  /// per-client buffers plus the store's join shards). Warm after the
  /// first day; steady across subsequent days of similar size.
  [[nodiscard]] std::size_t scratch_capacity_bytes() const {
    return scratch_.capacity_bytes() + measurements_.scratch_capacity_bytes();
  }

 private:
  /// Shared kernel body: prepare_day, client fan-out, client-order merge
  /// into the given (cleared) log vectors, passive fold, sim.* metrics.
  DayStats kernel_into(std::vector<DnsLogEntry>& dns_log,
                       std::vector<HttpLogEntry>& http_log);

  World* world_;
  DayIndex next_day_ = 0;
  MeasurementStore measurements_;
  PassiveLog passive_;
  /// Per-day scratch (client outputs, merged log vectors): allocated on
  /// day 0, reused — not reallocated — by every later run_day().
  ScratchArena scratch_;
};

}  // namespace acdn
