#include "sim/world.h"

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/metrics.h"

namespace acdn {

World::World(const ScenarioConfig& config)
    : config_(config), calendar_(config.start_date) {
  config_.validate();
  // Sync the process-wide fail-point registry to this scenario: arming
  // (or disarming, for an empty schedule) here means constructing a World
  // fully determines the fault state any later simulation sees.
  FailPointRegistry::global().arm(config_.faults);
  Rng rng(config_.seed);

  const MetroDatabase& metro_db = MetroDatabase::world();
  graph_ = std::make_unique<AsGraph>(
      build_topology(metro_db, config_.topology, rng));

  PrefixAllocator cdn_addresses = PrefixAllocator::cdn_pool();
  Deployment deployment =
      Deployment::make_default(metro_db, config_.deployment, cdn_addresses);
  cdn_ = std::make_unique<CdnNetwork>(*graph_, std::move(deployment),
                                      config_.cdn, rng);
  router_ = std::make_unique<CdnRouter>(*graph_, *cdn_);

  PrefixAllocator client_addresses = PrefixAllocator::client_pool();
  clients_ = std::make_unique<ClientPopulation>(ClientPopulation::generate(
      *graph_, config_.workload, client_addresses, rng));
  ldns_ = std::make_unique<LdnsPopulation>(LdnsPopulation::build_and_assign(
      *clients_, metro_db, config_.dns, rng));

  geolocation_ = std::make_unique<GeolocationModel>(
      config_.geolocation, rng.fork("geolocation").next_u64());
  rtt_ = std::make_unique<RttModel>(config_.rtt);
  timing_ = std::make_unique<TimingModel>(config_.timing);
  schedule_ = std::make_unique<QuerySchedule>(config_.schedule, calendar_);

  beacon_ = std::make_unique<BeaconSystem>(*router_, metro_db, *clients_,
                                           *ldns_, *geolocation_, *rtt_,
                                           *timing_, config_.beacon);

  dynamics_ = std::make_unique<RouteDynamics>(config_.dynamics, calendar_,
                                              config_.seed);
  plan_ = std::make_unique<DayRoutePlan>(*router_, clients_->clients(),
                                         config_.max_route_alternatives,
                                         config_.flap_traffic_share);
  plan_->register_units(*dynamics_);

  Log(LogLevel::kInfo) << "world: " << graph_->as_count() << " ASes, "
                       << cdn_->deployment().size() << " front-ends, "
                       << clients_->size() << " client /24s, "
                       << ldns_->size() << " resolvers, "
                       << plan_->unit_count() << " routing units";
}

const MetroDatabase& World::metros() const { return MetroDatabase::world(); }

void World::prepare_day(DayIndex day, int threads) {
  dynamics_->advance_to(day);
  plan_->build(*dynamics_, threads);
}

World::DayRoute World::anycast_today(const Client24& client) const {
  if (plan_->current_for(*dynamics_)) {
    return plan_->route_for(client);
  }
  // A caller advanced dynamics without prepare_day (ad-hoc probes, tests
  // that step dynamics by hand): answer from the uncached reference path,
  // which needs no plan state and is safe from any thread.
  metric_count("route_plan.stale_lookups");
  return plan_->resolve_reference(client, *dynamics_);
}

}  // namespace acdn
