#include "sim/world.h"

#include <algorithm>
#include <set>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/metrics.h"

namespace acdn {

World::World(const ScenarioConfig& config)
    : config_(config), calendar_(config.start_date) {
  config_.validate();
  // Sync the process-wide fail-point registry to this scenario: arming
  // (or disarming, for an empty schedule) here means constructing a World
  // fully determines the fault state any later simulation sees.
  FailPointRegistry::global().arm(config_.faults);
  Rng rng(config_.seed);

  const MetroDatabase& metro_db = MetroDatabase::world();
  graph_ = std::make_unique<AsGraph>(
      build_topology(metro_db, config_.topology, rng));

  PrefixAllocator cdn_addresses = PrefixAllocator::cdn_pool();
  Deployment deployment =
      Deployment::make_default(metro_db, config_.deployment, cdn_addresses);
  cdn_ = std::make_unique<CdnNetwork>(*graph_, std::move(deployment),
                                      config_.cdn, rng);
  router_ = std::make_unique<CdnRouter>(*graph_, *cdn_);

  PrefixAllocator client_addresses = PrefixAllocator::client_pool();
  clients_ = std::make_unique<ClientPopulation>(ClientPopulation::generate(
      *graph_, config_.workload, client_addresses, rng));
  ldns_ = std::make_unique<LdnsPopulation>(LdnsPopulation::build_and_assign(
      *clients_, metro_db, config_.dns, rng));

  geolocation_ = std::make_unique<GeolocationModel>(
      config_.geolocation, rng.fork("geolocation").next_u64());
  rtt_ = std::make_unique<RttModel>(config_.rtt);
  timing_ = std::make_unique<TimingModel>(config_.timing);
  schedule_ = std::make_unique<QuerySchedule>(config_.schedule, calendar_);

  beacon_ = std::make_unique<BeaconSystem>(*router_, metro_db, *clients_,
                                           *ldns_, *geolocation_, *rtt_,
                                           *timing_, config_.beacon);

  dynamics_ = std::make_unique<RouteDynamics>(config_.dynamics, calendar_,
                                              config_.seed);
  std::set<std::pair<AsId, MetroId>> units;
  for (const Client24& c : clients_->clients()) {
    units.emplace(c.access_as, c.metro);
  }
  for (const auto& [as, metro] : units) {
    const std::size_t candidates = std::min<std::size_t>(
        router_->anycast_candidate_count(as),
        static_cast<std::size_t>(config_.max_route_alternatives));
    dynamics_->register_unit(RoutingUnit{as, metro}, candidates);
  }

  Log(LogLevel::kInfo) << "world: " << graph_->as_count() << " ASes, "
                       << cdn_->deployment().size() << " front-ends, "
                       << clients_->size() << " client /24s, "
                       << ldns_->size() << " resolvers";
}

const MetroDatabase& World::metros() const { return MetroDatabase::world(); }

World::DayRoute World::anycast_today(const Client24& client) const {
  const RoutingUnit unit{client.access_as, client.metro};
  const std::size_t selected = dynamics_->selected_candidate(unit);
  const DayIndex day = dynamics_->current_day();
  DayRoute route;
  route.primary = router_->route_anycast(client.access_as, client.metro,
                                         selected);

  // Front-end outage ("cdn/front_end"): when the primary's site is down
  // today, its anycast announcement is gone and BGP converges on the next
  // candidate whose site is up — graceful degradation, not lost traffic.
  if (fail_points_armed() && route.primary.valid &&
      !cdn_->deployment().site_up(route.primary.front_end, day)) {
    const std::size_t n =
        router_->anycast_candidate_count(client.access_as);
    bool rerouted = false;
    for (std::size_t k = 1; k < n && !rerouted; ++k) {
      const RouteResult fallback = router_->route_anycast(
          client.access_as, client.metro, (selected + k) % n);
      if (fallback.valid &&
          cdn_->deployment().site_up(fallback.front_end, day)) {
        route.primary = fallback;
        rerouted = true;
      }
    }
    if (rerouted) {
      metric_count("fault.frontend_reroutes");
    } else {
      // Every candidate is down: anycast still answers somewhere, so the
      // primary serves (degraded) rather than blackholing the client.
      metric_count("fault.frontend_no_failover");
    }
  }

  if (const auto alt = dynamics_->flap_alternate(unit)) {
    const RouteResult alternate =
        router_->route_anycast(client.access_as, client.metro, *alt);
    if (alternate.valid && alternate.front_end != route.primary.front_end &&
        (!fail_points_armed() ||
         cdn_->deployment().site_up(alternate.front_end, day))) {
      route.alternate = alternate;
      route.alternate_share = config_.flap_traffic_share;
    }
  }
  return route;
}

}  // namespace acdn
