// The assembled world: topology, CDN, routing, clients, DNS, beacon.
//
// Construction is deterministic in the scenario (same config + seed =>
// identical world and identical simulation output). World is the long-
// lived owner of every subsystem; Simulation (sim/simulation.h) drives it
// day by day.
#pragma once

#include <memory>
#include <optional>

#include "beacon/beacon.h"
#include "cdn/day_plan.h"
#include "cdn/router.h"
#include "dns/ldns.h"
#include "routing/dynamics.h"
#include "sim/scenario.h"

namespace acdn {

class World {
 public:
  explicit World(const ScenarioConfig& config);

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  [[nodiscard]] const ScenarioConfig& config() const { return config_; }
  [[nodiscard]] const SimCalendar& calendar() const { return calendar_; }
  [[nodiscard]] const MetroDatabase& metros() const;
  [[nodiscard]] const AsGraph& graph() const { return *graph_; }
  [[nodiscard]] const CdnNetwork& cdn() const { return *cdn_; }
  [[nodiscard]] const CdnRouter& router() const { return *router_; }
  [[nodiscard]] const ClientPopulation& clients() const { return *clients_; }
  [[nodiscard]] const LdnsPopulation& ldns() const { return *ldns_; }
  [[nodiscard]] const GeolocationModel& geolocation() const {
    return *geolocation_;
  }
  [[nodiscard]] const RttModel& rtt() const { return *rtt_; }
  [[nodiscard]] const TimingModel& timing() const { return *timing_; }
  [[nodiscard]] const QuerySchedule& schedule() const { return *schedule_; }
  [[nodiscard]] BeaconSystem& beacon() { return *beacon_; }
  [[nodiscard]] const BeaconSystem& beacon() const { return *beacon_; }
  [[nodiscard]] RouteDynamics& dynamics() { return *dynamics_; }
  [[nodiscard]] const RouteDynamics& dynamics() const { return *dynamics_; }

  /// Independent RNG substream derived from the scenario seed.
  [[nodiscard]] Rng fork_rng(std::string_view label) const {
    return Rng(config_.seed).fork(label);
  }

  /// A client's anycast routing for the dynamics' current day (the
  /// struct now lives in cdn/day_plan.h; this alias keeps call sites
  /// spelled World::DayRoute working).
  using DayRoute = acdn::DayRoute;

  /// Advances route dynamics to `day` and rebuilds the day-route plan so
  /// anycast_today answers from the per-unit table. The day driver
  /// (Simulation::run_day) calls this once per day before fanning out.
  void prepare_day(DayIndex day, int threads);

  /// O(1) when the plan is current (prepare_day ran for the dynamics'
  /// present state); otherwise falls back to uncached per-client
  /// resolution and counts route_plan.stale_lookups.
  [[nodiscard]] DayRoute anycast_today(const Client24& client) const;

  [[nodiscard]] const DayRoutePlan& day_plan() const { return *plan_; }
  [[nodiscard]] DayRoutePlan& day_plan() { return *plan_; }

 private:
  ScenarioConfig config_;
  SimCalendar calendar_;
  std::unique_ptr<AsGraph> graph_;
  std::unique_ptr<CdnNetwork> cdn_;
  std::unique_ptr<CdnRouter> router_;
  std::unique_ptr<ClientPopulation> clients_;
  std::unique_ptr<LdnsPopulation> ldns_;
  std::unique_ptr<GeolocationModel> geolocation_;
  std::unique_ptr<RttModel> rtt_;
  std::unique_ptr<TimingModel> timing_;
  std::unique_ptr<QuerySchedule> schedule_;
  std::unique_ptr<BeaconSystem> beacon_;
  std::unique_ptr<RouteDynamics> dynamics_;
  std::unique_ptr<DayRoutePlan> plan_;
};

}  // namespace acdn
