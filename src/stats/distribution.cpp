#include "stats/distribution.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace acdn {

void DistributionBuilder::add(double value, double weight) {
  require(weight >= 0.0, "distribution weight must be non-negative");
  samples_.push_back({value, weight});
  sorted_ = false;
}

void DistributionBuilder::add_all(std::span<const double> values) {
  samples_.reserve(samples_.size() + values.size());
  for (double v : values) samples_.push_back({v, 1.0});
  sorted_ = false;
}

void DistributionBuilder::merge(DistributionBuilder&& other) {
  if (samples_.empty()) {
    samples_ = std::move(other.samples_);
  } else {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
  }
  sorted_ = false;
  other.samples_.clear();
  other.sorted_ = false;
}

void DistributionBuilder::ensure_sorted() const {
  if (sorted_) return;
  std::sort(samples_.begin(), samples_.end(),
            [](const Sample& a, const Sample& b) { return a.value < b.value; });
  sorted_ = true;
}

double DistributionBuilder::total_weight() const {
  double total = 0.0;
  for (const Sample& s : samples_) total += s.weight;
  return total;
}

std::vector<DistPoint> DistributionBuilder::cdf() const {
  require(!samples_.empty(), "cdf of empty distribution");
  ensure_sorted();
  const double total = total_weight();
  require(total > 0.0, "cdf needs positive total weight");
  std::vector<DistPoint> out;
  double cum = 0.0;
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    cum += samples_[i].weight;
    // Emit one point per distinct value (the last occurrence).
    if (i + 1 == samples_.size() ||
        samples_[i + 1].value != samples_[i].value) {
      out.push_back({samples_[i].value, cum / total});
    }
  }
  return out;
}

std::vector<DistPoint> DistributionBuilder::ccdf() const {
  std::vector<DistPoint> points = cdf();
  for (DistPoint& p : points) p.y = 1.0 - p.y;
  return points;
}

std::vector<DistPoint> DistributionBuilder::cdf_at(
    std::span<const double> xs) const {
  std::vector<DistPoint> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back({x, fraction_at_most(x)});
  return out;
}

std::vector<DistPoint> DistributionBuilder::ccdf_at(
    std::span<const double> xs) const {
  std::vector<DistPoint> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back({x, 1.0 - fraction_at_most(x)});
  return out;
}

double DistributionBuilder::fraction_at_most(double x) const {
  require(!samples_.empty(), "fraction_at_most of empty distribution");
  ensure_sorted();
  const double total = total_weight();
  require(total > 0.0, "distribution needs positive total weight");
  double cum = 0.0;
  for (const Sample& s : samples_) {
    if (s.value > x) break;
    cum += s.weight;
  }
  return cum / total;
}

double DistributionBuilder::fraction_at_least(double x) const {
  require(!samples_.empty(), "fraction_at_least of empty distribution");
  ensure_sorted();
  const double total = total_weight();
  require(total > 0.0, "distribution needs positive total weight");
  double cum = 0.0;
  for (auto it = samples_.rbegin(); it != samples_.rend(); ++it) {
    if (it->value < x) break;
    cum += it->weight;
  }
  return cum / total;
}

double DistributionBuilder::quantile(double q) const {
  require(!samples_.empty(), "quantile of empty distribution");
  require(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  ensure_sorted();
  const double total = total_weight();
  require(total > 0.0, "distribution needs positive total weight");
  const double target = q * total;
  double cum = 0.0;
  for (const Sample& s : samples_) {
    cum += s.weight;
    if (cum >= target) return s.value;
  }
  return samples_.back().value;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0.0) {
  require(hi > lo, "histogram needs hi > lo");
  require(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double value, double weight) {
  const double span = hi_ - lo_;
  auto bin = static_cast<long>(
      std::floor((value - lo_) / span * static_cast<double>(counts_.size())));
  bin = std::clamp<long>(bin, 0, static_cast<long>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(bin)] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

void RunningStats::add(double value) {
  if (n_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++n_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (value - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace acdn
