// Empirical distribution builders: CDF/CCDF series and histograms.
//
// Every figure in the paper is a CDF or CCDF over some population ( /24s,
// requests, front-end changes), often weighted by query volume. These
// builders turn raw (value, weight) samples into plot-ready (x, y) series.
#pragma once

#include <span>
#include <vector>

namespace acdn {

/// One point of an empirical distribution function.
struct DistPoint {
  double x = 0.0;
  double y = 0.0;  // cumulative fraction in [0, 1]
};

/// Collects weighted samples and renders CDF / CCDF series.
class DistributionBuilder {
 public:
  void add(double value, double weight = 1.0);
  void add_all(std::span<const double> values);

  /// Appends another builder's samples in their insertion order — the
  /// combine step of deterministic sharded reductions: folding shards in
  /// chunk order reproduces the serial insertion sequence exactly.
  void merge(DistributionBuilder&& other);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double total_weight() const;

  /// Full empirical CDF: one point per distinct sample value, y = fraction
  /// of weight with value <= x.
  [[nodiscard]] std::vector<DistPoint> cdf() const;

  /// CCDF: y = fraction of weight with value > x.
  [[nodiscard]] std::vector<DistPoint> ccdf() const;

  /// CDF evaluated at caller-chosen x positions (for fixed figure axes).
  [[nodiscard]] std::vector<DistPoint> cdf_at(std::span<const double> xs) const;
  [[nodiscard]] std::vector<DistPoint> ccdf_at(std::span<const double> xs) const;

  /// Fraction of weight with value <= x.
  [[nodiscard]] double fraction_at_most(double x) const;
  /// Fraction of weight with value >= x.
  [[nodiscard]] double fraction_at_least(double x) const;

  /// Weighted quantile of the collected samples.
  [[nodiscard]] double quantile(double q) const;

 private:
  struct Sample {
    double value;
    double weight;
  };
  // Sorted lazily; mutable so const accessors can sort once.
  mutable std::vector<Sample> samples_;
  mutable bool sorted_ = false;

  void ensure_sorted() const;
};

/// Fixed-bin histogram over [lo, hi) with out-of-range samples clamped to
/// the edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value, double weight = 1.0);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  [[nodiscard]] double count(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double total() const { return total_; }

 private:
  double lo_;
  double hi_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double value);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const;  // sample variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace acdn
