#include "stats/p2.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace acdn {

P2Quantile::P2Quantile(double q) : q_(q) {
  require(q > 0.0 && q < 1.0, "P2Quantile requires q in (0,1)");
  desired_ = {1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0};
  increments_ = {0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0};
}

void P2Quantile::add(double sample) {
  if (count_ < 5) {
    add_initial(sample);
  } else {
    add_steady(sample);
  }
  ++count_;
}

void P2Quantile::add_initial(double sample) {
  heights_[count_] = sample;
  if (count_ == 4) {
    std::sort(heights_.begin(), heights_.end());
    for (int i = 0; i < 5; ++i) positions_[i] = i + 1;
  }
}

void P2Quantile::add_steady(double sample) {
  int k = 0;
  if (sample < heights_[0]) {
    heights_[0] = sample;
    k = 0;
  } else if (sample >= heights_[4]) {
    heights_[4] = sample;
    k = 3;
  } else {
    for (int i = 1; i < 5; ++i) {
      if (sample < heights_[i]) {
        k = i - 1;
        break;
      }
    }
  }

  for (int i = k + 1; i < 5; ++i) ++positions_[i];
  for (int i = 0; i < 5; ++i) {
    desired_[i] += increments_[i];
  }

  // Adjust interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    if ((d >= 1.0 && positions_[i + 1] - positions_[i] > 1) ||
        (d <= -1.0 && positions_[i - 1] - positions_[i] < -1)) {
      const int dir = d >= 0 ? 1 : -1;
      const double candidate = parabolic(i, dir);
      if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
        heights_[i] = candidate;
      } else {
        heights_[i] = linear(i, dir);
      }
      positions_[i] += dir;
    }
  }
}

double P2Quantile::parabolic(int i, int d) const {
  const double np = positions_[i + 1];
  const double nm = positions_[i - 1];
  const double n = positions_[i];
  const double qp = heights_[i + 1];
  const double qm = heights_[i - 1];
  const double q = heights_[i];
  return q + d / (np - nm) *
                 ((n - nm + d) * (qp - q) / (np - n) +
                  (np - n - d) * (q - qm) / (n - nm));
}

double P2Quantile::linear(int i, int d) const {
  return heights_[i] +
         d * (heights_[i + d] - heights_[i]) /
             (positions_[i + d] - positions_[i]);
}

double P2Quantile::value() const {
  require(count_ > 0, "P2Quantile::value with no samples");
  if (count_ >= 5) return heights_[2];
  std::array<double, 5> sorted = heights_;
  // count_ < 5 here; a bounded insertion sort instead of std::sort, whose
  // inlined introsort trips GCC's array-bounds analysis on tiny arrays.
  for (std::size_t i = 1; i < count_; ++i) {
    const double v = sorted[i];
    std::size_t j = i;
    for (; j > 0 && sorted[j - 1] > v; --j) sorted[j] = sorted[j - 1];
    sorted[j] = v;
  }
  const double pos = q_ * static_cast<double>(count_ - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, count_ - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace acdn
