// P² (piecewise-parabolic) streaming quantile estimator (Jain & Chlamtac,
// CACM 1985). Estimates a single quantile in O(1) memory without storing
// samples. Used by the measurement backend to track per-front-end latency
// percentiles over high-volume streams where storing every sample per
// (group, front-end) pair would be wasteful.
#pragma once

#include <array>
#include <cstddef>

namespace acdn {

class P2Quantile {
 public:
  /// `q` in (0, 1): the quantile to track (e.g. 0.25 for the paper's
  /// prediction metric).
  explicit P2Quantile(double q);

  void add(double sample);

  /// Current estimate. With fewer than 5 samples, returns the exact
  /// quantile over the samples seen. Requires count() > 0.
  [[nodiscard]] double value() const;

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double quantile_tracked() const { return q_; }

 private:
  void add_initial(double sample);
  void add_steady(double sample);
  [[nodiscard]] double parabolic(int i, int d) const;
  [[nodiscard]] double linear(int i, int d) const;

  double q_;
  std::size_t count_ = 0;
  std::array<double, 5> heights_{};   // marker heights
  std::array<int, 5> positions_{};    // actual marker positions (1-based)
  std::array<double, 5> desired_{};   // desired marker positions
  std::array<double, 5> increments_{};
};

}  // namespace acdn
