#include "stats/quantile.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace acdn {

namespace {

double quantile_sorted(std::span<const double> sorted, double q) {
  const std::size_t n = sorted.size();
  if (n == 1) return sorted[0];
  const double pos = q * static_cast<double>(n - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = std::min(lo + 1, n - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

double quantile(std::span<const double> values, double q) {
  require(!values.empty(), "quantile of empty sample");
  require(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return quantile_sorted(sorted, q);
}

std::vector<double> quantiles(std::span<const double> values,
                              std::span<const double> qs) {
  require(!values.empty(), "quantiles of empty sample");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) {
    require(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
    out.push_back(quantile_sorted(sorted, q));
  }
  return out;
}

double weighted_quantile(std::span<const double> values,
                         std::span<const double> weights, double q) {
  require(values.size() == weights.size(),
          "weighted_quantile size mismatch");
  require(!values.empty(), "weighted_quantile of empty sample");
  require(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");

  std::vector<std::size_t> order(values.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return values[a] < values[b];
  });

  double total = 0.0;
  for (double w : weights) {
    require(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  require(total > 0.0, "weighted_quantile needs positive total weight");

  const double target = q * total;
  double cum = 0.0;
  for (std::size_t idx : order) {
    cum += weights[idx];
    if (cum >= target) return values[idx];
  }
  return values[order.back()];
}

double mean(std::span<const double> values) {
  require(!values.empty(), "mean of empty sample");
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double ss = 0.0;
  for (double v : values) ss += (v - m) * (v - m);
  return std::sqrt(ss / static_cast<double>(values.size() - 1));
}

double coefficient_of_variation(std::span<const double> values) {
  const double m = mean(values);
  require(m != 0.0, "coefficient of variation undefined for zero mean");
  return stddev(values) / m;
}

}  // namespace acdn
