// Exact quantiles over in-memory samples, unweighted and weighted.
//
// The prediction scheme (§6) keys on the 25th-percentile and median latency
// of a client group's measurements; the evaluation compares 50th/75th
// percentiles; figure series are CDFs over (optionally query-volume
// weighted) /24s. All of that funnels through these functions.
#pragma once

#include <span>
#include <vector>

namespace acdn {

/// Quantile q in [0, 1] of `values` with linear interpolation between order
/// statistics (type-7, the numpy/R default). Requires non-empty input.
[[nodiscard]] double quantile(std::span<const double> values, double q);

/// Convenience for several quantiles over one sort of the data.
[[nodiscard]] std::vector<double> quantiles(std::span<const double> values,
                                            std::span<const double> qs);

/// Weighted quantile: the smallest value v such that the cumulative weight
/// of samples <= v reaches q * total_weight. Weights must be non-negative
/// with positive total. values and weights must have equal length.
[[nodiscard]] double weighted_quantile(std::span<const double> values,
                                       std::span<const double> weights,
                                       double q);

[[nodiscard]] inline double median(std::span<const double> values) {
  return quantile(values, 0.5);
}

/// Arithmetic mean; requires non-empty input.
[[nodiscard]] double mean(std::span<const double> values);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
[[nodiscard]] double stddev(std::span<const double> values);

/// Coefficient of variation: stddev/mean. The paper picked the 25th
/// percentile as its prediction metric because its CoV across days was low.
[[nodiscard]] double coefficient_of_variation(std::span<const double> values);

}  // namespace acdn
