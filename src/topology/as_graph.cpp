#include "topology/as_graph.h"

#include <algorithm>
#include <utility>

#include "common/error.h"

namespace acdn {

const char* to_string(AsType t) {
  switch (t) {
    case AsType::kTier1:   return "tier1";
    case AsType::kTransit: return "transit";
    case AsType::kAccess:  return "access";
    case AsType::kCdn:     return "cdn";
  }
  return "?";
}

bool AsNode::present_in(MetroId m) const {
  return std::find(presence.begin(), presence.end(), m) != presence.end();
}

AsId AsGraph::add_as(AsNode node) {
  require(!node.presence.empty(), "AS must be present in at least one metro");
  const AsId id(static_cast<std::uint32_t>(nodes_.size()));
  node.id = id;
  nodes_.push_back(std::move(node));
  adjacency_.emplace_back();
  return id;
}

std::size_t AsGraph::add_link(AsLink link) {
  require(link.a != link.b, "self-link");
  require(!link.metros.empty(), "link needs at least one peering metro");
  const AsNode& na = as_node(link.a);
  const AsNode& nb = as_node(link.b);
  for (MetroId m : link.metros) {
    require(na.present_in(m) && nb.present_in(m),
            "both ASes must be present in every peering metro (" +
                na.name + " -- " + nb.name + " at " +
                metros_->metro(m).name + ")");
  }
  const std::size_t index = links_.size();

  const bool c2p = link.rel == Relationship::kCustomerToProvider;
  adjacency_[link.a.value].push_back(Neighbor{
      link.b, c2p ? Neighbor::Kind::kProvider : Neighbor::Kind::kPeer,
      index});
  adjacency_[link.b.value].push_back(Neighbor{
      link.a, c2p ? Neighbor::Kind::kCustomer : Neighbor::Kind::kPeer,
      index});
  links_.push_back(std::move(link));
  return index;
}

const AsNode& AsGraph::as_node(AsId id) const {
  if (!id.valid() || id.value >= nodes_.size()) {
    throw NotFoundError("AS id " + std::to_string(id.value));
  }
  return nodes_[id.value];
}

AsNode& AsGraph::as_node(AsId id) {
  return const_cast<AsNode&>(std::as_const(*this).as_node(id));
}

const AsLink& AsGraph::link(std::size_t index) const {
  require(index < links_.size(), "link index out of range");
  return links_[index];
}

std::span<const Neighbor> AsGraph::neighbors(AsId id) const {
  [[maybe_unused]] const AsNode& checked = as_node(id);  // bounds check
  return adjacency_[id.value];
}

std::vector<MetroId> AsGraph::peering_metros(AsId a, AsId b) const {
  for (const Neighbor& n : neighbors(a)) {
    if (n.as == b) return links_[n.link_index].metros;
  }
  return {};
}

std::vector<AsId> AsGraph::access_ases_in(MetroId metro) const {
  std::vector<AsId> out;
  for (const AsNode& node : nodes_) {
    if (node.type == AsType::kAccess && node.present_in(metro)) {
      out.push_back(node.id);
    }
  }
  return out;
}

std::vector<AsId> AsGraph::ases_of_type(AsType t) const {
  std::vector<AsId> out;
  for (const AsNode& node : nodes_) {
    if (node.type == t) out.push_back(node.id);
  }
  return out;
}

Kilometers AsGraph::intra_as_distance_km(AsId as_id, MetroId from,
                                         MetroId to) const {
  if (from == to) return 0.0;
  const AsNode& node = as_node(as_id);
  const Kilometers geo = metros_->distance_km(from, to);
  // Deterministic per-(AS, metro pair) unevenness in [0.95, 1.25): real
  // backbones are not uniformly stretched. Symmetric in (from, to).
  const std::uint64_t lo = std::min(from.value, to.value);
  const std::uint64_t hi = std::max(from.value, to.value);
  std::uint64_t h = (std::uint64_t(as_id.value) << 40) ^ (lo << 20) ^ hi;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  const double uneven = 0.95 + 0.30 * double(h % 1024) / 1024.0;
  return geo * node.backbone_stretch * uneven;
}

MetroId AsGraph::nearest_by_igp(AsId as_id, MetroId from,
                                std::span<const MetroId> candidates) const {
  require(!candidates.empty(), "nearest_by_igp with no candidates");
  MetroId best = candidates.front();
  Kilometers best_d = intra_as_distance_km(as_id, from, best);
  for (MetroId c : candidates.subspan(1)) {
    const Kilometers d = intra_as_distance_km(as_id, from, c);
    if (d < best_d) {
      best = c;
      best_d = d;
    }
  }
  return best;
}

}  // namespace acdn
