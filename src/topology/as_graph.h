// Autonomous-system graph: ASes with metro-level points of presence, and
// inter-AS links (customer-provider or settlement-free peering) pinned to
// the metros where the two networks interconnect.
//
// This is the substrate on which BGP-lite (src/routing) computes anycast
// catchments. Metro-level peering locations matter because the paper's
// anycast pathologies are geographic: an ISP that hands traffic to the CDN
// at a distant peering point (Moscow -> Stockholm, §5) produces a poor
// front-end even though the AS-level path looks fine.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"
#include "geo/geo_point.h"
#include "geo/metro.h"

namespace acdn {

enum class AsType {
  kTier1,    // global transit-free backbone
  kTransit,  // regional transit provider
  kAccess,   // eyeball ISP hosting clients
  kCdn,      // the content delivery network under study
};

[[nodiscard]] const char* to_string(AsType t);

/// Business relationship on a link, from the perspective of `a`:
/// kCustomerToProvider means `a` buys transit from `b`.
enum class Relationship { kCustomerToProvider, kPeerToPeer };

struct AsNode {
  AsId id;
  std::uint32_t asn = 0;
  std::string name;
  AsType type = AsType::kAccess;
  Region home_region = Region::kNorthAmerica;
  /// Metros where this AS has a point of presence.
  std::vector<MetroId> presence;
  /// Intra-AS path stretch over the geodesic between two PoPs (fiber does
  /// not follow great circles; larger values model sparse backbones).
  double backbone_stretch = 1.3;
  /// If true, this ISP does not hand off traffic at the nearest peering
  /// point (hot potato) but carries it to one of `preferred_handoffs` —
  /// the "remote peering" pathology from §5 of the paper.
  bool remote_peering_policy = false;
  std::vector<MetroId> preferred_handoffs;

  [[nodiscard]] bool present_in(MetroId m) const;
};

struct AsLink {
  AsId a;
  AsId b;
  Relationship rel = Relationship::kPeerToPeer;
  /// Metros where the two ASes interconnect (both must be present there).
  std::vector<MetroId> metros;
};

/// A neighbor as seen from one side of a link.
struct Neighbor {
  AsId as;
  /// Relationship of *neighbor* to the querying AS:
  ///   kCustomer: neighbor buys from us; kProvider: we buy from neighbor.
  enum class Kind { kCustomer, kProvider, kPeer } kind = Kind::kPeer;
  std::size_t link_index = 0;
};

class AsGraph {
 public:
  explicit AsGraph(const MetroDatabase& metros) : metros_(&metros) {}

  /// Adds an AS; the node's id is assigned by the graph. Returns the id.
  AsId add_as(AsNode node);

  /// Adds a link. Peering metros must be non-empty and both ASes must be
  /// present in each peering metro (validated). Returns the link index.
  std::size_t add_link(AsLink link);

  [[nodiscard]] std::size_t as_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] const AsNode& as_node(AsId id) const;
  [[nodiscard]] AsNode& as_node(AsId id);
  [[nodiscard]] std::span<const AsNode> all_as() const { return nodes_; }
  [[nodiscard]] const AsLink& link(std::size_t index) const;
  [[nodiscard]] std::span<const Neighbor> neighbors(AsId id) const;

  /// Metros where `a` and `b` interconnect (empty if not adjacent).
  [[nodiscard]] std::vector<MetroId> peering_metros(AsId a, AsId b) const;

  /// Access ISPs with a PoP in `metro`.
  [[nodiscard]] std::vector<AsId> access_ases_in(MetroId metro) const;

  /// All ASes of a given type.
  [[nodiscard]] std::vector<AsId> ases_of_type(AsType t) const;

  [[nodiscard]] const MetroDatabase& metros() const { return *metros_; }

  /// Intra-AS distance between two PoP metros of `as_id`: geodesic times
  /// the AS's backbone stretch, with a small deterministic per-pair factor
  /// modelling real backbones' unevenness.
  [[nodiscard]] Kilometers intra_as_distance_km(AsId as_id, MetroId from,
                                                MetroId to) const;

  /// Among `candidates`, the metro with the lowest intra-AS distance from
  /// `from`. Requires non-empty candidates.
  [[nodiscard]] MetroId nearest_by_igp(AsId as_id, MetroId from,
                                       std::span<const MetroId> candidates)
      const;

 private:
  const MetroDatabase* metros_;
  std::vector<AsNode> nodes_;
  std::vector<AsLink> links_;
  std::vector<std::vector<Neighbor>> adjacency_;
};

}  // namespace acdn
