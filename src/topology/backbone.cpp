#include "topology/backbone.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>

#include "common/error.h"

namespace acdn {

void BackboneGraph::add_link(const MetroDatabase& metros, MetroId a,
                             MetroId b, double fiber_factor) {
  if (a == b) return;
  // De-duplicate.
  for (const BackboneLink& l : links_) {
    if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) return;
  }
  const Kilometers km = metros.distance_km(a, b) * fiber_factor;
  links_.push_back(BackboneLink{a, b, km});
  adjacency_[index_[a]].emplace_back(index_[b], km);
  adjacency_[index_[b]].emplace_back(index_[a], km);
}

BackboneGraph BackboneGraph::build(const MetroDatabase& metros,
                                   std::vector<MetroId> pops,
                                   const BackboneConfig& config, Rng& rng) {
  require(!pops.empty(), "backbone needs at least one PoP");
  require(config.nearest_links >= 1, "nearest_links must be positive");
  std::sort(pops.begin(), pops.end());
  pops.erase(std::unique(pops.begin(), pops.end()), pops.end());

  BackboneGraph g;
  g.pops_ = pops;
  g.adjacency_.resize(pops.size());
  for (std::size_t i = 0; i < pops.size(); ++i) g.index_[pops[i]] = i;

  Rng gen = rng.fork("backbone");
  auto factor = [&] {
    return gen.uniform(config.fiber_factor_min, config.fiber_factor_max);
  };

  // k-nearest neighbor links.
  for (MetroId a : pops) {
    std::vector<std::pair<Kilometers, MetroId>> by_distance;
    for (MetroId b : pops) {
      if (b != a) by_distance.emplace_back(metros.distance_km(a, b), b);
    }
    std::sort(by_distance.begin(), by_distance.end());
    const int n = std::min<int>(config.nearest_links,
                                static_cast<int>(by_distance.size()));
    for (int k = 0; k < n; ++k) {
      g.add_link(metros, a, by_distance[static_cast<std::size_t>(k)].second,
                 factor());
    }
  }

  // Express links between the most populous PoP of each region pair.
  if (config.interconnect_region_hubs) {
    std::map<Region, MetroId> hub;
    for (MetroId pop : pops) {
      const Metro& m = metros.metro(pop);
      auto it = hub.find(m.region);
      if (it == hub.end() ||
          metros.metro(it->second).population_millions <
              m.population_millions) {
        hub[m.region] = pop;
      }
    }
    for (auto i = hub.begin(); i != hub.end(); ++i) {
      for (auto j = std::next(i); j != hub.end(); ++j) {
        g.add_link(metros, i->second, j->second, factor());
      }
    }
  }

  // Connectivity repair: link components by their closest PoP pair.
  while (true) {
    // Union-find-lite via BFS from PoP 0.
    std::vector<bool> reached(pops.size(), false);
    std::queue<std::size_t> queue;
    queue.push(0);
    reached[0] = true;
    while (!queue.empty()) {
      const std::size_t u = queue.front();
      queue.pop();
      for (const auto& [v, km] : g.adjacency_[u]) {
        if (!reached[v]) {
          reached[v] = true;
          queue.push(v);
        }
      }
    }
    std::size_t best_u = 0, best_v = 0;
    Kilometers best = kUnreachable;
    for (std::size_t u = 0; u < pops.size(); ++u) {
      if (!reached[u]) continue;
      for (std::size_t v = 0; v < pops.size(); ++v) {
        if (reached[v]) continue;
        const Kilometers km = metros.distance_km(pops[u], pops[v]);
        if (km < best) {
          best = km;
          best_u = u;
          best_v = v;
        }
      }
    }
    if (best == kUnreachable) break;  // connected
    g.add_link(metros, pops[best_u], pops[best_v], factor());
  }

  g.run_all_pairs();
  return g;
}

void BackboneGraph::run_all_pairs() {
  const std::size_t n = pops_.size();
  dist_.assign(n, std::vector<Kilometers>(n, kUnreachable));
  next_.assign(n, std::vector<std::size_t>(n, n));

  // Dijkstra from every source (n is small).
  using Entry = std::pair<Kilometers, std::size_t>;
  for (std::size_t src = 0; src < n; ++src) {
    std::vector<std::size_t> parent(n, n);
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    dist_[src][src] = 0.0;
    heap.emplace(0.0, src);
    while (!heap.empty()) {
      const auto [d, u] = heap.top();
      heap.pop();
      if (d > dist_[src][u]) continue;
      for (const auto& [v, km] : adjacency_[u]) {
        if (dist_[src][u] + km < dist_[src][v]) {
          dist_[src][v] = dist_[src][u] + km;
          parent[v] = u;
          heap.emplace(dist_[src][v], v);
        }
      }
    }
    // First hop from src toward every destination (for path()).
    for (std::size_t dst = 0; dst < n; ++dst) {
      if (dst == src || dist_[src][dst] == kUnreachable) continue;
      std::size_t step = dst;
      while (parent[step] != src) step = parent[step];
      next_[src][dst] = step;
    }
  }
}

Kilometers BackboneGraph::distance_km(MetroId from, MetroId to) const {
  const auto fi = index_.find(from);
  const auto ti = index_.find(to);
  if (fi == index_.end() || ti == index_.end()) return kUnreachable;
  return dist_[fi->second][ti->second];
}

std::vector<MetroId> BackboneGraph::path(MetroId from, MetroId to) const {
  std::vector<MetroId> out;
  const auto fi = index_.find(from);
  const auto ti = index_.find(to);
  if (fi == index_.end() || ti == index_.end()) return out;
  std::size_t u = fi->second;
  const std::size_t dst = ti->second;
  out.push_back(from);
  while (u != dst) {
    u = next_[u][dst];
    if (u >= pops_.size()) return {};  // unreachable
    out.push_back(pops_[u]);
  }
  return out;
}

}  // namespace acdn
