// Explicit backbone graph with shortest-path (IGP) costs.
//
// Real WANs are sparse graphs, not geodesic cliques: traffic between two
// PoPs rides fiber through intermediate PoPs, so IGP distance can differ
// substantially from the great circle — the root of the paper's
// "BGP's lack of insight into the underlying topology" case study (§5),
// where two ingress routers equidistant from a client had very different
// interior paths to the nearest front-end.
//
// The builder connects each PoP to its k nearest PoPs plus a few long-haul
// express links between regional hubs, then answers pairwise distance
// queries via Dijkstra (cached).
#pragma once

#include <limits>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "geo/metro.h"

namespace acdn {

struct BackboneLink {
  MetroId a;
  MetroId b;
  Kilometers km = 0.0;  // fiber distance (geodesic x route factor)
};

struct BackboneConfig {
  /// Each PoP links to this many nearest PoPs.
  int nearest_links = 3;
  /// Long-haul express links between the largest hub per region pair.
  bool interconnect_region_hubs = true;
  /// Fiber does not follow great circles.
  double fiber_factor_min = 1.05;
  double fiber_factor_max = 1.35;
};

/// A connected weighted graph over a PoP set with shortest-path queries.
class BackboneGraph {
 public:
  /// Builds the k-nearest + hub-express topology over `pops`, then adds
  /// minimum-distance links until the graph is connected.
  static BackboneGraph build(const MetroDatabase& metros,
                             std::vector<MetroId> pops,
                             const BackboneConfig& config, Rng& rng);

  /// Shortest-path fiber distance between two PoPs; infinity() if either
  /// is not a PoP (never happens for graphs from build()).
  [[nodiscard]] Kilometers distance_km(MetroId from, MetroId to) const;

  /// The PoP sequence of the shortest path (inclusive of endpoints).
  [[nodiscard]] std::vector<MetroId> path(MetroId from, MetroId to) const;

  [[nodiscard]] const std::vector<BackboneLink>& links() const {
    return links_;
  }
  [[nodiscard]] const std::vector<MetroId>& pops() const { return pops_; }
  [[nodiscard]] bool contains(MetroId pop) const {
    return index_.count(pop) > 0;
  }

  static constexpr Kilometers kUnreachable =
      std::numeric_limits<double>::infinity();

 private:
  void add_link(const MetroDatabase& metros, MetroId a, MetroId b,
                double fiber_factor);
  void run_all_pairs();

  std::vector<MetroId> pops_;
  // NOLINT-ACDN(unordered-decl): metro -> dense-index lookups only;
  std::unordered_map<MetroId, std::size_t> index_;  // walks use pops_
  std::vector<BackboneLink> links_;
  std::vector<std::vector<std::pair<std::size_t, Kilometers>>> adjacency_;
  // Dense all-pairs distance matrix (PoP counts are small: < 100) and
  // next-hop matrix for path reconstruction.
  std::vector<std::vector<Kilometers>> dist_;
  std::vector<std::vector<std::size_t>> next_;
};

}  // namespace acdn
