#include "topology/builder.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "common/error.h"
#include "common/logging.h"

namespace acdn {

namespace {

/// Top metros by population in a region ("hubs"): tier-1s and transits are
/// always present there, which guarantees interconnection opportunities.
std::vector<MetroId> region_hubs(const MetroDatabase& metros, Region r,
                                 std::size_t count) {
  std::vector<MetroId> in_region = metros.in_region(r);
  std::sort(in_region.begin(), in_region.end(),
            [&](MetroId a, MetroId b) {
              return metros.metro(a).population_millions >
                     metros.metro(b).population_millions;
            });
  if (in_region.size() > count) in_region.resize(count);
  return in_region;
}

std::vector<MetroId> all_hubs(const MetroDatabase& metros,
                              std::size_t per_region) {
  std::vector<MetroId> hubs;
  for (int r = 0; r < kNumRegions; ++r) {
    for (MetroId m :
         region_hubs(metros, static_cast<Region>(r), per_region)) {
      hubs.push_back(m);
    }
  }
  return hubs;
}

std::vector<MetroId> intersection(const std::vector<MetroId>& a,
                                  const std::vector<MetroId>& b) {
  std::set<MetroId> sa(a.begin(), a.end());
  std::vector<MetroId> out;
  for (MetroId m : b) {
    if (sa.count(m)) out.push_back(m);
  }
  return out;
}

/// Keep at most `cap` peering metros, preferring the most populous ones.
std::vector<MetroId> cap_by_population(const MetroDatabase& metros,
                                       std::vector<MetroId> candidates,
                                       std::size_t cap) {
  std::sort(candidates.begin(), candidates.end(),
            [&](MetroId a, MetroId b) {
              return metros.metro(a).population_millions >
                     metros.metro(b).population_millions;
            });
  if (candidates.size() > cap) candidates.resize(cap);
  return candidates;
}

/// Keep at most `cap` peering metros chosen round-robin across regions
/// (most populous first within each region). Interconnection between big
/// networks is geographically spread; capping by raw population would
/// concentrate every peering in Asia's megacities and produce wildly
/// unrealistic cross-continent ingress.
std::vector<MetroId> spread_by_region(const MetroDatabase& metros,
                                      std::vector<MetroId> candidates,
                                      std::size_t cap) {
  std::map<Region, std::vector<MetroId>> buckets;
  for (MetroId m : candidates) buckets[metros.metro(m).region].push_back(m);
  for (auto& [region, in_region] : buckets) {
    std::sort(in_region.begin(), in_region.end(),
              [&](MetroId a, MetroId b) {
                return metros.metro(a).population_millions >
                       metros.metro(b).population_millions;
              });
  }
  std::vector<MetroId> out;
  for (std::size_t round = 0; out.size() < std::min(cap, candidates.size());
       ++round) {
    bool any = false;
    for (auto& [region, in_region] : buckets) {
      if (round < in_region.size() && out.size() < cap) {
        out.push_back(in_region[round]);
        any = true;
      }
    }
    if (!any) break;
  }
  return out;
}

void sort_unique(std::vector<MetroId>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

}  // namespace

void TopologyConfig::validate() const {
  require(tier1_count >= 2, "need at least two tier-1 ASes");
  require(transits_per_region >= 1, "need at least one transit per region");
  require(national_access_per_country >= 1,
          "need at least one national access ISP per country");
  require(remote_peering_fraction >= 0.0 && remote_peering_fraction <= 1.0,
          "remote_peering_fraction must be in [0,1]");
}

AsGraph build_topology(const MetroDatabase& metros,
                       const TopologyConfig& config, Rng& rng) {
  config.validate();
  AsGraph graph(metros);
  std::uint32_t next_asn = 100;

  const std::vector<MetroId> hubs = all_hubs(metros, 3);

  // --- Tier-1 backbones ---
  std::vector<AsId> tier1s;
  Rng t1_rng = rng.fork("tier1");
  for (int i = 0; i < config.tier1_count; ++i) {
    AsNode node;
    node.asn = next_asn++;
    node.name = "Tier1-" + std::to_string(i + 1);
    node.type = AsType::kTier1;
    node.home_region = static_cast<Region>(i % kNumRegions);
    node.presence = hubs;
    for (const Metro& m : metros.all()) {
      if (std::find(hubs.begin(), hubs.end(), m.id) == hubs.end() &&
          t1_rng.bernoulli(config.tier1_presence_prob)) {
        node.presence.push_back(m.id);
      }
    }
    sort_unique(node.presence);
    node.backbone_stretch = t1_rng.uniform(1.15, 1.35);
    tier1s.push_back(graph.add_as(std::move(node)));
  }

  // Tier-1 full peer mesh.
  for (std::size_t i = 0; i < tier1s.size(); ++i) {
    for (std::size_t j = i + 1; j < tier1s.size(); ++j) {
      auto common = intersection(graph.as_node(tier1s[i]).presence,
                                 graph.as_node(tier1s[j]).presence);
      if (common.empty()) continue;
      graph.add_link(AsLink{tier1s[i], tier1s[j], Relationship::kPeerToPeer,
                            spread_by_region(metros, std::move(common), 10)});
    }
  }

  // --- Regional transit providers ---
  std::map<Region, std::vector<AsId>> transits_by_region;
  Rng tr_rng = rng.fork("transit");
  for (int r = 0; r < kNumRegions; ++r) {
    const auto region = static_cast<Region>(r);
    const std::vector<MetroId> region_metros = metros.in_region(region);
    if (region_metros.empty()) continue;
    const std::vector<MetroId> rhubs = region_hubs(metros, region, 3);
    for (int i = 0; i < config.transits_per_region; ++i) {
      AsNode node;
      node.asn = next_asn++;
      node.name = std::string("Transit-") + to_string(region) + "-" +
                  std::to_string(i + 1);
      node.type = AsType::kTransit;
      node.home_region = region;
      node.presence = rhubs;
      for (MetroId m : region_metros) {
        if (std::find(rhubs.begin(), rhubs.end(), m) == rhubs.end() &&
            tr_rng.bernoulli(config.transit_presence_prob)) {
          node.presence.push_back(m);
        }
      }
      sort_unique(node.presence);
      node.backbone_stretch = tr_rng.uniform(1.25, 1.55);
      const AsId id = graph.add_as(std::move(node));
      transits_by_region[region].push_back(id);

      // Transit buys from 2-3 tier-1s.
      const int providers = tr_rng.uniform_int(2, 3);
      std::vector<AsId> shuffled = tier1s;
      tr_rng.shuffle(shuffled);
      int added = 0;
      for (AsId t1 : shuffled) {
        if (added == providers) break;
        auto common = intersection(graph.as_node(id).presence,
                                   graph.as_node(t1).presence);
        if (common.empty()) continue;
        graph.add_link(AsLink{id, t1, Relationship::kCustomerToProvider,
                              cap_by_population(metros, std::move(common), 6)});
        ++added;
      }
      require(added > 0, "transit AS ended up with no tier-1 provider");
    }
    // Same-region transits peer with configured probability.
    const auto& rts = transits_by_region[region];
    for (std::size_t i = 0; i < rts.size(); ++i) {
      for (std::size_t j = i + 1; j < rts.size(); ++j) {
        if (!tr_rng.bernoulli(config.transit_peer_prob)) continue;
        auto common = intersection(graph.as_node(rts[i]).presence,
                                   graph.as_node(rts[j]).presence);
        if (common.empty()) continue;
        graph.add_link(AsLink{rts[i], rts[j], Relationship::kPeerToPeer,
                              cap_by_population(metros, std::move(common), 4)});
      }
    }
  }

  // --- Access ISPs ---
  // Group metros by country.
  std::map<std::string, std::vector<MetroId>> by_country;
  for (const Metro& m : metros.all()) by_country[m.country].push_back(m.id);

  Rng ac_rng = rng.fork("access");
  auto connect_access = [&](AsId access) {
    // Choose 1..max providers among transits (preferring home region) and
    // tier-1s with overlapping presence.
    const AsNode& node = graph.as_node(access);
    std::vector<AsId> candidates = transits_by_region[node.home_region];
    for (AsId t1 : tier1s) candidates.push_back(t1);
    ac_rng.shuffle(candidates);
    const int want = ac_rng.uniform_int(1, config.max_providers_per_access);
    int added = 0;
    for (AsId provider : candidates) {
      if (added == want) break;
      auto common = intersection(node.presence,
                                 graph.as_node(provider).presence);
      if (common.empty()) continue;
      graph.add_link(AsLink{access, provider,
                            Relationship::kCustomerToProvider,
                            cap_by_population(metros, std::move(common), 4)});
      ++added;
    }
    return added;
  };

  auto maybe_remote_peering = [&](AsId access) {
    AsNode& node = graph.as_node(access);
    if (!ac_rng.bernoulli(config.remote_peering_fraction)) return;
    node.remote_peering_policy = true;
    // Preferred handoff: usually the ISP's most populous PoP (its hub);
    // half the time a *foreign* interconnection hub — a PoP the ISP runs
    // at a big IXP abroad, like a Russian ISP handing off in Stockholm
    // (the paper's §5 case). The foreign PoP is added to the ISP's
    // presence so links there are valid.
    std::vector<MetroId> pref = cap_by_population(metros, node.presence, 1);
    if (ac_rng.bernoulli(0.5)) {
      const Metro& home = metros.metro(pref.front());
      MetroId best_foreign = pref.front();
      Kilometers best_d = 1e18;
      for (const Metro& m : metros.all()) {
        if (m.country == home.country || m.population_millions < 2.0) {
          continue;
        }
        const Kilometers d = metros.distance_km(m.id, home.id);
        if (d < best_d && d > 300.0) {
          best_d = d;
          best_foreign = m.id;
        }
      }
      if (best_foreign != pref.front()) {
        pref = {best_foreign};
        if (!node.present_in(best_foreign)) {
          node.presence.push_back(best_foreign);
          sort_unique(node.presence);
        }
      }
    }
    node.preferred_handoffs = std::move(pref);
  };

  for (const auto& [country, country_metros] : by_country) {
    const Region region = metros.metro(country_metros.front()).region;
    const int nationals =
        std::min<int>(config.national_access_per_country,
                      std::max<int>(1, int(country_metros.size())));
    for (int i = 0; i < nationals; ++i) {
      AsNode node;
      node.asn = next_asn++;
      node.name = country + "-Telecom-" + std::to_string(i + 1);
      node.type = AsType::kAccess;
      node.home_region = region;
      node.presence = country_metros;
      sort_unique(node.presence);
      node.backbone_stretch = ac_rng.uniform(1.3, 1.7);
      const AsId id = graph.add_as(std::move(node));
      if (connect_access(id) == 0) {
        // Guarantee connectivity: extend the first regional transit (or a
        // tier-1) into this ISP's largest metro and link there.
        AsId provider = transits_by_region[region].empty()
                            ? tier1s.front()
                            : transits_by_region[region].front();
        MetroId hub =
            cap_by_population(metros, graph.as_node(id).presence, 1).front();
        AsNode& pnode = graph.as_node(provider);
        if (!pnode.present_in(hub)) pnode.presence.push_back(hub);
        graph.add_link(AsLink{id, provider,
                              Relationship::kCustomerToProvider, {hub}});
      }
      maybe_remote_peering(id);
    }
    // Metro-local ISPs.
    for (MetroId m : country_metros) {
      for (int i = 0; i < config.local_access_per_metro; ++i) {
        AsNode node;
        node.asn = next_asn++;
        node.name = metros.metro(m).name + "-Local-" + std::to_string(i + 1);
        node.type = AsType::kAccess;
        node.home_region = region;
        node.presence = {m};
        node.backbone_stretch = 1.2;
        const AsId id = graph.add_as(std::move(node));
        if (connect_access(id) == 0) {
          AsId provider = transits_by_region[region].empty()
                              ? tier1s.front()
                              : transits_by_region[region].front();
          AsNode& pnode = graph.as_node(provider);
          if (!pnode.present_in(m)) pnode.presence.push_back(m);
          graph.add_link(AsLink{id, provider,
                                Relationship::kCustomerToProvider, {m}});
        }
        // Local ISPs rarely run national backbones; remote peering does not
        // apply to a single-metro network.
      }
    }
  }

  Log(LogLevel::kInfo) << "topology: " << graph.as_count() << " ASes, "
                       << graph.link_count() << " links";
  return graph;
}

AsId add_cdn_as(AsGraph& graph, std::vector<MetroId> presence,
                const CdnLinkConfig& config, Rng& rng) {
  require(!presence.empty(), "CDN needs at least one PoP");
  const MetroDatabase& metros = graph.metros();
  sort_unique(presence);

  AsNode node;
  node.asn = 8075;  // a nod to the AS under study
  node.name = "CDN";
  node.type = AsType::kCdn;
  node.home_region = Region::kNorthAmerica;
  node.presence = presence;
  node.backbone_stretch = 1.2;  // CDNs run dense, well-engineered backbones
  const AsId cdn = graph.add_as(std::move(node));

  Rng link_rng = rng.fork("cdn-links");

  // Transit from tier-1s for universal reachability. The primary transit
  // provider is extended to every CDN PoP metro (tier-1 backbones are
  // global) and interconnects there, which guarantees that each
  // front-end's unicast /24 — announced only at the peering point closest
  // to that front-end (§3.1) — is reachable from the whole Internet.
  std::vector<AsId> tier1s = graph.ases_of_type(AsType::kTier1);
  link_rng.shuffle(tier1s);
  require(!tier1s.empty(), "topology has no tier-1 ASes");
  {
    const AsId primary = tier1s.front();
    AsNode& pnode = graph.as_node(primary);
    for (MetroId m : graph.as_node(cdn).presence) {
      if (!pnode.present_in(m)) pnode.presence.push_back(m);
    }
    std::sort(pnode.presence.begin(), pnode.presence.end());
    graph.add_link(AsLink{cdn, primary, Relationship::kCustomerToProvider,
                          graph.as_node(cdn).presence});
  }
  int transit_added = 1;
  for (std::size_t i = 1; i < tier1s.size(); ++i) {
    if (transit_added == config.transit_providers) break;
    const AsId t1 = tier1s[i];
    auto common = intersection(graph.as_node(cdn).presence,
                               graph.as_node(t1).presence);
    if (common.empty()) continue;
    graph.add_link(
        AsLink{cdn, t1, Relationship::kCustomerToProvider, std::move(common)});
    ++transit_added;
  }

  // Settlement-free peering with remaining tier-1s and with transits.
  const auto transit_cap =
      static_cast<std::size_t>(config.max_transit_peering_metros);
  for (AsId t1 : tier1s) {
    bool already = false;
    for (const Neighbor& n : graph.neighbors(cdn)) already |= (n.as == t1);
    if (already || !link_rng.bernoulli(config.tier1_peer_prob)) continue;
    auto common = intersection(graph.as_node(cdn).presence,
                               graph.as_node(t1).presence);
    if (common.empty()) continue;
    graph.add_link(
        AsLink{cdn, t1, Relationship::kPeerToPeer,
               spread_by_region(metros, std::move(common), 16)});
  }
  for (AsId tr : graph.ases_of_type(AsType::kTransit)) {
    if (!link_rng.bernoulli(config.transit_peer_prob)) continue;
    auto common = intersection(graph.as_node(cdn).presence,
                               graph.as_node(tr).presence);
    if (common.empty()) continue;
    graph.add_link(
        AsLink{cdn, tr, Relationship::kPeerToPeer,
               cap_by_population(metros, std::move(common), transit_cap)});
  }

  // Open peering with access ISPs at shared metros (IXP-style).
  // Remote-peering ISPs nearly always peer — buying one cheap IXP port at
  // their preferred hub is exactly why they have the policy.
  for (AsId ac : graph.ases_of_type(AsType::kAccess)) {
    const AsNode& anode = graph.as_node(ac);
    const double peer_prob =
        anode.remote_peering_policy ? 0.9 : config.access_peer_prob;
    if (!link_rng.bernoulli(peer_prob)) continue;
    auto common = intersection(graph.as_node(cdn).presence, anode.presence);
    if (common.empty()) continue;
    std::vector<MetroId> peering;
    if (anode.remote_peering_policy) {
      // Remote-peering ISPs interconnect only at their preferred handoffs
      // (when the CDN is present there) — the §5 pathology.
      peering = intersection(common, anode.preferred_handoffs);
      if (peering.empty()) continue;
    } else {
      peering = cap_by_population(
          metros, std::move(common),
          static_cast<std::size_t>(config.max_access_peering_metros));
    }
    graph.add_link(
        AsLink{cdn, ac, Relationship::kPeerToPeer, std::move(peering)});
  }

  Log(LogLevel::kInfo) << "cdn AS added: " << graph.neighbors(cdn).size()
                       << " interconnections";
  return cdn;
}

}  // namespace acdn
