// Synthetic Internet builder.
//
// Generates a plausible AS-level Internet over the metro database:
//   * a handful of global tier-1 backbones (full peer mesh),
//   * regional transit providers buying from tier-1s,
//   * national access (eyeball) ISPs per country plus metro-local ISPs,
//   * a configurable fraction of access ISPs with "remote peering"
//     policies — the §5 pathology where traffic is carried to a distant
//     handoff even though a close interconnect exists.
//
// The CDN's own AS is added separately with add_cdn_as once a front-end
// deployment has chosen its metros.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "topology/as_graph.h"

namespace acdn {

struct TopologyConfig {
  int tier1_count = 12;
  int transits_per_region = 5;
  /// National access ISPs per country (scaled down for tiny countries).
  int national_access_per_country = 2;
  /// Metro-local access ISPs per metro.
  int local_access_per_metro = 1;
  /// Probability a tier-1 is present in a non-hub metro.
  double tier1_presence_prob = 0.45;
  /// Probability a regional transit is present in a region metro.
  double transit_presence_prob = 0.85;
  /// Fraction of access ISPs operating a remote-peering (cold potato toward
  /// a preferred handoff) policy; half of those hand off at a foreign hub.
  double remote_peering_fraction = 0.10;
  /// Probability two transits in the same region peer.
  double transit_peer_prob = 0.5;
  /// Providers per national access ISP (1..this).
  int max_providers_per_access = 3;

  void validate() const;
};

/// Builds the non-CDN Internet. Deterministic in (config, rng state).
[[nodiscard]] AsGraph build_topology(const MetroDatabase& metros,
                                     const TopologyConfig& config, Rng& rng);

struct CdnLinkConfig {
  /// Tier-1 transit providers the CDN buys from (for universal reach).
  int transit_providers = 2;
  /// Probability of settlement-free peering with a tier-1 / transit that
  /// shares a metro with the CDN.
  double tier1_peer_prob = 0.9;
  double transit_peer_prob = 0.55;
  /// Probability of open peering with an access ISP sharing a metro.
  double access_peer_prob = 0.30;
  /// Cap on peering metros per transit/tier-1 peering link; sparse
  /// interconnection is what makes ingress points distant.
  int max_transit_peering_metros = 6;
  /// Cap on peering metros per access-ISP link (IXP ports are not free).
  int max_access_peering_metros = 3;
};

/// Adds the CDN AS with PoPs at `presence` and interconnects it with the
/// existing graph per `config`. Returns the CDN's AsId.
AsId add_cdn_as(AsGraph& graph, std::vector<MetroId> presence,
                const CdnLinkConfig& config, Rng& rng);

}  // namespace acdn
