#include "workload/clients.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.h"

namespace acdn {

void WorkloadConfig::validate() const {
  require(total_client_24s > 0, "need at least one client /24");
  require(volume_pareto_alpha > 1.0,
          "volume_pareto_alpha must exceed 1 for a finite mean");
  require(base_daily_queries > 0.0, "base_daily_queries must be positive");
  require(placement_median_km > 0.0, "placement_median_km must be positive");
  require(placement_sigma >= 0.0, "placement_sigma must be non-negative");
  require(placement_max_km >= placement_median_km,
          "placement_max_km must be at least the median");
}

double region_penetration(Region r) {
  switch (r) {
    case Region::kNorthAmerica: return 0.90;
    case Region::kEurope:       return 0.85;
    case Region::kOceania:      return 0.90;
    case Region::kAsia:         return 0.50;
    case Region::kSouthAmerica: return 0.55;
    case Region::kMiddleEast:   return 0.55;
    case Region::kAfrica:       return 0.30;
  }
  return 0.5;
}

ClientPopulation::ClientPopulation(std::vector<Client24> clients)
    : clients_(std::move(clients)) {
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    clients_[i].id = ClientId(static_cast<std::uint32_t>(i));
    by_prefix_.emplace(clients_[i].prefix, clients_[i].id);
  }
}

std::optional<ClientId> ClientPopulation::find_by_prefix(
    const Prefix& prefix) const {
  auto it = by_prefix_.find(prefix);
  if (it == by_prefix_.end()) return std::nullopt;
  return it->second;
}

ClientPopulation ClientPopulation::generate(const AsGraph& graph,
                                            const WorkloadConfig& config,
                                            PrefixAllocator& addresses,
                                            Rng& rng) {
  config.validate();
  const MetroDatabase& metros = graph.metros();

  // Apportion /24s to metros by population x penetration (largest
  // remainder method keeps the total exact).
  std::vector<double> weight;
  weight.reserve(metros.size());
  double total_weight = 0.0;
  for (const Metro& m : metros.all()) {
    const double w = m.population_millions * region_penetration(m.region);
    weight.push_back(w);
    total_weight += w;
  }
  require(total_weight > 0.0, "metro weights are all zero");

  std::vector<int> quota(metros.size(), 0);
  std::vector<std::pair<double, std::size_t>> remainders;
  int assigned = 0;
  for (std::size_t i = 0; i < metros.size(); ++i) {
    const double exact = config.total_client_24s * weight[i] / total_weight;
    quota[i] = static_cast<int>(std::floor(exact));
    assigned += quota[i];
    remainders.emplace_back(exact - std::floor(exact), i);
  }
  std::sort(remainders.rbegin(), remainders.rend());
  for (std::size_t i = 0; assigned < config.total_client_24s; ++i, ++assigned) {
    ++quota[remainders[i % remainders.size()].second];
  }

  Rng gen = rng.fork("clients");
  std::vector<Client24> clients;
  clients.reserve(static_cast<std::size_t>(config.total_client_24s));
  for (const Metro& m : metros.all()) {
    const std::vector<AsId> isps = graph.access_ases_in(m.id);
    require(!isps.empty(),
            "no access ISP present in metro " + m.name);
    // National ISPs carry more subscribers than metro-local ones.
    std::vector<double> isp_weight;
    isp_weight.reserve(isps.size());
    for (AsId isp : isps) {
      isp_weight.push_back(
          graph.as_node(isp).presence.size() > 1 ? 3.0 : 1.0);
    }

    for (int k = 0; k < quota[m.id.value]; ++k) {
      Client24 c;
      c.prefix = addresses.allocate_slash24();
      c.metro = m.id;
      c.region = m.region;
      c.access_as = isps[gen.weighted_index(isp_weight)];
      const double r =
          std::min(gen.lognormal(std::log(config.placement_median_km),
                                 config.placement_sigma),
                   config.placement_max_km);
      c.location = destination_point(m.location, gen.uniform(0.0, 360.0), r);
      c.last_mile_ms = RttModel::draw_last_mile(config.last_mile, gen);
      c.daily_queries =
          config.base_daily_queries *
          (gen.pareto(0.5, config.volume_pareto_alpha));
      clients.push_back(std::move(c));
    }
  }
  return ClientPopulation(std::move(clients));
}

const Client24& ClientPopulation::client(ClientId id) const {
  if (!id.valid() || id.value >= clients_.size()) {
    throw NotFoundError("client id " + std::to_string(id.value));
  }
  return clients_[id.value];
}

Client24& ClientPopulation::client(ClientId id) {
  return const_cast<Client24&>(std::as_const(*this).client(id));
}

double ClientPopulation::total_query_weight() const {
  double total = 0.0;
  for (const Client24& c : clients_) total += c.daily_queries;
  return total;
}

}  // namespace acdn
