// Client population generation.
//
// Client identity is a /24 prefix (paper §3.2: client IPs are aggregated to
// /24s "because they tend to be localized"). Each /24 is pinned to a metro
// (count proportional to population times regional Internet penetration),
// attached to an access ISP with a PoP there, given a location jittered
// around the metro center, a fixed last-mile latency draw, and a heavy-
// tailed daily query volume — the paper weights many results by query
// volume because per-/24 demand is "heavily skewed" (§3.2).
#pragma once

#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "latency/rtt_model.h"
#include "net/allocator.h"
#include "topology/as_graph.h"

namespace acdn {

struct Client24 {
  ClientId id;
  Prefix prefix;  // the /24
  MetroId metro;
  AsId access_as;
  GeoPoint location;
  Region region = Region::kNorthAmerica;
  /// Fixed last-mile RTT contribution for this /24.
  Milliseconds last_mile_ms = 10.0;
  /// Mean queries per weekday (heavy-tailed across /24s).
  double daily_queries = 10.0;
  /// Filled by the DNS layer: the resolver this /24 uses.
  LdnsId ldns;
};

struct WorkloadConfig {
  /// Total client /24s to generate (distributed over metros).
  int total_client_24s = 4000;
  /// Pareto shape for per-/24 daily query volume (smaller = more skew).
  double volume_pareto_alpha = 1.2;
  /// Scale: median-ish queries per /24 per weekday.
  double base_daily_queries = 40.0;
  /// Client placement around the metro center: lognormal distance with
  /// this median and log-sigma, capped at the max. A /24's "metro" is the
  /// nearest big city, but much of its population lives in suburbs and
  /// smaller towns a long way out — which is what puts the paper's median
  /// client 280 km from the nearest front-end (Figure 2).
  Kilometers placement_median_km = 110.0;
  double placement_sigma = 1.0;
  Kilometers placement_max_km = 1500.0;
  LastMileMix last_mile;

  void validate() const;
};

/// Internet penetration multiplier applied to metro population when
/// apportioning client /24s.
[[nodiscard]] double region_penetration(Region r);

class ClientPopulation {
 public:
  /// Deterministic in (graph, config, rng state). Every generated client is
  /// attached to an access AS present in its metro.
  static ClientPopulation generate(const AsGraph& graph,
                                   const WorkloadConfig& config,
                                   PrefixAllocator& addresses, Rng& rng);

  [[nodiscard]] std::size_t size() const { return clients_.size(); }
  [[nodiscard]] std::span<const Client24> clients() const { return clients_; }
  [[nodiscard]] const Client24& client(ClientId id) const;
  [[nodiscard]] Client24& client(ClientId id);

  /// Sum of daily_queries over all clients.
  [[nodiscard]] double total_query_weight() const;

  /// Client owning a /24 prefix, if any (how ECS-keyed systems look
  /// clients up).
  [[nodiscard]] std::optional<ClientId> find_by_prefix(
      const Prefix& prefix) const;

 private:
  explicit ClientPopulation(std::vector<Client24> clients);
  std::vector<Client24> clients_;
  // NOLINT-ACDN(unordered-decl): prefix lookups only; walks use clients_
  std::unordered_map<Prefix, ClientId> by_prefix_;
};

}  // namespace acdn
