#include "workload/schedule.h"

#include <cmath>
#include <numbers>
#include <random>

namespace acdn {

int QuerySchedule::queries_for_day(const Client24& client, DayIndex day,
                                   Rng& rng) const {
  const double mean = expected_queries(client, day);
  if (mean <= 0.0) return 0;
  return rng.poisson(mean);
}

double QuerySchedule::expected_queries(const Client24& client,
                                       DayIndex day) const {
  const double factor =
      calendar_.is_weekend(day) ? config_.weekend_factor : 1.0;
  return client.daily_queries * factor;
}

double QuerySchedule::activity_probability(const Client24& client) const {
  if (config_.activity_scale <= 0.0) return 1.0;
  return 1.0 - std::exp(-client.daily_queries / config_.activity_scale);
}

bool QuerySchedule::is_active(const Client24& client, DayIndex day,
                              std::uint64_t seed) const {
  const double p = activity_probability(client);
  if (p >= 1.0) return true;
  // Keyed draw: stable under reordering of clients and days.
  Rng roll(seed ^ (std::uint64_t(client.id.value) * 0x9e3779b97f4a7c15ull) ^
           (std::uint64_t(day + 1) * 0xc2b2ae3d27d4eb4full));
  return roll.bernoulli(p);
}

double QuerySchedule::expected_queries_when_active(const Client24& client,
                                                   DayIndex day) const {
  const double p = activity_probability(client);
  return p > 0.0 ? expected_queries(client, day) / p
                 : expected_queries(client, day);
}

SimTime QuerySchedule::sample_query_time(DayIndex day, Rng& rng) const {
  // Diurnal density 1 + 0.7*cos(2*pi*(h-20)/24), sampled by rejection:
  // peak at 20:00, trough at 08:00.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double h = rng.uniform(0.0, 24.0);
    const double density =
        1.0 + 0.7 * std::cos(2.0 * std::numbers::pi * (h - 20.0) / 24.0);
    if (rng.uniform(0.0, 1.7) <= density) {
      return SimTime{day, h * 3600.0};
    }
  }
  return SimTime{day, 12.0 * 3600.0};  // vanishingly unlikely fallback
}

}  // namespace acdn
