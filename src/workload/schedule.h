// Query scheduling: how many queries a client /24 issues on a given day and
// when within the day. Weekday volumes exceed weekend volumes and query
// times follow a diurnal curve peaking in the evening.
#pragma once

#include "common/rng.h"
#include "common/sim_clock.h"
#include "workload/clients.h"

namespace acdn {

struct ScheduleConfig {
  /// Weekend query volume relative to weekdays.
  double weekend_factor = 0.8;
  /// Fraction of page loads carrying the measurement beacon (the paper
  /// instruments "a small fraction" of result pages).
  double beacon_sampling = 0.05;
  /// Client /24s are not active every day: a prefix appears in the logs
  /// on a given day with probability 1 - exp(-volume/activity_scale), so
  /// heavy prefixes are seen daily while light ones blink in and out —
  /// part of why most "poor" /24s in Figure 6 are poor on only one
  /// observed day. Set to 0 to make every client active every day.
  double activity_scale = 4.0;
};

class QuerySchedule {
 public:
  QuerySchedule(const ScheduleConfig& config, const SimCalendar& calendar)
      : config_(config), calendar_(calendar) {}

  /// Number of queries `client` issues on `day` (Poisson around its mean,
  /// scaled for weekends).
  [[nodiscard]] int queries_for_day(const Client24& client, DayIndex day,
                                    Rng& rng) const;

  /// Expected (not sampled) query count — used when exact weights matter
  /// more than integer draws, e.g. passive-log aggregation.
  [[nodiscard]] double expected_queries(const Client24& client,
                                        DayIndex day) const;

  /// Whether one query carries the beacon.
  [[nodiscard]] bool carries_beacon(Rng& rng) const {
    return rng.bernoulli(config_.beacon_sampling);
  }

  /// Probability the client is active (appears in logs) on any given day.
  [[nodiscard]] double activity_probability(const Client24& client) const;

  /// Whether `client` is active on `day`. Deterministic in
  /// (seed, client, day) regardless of evaluation order.
  [[nodiscard]] bool is_active(const Client24& client, DayIndex day,
                               std::uint64_t seed) const;

  /// Queries conditional on being active: scaled so the long-run average
  /// still equals expected_queries().
  [[nodiscard]] double expected_queries_when_active(const Client24& client,
                                                    DayIndex day) const;

  /// A query timestamp within `day`, following the diurnal curve.
  [[nodiscard]] SimTime sample_query_time(DayIndex day, Rng& rng) const;

  [[nodiscard]] const ScheduleConfig& config() const { return config_; }
  [[nodiscard]] const SimCalendar& calendar() const { return calendar_; }

 private:
  ScheduleConfig config_;
  SimCalendar calendar_;
};

}  // namespace acdn
