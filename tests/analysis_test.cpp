#include <gtest/gtest.h>

#include "analysis/aggregate.h"
#include "analysis/figures.h"
#include "common/error.h"
#include "test_fixtures.h"

namespace acdn {
namespace {

using testfx::make_measurement;

// ------------------------------------------------------------ aggregation

TEST(DayAggregates, GroupsByClientUnderEcs) {
  std::vector<BeaconMeasurement> ms;
  ms.push_back(make_measurement(1, 10, 0, 20.0, {{0, 30.0}}));
  ms.push_back(make_measurement(1, 10, 0, 22.0, {{0, 28.0}}));
  ms.push_back(make_measurement(2, 10, 0, 50.0, {{1, 40.0}}));

  const DayAggregates agg = DayAggregates::build(ms, Grouping::kEcsPrefix);
  ASSERT_EQ(agg.groups().size(), 2u);
  const DayAggregates::Group* g1 = agg.find(1);
  ASSERT_NE(g1, nullptr);
  EXPECT_EQ(agg.sample_count(*g1, TargetKey{true, FrontEndId{}}), 2u);
  EXPECT_EQ(agg.sample_count(*g1, TargetKey{false, FrontEndId(0)}), 2u);
  EXPECT_EQ(agg.sample_count(*g1, TargetKey{false, FrontEndId(1)}), 0u);
}

TEST(DayAggregates, GroupsByLdns) {
  std::vector<BeaconMeasurement> ms;
  ms.push_back(make_measurement(1, 10, 0, 20.0, {{0, 30.0}}));
  ms.push_back(make_measurement(2, 10, 0, 24.0, {{0, 26.0}}));
  ms.push_back(make_measurement(3, 11, 0, 50.0, {{1, 40.0}}));

  const DayAggregates agg = DayAggregates::build(ms, Grouping::kLdns);
  ASSERT_EQ(agg.groups().size(), 2u);
  const DayAggregates::Group* g10 = agg.find(10);
  ASSERT_NE(g10, nullptr);
  EXPECT_EQ(agg.sample_count(*g10, TargetKey{true, FrontEndId{}}), 2u);
}

// ------------------------------------------------------------------ Fig 1

TEST(Fig1, MinLatencyOverGrowingPools) {
  // Client latencies nearest-first: min over first N is non-increasing.
  std::vector<std::vector<Milliseconds>> per_client{
      {30.0, 20.0, 40.0, 10.0}, {15.0, 50.0, 12.0, 60.0}};
  const int ns[] = {1, 2, 4};
  const auto cdfs = fig1_min_latency_by_pool_size(per_client, ns);
  ASSERT_EQ(cdfs.size(), 3u);
  // N=1: mins are 30 and 15 -> median 15..30.
  EXPECT_DOUBLE_EQ(cdfs[0].quantile(0.5), 15.0);
  // N=4: mins are 10 and 12.
  EXPECT_DOUBLE_EQ(cdfs[2].quantile(0.5), 10.0);
  // Monotonicity of the median across pool sizes.
  EXPECT_LE(cdfs[1].quantile(0.5), cdfs[0].quantile(0.5));
  EXPECT_LE(cdfs[2].quantile(0.5), cdfs[1].quantile(0.5));
}

// ------------------------------------------------------------------ Fig 3

TEST(Fig3, DifferenceDistribution) {
  std::vector<BeaconMeasurement> ms;
  // anycast 25 vs best unicast 20 -> +5 (anycast slower).
  ms.push_back(make_measurement(1, 10, 0, 25.0, {{0, 20.0}, {1, 30.0}}));
  // anycast 10 vs best 15 -> -5 (anycast faster).
  ms.push_back(make_measurement(2, 10, 0, 10.0, {{0, 15.0}}));
  // Measurement without unicast targets is skipped.
  BeaconMeasurement no_unicast;
  no_unicast.client = ClientId(3);
  no_unicast.day = 0;
  no_unicast.targets.push_back({true, FrontEndId{}, 30.0});
  ms.push_back(no_unicast);

  // ClientPopulation is only needed for region filtering (covered by the
  // sim integration test); exercise the per-measurement difference logic
  // the figure is built on.
  DistributionBuilder diff;
  for (const BeaconMeasurement& m : ms) {
    const auto anycast = m.anycast_ms();
    const auto best = m.best_unicast();
    if (!anycast || !best) continue;
    diff.add(*anycast - best->rtt_ms);
  }
  EXPECT_EQ(diff.count(), 2u);
  EXPECT_DOUBLE_EQ(diff.fraction_at_least(5.0), 0.5);
}

// ------------------------------------------------------------------ Fig 5

TEST(Fig5, DailyImprovementUsesMediansAndGate) {
  Fig5Config config;
  config.min_samples_per_target = 2;
  std::vector<BeaconMeasurement> ms;
  // Client 1: anycast median 30, FE0 median 20 -> improvement 10.
  ms.push_back(make_measurement(1, 10, 0, 28.0, {{0, 19.0}}));
  ms.push_back(make_measurement(1, 10, 0, 32.0, {{0, 21.0}}));
  // Client 2: only one sample -> gated out.
  ms.push_back(make_measurement(2, 10, 0, 90.0, {{0, 10.0}}));

  const auto improvements = daily_improvement(ms, config);
  ASSERT_EQ(improvements.size(), 1u);
  EXPECT_DOUBLE_EQ(improvements.at(1), 10.0);
}

TEST(Fig5, BestFrontEndWins) {
  Fig5Config config;
  config.min_samples_per_target = 1;
  std::vector<BeaconMeasurement> ms;
  ms.push_back(make_measurement(1, 10, 0, 30.0, {{0, 25.0}, {1, 15.0}}));
  const auto improvements = daily_improvement(ms, config);
  EXPECT_DOUBLE_EQ(improvements.at(1), 15.0);  // vs the better FE1
}

TEST(Fig5, SharedAggregatesMatchRowPath) {
  // The DayAggregates overload scores a prebuilt aggregation identically
  // to the row-struct path (which builds its own).
  Fig5Config config;
  config.min_samples_per_target = 1;
  std::vector<BeaconMeasurement> ms;
  ms.push_back(make_measurement(1, 10, 0, 30.0, {{0, 25.0}, {1, 15.0}}));
  ms.push_back(make_measurement(2, 10, 0, 12.0, {{0, 40.0}}));

  const auto from_rows = daily_improvement(ms, config);
  const DayAggregates agg = DayAggregates::build(ms, Grouping::kEcsPrefix);
  const auto from_agg = daily_improvement(agg, config);
  ASSERT_EQ(from_agg.size(), from_rows.size());
  for (const auto& [group, improvement] : from_rows) {
    ASSERT_TRUE(from_agg.contains(group));
    EXPECT_DOUBLE_EQ(from_agg.at(group), improvement);
  }

  // Per-LDNS aggregates are the wrong granularity for a per-/24 figure.
  const DayAggregates ldns = DayAggregates::build(ms, Grouping::kLdns);
  EXPECT_THROW(daily_improvement(ldns, config), ConfigError);
}

TEST(Fig5, PrevalenceCountsThresholds) {
  Fig5Config config;
  config.min_samples_per_target = 1;
  config.epsilon_ms = 2.0;
  MeasurementStore store;
  // Day 0: client 1 improves by 30ms; client 2 by 1ms (below epsilon);
  // client 3 anycast-optimal.
  store.add(make_measurement(1, 10, 0, 50.0, {{0, 20.0}}));
  store.add(make_measurement(2, 10, 0, 21.0, {{0, 20.0}}));
  store.add(make_measurement(3, 10, 0, 15.0, {{0, 20.0}}));

  const auto days = fig5_daily_prevalence(store, config);
  ASSERT_EQ(days.size(), 1u);
  // thresholds {0(+eps), 10, 25, 50, 100}
  EXPECT_NEAR(days[0].fraction_above[0], 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(days[0].fraction_above[1], 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(days[0].fraction_above[2], 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(days[0].fraction_above[3], 0.0, 1e-9);
}

// ------------------------------------------------------------------ Fig 6

TEST(Fig6, DurationAndConsecutiveStreaks) {
  Fig5Config config;
  config.min_samples_per_target = 1;
  config.epsilon_ms = 2.0;
  MeasurementStore store;
  // Client 1 poor on days 0,1,2 (streak 3). Client 2 poor on days 0 and 2
  // (streak 1). Client 3 never poor.
  for (DayIndex d : {0, 1, 2}) {
    store.add(make_measurement(1, 10, d, 50.0, {{0, 20.0}}));
  }
  for (DayIndex d : {0, 2}) {
    store.add(make_measurement(2, 10, d, 40.0, {{0, 20.0}}));
  }
  store.add(make_measurement(2, 10, 1, 20.0, {{0, 20.0}}));
  for (DayIndex d : {0, 1, 2}) {
    store.add(make_measurement(3, 10, d, 10.0, {{0, 20.0}}));
  }

  const Fig6Duration result = fig6_poor_duration(store, config);
  EXPECT_EQ(result.days_poor.count(), 2u);  // only poor clients included
  EXPECT_DOUBLE_EQ(result.days_poor.quantile(1.0), 3.0);
  EXPECT_DOUBLE_EQ(result.max_consecutive.quantile(1.0), 3.0);
  EXPECT_DOUBLE_EQ(result.max_consecutive.quantile(0.0), 1.0);
}

// ------------------------------------------------------------------ Fig 7

TEST(Fig7, CumulativeSwitchDetection) {
  PassiveLog log;
  // Client 1: same FE all week -> never switches.
  // Client 2: switches on day 2.
  // Client 3: two FEs on day 0 (intra-day) -> switches on day 0.
  for (DayIndex d = 0; d < 4; ++d) {
    log.add({ClientId(1), FrontEndId(0), d, 10.0});
  }
  log.add({ClientId(2), FrontEndId(0), 0, 10.0});
  log.add({ClientId(2), FrontEndId(0), 1, 10.0});
  log.add({ClientId(2), FrontEndId(1), 2, 10.0});
  log.add({ClientId(2), FrontEndId(1), 3, 10.0});
  log.add({ClientId(3), FrontEndId(0), 0, 6.0});
  log.add({ClientId(3), FrontEndId(2), 0, 4.0});
  log.add({ClientId(3), FrontEndId(0), 1, 10.0});

  const auto cumulative = fig7_cumulative_switched(log, 4);
  ASSERT_EQ(cumulative.size(), 4u);
  EXPECT_NEAR(cumulative[0], 1.0 / 3.0, 1e-9);  // client 3
  EXPECT_NEAR(cumulative[1], 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(cumulative[2], 2.0 / 3.0, 1e-9);  // + client 2
  EXPECT_NEAR(cumulative[3], 2.0 / 3.0, 1e-9);
}

TEST(Fig7, EmptyLog) {
  PassiveLog log;
  const auto cumulative = fig7_cumulative_switched(log, 3);
  ASSERT_EQ(cumulative.size(), 3u);
  for (double v : cumulative) EXPECT_DOUBLE_EQ(v, 0.0);
}

}  // namespace
}  // namespace acdn
