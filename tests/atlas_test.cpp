#include <gtest/gtest.h>

#include "atlas/diagnose.h"
#include "atlas/probe.h"
#include "atlas/traceroute.h"
#include "sim/world.h"

namespace acdn {
namespace {

class AtlasTest : public ::testing::Test {
 protected:
  AtlasTest() : world_(ScenarioConfig::small_test()) {}
  World world_;
};

TEST_F(AtlasTest, ProbesArePlacedInAccessIsps) {
  Rng rng(1);
  const ProbeSet probes = ProbeSet::place(world_.graph(), 2, rng);
  EXPECT_GE(probes.size(), world_.metros().size());
  for (const Probe& p : probes.probes()) {
    const AsNode& isp = world_.graph().as_node(p.access_as);
    EXPECT_EQ(isp.type, AsType::kAccess);
    EXPECT_TRUE(isp.present_in(p.metro));
  }
}

TEST_F(AtlasTest, ProbeLookupByIspMetro) {
  Rng rng(1);
  const ProbeSet probes = ProbeSet::place(world_.graph(), 1, rng);
  const Probe& first = probes.probes().front();
  const auto found = probes.in(first.access_as, first.metro);
  ASSERT_FALSE(found.empty());
  EXPECT_EQ(found.front().id, first.id);
  EXPECT_TRUE(probes.in(AsId(9999), first.metro).empty());
}

TEST_F(AtlasTest, TracerouteReachesAFrontEnd) {
  Rng rng(2);
  const ProbeSet probes = ProbeSet::place(world_.graph(), 1, rng);
  const TracerouteEngine engine(world_.router(), world_.rtt());
  int reached = 0;
  for (const Probe& p : probes.probes()) {
    const TracerouteResult trace = engine.trace(p);
    if (!trace.reached) continue;
    ++reached;
    ASSERT_FALSE(trace.hops.empty());
    // First hop is in the probe's access network; last in the CDN.
    EXPECT_EQ(trace.hops.front().as, p.access_as);
    EXPECT_EQ(trace.hops.back().as, world_.cdn().as_id());
    // Hop RTTs are non-decreasing along the path.
    for (std::size_t i = 1; i < trace.hops.size(); ++i) {
      EXPECT_GE(trace.hops[i].rtt_ms + 1e-9, trace.hops[i - 1].rtt_ms);
    }
    EXPECT_TRUE(trace.destination.valid());
  }
  EXPECT_EQ(reached, static_cast<int>(probes.size()));
}

TEST_F(AtlasTest, FormatProducesOneLinePerHop) {
  Rng rng(3);
  const ProbeSet probes = ProbeSet::place(world_.graph(), 1, rng);
  const TracerouteEngine engine(world_.router(), world_.rtt());
  const TracerouteResult trace = engine.trace(probes.probes().front());
  ASSERT_TRUE(trace.reached);
  const std::string text = TracerouteEngine::format(trace, world_.graph());
  const auto lines = std::count(text.begin(), text.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(lines), trace.hops.size());
}

TEST_F(AtlasTest, DiagnoserClassifiesCleanPathsAsNone) {
  Rng rng(4);
  const ProbeSet probes = ProbeSet::place(world_.graph(), 1, rng);
  const TracerouteEngine engine(world_.router(), world_.rtt());
  const AnycastDiagnoser diagnoser(world_.router(), world_.graph());
  int none = 0;
  for (const Probe& p : probes.probes()) {
    const TracerouteResult trace = engine.trace(p);
    if (!trace.reached) continue;
    const Diagnosis d = diagnoser.diagnose(p, trace);
    if (d.pathology == AnycastPathology::kNone) ++none;
    EXPECT_FALSE(d.description.empty());
  }
  // Most paths in a healthy world are unremarkable.
  EXPECT_GT(none, static_cast<int>(probes.size()) / 2);
}

TEST_F(AtlasTest, DiagnoserFlagsRemotePeering) {
  // A world with aggressive remote peering must yield at least one
  // remote-peering diagnosis among poor paths.
  ScenarioConfig config = ScenarioConfig::small_test();
  config.topology.remote_peering_fraction = 0.6;
  World world(config);
  Rng rng(5);
  const ProbeSet probes = ProbeSet::place(world.graph(), 2, rng);
  const TracerouteEngine engine(world.router(), world.rtt());
  const AnycastDiagnoser diagnoser(world.router(), world.graph());
  int remote = 0;
  for (const Probe& p : probes.probes()) {
    const TracerouteResult trace = engine.trace(p);
    if (!trace.reached) continue;
    if (diagnoser.diagnose(p, trace).pathology ==
        AnycastPathology::kRemotePeering) {
      ++remote;
    }
  }
  EXPECT_GE(remote, 1);
}

TEST_F(AtlasTest, UnreachableTraceDiagnosesGracefully) {
  const AnycastDiagnoser diagnoser(world_.router(), world_.graph());
  TracerouteResult unreachable;
  unreachable.reached = false;
  Probe probe;
  probe.metro = MetroId(0);
  probe.access_as = world_.graph().ases_of_type(AsType::kAccess).front();
  const Diagnosis d = diagnoser.diagnose(probe, unreachable);
  EXPECT_EQ(d.pathology, AnycastPathology::kNone);
  EXPECT_EQ(d.description, "destination unreachable");
}

TEST(AtlasStrings, PathologyNames) {
  EXPECT_STREQ(to_string(AnycastPathology::kNone), "none");
  EXPECT_STREQ(to_string(AnycastPathology::kRemotePeering), "remote-peering");
  EXPECT_STREQ(to_string(AnycastPathology::kTopologyBlindness),
               "topology-blindness");
}

}  // namespace
}  // namespace acdn
