#include <gtest/gtest.h>

#include "common/error.h"
#include "dns/authoritative.h"
#include "sim/world.h"

namespace acdn {
namespace {

class AuthoritativeTest : public ::testing::Test {
 protected:
  AuthoritativeTest()
      : world_(ScenarioConfig::small_test()),
        geo_policy_(world_.cdn().deployment(), world_.metros(),
                    world_.ldns(), world_.clients(), world_.geolocation()) {}

  World world_;
  GeoClosestPolicy geo_policy_;
};

TEST_F(AuthoritativeTest, AnycastPolicyReturnsAnycastVip) {
  const AnycastPolicy anycast;
  AuthoritativeServer server(anycast, world_.cdn().deployment());
  const Client24& c = world_.clients().clients().front();
  const Ipv4Address address =
      server.resolve(c.ldns, c.prefix, SimTime{0, 100.0});
  EXPECT_TRUE(
      world_.cdn().deployment().anycast_prefix().contains(address));
  EXPECT_TRUE(server.decode(address).anycast);
  EXPECT_EQ(server.authoritative_queries(), 1u);
}

TEST_F(AuthoritativeTest, GeoPolicyReturnsFrontEndAddress) {
  AuthoritativeServer server(geo_policy_, world_.cdn().deployment());
  const Client24& c = world_.clients().clients().front();
  const Ipv4Address address =
      server.resolve(c.ldns, c.prefix, SimTime{0, 100.0});
  const DnsAnswer decoded = server.decode(address);
  EXPECT_FALSE(decoded.anycast);
  EXPECT_TRUE(decoded.front_end.valid());
}

TEST_F(AuthoritativeTest, TtlCachingSuppressesRepeatQueries) {
  AuthoritativeConfig config;
  config.answer_ttl_seconds = 60.0;
  AuthoritativeServer server(geo_policy_, world_.cdn().deployment(), config);
  const Client24& c = world_.clients().clients().front();

  const Ipv4Address first = server.resolve(c.ldns, c.prefix, SimTime{0, 0.0});
  const Ipv4Address again =
      server.resolve(c.ldns, c.prefix, SimTime{0, 30.0});
  EXPECT_EQ(first, again);
  EXPECT_EQ(server.authoritative_queries(), 1u);
  EXPECT_EQ(server.cache_hits(), 1u);

  // After the TTL, the authoritative side is asked again.
  (void)server.resolve(c.ldns, c.prefix, SimTime{0, 120.0});
  EXPECT_EQ(server.authoritative_queries(), 2u);
}

TEST_F(AuthoritativeTest, DistinctEcsPrefixesCacheSeparately) {
  AuthoritativeServer server(geo_policy_, world_.cdn().deployment());
  const auto clients = world_.clients().clients();
  const Client24& a = clients[0];
  // Find a second client behind the same resolver.
  const Client24* b = nullptr;
  for (const Client24& other : clients.subspan(1)) {
    if (other.ldns == a.ldns) {
      b = &other;
      break;
    }
  }
  if (b == nullptr) GTEST_SKIP() << "no shared-LDNS client pair";

  (void)server.resolve(a.ldns, a.prefix, SimTime{0, 0.0});
  (void)server.resolve(b->ldns, b->prefix, SimTime{0, 1.0});
  EXPECT_EQ(server.authoritative_queries(), 2u);  // both hit authoritative
}

TEST_F(AuthoritativeTest, EcsIgnoredWhenDisabled) {
  AuthoritativeConfig config;
  config.honor_ecs = false;
  AuthoritativeServer server(geo_policy_, world_.cdn().deployment(), config);
  const auto clients = world_.clients().clients();
  const Client24& a = clients[0];
  (void)server.resolve(a.ldns, a.prefix, SimTime{0, 0.0});
  // Same LDNS, different prefix: with ECS off it's the same cache entry.
  (void)server.resolve(a.ldns, Prefix(Ipv4Address(10, 99, 1, 0), 24),
                       SimTime{0, 1.0});
  EXPECT_EQ(server.authoritative_queries(), 1u);
  EXPECT_EQ(server.cache_hits(), 1u);
  EXPECT_FALSE(server.query_log().front().had_ecs);
}

TEST_F(AuthoritativeTest, QueryLogRecordsDecisions) {
  AuthoritativeServer server(geo_policy_, world_.cdn().deployment());
  const Client24& c = world_.clients().clients().front();
  (void)server.resolve(c.ldns, c.prefix, SimTime{2, 500.0});
  ASSERT_EQ(server.query_log().size(), 1u);
  const AuthQueryLogEntry& entry = server.query_log().front();
  EXPECT_EQ(entry.ldns, c.ldns);
  EXPECT_TRUE(entry.had_ecs);
  EXPECT_EQ(entry.day, 2);
  EXPECT_FALSE(entry.answered_anycast);
}

TEST_F(AuthoritativeTest, FlushForcesRequery) {
  AuthoritativeServer server(geo_policy_, world_.cdn().deployment());
  const Client24& c = world_.clients().clients().front();
  (void)server.resolve(c.ldns, c.prefix, SimTime{0, 0.0});
  server.flush_caches();
  (void)server.resolve(c.ldns, c.prefix, SimTime{0, 1.0});
  EXPECT_EQ(server.authoritative_queries(), 2u);
}

TEST_F(AuthoritativeTest, DecodeRejectsForeignAddress) {
  AuthoritativeServer server(geo_policy_, world_.cdn().deployment());
  EXPECT_THROW((void)server.decode(Ipv4Address(8, 8, 8, 8)), ConfigError);
}

TEST_F(AuthoritativeTest, RejectsNonPositiveTtl) {
  AuthoritativeConfig config;
  config.answer_ttl_seconds = 0.0;
  EXPECT_THROW(
      AuthoritativeServer(geo_policy_, world_.cdn().deployment(), config),
      ConfigError);
}

}  // namespace
}  // namespace acdn
