#include <gtest/gtest.h>

#include "common/error.h"
#include "test_fixtures.h"
#include "topology/backbone.h"

namespace acdn {
namespace {

using testfx::kChicago;
using testfx::kDenver;
using testfx::kNewYork;
using testfx::kSeattle;

BackboneConfig no_jitter() {
  BackboneConfig config;
  config.fiber_factor_min = 1.0;
  config.fiber_factor_max = 1.0;
  return config;
}

TEST(BackboneGraph, SinglePopIsTrivial) {
  const MetroDatabase metros = testfx::tiny_metros();
  Rng rng(1);
  const BackboneGraph g =
      BackboneGraph::build(metros, {kSeattle}, no_jitter(), rng);
  EXPECT_DOUBLE_EQ(g.distance_km(kSeattle, kSeattle), 0.0);
  EXPECT_TRUE(g.contains(kSeattle));
  EXPECT_FALSE(g.contains(kDenver));
}

TEST(BackboneGraph, ConnectedAndSymmetric) {
  const MetroDatabase metros = testfx::tiny_metros();
  Rng rng(1);
  const std::vector<MetroId> pops{kSeattle, kDenver, kChicago, kNewYork};
  const BackboneGraph g = BackboneGraph::build(metros, pops, no_jitter(), rng);
  for (MetroId a : pops) {
    for (MetroId b : pops) {
      EXPECT_LT(g.distance_km(a, b), BackboneGraph::kUnreachable);
      EXPECT_DOUBLE_EQ(g.distance_km(a, b), g.distance_km(b, a));
    }
  }
}

TEST(BackboneGraph, TriangleInequality) {
  const MetroDatabase metros = testfx::tiny_metros();
  Rng rng(2);
  const std::vector<MetroId> pops{kSeattle, kDenver, kChicago, kNewYork};
  const BackboneGraph g = BackboneGraph::build(metros, pops, no_jitter(), rng);
  for (MetroId a : pops) {
    for (MetroId b : pops) {
      for (MetroId c : pops) {
        EXPECT_LE(g.distance_km(a, c),
                  g.distance_km(a, b) + g.distance_km(b, c) + 1e-6);
      }
    }
  }
}

TEST(BackboneGraph, DistanceAtLeastGeodesic) {
  const MetroDatabase metros = testfx::tiny_metros();
  Rng rng(3);
  const std::vector<MetroId> pops{kSeattle, kDenver, kChicago, kNewYork};
  BackboneConfig config;  // with fiber factor jitter
  const BackboneGraph g = BackboneGraph::build(metros, pops, config, rng);
  for (MetroId a : pops) {
    for (MetroId b : pops) {
      if (a == b) continue;
      EXPECT_GE(g.distance_km(a, b), metros.distance_km(a, b) * 0.999);
    }
  }
}

TEST(BackboneGraph, SparseGraphForcesMultiHopPaths) {
  // With only 1 nearest link per PoP, coast-to-coast traffic must ride
  // through intermediates.
  const MetroDatabase metros = testfx::tiny_metros();
  Rng rng(4);
  BackboneConfig config = no_jitter();
  config.nearest_links = 1;
  config.interconnect_region_hubs = false;
  const std::vector<MetroId> pops{kSeattle, kDenver, kChicago, kNewYork};
  const BackboneGraph g = BackboneGraph::build(metros, pops, config, rng);
  const auto path = g.path(kSeattle, kNewYork);
  ASSERT_GE(path.size(), 3u);  // at least one intermediate hop
  EXPECT_EQ(path.front(), kSeattle);
  EXPECT_EQ(path.back(), kNewYork);
  // The path length matches the distance matrix.
  Kilometers total = 0.0;
  for (std::size_t i = 1; i < path.size(); ++i) {
    // Adjacent PoPs on a shortest path are directly linked; their distance
    // is the link distance.
    total += g.distance_km(path[i - 1], path[i]);
  }
  EXPECT_NEAR(total, g.distance_km(kSeattle, kNewYork), 1e-6);
}

TEST(BackboneGraph, PathEndpointsAndMembership) {
  const MetroDatabase metros = testfx::tiny_metros();
  Rng rng(5);
  const std::vector<MetroId> pops{kSeattle, kDenver, kChicago};
  const BackboneGraph g = BackboneGraph::build(metros, pops, no_jitter(), rng);
  EXPECT_TRUE(g.path(kSeattle, kNewYork).empty());  // not a PoP
  const auto self = g.path(kDenver, kDenver);
  ASSERT_EQ(self.size(), 1u);
  EXPECT_EQ(self.front(), kDenver);
}

TEST(BackboneGraph, DeterministicForSameRngState) {
  const MetroDatabase& metros = MetroDatabase::world();
  std::vector<MetroId> pops;
  for (std::size_t i = 0; i < 30; ++i) {
    pops.push_back(MetroId(static_cast<std::uint32_t>(i * 3)));
  }
  Rng a(9), b(9);
  const BackboneGraph ga = BackboneGraph::build(metros, pops,
                                                BackboneConfig{}, a);
  const BackboneGraph gb = BackboneGraph::build(metros, pops,
                                                BackboneConfig{}, b);
  ASSERT_EQ(ga.links().size(), gb.links().size());
  for (MetroId x : pops) {
    for (MetroId y : pops) {
      EXPECT_DOUBLE_EQ(ga.distance_km(x, y), gb.distance_km(x, y));
    }
  }
}

TEST(BackboneGraph, WorldScalePopsStayConnected) {
  const MetroDatabase& metros = MetroDatabase::world();
  std::vector<MetroId> pops;
  for (const Metro& m : metros.all()) {
    if (m.population_millions > 5.0) pops.push_back(m.id);
  }
  ASSERT_GT(pops.size(), 30u);
  Rng rng(11);
  const BackboneGraph g =
      BackboneGraph::build(metros, pops, BackboneConfig{}, rng);
  for (MetroId a : pops) {
    EXPECT_LT(g.distance_km(pops.front(), a), BackboneGraph::kUnreachable);
  }
}

TEST(BackboneGraph, RejectsEmptyPops) {
  Rng rng(1);
  EXPECT_THROW((void)BackboneGraph::build(MetroDatabase::world(), {},
                                          BackboneConfig{}, rng),
               ConfigError);
}

}  // namespace
}  // namespace acdn
