#include <gtest/gtest.h>

#include <map>
#include <set>

#include "beacon/beacon.h"
#include "beacon/store.h"
#include "sim/world.h"
#include "test_fixtures.h"

namespace acdn {
namespace {

class BeaconTest : public ::testing::Test {
 protected:
  BeaconTest() : world_(ScenarioConfig::small_test()) {}
  World world_;
};

TEST_F(BeaconTest, CandidatePoolSizeAndOrder) {
  for (const LdnsServer& s : world_.ldns().servers()) {
    const auto candidates = world_.beacon().candidates_for(s.id);
    EXPECT_LE(candidates.size(),
              static_cast<std::size_t>(world_.config().beacon.candidate_pool));
    EXPECT_GE(candidates.size(), 1u);
    // No duplicates.
    std::set<FrontEndId> unique(candidates.begin(), candidates.end());
    EXPECT_EQ(unique.size(), candidates.size());
  }
}

TEST_F(BeaconTest, RunBeaconEmitsFourFetches) {
  const Client24& client = world_.clients().clients().front();
  const RouteResult anycast =
      world_.router().route_anycast(client.access_as, client.metro);
  ASSERT_TRUE(anycast.valid);

  Rng rng(3);
  std::vector<DnsLogEntry> dns_log;
  std::vector<HttpLogEntry> http_log;
  world_.beacon().run_beacon(client, SimTime{0, 3600.0}, anycast, rng,
                             dns_log, http_log);
  EXPECT_EQ(dns_log.size(), 4u);
  EXPECT_EQ(http_log.size(), 4u);

  // Exactly one anycast fetch; unicast targets are distinct front-ends.
  int anycast_fetches = 0;
  std::set<FrontEndId> unicast_targets;
  for (const HttpLogEntry& h : http_log) {
    EXPECT_GT(h.rtt_ms, 0.0);
    EXPECT_EQ(h.client, client.id);
    if (h.anycast) {
      ++anycast_fetches;
      EXPECT_EQ(h.front_end, anycast.front_end);
    } else {
      EXPECT_TRUE(unicast_targets.insert(h.front_end).second);
    }
  }
  EXPECT_EQ(anycast_fetches, 1);
  EXPECT_EQ(unicast_targets.size(), 3u);

  // The closest candidate to the LDNS is always among the unicast targets.
  const auto pool = world_.beacon().candidates_for(client.ldns);
  EXPECT_TRUE(unicast_targets.count(pool.front()));
  // All DNS rows carry the client's resolver.
  for (const DnsLogEntry& d : dns_log) EXPECT_EQ(d.ldns, client.ldns);
}

TEST_F(BeaconTest, UrlIdsAreGloballyUnique) {
  const Client24& client = world_.clients().clients().front();
  const RouteResult anycast =
      world_.router().route_anycast(client.access_as, client.metro);
  Rng rng(3);
  std::vector<DnsLogEntry> dns_log;
  std::vector<HttpLogEntry> http_log;
  for (int i = 0; i < 10; ++i) {
    world_.beacon().run_beacon(client, SimTime{0, 3600.0}, anycast, rng,
                               dns_log, http_log);
  }
  std::set<std::uint64_t> ids;
  for (const DnsLogEntry& d : dns_log) EXPECT_TRUE(ids.insert(d.url_id).second);
}

TEST_F(BeaconTest, MeasureAllCandidatesReturnsOnePerCandidate) {
  const Client24& client = world_.clients().clients().front();
  Rng rng(4);
  const auto rtts = world_.beacon().measure_all_candidates(
      client, SimTime{0, 7200.0}, rng);
  EXPECT_EQ(rtts.size(),
            world_.beacon().candidates_for(client.ldns).size());
  for (Milliseconds ms : rtts) EXPECT_GT(ms, 0.0);
}

TEST_F(BeaconTest, RandomTargetsAreDistanceWeighted) {
  // §3.3: "we return the 3rd closest front-end with higher probability
  // than the 4th closest". Count how often each candidate rank appears as
  // a random target over many beacon executions.
  const Client24& client = world_.clients().clients().front();
  const RouteResult anycast =
      world_.router().route_anycast(client.access_as, client.metro);
  const auto pool = world_.beacon().candidates_for(client.ldns);
  ASSERT_GE(pool.size(), 6u);

  Rng rng(17);
  std::map<FrontEndId, int> picked;
  for (int i = 0; i < 4000; ++i) {
    std::vector<DnsLogEntry> dns_log;
    std::vector<HttpLogEntry> http_log;
    world_.beacon().run_beacon(client, SimTime{0, 3600.0}, anycast, rng,
                               dns_log, http_log);
    for (const HttpLogEntry& h : http_log) {
      if (!h.anycast && h.front_end != pool.front()) ++picked[h.front_end];
    }
  }
  // 2nd-closest (pool[1], the closest random-eligible) clearly beats the
  // farthest candidate.
  EXPECT_GT(picked[pool[1]], picked[pool.back()] * 2);
}

TEST_F(BeaconTest, NearerFrontEndsHaveLowerRtt) {
  // Averaged over samples, the closest candidate must beat the farthest.
  const Client24& client = world_.clients().clients().front();
  const auto pool = world_.beacon().candidates_for(client.ldns);
  ASSERT_GE(pool.size(), 3u);
  Rng rng(5);
  double near_sum = 0.0, far_sum = 0.0;
  for (int i = 0; i < 50; ++i) {
    near_sum += world_.beacon().unicast_rtt(client, pool.front(),
                                            SimTime{0, 3600.0}, rng);
    far_sum += world_.beacon().unicast_rtt(client, pool.back(),
                                           SimTime{0, 3600.0}, rng);
  }
  EXPECT_LT(near_sum, far_sum);
}

// ------------------------------------------------------- MeasurementStore

TEST(MeasurementStore, JoinMatchesOnUrlId) {
  std::vector<DnsLogEntry> dns_log;
  std::vector<HttpLogEntry> http_log;
  // Beacon 0: 4 fetches; beacon 1: only 2 HTTP rows arrive; one HTTP row
  // has no matching DNS row and is dropped.
  for (std::uint64_t k = 0; k < 4; ++k) {
    dns_log.push_back({k, LdnsId(7), 0});
    http_log.push_back({k, ClientId(1), k == 0, FrontEndId(unsigned(k)),
                        10.0 + double(k), 0, 1.0});
  }
  dns_log.push_back({4, LdnsId(7), 0});
  http_log.push_back({4, ClientId(2), true, FrontEndId(0), 20.0, 0, 2.0});
  http_log.push_back({99, ClientId(3), false, FrontEndId(1), 30.0, 0, 3.0});

  MeasurementStore store;
  store.join(dns_log, http_log);
  EXPECT_EQ(store.total(), 2u);
  const auto day0 = store.by_day(0);
  ASSERT_EQ(day0.size(), 2u);
  EXPECT_EQ(day0[0].targets.size(), 4u);
  EXPECT_EQ(day0[0].client, ClientId(1));
  EXPECT_EQ(day0[0].ldns, LdnsId(7));
  EXPECT_EQ(day0[1].targets.size(), 1u);
  EXPECT_EQ(day0[1].client, ClientId(2));
}

TEST(MeasurementStore, ByDayOutOfRangeIsEmpty) {
  MeasurementStore store;
  EXPECT_TRUE(store.by_day(0).empty());
  EXPECT_TRUE(store.by_day(-1).empty());
  BeaconMeasurement m;
  m.day = 2;
  store.add(std::move(m));
  EXPECT_TRUE(store.by_day(0).empty());
  EXPECT_EQ(store.by_day(2).size(), 1u);
  EXPECT_EQ(store.days(), 3);
}

TEST(BeaconMeasurementHelpers, AnycastAndBestUnicast) {
  const BeaconMeasurement m = testfx::make_measurement(
      1, 2, 0, 25.0, {{0, 40.0}, {1, 18.0}, {2, 30.0}});
  EXPECT_EQ(m.anycast_ms(), 25.0);
  const auto best = m.best_unicast();
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->front_end, FrontEndId(1));
  EXPECT_DOUBLE_EQ(best->rtt_ms, 18.0);

  BeaconMeasurement empty;
  EXPECT_FALSE(empty.anycast_ms().has_value());
  EXPECT_FALSE(empty.best_unicast().has_value());
  EXPECT_FALSE(empty.anycast_front_end().has_value());
}

TEST(PassiveLogStore, AddAndQuery) {
  PassiveLog log;
  log.add({ClientId(1), FrontEndId(0), 0, 10.0});
  log.add({ClientId(1), FrontEndId(1), 1, 5.0});
  log.add({ClientId(2), FrontEndId(0), 1, 7.0});
  EXPECT_EQ(log.days(), 2);
  EXPECT_EQ(log.by_day(0).size(), 1u);
  EXPECT_EQ(log.by_day(1).size(), 2u);
  EXPECT_EQ(log.total(), 3u);
}

}  // namespace
}  // namespace acdn
