#include <gtest/gtest.h>

#include "common/error.h"
#include "routing/bgp.h"
#include "test_fixtures.h"

namespace acdn {
namespace {

using testfx::kChicago;
using testfx::kDenver;
using testfx::kNewYork;
using testfx::kSeattle;

class BgpTest : public ::testing::Test {
 protected:
  BgpTest() : metros_(testfx::tiny_metros()), w_(testfx::tiny_world(metros_)) {}

  MetroDatabase metros_;
  testfx::TinyWorld w_;
};

TEST_F(BgpTest, RequiresCdnTypeTarget) {
  EXPECT_THROW(BgpSimulator(w_.graph, w_.tier1), ConfigError);
}

TEST_F(BgpTest, AnycastEveryoneHasARoute) {
  const BgpSimulator sim(w_.graph, w_.cdn);
  const BgpRouteTable table = sim.compute_anycast();
  for (const AsNode& node : w_.graph.all_as()) {
    if (node.id == w_.cdn) continue;
    EXPECT_TRUE(table.best(node.id).has_value()) << node.name;
  }
}

TEST_F(BgpTest, RelationshipPreferenceBeatsPathLength) {
  const BgpSimulator sim(w_.graph, w_.cdn);
  const BgpRouteTable table = sim.compute_anycast();
  // access_east peers directly with the CDN and also buys from tier1
  // (which, as the CDN's provider, has a customer route). The peer route
  // must win even though both are short.
  const auto best = table.best(w_.access_east);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->type, RouteType::kPeer);
  EXPECT_EQ(best->next_hop, w_.cdn);
  EXPECT_EQ(best->as_path_len, 1);
}

TEST_F(BgpTest, CustomerRouteViaProviderChain) {
  const BgpSimulator sim(w_.graph, w_.cdn);
  const BgpRouteTable table = sim.compute_anycast();
  // tier1 is the CDN's provider: customer route, length 1.
  const auto t1 = table.best(w_.tier1);
  ASSERT_TRUE(t1.has_value());
  EXPECT_EQ(t1->type, RouteType::kCustomer);
  EXPECT_EQ(t1->as_path_len, 1);
  // transit peers with the CDN directly (peer, len 1) and could also go
  // via its provider tier1 (provider, len 2); peer wins.
  const auto tr = table.best(w_.transit);
  ASSERT_TRUE(tr.has_value());
  EXPECT_EQ(tr->type, RouteType::kPeer);
  // access_west only has its provider (transit).
  const auto west = table.best(w_.access_west);
  ASSERT_TRUE(west.has_value());
  EXPECT_EQ(west->type, RouteType::kProvider);
  EXPECT_EQ(west->next_hop, w_.transit);
  EXPECT_EQ(west->as_path_len, 2);
}

TEST_F(BgpTest, WalkFollowsSelectedChain) {
  const BgpSimulator sim(w_.graph, w_.cdn);
  const BgpRouteTable table = sim.compute_anycast();
  const std::vector<AsId> path = table.walk(w_.access_west);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], w_.access_west);
  EXPECT_EQ(path[1], w_.transit);
  EXPECT_EQ(path[2], w_.cdn);
}

TEST_F(BgpTest, WalkAlternateCandidate) {
  const BgpSimulator sim(w_.graph, w_.cdn);
  const BgpRouteTable table = sim.compute_anycast();
  // access_east candidates: peer (direct) then provider (via tier1).
  const auto cands = table.candidates(w_.access_east);
  ASSERT_GE(cands.size(), 2u);
  const std::vector<AsId> alt = table.walk(w_.access_east, 1);
  ASSERT_EQ(alt.size(), 3u);
  EXPECT_EQ(alt[1], w_.tier1);
  EXPECT_EQ(alt[2], w_.cdn);
  // Out-of-range candidate indexes clamp to the worst candidate.
  EXPECT_EQ(table.walk(w_.access_east, 99), alt);
}

TEST_F(BgpTest, ValleyFreedom) {
  // No walk may go down (to a customer) and then up (to a provider), and
  // at most one peer edge may appear, after which only customer edges.
  const BgpSimulator sim(w_.graph, w_.cdn);
  const BgpRouteTable table = sim.compute_anycast();
  for (const AsNode& node : w_.graph.all_as()) {
    if (node.id == w_.cdn) continue;
    for (std::size_t k = 0; k < table.candidates(node.id).size(); ++k) {
      const std::vector<AsId> path = table.walk(node.id, k);
      bool descending = false;  // true after a peer or customer-direction edge
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        Neighbor::Kind kind = Neighbor::Kind::kPeer;
        for (const Neighbor& nb : w_.graph.neighbors(path[i])) {
          if (nb.as == path[i + 1]) kind = nb.kind;
        }
        if (descending) {
          // Once descending, only customer edges (next hop is our customer).
          EXPECT_EQ(kind, Neighbor::Kind::kCustomer)
              << node.name << " candidate " << k;
        }
        if (kind != Neighbor::Kind::kProvider) descending = true;
      }
    }
  }
}

TEST_F(BgpTest, UnicastAnnouncementRestrictsFirstHop) {
  const BgpSimulator sim(w_.graph, w_.cdn);
  // Prefix announced only at Seattle. The transit's session list with the
  // CDN is {Chicago}, but the transit has a PoP at Seattle, so it can
  // still pick the prefix up there (§3.1 announce-to-everyone rule).
  const std::vector<MetroId> seattle_only{kSeattle};
  const BgpRouteTable table = sim.compute(seattle_only);
  const auto tr = table.best(w_.transit);
  ASSERT_TRUE(tr.has_value());
  EXPECT_EQ(tr->type, RouteType::kPeer);
  // Everyone can still reach it via the tier1 provider chain.
  for (const AsNode& node : w_.graph.all_as()) {
    if (node.id == w_.cdn) continue;
    EXPECT_TRUE(table.best(node.id).has_value()) << node.name;
  }
}

TEST_F(BgpTest, AnnouncementMustBeAtCdnPops) {
  // Remove one metro from the CDN's presence and announcing there throws.
  AsGraph graph(metros_);
  AsNode cdn;
  cdn.name = "CDN2";
  cdn.type = AsType::kCdn;
  cdn.presence = {kSeattle};
  AsNode isp;
  isp.name = "ISP";
  isp.type = AsType::kAccess;
  isp.presence = {kSeattle};
  const AsId cdn_id = graph.add_as(cdn);
  const AsId isp_id = graph.add_as(isp);
  graph.add_link({isp_id, cdn_id, Relationship::kPeerToPeer, {kSeattle}});
  const BgpSimulator sim(graph, cdn_id);
  const std::vector<MetroId> bad{kNewYork};
  EXPECT_THROW((void)sim.compute(bad), ConfigError);
  const std::vector<MetroId> none{};
  EXPECT_THROW((void)sim.compute(none), ConfigError);
}

TEST_F(BgpTest, UnreachableWithoutAnyLink) {
  // A CDN with no interconnection at all: nobody has a route.
  AsGraph graph(metros_);
  AsNode cdn;
  cdn.name = "LonelyCDN";
  cdn.type = AsType::kCdn;
  cdn.presence = {kSeattle};
  AsNode isp;
  isp.name = "ISP";
  isp.type = AsType::kAccess;
  isp.presence = {kDenver};
  const AsId cdn_id = graph.add_as(cdn);
  const AsId isp_id = graph.add_as(isp);
  const BgpSimulator sim(graph, cdn_id);
  const std::vector<MetroId> seattle{kSeattle};
  const BgpRouteTable table = sim.compute(seattle);
  EXPECT_FALSE(table.best(isp_id).has_value());
  EXPECT_TRUE(table.walk(isp_id).empty());
}

TEST_F(BgpTest, CandidatesAreSorted) {
  const BgpSimulator sim(w_.graph, w_.cdn);
  const BgpRouteTable table = sim.compute_anycast();
  for (const AsNode& node : w_.graph.all_as()) {
    const auto cands = table.candidates(node.id);
    for (std::size_t i = 1; i < cands.size(); ++i) {
      EXPECT_FALSE(cands[i] < cands[i - 1]) << node.name;
    }
  }
}

}  // namespace
}  // namespace acdn
