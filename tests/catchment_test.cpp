#include <gtest/gtest.h>

#include "analysis/catchment.h"
#include "sim/world.h"

namespace acdn {
namespace {

class CatchmentTest : public ::testing::Test {
 protected:
  CatchmentTest()
      : world_(ScenarioConfig::small_test()),
        catchments_(compute_catchments(world_.clients(), world_.router(),
                                       world_.metros())) {}

  World world_;
  std::vector<CatchmentSummary> catchments_;
};

TEST_F(CatchmentTest, OneSummaryPerFrontEnd) {
  EXPECT_EQ(catchments_.size(), world_.cdn().deployment().size());
  for (std::size_t i = 0; i < catchments_.size(); ++i) {
    EXPECT_EQ(catchments_[i].front_end.value, i);
    EXPECT_FALSE(catchments_[i].name.empty());
  }
}

TEST_F(CatchmentTest, ClientsAndSharesAddUp) {
  std::size_t clients = 0;
  double share = 0.0;
  for (const CatchmentSummary& c : catchments_) {
    clients += c.clients;
    share += c.query_share;
    EXPECT_GE(c.query_share, 0.0);
  }
  EXPECT_EQ(clients, world_.clients().size());
  EXPECT_NEAR(share, 1.0, 1e-9);
}

TEST_F(CatchmentTest, DistancesAreOrdered) {
  for (const CatchmentSummary& c : catchments_) {
    if (c.clients == 0) continue;
    EXPECT_GE(c.p90_client_km + 1e-9, c.median_client_km) << c.name;
  }
}

TEST_F(CatchmentTest, CountryMixAccountsForAllClients) {
  for (const CatchmentSummary& c : catchments_) {
    int total = 0;
    for (const auto& [country, n] : c.countries) total += n;
    EXPECT_EQ(static_cast<std::size_t>(total), c.clients) << c.name;
    EXPECT_GE(c.foreign_clients(), 0);
    EXPECT_LE(c.foreign_clients(), total);
  }
}

TEST_F(CatchmentTest, HealthIndicatorsAreSane) {
  const CatchmentHealth health = catchment_health(catchments_);
  EXPECT_GT(health.active_front_ends, 0.0);
  EXPECT_LE(health.active_front_ends, 1.0);
  EXPECT_GE(health.volume_within_1000km, 0.0);
  EXPECT_LE(health.volume_within_1000km, 1.0 + 1e-9);
  EXPECT_GT(health.busiest_share, 0.0);
  EXPECT_LE(health.busiest_share, 1.0);
  // The busiest site carries at least the average share.
  EXPECT_GE(health.busiest_share, 1.0 / double(catchments_.size()));
}

TEST(CatchmentHealthEmpty, EmptyInputIsZero) {
  const CatchmentHealth health = catchment_health({});
  EXPECT_DOUBLE_EQ(health.active_front_ends, 0.0);
  EXPECT_DOUBLE_EQ(health.busiest_share, 0.0);
}

}  // namespace
}  // namespace acdn
