#include <gtest/gtest.h>

#include <set>

#include "cdn/catalogs.h"
#include "cdn/network.h"
#include "cdn/router.h"
#include "common/error.h"
#include "test_fixtures.h"

namespace acdn {
namespace {

using testfx::kChicago;
using testfx::kDenver;
using testfx::kNewYork;
using testfx::kSeattle;

// -------------------------------------------------------------- Deployment

TEST(Deployment, DefaultMatchesConfigTotal) {
  PrefixAllocator addresses = PrefixAllocator::cdn_pool();
  const DeploymentConfig config;
  const Deployment d =
      Deployment::make_default(MetroDatabase::world(), config, addresses);
  EXPECT_EQ(static_cast<int>(d.size()), config.total());
}

TEST(Deployment, SitesHaveUniqueMetrosAndPrefixes) {
  PrefixAllocator addresses = PrefixAllocator::cdn_pool();
  const Deployment d = Deployment::make_default(MetroDatabase::world(),
                                                DeploymentConfig{}, addresses);
  std::set<MetroId> metros;
  std::set<Prefix> prefixes;
  for (const FrontEndSite& s : d.sites()) {
    EXPECT_TRUE(metros.insert(s.metro).second);
    EXPECT_TRUE(prefixes.insert(s.unicast_prefix).second);
    EXPECT_NE(s.unicast_prefix, d.anycast_prefix());
  }
}

TEST(Deployment, RegionalCountsMatch) {
  PrefixAllocator addresses = PrefixAllocator::cdn_pool();
  const DeploymentConfig config;
  const Deployment d = Deployment::make_default(MetroDatabase::world(),
                                                config, addresses);
  int na = 0;
  for (const FrontEndSite& s : d.sites()) {
    if (MetroDatabase::world().metro(s.metro).region ==
        Region::kNorthAmerica) {
      ++na;
    }
  }
  EXPECT_EQ(na, config.north_america);
}

TEST(Deployment, NearestSitesSorted) {
  PrefixAllocator addresses = PrefixAllocator::cdn_pool();
  const Deployment d = Deployment::make_default(MetroDatabase::world(),
                                                DeploymentConfig{}, addresses);
  const GeoPoint berlin{52.52, 13.40};
  const auto nearest = d.nearest_sites(MetroDatabase::world(), berlin, 5);
  ASSERT_EQ(nearest.size(), 5u);
  Kilometers prev = 0.0;
  for (FrontEndId fe : nearest) {
    const Kilometers dkm = haversine_km(
        berlin,
        MetroDatabase::world().metro(d.site(fe).metro).location);
    EXPECT_GE(dkm, prev);
    prev = dkm;
  }
}

TEST(Deployment, SiteForPrefixRoundTrip) {
  PrefixAllocator addresses = PrefixAllocator::cdn_pool();
  const Deployment d = Deployment::make_default(MetroDatabase::world(),
                                                DeploymentConfig{}, addresses);
  for (const FrontEndSite& s : d.sites()) {
    const auto found = d.site_for_prefix(s.unicast_prefix);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, s.id);
  }
  EXPECT_FALSE(
      d.site_for_prefix(Prefix(Ipv4Address(1, 2, 3, 0), 24)).has_value());
}

TEST(Deployment, LookupErrors) {
  PrefixAllocator addresses = PrefixAllocator::cdn_pool();
  const Deployment d = Deployment::make_default(MetroDatabase::world(),
                                                DeploymentConfig{}, addresses);
  EXPECT_THROW((void)d.site(FrontEndId(9999)), NotFoundError);
  EXPECT_FALSE(d.site_at(MetroId(100000)).has_value());
}

// ---------------------------------------------------------------- Catalogs

TEST(Catalogs, TwentyTwoEntriesSortedDescending) {
  const auto catalog = cdn_catalog();
  EXPECT_EQ(catalog.size(), 22u);  // 21 public CDNs + the study's own
  // Paper-quoted values.
  bool found_level3 = false, found_cdnify = false;
  for (const auto& e : catalog) {
    if (e.name == "Level3") {
      EXPECT_EQ(e.locations, 62);
      found_level3 = true;
    }
    if (e.name == "CDNify") {
      EXPECT_EQ(e.locations, 17);
      found_cdnify = true;
    }
  }
  EXPECT_TRUE(found_level3);
  EXPECT_TRUE(found_cdnify);
  EXPECT_TRUE(study_cdn().anycast);
}

// ---------------------------------------------------- CdnNetwork + Router

class CdnFixture : public ::testing::Test {
 protected:
  CdnFixture()
      : metros_(testfx::tiny_metros()), graph_(metros_) {
    // Access + transit skeleton (no CDN yet).
    AsNode tier1;
    tier1.name = "Tier1";
    tier1.type = AsType::kTier1;
    tier1.presence = {kSeattle, kDenver, kChicago, kNewYork};
    tier1.backbone_stretch = 1.0;
    tier1_ = graph_.add_as(tier1);

    AsNode isp;
    isp.name = "ISP";
    isp.type = AsType::kAccess;
    isp.presence = {kSeattle, kDenver, kChicago, kNewYork};
    isp.backbone_stretch = 1.0;
    isp_ = graph_.add_as(isp);
    graph_.add_link({isp_, tier1_, Relationship::kCustomerToProvider,
                     {kSeattle, kDenver, kChicago, kNewYork}});

    // Two front-ends: Seattle and NewYork.
    std::vector<FrontEndSite> sites;
    PrefixAllocator addresses = PrefixAllocator::cdn_pool();
    const Prefix anycast = addresses.allocate_slash24();
    sites.push_back(FrontEndSite{FrontEndId{}, kSeattle, "Seattle",
                                 addresses.allocate_slash24()});
    sites.push_back(FrontEndSite{FrontEndId{}, kNewYork, "NewYork",
                                 addresses.allocate_slash24()});
    Deployment deployment(std::move(sites), anycast);

    CdnNetworkConfig config;
    config.extra_peering_metros = 1;  // Chicago or Denver becomes peering-only
    Rng rng(4);
    cdn_ = std::make_unique<CdnNetwork>(graph_, std::move(deployment), config,
                                        rng);
    router_ = std::make_unique<CdnRouter>(graph_, *cdn_);
  }

  MetroDatabase metros_;
  AsGraph graph_;
  AsId tier1_;
  AsId isp_;
  std::unique_ptr<CdnNetwork> cdn_;
  std::unique_ptr<CdnRouter> router_;
};

TEST_F(CdnFixture, PresenceIncludesSitesAndExtras) {
  const auto& announce = cdn_->anycast_announce_metros();
  EXPECT_EQ(announce.size(), 3u);  // 2 sites + 1 peering-only PoP
  EXPECT_TRUE(std::find(announce.begin(), announce.end(), kSeattle) !=
              announce.end());
  EXPECT_TRUE(std::find(announce.begin(), announce.end(), kNewYork) !=
              announce.end());
}

TEST_F(CdnFixture, UnicastAnnouncedAtSiteMetroOnly) {
  const FrontEndId seattle_fe = *cdn_->deployment().site_at(kSeattle);
  const auto& announce = cdn_->unicast_announce_metros(seattle_fe);
  ASSERT_EQ(announce.size(), 1u);
  EXPECT_EQ(announce.front(), kSeattle);
}

TEST_F(CdnFixture, NearestFrontEndFromPops) {
  const FrontEndId seattle_fe = *cdn_->deployment().site_at(kSeattle);
  const FrontEndId ny_fe = *cdn_->deployment().site_at(kNewYork);
  EXPECT_EQ(cdn_->nearest_front_end(kSeattle), seattle_fe);
  EXPECT_EQ(cdn_->nearest_front_end(kNewYork), ny_fe);
  EXPECT_DOUBLE_EQ(cdn_->backbone_km(kSeattle, seattle_fe), 0.0);
  EXPECT_GT(cdn_->backbone_km(kSeattle, ny_fe), 3000.0);
  EXPECT_THROW((void)cdn_->nearest_front_end(MetroId(999)), Error);
}

TEST_F(CdnFixture, AnycastRoutesToNearbyFrontEnd) {
  const RouteResult seattle = router_->route_anycast(isp_, kSeattle);
  ASSERT_TRUE(seattle.valid);
  EXPECT_EQ(seattle.front_end, *cdn_->deployment().site_at(kSeattle));
  const RouteResult ny = router_->route_anycast(isp_, kNewYork);
  ASSERT_TRUE(ny.valid);
  EXPECT_EQ(ny.front_end, *cdn_->deployment().site_at(kNewYork));
}

TEST_F(CdnFixture, UnicastForcesTheTarget) {
  const FrontEndId ny_fe = *cdn_->deployment().site_at(kNewYork);
  const RouteResult r = router_->route_unicast(isp_, kSeattle, ny_fe);
  ASSERT_TRUE(r.valid);
  EXPECT_EQ(r.front_end, ny_fe);
  EXPECT_EQ(r.ingress_metro, kNewYork);
  EXPECT_GT(r.path_km, 3000.0);  // cross-country haul
  EXPECT_DOUBLE_EQ(r.backbone_km, 0.0);
}

TEST_F(CdnFixture, TraceMatchesRoute) {
  const CdnRouter::Trace trace = router_->trace_anycast(isp_, kDenver);
  ASSERT_TRUE(trace.result.valid);
  ASSERT_TRUE(trace.path.valid);
  EXPECT_EQ(trace.path.ingress_metro, trace.result.ingress_metro);
  EXPECT_DOUBLE_EQ(trace.path.total_km, trace.result.path_km);
}

TEST_F(CdnFixture, CandidateCountPositive) {
  EXPECT_GE(router_->anycast_candidate_count(isp_), 1u);
}

TEST_F(CdnFixture, TotalKmAddsBackbone) {
  RouteResult r;
  r.valid = true;
  r.path_km = 100.0;
  r.backbone_km = 50.0;
  EXPECT_DOUBLE_EQ(r.total_km(), 150.0);
}

}  // namespace
}  // namespace acdn
