// Chaos harness (fault-injection tentpole): full small-world scenarios run
// under an armed fault schedule — front-end outages, a BGP reset/withdrawal
// burst, LDNS errors, beacon sample loss, and store drops — asserting the
// global invariants the subsystem promises:
//
//   * no crash, and the pipeline still produces measurements,
//   * byte-identical results for any thread count and across reruns,
//   * exact conservation of measurement counts through the join under
//     injected drops,
//   * the run manifest records the exact schedule and per-point trigger
//     counts, equal to the "fault.fired.*" metrics counters.
//
// All suites here are named Chaos* so the CI chaos leg can run exactly
// this wall with `ctest -R Chaos`. The fault seed is overridable via
// ACDN_CHAOS_SEED (the CI leg runs three fixed seeds); tests whose
// assertions depend on specific faults actually firing use their own
// pinned seeds instead.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "report/run_report.h"
#include "sim/scenario.h"
#include "sim/simulation.h"
#include "sim/world.h"

namespace acdn {
namespace {

constexpr int kChaosDays = 3;

std::uint64_t chaos_seed() {
  if (const char* env = std::getenv("ACDN_CHAOS_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 0xc4a05u;
}

/// The acceptance schedule: a persistent low-rate front-end outage, a
/// mid-run BGP session-reset + withdrawal burst, LDNS errors, 10% beacon
/// sample loss, and store-side drops.
FaultSchedule chaos_schedule(std::uint64_t fault_seed) {
  FaultSchedule schedule;
  schedule.seed = fault_seed;
  schedule.rules = {
      {"cdn/front_end", FaultKind::kError, 0.05, 0, kFaultWindowOpen, 0.0},
      {"bgp/session", FaultKind::kError, 0.5, 1, 2, 0.0},
      {"bgp/withdrawal", FaultKind::kDrop, 0.25, 1, 2, 0.0},
      {"dns/resolve", FaultKind::kError, 0.05, 0, kFaultWindowOpen, 0.0},
      {"beacon/http_fetch", FaultKind::kDrop, 0.10, 0, kFaultWindowOpen,
       0.0},
      {"beacon/store", FaultKind::kDrop, 0.05, 0, kFaultWindowOpen, 0.0},
  };
  return schedule;
}

std::uint64_t mix_into(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

/// Order-sensitive digest of every stored measurement field; two stores
/// with the same digest hold byte-identical data in identical order.
std::uint64_t store_digest(const MeasurementStore& store) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (DayIndex d = 0; d < store.days(); ++d) {
    for (const BeaconMeasurement& m : store.by_day(d)) {
      h = mix_into(h, m.beacon_id);
      h = mix_into(h, m.client.value);
      h = mix_into(h, m.ldns.value);
      h = mix_into(h, static_cast<std::uint64_t>(m.day));
      h = mix_into(h, std::bit_cast<std::uint64_t>(m.hour));
      for (const BeaconMeasurement::Target& t : m.targets) {
        h = mix_into(h, t.anycast ? 1u : 0u);
        h = mix_into(h, t.front_end.value);
        h = mix_into(h, std::bit_cast<std::uint64_t>(t.rtt_ms));
      }
    }
  }
  return h;
}

struct ChaosRun {
  std::uint64_t digest = 0;
  std::size_t measurements = 0;
  std::map<std::string, std::uint64_t> trigger_counts;
  MetricsSnapshot metrics;
};

/// One full scenario under the given schedule. Leaves the process-wide
/// registries clean (metrics off and reset, fail points disarmed).
ChaosRun run_chaos_with(int threads, FaultSchedule schedule) {
  MetricsRegistry::global().reset();
  set_metrics_enabled(true);

  ScenarioConfig config = ScenarioConfig::small_test();
  config.simulation_threads = threads;
  config.faults = std::move(schedule);
  World world(config);  // arms the schedule
  Simulation sim(world);
  sim.run_days(kChaosDays);

  ChaosRun run;
  run.digest = store_digest(sim.measurements());
  run.measurements = sim.measurements().total();
  run.trigger_counts = FailPointRegistry::global().trigger_counts();
  run.metrics = MetricsRegistry::global().snapshot();

  set_metrics_enabled(false);
  MetricsRegistry::global().reset();
  FailPointRegistry::global().disarm();
  return run;
}

ChaosRun run_chaos(int threads, std::uint64_t fault_seed) {
  return run_chaos_with(threads, chaos_schedule(fault_seed));
}

std::uint64_t counter_or_zero(const MetricsSnapshot& snap,
                              const std::string& name) {
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0u : it->second;
}

TEST(Chaos, ScenarioUnderFaultsCompletesAndFires) {
  const ChaosRun run = run_chaos(2, chaos_seed());
  // Degraded, not dead: measurements still flow under 10% beacon loss.
  EXPECT_GT(run.measurements, 0u);
  std::uint64_t total_fired = 0;
  for (const auto& [point, count] : run.trigger_counts) total_fired += count;
  EXPECT_GT(total_fired, 0u);
  // The highest-rate rule cannot plausibly sit out a three-day run.
  EXPECT_GT(run.trigger_counts.at("beacon/http_fetch"), 0u);
}

TEST(Chaos, DigestsIdenticalAcrossThreadCounts) {
  const std::uint64_t seed = chaos_seed();
  const ChaosRun one = run_chaos(1, seed);
  const ChaosRun two = run_chaos(2, seed);
  const ChaosRun eight = run_chaos(8, seed);
  EXPECT_EQ(one.digest, two.digest);
  EXPECT_EQ(one.digest, eight.digest);
  EXPECT_EQ(one.measurements, eight.measurements);
  // The injected schedule itself is thread-count independent too: every
  // decision coordinate is simulation state, never thread identity.
  EXPECT_EQ(one.trigger_counts, two.trigger_counts);
  EXPECT_EQ(one.trigger_counts, eight.trigger_counts);
}

TEST(Chaos, RepeatedRunsAreByteIdentical) {
  const std::uint64_t seed = chaos_seed();
  const ChaosRun first = run_chaos(3, seed);
  const ChaosRun second = run_chaos(3, seed);
  EXPECT_EQ(first.digest, second.digest);
  EXPECT_EQ(first.trigger_counts, second.trigger_counts);
  EXPECT_EQ(first.metrics.counters, second.metrics.counters);
}

TEST(Chaos, DifferentFaultSeedsUseTheSameScheduleShape) {
  // Changing only faults.seed re-rolls every decision but keeps the
  // config digest: the schedule shapes the world, the seed does not.
  ScenarioConfig a = ScenarioConfig::small_test();
  a.faults = chaos_schedule(1);
  ScenarioConfig b = ScenarioConfig::small_test();
  b.faults = chaos_schedule(2);
  EXPECT_EQ(a.digest(), b.digest());
  FailPointRegistry::global().disarm();
}

TEST(Chaos, MeasurementCountsAreConserved) {
  // Pinned seed: the assertions below need drops to actually happen.
  const ChaosRun run = run_chaos(4, 0x5eedf00dull);
  const auto c = [&](const char* name) {
    return counter_or_zero(run.metrics, name);
  };
  // Every HTTP log row is joined or an orphan; every joined target is
  // stored or dropped by the injected store fault; every joined row is
  // stored or dropped whole. Nothing leaks, nothing double-counts.
  EXPECT_EQ(c("join.http_rows"),
            c("join.joined_targets") + c("join.orphan_http"));
  EXPECT_EQ(c("join.distinct_dns"),
            c("join.joined_targets") + c("join.orphan_dns"));
  EXPECT_EQ(c("join.joined_targets"),
            c("join.stored_targets") + c("join.dropped_targets"));
  EXPECT_EQ(c("join.measurements"),
            c("join.stored_rows") + c("join.dropped_rows"));
  EXPECT_EQ(run.measurements, c("join.stored_rows"));
  EXPECT_GT(c("join.dropped_rows"), 0u);
  EXPECT_GT(c("join.joined_targets"), 0u);
  // The day stats count executed beacons directly: under dns/resolve and
  // beacon/http_fetch faults the dns log shrinks, but every execution the
  // beacon system counted must still be accounted for by the simulation.
  // (The old dns_rows / 4 derivation undercounted exactly here.)
  EXPECT_EQ(c("sim.beacons"), c("beacon.executions"));
}

TEST(Chaos, FrontEndOutagesRerouteClients) {
  // A dedicated harsh outage schedule: with half of all (front-end, day)
  // pairs down, some client's primary is certainly dark while an up
  // fallback candidate certainly exists, so failover must be observed.
  FaultSchedule schedule;
  schedule.seed = 0xbadcafeull;
  schedule.rules = {
      {"cdn/front_end", FaultKind::kError, 0.5, 0, kFaultWindowOpen, 0.0},
  };
  const ChaosRun run = run_chaos_with(2, std::move(schedule));
  EXPECT_GT(counter_or_zero(run.metrics, "fault.frontend_reroutes"), 0u);
  EXPECT_GT(run.trigger_counts.at("cdn/front_end"), 0u);
}

TEST(Chaos, ManifestRecordsExactScheduleAndTriggerCounts) {
  MetricsRegistry::global().reset();
  set_metrics_enabled(true);

  ScenarioConfig config = ScenarioConfig::small_test();
  config.simulation_threads = 2;
  config.faults = chaos_schedule(chaos_seed());
  World world(config);
  Simulation sim(world);
  sim.run_days(kChaosDays);

  RunManifest manifest;
  manifest.tool = "chaos_test";
  manifest.config_digest = config.digest();
  manifest.seed = config.seed;
  manifest.days = kChaosDays;
  manifest.metrics = MetricsRegistry::global().snapshot();
  manifest.fault_injection = FaultInjectionRecord::from_registry();

  // The manifest's trigger counts must equal the "fault.fired.*" metrics
  // counters exactly — both sides increment in the same evaluate() call.
  ASSERT_EQ(manifest.fault_injection.trigger_counts.size(),
            known_fail_points().size());
  for (const auto& [point, count] :
       manifest.fault_injection.trigger_counts) {
    EXPECT_EQ(count,
              counter_or_zero(manifest.metrics, "fault.fired." + point))
        << point;
  }
  // And nothing fired outside the recorded points.
  for (const auto& [name, value] : manifest.metrics.counters) {
    if (name.rfind("fault.fired.", 0) != 0) continue;
    EXPECT_EQ(value, manifest.fault_injection.trigger_counts.at(
                         name.substr(std::string("fault.fired.").size())))
        << name;
  }

  // The armed schedule is recorded rule for rule: the written manifest
  // embeds the format_fault_injection fragment byte for byte.
  const std::string path = ::testing::TempDir() + "acdn_chaos_manifest.json";
  write_run_manifest(manifest, path);
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  std::remove(path.c_str());

  std::string fragment =
      format_fault_injection(manifest.fault_injection, 1);
  if (!fragment.empty() && fragment.back() == '\n') fragment.pop_back();
  fragment += ",";  // the manifest writer's continuation comma
  EXPECT_NE(text.find(fragment), std::string::npos);
  EXPECT_NE(text.find("\"armed\": true"), std::string::npos);
  for (const FaultRule& rule : config.faults.rules) {
    EXPECT_NE(text.find("\"point\": \"" + rule.point + "\""),
              std::string::npos)
        << rule.point;
  }

  set_metrics_enabled(false);
  MetricsRegistry::global().reset();
  FailPointRegistry::global().disarm();
}

}  // namespace
}  // namespace acdn
