// Contract-macro behavior: ACDN_CHECK is fatal with the formatted
// condition and streamed context in every build; ACDN_DCHECK is fatal in
// debug/sanitizer builds and compiles out (condition unevaluated) in
// release. Fatal paths are proved with death tests matching the stderr
// message.
#include "common/check.h"

#include <gtest/gtest.h>

#include <string>

namespace acdn {
namespace {

TEST(CheckTest, PassingCheckIsSilent) {
  ACDN_CHECK(1 + 1 == 2);
  ACDN_CHECK_EQ(4, 4) << "never formatted";
  ACDN_CHECK_LT(3, 5);
  ACDN_CHECK_GE(5.0, 5.0);
  SUCCEED();
}

TEST(CheckDeathTest, CheckFiresWithConditionText) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(ACDN_CHECK(2 + 2 == 5),
               "check_test.cpp:[0-9]+: ACDN_CHECK failed: 2 \\+ 2 == 5");
}

TEST(CheckDeathTest, CheckStreamsMessageAfterDash) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const int clients = 17;
  EXPECT_DEATH(ACDN_CHECK(clients == 0) << "routed " << clients << " of 20",
               "ACDN_CHECK failed: clients == 0 — routed 17 of 20");
}

TEST(CheckDeathTest, ComparisonChecksPrintBothOperands) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const std::size_t fe = 9;
  const std::size_t sites = 4;
  EXPECT_DEATH(ACDN_CHECK_LT(fe, sites) << "catchment fold",
               "ACDN_CHECK_LT failed: fe < sites \\(9 vs 4\\) — "
               "catchment fold");
  EXPECT_DEATH(ACDN_CHECK_EQ(fe, sites), "fe == sites \\(9 vs 4\\)");
}

TEST(CheckTest, CheckEvaluatesOperandsExactlyOnce) {
  int evaluations = 0;
  ACDN_CHECK((++evaluations, true));
  EXPECT_EQ(evaluations, 1);
  evaluations = 0;
  ACDN_CHECK_EQ((++evaluations, 7), 7);
  EXPECT_EQ(evaluations, 1);
}

#if ACDN_DCHECK_ENABLED

TEST(CheckDeathTest, DcheckFatalInDebugAndSanitizerBuilds) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(ACDN_DCHECK(false) << "debug contract",
               "ACDN_CHECK failed: false — debug contract");
  EXPECT_DEATH(ACDN_DCHECK_GT(1, 2), "1 > 2 \\(1 vs 2\\)");
}

#else  // !ACDN_DCHECK_ENABLED

TEST(CheckTest, DcheckCompilesOutInRelease) {
  // Neither the condition nor the streamed operands may be evaluated.
  int evaluations = 0;
  auto touch = [&evaluations]() {
    ++evaluations;
    return false;
  };
  ACDN_DCHECK(touch()) << touch();
  ACDN_DCHECK_EQ(touch(), true) << "unused " << touch();
  ACDN_DCHECK_LT((++evaluations, 5), 3);
  EXPECT_EQ(evaluations, 0);
}

#endif  // ACDN_DCHECK_ENABLED

}  // namespace
}  // namespace acdn
