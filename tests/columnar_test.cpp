#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "beacon/columns.h"
#include "beacon/store.h"
#include "common/arena.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "sim/scenario.h"
#include "sim/simulation.h"
#include "sim/world.h"

namespace acdn {
namespace {

// ------------------------------------------------------------ test helpers

void expect_measurement_eq(const BeaconMeasurement& a,
                           const BeaconMeasurement& b) {
  EXPECT_EQ(a.beacon_id, b.beacon_id);
  EXPECT_EQ(a.client, b.client);
  EXPECT_EQ(a.ldns, b.ldns);
  EXPECT_EQ(a.day, b.day);
  EXPECT_DOUBLE_EQ(a.hour, b.hour);
  ASSERT_EQ(a.targets.size(), b.targets.size());
  for (std::size_t t = 0; t < a.targets.size(); ++t) {
    EXPECT_EQ(a.targets[t].anycast, b.targets[t].anycast);
    EXPECT_EQ(a.targets[t].front_end, b.targets[t].front_end);
    EXPECT_DOUBLE_EQ(a.targets[t].rtt_ms, b.targets[t].rtt_ms);
  }
}

void expect_measurements_eq(std::span<const BeaconMeasurement> a,
                            std::span<const BeaconMeasurement> b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("measurement " + std::to_string(i));
    expect_measurement_eq(a[i], b[i]);
  }
}

BeaconMeasurement sample_measurement(std::uint64_t beacon_id,
                                     std::size_t targets) {
  BeaconMeasurement m;
  m.beacon_id = beacon_id;
  m.client = ClientId(std::uint32_t(beacon_id % 97));
  m.ldns = LdnsId(std::uint32_t(beacon_id % 11));
  m.day = DayIndex(beacon_id % 3);
  m.hour = double(beacon_id % 24) + 0.5;
  for (std::size_t t = 0; t < targets; ++t) {
    m.targets.push_back({t == 0, FrontEndId(std::uint32_t(t)),
                         10.0 + double(t)});
  }
  return m;
}

// ------------------------------------------------------ MeasurementColumns

TEST(MeasurementColumns, RowRoundTrip) {
  std::vector<BeaconMeasurement> rows;
  rows.push_back(sample_measurement(4, 4));
  rows.push_back(sample_measurement(7, 0));  // no joined fetches
  rows.push_back(sample_measurement(9, 2));

  MeasurementColumns cols;
  cols.reserve(rows.size(), 6);
  for (const BeaconMeasurement& m : rows) cols.push_back(m);

  EXPECT_EQ(cols.size(), 3u);
  EXPECT_EQ(cols.target_count(), 6u);
  EXPECT_EQ(cols.row_targets_begin(1), cols.row_targets_end(1));
  expect_measurements_eq(cols.rows(), rows);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    SCOPED_TRACE("row " + std::to_string(i));
    expect_measurement_eq(cols.row(i), rows[i]);
  }
}

TEST(MeasurementColumns, ClearRetainsCapacity) {
  MeasurementColumns cols;
  for (std::uint64_t b = 0; b < 32; ++b) {
    cols.push_back(sample_measurement(b, 4));
  }
  const std::size_t row_cap = cols.beacon_id.capacity();
  const std::size_t target_cap = cols.target_rtt.capacity();
  cols.clear();
  EXPECT_TRUE(cols.empty());
  EXPECT_EQ(cols.target_count(), 0u);
  EXPECT_EQ(cols.beacon_id.capacity(), row_cap);
  EXPECT_EQ(cols.target_rtt.capacity(), target_cap);
}

TEST(MeasurementColumns, AppendFromCopiesOneRow) {
  MeasurementColumns src;
  src.push_back(sample_measurement(3, 2));
  src.push_back(sample_measurement(5, 4));

  MeasurementColumns dst;
  dst.append_from(src, 1);
  ASSERT_EQ(dst.size(), 1u);
  expect_measurement_eq(dst.row(0), src.row(1));
}

// ------------------------------------------------------------ ScratchArena

TEST(ScratchArena, ReusesStorageAndClearsOnBuffer) {
  ScratchArena arena;
  std::vector<int>& first = arena.buffer<int>("ids");
  first.assign(100, 7);
  const std::size_t warm = arena.capacity_bytes();
  EXPECT_GE(warm, 100 * sizeof(int));
  EXPECT_EQ(arena.buffer_count(), 1u);

  std::vector<int>& again = arena.buffer<int>("ids");
  EXPECT_EQ(&again, &first);   // same slot, same storage
  EXPECT_TRUE(again.empty());  // buffer() clears contents
  EXPECT_EQ(arena.capacity_bytes(), warm);

  again.assign(50, 1);
  std::vector<int>& raw = arena.raw_buffer<int>("ids");
  EXPECT_EQ(&raw, &first);
  EXPECT_EQ(raw.size(), 50u);  // raw_buffer() keeps contents

  // Same id, different element type: a distinct slot.
  std::vector<double>& other = arena.buffer<double>("ids");
  EXPECT_EQ(arena.buffer_count(), 2u);
  other.push_back(1.0);

  arena.release();
  EXPECT_EQ(arena.buffer_count(), 0u);
  EXPECT_EQ(arena.capacity_bytes(), 0u);
}

TEST(ScratchArena, CopyStartsCold) {
  ScratchArena arena;
  arena.buffer<int>("x").assign(10, 1);
  const ScratchArena copy(arena);
  EXPECT_EQ(copy.capacity_bytes(), 0u);
  EXPECT_GT(arena.capacity_bytes(), 0u);
}

// ------------------------------------------------- sort-merge join property

struct Logs {
  std::vector<DnsLogEntry> dns;
  std::vector<HttpLogEntry> http;
};

/// Random logs with duplicate DNS rows, duplicate fetches, and orphans on
/// both sides, shuffled so log order and key order disagree.
Logs make_random_logs(std::size_t beacons, std::uint64_t seed,
                      DayIndex day_lo, DayIndex day_hi) {
  Rng rng(seed);
  Logs logs;
  for (std::uint64_t b = 1; b <= beacons; ++b) {
    const auto day = DayIndex(rng.uniform_int(day_lo, day_hi));
    const ClientId client(std::uint32_t(rng.uniform_int(0, 49)));
    const double hour = rng.uniform(0.0, 24.0);
    for (std::uint64_t k = 0; k < 4; ++k) {
      const std::uint64_t url = b * 4 + k;
      if (rng.uniform() < 0.85) {
        logs.dns.push_back(
            {url, LdnsId(std::uint32_t(rng.uniform_int(0, 9))), day});
        if (rng.uniform() < 0.15) {  // duplicate DNS row: later one wins
          logs.dns.push_back(
              {url, LdnsId(std::uint32_t(rng.uniform_int(0, 9))), day});
        }
      }
      if (rng.uniform() < 0.85) {
        HttpLogEntry h;
        h.url_id = url;
        h.client = client;
        h.anycast = (k == 0);
        h.front_end = FrontEndId(std::uint32_t(rng.uniform_int(0, 7)));
        h.rtt_ms = rng.uniform(5.0, 120.0);
        h.day = day;
        h.hour = hour;
        logs.http.push_back(h);
        if (rng.uniform() < 0.1) {  // the same URL fetched twice
          h.rtt_ms = rng.uniform(5.0, 120.0);
          logs.http.push_back(h);
        }
      }
    }
  }
  rng.shuffle(logs.dns);
  rng.shuffle(logs.http);
  return logs;
}

/// Single-threaded reference join with the pre-sort-merge semantics: last
/// DNS row per url wins, targets keep HTTP scan order, beacon metadata
/// comes from its first joined HTTP row, output ascends by beacon id.
std::vector<std::vector<BeaconMeasurement>> reference_join(
    std::span<const DnsLogEntry> dns_log,
    std::span<const HttpLogEntry> http_log) {
  std::map<std::uint64_t, LdnsId> dns_by_url;
  for (const DnsLogEntry& e : dns_log) dns_by_url[e.url_id] = e.ldns;

  std::map<std::uint64_t, BeaconMeasurement> beacons;
  for (const HttpLogEntry& h : http_log) {
    const auto dns = dns_by_url.find(h.url_id);
    if (dns == dns_by_url.end()) continue;  // orphan HTTP row
    const auto [it, inserted] = beacons.try_emplace(h.url_id / 4);
    if (inserted) {
      it->second.beacon_id = h.url_id / 4;
      it->second.client = h.client;
      it->second.ldns = dns->second;
      it->second.day = h.day;
      it->second.hour = h.hour;
    }
    it->second.targets.push_back({h.anycast, h.front_end, h.rtt_ms});
  }

  std::vector<std::vector<BeaconMeasurement>> by_day;
  for (const auto& [id, m] : beacons) {
    if (std::size_t(m.day) >= by_day.size()) {
      by_day.resize(std::size_t(m.day) + 1);
    }
    by_day[std::size_t(m.day)].push_back(m);
  }
  return by_day;
}

void expect_join_matches_reference(const Logs& logs) {
  const auto expected = reference_join(logs.dns, logs.http);
  for (int threads : {1, 2, 3, 7, 16}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    MeasurementStore store;
    store.join(logs.dns, logs.http, threads);
    ASSERT_EQ(std::size_t(store.days()), expected.size());
    for (DayIndex d = 0; d < store.days(); ++d) {
      SCOPED_TRACE("day=" + std::to_string(d));
      expect_measurements_eq(store.by_day(d), expected[std::size_t(d)]);
    }
  }
}

TEST(SortMergeJoin, MatchesReferenceJoinUniformDay) {
  expect_join_matches_reference(make_random_logs(300, 0x5eed, 0, 0));
}

TEST(SortMergeJoin, MatchesReferenceJoinMixedDays) {
  expect_join_matches_reference(make_random_logs(300, 0xfeed, 0, 2));
}

TEST(SortMergeJoin, MatchesReferenceJoinSmallAndSparse) {
  // Few beacons relative to shard count: some shards stay empty.
  expect_join_matches_reference(make_random_logs(5, 0xabcd, 0, 1));
}

TEST(SortMergeJoin, EmptyLogsProduceNoDays) {
  MeasurementStore store;
  store.join({}, {}, 4);
  EXPECT_EQ(store.days(), 0);
  EXPECT_EQ(store.total(), 0u);
}

// ----------------------------------------- fault-drop conservation property

/// Per-join counter deltas under an armed beacon/store drop schedule.
std::map<std::string, std::uint64_t> join_counters(MeasurementStore& store,
                                                   const Logs& logs,
                                                   int threads) {
  MetricsRegistry::global().reset();
  store.join(logs.dns, logs.http, threads);
  return MetricsRegistry::global().snapshot().counters;
}

TEST(SortMergeJoin, FaultDropAccountingBalancesPerDayAcrossThreads) {
  // One Logs batch per simulated day, the way the day loop drives join().
  std::vector<Logs> days;
  for (std::uint64_t d = 0; d < 3; ++d) {
    days.push_back(make_random_logs(200, 0xd00d + d, DayIndex(d),
                                    DayIndex(d)));
  }
  FaultSchedule schedule;
  schedule.seed = 42;
  schedule.rules = {{"beacon/store", FaultKind::kDrop, 0.3, 0,
                     kFaultWindowOpen, 0.0}};

  set_metrics_enabled(true);
  std::vector<std::vector<std::map<std::string, std::uint64_t>>> per_run;
  for (const int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    FailPointRegistry::global().arm(schedule);
    MeasurementStore store;
    std::vector<std::map<std::string, std::uint64_t>> per_day;
    for (const Logs& logs : days) {
      auto c = join_counters(store, logs, threads);
      // executor.* scales with the thread count by design; the ledger
      // comparison below is about join/fault accounting only.
      std::erase_if(c, [](const auto& kv) {
        return kv.first.rfind("executor.", 0) == 0;
      });
      const auto v = [&](const char* name) {
        const auto it = c.find(name);
        return it == c.end() ? std::uint64_t{0} : it->second;
      };
      // Exact per-day ledger: every HTTP row joins or orphans, every
      // joined target (and row) is stored or dropped by the fault.
      EXPECT_EQ(v("join.http_rows"),
                v("join.joined_targets") + v("join.orphan_http"));
      EXPECT_EQ(v("join.distinct_dns"),
                v("join.joined_targets") + v("join.orphan_dns"));
      EXPECT_EQ(v("join.joined_targets"),
                v("join.stored_targets") + v("join.dropped_targets"));
      EXPECT_EQ(v("join.measurements"),
                v("join.stored_rows") + v("join.dropped_rows"));
      EXPECT_GT(v("join.dropped_rows"), 0u);  // p=0.3 on ~200 beacons
      EXPECT_EQ(v("join.dropped_rows"), v("fault.fired.beacon/store"));
      per_day.push_back(std::move(c));
    }
    FailPointRegistry::global().disarm();
    per_run.push_back(std::move(per_day));
  }
  set_metrics_enabled(false);
  MetricsRegistry::global().reset();

  // The ledger — including which rows were injected-dropped — is
  // identical for 1, 2, and 8 threads.
  for (std::size_t run = 1; run < per_run.size(); ++run) {
    for (std::size_t d = 0; d < per_run[run].size(); ++d) {
      EXPECT_EQ(per_run[run][d], per_run[0][d])
          << "run " << run << " day " << d;
    }
  }
}

// -------------------------------------------------------------- arena reuse

TEST(ArenaReuse, SecondJoinReusesScratchAndMatchesFirst) {
  const Logs logs = make_random_logs(200, 0x1234, 0, 0);
  MeasurementStore store;
  store.join(logs.dns, logs.http, 4);
  const std::size_t warm = store.scratch_capacity_bytes();
  EXPECT_GT(warm, 0u);
  const std::size_t rows = store.by_day(0).size();

  // Joining the same logs again appends an identical block to day 0 and
  // allocates no new scratch.
  store.join(logs.dns, logs.http, 4);
  EXPECT_EQ(store.scratch_capacity_bytes(), warm);
  const auto all = store.by_day(0);
  ASSERT_EQ(all.size(), 2 * rows);
  expect_measurements_eq(
      std::span<const BeaconMeasurement>(all.data(), rows),
      std::span<const BeaconMeasurement>(all.data() + rows, rows));
}

TEST(ArenaReuse, WarmArenaJoinIsByteIdenticalToColdJoin) {
  const Logs first = make_random_logs(150, 0x1111, 0, 0);
  const Logs second = make_random_logs(220, 0x2222, 1, 2);

  MeasurementStore cold;
  cold.join(second.dns, second.http, 4);

  MeasurementStore warm;
  warm.join(first.dns, first.http, 4);  // warms the arena with other data
  warm.join(second.dns, second.http, 4);

  ASSERT_EQ(warm.days(), 3);
  for (DayIndex d = 1; d <= 2; ++d) {
    SCOPED_TRACE("day=" + std::to_string(d));
    expect_measurements_eq(warm.by_day(d), cold.by_day(d));
  }
}

TEST(ArenaReuse, RunDayScratchStabilizesAcrossDays) {
  World world(ScenarioConfig::small_test());
  Simulation sim(world);
  std::vector<std::size_t> caps;
  for (int d = 0; d < 6; ++d) {
    sim.run_day();
    caps.push_back(sim.scratch_capacity_bytes());
  }
  EXPECT_GT(caps.front(), 0u);
  // The arena only ever grows to the largest day seen; it never thrashes.
  for (std::size_t i = 1; i < caps.size(); ++i) {
    EXPECT_GE(caps[i], caps[i - 1]) << "day " << i;
  }
  // Steady state: later days run inside already-reserved capacity.
  bool reused = false;
  for (std::size_t i = 1; i < caps.size(); ++i) {
    reused = reused || caps[i] == caps[i - 1];
  }
  EXPECT_TRUE(reused);
}

}  // namespace
}  // namespace acdn
