#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>

#include "common/csv.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/sim_clock.h"

namespace acdn {
namespace {

// ------------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  Rng a(99);
  Rng fork_before = a.fork("stream");
  // Consuming from the parent must not change what the fork produces.
  for (int i = 0; i < 10; ++i) a.next_u64();
  Rng fork_after = a.fork("stream");
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(fork_before.next_u64(), fork_after.next_u64());
  }
}

TEST(Rng, ForkLabelsProduceDistinctStreams) {
  Rng a(99);
  Rng f1 = a.fork("one");
  Rng f2 = a.fork("two");
  EXPECT_NE(f1.next_u64(), f2.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(10.0, 20.0);
    EXPECT_GE(v, 10.0);
    EXPECT_LT(v, 20.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(1, 4));
  EXPECT_EQ(seen, (std::set<int>{1, 2, 3, 4}));
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(5);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(7);
  const double weights[] = {0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 6000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[2], counts[1]);  // 3x weight -> more picks
  // Roughly 1:3.
  EXPECT_NEAR(double(counts[2]) / counts[1], 3.0, 0.7);
}

TEST(Rng, WeightedIndexRejectsZeroTotal) {
  Rng rng(7);
  const double weights[] = {0.0, 0.0};
  EXPECT_THROW((void)rng.weighted_index(weights), ConfigError);
}

TEST(Rng, ZipfFavorsLowRanks) {
  Rng rng(11);
  int first = 0, last = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::size_t r = rng.zipf(50, 1.0);
    ASSERT_LT(r, 50u);
    if (r == 0) ++first;
    if (r == 49) ++last;
  }
  EXPECT_GT(first, 10 * std::max(1, last));
}

TEST(Rng, ParetoIsAtLeastScale) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(Rng, ParetoRejectsBadParameters) {
  Rng rng(13);
  EXPECT_THROW((void)rng.pareto(0.0, 1.0), ConfigError);
  EXPECT_THROW((void)rng.pareto(1.0, -1.0), ConfigError);
}

// -------------------------------------------------------------- Calendar

TEST(Calendar, April2015StartsOnWednesday) {
  // The paper's passive data set begins April 1, 2015.
  EXPECT_EQ(Date({2015, 4, 1}).weekday(), Weekday::kWednesday);
}

TEST(Calendar, KnownWeekdays) {
  EXPECT_EQ(Date({1970, 1, 1}).weekday(), Weekday::kThursday);
  EXPECT_EQ(Date({2000, 1, 1}).weekday(), Weekday::kSaturday);
  EXPECT_EQ(Date({2015, 10, 28}).weekday(), Weekday::kWednesday);  // IMC'15
}

TEST(Calendar, PlusDaysCrossesMonthAndYear) {
  EXPECT_EQ(Date({2015, 4, 30}).plus_days(1), (Date{2015, 5, 1}));
  EXPECT_EQ(Date({2015, 12, 31}).plus_days(1), (Date{2016, 1, 1}));
  EXPECT_EQ(Date({2016, 2, 28}).plus_days(1), (Date{2016, 2, 29}));  // leap
  EXPECT_EQ(Date({2015, 2, 28}).plus_days(1), (Date{2015, 3, 1}));
}

TEST(Calendar, RoundTripThroughEpochDays) {
  const Date d{2015, 4, 15};
  EXPECT_EQ(civil_from_days(days_from_civil(d)), d);
}

TEST(Calendar, SimCalendarWeekendDetection) {
  SimCalendar cal;  // starts Wed 2015-04-01
  EXPECT_FALSE(cal.is_weekend(0));  // Wed
  EXPECT_FALSE(cal.is_weekend(2));  // Fri
  EXPECT_TRUE(cal.is_weekend(3));   // Sat
  EXPECT_TRUE(cal.is_weekend(4));   // Sun
  EXPECT_FALSE(cal.is_weekend(5));  // Mon
}

TEST(Calendar, DateFormatting) {
  EXPECT_EQ(Date({2015, 4, 1}).to_string(), "2015-04-01");
}

TEST(SimTime, HourOfDay) {
  EXPECT_DOUBLE_EQ((SimTime{3, 7200.0}).hour_of_day(), 2.0);
}

// ------------------------------------------------------------------- CSV

TEST(Csv, WritesRowsAndQuotesSpecials) {
  const std::string path = ::testing::TempDir() + "acdn_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.write_header({"a", "b,comma", "c\"quote"});
    const double row[] = {1.5, -2.0, 0.25};
    csv.write_row(row);
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "a,\"b,comma\",\"c\"\"quote\"");
  EXPECT_EQ(line2, "1.5,-2,0.25");
  std::remove(path.c_str());
}

TEST(Csv, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv"), Error);
}

TEST(Csv, SurfacesWriteFailureInsteadOfTruncating) {
  // Regression: only the open was checked, so running out of disk left a
  // truncated CSV behind a success exit. /dev/full opens fine but fails
  // every flushed write with ENOSPC — the writer must throw, not return.
  std::ifstream probe("/dev/full");
  if (!probe.good()) GTEST_SKIP() << "/dev/full not available";

  const auto write_until_failure = [] {
    CsvWriter csv("/dev/full");
    const double row[] = {1.0, 2.0, 3.0};
    // Enough rows to overflow the stream buffer even if flush() were
    // never reached; either path must end in a throw.
    for (int i = 0; i < 100000; ++i) csv.write_row(row);
    csv.flush();
  };
  EXPECT_THROW(write_until_failure(), Error);
}

}  // namespace
}  // namespace acdn
