// Day-route plan (cdn/day_plan.h): the per-unit plan must be an exact,
// thread-count-independent replacement for per-client route resolution.
//
//   * For every client, every day, any thread count (1/2/8), and with an
//     armed fault schedule, route_for == resolve_reference, field for
//     field — the property that licenses the O(1) anycast_today lookup.
//   * A caller that advances dynamics without prepare_day still gets
//     correct answers from the stale-plan fallback.
//   * The client -> unit index groups exactly by (access AS, metro).
//   * Base routes are resolved once: later days answer from the cache.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "sim/scenario.h"
#include "sim/world.h"

namespace acdn {
namespace {

/// A schedule that exercises every plan branch: outage failover (dark
/// front-ends force the candidate scan), session flaps and withdrawal
/// fallbacks (dynamics overrides).
FaultSchedule plan_stress_schedule() {
  FaultSchedule schedule;
  schedule.seed = 0x9d5eedull;
  schedule.rules = {
      {"cdn/front_end", FaultKind::kError, 0.3, 0, kFaultWindowOpen, 0.0},
      {"bgp/session", FaultKind::kError, 0.5, 0, kFaultWindowOpen, 0.0},
      {"bgp/withdrawal", FaultKind::kDrop, 0.25, 0, kFaultWindowOpen, 0.0},
  };
  return schedule;
}

void expect_routes_equal(const RouteResult& a, const RouteResult& b,
                         const char* what, std::uint32_t client) {
  ASSERT_EQ(a.valid, b.valid) << what << " client " << client;
  if (!a.valid) return;
  EXPECT_EQ(a.front_end, b.front_end) << what << " client " << client;
  EXPECT_EQ(a.ingress_metro, b.ingress_metro) << what << " client "
                                              << client;
  EXPECT_EQ(a.path_km, b.path_km) << what << " client " << client;
  EXPECT_EQ(a.backbone_km, b.backbone_km) << what << " client " << client;
  EXPECT_EQ(a.as_hops, b.as_hops) << what << " client " << client;
}

TEST(DayPlan, LookupMatchesPerClientReferenceAcrossDaysAndThreads) {
  constexpr DayIndex kDays = 5;
  for (const int threads : {1, 2, 8}) {
    ScenarioConfig config = ScenarioConfig::small_test();
    config.faults = plan_stress_schedule();
    World world(config);
    for (DayIndex day = 0; day < kDays; ++day) {
      world.prepare_day(day, threads);
      ASSERT_TRUE(world.day_plan().current_for(world.dynamics()));
      for (const Client24& client : world.clients().clients()) {
        const DayRoute plan = world.day_plan().route_for(client);
        const DayRoute ref =
            world.day_plan().resolve_reference(client, world.dynamics());
        expect_routes_equal(plan.primary, ref.primary, "primary",
                            client.id.value);
        ASSERT_EQ(plan.alternate.has_value(), ref.alternate.has_value())
            << "alternate presence, client " << client.id.value << " day "
            << day << " threads " << threads;
        if (plan.alternate) {
          expect_routes_equal(*plan.alternate, *ref.alternate, "alternate",
                              client.id.value);
          EXPECT_EQ(plan.alternate_share, ref.alternate_share);
        }
      }
    }
  }
}

TEST(DayPlan, StaleFallbackAnswersWithoutABuild) {
  MetricsRegistry::global().reset();
  set_metrics_enabled(true);
  ScenarioConfig config = ScenarioConfig::small_test();
  World world(config);
  world.prepare_day(0, 2);

  // Advance dynamics behind the plan's back: the plan is now stale and
  // anycast_today must fall back to uncached resolution, not answer from
  // day 0's table.
  world.dynamics().advance_to(3);
  EXPECT_FALSE(world.day_plan().current_for(world.dynamics()));
  for (const Client24& client : world.clients().clients()) {
    const DayRoute got = world.anycast_today(client);
    const DayRoute ref =
        world.day_plan().resolve_reference(client, world.dynamics());
    ASSERT_EQ(got.primary.valid, ref.primary.valid);
    if (got.primary.valid) {
      EXPECT_EQ(got.primary.front_end, ref.primary.front_end);
    }
    ASSERT_EQ(got.alternate.has_value(), ref.alternate.has_value());
  }
  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  const auto it = snap.counters.find("route_plan.stale_lookups");
  ASSERT_NE(it, snap.counters.end());
  EXPECT_EQ(it->second, world.clients().size());

  // A prepare_day catches the plan back up; lookups are O(1) again.
  world.prepare_day(3, 2);
  EXPECT_TRUE(world.day_plan().current_for(world.dynamics()));
  set_metrics_enabled(false);
}

TEST(DayPlan, UnitIndexGroupsClientsByAccessAsAndMetro) {
  ScenarioConfig config = ScenarioConfig::small_test();
  World world(config);
  const DayRoutePlan& plan = world.day_plan();

  std::set<std::pair<std::uint32_t, std::uint32_t>> pairs;
  for (const Client24& client : world.clients().clients()) {
    pairs.emplace(client.access_as.value, client.metro.value);
  }
  EXPECT_EQ(plan.unit_count(), pairs.size());

  // Same (AS, metro) -> same unit; different -> different.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::size_t> seen;
  for (const Client24& client : world.clients().clients()) {
    const auto key =
        std::make_pair(client.access_as.value, client.metro.value);
    const std::size_t unit = plan.unit_of(client);
    ASSERT_LT(unit, plan.unit_count());
    const auto [it, inserted] = seen.emplace(key, unit);
    EXPECT_EQ(it->second, unit)
        << "clients sharing a routing unit got different indices";
  }
  EXPECT_EQ(seen.size(), plan.unit_count());
}

TEST(DayPlan, BaseRoutesAreResolvedOnceAcrossDays) {
  ScenarioConfig config = ScenarioConfig::small_test();
  World world(config);
  world.prepare_day(0, 2);
  const std::size_t walks_after_first = world.day_plan().walks().walks();
  ASSERT_GT(walks_after_first, 0u);
  for (DayIndex day = 1; day < 4; ++day) world.prepare_day(day, 2);
  // Every chain was memoized on day 0; later days re-use it.
  EXPECT_EQ(world.day_plan().walks().walks(), walks_after_first);
}

}  // namespace
}  // namespace acdn
