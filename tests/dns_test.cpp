#include <gtest/gtest.h>

#include <map>

#include "common/error.h"
#include "dns/cache.h"
#include "dns/ldns.h"
#include "dns/policy.h"
#include "sim/world.h"

namespace acdn {
namespace {

// ---------------------------------------------------------------- TtlCache

TEST(TtlCache, HitWithinTtlMissAfter) {
  TtlCache<int, std::string> cache(30.0);
  cache.put(1, "a", SimTime{0, 100.0});
  EXPECT_EQ(cache.get(1, SimTime{0, 120.0}), "a");
  EXPECT_EQ(cache.get(1, SimTime{0, 129.9}), "a");
  EXPECT_FALSE(cache.get(1, SimTime{0, 130.0}).has_value());
  EXPECT_EQ(cache.expirations(), 1u);
}

TEST(TtlCache, ExpiryCrossesDays) {
  TtlCache<int, int> cache(7200.0);  // 2h TTL
  cache.put(5, 42, SimTime{0, 86000.0});
  EXPECT_EQ(cache.get(5, SimTime{1, 3600.0}), 42);   // 2000s later
  EXPECT_FALSE(cache.get(5, SimTime{1, 8000.0}).has_value());
}

TEST(TtlCache, PutOverwritesAndRefreshes) {
  TtlCache<int, int> cache(10.0);
  cache.put(1, 1, SimTime{0, 0.0});
  cache.put(1, 2, SimTime{0, 8.0});
  EXPECT_EQ(cache.get(1, SimTime{0, 15.0}), 2);  // refreshed at t=8
}

TEST(TtlCache, MissOnAbsentKey) {
  TtlCache<int, int> cache(10.0);
  EXPECT_FALSE(cache.get(99, SimTime{0, 0.0}).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(TtlCache, SweepEvictsExpiredEntries) {
  TtlCache<int, int> cache(10.0);
  cache.put(1, 1, SimTime{0, 0.0});
  cache.put(2, 2, SimTime{0, 5.0});
  cache.put(3, 3, SimTime{0, 100.0});
  cache.sweep(SimTime{0, 50.0});  // keys 1 and 2 expired, 3 live
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evictions(), 2u);
  EXPECT_EQ(cache.get(3, SimTime{0, 105.0}), 3);
}

TEST(TtlCache, SizeStaysBoundedUnderChurningKeys) {
  // Regression: expired entries were only erased on an exact-key get(),
  // so a workload that inserts ever-fresh keys (resolver caches do) grew
  // without bound for the whole run. The amortized sweep from put() must
  // keep the map near the live working set instead.
  TtlCache<int, int> cache(10.0);  // at 1 put/s, ~10 entries are live
  for (int i = 0; i < 100000; ++i) {
    cache.put(i, i, SimTime{0, double(i)});
  }
  // Bound: sweeps run every max(64, size()) puts, so the map can hold the
  // live set plus at most one inter-sweep accumulation — far below the
  // 100k inserted keys, and independent of run length.
  EXPECT_LE(cache.size(), 200u);
  EXPECT_GE(cache.evictions(), 99000u);
  // Live entries survive the churn.
  cache.put(-1, 7, SimTime{0, 100000.0});
  EXPECT_EQ(cache.get(-1, SimTime{0, 100005.0}), 7);
}

TEST(TtlCache, ClearResetsSweepSchedule) {
  TtlCache<int, int> cache(10.0);
  for (int i = 0; i < 50; ++i) cache.put(i, i, SimTime{0, double(i)});
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  cache.put(1, 1, SimTime{0, 1000.0});
  EXPECT_EQ(cache.get(1, SimTime{0, 1001.0}), 1);
}

// ----------------------------------------------------------- LdnsPopulation

class LdnsTest : public ::testing::Test {
 protected:
  LdnsTest() : world_(ScenarioConfig::small_test()) {}
  World world_;
};

TEST_F(LdnsTest, EveryClientHasAnLdns) {
  for (const Client24& c : world_.clients().clients()) {
    EXPECT_TRUE(c.ldns.valid());
    [[maybe_unused]] const LdnsServer& server = world_.ldns().server(c.ldns);
  }
}

TEST_F(LdnsTest, ClientListsAreConsistent) {
  std::size_t total = 0;
  for (const LdnsServer& s : world_.ldns().servers()) {
    for (ClientId c : world_.ldns().clients_of(s.id)) {
      EXPECT_EQ(world_.clients().client(c).ldns, s.id);
      ++total;
    }
  }
  EXPECT_EQ(total, world_.clients().size());
}

TEST_F(LdnsTest, PublicResolverShareRoughlyHonored) {
  int public_clients = 0;
  for (const Client24& c : world_.clients().clients()) {
    if (world_.ldns().server(c.ldns).is_public) ++public_clients;
  }
  const double share =
      double(public_clients) / double(world_.clients().size());
  const double target = world_.config().dns.public_resolver_fraction;
  EXPECT_NEAR(share, target, 0.05);
}

TEST_F(LdnsTest, IspResolversBelongToTheClientsIsp) {
  for (const Client24& c : world_.clients().clients()) {
    const LdnsServer& s = world_.ldns().server(c.ldns);
    if (!s.is_public) {
      EXPECT_EQ(s.owner, c.access_as);
    }
  }
}

TEST_F(LdnsTest, SomeClientsAreFarFromTheirResolver) {
  // ISP resolver centralization must produce a distant-LDNS population
  // (the paper's [17]: 11-12% of demand >500 km from its LDNS).
  int far = 0;
  for (const Client24& c : world_.clients().clients()) {
    const LdnsServer& s = world_.ldns().server(c.ldns);
    if (haversine_km(c.location, s.location) > 500.0) ++far;
  }
  EXPECT_GT(far, 0);
  EXPECT_LT(double(far) / double(world_.clients().size()), 0.5);
}

TEST(DnsConfigTest, Validation) {
  DnsConfig bad;
  bad.public_resolver_fraction = 1.5;
  EXPECT_THROW(bad.validate(), ConfigError);
  bad = DnsConfig{};
  bad.metros_per_resolver_site = 0;
  EXPECT_THROW(bad.validate(), ConfigError);
  bad = DnsConfig{};
  bad.public_resolver_sites = 0;
  EXPECT_THROW(bad.validate(), ConfigError);
}

// ------------------------------------------------------------------ Policy

TEST_F(LdnsTest, AnycastPolicyAlwaysAnycast) {
  const AnycastPolicy policy;
  const DnsAnswer answer = policy.resolve(DnsQueryContext{LdnsId(0), {}, 0});
  EXPECT_TRUE(answer.anycast);
  EXPECT_EQ(policy.name(), "anycast");
}

TEST_F(LdnsTest, GeoClosestUsesEcsWhenAvailable) {
  const GeoClosestPolicy policy(world_.cdn().deployment(), world_.metros(),
                                world_.ldns(), world_.clients(),
                                world_.geolocation());
  // A client whose resolver is far away: ECS-based answers should track the
  // client, not the resolver.
  for (const Client24& c : world_.clients().clients()) {
    const LdnsServer& s = world_.ldns().server(c.ldns);
    if (haversine_km(c.location, s.location) < 2000.0) continue;

    const DnsAnswer with_ecs =
        policy.resolve(DnsQueryContext{c.ldns, c.prefix, 0});
    ASSERT_FALSE(with_ecs.anycast);
    const auto& deployment = world_.cdn().deployment();
    const Kilometers d_client = haversine_km(
        c.location,
        world_.metros()
            .metro(deployment.site(with_ecs.front_end).metro)
            .location);
    // Without ECS, the answer is chosen for the resolver's location.
    const DnsAnswer without_ecs =
        policy.resolve(DnsQueryContext{c.ldns, {}, 0});
    ASSERT_FALSE(without_ecs.anycast);
    const Kilometers d_ldns_answer = haversine_km(
        c.location,
        world_.metros()
            .metro(deployment.site(without_ecs.front_end).metro)
            .location);
    EXPECT_LE(d_client, d_ldns_answer + 1.0);
    return;  // one distant client suffices
  }
  GTEST_SKIP() << "no client with a sufficiently distant resolver";
}

TEST_F(LdnsTest, GeoClosestIsDeterministic) {
  const GeoClosestPolicy policy(world_.cdn().deployment(), world_.metros(),
                                world_.ldns(), world_.clients(),
                                world_.geolocation());
  const Client24& c = world_.clients().clients().front();
  const DnsAnswer a = policy.resolve(DnsQueryContext{c.ldns, c.prefix, 0});
  const DnsAnswer b = policy.resolve(DnsQueryContext{c.ldns, c.prefix, 3});
  EXPECT_EQ(a.anycast, b.anycast);
  EXPECT_EQ(a.front_end, b.front_end);
}

}  // namespace
}  // namespace acdn
