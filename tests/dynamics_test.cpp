#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "routing/dynamics.h"

namespace acdn {
namespace {

RoutingUnit unit(std::uint32_t as, std::uint32_t metro) {
  return RoutingUnit{AsId(as), MetroId(metro)};
}

DynamicsConfig calm_config() {
  DynamicsConfig config;
  config.weekday_change_prob = 0.0;
  config.weekend_change_prob = 0.0;
  config.flappy_unit_fraction = 0.0;
  config.stable_flap_prob = 0.0;
  return config;
}

TEST(RouteDynamics, DayZeroKeepsInitialSelection) {
  DynamicsConfig config;
  config.weekday_change_prob = 1.0;  // change every day -- except day 0
  config.flappy_unit_fraction = 0.0;
  config.stable_flap_prob = 0.0;
  RouteDynamics dyn(config, SimCalendar{}, 1);
  dyn.register_unit(unit(1, 1), 3);
  dyn.advance_to(0);
  EXPECT_EQ(dyn.selected_candidate(unit(1, 1)), 0u);
}

TEST(RouteDynamics, NoChangesWhenProbabilitiesAreZero) {
  RouteDynamics dyn(calm_config(), SimCalendar{}, 1);
  for (std::uint32_t i = 0; i < 50; ++i) dyn.register_unit(unit(i, 0), 3);
  for (DayIndex d = 0; d < 10; ++d) {
    dyn.advance_to(d);
    for (std::uint32_t i = 0; i < 50; ++i) {
      EXPECT_EQ(dyn.selected_candidate(unit(i, 0)), 0u);
      EXPECT_FALSE(dyn.flap_alternate(unit(i, 0)).has_value());
    }
  }
}

TEST(RouteDynamics, SingleCandidateUnitsNeverMove) {
  DynamicsConfig config;
  config.weekday_change_prob = 1.0;
  config.flappy_unit_fraction = 1.0;
  config.flappy_weekday_flap_prob = 1.0;
  RouteDynamics dyn(config, SimCalendar{}, 1);
  dyn.register_unit(unit(1, 1), 1);
  for (DayIndex d = 0; d < 5; ++d) {
    dyn.advance_to(d);
    EXPECT_EQ(dyn.selected_candidate(unit(1, 1)), 0u);
    EXPECT_FALSE(dyn.flap_alternate(unit(1, 1)).has_value());
  }
}

TEST(RouteDynamics, ChangesMoveToAdjacentCandidate) {
  DynamicsConfig config;
  config.weekday_change_prob = 1.0;
  config.weekend_change_prob = 1.0;
  config.revert_prob = 0.0;
  config.flappy_unit_fraction = 0.0;
  config.stable_flap_prob = 0.0;
  RouteDynamics dyn(config, SimCalendar{}, 1);
  dyn.register_unit(unit(1, 1), 3);
  dyn.advance_to(1);
  EXPECT_EQ(dyn.selected_candidate(unit(1, 1)), 1u);
  dyn.advance_to(2);
  EXPECT_EQ(dyn.selected_candidate(unit(1, 1)), 2u);
  // At the last candidate, a further change steps back.
  dyn.advance_to(3);
  EXPECT_EQ(dyn.selected_candidate(unit(1, 1)), 1u);
}

TEST(RouteDynamics, RevertGoesBackTowardPrimary) {
  DynamicsConfig config;
  config.weekday_change_prob = 1.0;
  config.weekend_change_prob = 1.0;
  config.revert_prob = 1.0;
  config.flappy_unit_fraction = 0.0;
  config.stable_flap_prob = 0.0;
  RouteDynamics dyn(config, SimCalendar{}, 1);
  dyn.register_unit(unit(1, 1), 3);
  dyn.advance_to(1);  // 0 -> 1 (at 0, revert does not apply)
  EXPECT_EQ(dyn.selected_candidate(unit(1, 1)), 1u);
  dyn.advance_to(2);  // revert: back to 0
  EXPECT_EQ(dyn.selected_candidate(unit(1, 1)), 0u);
}

TEST(RouteDynamics, FlappyUnitsFlapOnWeekdays) {
  DynamicsConfig config = calm_config();
  config.flappy_unit_fraction = 1.0;
  config.flappy_weekday_flap_prob = 1.0;
  config.flappy_weekend_flap_prob = 0.0;
  RouteDynamics dyn(config, SimCalendar{}, 1);  // day 0: Wed
  dyn.register_unit(unit(1, 1), 2);
  dyn.advance_to(0);
  const auto alt = dyn.flap_alternate(unit(1, 1));
  ASSERT_TRUE(alt.has_value());
  EXPECT_EQ(*alt, 1u);
  dyn.advance_to(3);  // Saturday
  EXPECT_FALSE(dyn.flap_alternate(unit(1, 1)).has_value());
}

TEST(RouteDynamics, CannotRewind) {
  RouteDynamics dyn(calm_config(), SimCalendar{}, 1);
  dyn.register_unit(unit(1, 1), 2);
  dyn.advance_to(5);
  EXPECT_THROW(dyn.advance_to(3), ConfigError);
}

TEST(RouteDynamics, RegisterAfterStartThrows) {
  RouteDynamics dyn(calm_config(), SimCalendar{}, 1);
  dyn.register_unit(unit(1, 1), 2);
  dyn.advance_to(0);
  EXPECT_THROW(dyn.register_unit(unit(2, 2), 2), ConfigError);
}

TEST(RouteDynamics, UnknownUnitsReportPrimary) {
  RouteDynamics dyn(calm_config(), SimCalendar{}, 1);
  dyn.advance_to(0);
  EXPECT_EQ(dyn.selected_candidate(unit(9, 9)), 0u);
  EXPECT_FALSE(dyn.flap_alternate(unit(9, 9)).has_value());
}

TEST(RouteDynamics, DeterministicForSameSeed) {
  DynamicsConfig config;  // defaults: some churn
  auto run = [&](std::uint64_t seed) {
    RouteDynamics dyn(config, SimCalendar{}, seed);
    for (std::uint32_t i = 0; i < 200; ++i) dyn.register_unit(unit(i, 0), 3);
    dyn.advance_to(6);
    std::vector<std::size_t> state;
    for (std::uint32_t i = 0; i < 200; ++i) {
      state.push_back(dyn.selected_candidate(unit(i, 0)));
    }
    return state;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(RouteDynamics, WeekendQuieterThanWeekdays) {
  DynamicsConfig config;
  config.weekday_change_prob = 0.5;
  config.weekend_change_prob = 0.0;
  config.revert_prob = 0.0;
  config.flappy_unit_fraction = 0.0;
  config.stable_flap_prob = 0.0;
  RouteDynamics dyn(config, SimCalendar{}, 3);  // Wed start
  const int n = 500;
  for (std::uint32_t i = 0; i < n; ++i) dyn.register_unit(unit(i, 0), 2);

  auto moved = [&] {
    int count = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (dyn.selected_candidate(unit(i, 0)) != 0) ++count;
    }
    return count;
  };
  dyn.advance_to(2);  // Fri: two weekdays of change (Thu, Fri)
  const int after_friday = moved();
  EXPECT_GT(after_friday, n / 4);
  dyn.advance_to(4);  // through the weekend: nothing new moves
  EXPECT_EQ(moved(), after_friday);
}

TEST(RouteDynamics, ReRegistrationIsDrawNeutral) {
  // Re-registering a unit must consume nothing from the RNG stream: with
  // the old behavior the duplicate registration burned a bernoulli draw,
  // shifting the flappy draw of every unit registered afterwards. Two
  // same-seed instances — one with a duplicate registration in the middle
  // — must be observably identical on every unit for every day.
  DynamicsConfig config;
  config.flappy_unit_fraction = 0.5;
  config.weekday_change_prob = 0.3;
  const int n = 64;

  RouteDynamics clean(config, SimCalendar{}, 11);
  RouteDynamics redundant(config, SimCalendar{}, 11);
  for (std::uint32_t i = 0; i < n; ++i) {
    clean.register_unit(unit(i, 0), 3);
    redundant.register_unit(unit(i, 0), 3);
    if (i == 5) redundant.register_unit(unit(2, 0), 3);  // duplicate
  }

  for (DayIndex d = 0; d < 8; ++d) {
    clean.advance_to(d);
    redundant.advance_to(d);
    for (std::uint32_t i = 0; i < n; ++i) {
      ASSERT_EQ(clean.selected_candidate(unit(i, 0)),
                redundant.selected_candidate(unit(i, 0)))
          << "unit " << i << " day " << d;
      ASSERT_EQ(clean.flap_alternate(unit(i, 0)),
                redundant.flap_alternate(unit(i, 0)))
          << "unit " << i << " day " << d;
    }
  }
}

TEST(RouteDynamics, ReRegistrationUpdatesCandidateCount) {
  // The update itself must stick: a unit re-registered below two
  // candidates stops moving entirely.
  DynamicsConfig config;
  config.weekday_change_prob = 1.0;
  config.flappy_unit_fraction = 1.0;
  config.flappy_weekday_flap_prob = 1.0;
  RouteDynamics dyn(config, SimCalendar{}, 5);
  dyn.register_unit(unit(1, 1), 3);
  dyn.register_unit(unit(1, 1), 1);  // shrinks: route diversity is gone
  for (DayIndex d = 0; d < 5; ++d) {
    dyn.advance_to(d);
    EXPECT_EQ(dyn.selected_candidate(unit(1, 1)), 0u);
    EXPECT_FALSE(dyn.flap_alternate(unit(1, 1)).has_value());
  }
}

TEST(RouteDynamics, EpochAdvancesWithEverySteppedDay) {
  RouteDynamics dyn(calm_config(), SimCalendar{}, 1);
  dyn.register_unit(unit(1, 1), 2);
  EXPECT_EQ(dyn.epoch(), 0u);
  dyn.advance_to(0);
  EXPECT_EQ(dyn.epoch(), 1u);  // day 0's initial flap draw is a step
  dyn.advance_to(0);
  EXPECT_EQ(dyn.epoch(), 1u);  // no rewind, no re-step
  dyn.advance_to(3);
  EXPECT_EQ(dyn.epoch(), 4u);  // days 1..3 simulated individually
}

}  // namespace
}  // namespace acdn
