#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "core/hybrid.h"
#include "sim/world.h"
#include "test_fixtures.h"

namespace acdn {
namespace {

using testfx::make_measurement;

class EvaluatorTest : public ::testing::Test {
 protected:
  EvaluatorTest() : world_(ScenarioConfig::small_test()) {}

  /// A measurement for a real client of the small world.
  BeaconMeasurement measurement(std::size_t client_index, DayIndex day,
                                double anycast_ms,
                                std::vector<std::pair<std::uint32_t, double>>
                                    unicast) const {
    const Client24& c =
        world_.clients().clients()[client_index];
    BeaconMeasurement m = make_measurement(c.id.value, c.ldns.value, day,
                                           anycast_ms, std::move(unicast));
    return m;
  }

  PredictorConfig config(Grouping grouping) const {
    PredictorConfig pc;
    pc.metric = PredictionMetric::kP25;
    pc.min_measurements = 2;
    pc.grouping = grouping;
    return pc;
  }

  PredictionEvaluator::Config eval_config() const {
    PredictionEvaluator::Config ec;
    ec.min_eval_samples = 2;
    ec.epsilon_ms = 1.0;
    return ec;
  }

  World world_;
};

TEST_F(EvaluatorTest, ImprovementMeasuredAgainstNextDay) {
  HistoryPredictor predictor(config(Grouping::kEcsPrefix));
  // Train day: FE0 clearly beats anycast for client 0.
  std::vector<BeaconMeasurement> train;
  train.push_back(measurement(0, 0, 50.0, {{0, 20.0}}));
  train.push_back(measurement(0, 0, 52.0, {{0, 22.0}}));
  predictor.train(train);

  // Eval day: the advantage persists (40 vs 25 at both percentiles).
  std::vector<BeaconMeasurement> eval;
  eval.push_back(measurement(0, 1, 40.0, {{0, 25.0}}));
  eval.push_back(measurement(0, 1, 40.0, {{0, 25.0}}));

  const PredictionEvaluator evaluator(world_.clients(), world_.ldns(),
                                      eval_config());
  const auto outcomes = evaluator.evaluate(predictor, eval);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_FALSE(outcomes[0].predicted_anycast);
  EXPECT_DOUBLE_EQ(outcomes[0].improvement_p50, 15.0);
  EXPECT_DOUBLE_EQ(outcomes[0].improvement_p75, 15.0);

  const EvalSummary summary = evaluator.summarize(outcomes);
  EXPECT_EQ(summary.evaluated, 1u);
  EXPECT_DOUBLE_EQ(summary.fraction_improved_p50, 1.0);
  EXPECT_DOUBLE_EQ(summary.fraction_worse_p50, 0.0);
}

TEST_F(EvaluatorTest, RegressionWhenAdvantageFlips) {
  HistoryPredictor predictor(config(Grouping::kEcsPrefix));
  std::vector<BeaconMeasurement> train;
  train.push_back(measurement(0, 0, 50.0, {{0, 20.0}}));
  train.push_back(measurement(0, 0, 52.0, {{0, 22.0}}));
  predictor.train(train);

  // Next day the predicted front-end got worse than anycast.
  std::vector<BeaconMeasurement> eval;
  eval.push_back(measurement(0, 1, 30.0, {{0, 60.0}}));
  eval.push_back(measurement(0, 1, 30.0, {{0, 60.0}}));

  const PredictionEvaluator evaluator(world_.clients(), world_.ldns(),
                                      eval_config());
  const auto outcomes = evaluator.evaluate(predictor, eval);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_DOUBLE_EQ(outcomes[0].improvement_p50, -30.0);
  const EvalSummary summary = evaluator.summarize(outcomes);
  EXPECT_DOUBLE_EQ(summary.fraction_worse_p50, 1.0);
}

TEST_F(EvaluatorTest, AnycastPredictionScoresZero) {
  HistoryPredictor predictor(config(Grouping::kEcsPrefix));
  std::vector<BeaconMeasurement> train;
  train.push_back(measurement(0, 0, 10.0, {{0, 20.0}}));
  train.push_back(measurement(0, 0, 10.0, {{0, 20.0}}));
  predictor.train(train);

  std::vector<BeaconMeasurement> eval;
  eval.push_back(measurement(0, 1, 11.0, {{0, 19.0}}));
  eval.push_back(measurement(0, 1, 11.0, {{0, 19.0}}));

  const PredictionEvaluator evaluator(world_.clients(), world_.ldns(),
                                      eval_config());
  const auto outcomes = evaluator.evaluate(predictor, eval);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].predicted_anycast);
  EXPECT_DOUBLE_EQ(outcomes[0].improvement_p50, 0.0);
}

TEST_F(EvaluatorTest, SkipsClientsWithoutEvalSamplesForPrediction) {
  HistoryPredictor predictor(config(Grouping::kEcsPrefix));
  std::vector<BeaconMeasurement> train;
  train.push_back(measurement(0, 0, 50.0, {{0, 20.0}}));
  train.push_back(measurement(0, 0, 52.0, {{0, 22.0}}));
  predictor.train(train);

  // Eval day never measures FE0 for this client.
  std::vector<BeaconMeasurement> eval;
  eval.push_back(measurement(0, 1, 40.0, {{1, 25.0}}));
  eval.push_back(measurement(0, 1, 41.0, {{1, 26.0}}));

  const PredictionEvaluator evaluator(world_.clients(), world_.ldns(),
                                      eval_config());
  EXPECT_TRUE(evaluator.evaluate(predictor, eval).empty());
}

TEST_F(EvaluatorTest, LdnsGroupingEvaluatesPerClient) {
  // Two clients of the same LDNS; pooled training picks FE0. Client A
  // really is better on FE0; client B is not — the per-/24 evaluation
  // must expose the penalty.
  std::size_t a = 0;
  std::size_t b = 1;
  const auto clients = world_.clients().clients();
  const LdnsId ldns = clients[a].ldns;
  for (std::size_t i = 1; i < clients.size(); ++i) {
    if (clients[i].ldns == ldns && i != a) {
      b = i;
      break;
    }
  }
  if (clients[b].ldns != ldns || b == a) {
    GTEST_SKIP() << "no two clients share an LDNS in this world";
  }

  HistoryPredictor predictor(config(Grouping::kLdns));
  std::vector<BeaconMeasurement> train;
  train.push_back(measurement(a, 0, 50.0, {{0, 10.0}}));
  train.push_back(measurement(a, 0, 52.0, {{0, 12.0}}));
  predictor.train(train);

  std::vector<BeaconMeasurement> eval;
  eval.push_back(measurement(a, 1, 50.0, {{0, 10.0}}));
  eval.push_back(measurement(a, 1, 50.0, {{0, 10.0}}));
  eval.push_back(measurement(b, 1, 15.0, {{0, 90.0}}));
  eval.push_back(measurement(b, 1, 15.0, {{0, 90.0}}));

  const PredictionEvaluator evaluator(world_.clients(), world_.ldns(),
                                      eval_config());
  const auto outcomes = evaluator.evaluate(predictor, eval);
  ASSERT_EQ(outcomes.size(), 2u);
  double improved = 0.0, worse = 0.0;
  for (const EvalOutcome& o : outcomes) {
    if (o.improvement_p50 > 0) improved += 1;
    if (o.improvement_p50 < 0) worse += 1;
  }
  EXPECT_DOUBLE_EQ(improved, 1.0);
  EXPECT_DOUBLE_EQ(worse, 1.0);
}

// ---------------------------------------------------------------- Hybrid

TEST_F(EvaluatorTest, HybridOnlyOverridesAboveThreshold) {
  HistoryPredictor predictor(config(Grouping::kEcsPrefix));
  const Client24& big = world_.clients().clients()[0];
  const Client24& small = world_.clients().clients()[1];
  std::vector<BeaconMeasurement> train;
  // big gain: 40ms; small gain: 3ms.
  for (int i = 0; i < 2; ++i) {
    train.push_back(make_measurement(big.id.value, big.ldns.value, 0, 60.0,
                                     {{0, 20.0}}));
    train.push_back(make_measurement(small.id.value, small.ldns.value, 0,
                                     23.0, {{0, 20.0}}));
  }
  predictor.train(train);

  HybridPolicy::Config hc;
  hc.min_predicted_gain_ms = 10.0;
  const HybridPolicy policy(predictor, world_.clients(), hc);
  EXPECT_EQ(policy.override_count(), 1u);

  const DnsAnswer for_big =
      policy.resolve(DnsQueryContext{big.ldns, big.prefix, 1});
  EXPECT_FALSE(for_big.anycast);
  EXPECT_EQ(for_big.front_end, FrontEndId(0));

  const DnsAnswer for_small =
      policy.resolve(DnsQueryContext{small.ldns, small.prefix, 1});
  EXPECT_TRUE(for_small.anycast);

  // Without ECS the ECS-grouped policy cannot identify the client.
  const DnsAnswer no_ecs = policy.resolve(DnsQueryContext{big.ldns, {}, 1});
  EXPECT_TRUE(no_ecs.anycast);
  EXPECT_EQ(policy.name(), "hybrid");
}

TEST_F(EvaluatorTest, HybridLdnsGroupingUsesResolverKey) {
  PredictorConfig pc = config(Grouping::kLdns);
  HistoryPredictor predictor(pc);
  const Client24& c = world_.clients().clients()[0];
  std::vector<BeaconMeasurement> train;
  for (int i = 0; i < 2; ++i) {
    train.push_back(
        make_measurement(c.id.value, c.ldns.value, 0, 60.0, {{0, 20.0}}));
  }
  predictor.train(train);

  HybridPolicy::Config hc;
  hc.min_predicted_gain_ms = 10.0;
  const HybridPolicy policy(predictor, world_.clients(), hc);
  // LDNS-grouped: no ECS needed.
  const DnsAnswer answer = policy.resolve(DnsQueryContext{c.ldns, {}, 1});
  EXPECT_FALSE(answer.anycast);
}

}  // namespace
}  // namespace acdn
