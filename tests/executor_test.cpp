// Tests for the persistent work-stealing executor: chunk-plan stability,
// bit-identical reductions, exception propagation, stealing under skewed
// load, nested submission, and end-to-end determinism of the simulation +
// predictor pipeline across thread counts.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/executor.h"
#include "common/parallel.h"
#include "core/predictor.h"
#include "report/export.h"
#include "sim/simulation.h"
#include "sim/world.h"

namespace acdn {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ------------------------------------------------------------ chunk plan

TEST(Executor, ChunkPlanDependsOnlyOnRangeAndGrain) {
  // The plan never sees the thread count, so chunk boundaries — and hence
  // reduction order — cannot vary with parallelism.
  const auto plan = Executor::plan_chunks(1000, 0);
  EXPECT_EQ(plan.chunk_size, 16u);  // ceil(1000 / 64)
  EXPECT_EQ(plan.chunks, 63u);

  const auto coarse = Executor::plan_chunks(1000, 512);
  EXPECT_EQ(coarse.chunk_size, 512u);
  EXPECT_EQ(coarse.chunks, 2u);

  const auto single = Executor::plan_chunks(100, 512);
  EXPECT_EQ(single.chunks, 1u);

  const auto tiny = Executor::plan_chunks(1, 0);
  EXPECT_EQ(tiny.chunk_size, 1u);
  EXPECT_EQ(tiny.chunks, 1u);
}

TEST(Executor, RunChunkedCoversRangeExactlyOnce) {
  Executor pool(3);
  for (int parallelism : {1, 2, 3, 16}) {
    std::vector<std::atomic<int>> hits(777);
    pool.run_chunked(5, 777, parallelism, 1,
                     [&](std::size_t, std::size_t b, std::size_t e) {
                       for (std::size_t i = b; i < e; ++i) {
                         hits[i].fetch_add(1);
                       }
                     });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), (i >= 5) ? 1 : 0)
          << "i=" << i << " parallelism=" << parallelism;
    }
  }
}

// ------------------------------------------------------------- reduction

TEST(Executor, ParallelReduceBitIdenticalAcrossThreadCounts) {
  // Floating-point sums are order-sensitive; the executor folds per-chunk
  // shards in ascending chunk order, so the total must be *exactly* equal
  // for any thread count — EXPECT_EQ on doubles is intentional.
  constexpr std::size_t kN = 5000;
  std::vector<double> values(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    values[i] = std::sin(double(i)) * 1e3 + 1.0 / double(i + 1);
  }
  auto sum_with = [&](int threads) {
    return Executor::global().parallel_reduce(
        0, kN, threads, 1, 0.0,
        [&](double& acc, std::size_t i) { acc += values[i]; },
        [](double& acc, double&& shard) { acc += shard; });
  };
  const double serial = sum_with(1);
  for (int threads : {2, 7, default_thread_count()}) {
    EXPECT_EQ(sum_with(threads), serial) << "threads=" << threads;
  }
}

TEST(Executor, ParallelReduceEmptyRangeReturnsInit) {
  const double out = Executor::global().parallel_reduce(
      10, 10, 4, 1, 42.0, [](double&, std::size_t) { FAIL(); },
      [](double&, double&&) { FAIL(); });
  EXPECT_EQ(out, 42.0);
}

// ------------------------------------------------------------ exceptions

TEST(Executor, ExceptionPropagatesAndPoolSurvives) {
  EXPECT_THROW(Executor::global().parallel_for(
                   0, 10000, 4,
                   [](std::size_t i) {
                     if (i == 4321) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
  // The pool is still usable after an exception.
  std::atomic<int> count{0};
  Executor::global().parallel_for(0, 100, 4,
                                  [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
}

TEST(Executor, ExceptionMessagePreserved) {
  try {
    Executor::global().parallel_for(0, 100, 1, [](std::size_t i) {
      if (i == 37) throw std::runtime_error("executor-test-message");
    });
    FAIL() << "expected parallel_for to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "executor-test-message");
  }
}

// Regression: the legacy free-function parallel_for used to run bodies on
// detached per-call std::threads, where a throw went straight to
// std::terminate. The shim now routes through the executor and rethrows
// to the caller.
TEST(ParallelForShim, ExceptionReachesCallerInsteadOfTerminating) {
  EXPECT_THROW(parallel_for(0, 1000, 8,
                            [](std::size_t i) {
                              if (i == 999) throw std::logic_error("shim");
                            }),
               std::logic_error);
}

// ---------------------------------------------------------- work stealing

TEST(Executor, StealsAroundHeavyTailedTask) {
  // One chunk is ~1000x heavier than the rest; idle workers must steal the
  // remaining tiny chunks rather than queue behind it.
  Executor pool(4);
  std::atomic<std::uint64_t> sum{0};
  constexpr std::size_t kN = 20000;
  pool.run_chunked(0, kN, 4, 1,
                   [&](std::size_t, std::size_t b, std::size_t e) {
                     for (std::size_t i = b; i < e; ++i) {
                       if (i == 0) {
                         volatile double x = 1.0;
                         for (int k = 0; k < 2000000; ++k) {
                           x = x * 1.0000001 + 1e-9;
                         }
                       }
                       sum.fetch_add(i + 1, std::memory_order_relaxed);
                     }
                   });
  EXPECT_EQ(sum.load(), std::uint64_t{kN} * (kN + 1) / 2);
}

TEST(Executor, ManyTinyBatches) {
  // Lots of small submissions stress batch setup/teardown and the wake
  // protocol rather than chunk execution.
  Executor pool(4);
  std::uint64_t total = 0;
  for (int round = 0; round < 200; ++round) {
    std::atomic<std::uint64_t> sum{0};
    pool.run_chunked(0, 64, 4, 1,
                     [&](std::size_t, std::size_t b, std::size_t e) {
                       for (std::size_t i = b; i < e; ++i) {
                         sum.fetch_add(1, std::memory_order_relaxed);
                       }
                     });
    total += sum.load();
  }
  EXPECT_EQ(total, 200u * 64u);
}

// ------------------------------------------------------- nested submission

TEST(Executor, NestedSubmissionCompletes) {
  // Outer tasks submit inner reductions from worker threads. The
  // submitter-participates design makes this deadlock-free even when every
  // worker is itself waiting on an inner batch.
  std::vector<std::uint64_t> totals(16, 0);
  Executor::global().parallel_for(0, totals.size(), 4, [&](std::size_t i) {
    totals[i] = Executor::global().parallel_reduce(
        0, 1000, 2, 1, std::uint64_t{0},
        // NOLINT-ACDN(parallel-fp-accum): these ARE the sanctioned
        [](std::uint64_t& acc, std::size_t j) { acc += j; },
        // NOLINT-ACDN(parallel-fp-accum): parallel_reduce fold lambdas
        [](std::uint64_t& acc, std::uint64_t&& shard) { acc += shard; });
  });
  for (std::uint64_t t : totals) EXPECT_EQ(t, 499500u);
}

// ------------------------------------------------- end-to-end determinism

struct RunArtifacts {
  std::string measurements;
  std::string passive;
  std::string predictions;
};

RunArtifacts run_pipeline(int threads) {
  ScenarioConfig config = ScenarioConfig::small_test();
  config.simulation_threads = threads;
  World world(config);
  Simulation sim(world);
  sim.run_days(3);

  RunArtifacts out;
  const std::string mpath = ::testing::TempDir() + "acdn_exec_meas.csv";
  const std::string ppath = ::testing::TempDir() + "acdn_exec_pass.csv";
  export_measurements(sim.measurements(), mpath);
  export_passive_log(sim.passive(), ppath);
  out.measurements = slurp(mpath);
  out.passive = slurp(ppath);
  std::remove(mpath.c_str());
  std::remove(ppath.c_str());

  PredictorConfig pc;
  pc.min_measurements = 1;
  pc.threads = threads;
  HistoryPredictor predictor(pc);
  predictor.train(sim.measurements().by_day(0));
  std::ostringstream ss;
  ss << std::hexfloat;  // byte-exact double rendering
  for (const auto& [group, p] : predictor.predictions()) {
    ss << group << ' ' << p.anycast << ' ' << p.front_end.value << ' '
       << p.predicted_ms << ' ' << (p.anycast_ms ? *p.anycast_ms : -1.0)
       << '\n';
  }
  out.predictions = ss.str();
  return out;
}

TEST(ExecutorDeterminism, PipelineByteIdenticalAcrossThreadCounts) {
  const RunArtifacts base = run_pipeline(1);
  ASSERT_FALSE(base.measurements.empty());
  ASSERT_FALSE(base.passive.empty());
  ASSERT_FALSE(base.predictions.empty());
  for (int threads : {2, 7, default_thread_count()}) {
    const RunArtifacts run = run_pipeline(threads);
    EXPECT_EQ(run.measurements, base.measurements) << "threads=" << threads;
    EXPECT_EQ(run.passive, base.passive) << "threads=" << threads;
    EXPECT_EQ(run.predictions, base.predictions) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace acdn
